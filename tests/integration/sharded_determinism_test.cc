// Determinism contract of the sharded round engine: once sharding is on
// (sim_threads > 1 or sim_shards > 0), every recorded series and every
// snapshot metric is a pure function of (config, seed) -- the thread
// count and the shard count only choose how the same work is scheduled.
//
// The engine earns this by splitting parallel phases into serial PLAN
// (all main-stream Rng draws), parallel EXECUTE (per-task derived Rng
// streams, per-worker counter lanes, buffered mutations) and serial
// PUBLISH (order-sensitive effects replayed in global task order); see
// docs/architecture.md "Sharded round engine".  These tests run the same
// configuration at several --sim-threads / --sim-shards settings and
// require bit-identical results, under both delivery models.
//
// Note the *serial* engine (sim_threads <= 1 and sim_shards == 0) is a
// different, equally valid stream -- it interleaves Rng draws per query
// instead of splitting planning from execution -- so it is pinned by the
// golden-series recordings, not compared against the sharded runs here.
//
// Golden-series implication of the counting-sort planner: the sharded
// engine's query plan now draws per-peer counts and keys from streams
// keyed on (seed, round, peer) instead of burning main-stream draws per
// query, so the sharded stream differs from pre-planner sharded
// recordings.  That is within contract -- only the SERIAL stream is
// golden-pinned (RunQueryActor's legacy sampling loop is untouched);
// the sharded engine promises bit-identity across (threads, shards)
// settings plus statistical agreement with the serial aggregates, and
// both promises are asserted below.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pdht_system.h"

namespace pdht::core {
namespace {

constexpr uint64_t kRounds = 24;
constexpr size_t kTail = 8;

SystemConfig BaseConfig(Strategy strategy) {
  SystemConfig c;
  c.params.num_peers = 200;
  c.params.keys = 400;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 20.0;
  c.strategy = strategy;
  c.churn.enabled = true;  // exercise rejoins + probe failures in-phase
  c.churn.mean_online_s = 600.0;
  c.churn.mean_offline_s = 120.0;
  c.seed = 987654321;
  return c;
}

/// Every per-round series plus the end-of-run snapshot, as plain values.
struct RunRecord {
  std::map<std::string, std::vector<double>> series;
  RunSnapshot snap;
  /// Order-sensitive hash over every member's routing table at the end
  /// of the run (0 when the backend doesn't implement it, and for
  /// kNoIndex).  The series above can't see a table whose *contents*
  /// differ but whose message counts happen to agree; this can.
  uint64_t fingerprint = 0;
};

RunRecord RunOnce(const SystemConfig& config) {
  PdhtSystem system(config);
  system.RunRounds(kRounds);
  RunRecord rec;
  for (const std::string& name : system.engine().SeriesNames()) {
    const auto& ts = system.engine().Series(name);
    std::vector<double>& out = rec.series[name];
    out.reserve(ts.size());
    for (size_t i = 0; i < ts.size(); ++i) out.push_back(ts.at(i));
  }
  rec.snap = system.Snapshot(kTail);
  if (system.dht_overlay() != nullptr) {
    rec.fingerprint = system.dht_overlay()->RoutingFingerprint();
  }
  return rec;
}

void ExpectIdentical(const RunRecord& a, const RunRecord& b,
                     const std::string& label) {
  ASSERT_EQ(a.series.size(), b.series.size()) << label;
  for (const auto& [name, values] : a.series) {
    auto it = b.series.find(name);
    ASSERT_NE(it, b.series.end()) << label << ": missing series " << name;
    ASSERT_EQ(values.size(), it->second.size()) << label << ": " << name;
    for (size_t i = 0; i < values.size(); ++i) {
      // Exact equality on purpose: bit-identical is the claim under test.
      EXPECT_EQ(values[i], it->second[i])
          << label << ": series " << name << " diverged at round " << i;
    }
  }
  EXPECT_EQ(a.snap.series_tail, b.snap.series_tail) << label;
  EXPECT_EQ(a.snap.index_keys, b.snap.index_keys) << label;
  EXPECT_EQ(a.snap.effective_key_ttl, b.snap.effective_key_ttl) << label;
  EXPECT_EQ(a.snap.dht_members, b.snap.dht_members) << label;
  EXPECT_EQ(a.snap.latency, b.snap.latency) << label;
  EXPECT_EQ(a.fingerprint, b.fingerprint) << label << ": routing tables";
}

SystemConfig Sharded(SystemConfig c, uint32_t threads, uint32_t shards) {
  c.sim_threads = threads;
  c.sim_shards = shards;
  return c;
}

TEST(ShardedDeterminismTest, ImmediateThreadCountsAreBitIdentical) {
  // sim_shards pinned so the eviction partition is fixed; only the
  // worker count varies.
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  RunRecord one = RunOnce(Sharded(base, 1, 4));
  RunRecord two = RunOnce(Sharded(base, 2, 4));
  RunRecord four = RunOnce(Sharded(base, 4, 4));
  ExpectIdentical(one, two, "immediate threads 1 vs 2");
  ExpectIdentical(one, four, "immediate threads 1 vs 4");
}

TEST(ShardedDeterminismTest, LatencyThreadCountsAreBitIdentical) {
  // Deferred delivery is the hard case: per-message latencies are
  // float-summed and histogrammed, so publish order must be exact --
  // lane buffers replay in global task order, not completion order.
  SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  base.delivery_model = net::DeliveryModelKind::kLatency;
  base.proximity_routing = false;
  RunRecord one = RunOnce(Sharded(base, 1, 4));
  RunRecord two = RunOnce(Sharded(base, 2, 4));
  RunRecord four = RunOnce(Sharded(base, 4, 4));
  ExpectIdentical(one, two, "latency threads 1 vs 2");
  ExpectIdentical(one, four, "latency threads 1 vs 4");
  // The latency axis is genuinely exercised, not trivially empty.
  EXPECT_GT(one.snap.latency.at(PdhtSystem::kMetricLookupRttCount), 0.0);
}

TEST(ShardedDeterminismTest, ShardCountsAreBitIdentical) {
  // The shard count partitions the eviction sweep; evicted-key effects
  // are commutative residency decrements, so any partition must produce
  // the same run.  Covers both delivery models.
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  ExpectIdentical(RunOnce(Sharded(base, 2, 1)),
                  RunOnce(Sharded(base, 2, 4)),
                  "immediate shards 1 vs 4");
  SystemConfig lat = base;
  lat.delivery_model = net::DeliveryModelKind::kLatency;
  lat.proximity_routing = false;
  ExpectIdentical(RunOnce(Sharded(lat, 2, 1)),
                  RunOnce(Sharded(lat, 2, 4)),
                  "latency shards 1 vs 4");
}

TEST(ShardedDeterminismTest, UnstructuredOnlyStrategyIsThreadInvariant) {
  // kNoIndex runs pure random-walk queries -- the per-task Rng plus
  // per-worker searcher path with no DHT routing at all.
  const SystemConfig base = BaseConfig(Strategy::kNoIndex);
  ExpectIdentical(RunOnce(Sharded(base, 1, 4)),
                  RunOnce(Sharded(base, 4, 4)),
                  "noindex threads 1 vs 4");
}

TEST(ShardedDeterminismTest, MaintenanceFingerprintMatrixChord) {
  // Sharded maintenance + parallel churn rejoins mutate routing tables
  // from worker threads; the fingerprint (an order-sensitive hash over
  // every finger/successor of every member) must be bit-identical across
  // the full threads x shards matrix.  Churn is on in BaseConfig, so
  // both the probe/repair path and the rejoin-rebuild path run.
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  const RunRecord ref = RunOnce(Sharded(base, 1, 1));
  EXPECT_NE(ref.fingerprint, 0u);
  for (uint32_t threads : {2u, 4u}) {
    for (uint32_t shards : {1u, 4u}) {
      ExpectIdentical(ref, RunOnce(Sharded(base, threads, shards)),
                      "chord fp threads " + std::to_string(threads) +
                          " shards " + std::to_string(shards));
    }
  }
}

TEST(ShardedDeterminismTest, MaintenanceFingerprintMatrixPGrid) {
  // P-Grid's sharded maintenance repairs reference lists from worker
  // threads (each task writes only its own member's refs; candidate
  // scans read the other members' frozen paths).  The fingerprint hashes
  // every path and per-level reference list, so a single repair landing
  // in a different slot at a different thread count would show.
  SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  base.backend = DhtBackend::kPGrid;
  const RunRecord ref = RunOnce(Sharded(base, 1, 1));
  EXPECT_NE(ref.fingerprint, 0u);
  for (uint32_t threads : {2u, 4u}) {
    for (uint32_t shards : {1u, 4u}) {
      ExpectIdentical(ref, RunOnce(Sharded(base, threads, shards)),
                      "pgrid fp threads " + std::to_string(threads) +
                          " shards " + std::to_string(shards));
    }
  }
}

TEST(ShardedDeterminismTest, MaintenanceFingerprintMatrixCan) {
  // CAN's maintenance is probe-only (zones and neighbor lists are static
  // after SetMembers), so the fingerprint doubles as a check that the
  // parallel phase never mutates shared geometry.
  SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  base.backend = DhtBackend::kCan;
  const RunRecord ref = RunOnce(Sharded(base, 1, 1));
  EXPECT_NE(ref.fingerprint, 0u);
  for (uint32_t threads : {2u, 4u}) {
    for (uint32_t shards : {1u, 4u}) {
      ExpectIdentical(ref, RunOnce(Sharded(base, threads, shards)),
                      "can fp threads " + std::to_string(threads) +
                          " shards " + std::to_string(shards));
    }
  }
}

TEST(ShardedDeterminismTest, EveryBackendHasShardedMaintenance) {
  // The per-backend matrices above only bite if the sharded path is
  // actually taken; pin the capability bit for all four backends.
  for (DhtBackend backend : {DhtBackend::kChord, DhtBackend::kPGrid,
                             DhtBackend::kCan, DhtBackend::kKademlia}) {
    SystemConfig base = BaseConfig(Strategy::kPartialTtl);
    base.backend = backend;
    PdhtSystem system(Sharded(base, 2, 4));
    ASSERT_NE(system.dht_overlay(), nullptr);
    EXPECT_TRUE(system.dht_overlay()->has_sharded_maintenance())
        << DhtBackendName(backend);
  }
}

TEST(ShardedDeterminismTest, ShuffledPublishOrderIsBitIdentical) {
  // debug_shuffle_publish perturbs every *commutative* publish slice --
  // lane counter merges run last-to-first, the parallel per-origin stats
  // pass visits shards in reversed order -- while leaving the ordered
  // replay alone.  Bit-identical results prove the commutative/ordered
  // split is sound: nothing order-sensitive leaked into the shuffled
  // slices.  Covers both delivery models (deferred delivery additionally
  // routes boundary-drain drop tallies through the lanes).
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  SystemConfig shuffled = base;
  shuffled.debug_shuffle_publish = true;
  ExpectIdentical(RunOnce(Sharded(base, 4, 4)),
                  RunOnce(Sharded(shuffled, 4, 4)),
                  "immediate shuffled publish");
  SystemConfig lat = base;
  lat.delivery_model = net::DeliveryModelKind::kLatency;
  lat.proximity_routing = false;
  SystemConfig lat_shuffled = lat;
  lat_shuffled.debug_shuffle_publish = true;
  ExpectIdentical(RunOnce(Sharded(lat, 4, 4)),
                  RunOnce(Sharded(lat_shuffled, 4, 4)),
                  "latency shuffled publish");
}

TEST(ShardedDeterminismTest, MaintenanceFingerprintMatrixKademlia) {
  // Kademlia's rejoin rebuild *draws* (bucket shuffles) run on worker
  // threads under per-peer derived streams -- the strongest test of the
  // parallel-rejoin stream discipline.  Covered under both delivery
  // models: with latency + PNS the bucket contents come from RTT sorts,
  // without it from Rng shuffles.
  SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  base.backend = DhtBackend::kKademlia;
  const RunRecord ref = RunOnce(Sharded(base, 1, 1));
  EXPECT_NE(ref.fingerprint, 0u);
  for (uint32_t threads : {2u, 4u}) {
    for (uint32_t shards : {1u, 4u}) {
      ExpectIdentical(ref, RunOnce(Sharded(base, threads, shards)),
                      "kademlia fp threads " + std::to_string(threads) +
                          " shards " + std::to_string(shards));
    }
  }
  SystemConfig lat = base;
  lat.delivery_model = net::DeliveryModelKind::kLatency;
  ExpectIdentical(RunOnce(Sharded(lat, 1, 4)),
                  RunOnce(Sharded(lat, 4, 4)),
                  "kademlia latency fp threads 1 vs 4");
}

TEST(ShardedDeterminismTest, ProactiveUpdatesAreThreadInvariant) {
  // kIndexAll exercises the sharded proactive-update actor (plan draws
  // ranks serially, lookups + flood costing run parallel, replica Puts
  // publish in task order) together with sharded maintenance.
  const SystemConfig base = BaseConfig(Strategy::kIndexAll);
  const RunRecord ref = RunOnce(Sharded(base, 1, 4));
  ExpectIdentical(ref, RunOnce(Sharded(base, 2, 4)),
                  "indexAll threads 1 vs 2");
  ExpectIdentical(ref, RunOnce(Sharded(base, 4, 4)),
                  "indexAll threads 1 vs 4");
  // Updates actually flowed: the replica-push series is non-trivial.
  EXPECT_GT(ref.snap.series_tail.at(PdhtSystem::kSeriesMsgReplica), 0.0);
  SystemConfig lat = base;
  lat.delivery_model = net::DeliveryModelKind::kLatency;
  lat.proximity_routing = false;
  ExpectIdentical(RunOnce(Sharded(lat, 1, 4)),
                  RunOnce(Sharded(lat, 4, 4)),
                  "indexAll latency threads 1 vs 4");
}

TEST(ShardedDeterminismTest, AutoModeIsAnAliasNotAThirdStream) {
  // sim_threads_auto must select one of the two existing engines, never
  // invent a third stream: below the work floor it IS the serial run;
  // above it (not reachable at this test's scale) it is the sharded run
  // at some thread count, which the matrix above already pins.
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  SystemConfig autod = base;
  autod.sim_threads_auto = true;
  ExpectIdentical(RunOnce(base), RunOnce(autod),
                  "auto(small) vs explicit serial");
}

TEST(ShardedDeterminismTest, ShardedEngineMatchesSerialAggregates) {
  // The sharded stream is different from the serial stream by design,
  // but it must still simulate the same system: sanity-band checks that
  // catch gross divergence (e.g. dropped queries, double-counted hits).
  const SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  RunRecord serial = RunOnce(base);  // sim_threads=1, sim_shards=0
  RunRecord sharded = RunOnce(Sharded(base, 4, 16));
  const double serial_hit =
      serial.snap.series_tail.at(PdhtSystem::kSeriesHitRate);
  const double sharded_hit =
      sharded.snap.series_tail.at(PdhtSystem::kSeriesHitRate);
  EXPECT_NEAR(serial_hit, sharded_hit, 0.15);
  const double serial_msg =
      serial.snap.series_tail.at(PdhtSystem::kSeriesMsgTotal);
  const double sharded_msg =
      sharded.snap.series_tail.at(PdhtSystem::kSeriesMsgTotal);
  EXPECT_LT(std::abs(serial_msg - sharded_msg),
            0.5 * std::max(serial_msg, sharded_msg));
}

TEST(ShardedDeterminismTest, CountingSortPlannerMatchesLegacyStatistics) {
  // The sharded planner replaces the legacy serial plan (one binomial
  // count draw + one origin draw + one key draw per query, all off the
  // main stream) with per-peer floor(rate) + Bernoulli counts and
  // per-peer key streams.  Same aggregate model: expected queries per
  // round = num_peers * f_qry either way (the per-peer rate spreads it
  // over the online population), keys Zipf(alpha) either way, origins
  // uniform over online peers either way (each online peer issues its
  // own queries).  The serial engine still runs the legacy sampling, so
  // comparing tail aggregates across the engines checks the new planner
  // against the old statistics on live runs.  Wider coverage than the
  // aggregate test above: every strategy's dispatch path.
  for (Strategy strategy :
       {Strategy::kPartialTtl, Strategy::kPartialIdeal, Strategy::kNoIndex}) {
    const SystemConfig base = BaseConfig(strategy);
    RunRecord serial = RunOnce(base);
    RunRecord sharded = RunOnce(Sharded(base, 4, 4));
    const double serial_msg =
        serial.snap.series_tail.at(PdhtSystem::kSeriesMsgTotal);
    const double sharded_msg =
        sharded.snap.series_tail.at(PdhtSystem::kSeriesMsgTotal);
    EXPECT_GT(sharded_msg, 0.0) << static_cast<int>(strategy);
    EXPECT_LT(std::abs(serial_msg - sharded_msg),
              0.5 * std::max(serial_msg, sharded_msg))
        << "strategy " << static_cast<int>(strategy);
    const double serial_hit =
        serial.snap.series_tail.at(PdhtSystem::kSeriesHitRate);
    const double sharded_hit =
        sharded.snap.series_tail.at(PdhtSystem::kSeriesHitRate);
    EXPECT_NEAR(serial_hit, sharded_hit, 0.2)
        << "strategy " << static_cast<int>(strategy);
  }
}

}  // namespace
}  // namespace pdht::core
