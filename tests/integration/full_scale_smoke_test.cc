// Paper-scale smoke test: constructs the full 20,000-peer / 40,000-key
// scenario (Table 1) and runs a handful of rounds.  This is a viability
// check -- memory, construction time, and per-round throughput at the
// scale the paper models -- not a statistics test (bench_sim_validation
// --full covers longer paper-scale runs).

#include <gtest/gtest.h>

#include "core/pdht_system.h"

namespace pdht {
namespace {

TEST(FullScaleSmokeTest, PaperScalePartialTtlRuns) {
  core::SystemConfig c;
  c.params = model::ScenarioParams{};  // the real Table 1
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = true;
  c.churn.mean_online_s = 3600;
  c.churn.mean_offline_s = 1800;
  c.seed = 20040314;
  core::PdhtSystem sys(c);

  EXPECT_GT(sys.DhtMemberCount(), 1000u);
  EXPECT_LE(sys.DhtMemberCount(), 20000u);
  EXPECT_GT(sys.EffectiveKeyTtl(), 100.0);

  sys.RunRounds(5);

  // ~667 queries/round were issued and answered.
  EXPECT_GT(sys.engine().counters().Value("msg.total"), 10000u);
  // The index started filling.
  EXPECT_GT(sys.IndexedKeyCount(), 100u);
  // Query results were overwhelmingly found (the content always exists).
  int found = 0;
  for (uint64_t key = 0; key < 10; ++key) {
    if (sys.ExecuteQuery(key * 1111).found) ++found;
  }
  EXPECT_GE(found, 9);
}

TEST(FullScaleSmokeTest, PaperScaleNoIndexRuns) {
  core::SystemConfig c;
  c.params = model::ScenarioParams{};
  c.params.f_qry = 1.0 / 600;  // calmer load keeps the walk volume sane
  c.strategy = core::Strategy::kNoIndex;
  c.churn.enabled = false;
  c.seed = 99;
  core::PdhtSystem sys(c);
  sys.RunRounds(3);
  // Broadcast searches cost ~ cSUnstr = 720 each; 33 queries/round.
  double rate = sys.TailMessageRate(3);
  EXPECT_GT(rate, 5000.0);
  EXPECT_LT(rate, 100000.0);
}

}  // namespace
}  // namespace pdht
