// End-to-end: the full news-system pipeline -- articles -> metadata keys
// -> workload -> PDHT -- mirroring the paper's Section 4 scenario at
// reduced scale, plus cross-strategy sanity on identical substrates.

#include <gtest/gtest.h>

#include <set>

#include "core/pdht_system.h"
#include "metadata/article.h"
#include "metadata/key_generator.h"

namespace pdht {
namespace {

TEST(EndToEndTest, NewsCorpusFeedsKeyUniverse) {
  // 100 articles x 20 keys = 2,000 keys, the scaled version of the
  // paper's 2,000 x 20 = 40,000.
  metadata::ArticleCorpus corpus(100, 20, 31);
  metadata::KeyGenerator gen(20);
  std::set<uint64_t> key_universe;
  for (const auto& a : corpus.articles()) {
    for (const auto& k : gen.KeysFor(a)) key_universe.insert(k.hash);
  }
  EXPECT_GT(key_universe.size(), 800u);

  // The PDHT system operates on dense key ids; the application maps
  // hashes -> dense ids.  Verify the mapping machinery suffices.
  std::vector<uint64_t> dense(key_universe.begin(), key_universe.end());
  EXPECT_FALSE(dense.empty());
}

TEST(EndToEndTest, FullPipelineServesQueries) {
  core::SystemConfig c;
  c.params.num_peers = 300;
  c.params.keys = 600;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = true;
  c.churn.mean_online_s = 300;
  c.churn.mean_offline_s = 100;
  c.seed = 2024;
  core::PdhtSystem sys(c);
  sys.RunRounds(100);

  // Under churn, the system keeps answering: hit rate positive, message
  // rate finite, index non-empty.
  EXPECT_GT(sys.TailHitRate(20), 0.2);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  EXPECT_GT(sys.TailMessageRate(20), 0.0);
}

TEST(EndToEndTest, AllStrategiesAnswerQueriesSuccessfully) {
  for (auto s : {core::Strategy::kIndexAll, core::Strategy::kNoIndex,
                 core::Strategy::kPartialIdeal,
                 core::Strategy::kPartialTtl}) {
    core::SystemConfig c;
    c.params.num_peers = 200;
    c.params.keys = 400;
    c.params.stor = 20;
    c.params.repl = 10;
    c.params.f_qry = 1.0 / 4.0;
    c.strategy = s;
    c.churn.enabled = false;
    c.seed = 555;
    core::PdhtSystem sys(c);
    sys.RunRounds(10);
    int found = 0;
    for (uint64_t key = 0; key < 20; ++key) {
      if (sys.ExecuteQuery(key).found) ++found;
    }
    EXPECT_GE(found, 19) << core::StrategyName(s);
  }
}

TEST(EndToEndTest, MessageAccountingIsComplete) {
  // Every per-category counter must sum to msg.total: nothing escapes
  // accounting (design decision #5).
  core::SystemConfig c;
  c.params.num_peers = 200;
  c.params.keys = 400;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 4.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = true;
  c.churn.mean_online_s = 100;
  c.churn.mean_offline_s = 50;
  c.seed = 808;
  core::PdhtSystem sys(c);
  sys.RunRounds(30);
  auto& counters = sys.engine().counters();
  uint64_t total = counters.Value("msg.total");
  uint64_t parts = counters.SumWithPrefix("msg.dht.") +
                   counters.SumWithPrefix("msg.unstructured.") +
                   counters.SumWithPrefix("msg.replica.") +
                   counters.SumWithPrefix("msg.maint.") +
                   counters.SumWithPrefix("msg.overlay.");
  EXPECT_EQ(total, parts);
  EXPECT_GT(total, 0u);
}

TEST(EndToEndTest, LongRunStability) {
  // 500 rounds at small scale: no crashes, bounded index, sane series.
  core::SystemConfig c;
  c.params.num_peers = 150;
  c.params.keys = 300;
  c.params.stor = 10;
  c.params.repl = 5;
  c.params.f_qry = 1.0 / 5.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = true;
  c.churn.mean_online_s = 200;
  c.churn.mean_offline_s = 100;
  c.seed = 31337;
  core::PdhtSystem sys(c);
  sys.RunRounds(500);
  EXPECT_LE(sys.IndexedKeyCount(), 300u);
  const auto& rate = sys.engine().Series(core::PdhtSystem::kSeriesMsgTotal);
  EXPECT_EQ(rate.size(), 500u);
  // Steady state: compare two wide windows (wide enough to average over
  // the mass-expiry/re-insertion cycles the TTL policy produces -- the
  // paper's overhead reason I).  No runaway growth or collapse.
  double mid = rate.MeanOver(150, 325);
  double late = rate.TailMean(175);
  EXPECT_LT(late, mid * 2.5);
  EXPECT_GT(late, mid / 2.5);
}

}  // namespace
}  // namespace pdht
