// Parameterized health sweep over the full configuration cross-product:
// strategy x backend x churn.  Every combination must run, account its
// messages consistently, answer queries, and stay deterministic.

#include <gtest/gtest.h>

#include <tuple>

#include "core/pdht_system.h"

namespace pdht {
namespace {

using SweepParam = std::tuple<core::Strategy, core::DhtBackend, bool>;

class StrategySweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  core::SystemConfig MakeConfig() const {
    auto [strategy, backend, churn] = GetParam();
    core::SystemConfig c;
    c.params.num_peers = 250;
    c.params.keys = 500;
    c.params.stor = 20;
    c.params.repl = 10;
    c.params.f_qry = 1.0 / 5.0;
    c.params.f_upd = 1.0 / 3600.0;
    c.strategy = strategy;
    c.backend = backend;
    c.churn.enabled = churn;
    c.churn.mean_online_s = 150;
    c.churn.mean_offline_s = 75;
    c.seed = 13579;
    return c;
  }
};

TEST_P(StrategySweep, RunsHealthy) {
  core::SystemConfig c = MakeConfig();
  core::PdhtSystem sys(c);
  sys.RunRounds(40);

  // Accounting closes: category sums equal the total.
  auto& counters = sys.engine().counters();
  uint64_t total = counters.Value("msg.total");
  uint64_t parts = counters.SumWithPrefix("msg.dht.") +
                   counters.SumWithPrefix("msg.unstructured.") +
                   counters.SumWithPrefix("msg.replica.") +
                   counters.SumWithPrefix("msg.maint.") +
                   counters.SumWithPrefix("msg.overlay.");
  EXPECT_EQ(total, parts);
  EXPECT_GT(total, 0u);

  // Queries resolve.
  int found = 0;
  for (uint64_t key = 0; key < 10; ++key) {
    if (sys.ExecuteQuery(key).found) ++found;
  }
  EXPECT_GE(found, 8);

  // Index residency is consistent with the strategy.
  switch (c.strategy) {
    case core::Strategy::kNoIndex:
      EXPECT_EQ(sys.IndexedKeyCount(), 0u);
      break;
    case core::Strategy::kIndexAll:
      EXPECT_GT(sys.IndexedKeyCount(), 450u);
      break;
    default:
      EXPECT_GT(sys.IndexedKeyCount(), 0u);
      EXPECT_LE(sys.IndexedKeyCount(), 500u);
      break;
  }
}

TEST_P(StrategySweep, Deterministic) {
  core::SystemConfig c = MakeConfig();
  core::PdhtSystem a(c);
  core::PdhtSystem b(c);
  a.RunRounds(15);
  b.RunRounds(15);
  EXPECT_EQ(a.engine().counters().Value("msg.total"),
            b.engine().counters().Value("msg.total"));
  EXPECT_EQ(a.IndexedKeyCount(), b.IndexedKeyCount());
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = core::StrategyName(std::get<0>(info.param));
  name += "_";
  name += core::DhtBackendName(std::get<1>(info.param));
  name += std::get<2>(info.param) ? "_churn" : "_static";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, StrategySweep,
    ::testing::Combine(
        ::testing::Values(core::Strategy::kIndexAll,
                          core::Strategy::kNoIndex,
                          core::Strategy::kPartialIdeal,
                          core::Strategy::kPartialTtl),
        ::testing::Values(core::DhtBackend::kChord,
                          core::DhtBackend::kPGrid,
                          core::DhtBackend::kCan,
                          core::DhtBackend::kKademlia),
        ::testing::Bool()),
    SweepName);

}  // namespace
}  // namespace pdht
