// Integration: the discrete simulator's measured costs must agree in shape
// with the analytical model (design decision #1 in DESIGN.md).  The model
// and the simulator are independent code paths; agreement here is the core
// validity check of the reproduction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pdht_system.h"
#include "model/cost_model.h"
#include "model/selection_model.h"
#include "overlay/dht/chord.h"
#include "overlay/dht/maintenance.h"
#include "overlay/unstructured/random_walk.h"
#include "overlay/unstructured/replication.h"
#include "stats/histogram.h"

namespace pdht {
namespace {

model::ScenarioParams Scaled() {
  model::ScenarioParams p;
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  p.alpha = 1.2;
  p.f_qry = 1.0 / 5.0;
  p.f_upd = 1.0 / 3600.0;
  p.env = 1.0 / 14.0;
  return p;
}

TEST(ModelVsSimTest, UnstructuredSearchCostNearCSUnstr) {
  // Eq. 6 predicts cSUnstr = numPeers/repl * dup.  Measure the mean
  // random-walk cost on the real substrate and compare within 2x.
  auto p = Scaled();
  Rng rng(5);
  overlay::RandomGraph graph(static_cast<uint32_t>(p.num_peers), 6.0,
                             &rng);
  CounterRegistry counters;
  net::Network net(&counters);
  for (uint32_t i = 0; i < p.num_peers; ++i) net.SetOnline(i, true);
  overlay::ReplicaPlacement placement(
      static_cast<uint32_t>(p.num_peers),
      static_cast<uint32_t>(p.repl), Rng(7));
  placement.PlaceKeys(50);
  overlay::RandomWalkConfig cfg;
  cfg.check_interval = 0;
  overlay::RandomWalkSearch walk(
      &graph, &net,
      [&](net::PeerId peer, uint64_t key) {
        return placement.PeerHoldsKey(peer, key);
      },
      cfg, Rng(9));
  Histogram cost;
  Rng pick(11);
  for (int trial = 0; trial < 300; ++trial) {
    net::PeerId origin =
        static_cast<net::PeerId>(pick.UniformU64(p.num_peers));
    overlay::WalkResult r = walk.Search(origin, trial % 50);
    ASSERT_TRUE(r.found);
    cost.Add(static_cast<double>(r.messages));
  }
  model::CostModel model(p);
  double predicted = model.CostSearchUnstructured();  // 72
  EXPECT_GT(cost.mean(), predicted * 0.4);
  EXPECT_LT(cost.mean(), predicted * 2.0);
}

TEST(ModelVsSimTest, DhtLookupHopsNearCSIndx) {
  // Eq. 7 predicts 0.5*log2(n) hops.
  auto p = Scaled();
  CounterRegistry counters;
  net::Network net(&counters);
  overlay::ChordOverlay chord(&net, Rng(13));
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  chord.SetMembers(members);
  Histogram hops;
  Rng pick(15);
  for (int trial = 0; trial < 400; ++trial) {
    net::PeerId origin =
        static_cast<net::PeerId>(pick.UniformU64(p.num_peers));
    overlay::LookupResult r = chord.Lookup(origin, pick.Next());
    ASSERT_TRUE(r.success);
    hops.Add(static_cast<double>(r.hops));
  }
  model::CostModel model(p);
  double predicted =
      model.CostSearchIndex(p.num_peers);  // 0.5*log2(400) ~= 4.3
  EXPECT_GT(hops.mean(), predicted * 0.5);
  EXPECT_LT(hops.mean(), predicted * 2.0);
}

TEST(ModelVsSimTest, MaintenanceTrafficNearCRtn) {
  // Eq. 8's numerator: probes per round across the ring = env *
  // log2-ish table size * members.  Compare against the measured probes.
  auto p = Scaled();
  CounterRegistry counters;
  net::Network net(&counters);
  overlay::ChordOverlay chord(&net, Rng(17));
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  chord.SetMembers(members);
  overlay::ChordMaintenance maint(&chord, &net, p.env, Rng(19));
  constexpr int kRounds = 50;
  for (int r = 0; r < kRounds; ++r) maint.RunRound();
  double measured_per_round =
      static_cast<double>(maint.stats().probes_sent) / kRounds;
  // Model: env * log2(nap) per peer; our tables carry log2(n)+2 fingers
  // plus successors, so allow a 3x corridor.
  double predicted_per_round =
      p.env * std::log2(static_cast<double>(p.num_peers)) *
      static_cast<double>(p.num_peers);
  EXPECT_GT(measured_per_round, predicted_per_round * 0.5);
  EXPECT_LT(measured_per_round, predicted_per_round * 3.0);
}

TEST(ModelVsSimTest, StrategyOrderingMatchesFig1) {
  // At a busy query rate the simulated per-round message cost must order
  // the strategies exactly as Fig. 1 does: partial <= min(indexAll,
  // noIndex), and noIndex is the most expensive.
  auto run = [&](core::Strategy s) {
    core::SystemConfig c;
    c.params = Scaled();
    c.strategy = s;
    c.churn.enabled = false;
    c.seed = 77;
    core::PdhtSystem sys(c);
    sys.RunRounds(60);
    return sys.TailMessageRate(20);
  };
  double no_index = run(core::Strategy::kNoIndex);
  double index_all = run(core::Strategy::kIndexAll);
  double partial_ideal = run(core::Strategy::kPartialIdeal);
  double partial_ttl = run(core::Strategy::kPartialTtl);

  // At fQry = 1/5 with 400 peers, broadcasts dominate by far.
  EXPECT_GT(no_index, index_all);
  // Ideal partial beats both baselines (the paper's headline claim).
  EXPECT_LT(partial_ideal, no_index);
  EXPECT_LT(partial_ideal, index_all * 1.1);
  // The TTL algorithm is costlier than ideal partial but far below
  // broadcasting everything.
  EXPECT_GE(partial_ttl, partial_ideal * 0.8);
  EXPECT_LT(partial_ttl, no_index);
}

TEST(ModelVsSimTest, TtlIndexSizeTracksSelectionModel) {
  // Eq. 15 predicts the expected number of resident keys.  The simulated
  // steady-state index size should land in the same ballpark (within 2.5x;
  // capacity displacement and churnless replicas make it inexact).
  auto p = Scaled();
  core::SystemConfig c;
  c.params = p;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 99;
  core::PdhtSystem sys(c);
  sys.RunRounds(150);
  model::SelectionModel sel(p);
  double predicted =
      sel.ExpectedKeysInIndex(p.f_qry, sys.EffectiveKeyTtl());
  double measured = sys.engine()
                        .Series(core::PdhtSystem::kSeriesIndexSize)
                        .TailMean(30);
  EXPECT_GT(measured, predicted / 2.5);
  EXPECT_LT(measured, predicted * 2.5);
}

}  // namespace
}  // namespace pdht
