// Golden per-round series: proof that the allocation-free accounting
// overhaul (interned counter handles, prefix groups, scratch replica
// buffers, templated eviction callbacks, rejection-loop sizing) changed
// the simulator's *cost*, not its *semantics*.
//
// The expected values below were recorded by running the exact
// configurations in GoldenConfig and printing every kSeries* series at
// full double precision.  The simulator must reproduce them bit-for-bit:
// every counted message, every RNG draw and every eviction/order decision
// has to be identical for these to match over a churned 24-round run.
//
// Last re-recorded when RandomOnlinePeer switched from rejection sampling
// to one uniform draw over the network's dense online index (an
// intentional stream change: one Rng value per call instead of a variable
// number, and exactly uniform).  Only the query-origin-dependent series
// moved -- hit rate, index growth, eviction and churn series were
// bit-identical before and after, since origins affect path lengths, not
// outcomes.
//
// If a future PR changes behaviour *intentionally* (new message type on a
// counted path, different routing decision), re-record with the
// documented procedure below and say so in the PR:
//   run a PdhtSystem at GoldenConfig(strategy) for kGoldenRounds, print
//   engine().Series(name) for each series with %.17g.
//
// These recordings pin the *serial* round loop (sim_threads == 1).  The
// sharded engine draws an intentionally different stream (queries are
// planned up front); its own invariant -- bit-identical series and
// snapshots at any --sim-threads / shard count -- is gated by
// sharded_determinism_test.cc in this directory.

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"

namespace pdht::core {
namespace {

constexpr uint64_t kGoldenRounds = 24;

SystemConfig GoldenConfig(Strategy strategy) {
  SystemConfig c;
  c.params.num_peers = 200;
  c.params.keys = 400;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 20.0;  // visible proactive-update traffic
  c.strategy = strategy;
  c.churn.enabled = true;  // exercise probe failures, repairs, rejoins
  c.churn.mean_online_s = 600.0;
  c.churn.mean_offline_s = 120.0;
  c.seed = 987654321;
  return c;
}

struct GoldenSeries {
  const char* name;
  std::vector<double> values;
};

void ExpectGolden(Strategy strategy, const std::vector<GoldenSeries>& golden,
                  const std::function<void(SystemConfig&)>& patch = {}) {
  SystemConfig config = GoldenConfig(strategy);
  if (patch) patch(config);
  PdhtSystem system(config);
  system.RunRounds(kGoldenRounds);
  for (const GoldenSeries& g : golden) {
    ASSERT_TRUE(system.engine().HasSeries(g.name)) << g.name;
    const auto& ts = system.engine().Series(g.name);
    ASSERT_EQ(ts.size(), g.values.size()) << g.name;
    for (size_t i = 0; i < g.values.size(); ++i) {
      // Exact equality on purpose: these are integer message counts and
      // deterministically derived ratios, and "bit-identical" is the
      // claim under test.
      EXPECT_EQ(ts.at(i), g.values[i])
          << g.name << " diverged at round " << i;
    }
  }
}

/// The partialTtl golden recording, shared by the plain run and the
/// delivery-model variants below.
const std::vector<GoldenSeries>& PartialTtlGolden() {
  static const std::vector<GoldenSeries> golden = {
      {PdhtSystem::kSeriesMsgTotal,
       {6301, 1731, 2055, 5813, 2220,
        3091, 3829, 1319, 587, 1790,
        3229, 1763, 876, 1146, 1811,
        895, 1280, 1695, 1084, 1201,
        762, 1746, 1796, 685}},
      {PdhtSystem::kSeriesMsgDht,
       {333, 308, 267, 337, 298,
        263, 344, 303, 142, 190,
        219, 210, 274, 258, 248,
        294, 299, 245, 265, 380,
        269, 191, 301, 213}},
      {PdhtSystem::kSeriesMsgUnstructured,
       {5047, 718, 1209, 4663, 1232,
        2249, 2673, 291, 136, 1145,
        2449, 1153, 128, 308, 1091,
        94, 382, 1069, 200, 149,
        147, 1171, 1059, 93}},
      {PdhtSystem::kSeriesMsgReplica,
       {846, 630, 504, 738, 540,
        504, 738, 650, 234, 306,
        486, 324, 398, 504, 324,
        432, 522, 306, 470, 596,
        270, 306, 360, 234}},
      {PdhtSystem::kSeriesMsgMaint,
       {75, 75, 75, 75, 150,
        75, 74, 75, 75, 149,
        75, 76, 76, 76, 148,
        75, 77, 75, 149, 76,
        76, 78, 76, 145}},
      {PdhtSystem::kSeriesHitRate,
       {0.51282051282051277, 0.59999999999999998, 0.74285714285714288,
        0.62790697674418605, 0.80000000000000004,
        0.77777777777777779, 0.68181818181818177, 0.78723404255319152,
        0.80000000000000004, 0.86206896551724133,
        0.69696969696969702, 0.87878787878787878, 0.88095238095238093,
        0.78947368421052633, 0.92682926829268297,
        0.88095238095238093, 0.78048780487804881, 0.94444444444444442,
        0.85365853658536583, 0.89090909090909087,
        0.92500000000000004, 0.89655172413793105, 0.93333333333333335,
        0.91428571428571426}},
      {PdhtSystem::kSeriesIndexSize,
       {19, 33, 42, 58, 66,
        74, 88, 98, 103, 107,
        117, 121, 126, 134, 137,
        142, 151, 153, 159, 165,
        168, 171, 174, 177}},
      {PdhtSystem::kSeriesOnlineFraction,
       {0.81499999999999995, 0.81499999999999995, 0.81000000000000005,
        0.81000000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005,
        0.80500000000000005, 0.80500000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005,
        0.80500000000000005, 0.81000000000000005, 0.81000000000000005,
        0.81999999999999995, 0.81499999999999995,
        0.81000000000000005, 0.80500000000000005, 0.80000000000000004,
        0.80000000000000004}},
  };
  return golden;
}

TEST(GoldenSeriesTest, PartialTtlRunIsBitIdenticalToRecording) {
  ExpectGolden(Strategy::kPartialTtl, PartialTtlGolden());
}

// --- Delivery-model variants (the PR 4 refactor's core claim) ----------
//
// Network now routes every send through a pluggable DeliveryModel.  The
// default ImmediateDelivery must be a true no-op -- the same golden
// series, bit for bit -- and LatencyDelivery must change *when* handlers
// run (and what latency is measured) without perturbing a single counted
// message or RNG draw.

TEST(GoldenSeriesTest, ExplicitImmediateDeliveryMatchesGolden) {
  ExpectGolden(Strategy::kPartialTtl, PartialTtlGolden(),
               [](SystemConfig& c) {
                 c.delivery_model = net::DeliveryModelKind::kImmediate;
               });
}

TEST(GoldenSeriesTest, LatencyDeliveryKeepsMessageCountsBitIdentical) {
  // Deferred delivery with proximity routing off: the coordinate space is
  // a pure hash (no Rng stream consumed) and deliveries have no behaviour
  // feedback, so every message-count and hit-rate series must equal the
  // immediate-mode golden recording exactly, while the latency axis
  // opens up (non-empty lookup RTT histogram).
  SystemConfig config = GoldenConfig(Strategy::kPartialTtl);
  config.delivery_model = net::DeliveryModelKind::kLatency;
  config.proximity_routing = false;
  PdhtSystem system(config);
  system.RunRounds(kGoldenRounds);
  for (const GoldenSeries& g : PartialTtlGolden()) {
    ASSERT_TRUE(system.engine().HasSeries(g.name)) << g.name;
    const auto& ts = system.engine().Series(g.name);
    ASSERT_EQ(ts.size(), g.values.size()) << g.name;
    for (size_t i = 0; i < g.values.size(); ++i) {
      EXPECT_EQ(ts.at(i), g.values[i]) << g.name << " diverged at round "
                                       << i << " under LatencyDelivery";
    }
  }
  EXPECT_GT(system.lookup_rtt_ms().count(), 0u);
  EXPECT_GT(system.lookup_rtt_ms().mean(), 0.0);
  EXPECT_TRUE(system.engine().HasSeries(PdhtSystem::kSeriesDeferredRate));
  // The deferred deliveries really went through the boundary drain.
  EXPECT_GE(system.engine().total_events_run(),
            system.network().DeferredCount());
}

TEST(GoldenSeriesTest, LatencyDeliveryIsDeterministicAcrossThreadCounts) {
  // Same seed => identical latency histograms (surfaced as the
  // lookup.rtt.* / lookup.stretch metrics) no matter how many experiment
  // threads executed the cells.
  exp::ExperimentSpec spec;
  spec.name = "latency_determinism";
  spec.base = GoldenConfig(Strategy::kPartialTtl);
  spec.base.delivery_model = net::DeliveryModelKind::kLatency;
  spec.base.backend = DhtBackend::kKademlia;
  spec.rounds = 12;
  spec.tail = 4;
  spec.seeds_per_cell = 2;
  exp::Axis prox{"proximity",
                 {{"blind",
                   [](SystemConfig& c) { c.proximity_routing = false; }},
                  {"pns",
                   [](SystemConfig& c) { c.proximity_routing = true; }}}};
  spec.axes = {prox};

  exp::ParallelRunner one({1});
  exp::ParallelRunner four({4});
  auto r1 = one.Run(spec);
  auto r4 = four.Run(spec);
  ASSERT_EQ(r1.size(), r4.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].error, "");
    EXPECT_EQ(r1[i].metrics, r4[i].metrics) << "cell " << i;
    // The latency metrics are actually present and populated.
    ASSERT_TRUE(r1[i].metrics.count(PdhtSystem::kMetricLookupRttMean));
    EXPECT_GT(r1[i].metrics.at(PdhtSystem::kMetricLookupRttCount), 0.0);
  }
}

TEST(GoldenSeriesTest, IndexAllRunIsBitIdenticalToRecording) {
  const std::vector<GoldenSeries> golden = {
      {PdhtSystem::kSeriesMsgTotal,
       {1044, 1203, 1091, 1323, 1045,
        1058, 1109, 1224, 948, 974,
        1123, 980, 1083, 1007, 1260,
        1100, 1059, 1206, 1102, 1201,
        1001, 1128, 1125, 1030}},
      {PdhtSystem::kSeriesMsgDht,
       {377, 392, 371, 423, 379,
        338, 372, 377, 246, 273,
        315, 315, 379, 341, 363,
        362, 355, 308, 340, 440,
        335, 305, 423, 345}},
      {PdhtSystem::kSeriesMsgUnstructured,
       {0, 0, 0, 0, 0,
        0, 0, 0, 0, 0,
        0, 0, 0, 0, 0,
        0, 0, 0, 0, 0,
        0, 0, 0, 0}},
      {PdhtSystem::kSeriesMsgReplica,
       {504, 648, 558, 576, 504,
        558, 576, 524, 540, 540,
        486, 504, 542, 504, 576,
        576, 542, 576, 598, 596,
        504, 504, 540, 524}},
      {PdhtSystem::kSeriesMsgMaint,
       {163, 163, 162, 324, 162,
        162, 161, 323, 162, 161,
        322, 161, 162, 162, 321,
        162, 162, 322, 164, 165,
        162, 319, 162, 161}},
      {PdhtSystem::kSeriesHitRate,
       {1, 1, 1, 1, 1,
        1, 1, 1, 1, 1,
        1, 1, 1, 1, 1,
        1, 1, 1, 1, 1,
        1, 1, 1, 1}},
      {PdhtSystem::kSeriesIndexSize,
       {400, 400, 400, 400, 400,
        400, 400, 400, 400, 400,
        400, 400, 400, 400, 400,
        400, 400, 400, 400, 400,
        400, 400, 400, 400}},
      {PdhtSystem::kSeriesOnlineFraction,
       {0.81499999999999995, 0.81499999999999995, 0.81000000000000005,
        0.81000000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005,
        0.80500000000000005, 0.80500000000000005, 0.81000000000000005,
        0.81000000000000005, 0.80500000000000005,
        0.80500000000000005, 0.81000000000000005, 0.81000000000000005,
        0.81999999999999995, 0.81499999999999995,
        0.81000000000000005, 0.80500000000000005, 0.80000000000000004,
        0.80000000000000004}},
  };
  ExpectGolden(Strategy::kIndexAll, golden);
}

}  // namespace
}  // namespace pdht::core
