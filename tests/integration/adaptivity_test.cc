// Integration: query-adaptivity (paper Sections 5.2 and 6).  "Our scheme
// is able to automatically adjust the index to changing query frequencies
// and distributions."

#include <gtest/gtest.h>

#include "core/pdht_system.h"

namespace pdht {
namespace {

model::ScenarioParams Scaled() {
  model::ScenarioParams p;
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  p.alpha = 1.2;
  p.f_qry = 1.0 / 5.0;
  p.f_upd = 1.0 / 3600.0;
  p.env = 1.0 / 14.0;
  return p;
}

core::SystemConfig TtlConfig(uint64_t seed = 4242) {
  core::SystemConfig c;
  c.params = Scaled();
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = seed;
  return c;
}

TEST(AdaptivityTest, IndexConvergesToPopularKeys) {
  core::PdhtSystem sys(TtlConfig());
  sys.RunRounds(100);
  // The head of the Zipf distribution must be resident: check that the
  // top-10 ranked keys answer from the index.
  int resident = 0;
  for (uint64_t r = 1; r <= 10; ++r) {
    uint64_t key = sys.workload().KeyAtRank(r);
    core::QueryOutcome out = sys.ExecuteQuery(key);
    if (out.answered_from_index) ++resident;
  }
  EXPECT_GE(resident, 8);
}

TEST(AdaptivityTest, UnpopularKeysAreNotResident) {
  // With the derived keyTtl (~200 rounds at this scale) even deep-tail
  // keys linger; pin a short TTL so the residency contrast is sharp.
  core::SystemConfig cfg = TtlConfig(7);
  cfg.key_ttl = 30.0;
  core::PdhtSystem sys(cfg);
  sys.RunRounds(100);
  // Deep-tail keys should not sit in the index (they would only waste
  // maintenance); sample ranks near the very bottom.
  int resident = 0;
  for (uint64_t r = 790; r <= 799; ++r) {
    uint64_t key = sys.workload().KeyAtRank(r);
    // Probe residency without executing a query (a query would insert!).
    // Use the recorded index size series as a proxy plus direct outcome:
    core::QueryOutcome out = sys.ExecuteQuery(key);
    if (out.answered_from_index) ++resident;
  }
  EXPECT_LE(resident, 6);
}

TEST(AdaptivityTest, FullShiftRecoversWithinTtlWindow) {
  core::PdhtSystem sys(TtlConfig(11));
  sys.RunRounds(80);
  double steady = sys.TailHitRate(20);
  ASSERT_GT(steady, 0.4);

  sys.ShiftPopularity();
  sys.RunRounds(2);
  const auto& hits = sys.engine().Series(core::PdhtSystem::kSeriesHitRate);
  double post_shift = hits.MeanOver(80, 82);
  EXPECT_LT(post_shift, steady);

  // Recovery: within ~60 rounds the hot keys of the new distribution are
  // re-learned by miss-triggered insertion.
  sys.RunRounds(80);
  double recovered = sys.TailHitRate(20);
  EXPECT_GT(recovered, steady * 0.8);
}

TEST(AdaptivityTest, GradualDriftIsAbsorbed) {
  core::PdhtSystem sys(TtlConfig(13));
  sys.RunRounds(80);
  double steady = sys.TailHitRate(20);
  // Rotate popularity by a few ranks every 10 rounds: mild drift.
  for (int burst = 0; burst < 5; ++burst) {
    sys.RotatePopularity(5);
    sys.RunRounds(10);
  }
  double drifted = sys.TailHitRate(20);
  // Mild drift must not collapse the hit rate.
  EXPECT_GT(drifted, steady * 0.6);
}

TEST(AdaptivityTest, LoadDropShrinksIndex) {
  // When the query frequency falls, fewer keys stay above fMin, so the
  // TTL index should shrink (Fig. 3's trend, realized dynamically).
  core::SystemConfig busy = TtlConfig(17);
  busy.key_ttl = 30.0;  // fixed TTL so the effect is purely query-driven
  core::PdhtSystem sys(busy);
  sys.RunRounds(80);
  double size_busy = sys.engine()
                         .Series(core::PdhtSystem::kSeriesIndexSize)
                         .TailMean(10);

  core::SystemConfig calm = TtlConfig(17);
  calm.key_ttl = 30.0;
  calm.params.f_qry = 1.0 / 50.0;  // 10x fewer queries
  core::PdhtSystem sys2(calm);
  sys2.RunRounds(80);
  double size_calm = sys2.engine()
                         .Series(core::PdhtSystem::kSeriesIndexSize)
                         .TailMean(10);
  EXPECT_LT(size_calm, size_busy * 0.6);
}

TEST(AdaptivityTest, HitRateSeriesMonotoneSmoothedDuringWarmup) {
  core::PdhtSystem sys(TtlConfig(19));
  sys.RunRounds(60);
  const auto& hits = sys.engine().Series(core::PdhtSystem::kSeriesHitRate);
  auto smooth = hits.MovingAverage(10);
  // Smoothed warm-up curve should be (weakly) increasing in large steps.
  EXPECT_LT(smooth[5], smooth[25] + 0.05);
  EXPECT_LT(smooth[25], smooth[55] + 0.05);
}

}  // namespace
}  // namespace pdht
