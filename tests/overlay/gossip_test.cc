#include "overlay/replica/gossip.h"

#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace pdht::overlay {
namespace {

struct GossipFixture {
  GossipFixture(uint32_t n, double degree, uint64_t seed = 1)
      : net(&counters), rng(seed),
        group(7, Members(n), degree, &rng), gossip(&net) {
    for (uint32_t i = 0; i < n; ++i) net.SetOnline(i, true);
  }
  static std::vector<net::PeerId> Members(uint32_t n) {
    std::vector<net::PeerId> m;
    for (uint32_t i = 0; i < n; ++i) m.push_back(i);
    return m;
  }
  pdht::CounterRegistry counters;
  net::Network net;
  Rng rng;
  ReplicaGroup group;
  GossipProtocol gossip;
};

TEST(GossipTest, PushReachesAllOnlineReplicas) {
  GossipFixture f(50, 4.0);
  uint64_t v = f.group.ProduceUpdate(0);
  GossipResult r = f.gossip.PushUpdate(&f.group, 0, v);
  EXPECT_EQ(r.replicas_reached, 50u);
  EXPECT_DOUBLE_EQ(f.group.ConsistentFraction(), 1.0);
}

TEST(GossipTest, PushCostTracksReplTimesDup2) {
  // Eq. 9 / Eq. 16: flooding the replica subnetwork costs ~ repl * dup2
  // messages.  Each informed replica forwards to all neighbors except its
  // rumor source, so a flood over a graph with average degree d costs
  // ~ repl*(d-1) transmissions; d = dup2 + 1 = 2.8 yields repl * 1.8.
  constexpr uint32_t kRepl = 50;
  pdht::Histogram cost;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    GossipFixture f(kRepl, 2.8, seed);
    uint64_t v = f.group.ProduceUpdate(0);
    GossipResult r = f.gossip.PushUpdate(&f.group, 0, v);
    cost.Add(static_cast<double>(r.messages));
  }
  double expected = kRepl * 1.8;
  EXPECT_NEAR(cost.mean(), expected, expected * 0.3);
}

TEST(GossipTest, PushSkipsOfflineReplicas) {
  GossipFixture f(30, 4.0);
  f.net.SetOnline(5, false);
  f.net.SetOnline(6, false);
  uint64_t v = f.group.ProduceUpdate(0);
  GossipResult r = f.gossip.PushUpdate(&f.group, 0, v);
  EXPECT_LE(r.replicas_reached, 28u);
  EXPECT_EQ(f.group.VersionAt(5), 0u);
  EXPECT_EQ(f.group.VersionAt(6), 0u);
}

TEST(GossipTest, PushFromOfflineOriginDoesNothing) {
  GossipFixture f(10, 3.0);
  f.net.SetOnline(0, false);
  uint64_t v = f.group.ProduceUpdate(0);
  GossipResult r = f.gossip.PushUpdate(&f.group, 0, v);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.replicas_reached, 0u);
}

TEST(GossipTest, PushMessagesLandOnReplicaCounter) {
  GossipFixture f(20, 3.0);
  uint64_t v = f.group.ProduceUpdate(0);
  GossipResult r = f.gossip.PushUpdate(&f.group, 0, v);
  EXPECT_EQ(f.counters.Value("msg.replica.push"), r.messages);
}

TEST(GossipTest, PullOnRejoinCatchesUp) {
  GossipFixture f(20, 4.0);
  // Replica 3 misses an update while offline.
  f.net.SetOnline(3, false);
  uint64_t v = f.group.ProduceUpdate(0);
  f.gossip.PushUpdate(&f.group, 0, v);
  EXPECT_EQ(f.group.VersionAt(3), 0u);
  // It rejoins and pulls.
  f.net.SetOnline(3, true);
  GossipResult r = f.gossip.PullOnRejoin(&f.group, 3);
  EXPECT_EQ(r.messages, 2u);  // pull + response
  EXPECT_EQ(f.group.VersionAt(3), v);
}

TEST(GossipTest, PullWithAllNeighborsOfflineFails) {
  GossipFixture f(5, 4.0);
  for (uint32_t i = 0; i < 5; ++i) f.net.SetOnline(i, false);
  f.net.SetOnline(2, true);
  GossipResult r = f.gossip.PullOnRejoin(&f.group, 2);
  EXPECT_EQ(r.replicas_reached, 0u);
}

TEST(GossipTest, PullIgnoresNonMembers) {
  GossipFixture f(5, 3.0);
  GossipResult r = f.gossip.PullOnRejoin(&f.group, 999);
  EXPECT_EQ(r.messages, 0u);
}

TEST(GossipTest, FloodQueryFindsHolder) {
  GossipFixture f(40, 4.0);
  net::PeerId holder = 17;
  ReplicaQueryResult r = f.gossip.FloodQuery(
      f.group, 0, [&](net::PeerId p) { return p == holder; });
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.found_at, holder);
  EXPECT_GT(r.messages, 0u);
}

TEST(GossipTest, FloodQueryLocalHitIsFree) {
  GossipFixture f(10, 3.0);
  ReplicaQueryResult r = f.gossip.FloodQuery(
      f.group, 4, [](net::PeerId p) { return p == 4; });
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(GossipTest, FloodQueryNoHolderFloodsEverything) {
  GossipFixture f(25, 3.0);
  ReplicaQueryResult r = f.gossip.FloodQuery(
      f.group, 0, [](net::PeerId) { return false; });
  EXPECT_FALSE(r.found);
  // The whole subnetwork was flooded (>= n-1 transmissions).
  EXPECT_GE(r.messages, 24u);
}

TEST(GossipTest, FloodQueryCountsOnReplicaFloodCounter) {
  GossipFixture f(15, 3.0);
  f.gossip.FloodQuery(f.group, 0, [](net::PeerId) { return false; });
  EXPECT_GT(f.counters.Value("msg.replica.flood"), 0u);
}

}  // namespace
}  // namespace pdht::overlay
