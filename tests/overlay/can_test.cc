#include "overlay/can/can.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/histogram.h"

namespace pdht::overlay {
namespace {

TEST(CanZoneTest, ContainsRespectsHalfOpenBounds) {
  CanZone z;
  z.lo = {0.25, 0.5};
  z.hi = {0.5, 1.0};
  EXPECT_TRUE(z.Contains(CanPoint{{0.25, 0.5}}));
  EXPECT_TRUE(z.Contains(CanPoint{{0.4, 0.9}}));
  EXPECT_FALSE(z.Contains(CanPoint{{0.5, 0.6}}));   // hi exclusive
  EXPECT_FALSE(z.Contains(CanPoint{{0.1, 0.6}}));
}

TEST(CanZoneTest, CenterAndVolume) {
  CanZone z;
  z.lo = {0.0, 0.0};
  z.hi = {0.5, 0.25};
  CanPoint c = z.Center();
  EXPECT_DOUBLE_EQ(c.x[0], 0.25);
  EXPECT_DOUBLE_EQ(c.x[1], 0.125);
  EXPECT_DOUBLE_EQ(z.Volume(), 0.125);
}

TEST(CanZoneTest, NeighborsShareFaces) {
  CanZone a;
  a.lo = {0.0, 0.0};
  a.hi = {0.5, 0.5};
  CanZone b;
  b.lo = {0.5, 0.0};
  b.hi = {1.0, 0.5};
  CanZone c;
  c.lo = {0.5, 0.5};
  c.hi = {1.0, 1.0};
  EXPECT_TRUE(a.IsNeighbor(b));   // share the x = 0.5 face
  EXPECT_TRUE(b.IsNeighbor(c));   // share the y = 0.5 face
  // a and c touch only at a corner: abutting in both dims but overlapping
  // in neither -- not neighbors.
  EXPECT_FALSE(a.IsNeighbor(c));
}

TEST(CanZoneTest, TorusWrapAdjacency) {
  CanZone a;
  a.lo = {0.0, 0.0};
  a.hi = {0.25, 1.0};
  CanZone b;
  b.lo = {0.75, 0.0};
  b.hi = {1.0, 1.0};
  EXPECT_TRUE(a.IsNeighbor(b));  // wrap at x = 0/1
}

struct CanFixture {
  explicit CanFixture(uint32_t n, uint64_t seed = 1)
      : net(&counters), can(&net, Rng(seed)) {
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    can.SetMembers(members);
  }
  pdht::CounterRegistry counters;
  net::Network net;
  CanOverlay can;
};

TEST(CanOverlayTest, InvariantsAfterConstruction) {
  for (uint32_t n : {1u, 2u, 3u, 7u, 64u, 100u}) {
    CanFixture f(n, n);
    EXPECT_EQ(f.can.CheckInvariants(), "") << "n=" << n;
    EXPECT_EQ(f.can.num_members(), n);
  }
}

TEST(CanOverlayTest, EveryKeyHasExactlyOneOwner) {
  CanFixture f(50);
  for (uint64_t key = 0; key < 300; ++key) {
    net::PeerId owner = f.can.ResponsibleMember(key);
    ASSERT_NE(owner, net::kInvalidPeer);
    EXPECT_TRUE(f.can.ZoneOf(owner).Contains(CanOverlay::KeyToPoint(key)));
  }
}

TEST(CanOverlayTest, NeighborListsAreSymmetric) {
  CanFixture f(40);
  for (net::PeerId a : f.can.members()) {
    for (net::PeerId b : f.can.NeighborsOf(a)) {
      const auto& back = f.can.NeighborsOf(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << a << " <-> " << b;
    }
  }
}

TEST(CanOverlayTest, LookupReachesOwner) {
  CanFixture f(100, 3);
  for (uint64_t key = 0; key < 60; ++key) {
    LookupResult r = f.can.Lookup(0, key);
    ASSERT_TRUE(r.success) << "key " << key;
    EXPECT_EQ(r.terminus, f.can.ResponsibleMember(key));
  }
}

TEST(CanOverlayTest, LocalLookupIsFree) {
  CanFixture f(30);
  uint64_t key = 5;
  net::PeerId owner = f.can.ResponsibleMember(key);
  LookupResult r = f.can.Lookup(owner, key);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(CanOverlayTest, HopsScaleAsSqrtN) {
  // d = 2: expected path length ~ (1/2) * sqrt(n) for greedy routing.
  CanFixture f(256, 5);
  pdht::Histogram hops;
  Rng pick(7);
  for (int trial = 0; trial < 400; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(256));
    LookupResult r = f.can.Lookup(origin, pick.Next());
    ASSERT_TRUE(r.success);
    hops.Add(static_cast<double>(r.hops));
  }
  double sqrt_n = std::sqrt(256.0);  // 16
  EXPECT_GT(hops.mean(), sqrt_n * 0.25);
  EXPECT_LT(hops.mean(), sqrt_n * 1.5);
}

TEST(CanOverlayTest, RoutesAroundOfflineZones) {
  CanFixture f(144, 9);
  Rng off(11);
  std::vector<bool> down(144, false);
  for (uint32_t i = 0; i < 144; ++i) {
    if (off.Bernoulli(0.15)) {
      f.net.SetOnline(i, false);
      down[i] = true;
    }
  }
  Rng pick(13);
  int attempts = 0;
  int ok = 0;
  for (int trial = 0; trial < 150; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(144));
    if (down[origin]) continue;
    uint64_t key = pick.Next();
    net::PeerId owner = f.can.ResponsibleMember(key);
    if (down[owner]) continue;  // unreachable by definition
    ++attempts;
    if (f.can.Lookup(origin, key).success) ++ok;
  }
  ASSERT_GT(attempts, 50);
  // Greedy CAN routing has genuine dead ends under churn (no
  // backtracking), but most lookups must still get through.
  EXPECT_GT(static_cast<double>(ok) / attempts, 0.75);
}

TEST(CanOverlayTest, MaintenanceProbesFlowAndAreCounted) {
  CanFixture f(64, 15);
  uint64_t probes = 0;
  for (int r = 0; r < 20; ++r) probes += f.can.RunMaintenanceRound(0.5);
  EXPECT_GT(probes, 0u);
  EXPECT_EQ(f.counters.Value("msg.maint.probe"), probes);
  // Budget: ~env * tableSize per peer per round.
  double expected = 0.0;
  for (net::PeerId p : f.can.members()) {
    expected += 0.5 * static_cast<double>(f.can.TableSize(p));
  }
  expected *= 20;
  EXPECT_NEAR(static_cast<double>(probes), expected, expected * 0.05 + 64);
}

TEST(CanOverlayTest, RandomOnlineMemberSkipsOffline) {
  CanFixture f(16);
  for (uint32_t i = 0; i < 16; ++i) {
    if (i != 3) f.net.SetOnline(i, false);
  }
  Rng rng(17);
  EXPECT_EQ(f.can.RandomOnlineMember(rng), 3u);
}

TEST(CanOverlayTest, SingleMemberOwnsEverything) {
  CanFixture f(1);
  EXPECT_EQ(f.can.ResponsibleMember(42), 0u);
  LookupResult r = f.can.Lookup(0, 42);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

TEST(CanOverlayTest, KeyToPointDeterministicAndSpread) {
  std::set<std::pair<int, int>> cells;
  for (uint64_t k = 0; k < 1000; ++k) {
    CanPoint p = CanOverlay::KeyToPoint(k);
    ASSERT_GE(p.x[0], 0.0);
    ASSERT_LT(p.x[0], 1.0);
    ASSERT_GE(p.x[1], 0.0);
    ASSERT_LT(p.x[1], 1.0);
    cells.insert({static_cast<int>(p.x[0] * 8),
                  static_cast<int>(p.x[1] * 8)});
  }
  // 1000 keys over an 8x8 grid must fill every cell.
  EXPECT_EQ(cells.size(), 64u);
}

}  // namespace
}  // namespace pdht::overlay
