// Stress: the Chord overlay + probing maintenance under sustained heavy
// churn.  Verifies the liveness properties the PDHT relies on: ring
// invariants never break, lookups from online members keep succeeding,
// staleness stays bounded, and message accounting stays consistent.

#include <gtest/gtest.h>

#include "overlay/dht/chord.h"
#include "overlay/dht/maintenance.h"
#include "sim/churn.h"

namespace pdht::overlay {
namespace {

class ChordChurnStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChordChurnStress, SurvivesSustainedChurn) {
  const uint64_t seed = GetParam();
  constexpr uint32_t kN = 300;
  CounterRegistry counters;
  net::Network net(&counters);
  ChordOverlay chord(&net, Rng(seed));
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < kN; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  chord.SetMembers(members);
  ChordMaintenance maint(&chord, &net, /*env=*/1.0, Rng(seed + 1));

  sim::ChurnConfig cc;
  cc.mean_online_s = 80;
  cc.mean_offline_s = 40;
  sim::ChurnModel churn(kN, cc, Rng(seed + 2));
  struct Ctx {
    net::Network* net;
    ChordMaintenance* maint;
  } ctx{&net, &maint};
  churn.AddObserver(
      [](void* vctx, uint32_t peer, bool online, double) {
        auto* c = static_cast<Ctx*>(vctx);
        c->net->SetOnline(peer, online);
        if (online) c->maint->OnPeerRejoin(peer);
      },
      &ctx);
  for (uint32_t i = 0; i < kN; ++i) net.SetOnline(i, churn.IsOnline(i));

  Rng pick(seed + 3);
  uint64_t lookups = 0;
  uint64_t successes = 0;
  for (int round = 1; round <= 200; ++round) {
    churn.AdvanceTo(static_cast<double>(round));
    maint.RunRound();
    ASSERT_EQ(chord.CheckInvariants(), "") << "round " << round;
    // A few lookups per round from random online members.
    for (int q = 0; q < 3; ++q) {
      net::PeerId origin = chord.RandomOnlineMember(pick);
      if (origin == net::kInvalidPeer) continue;
      ++lookups;
      LookupResult r = chord.Lookup(origin, pick.Next());
      if (r.success) ++successes;
    }
    if (round % 50 == 0) {
      EXPECT_LT(chord.StaleFingerFraction(), 0.6) << "round " << round;
    }
  }
  ASSERT_GT(lookups, 300u);
  // Under 1/3 downtime with aggressive probing, the overwhelming majority
  // of lookups must terminate at a live responsible peer or its live
  // successor.
  EXPECT_GT(static_cast<double>(successes) / static_cast<double>(lookups),
            0.9)
      << "successes " << successes << "/" << lookups;
  // Probe traffic really flowed and was accounted.
  EXPECT_GT(counters.Value("msg.maint.probe"), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChordChurnStress,
                         ::testing::Values(11, 22, 33, 44));

TEST(ChordChurnStressTest, MassDepartureThenRecovery) {
  constexpr uint32_t kN = 200;
  CounterRegistry counters;
  net::Network net(&counters);
  ChordOverlay chord(&net, Rng(7));
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < kN; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  chord.SetMembers(members);
  ChordMaintenance maint(&chord, &net, 2.0, Rng(8));

  // Half the network vanishes at once.
  for (uint32_t i = 0; i < kN; i += 2) net.SetOnline(i, false);
  // Lookups still work thanks to routing-around + successor scanning.
  Rng pick(9);
  int ok = 0;
  for (int q = 0; q < 50; ++q) {
    net::PeerId origin = chord.RandomOnlineMember(pick);
    ASSERT_NE(origin, net::kInvalidPeer);
    if (chord.Lookup(origin, pick.Next()).success) ++ok;
  }
  EXPECT_GT(ok, 40);
  // Maintenance grinds staleness down.
  for (int r = 0; r < 40; ++r) maint.RunRound();
  double stale_after = chord.StaleFingerFraction();
  EXPECT_LT(stale_after, 0.2);
  // Everyone returns; rejoin refreshes restore a fully live ring.
  for (uint32_t i = 0; i < kN; i += 2) {
    net.SetOnline(i, true);
    maint.OnPeerRejoin(i);
  }
  for (int r = 0; r < 20; ++r) maint.RunRound();
  EXPECT_LT(chord.StaleFingerFraction(), 0.05);
  int ok2 = 0;
  for (int q = 0; q < 50; ++q) {
    net::PeerId origin = chord.RandomOnlineMember(pick);
    if (chord.Lookup(origin, pick.Next()).success) ++ok2;
  }
  EXPECT_EQ(ok2, 50);
}

}  // namespace
}  // namespace pdht::overlay
