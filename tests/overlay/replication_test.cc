#include "overlay/unstructured/replication.h"

#include <gtest/gtest.h>

#include <set>

namespace pdht::overlay {
namespace {

TEST(ReplicaPlacementTest, PlacesExactlyReplReplicas) {
  ReplicaPlacement p(1000, 50, Rng(1));
  p.PlaceKey(7);
  EXPECT_EQ(p.ReplicasOf(7).size(), 50u);
}

TEST(ReplicaPlacementTest, ReplicasAreDistinctPeers) {
  ReplicaPlacement p(100, 50, Rng(2));
  p.PlaceKey(1);
  const auto& reps = p.ReplicasOf(1);
  std::set<net::PeerId> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), reps.size());
}

TEST(ReplicaPlacementTest, ReplClampedToPopulation) {
  ReplicaPlacement p(10, 50, Rng(3));
  p.PlaceKey(1);
  EXPECT_EQ(p.ReplicasOf(1).size(), 10u);
}

TEST(ReplicaPlacementTest, PeerHoldsKeyConsistent) {
  ReplicaPlacement p(500, 20, Rng(4));
  p.PlaceKey(42);
  for (net::PeerId peer : p.ReplicasOf(42)) {
    EXPECT_TRUE(p.PeerHoldsKey(peer, 42));
  }
  // Count holders exhaustively; must equal repl.
  int holders = 0;
  for (uint32_t peer = 0; peer < 500; ++peer) {
    if (p.PeerHoldsKey(peer, 42)) ++holders;
  }
  EXPECT_EQ(holders, 20);
}

TEST(ReplicaPlacementTest, PlaceKeyIdempotent) {
  ReplicaPlacement p(100, 10, Rng(5));
  p.PlaceKey(1);
  auto first = p.ReplicasOf(1);
  p.PlaceKey(1);
  EXPECT_EQ(p.ReplicasOf(1), first);
}

TEST(ReplicaPlacementTest, PlaceKeysBulk) {
  ReplicaPlacement p(200, 5, Rng(6));
  p.PlaceKeys(100);
  EXPECT_EQ(p.num_keys(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(p.IsPlaced(k));
  }
  EXPECT_FALSE(p.IsPlaced(100));
}

TEST(ReplicaPlacementTest, RemoveKeyClearsEverything) {
  ReplicaPlacement p(100, 10, Rng(7));
  p.PlaceKey(5);
  auto reps = p.ReplicasOf(5);
  p.RemoveKey(5);
  EXPECT_FALSE(p.IsPlaced(5));
  for (net::PeerId peer : reps) {
    EXPECT_FALSE(p.PeerHoldsKey(peer, 5));
  }
  EXPECT_TRUE(p.ReplicasOf(5).empty());
}

TEST(ReplicaPlacementTest, UnknownKeyQueries) {
  ReplicaPlacement p(100, 10, Rng(8));
  EXPECT_FALSE(p.IsPlaced(99));
  EXPECT_FALSE(p.PeerHoldsKey(0, 99));
  EXPECT_TRUE(p.ReplicasOf(99).empty());
  p.RemoveKey(99);  // no-op, must not crash
}

TEST(ReplicaPlacementTest, PlacementIsRoughlyUniform) {
  // With 1000 keys * 10 replicas over 100 peers, each peer should hold
  // ~100 keys.
  ReplicaPlacement p(100, 10, Rng(9));
  p.PlaceKeys(1000);
  for (uint32_t peer = 0; peer < 100; ++peer) {
    int held = 0;
    for (uint64_t k = 0; k < 1000; ++k) {
      if (p.PeerHoldsKey(peer, k)) ++held;
    }
    EXPECT_GT(held, 50);
    EXPECT_LT(held, 170);
  }
}

TEST(ReplicaPlacementTest, OnlineReplicaFraction) {
  ReplicaPlacement p(100, 10, Rng(10));
  p.PlaceKey(1);
  std::vector<bool> alive(100, true);
  EXPECT_DOUBLE_EQ(p.OnlineReplicaFraction(1, alive), 1.0);
  for (net::PeerId peer : p.ReplicasOf(1)) alive[peer] = false;
  EXPECT_DOUBLE_EQ(p.OnlineReplicaFraction(1, alive), 0.0);
  alive[p.ReplicasOf(1)[0]] = true;
  EXPECT_NEAR(p.OnlineReplicaFraction(1, alive), 0.1, 1e-12);
}

}  // namespace
}  // namespace pdht::overlay
