// RoutingDriver unit tests, against a scripted candidate generator (so
// every driver behaviour is pinned independently of the real backends):
// probe order and accounting, route-time PNS reordering *within*
// equal-progress groups only, timeout-aware failed-probe costing,
// alpha-concurrent batches with deterministic tie-breaks, stand-in /
// terminal-step / exhaustion / hop-limit termination -- plus end-to-end
// checks that route-time PNS lowers real backends' probed latency and
// that the alpha mode stays deterministic.

#include "overlay/routing_driver.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/delivery_model.h"
#include "net/network.h"
#include "overlay/dht/kademlia.h"
#include "overlay/pgrid/pgrid.h"
#include "sim/event_queue.h"
#include "stats/counter.h"

namespace pdht::overlay {
namespace {

/// Candidate generator with scripted per-peer candidate/fallback lists.
class ScriptedOverlay : public StructuredOverlay {
 public:
  ScriptedOverlay(net::Network* network, net::PeerId dest)
      : StructuredOverlay(network), dest_(dest) {}

  std::map<net::PeerId, std::vector<RouteCandidate>> candidates;
  std::map<net::PeerId, std::vector<RouteCandidate>> fallbacks;
  std::vector<net::PeerId> replica_group;  ///< scripted replica group
  uint32_t hop_limit = 32;
  uint32_t parallelism = 1;
  bool lenient = false;
  std::vector<net::PeerId> advances;  ///< OnAdvance recording

  void SetMembers(const std::vector<net::PeerId>& members) override {
    members_ = members;
  }
  bool IsMember(net::PeerId peer) const override {
    for (net::PeerId m : members_) {
      if (m == peer) return true;
    }
    return false;
  }
  size_t num_members() const override { return members_.size(); }
  const std::vector<net::PeerId>& members() const override {
    return members_;
  }
  net::PeerId ResponsibleMember(uint64_t) const override { return dest_; }
  void ResponsiblePeersInto(uint64_t, uint32_t count,
                            std::vector<net::PeerId>* out) const override {
    out->assign(replica_group.begin(), replica_group.end());
    if (out->size() > count) out->resize(count);
  }
  uint64_t RunMaintenanceRound(double) override { return 0; }

  bool StartLookup(net::PeerId, uint64_t, net::PeerId* responsible) override {
    if (members_.empty()) return false;
    *responsible = dest_;
    return true;
  }
  bool AtDestination(net::PeerId peer, uint64_t) const override {
    return peer == dest_;
  }
  uint32_t LookupHopLimit() const override { return hop_limit; }
  uint32_t LookupParallelism() const override { return parallelism; }
  bool LenientHopLimit() const override { return lenient; }
  void NextHops(const RouteState& state, uint64_t,
                std::vector<RouteCandidate>* out) override {
    auto it = candidates.find(state.cur);
    if (it != candidates.end()) *out = it->second;
  }
  bool FallbackHop(const RouteState& state, uint64_t, uint32_t k,
                   RouteCandidate* out) override {
    auto it = fallbacks.find(state.cur);
    if (it == fallbacks.end() || k >= it->second.size()) return false;
    *out = it->second[k];
    return true;
  }
  void OnAdvance(net::PeerId peer) override { advances.push_back(peer); }

 private:
  net::PeerId dest_;
  std::vector<net::PeerId> members_;
};

class ScriptedFixture : public ::testing::Test {
 protected:
  ScriptedFixture() : net(&counters), ov(&net, /*dest=*/9) {
    std::vector<net::PeerId> members;
    for (net::PeerId p = 0; p < 10; ++p) {
      members.push_back(p);
      net.SetOnline(p, true);
    }
    ov.SetMembers(members);
  }

  CounterRegistry counters;
  net::Network net;
  ScriptedOverlay ov;
};

TEST_F(ScriptedFixture, ProbesInEmissionOrderAndAccountsUniformly) {
  // 0 -> {1 (offline), 2} -> dest.
  ov.candidates[0] = {{1, 5.0, false}, {2, 5.0, false}};
  ov.candidates[2] = {{9, 1.0, false}};
  net.SetOnline(1, false);
  LookupResult r = ov.Lookup(0, 77);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 9u);
  EXPECT_EQ(r.hops, 2u);
  EXPECT_EQ(r.failed_probes, 1u);
  EXPECT_EQ(r.messages, r.hops + r.failed_probes + 1);  // + reply
  EXPECT_EQ(r.responsible, 9u);
  EXPECT_TRUE(r.responsible_online);
  EXPECT_EQ(ov.advances, (std::vector<net::PeerId>{2, 9}));
}

TEST_F(ScriptedFixture, RoutePnsReordersOnlyWithinEqualProgressGroups) {
  // Two equal-progress candidates (1, 2) ahead of a better-progress one
  // (3) that is emitted later: PNS must flip 1/2 by RTT but never pull 3
  // forward across the group boundary.
  ov.candidates[0] = {{1, 5.0, false}, {2, 5.0, false}, {3, 3.0, false}};
  ov.candidates[1] = {{9, 1.0, false}};
  ov.candidates[2] = {{9, 1.0, false}};
  RoutingPolicy policy;
  policy.proximity = true;
  policy.rtt = [](net::PeerId, net::PeerId b) {
    return b == 2 ? 10.0 : (b == 3 ? 1.0 : 50.0);
  };
  ov.SetRoutingPolicy(std::move(policy));
  LookupResult r = ov.Lookup(0, 77);
  EXPECT_TRUE(r.success);
  // Advanced to 2 (cheapest within its group), not to 1 and not to 3.
  ASSERT_FALSE(ov.advances.empty());
  EXPECT_EQ(ov.advances.front(), 2u);
  EXPECT_EQ(r.failed_probes, 0u);
}

TEST_F(ScriptedFixture, TimeoutCostingChargesPerFailedProbeRound) {
  sim::EventQueue events;
  net::LatencyConfig cfg;
  cfg.timeout_ms = 200.0;
  net::LatencyDelivery model(cfg, 3);
  net.SetDeliveryModel(&model, &events);

  ov.candidates[0] = {{1, 5.0, false}, {2, 4.0, false}, {3, 3.0, false}};
  ov.candidates[3] = {{9, 1.0, false}};
  net.SetOnline(1, false);
  net.SetOnline(2, false);
  RoutingPolicy policy;
  policy.timeout_costing = true;
  ov.SetRoutingPolicy(std::move(policy));

  const double before = net.total_latency_s();
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.failed_probes, 2u);
  // Sequential walk: each failed probe round waited one timeout.
  EXPECT_EQ(net.TimeoutCount(), 2u);
  EXPECT_GE(net.total_latency_s() - before, 2 * 0.2);
}

TEST_F(ScriptedFixture, AlphaBatchChargesParallelProbesAndOneTimeout) {
  sim::EventQueue events;
  net::LatencyConfig cfg;
  cfg.timeout_ms = 200.0;
  net::LatencyDelivery model(cfg, 3);
  net.SetDeliveryModel(&model, &events);

  // Batch 1 = {1, 2} both offline (one shared timeout); batch 2 =
  // {3, 4}: 3 offline, 4 online -> advance to 4, no timeout charged.
  ov.candidates[0] = {
      {1, 8.0, false}, {2, 7.0, false}, {3, 6.0, false}, {4, 5.0, false}};
  ov.candidates[4] = {{9, 1.0, false}};
  ov.parallelism = 2;
  net.SetOnline(1, false);
  net.SetOnline(2, false);
  net.SetOnline(3, false);
  RoutingPolicy policy;
  policy.timeout_costing = true;
  ov.SetRoutingPolicy(std::move(policy));

  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(ov.advances.front(), 4u);
  EXPECT_EQ(r.failed_probes, 3u);
  EXPECT_EQ(net.TimeoutCount(), 1u);  // only the fully-failed batch waits
  // Messages: 4 probes at hop 0, 1 probe at hop 4->9, 1 reply.  The
  // wasted parallel probes make messages exceed hops+failed+reply.
  EXPECT_EQ(r.messages, 6u);
  EXPECT_GE(r.messages, r.hops + r.failed_probes + 1);
}

TEST_F(ScriptedFixture, ReplicaBatchFailoverChargesOneSharedTimeout) {
  // Satellite invariant: an alpha-concurrent replica batch that fails
  // over past dead replicas waits ONE shared detection timeout per
  // fully-dead batch, exactly like the primary phase.
  sim::EventQueue events;
  net::LatencyConfig cfg;
  cfg.timeout_ms = 200.0;
  net::LatencyDelivery model(cfg, 3);
  net.SetDeliveryModel(&model, &events);

  // 0 is terminal-bound (responsible member 9 leads its candidates);
  // replica group {9, 3, 2, 4} with 9 and 3 dead: batch 1 = {9, 3}
  // fully dead (2 failovers, one shared timeout), batch 2 = {2, 4}
  // advances to 2 -- a terminal advance short of the dead primary.
  ov.candidates[0] = {{9, 1.0, false}};
  ov.replica_group = {9, 3, 2, 4};
  ov.parallelism = 2;
  net.SetOnline(9, false);
  net.SetOnline(3, false);
  RoutingPolicy policy;
  policy.timeout_costing = true;
  policy.replica_route = true;
  policy.replica_count = 4;
  ov.SetRoutingPolicy(std::move(policy));

  const double before = net.total_latency_s();
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 2u);
  EXPECT_EQ(r.hops, 1u);
  EXPECT_EQ(r.failed_probes, 2u);
  EXPECT_EQ(r.failovers, 2u);
  EXPECT_EQ(net.FailoverCount(), 2u);
  // ONE timeout for the fully-dead {9, 3} batch; the {2, 4} batch found
  // a live replica and charges nothing.
  EXPECT_EQ(net.TimeoutCount(), 1u);
  EXPECT_GE(net.total_latency_s() - before, 0.2);
  EXPECT_LT(net.total_latency_s() - before, 0.4);
  // Messages: 4 replica probes (two batches of two) + the reply.
  EXPECT_EQ(r.messages, 5u);
  EXPECT_EQ(ov.advances, (std::vector<net::PeerId>{2}));
}

TEST_F(ScriptedFixture, ReplicaFailoverPicksCheapestLiveReplicaByRtt) {
  // With an RTT oracle the replica order is cheapest-link-first: the
  // walk lands on the cheapest LIVE replica, skipping the cheaper dead
  // one (a failover), never touching the expensive tail.
  ov.candidates[0] = {{9, 1.0, false}};
  ov.replica_group = {9, 3, 2, 4};
  net.SetOnline(3, false);
  RoutingPolicy policy;
  policy.replica_route = true;
  policy.replica_count = 4;
  policy.rtt = [](net::PeerId, net::PeerId b) {
    return b == 3 ? 1.0 : (b == 2 ? 5.0 : 50.0);
  };
  ov.SetRoutingPolicy(std::move(policy));

  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 2u);  // 3 (1 ms) dead -> 2 (5 ms); 9/4 unprobed
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_EQ(r.messages, 3u);  // probes 3, 2 + reply
}

TEST_F(ScriptedFixture, ReplicaStandInEndsWalkWhenAlreadyOnAReplica) {
  // The walk's own peer is in the replica group: it can serve the key
  // itself -- no probe, no reply, no hop.
  ov.candidates[0] = {{9, 1.0, false}};
  ov.replica_group = {9, 0};
  RoutingPolicy policy;
  policy.replica_route = true;
  policy.replica_count = 2;
  ov.SetRoutingPolicy(std::move(policy));

  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 0u);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.failovers, 0u);
}

TEST_F(ScriptedFixture, ReplicaRescueAfterExhaustionReachesLiveReplica) {
  // No terminal-bound trigger (candidates never lead with the
  // responsible member) and every primary/fallback candidate is dead:
  // the exhaustion rescue still reaches a live replica instead of
  // failing the lookup.
  ov.candidates[0] = {{1, 5.0, false}};
  ov.replica_group = {9, 4};
  net.SetOnline(1, false);
  net.SetOnline(9, false);
  RoutingPolicy policy;
  policy.replica_route = true;
  policy.replica_count = 2;
  ov.SetRoutingPolicy(std::move(policy));

  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 4u);
  EXPECT_EQ(r.failovers, 1u);   // the dead replica 9
  EXPECT_EQ(r.failed_probes, 2u);  // dead primary 1 + dead replica 9
}

TEST_F(ScriptedFixture, FallbackStandInEndsWalkWithoutAMessage) {
  // No primary candidates; the fallback scan reaches the walk's own peer
  // first: it is the closest online stand-in.
  ov.fallbacks[0] = {{0, 0.0, false}, {5, 1.0, false}};
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 0u);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.messages, 0u);  // origin == terminus: no probe, no reply
}

TEST_F(ScriptedFixture, TerminalFallbackStepEndsWalkBeforeDestination) {
  // The fallback step is marked terminal (Chord's "stepped past the
  // target"): the walk ends at 5 even though 5 is not the destination.
  ov.fallbacks[0] = {{4, 0.0, false}, {5, 1.0, true}};
  net.SetOnline(4, false);
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.terminus, 5u);
  EXPECT_EQ(r.hops, 1u);
  EXPECT_EQ(r.failed_probes, 1u);
  EXPECT_EQ(r.messages, 3u);  // 2 probes + reply
}

TEST_F(ScriptedFixture, ExhaustionFailsTheLookup) {
  ov.candidates[0] = {{1, 5.0, false}};
  net.SetOnline(1, false);
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.terminus, 0u);
  EXPECT_EQ(r.failed_probes, 1u);
  EXPECT_TRUE(r.responsible_online);  // set on every path
}

TEST_F(ScriptedFixture, HopLimitHonoursLenience) {
  // 0 -> 1 -> 2 -> ... -> dest, but the budget is 2 hops.
  for (net::PeerId p = 0; p < 9; ++p) {
    ov.candidates[p] = {{static_cast<net::PeerId>(p + 1), 1.0, false}};
  }
  ov.hop_limit = 2;
  ov.lenient = false;
  LookupResult strict = ov.Lookup(0, 5);
  EXPECT_FALSE(strict.success);
  EXPECT_EQ(strict.terminus, 2u);

  ov.advances.clear();
  ov.lenient = true;
  LookupResult lenient = ov.Lookup(0, 5);
  EXPECT_TRUE(lenient.success);
  EXPECT_EQ(lenient.terminus, 2u);
  EXPECT_EQ(lenient.hops, 2u);
}

TEST_F(ScriptedFixture, EmptyOverlayFailsWithDefaultResult) {
  ov.SetMembers({});
  LookupResult r = ov.Lookup(0, 5);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.responsible, net::kInvalidPeer);
  EXPECT_EQ(r.messages, 0u);
}

// --- End-to-end policy behaviour on real backends ----------------------

/// Two identically seeded P-Grid overlays under a latency network; the
/// route-PNS one must spend less link latency for the same workload (all
/// refs of a trie level share one progress class, so PNS has real
/// freedom on every hop).
TEST(RoutePnsEndToEnd, PGridRoutePnsLowersProbedLatency) {
  auto run_total_latency = [](bool pns) {
    CounterRegistry counters;
    net::Network net(&counters);
    sim::EventQueue events;
    net::LatencyConfig cfg;
    net::LatencyDelivery model(cfg, 77);
    net.SetDeliveryModel(&model, &events);
    PGridConfig pc;
    pc.refs_per_level = 4;
    pc.max_leaf_peers = 2;
    PGridOverlay grid(&net, Rng(5), pc);
    std::vector<net::PeerId> members;
    for (net::PeerId p = 0; p < 128; ++p) {
      members.push_back(p);
      net.SetOnline(p, true);
    }
    grid.SetMembers(members);
    if (pns) {
      RoutingPolicy policy;
      policy.proximity = true;
      policy.rtt = [&model](net::PeerId a, net::PeerId b) {
        return model.RttMs(a, b);
      };
      grid.SetRoutingPolicy(std::move(policy));
    }
    uint64_t hops = 0;
    for (uint64_t key = 0; key < 400; ++key) {
      LookupResult r = grid.Lookup(key % 128, key * 2654435761ull);
      EXPECT_TRUE(r.success);
      hops += r.hops;
    }
    return std::pair<double, uint64_t>(net.total_latency_s(), hops);
  };
  auto [blind_latency, blind_hops] = run_total_latency(false);
  auto [pns_latency, pns_hops] = run_total_latency(true);
  // Cheaper links per hop, clearly: >= 15% per-hop latency win (total
  // hops may shift slightly -- refs of one level can match the key to
  // different depths -- so the per-hop ratio is the PNS claim).
  const double blind_per_hop =
      blind_latency / static_cast<double>(blind_hops);
  const double pns_per_hop = pns_latency / static_cast<double>(pns_hops);
  EXPECT_LT(pns_per_hop, 0.85 * blind_per_hop)
      << "blind " << blind_per_hop << " s/hop vs pns " << pns_per_hop;
  EXPECT_LT(pns_latency, blind_latency);
}

/// Alpha-concurrent Kademlia: more lookup messages, never worse hop
/// counts, bit-identical across repeated runs (deterministic
/// tie-breaks).
TEST(AlphaLookupEndToEnd, KademliaAlphaIsDeterministicAndBoundedParallel) {
  auto run = [](uint32_t alpha) {
    CounterRegistry counters;
    net::Network net(&counters);
    KademliaOverlay kad(&net, Rng(9), /*bucket_size=*/4, alpha);
    std::vector<net::PeerId> members;
    for (net::PeerId p = 0; p < 160; ++p) {
      members.push_back(p);
      net.SetOnline(p, true);
    }
    kad.SetMembers(members);
    for (net::PeerId p = 0; p < 160; p += 4) net.SetOnline(p, false);
    struct Totals {
      uint64_t hops = 0, failed = 0, messages = 0, checksum = 0;
    } t;
    for (uint64_t key = 0; key < 250; ++key) {
      net::PeerId origin = 1 + 2 * (key % 70);
      if (!net.IsOnline(origin)) origin += 2;
      LookupResult r = kad.Lookup(origin, key);
      t.hops += r.hops;
      t.failed += r.failed_probes;
      t.messages += r.messages;
      t.checksum = (t.checksum ^ (r.terminus + r.hops)) * 1099511628211ull;
    }
    return t;
  };
  auto seq = run(1);
  auto par_a = run(3);
  auto par_b = run(3);
  // Deterministic: identical walk under identical inputs.
  EXPECT_EQ(par_a.checksum, par_b.checksum);
  EXPECT_EQ(par_a.messages, par_b.messages);
  // Parallel probing spends more messages to stall less.
  EXPECT_GT(par_a.messages, seq.messages);
  EXPECT_LE(par_a.hops, seq.hops);
}

}  // namespace
}  // namespace pdht::overlay
