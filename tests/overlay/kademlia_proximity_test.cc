// Proximity-aware neighbor selection (PeerRtt hook) on Kademlia: with an
// RTT oracle installed before SetMembers, over-full k-buckets keep the
// lowest-RTT candidates instead of a random subset, invariants still
// hold, and the mean link cost of the routing tables drops relative to
// the RTT-blind build of the same membership.

#include "overlay/dht/kademlia.h"

#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "net/delivery_model.h"
#include "net/network.h"
#include "stats/counter.h"
#include "util/bits.h"

namespace pdht::overlay {
namespace {

std::vector<net::PeerId> MakeMembers(net::Network* net, uint32_t n) {
  std::vector<net::PeerId> members(n);
  std::iota(members.begin(), members.end(), 0u);
  for (net::PeerId p : members) net->SetOnline(p, true);
  return members;
}

double MeanContactRtt(const KademliaOverlay& kad,
                      const std::vector<net::PeerId>& members,
                      const net::DeliveryModel& model) {
  double sum = 0.0;
  uint64_t n = 0;
  for (net::PeerId p : members) {
    for (net::PeerId c : kad.ContactsOf(p)) {
      sum += model.RttMs(p, c);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(KademliaProximityTest, HookLowersMeanContactRtt) {
  CounterRegistry counters;
  net::Network network(&counters);
  auto members = MakeMembers(&network, 300);
  net::LatencyDelivery model(net::LatencyConfig{}, /*seed=*/4242);

  KademliaOverlay blind(&network, Rng(7), /*bucket_size=*/4);
  blind.SetMembers(members);

  KademliaOverlay prox(&network, Rng(7), /*bucket_size=*/4);
  prox.SetPeerRtt([&model](net::PeerId a, net::PeerId b) {
    return model.RttMs(a, b);
  });
  prox.SetMembers(members);

  EXPECT_EQ(prox.CheckInvariants(), "");
  // Tables are the same size; only the choice within buckets differs.
  size_t blind_contacts = 0, prox_contacts = 0;
  for (net::PeerId p : members) {
    blind_contacts += blind.TableSize(p);
    prox_contacts += prox.TableSize(p);
  }
  EXPECT_EQ(blind_contacts, prox_contacts);

  const double blind_rtt = MeanContactRtt(blind, members, model);
  const double prox_rtt = MeanContactRtt(prox, members, model);
  EXPECT_GT(blind_rtt, 0.0);
  // The whole point of PNS: the kept contacts are cheaper on average.
  EXPECT_LT(prox_rtt, blind_rtt * 0.9);
}

TEST(KademliaProximityTest, OverfullBucketsKeepCheapestCandidates) {
  CounterRegistry counters;
  net::Network network(&counters);
  auto members = MakeMembers(&network, 200);
  net::LatencyDelivery model(net::LatencyConfig{}, /*seed=*/99);

  const uint32_t k = 3;
  KademliaOverlay prox(&network, Rng(1), k);
  prox.SetPeerRtt([&model](net::PeerId a, net::PeerId b) {
    return model.RttMs(a, b);
  });
  prox.SetMembers(members);

  // For every member: each kept contact must not be beatable by an
  // *unkept* member that belongs to the same bucket (same XOR bucket
  // index) at strictly lower RTT -- i.e. kept = k cheapest per bucket.
  // Reconstruct bucket assignment externally via the public id mapping:
  // contacts and candidates share a bucket iff FloorLog2(xor) matches.
  for (net::PeerId p : members) {
    auto contacts = prox.ContactsOf(p);
    for (net::PeerId kept : contacts) {
      const double kept_rtt = model.RttMs(p, kept);
      const NodeId px = PeerToNodeId(p);
      const int bucket = FloorLog2(px ^ PeerToNodeId(kept));
      // Count same-bucket members strictly cheaper than the kept one;
      // there can be at most k-1 of them (they must all be kept too).
      uint32_t cheaper = 0;
      for (net::PeerId other : members) {
        if (other == p) continue;
        const NodeId ox = PeerToNodeId(other);
        if (ox == px) continue;
        if (FloorLog2(px ^ ox) != bucket) continue;
        if (model.RttMs(p, other) < kept_rtt) ++cheaper;
      }
      EXPECT_LT(cheaper, k) << "peer " << p << " kept contact " << kept
                            << " while >k-1 cheaper candidates exist";
    }
  }
}

TEST(KademliaProximityTest, WithoutHookSelectionIsUnchanged) {
  // Two RTT-blind builds from the same Rng seed agree exactly -- the
  // proximity code path must not perturb the blind stream.
  CounterRegistry counters;
  net::Network network(&counters);
  auto members = MakeMembers(&network, 150);

  KademliaOverlay a(&network, Rng(5), 4);
  a.SetMembers(members);
  KademliaOverlay b(&network, Rng(5), 4);
  b.SetMembers(members);
  for (net::PeerId p : members) {
    EXPECT_EQ(a.ContactsOf(p), b.ContactsOf(p));
  }
}

}  // namespace
}  // namespace pdht::overlay
