#include "overlay/pgrid/pgrid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "overlay/pgrid/path.h"
#include "stats/histogram.h"

namespace pdht::overlay {
namespace {

TEST(TriePathTest, FromStringRoundTrip) {
  TriePath p = TriePath::FromString("0110");
  EXPECT_EQ(p.length(), 4);
  EXPECT_EQ(p.ToString(), "0110");
  EXPECT_EQ(p.Bit(0), 0);
  EXPECT_EQ(p.Bit(1), 1);
  EXPECT_EQ(p.Bit(2), 1);
  EXPECT_EQ(p.Bit(3), 0);
}

TEST(TriePathTest, EmptyPath) {
  TriePath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.ToString(), "");
  EXPECT_TRUE(p.IsPrefixOfKey(0));
  EXPECT_TRUE(p.IsPrefixOfKey(~uint64_t{0}));
}

TEST(TriePathTest, ChildExtends) {
  TriePath p = TriePath::FromString("1");
  EXPECT_EQ(p.Child(0).ToString(), "10");
  EXPECT_EQ(p.Child(1).ToString(), "11");
}

TEST(TriePathTest, PrefixTruncates) {
  TriePath p = TriePath::FromString("10110");
  EXPECT_EQ(p.Prefix(3).ToString(), "101");
  EXPECT_EQ(p.Prefix(0).ToString(), "");
}

TEST(TriePathTest, SiblingFlipsBit) {
  TriePath p = TriePath::FromString("1011");
  EXPECT_EQ(p.SiblingAt(0).ToString(), "0");
  EXPECT_EQ(p.SiblingAt(1).ToString(), "11");
  EXPECT_EQ(p.SiblingAt(3).ToString(), "1010");
}

TEST(TriePathTest, IsPrefixOf) {
  TriePath a = TriePath::FromString("10");
  TriePath b = TriePath::FromString("101");
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(TriePath::FromString("11").IsPrefixOf(b));
}

TEST(TriePathTest, IsPrefixOfKey) {
  TriePath p = TriePath::FromString("10");
  EXPECT_TRUE(p.IsPrefixOfKey(0x8000000000000000ULL));   // 10...
  EXPECT_TRUE(p.IsPrefixOfKey(0xBFFFFFFFFFFFFFFFULL));   // 101...
  EXPECT_FALSE(p.IsPrefixOfKey(0xC000000000000000ULL));  // 11...
  EXPECT_FALSE(p.IsPrefixOfKey(0x0));                    // 00...
}

TEST(TriePathTest, CommonPrefixWithKey) {
  TriePath p = TriePath::FromString("1010");
  EXPECT_EQ(p.CommonPrefixWithKey(0xA000000000000000ULL), 4);  // 1010...
  EXPECT_EQ(p.CommonPrefixWithKey(0x8000000000000000ULL), 2);  // 10 then 0
  EXPECT_EQ(p.CommonPrefixWithKey(0x0), 0);
}

TEST(TriePathTest, OrderingAndEquality) {
  TriePath a = TriePath::FromString("01");
  TriePath b = TriePath::FromString("01");
  TriePath c = TriePath::FromString("011");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
}

struct PGridFixture {
  PGridFixture(uint32_t n, PGridConfig cfg = {}, uint64_t seed = 1)
      : net(&counters), grid(&net, Rng(seed), cfg) {
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    grid.SetMembers(members);
  }
  pdht::CounterRegistry counters;
  net::Network net;
  PGridOverlay grid;
};

TEST(PGridTest, InvariantsAfterBalancedConstruction) {
  PGridFixture f(128);
  EXPECT_EQ(f.grid.CheckInvariants(), "");
  EXPECT_EQ(f.grid.num_members(), 128u);
}

TEST(PGridTest, PathDepthsAreLogarithmic) {
  PGridFixture f(256);
  for (net::PeerId p : f.grid.members()) {
    int len = f.grid.PathOf(p).length();
    EXPECT_GE(len, 7);  // 2^8 = 256 leaves, balanced split: depth 8
    EXPECT_LE(len, 9);
  }
}

TEST(PGridTest, LeafGroupsRespectMaxLeafPeers) {
  PGridConfig cfg;
  cfg.max_leaf_peers = 4;
  PGridFixture f(64, cfg);
  std::set<std::string> paths;
  for (net::PeerId p : f.grid.members()) {
    paths.insert(f.grid.PathOf(p).ToString());
  }
  // 64 peers in groups of <= 4: at least 16 distinct paths.
  EXPECT_GE(paths.size(), 16u);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_LE(f.grid.ResponsiblePeers(key).size(), 4u);
    EXPECT_GE(f.grid.ResponsiblePeers(key).size(), 1u);
  }
}

TEST(PGridTest, EveryKeyHasResponsiblePeer) {
  PGridFixture f(100);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_NE(f.grid.ResponsibleMember(key), net::kInvalidPeer) << key;
  }
}

TEST(PGridTest, LookupReachesResponsiblePeer) {
  PGridFixture f(128, {}, 3);
  for (uint64_t key = 0; key < 60; ++key) {
    LookupResult r = f.grid.Lookup(0, key);
    ASSERT_TRUE(r.success) << "key " << key;
    auto owners = f.grid.ResponsiblePeers(key);
    EXPECT_NE(std::find(owners.begin(), owners.end(), r.terminus),
              owners.end());
  }
}

TEST(PGridTest, LookupFromResponsibleIsFree) {
  PGridFixture f(64);
  uint64_t key = 5;
  net::PeerId owner = f.grid.ResponsibleMember(key);
  LookupResult r = f.grid.Lookup(owner, key);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(PGridTest, LookupHopsBoundedByDepth) {
  PGridFixture f(256, {}, 5);
  Rng pick(7);
  pdht::Histogram hops;
  for (int trial = 0; trial < 300; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(256));
    LookupResult r = f.grid.Lookup(origin, pick.Next());
    ASSERT_TRUE(r.success);
    ASSERT_LE(r.hops, 9u);  // each hop extends the prefix by >= 1 bit
    hops.Add(r.hops);
  }
  // Expected ~ 0.5 * depth ~= 4 for random origins/keys.
  EXPECT_GT(hops.mean(), 1.5);
  EXPECT_LT(hops.mean(), 6.5);
}

TEST(PGridTest, LookupRedundantRefsSurviveChurn) {
  PGridConfig cfg;
  cfg.refs_per_level = 6;
  PGridFixture f(256, cfg, 9);
  Rng off(11);
  std::vector<bool> down(256, false);
  for (uint32_t i = 0; i < 256; ++i) {
    if (off.Bernoulli(0.2)) {
      f.net.SetOnline(i, false);
      down[i] = true;
    }
  }
  Rng pick(13);
  int ok = 0;
  int attempts = 0;
  for (int trial = 0; trial < 100; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(256));
    if (down[origin]) continue;
    ++attempts;
    uint64_t key = pick.Next();
    LookupResult r = f.grid.Lookup(origin, key);
    // Success requires the responsible leaf group to have an online peer
    // reachable via refs; with 6 refs/level and 20% churn nearly all work.
    if (r.success) ++ok;
  }
  ASSERT_GT(attempts, 20);
  EXPECT_GT(static_cast<double>(ok) / attempts, 0.8);
}

TEST(PGridTest, MaintenanceRepairsDeadRefs) {
  PGridConfig cfg;
  cfg.refs_per_level = 2;
  PGridFixture f(200, cfg, 15);
  Rng off(17);
  for (uint32_t i = 0; i < 200; ++i) {
    if (off.Bernoulli(0.3)) f.net.SetOnline(i, false);
  }
  double before = f.grid.StaleReferenceFraction();
  ASSERT_GT(before, 0.1);
  for (int r = 0; r < 40; ++r) f.grid.RunMaintenanceRound(2.0);
  EXPECT_LT(f.grid.StaleReferenceFraction(), before * 0.5);
  EXPECT_GT(f.counters.Value("msg.maint.probe"), 0u);
}

TEST(PGridTest, ExchangeConstructionConvergesToValidTrie) {
  pdht::CounterRegistry counters;
  net::Network net(&counters);
  PGridOverlay grid(&net, Rng(21), PGridConfig{});
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < 64; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  uint64_t exchanges = grid.BuildByExchanges(members, 2000000);
  EXPECT_GT(exchanges, 0u);
  EXPECT_GT(counters.Value("msg.overlay.exchange"), 0u);
  // Coverage: every key id must have at least one responsible peer.
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_NE(grid.ResponsibleMember(key), net::kInvalidPeer) << key;
  }
}

TEST(PGridTest, ExchangePathsReachTargetDepthOnAverage) {
  pdht::CounterRegistry counters;
  net::Network net(&counters);
  PGridOverlay grid(&net, Rng(23), PGridConfig{});
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < 128; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  grid.BuildByExchanges(members, 2000000);
  double total_len = 0;
  for (net::PeerId p : grid.members()) {
    total_len += grid.PathOf(p).length();
  }
  double avg = total_len / 128.0;
  EXPECT_GT(avg, 4.0);  // target depth log2(128) = 7
  EXPECT_LE(avg, 7.5);
}

TEST(PGridTest, TableSizeNonZeroAfterBuild) {
  PGridFixture f(64);
  for (net::PeerId p : f.grid.members()) {
    EXPECT_GT(f.grid.TableSize(p), 0u) << p;
  }
  EXPECT_EQ(f.grid.TableSize(9999), 0u);
}

TEST(PGridTest, RefreshNodeRebuildsRefs) {
  PGridFixture f(64);
  f.grid.RefreshNode(0);
  EXPECT_GT(f.grid.TableSize(0), 0u);
}

TEST(PGridTest, SingleMemberDegenerate) {
  PGridFixture f(1);
  EXPECT_EQ(f.grid.PathOf(0).length(), 0);
  LookupResult r = f.grid.Lookup(0, 7);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

}  // namespace
}  // namespace pdht::overlay
