// Backend parity: every backend in the overlay factory registry must
// honour the StructuredOverlay contract identically -- resolve a
// responsible member for every key, route lookups to it, survive
// maintenance under churn without losing membership, and sustain the
// paper's TTL-selection workload in a common hit-rate band when fed an
// *identical* recorded trace.  The suite enumerates RegisteredBackends(),
// so a newly registered overlay is covered with zero test edits.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/pdht_system.h"
#include "metadata/trace.h"
#include "metadata/workload.h"
#include "net/delivery_model.h"
#include "net/rtt_estimator.h"
#include "overlay/structured_overlay.h"
#include "sim/event_queue.h"

namespace pdht {
namespace {

constexpr uint32_t kMembers = 64;
constexpr uint32_t kRepl = 5;

class BackendParity : public ::testing::TestWithParam<core::DhtBackend> {
 protected:
  BackendParity() : net(&counters) {
    for (uint32_t i = 0; i < kMembers; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    overlay::OverlayParams op;
    op.repl = kRepl;
    op.num_peers = kMembers;
    ov = overlay::MakeOverlay(GetParam(), &net, op, Rng(7));
  }

  CounterRegistry counters;
  net::Network net;
  std::vector<net::PeerId> members;
  std::unique_ptr<overlay::StructuredOverlay> ov;
};

TEST_P(BackendParity, EveryKeyResolvesResponsibleMemberAndReplicas) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  ASSERT_EQ(ov->num_members(), kMembers);
  EXPECT_EQ(ov->CheckInvariants(), "");
  for (uint64_t key = 0; key < 500; ++key) {
    net::PeerId owner = ov->ResponsibleMember(key);
    ASSERT_NE(owner, net::kInvalidPeer) << "key " << key;
    EXPECT_TRUE(ov->IsMember(owner)) << "key " << key;
    std::vector<net::PeerId> reps = ov->ResponsiblePeers(key, kRepl);
    ASSERT_FALSE(reps.empty()) << "key " << key;
    EXPECT_EQ(reps.front(), owner) << "key " << key;
    EXPECT_LE(reps.size(), static_cast<size_t>(kRepl));
    std::set<net::PeerId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), reps.size()) << "duplicate replica, key " << key;
    for (net::PeerId r : reps) EXPECT_TRUE(ov->IsMember(r));
  }
}

TEST_P(BackendParity, LookupSucceedsFromEveryOriginWhenAllOnline) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  for (net::PeerId origin : members) {
    uint64_t key = 1000 + origin;
    overlay::LookupResult r = ov->Lookup(origin, key);
    EXPECT_TRUE(r.success) << "origin " << origin;
    EXPECT_TRUE(r.responsible_online);
    // With everything online the lookup must terminate at a replica
    // holder of the key (P-Grid may stop at any leaf-group peer, the
    // others at the responsible member itself).
    std::vector<net::PeerId> reps = ov->ResponsiblePeers(key, kRepl);
    EXPECT_NE(std::find(reps.begin(), reps.end(), r.terminus), reps.end())
        << "origin " << origin << " terminus " << r.terminus;
    EXPECT_EQ(r.failed_probes, 0u);
    // Loose structural hop bound: every backend is sub-linear.
    EXPECT_LE(r.hops, kMembers) << "origin " << origin;
  }
}

TEST_P(BackendParity, MaintenanceRoundsDontLoseMembership) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  // A quarter of the members go offline (churn downtime, not departure).
  for (uint32_t i = 0; i < kMembers; i += 4) net.SetOnline(i, false);
  uint64_t probes = 0;
  for (int round = 0; round < 30; ++round) {
    probes += ov->RunMaintenanceRound(1.0);
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(counters.SumWithPrefix("msg.maint."), 0u);
  // Downtime must not shrink the member set -- only departure does.
  EXPECT_EQ(ov->num_members(), kMembers);
  std::set<net::PeerId> after(ov->members().begin(), ov->members().end());
  EXPECT_EQ(after.size(), kMembers);
  EXPECT_EQ(ov->CheckInvariants(), "");
  // The overlay still routes: lookups from an online origin succeed for
  // at least half the keys.  (Chord/P-Grid/Kademlia resolve an offline
  // owner to an online stand-in and score ~100%; CAN's static zones make
  // an offline owner a hard miss, so its ceiling under 25% downtime is
  // structurally lower.)
  net::PeerId origin = 1;
  ASSERT_TRUE(net.IsOnline(origin));
  int successes = 0;
  for (uint64_t key = 0; key < 50; ++key) {
    overlay::LookupResult r = ov->Lookup(origin, key);
    if (r.success) {
      ++successes;
      EXPECT_TRUE(net.IsOnline(r.terminus));
    }
  }
  EXPECT_GT(successes, 25);
}

/// One trace, synthesized once, replayed verbatim by every backend: the
/// paper's controlled-comparison methodology.
const metadata::QueryTrace& SharedTrace() {
  static const metadata::QueryTrace trace = [] {
    metadata::QueryWorkload workload(800, 1.2, Rng(321));
    return metadata::QueryTrace::Synthesize(workload, /*rounds=*/80,
                                            /*num_peers=*/400,
                                            /*f_qry=*/1.0 / 5.0);
  }();
  return trace;
}

TEST_P(BackendParity, IdenticalTraceLandsInCommonHitRateBand) {
  core::SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.backend = GetParam();
  c.churn.enabled = false;
  c.seed = 99;
  c.trace = &SharedTrace();
  core::PdhtSystem sys(c);
  ASSERT_NE(sys.dht_overlay(), nullptr);
  sys.RunRounds(80);
  // The overlay the system actually built stays structurally sound under
  // the full workload.
  EXPECT_EQ(sys.dht_overlay()->CheckInvariants(), "");
  // The selection algorithm's steady state is a property of the workload,
  // not of the backend: every overlay must land in the same sanity band.
  double hit = sys.TailHitRate(20);
  EXPECT_GT(hit, 0.45) << core::DhtBackendName(GetParam());
  EXPECT_LE(hit, 1.0);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.dht."), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredBackends, BackendParity,
    ::testing::ValuesIn(overlay::RegisteredBackends()),
    [](const ::testing::TestParamInfo<core::DhtBackend>& info) {
      return std::string(core::DhtBackendName(info.param));
    });

// --- Routing-driver parity (recorded, bit-for-bit) ---------------------
//
// Every backend now routes through the shared overlay::RoutingDriver; in
// blind mode (no route-time PNS, no timeout costing, parallelism 1) the
// driver must reproduce the monolithic per-backend walks *bit for bit*:
// same probe order, same messages, same hops, same termini.  The expected
// values below were recorded from the pre-driver tree (commit 5edaecb,
// monolithic Lookup in each backend) by running RoutingChecksum verbatim
// and printing the FNV checksum plus the hop/message sums.  If a future
// PR changes routing *intentionally*, re-record with that procedure and
// say so in the PR.

struct ChecksumResult {
  uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
  uint64_t hops = 0;
  uint64_t messages = 0;
};

void Mix(ChecksumResult* c, uint64_t v) {
  c->checksum = (c->checksum ^ v) * 1099511628211ull;
}

void Absorb(ChecksumResult* c, const overlay::LookupResult& r) {
  Mix(c, r.hops);
  Mix(c, r.failed_probes);
  Mix(c, r.messages);
  Mix(c, r.terminus);
  Mix(c, r.success ? 1 : 0);
  c->hops += r.hops;
  c->messages += r.messages;
}

/// Deterministic lookup workload over one backend: a full sweep of
/// origins with everything online, then 300 keys under 1-in-stride
/// churn downtime (failed probes, recovery scans, stand-in termination).
ChecksumResult RoutingChecksum(core::DhtBackend backend, uint32_t n,
                               uint32_t repl, uint32_t offline_stride,
                               uint32_t bucket) {
  CounterRegistry counters;
  net::Network net(&counters);
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < n; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  overlay::OverlayParams op;
  op.repl = repl;
  op.num_peers = n;
  op.kademlia_bucket_size = bucket;
  auto ov = overlay::MakeOverlay(backend, &net, op, Rng(7));
  ov->SetMembers(members);

  ChecksumResult out;
  for (net::PeerId origin : members) {
    Absorb(&out, ov->Lookup(origin, 1000 + origin));
  }
  std::vector<net::PeerId> online;
  for (uint32_t i = 0; i < n; ++i) {
    if (i % offline_stride == 0) {
      net.SetOnline(i, false);
    } else {
      online.push_back(i);
    }
  }
  for (uint64_t key = 0; key < 300; ++key) {
    Absorb(&out, ov->Lookup(online[key % online.size()], key));
  }
  Mix(&out, counters.Value("msg.total"));
  return out;
}

struct RecordedChecksum {
  core::DhtBackend backend;
  const char* shape;
  uint64_t checksum;
  uint64_t hops;
  uint64_t messages;
};

TEST(RoutingDriverParity, BlindModeMatchesMonolithicWalksBitForBit) {
  // (n, repl, offline stride, kademlia bucket) per shape:
  //   small: 64 members, 1-in-4 downtime;  large: 192 members, 1-in-3.
  const RecordedChecksum golden[] = {
      {core::DhtBackend::kChord, "small", 10644063006997827261ull, 1255,
       2315},
      {core::DhtBackend::kChord, "large", 13210241220629356181ull, 2121,
       4200},
      {core::DhtBackend::kPGrid, "small", 5245243631066448474ull, 756,
       1385},
      {core::DhtBackend::kPGrid, "large", 11919697634455402642ull, 1600,
       2503},
      {core::DhtBackend::kCan, "small", 3097467312093902130ull, 1610,
       2390},
      {core::DhtBackend::kCan, "large", 75888321909885457ull, 2722, 4284},
      {core::DhtBackend::kKademlia, "small", 505464983205260041ull, 541,
       1179},
      {core::DhtBackend::kKademlia, "large", 1551128718211893914ull, 1156,
       2447},
  };
  for (const RecordedChecksum& g : golden) {
    if (!overlay::IsRegisteredBackend(g.backend)) continue;
    const bool small = std::string(g.shape) == "small";
    ChecksumResult c = small ? RoutingChecksum(g.backend, 64, 5, 4, 8)
                             : RoutingChecksum(g.backend, 192, 2, 3, 4);
    EXPECT_EQ(c.checksum, g.checksum)
        << core::DhtBackendName(g.backend) << "/" << g.shape;
    EXPECT_EQ(c.hops, g.hops)
        << core::DhtBackendName(g.backend) << "/" << g.shape;
    EXPECT_EQ(c.messages, g.messages)
        << core::DhtBackendName(g.backend) << "/" << g.shape;
  }
}

// --- Adaptive-RTO degradation parity -----------------------------------
//
// The PeerRtt-null contract (net/rtt_estimator.h): an estimator with no
// seed oracle and no samples returns fallback_ms verbatim, so a
// timeout-costing walk charges exactly the fixed timeout_ms -- the
// routing and the charged latency must be bit-identical to running with
// no estimator at all, for every backend.

struct TimedChecksum {
  ChecksumResult routing;
  double latency_s = 0.0;
  uint64_t timeouts = 0;
};

TimedChecksum TimeoutCostingChecksum(core::DhtBackend backend,
                                     bool null_estimator) {
  CounterRegistry counters;
  net::Network net(&counters);
  sim::EventQueue events;
  net::LatencyConfig cfg;
  cfg.timeout_ms = 250.0;
  net::LatencyDelivery model(cfg, 31);
  net.SetDeliveryModel(&model, &events);

  net::RtoConfig rc;
  rc.min_ms = cfg.rto_min_ms;
  rc.max_ms = cfg.timeout_ms;
  rc.fallback_ms = cfg.timeout_ms;
  net::PeerRtoEstimator est(rc, /*seed=*/nullptr);
  // Installed on the model but never fed (no SetRttObserver, no seed):
  // every ProbeTimeoutSeconds call takes the fallback path.
  if (null_estimator) model.SetRtoEstimator(&est);

  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < 96; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  overlay::OverlayParams op;
  op.repl = 4;
  op.num_peers = 96;
  auto ov = overlay::MakeOverlay(backend, &net, op, Rng(13));
  ov->SetMembers(members);
  overlay::RoutingPolicy policy;
  policy.timeout_costing = true;
  ov->SetRoutingPolicy(std::move(policy));
  for (uint32_t i = 0; i < 96; i += 4) net.SetOnline(i, false);

  TimedChecksum out;
  for (uint64_t key = 0; key < 200; ++key) {
    net::PeerId origin = 1 + (key % 3);
    Absorb(&out.routing, ov->Lookup(origin, key));
  }
  out.latency_s = net.total_latency_s();
  out.timeouts = net.TimeoutCount();
  EXPECT_EQ(est.samples(), 0u);  // the null path never observed anything
  return out;
}

TEST(RoutingDriverParity, NullOracleEstimatorDegradesToFixedTimeoutBitwise) {
  for (core::DhtBackend backend : overlay::RegisteredBackends()) {
    TimedChecksum fixed = TimeoutCostingChecksum(backend, false);
    TimedChecksum nullest = TimeoutCostingChecksum(backend, true);
    EXPECT_EQ(fixed.routing.checksum, nullest.routing.checksum)
        << core::DhtBackendName(backend);
    EXPECT_EQ(fixed.routing.messages, nullest.routing.messages)
        << core::DhtBackendName(backend);
    EXPECT_EQ(fixed.timeouts, nullest.timeouts)
        << core::DhtBackendName(backend);
    // Bit-identical, not approximately equal: the fallback returns
    // timeout_ms verbatim.
    EXPECT_EQ(fixed.latency_s, nullest.latency_s)
        << core::DhtBackendName(backend);
    EXPECT_GT(fixed.timeouts, 0u) << core::DhtBackendName(backend);
  }
}

TEST(RoutingDriverParity, AdaptiveRtoWithoutOracleLeavesSnapshotIdentical) {
  // System-level degradation: adaptive_rto = true without
  // proximity_routing has no PeerRtt oracle to seed from, so PdhtSystem
  // installs nothing and the whole run -- every series, every latency
  // metric -- is bit-identical to adaptive_rto = false.
  for (core::DhtBackend backend : overlay::RegisteredBackends()) {
    auto snapshot_of = [backend](bool adaptive) {
      core::SystemConfig c;
      c.params.num_peers = 200;
      c.params.keys = 400;
      c.params.stor = 20;
      c.params.repl = 10;
      c.params.f_qry = 1.0 / 5.0;
      c.params.f_upd = 1.0 / 3600.0;
      c.strategy = core::Strategy::kPartialTtl;
      c.backend = backend;
      c.churn.enabled = true;
      c.seed = 17;
      c.delivery_model = net::DeliveryModelKind::kLatency;
      c.timeout_costing = true;
      c.proximity_routing = false;  // no PeerRtt oracle
      c.adaptive_rto = adaptive;
      core::PdhtSystem sys(c);
      EXPECT_EQ(sys.rto_estimator() != nullptr, false);
      sys.RunRounds(40);
      return sys.Snapshot(10);
    };
    core::RunSnapshot off = snapshot_of(false);
    core::RunSnapshot on = snapshot_of(true);
    EXPECT_EQ(off.series_tail, on.series_tail)
        << core::DhtBackendName(backend);
    EXPECT_EQ(off.latency, on.latency) << core::DhtBackendName(backend);
    EXPECT_EQ(off.index_keys, on.index_keys)
        << core::DhtBackendName(backend);
  }
}

TEST(RoutingDriverParity, EveryBackendHonoursTheLookupResultContract) {
  // The unified accounting contract (structured_overlay.h): with
  // sequential routing, messages == hops + failed_probes + reply, and
  // responsible_online reflects the responsible member on every path.
  for (core::DhtBackend backend : overlay::RegisteredBackends()) {
    CounterRegistry counters;
    net::Network net(&counters);
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < 96; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    overlay::OverlayParams op;
    op.repl = 4;
    op.num_peers = 96;
    auto ov = overlay::MakeOverlay(backend, &net, op, Rng(13));
    ov->SetMembers(members);
    for (uint32_t i = 0; i < 96; i += 5) net.SetOnline(i, false);
    for (uint64_t key = 0; key < 120; ++key) {
      net::PeerId origin = 1 + (key % 3);
      ASSERT_TRUE(net.IsOnline(origin));
      overlay::LookupResult r = ov->Lookup(origin, key);
      const uint64_t reply =
          (r.success && r.terminus != origin) ? 1 : 0;
      EXPECT_EQ(r.messages, r.hops + r.failed_probes + reply)
          << core::DhtBackendName(backend) << " key " << key;
      ASSERT_NE(r.responsible, net::kInvalidPeer);
      EXPECT_EQ(r.responsible_online, net.IsOnline(r.responsible))
          << core::DhtBackendName(backend) << " key " << key;
      if (r.success) {
        EXPECT_TRUE(net.IsOnline(r.terminus));
      }
    }
  }
}

}  // namespace
}  // namespace pdht
