// Backend parity: every backend in the overlay factory registry must
// honour the StructuredOverlay contract identically -- resolve a
// responsible member for every key, route lookups to it, survive
// maintenance under churn without losing membership, and sustain the
// paper's TTL-selection workload in a common hit-rate band when fed an
// *identical* recorded trace.  The suite enumerates RegisteredBackends(),
// so a newly registered overlay is covered with zero test edits.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/pdht_system.h"
#include "metadata/trace.h"
#include "metadata/workload.h"
#include "overlay/structured_overlay.h"

namespace pdht {
namespace {

constexpr uint32_t kMembers = 64;
constexpr uint32_t kRepl = 5;

class BackendParity : public ::testing::TestWithParam<core::DhtBackend> {
 protected:
  BackendParity() : net(&counters) {
    for (uint32_t i = 0; i < kMembers; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    overlay::OverlayParams op;
    op.repl = kRepl;
    op.num_peers = kMembers;
    ov = overlay::MakeOverlay(GetParam(), &net, op, Rng(7));
  }

  CounterRegistry counters;
  net::Network net;
  std::vector<net::PeerId> members;
  std::unique_ptr<overlay::StructuredOverlay> ov;
};

TEST_P(BackendParity, EveryKeyResolvesResponsibleMemberAndReplicas) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  ASSERT_EQ(ov->num_members(), kMembers);
  EXPECT_EQ(ov->CheckInvariants(), "");
  for (uint64_t key = 0; key < 500; ++key) {
    net::PeerId owner = ov->ResponsibleMember(key);
    ASSERT_NE(owner, net::kInvalidPeer) << "key " << key;
    EXPECT_TRUE(ov->IsMember(owner)) << "key " << key;
    std::vector<net::PeerId> reps = ov->ResponsiblePeers(key, kRepl);
    ASSERT_FALSE(reps.empty()) << "key " << key;
    EXPECT_EQ(reps.front(), owner) << "key " << key;
    EXPECT_LE(reps.size(), static_cast<size_t>(kRepl));
    std::set<net::PeerId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), reps.size()) << "duplicate replica, key " << key;
    for (net::PeerId r : reps) EXPECT_TRUE(ov->IsMember(r));
  }
}

TEST_P(BackendParity, LookupSucceedsFromEveryOriginWhenAllOnline) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  for (net::PeerId origin : members) {
    uint64_t key = 1000 + origin;
    overlay::LookupResult r = ov->Lookup(origin, key);
    EXPECT_TRUE(r.success) << "origin " << origin;
    EXPECT_TRUE(r.responsible_online);
    // With everything online the lookup must terminate at a replica
    // holder of the key (P-Grid may stop at any leaf-group peer, the
    // others at the responsible member itself).
    std::vector<net::PeerId> reps = ov->ResponsiblePeers(key, kRepl);
    EXPECT_NE(std::find(reps.begin(), reps.end(), r.terminus), reps.end())
        << "origin " << origin << " terminus " << r.terminus;
    EXPECT_EQ(r.failed_probes, 0u);
    // Loose structural hop bound: every backend is sub-linear.
    EXPECT_LE(r.hops, kMembers) << "origin " << origin;
  }
}

TEST_P(BackendParity, MaintenanceRoundsDontLoseMembership) {
  ASSERT_NE(ov, nullptr);
  ov->SetMembers(members);
  // A quarter of the members go offline (churn downtime, not departure).
  for (uint32_t i = 0; i < kMembers; i += 4) net.SetOnline(i, false);
  uint64_t probes = 0;
  for (int round = 0; round < 30; ++round) {
    probes += ov->RunMaintenanceRound(1.0);
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(counters.SumWithPrefix("msg.maint."), 0u);
  // Downtime must not shrink the member set -- only departure does.
  EXPECT_EQ(ov->num_members(), kMembers);
  std::set<net::PeerId> after(ov->members().begin(), ov->members().end());
  EXPECT_EQ(after.size(), kMembers);
  EXPECT_EQ(ov->CheckInvariants(), "");
  // The overlay still routes: lookups from an online origin succeed for
  // at least half the keys.  (Chord/P-Grid/Kademlia resolve an offline
  // owner to an online stand-in and score ~100%; CAN's static zones make
  // an offline owner a hard miss, so its ceiling under 25% downtime is
  // structurally lower.)
  net::PeerId origin = 1;
  ASSERT_TRUE(net.IsOnline(origin));
  int successes = 0;
  for (uint64_t key = 0; key < 50; ++key) {
    overlay::LookupResult r = ov->Lookup(origin, key);
    if (r.success) {
      ++successes;
      EXPECT_TRUE(net.IsOnline(r.terminus));
    }
  }
  EXPECT_GT(successes, 25);
}

/// One trace, synthesized once, replayed verbatim by every backend: the
/// paper's controlled-comparison methodology.
const metadata::QueryTrace& SharedTrace() {
  static const metadata::QueryTrace trace = [] {
    metadata::QueryWorkload workload(800, 1.2, Rng(321));
    return metadata::QueryTrace::Synthesize(workload, /*rounds=*/80,
                                            /*num_peers=*/400,
                                            /*f_qry=*/1.0 / 5.0);
  }();
  return trace;
}

TEST_P(BackendParity, IdenticalTraceLandsInCommonHitRateBand) {
  core::SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.backend = GetParam();
  c.churn.enabled = false;
  c.seed = 99;
  c.trace = &SharedTrace();
  core::PdhtSystem sys(c);
  ASSERT_NE(sys.dht_overlay(), nullptr);
  sys.RunRounds(80);
  // The overlay the system actually built stays structurally sound under
  // the full workload.
  EXPECT_EQ(sys.dht_overlay()->CheckInvariants(), "");
  // The selection algorithm's steady state is a property of the workload,
  // not of the backend: every overlay must land in the same sanity band.
  double hit = sys.TailHitRate(20);
  EXPECT_GT(hit, 0.45) << core::DhtBackendName(GetParam());
  EXPECT_LE(hit, 1.0);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.dht."), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredBackends, BackendParity,
    ::testing::ValuesIn(overlay::RegisteredBackends()),
    [](const ::testing::TestParamInfo<core::DhtBackend>& info) {
      return std::string(core::DhtBackendName(info.param));
    });

}  // namespace
}  // namespace pdht
