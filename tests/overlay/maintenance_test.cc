#include "overlay/dht/maintenance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdht::overlay {
namespace {

struct MaintFixture {
  MaintFixture(uint32_t n, double env, uint64_t seed = 1)
      : net(&counters), chord(&net, Rng(seed)),
        maint(&chord, &net, env, Rng(seed + 1)) {
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    chord.SetMembers(members);
  }
  pdht::CounterRegistry counters;
  net::Network net;
  ChordOverlay chord;
  ChordMaintenance maint;
};

TEST(MaintenanceTest, ProbeVolumeMatchesEnvBudget) {
  // Per peer per round the prober sends env * tableSize messages; over R
  // rounds and n peers the total must match within rounding.
  constexpr uint32_t kN = 128;
  constexpr double kEnv = 1.0 / 14.0;
  MaintFixture f(kN, kEnv, 3);
  double expected_per_round = 0.0;
  for (uint32_t i = 0; i < kN; ++i) {
    expected_per_round += f.maint.ExpectedProbesPerPeer(i);
  }
  constexpr int kRounds = 100;
  for (int r = 0; r < kRounds; ++r) f.maint.RunRound();
  double expected = expected_per_round * kRounds;
  double actual = static_cast<double>(f.maint.stats().probes_sent);
  EXPECT_NEAR(actual, expected, expected * 0.02 + kN);
}

TEST(MaintenanceTest, ProbesAppearOnMaintCounter) {
  MaintFixture f(64, 1.0, 5);
  f.maint.RunRound();
  EXPECT_EQ(f.counters.Value("msg.maint.probe"),
            f.maint.stats().probes_sent);
}

TEST(MaintenanceTest, NoProbesWhenEnvZero) {
  MaintFixture f(64, 0.0, 7);
  for (int r = 0; r < 10; ++r) f.maint.RunRound();
  EXPECT_EQ(f.maint.stats().probes_sent, 0u);
}

TEST(MaintenanceTest, DetectsAndRepairsStaleEntries) {
  MaintFixture f(200, 2.0, 9);  // aggressive probing for fast convergence
  // Kill 30% of members.
  Rng off(11);
  for (uint32_t i = 0; i < 200; ++i) {
    if (off.Bernoulli(0.3)) f.net.SetOnline(i, false);
  }
  double before = f.chord.StaleFingerFraction();
  ASSERT_GT(before, 0.1);
  for (int r = 0; r < 30; ++r) f.maint.RunRound();
  double after = f.chord.StaleFingerFraction();
  EXPECT_LT(after, before * 0.35);
  EXPECT_GT(f.maint.stats().stale_detected, 0u);
  EXPECT_EQ(f.maint.stats().repairs, f.maint.stats().stale_detected);
}

TEST(MaintenanceTest, OfflinePeersDoNotProbe) {
  MaintFixture f(32, 1.0, 13);
  for (uint32_t i = 0; i < 32; ++i) f.net.SetOnline(i, false);
  f.maint.RunRound();
  EXPECT_EQ(f.maint.stats().probes_sent, 0u);
}

TEST(MaintenanceTest, RejoinRefreshesTable) {
  MaintFixture f(100, 0.5, 15);
  // Peer 3 goes offline; others churn around it so its table goes stale.
  f.net.SetOnline(3, false);
  Rng off(17);
  for (uint32_t i = 10; i < 60; ++i) f.net.SetOnline(i, false);
  // Peer 3 returns: refresh must leave it with live fingers only.
  f.net.SetOnline(3, true);
  f.maint.OnPeerRejoin(3);
  const FingerTable* t = f.chord.TableOf(3);
  ASSERT_NE(t, nullptr);
  // Lookup from the refreshed node succeeds.
  LookupResult r = f.chord.Lookup(3, 424242);
  EXPECT_TRUE(r.success);
}

TEST(MaintenanceTest, SteadyChurnReachesEquilibriumStaleness) {
  // Alternate killing/reviving random peers and probing; staleness must
  // stay bounded well below the no-maintenance level.
  MaintFixture f(300, 1.0, 19);
  Rng churn(21);
  double worst = 0.0;
  for (int round = 0; round < 60; ++round) {
    // ~2% of peers flip per round.
    for (int k = 0; k < 6; ++k) {
      uint32_t p = static_cast<uint32_t>(churn.UniformU64(300));
      f.net.SetOnline(p, !f.net.IsOnline(p));
      if (f.net.IsOnline(p)) f.maint.OnPeerRejoin(p);
    }
    f.maint.RunRound();
    if (round > 20) worst = std::max(worst, f.chord.StaleFingerFraction());
  }
  EXPECT_LT(worst, 0.35);
}

TEST(MaintenanceTest, ExpectedProbesPerPeerUsesTableSize) {
  MaintFixture f(64, 0.25, 23);
  const FingerTable* t = f.chord.TableOf(0);
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(f.maint.ExpectedProbesPerPeer(0),
                   0.25 * static_cast<double>(t->size()));
  EXPECT_DOUBLE_EQ(f.maint.ExpectedProbesPerPeer(9999), 0.0);
}

}  // namespace
}  // namespace pdht::overlay
