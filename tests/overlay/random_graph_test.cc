#include "overlay/unstructured/random_graph.h"

#include <gtest/gtest.h>

namespace pdht::overlay {
namespace {

TEST(RandomGraphTest, SingleNodeGraph) {
  Rng rng(1);
  RandomGraph g(1, 0.0, &rng);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(RandomGraphTest, AlwaysConnected) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    RandomGraph g(500, 4.0, &rng);
    EXPECT_TRUE(g.IsConnected()) << "seed " << seed;
  }
}

TEST(RandomGraphTest, AverageDegreeNearTarget) {
  Rng rng(2);
  RandomGraph g(2000, 6.0, &rng);
  EXPECT_NEAR(g.AverageDegree(), 6.0, 0.5);
}

TEST(RandomGraphTest, EdgesAreSymmetric) {
  Rng rng(3);
  RandomGraph g(100, 4.0, &rng);
  for (uint32_t u = 0; u < 100; ++u) {
    for (net::PeerId v : g.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(RandomGraphTest, NoSelfLoops) {
  Rng rng(4);
  RandomGraph g(200, 5.0, &rng);
  for (uint32_t u = 0; u < 200; ++u) {
    for (net::PeerId v : g.Neighbors(u)) {
      EXPECT_NE(u, v);
    }
  }
}

TEST(RandomGraphTest, DeterministicForSameSeed) {
  Rng r1(7);
  Rng r2(7);
  RandomGraph a(100, 4.0, &r1);
  RandomGraph b(100, 4.0, &r2);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t u = 0; u < 100; ++u) {
    EXPECT_EQ(a.Neighbors(u), b.Neighbors(u));
  }
}

TEST(RandomGraphTest, DistanceBasics) {
  Rng rng(5);
  RandomGraph g(50, 4.0, &rng);
  EXPECT_EQ(g.Distance(0, 0), 0u);
  // Any neighbor is at distance 1.
  ASSERT_FALSE(g.Neighbors(0).empty());
  EXPECT_EQ(g.Distance(0, g.Neighbors(0)[0]), 1u);
}

TEST(RandomGraphTest, DiameterIsLogarithmic) {
  // Random graphs with constant degree have O(log n) diameter; check a
  // loose bound that still catches pathological chains.
  Rng rng(6);
  RandomGraph g(1000, 6.0, &rng);
  uint32_t max_dist = 0;
  for (uint32_t v = 1; v < 100; ++v) {
    max_dist = std::max(max_dist, g.Distance(0, v * 10 - 1));
  }
  EXPECT_LT(max_dist, 20u);
}

TEST(RandomGraphTest, ConnectivityAmongSubset) {
  Rng rng(8);
  RandomGraph g(100, 6.0, &rng);
  std::vector<bool> alive(100, true);
  EXPECT_TRUE(g.IsConnectedAmong(alive));
  // All dead: trivially connected (empty).
  std::vector<bool> none(100, false);
  EXPECT_TRUE(g.IsConnectedAmong(none));
}

TEST(RandomGraphTest, HeavyChurnCanPartition) {
  // With 90% of peers removed, a sparse graph usually partitions --
  // IsConnectedAmong must detect that (not loop forever / crash).
  Rng rng(9);
  RandomGraph g(500, 4.0, &rng);
  std::vector<bool> alive(500, false);
  Rng pick(10);
  for (int i = 0; i < 50; ++i) {
    alive[pick.UniformU64(500)] = true;
  }
  // Either outcome is legal; the call must simply terminate correctly.
  (void)g.IsConnectedAmong(alive);
}

}  // namespace
}  // namespace pdht::overlay
