#include "overlay/replica/replica_group.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <unordered_set>

namespace pdht::overlay {
namespace {

std::vector<net::PeerId> MakeMembers(uint32_t n, uint32_t offset = 0) {
  std::vector<net::PeerId> m;
  for (uint32_t i = 0; i < n; ++i) m.push_back(offset + i);
  return m;
}

TEST(ReplicaGroupTest, MembershipQueries) {
  Rng rng(1);
  ReplicaGroup g(42, MakeMembers(10, 100), 3.0, &rng);
  EXPECT_EQ(g.key(), 42u);
  EXPECT_EQ(g.members().size(), 10u);
  EXPECT_TRUE(g.Contains(100));
  EXPECT_TRUE(g.Contains(109));
  EXPECT_FALSE(g.Contains(99));
}

TEST(ReplicaGroupTest, SubnetworkIsConnected) {
  Rng rng(2);
  ReplicaGroup g(1, MakeMembers(50), 4.0, &rng);
  // BFS over the subnetwork from member 0 must reach all members.
  std::unordered_set<net::PeerId> seen{0};
  std::deque<net::PeerId> frontier{0};
  while (!frontier.empty()) {
    net::PeerId cur = frontier.front();
    frontier.pop_front();
    for (net::PeerId nbr : g.NeighborsOf(cur)) {
      if (seen.insert(nbr).second) frontier.push_back(nbr);
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(ReplicaGroupTest, SingleMemberGroup) {
  Rng rng(3);
  ReplicaGroup g(1, MakeMembers(1), 3.0, &rng);
  EXPECT_TRUE(g.NeighborsOf(0).empty());
  EXPECT_DOUBLE_EQ(g.ConsistentFraction(), 1.0);
}

TEST(ReplicaGroupTest, VersionsStartAtZero) {
  Rng rng(4);
  ReplicaGroup g(1, MakeMembers(5), 3.0, &rng);
  EXPECT_EQ(g.latest_version(), 0u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(g.VersionAt(i), 0u);
  }
  EXPECT_DOUBLE_EQ(g.ConsistentFraction(), 1.0);
}

TEST(ReplicaGroupTest, ProduceUpdateBumpsVersion) {
  Rng rng(5);
  ReplicaGroup g(1, MakeMembers(5), 3.0, &rng);
  uint64_t v1 = g.ProduceUpdate(0);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(g.VersionAt(0), 1u);
  EXPECT_EQ(g.VersionAt(1), 0u);
  EXPECT_NEAR(g.ConsistentFraction(), 0.2, 1e-12);
  uint64_t v2 = g.ProduceUpdate(1);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(g.latest_version(), 2u);
}

TEST(ReplicaGroupTest, SetVersionNeverRegresses) {
  Rng rng(6);
  ReplicaGroup g(1, MakeMembers(3), 2.0, &rng);
  g.ProduceUpdate(0);
  g.ProduceUpdate(0);
  g.SetVersionAt(1, 2);
  g.SetVersionAt(1, 1);  // stale write must be ignored
  EXPECT_EQ(g.VersionAt(1), 2u);
}

TEST(ReplicaGroupTest, SetVersionIgnoresNonMembers) {
  Rng rng(7);
  ReplicaGroup g(1, MakeMembers(3), 2.0, &rng);
  g.SetVersionAt(999, 5);
  EXPECT_EQ(g.VersionAt(999), 0u);
}

TEST(ReplicaGroupTest, ConsistentFractionOnlineIgnoresOffline) {
  pdht::CounterRegistry counters;
  net::Network net(&counters);
  Rng rng(8);
  ReplicaGroup g(1, MakeMembers(4), 2.0, &rng);
  for (uint32_t i = 0; i < 4; ++i) net.SetOnline(i, true);
  g.ProduceUpdate(0);
  g.SetVersionAt(1, 1);
  // Members 2,3 are stale; take them offline.
  net.SetOnline(2, false);
  net.SetOnline(3, false);
  EXPECT_DOUBLE_EQ(g.ConsistentFractionOnline(net), 1.0);
  EXPECT_NEAR(g.ConsistentFraction(), 0.5, 1e-12);
}

TEST(ReplicaGroupTest, AverageDegreeClampedForSmallGroups) {
  Rng rng(9);
  ReplicaGroup g(1, MakeMembers(3), 10.0, &rng);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_LE(g.NeighborsOf(i).size(), 2u * 3u);  // bounded by clamping
  }
}

}  // namespace
}  // namespace pdht::overlay
