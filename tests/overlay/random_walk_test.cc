#include "overlay/unstructured/random_walk.h"

#include <gtest/gtest.h>

#include "overlay/unstructured/replication.h"
#include "stats/histogram.h"

namespace pdht::overlay {
namespace {

struct WalkFixture {
  WalkFixture(uint32_t n, uint32_t repl, RandomWalkConfig cfg = {},
              uint64_t seed = 1)
      : rng(seed),
        graph(n, 6.0, &rng),
        net(&counters),
        placement(n, repl, Rng(seed + 1)),
        walk(&graph, &net,
             [this](net::PeerId p, uint64_t k) {
               return placement.PeerHoldsKey(p, k);
             },
             cfg, Rng(seed + 2)) {
    for (uint32_t i = 0; i < n; ++i) net.SetOnline(i, true);
  }
  Rng rng;
  RandomGraph graph;
  pdht::CounterRegistry counters;
  net::Network net;
  ReplicaPlacement placement;
  RandomWalkSearch walk;
};

TEST(RandomWalkTest, FindsWellReplicatedKey) {
  WalkFixture f(1000, 50);
  f.placement.PlaceKey(1);
  WalkResult r = f.walk.Search(0, 1);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(f.placement.PeerHoldsKey(r.found_at, 1));
}

TEST(RandomWalkTest, LocalHitIsFree) {
  WalkFixture f(200, 20);
  f.placement.PlaceKey(2);
  net::PeerId holder = f.placement.ReplicasOf(2)[0];
  WalkResult r = f.walk.Search(holder, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(RandomWalkTest, FallbackGuaranteesSuccessForExistingKeys) {
  // Even with a starved walker budget, the flood fallback preserves the
  // paper's "search finds any key that exists" assumption.
  RandomWalkConfig cfg;
  cfg.num_walkers = 1;
  cfg.max_steps_per_walker = 1;
  cfg.flood_fallback = true;
  WalkFixture f(300, 3, cfg);
  f.placement.PlaceKey(9);
  WalkResult r = f.walk.Search(0, 9);
  EXPECT_TRUE(r.found);
}

TEST(RandomWalkTest, NoFallbackCanFail) {
  RandomWalkConfig cfg;
  cfg.num_walkers = 1;
  cfg.max_steps_per_walker = 1;
  cfg.flood_fallback = false;
  WalkFixture f(300, 1, cfg);
  f.placement.PlaceKey(9);
  int failures = 0;
  for (uint64_t k = 0; k < 20; ++k) {
    WalkResult r = f.walk.Search(0, 9);
    if (!r.found) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST(RandomWalkTest, MissingKeyTriggersFallbackAndFails) {
  WalkFixture f(200, 10);
  WalkResult r = f.walk.Search(0, 31337);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.used_flood_fallback);
}

TEST(RandomWalkTest, CostScalesInverselyWithReplication) {
  // Eq. 6: cSUnstr ~ numPeers / repl.  Quadrupling the replication factor
  // should cut the expected walk cost by roughly 4x.
  constexpr uint32_t kN = 2000;
  auto mean_cost = [&](uint32_t repl, uint64_t seed) {
    RandomWalkConfig cfg;
    cfg.check_interval = 0;  // isolate pure walk cost
    WalkFixture f(kN, repl, cfg, seed);
    f.placement.PlaceKeys(20);
    pdht::Histogram h;
    for (int trial = 0; trial < 150; ++trial) {
      uint64_t key = static_cast<uint64_t>(trial) % 20;
      WalkResult r = f.walk.Search(
          static_cast<net::PeerId>((trial * 131) % kN), key);
      EXPECT_TRUE(r.found);
      h.Add(static_cast<double>(r.walk_steps));
    }
    return h.mean();
  };
  double cost_lo = mean_cost(10, 11);
  double cost_hi = mean_cost(40, 12);
  double ratio = cost_lo / cost_hi;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(RandomWalkTest, CheckMessagesAccrue) {
  RandomWalkConfig with_checks;
  with_checks.check_interval = 2;
  WalkFixture f(1000, 5, with_checks, 21);
  f.placement.PlaceKeys(10);
  // Across several searches, walks that last past the check interval must
  // emit kWalkCheck traffic (a single lucky first-step hit would not).
  for (uint64_t k = 0; k < 10; ++k) {
    f.walk.Search(static_cast<net::PeerId>(k * 97 % 1000), k);
  }
  EXPECT_GT(f.net.MessagesOfType(net::MessageType::kWalkCheck), 0u);
}

TEST(RandomWalkTest, DistinctPeersTracked) {
  WalkFixture f(500, 2);
  f.placement.PlaceKey(6);
  WalkResult r = f.walk.Search(0, 6);
  EXPECT_GE(r.distinct_peers, 1u);
  EXPECT_LE(r.distinct_peers, 500u);
}

TEST(RandomWalkTest, OfflineOriginFails) {
  WalkFixture f(100, 10);
  f.placement.PlaceKey(1);
  f.net.SetOnline(0, false);
  WalkResult r = f.walk.Search(0, 1);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(RandomWalkTest, SurvivesModerateChurnOfflineFraction) {
  WalkFixture f(1000, 50);
  f.placement.PlaceKey(1);
  Rng off(5);
  for (uint32_t i = 0; i < 1000; ++i) {
    if (off.Bernoulli(0.3)) f.net.SetOnline(i, false);
  }
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>((trial * 37) % 1000);
    if (!f.net.IsOnline(origin)) continue;
    if (f.walk.Search(origin, 1).found) ++found;
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace pdht::overlay
