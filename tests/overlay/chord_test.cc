#include "overlay/dht/chord.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "overlay/dht/id.h"
#include "stats/histogram.h"

namespace pdht::overlay {
namespace {

struct ChordFixture {
  explicit ChordFixture(uint32_t n, uint64_t seed = 1)
      : net(&counters), chord(&net, Rng(seed)) {
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    chord.SetMembers(members);
  }
  pdht::CounterRegistry counters;
  net::Network net;
  ChordOverlay chord;
};

TEST(RingIdTest, RingDistanceWraps) {
  EXPECT_EQ(RingDistance(5, 10), 5u);
  EXPECT_EQ(RingDistance(10, 5), ~uint64_t{0} - 4);
  EXPECT_EQ(RingDistance(7, 7), 0u);
}

TEST(RingIdTest, IntervalOpenClosed) {
  EXPECT_TRUE(InIntervalOpenClosed(5, 1, 10));
  EXPECT_TRUE(InIntervalOpenClosed(10, 1, 10));  // closed right end
  EXPECT_FALSE(InIntervalOpenClosed(1, 1, 10));  // open left end
  EXPECT_FALSE(InIntervalOpenClosed(11, 1, 10));
  // Wrapping interval.
  EXPECT_TRUE(InIntervalOpenClosed(2, ~uint64_t{0} - 5, 10));
  // a == b means the full ring.
  EXPECT_TRUE(InIntervalOpenClosed(123, 7, 7));
}

TEST(RingIdTest, IntervalOpen) {
  EXPECT_TRUE(InIntervalOpen(5, 1, 10));
  EXPECT_FALSE(InIntervalOpen(10, 1, 10));
  EXPECT_FALSE(InIntervalOpen(1, 1, 10));
}

TEST(RingIdTest, PeerIdsWellSpread) {
  // Node ids must not collide for realistic populations.
  std::set<NodeId> ids;
  for (uint32_t p = 0; p < 50000; ++p) {
    ASSERT_TRUE(ids.insert(PeerToNodeId(p)).second) << p;
  }
}

TEST(ChordTest, InvariantsAfterConstruction) {
  ChordFixture f(256);
  EXPECT_EQ(f.chord.CheckInvariants(), "");
  EXPECT_EQ(f.chord.num_members(), 256u);
}

TEST(ChordTest, ResponsibleMemberIsDeterministic) {
  ChordFixture f(64);
  for (uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(f.chord.ResponsibleMember(key),
              f.chord.ResponsibleMember(key));
  }
}

TEST(ChordTest, ResponsibilityPartitionsKeySpace) {
  // Every key has exactly one responsible member; responsibilities over
  // many keys should cover many members (load balance sanity).
  ChordFixture f(128);
  std::set<net::PeerId> owners;
  for (uint64_t key = 0; key < 2000; ++key) {
    net::PeerId owner = f.chord.ResponsibleMember(key);
    ASSERT_NE(owner, net::kInvalidPeer);
    owners.insert(owner);
  }
  EXPECT_GT(owners.size(), 64u);
}

TEST(ChordTest, ResponsibleReplicasAreSuccessors) {
  ChordFixture f(32);
  auto reps = f.chord.ResponsibleReplicas(99, 5);
  ASSERT_EQ(reps.size(), 5u);
  EXPECT_EQ(reps[0], f.chord.ResponsibleMember(99));
  std::set<net::PeerId> unique(reps.begin(), reps.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ChordTest, ReplicasClampedToRingSize) {
  ChordFixture f(4);
  EXPECT_EQ(f.chord.ResponsibleReplicas(1, 50).size(), 4u);
}

TEST(ChordTest, LookupReachesResponsible) {
  ChordFixture f(200);
  for (uint64_t key = 0; key < 50; ++key) {
    LookupResult r = f.chord.Lookup(5, key);
    EXPECT_TRUE(r.success) << "key " << key;
    EXPECT_EQ(r.terminus, f.chord.ResponsibleMember(key));
    EXPECT_TRUE(r.responsible_online);
  }
}

TEST(ChordTest, LookupFromOwnerIsLocal) {
  ChordFixture f(100);
  uint64_t key = 7;
  net::PeerId owner = f.chord.ResponsibleMember(key);
  LookupResult r = f.chord.Lookup(owner, key);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(ChordTest, LookupHopsAreLogarithmic) {
  // Eq. 7: expected lookup cost ~ 0.5*log2(n) hops.  Allow generous slack
  // for the ring's randomness but pin the order of magnitude.
  constexpr uint32_t kN = 1024;
  ChordFixture f(kN, 3);
  pdht::Histogram hops;
  Rng pick(17);
  for (int trial = 0; trial < 500; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(kN));
    uint64_t key = pick.Next();
    LookupResult r = f.chord.Lookup(origin, key);
    ASSERT_TRUE(r.success);
    hops.Add(static_cast<double>(r.hops));
  }
  double expected = 0.5 * std::log2(static_cast<double>(kN));  // = 5
  EXPECT_GT(hops.mean(), expected * 0.5);
  EXPECT_LT(hops.mean(), expected * 2.0);
}

TEST(ChordTest, LookupCountsMessagesOnNetwork) {
  ChordFixture f(128);
  uint64_t before = f.net.TotalMessages();
  LookupResult r = f.chord.Lookup(0, 12345);
  EXPECT_EQ(f.net.TotalMessages() - before, r.messages);
}

TEST(ChordTest, LookupRoutesAroundOfflineOwner) {
  ChordFixture f(64);
  uint64_t key = 3;
  net::PeerId owner = f.chord.ResponsibleMember(key);
  f.net.SetOnline(owner, false);
  LookupResult r = f.chord.Lookup((owner + 1) % 64 == owner ? 1 : (owner + 1) % 64, key);
  EXPECT_FALSE(r.responsible_online);
  EXPECT_EQ(r.responsible, owner);
  EXPECT_NE(r.terminus, owner);
  EXPECT_TRUE(f.net.IsOnline(r.terminus));
}

TEST(ChordTest, LookupSurvivesStaleFingersUnderChurn) {
  ChordFixture f(256, 5);
  // Knock 25% of members offline without any repair.
  Rng off(9);
  std::vector<bool> down(256, false);
  for (uint32_t i = 0; i < 256; ++i) {
    if (off.Bernoulli(0.25)) {
      f.net.SetOnline(i, false);
      down[i] = true;
    }
  }
  int successes = 0;
  int attempts = 0;
  Rng pick(11);
  for (int trial = 0; trial < 100; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(256));
    if (down[origin]) continue;
    ++attempts;
    LookupResult r = f.chord.Lookup(origin, pick.Next());
    if (r.success) ++successes;
  }
  ASSERT_GT(attempts, 0);
  // Routing around failures must succeed for the vast majority.
  EXPECT_GT(static_cast<double>(successes) / attempts, 0.9);
}

TEST(ChordTest, FailedProbesCostMessages) {
  ChordFixture f(128, 7);
  Rng off(13);
  for (uint32_t i = 0; i < 128; ++i) {
    if (off.Bernoulli(0.3)) f.net.SetOnline(i, false);
  }
  uint64_t total_failed = 0;
  Rng pick(15);
  for (int trial = 0; trial < 50; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(128));
    if (!f.net.IsOnline(origin)) continue;
    LookupResult r = f.chord.Lookup(origin, pick.Next());
    total_failed += r.failed_probes;
    EXPECT_GE(r.messages, r.hops);  // failures add messages beyond hops
  }
  EXPECT_GT(total_failed, 0u);
}

TEST(ChordTest, AddMemberMaintainsInvariants) {
  ChordFixture f(50);
  f.chord.AddMember(1000);
  f.chord.AddMember(1001);
  EXPECT_EQ(f.chord.num_members(), 52u);
  EXPECT_EQ(f.chord.CheckInvariants(), "");
  EXPECT_TRUE(f.chord.IsMember(1000));
  // Join traffic was accounted.
  EXPECT_GT(f.counters.Value("msg.overlay.join"), 0u);
}

TEST(ChordTest, AddMemberIsIdempotent) {
  ChordFixture f(10);
  f.chord.AddMember(3);  // already a member
  EXPECT_EQ(f.chord.num_members(), 10u);
}

TEST(ChordTest, RemoveMemberShrinksRing) {
  ChordFixture f(20);
  f.chord.RemoveMember(5);
  EXPECT_EQ(f.chord.num_members(), 19u);
  EXPECT_FALSE(f.chord.IsMember(5));
  EXPECT_EQ(f.chord.CheckInvariants(), "");
  // Lookups still work after departure + refresh.
  for (uint32_t i = 0; i < 20; ++i) {
    if (i != 5) f.chord.RefreshNode(i);
  }
  LookupResult r = f.chord.Lookup(0, 42);
  EXPECT_TRUE(r.success);
}

TEST(ChordTest, RandomOnlineMemberSkipsOffline) {
  ChordFixture f(16);
  for (uint32_t i = 0; i < 16; ++i) {
    if (i != 7) f.net.SetOnline(i, false);
  }
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_EQ(f.chord.RandomOnlineMember(rng), 7u);
  }
}

TEST(ChordTest, RandomOnlineMemberAllOffline) {
  ChordFixture f(8);
  for (uint32_t i = 0; i < 8; ++i) f.net.SetOnline(i, false);
  Rng rng(4);
  EXPECT_EQ(f.chord.RandomOnlineMember(rng), net::kInvalidPeer);
}

TEST(ChordTest, StaleFingerFractionTracksChurn) {
  ChordFixture f(200, 21);
  EXPECT_DOUBLE_EQ(f.chord.StaleFingerFraction(), 0.0);
  Rng off(5);
  for (uint32_t i = 0; i < 200; ++i) {
    if (off.Bernoulli(0.3)) f.net.SetOnline(i, false);
  }
  double stale = f.chord.StaleFingerFraction();
  EXPECT_GT(stale, 0.15);
  EXPECT_LT(stale, 0.45);
}

TEST(ChordTest, TinyRings) {
  ChordFixture f(2);
  LookupResult r = f.chord.Lookup(0, 99);
  EXPECT_TRUE(r.success);
  ChordFixture g(1);
  LookupResult r1 = g.chord.Lookup(0, 5);
  EXPECT_TRUE(r1.success);
  EXPECT_EQ(r1.terminus, 0u);
}

// Parameterized: lookup success and hop bound across ring sizes.
class ChordSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ChordSizeSweep, AllLookupsSucceedOnStaticRing) {
  uint32_t n = GetParam();
  ChordFixture f(n, n);
  Rng pick(n * 3 + 1);
  for (int trial = 0; trial < 60; ++trial) {
    net::PeerId origin = static_cast<net::PeerId>(pick.UniformU64(n));
    LookupResult r = f.chord.Lookup(origin, pick.Next());
    ASSERT_TRUE(r.success);
    ASSERT_LE(r.hops, 4u * static_cast<uint32_t>(std::log2(n + 1)) + 16u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 64, 256, 1000));

}  // namespace
}  // namespace pdht::overlay
