#include "overlay/unstructured/flooding.h"

#include <gtest/gtest.h>

#include "overlay/unstructured/replication.h"

namespace pdht::overlay {
namespace {

struct FloodFixture {
  FloodFixture(uint32_t n, uint32_t repl, uint64_t seed = 1)
      : rng(seed),
        graph(n, 6.0, &rng),
        net(&counters),
        placement(n, repl, Rng(seed + 1)),
        flood(&graph, &net,
              [this](net::PeerId p, uint64_t k) {
                return placement.PeerHoldsKey(p, k);
              }) {
    for (uint32_t i = 0; i < n; ++i) net.SetOnline(i, true);
  }
  Rng rng;
  RandomGraph graph;
  pdht::CounterRegistry counters;
  net::Network net;
  ReplicaPlacement placement;
  FloodSearch flood;
};

TEST(FloodSearchTest, FindsReplicatedKey) {
  FloodFixture f(500, 25);
  f.placement.PlaceKey(7);
  FloodResult r = f.flood.Search(0, 7, /*ttl_hops=*/10);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(f.placement.PeerHoldsKey(r.found_at, 7));
}

TEST(FloodSearchTest, LocalHitCostsNothing) {
  FloodFixture f(100, 10);
  f.placement.PlaceKey(3);
  net::PeerId holder = f.placement.ReplicasOf(3)[0];
  FloodResult r = f.flood.Search(holder, 3, 10);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.found_at, holder);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.hops_to_hit, 0u);
}

TEST(FloodSearchTest, MissingKeyNotFound) {
  FloodFixture f(200, 10);
  FloodResult r = f.flood.Search(0, 999, 20);
  EXPECT_FALSE(r.found);
  // But the whole network was flooded at full cost.
  EXPECT_GT(r.messages, 200u);
}

TEST(FloodSearchTest, TtlZeroSearchesOnlyOrigin) {
  FloodFixture f(100, 5);
  f.placement.PlaceKey(1);
  FloodResult r = f.flood.Search(0, 1, 0);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.peers_reached, 1u);
}

TEST(FloodSearchTest, TtlBoundsReach) {
  FloodFixture f(1000, 1);
  FloodResult r1 = f.flood.Search(0, 12345, 1);
  // TTL 1 reaches exactly the neighbors.
  EXPECT_EQ(r1.peers_reached, 1 + f.graph.Neighbors(0).size());
}

TEST(FloodSearchTest, DuplicateTransmissionsCounted) {
  // In a connected graph with average degree d, a full flood sends ~ n*d/1
  // directed transmissions while reaching only n peers: messages >
  // peers_reached demonstrates the dup overhead of Eq. 6.
  FloodFixture f(300, 1);
  FloodResult r = f.flood.Search(0, 4242, 30);
  EXPECT_GT(r.messages, static_cast<uint64_t>(r.peers_reached));
}

TEST(FloodSearchTest, OfflinePeersBlockPropagation) {
  FloodFixture f(100, 5);
  f.placement.PlaceKey(1);
  // Take the whole network offline except the origin.
  for (uint32_t i = 1; i < 100; ++i) f.net.SetOnline(i, false);
  bool origin_holds = f.placement.PeerHoldsKey(0, 1);
  FloodResult r = f.flood.Search(0, 1, 10);
  EXPECT_EQ(r.found, origin_holds);
  // Transmissions to offline neighbors are still paid for.
  if (!origin_holds) {
    EXPECT_EQ(r.messages, f.graph.Neighbors(0).size());
  }
}

TEST(FloodSearchTest, OfflineOriginFindsNothing) {
  FloodFixture f(100, 5);
  f.placement.PlaceKey(1);
  f.net.SetOnline(0, false);
  FloodResult r = f.flood.Search(0, 1, 10);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(FloodSearchTest, MessagesLandOnNetworkCounters) {
  FloodFixture f(100, 5);
  f.flood.Search(0, 777, 3);
  EXPECT_EQ(f.counters.Value("msg.unstructured.flood"),
            f.net.MessagesOfType(net::MessageType::kFloodQuery));
  EXPECT_GT(f.counters.Value("msg.total"), 0u);
}

TEST(FloodSearchTest, ResponseSentOnHit) {
  FloodFixture f(200, 20);
  f.placement.PlaceKey(5);
  FloodResult r = f.flood.Search(1, 5, 10);
  if (r.found && r.found_at != 1) {
    EXPECT_EQ(f.net.MessagesOfType(net::MessageType::kQueryResponse), 1u);
  }
}

}  // namespace
}  // namespace pdht::overlay
