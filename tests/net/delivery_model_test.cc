// DeliveryModel contract tests: determinism and purity of the synthetic
// coordinate space, symmetric RTTs, the Network fast-path/deferred-path
// split, scheduled arrival times, mid-flight drops, and the latency
// accounting (per-type histograms + running sum) the lookup-RTT metrics
// are built on.

#include "net/delivery_model.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/rtt_estimator.h"
#include "sim/event_queue.h"
#include "stats/counter.h"

namespace pdht::net {
namespace {

Message Msg(PeerId from, PeerId to, MessageType type = MessageType::kDhtLookup) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  return m;
}

/// Records every delivery with the queue time it arrived at.
class RecordingHandler : public MessageHandler {
 public:
  explicit RecordingHandler(sim::EventQueue* q) : queue_(q) {}
  void HandleMessage(const Message& msg) override {
    messages.push_back(msg);
    arrival_times.push_back(queue_->now());
  }
  std::vector<Message> messages;
  std::vector<double> arrival_times;

 private:
  sim::EventQueue* queue_;
};

TEST(DeliveryModelKindTest, NamesRoundTrip) {
  DeliveryModelKind k;
  EXPECT_TRUE(ParseDeliveryModel("immediate", &k));
  EXPECT_EQ(k, DeliveryModelKind::kImmediate);
  EXPECT_TRUE(ParseDeliveryModel("LATENCY", &k));
  EXPECT_EQ(k, DeliveryModelKind::kLatency);
  EXPECT_FALSE(ParseDeliveryModel("carrier-pigeon", &k));
  EXPECT_STREQ(DeliveryModelName(DeliveryModelKind::kImmediate), "immediate");
  EXPECT_STREQ(DeliveryModelName(DeliveryModelKind::kLatency), "latency");
}

TEST(ImmediateDeliveryTest, ZeroDelayAndImmediate) {
  ImmediateDelivery imm;
  EXPECT_TRUE(imm.immediate());
  EXPECT_DOUBLE_EQ(imm.LinkDelaySeconds(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(imm.RttMs(1, 2), 0.0);
}

TEST(LatencyDeliveryTest, SameSeedSameDelays) {
  LatencyConfig cfg;
  LatencyDelivery a(cfg, 42), b(cfg, 42);
  for (PeerId i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.LinkDelaySeconds(i, i + 7),
                     b.LinkDelaySeconds(i, i + 7));
  }
}

TEST(LatencyDeliveryTest, DifferentSeedDifferentTopology) {
  LatencyConfig cfg;
  LatencyDelivery a(cfg, 42), b(cfg, 43);
  int differing = 0;
  for (PeerId i = 0; i < 50; ++i) {
    if (a.LinkDelaySeconds(i, i + 7) != b.LinkDelaySeconds(i, i + 7)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 45);  // hash collisions aside, everything moves
}

TEST(LatencyDeliveryTest, RttIsSymmetric) {
  LatencyDelivery model(LatencyConfig{}, 7);
  for (PeerId i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.RttMs(i, 3 * i + 1), model.RttMs(3 * i + 1, i));
  }
}

TEST(LatencyDeliveryTest, DelayWithinConfiguredBounds) {
  LatencyConfig cfg;
  cfg.base_ms = 5.0;
  cfg.ms_per_unit = 80.0;
  cfg.jitter_ms = 2.0;
  LatencyDelivery model(cfg, 99);
  const double max_ms = cfg.base_ms + cfg.ms_per_unit * std::sqrt(2.0) +
                        cfg.jitter_ms;
  for (PeerId i = 0; i < 200; ++i) {
    const double ms = model.LinkDelaySeconds(i, 200 + i) * 1e3;
    EXPECT_GE(ms, cfg.base_ms);
    EXPECT_LT(ms, max_ms);
  }
}

TEST(LatencyDeliveryTest, LinkDelayNeverDropsBelowBaseFloor) {
  // Regression: the per-link delay is clamped to >= base_ms even under
  // an adversarial config constructed around Validate() (negative
  // jitter could otherwise push a short link below the physical floor).
  LatencyConfig cfg;
  cfg.base_ms = 5.0;
  cfg.ms_per_unit = 0.0;
  cfg.jitter_ms = -50.0;  // bypasses Validate(); the clamp must hold
  LatencyDelivery model(cfg, 13);
  for (PeerId i = 0; i < 100; ++i) {
    EXPECT_GE(model.LinkDelaySeconds(i, 100 + i), cfg.base_ms * 1e-3);
  }
}

TEST(LatencyDeliveryTest, CoordinatesLieInUnitSquare) {
  LatencyDelivery model(LatencyConfig{}, 1);
  for (PeerId i = 0; i < 100; ++i) {
    double x = -1.0, y = -1.0;
    model.Coordinate(i, &x, &y);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(LatencyConfigTest, ValidateRejectsNegativesAndAllZero) {
  LatencyConfig cfg;
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.base_ms = -1.0;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = LatencyConfig{};
  cfg.base_ms = cfg.ms_per_unit = cfg.jitter_ms = 0.0;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = LatencyConfig{};
  cfg.timeout_ms = -1.0;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = LatencyConfig{};
  cfg.topology = LatencyTopology::kTransitStub;
  cfg.num_clusters = 0;
  EXPECT_FALSE(cfg.Validate().empty());
}

TEST(LatencyTopologyTest, NamesRoundTrip) {
  LatencyTopology t;
  EXPECT_TRUE(ParseLatencyTopology("uniform", &t));
  EXPECT_EQ(t, LatencyTopology::kUniform);
  EXPECT_TRUE(ParseLatencyTopology("TRANSIT_STUB", &t));
  EXPECT_EQ(t, LatencyTopology::kTransitStub);
  EXPECT_FALSE(ParseLatencyTopology("donut", &t));
  EXPECT_STREQ(LatencyTopologyName(LatencyTopology::kUniform), "uniform");
  EXPECT_STREQ(LatencyTopologyName(LatencyTopology::kTransitStub),
               "transit_stub");
}

TEST(TransitStubTopologyTest, IntraClusterDelaysSeparateFromInterCluster) {
  LatencyConfig cfg;
  cfg.topology = LatencyTopology::kTransitStub;
  cfg.num_clusters = 6;
  cfg.cluster_spread = 0.02;
  cfg.jitter_ms = 0.0;  // isolate the geometric separation
  LatencyDelivery model(cfg, 2026);

  double intra_sum = 0.0, inter_sum = 0.0;
  uint64_t intra_n = 0, inter_n = 0;
  for (PeerId a = 0; a < 120; ++a) {
    for (PeerId b = a + 1; b < 120; ++b) {
      const double rtt = model.RttMs(a, b);
      if (model.ClusterOf(a) == model.ClusterOf(b)) {
        intra_sum += rtt;
        ++intra_n;
      } else {
        inter_sum += rtt;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  const double intra_mean = intra_sum / static_cast<double>(intra_n);
  const double inter_mean = inter_sum / static_cast<double>(inter_n);
  // Stub members sit within 2*spread of each other (<= ~11 ms of
  // distance-derived RTT here) while distinct cluster centers are O(1)
  // apart: a clear separation, not a statistical accident.
  EXPECT_LT(intra_mean, 0.5 * inter_mean)
      << "intra " << intra_mean << " vs inter " << inter_mean;
  // Hard geometric cap on intra-cluster links: base + 2*sqrt(2)*spread.
  const double intra_cap_ms =
      2.0 * (cfg.base_ms +
             cfg.ms_per_unit * 2.0 * std::sqrt(2.0) * cfg.cluster_spread);
  for (PeerId a = 0; a < 60; ++a) {
    for (PeerId b = a + 1; b < 60; ++b) {
      if (model.ClusterOf(a) == model.ClusterOf(b)) {
        EXPECT_LE(model.RttMs(a, b), intra_cap_ms + 1e-9);
      }
    }
  }
}

TEST(TransitStubTopologyTest, DeterministicFromSeedAndClusterBounded) {
  LatencyConfig cfg;
  cfg.topology = LatencyTopology::kTransitStub;
  cfg.num_clusters = 5;
  LatencyDelivery a(cfg, 7), b(cfg, 7), c(cfg, 8);
  int moved = 0;
  for (PeerId p = 0; p < 80; ++p) {
    EXPECT_EQ(a.ClusterOf(p), b.ClusterOf(p));
    EXPECT_LT(a.ClusterOf(p), cfg.num_clusters);
    EXPECT_DOUBLE_EQ(a.LinkDelaySeconds(p, p + 3),
                     b.LinkDelaySeconds(p, p + 3));
    if (a.LinkDelaySeconds(p, p + 3) != c.LinkDelaySeconds(p, p + 3)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 70);  // a different seed relocates the topology
}

TEST(ProbeTimeoutTest, ModelsExposeConfiguredTimeout) {
  ImmediateDelivery imm;
  EXPECT_DOUBLE_EQ(imm.ProbeTimeoutSeconds(0, 1), 0.0);
  LatencyConfig cfg;
  cfg.timeout_ms = 400.0;
  LatencyDelivery lat(cfg, 5);
  EXPECT_DOUBLE_EQ(lat.ProbeTimeoutSeconds(0, 1), 0.4);
}

TEST(RtoEstimatorTest, JacobsonUpdateMatchesRfc6298) {
  RtoConfig rc;
  rc.min_ms = 1.0;
  rc.max_ms = 10000.0;
  PeerRtoEstimator est(rc);
  // First sample: srtt = R, rttvar = R/2 -> RTO = 3R.
  est.Observe(5, 100.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 5), 300.0);
  // Second sample (rttvar updates BEFORE srtt, RFC 6298 order):
  //   rttvar = 3/4 * 50 + 1/4 * |100 - 50| = 50
  //   srtt   = 7/8 * 100 + 1/8 * 50       = 93.75
  est.Observe(5, 50.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 5), 93.75 + 4.0 * 50.0);
  EXPECT_EQ(est.samples(), 2u);
}

TEST(RtoEstimatorTest, RtoClampsToFloorAndCeiling) {
  RtoConfig rc;
  rc.min_ms = 200.0;
  rc.max_ms = 400.0;
  PeerRtoEstimator est(rc);
  est.Observe(1, 10.0);     // 3 * 10 = 30 -> floor
  est.Observe(2, 1000.0);   // 3000 -> ceiling
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 2), 400.0);
}

TEST(RtoEstimatorTest, UnsampledDestinationsSeedFromOracle) {
  RtoConfig rc;
  rc.min_ms = 10.0;
  rc.max_ms = 500.0;
  PeerRtoEstimator est(rc, [](PeerId, PeerId to) {
    return to == 7 ? 40.0 : 1000.0;
  });
  // No samples yet: RTO = 3 * seed RTT, clamped.
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 7), 120.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 8), 500.0);  // 3000 clamped to max
  // A real sample overrides the seed.
  est.Observe(7, 10.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 7), 30.0);
}

TEST(RtoEstimatorTest, NoOracleNoSamplesDegradesToExactFallback) {
  // The PeerRtt-null degradation contract: with no oracle and no
  // samples the estimator returns fallback_ms VERBATIM (no clamping),
  // so a system wired this way is bit-identical to the fixed
  // timeout_ms path even when fallback lies outside [min, max].
  RtoConfig rc;
  rc.min_ms = 10.0;
  rc.max_ms = 100.0;
  rc.fallback_ms = 250.0;
  PeerRtoEstimator est(rc);
  EXPECT_DOUBLE_EQ(est.RtoMs(0, 1), 250.0);
  EXPECT_DOUBLE_EQ(est.RtoMs(3, 9999), 250.0);
}

TEST(ProbeTimeoutTest, AdaptiveEstimatorOverridesFixedTimeout) {
  LatencyConfig cfg;
  cfg.timeout_ms = 400.0;
  LatencyDelivery lat(cfg, 5);
  EXPECT_DOUBLE_EQ(lat.ProbeTimeoutSeconds(0, 1), 0.4);

  RtoConfig rc;
  rc.min_ms = 1.0;
  rc.max_ms = 10000.0;
  PeerRtoEstimator est(rc);
  est.Observe(1, 100.0);
  lat.SetRtoEstimator(&est);
  EXPECT_DOUBLE_EQ(lat.ProbeTimeoutSeconds(0, 1), 0.3);  // 3 * 100 ms
  lat.SetRtoEstimator(nullptr);
  EXPECT_DOUBLE_EQ(lat.ProbeTimeoutSeconds(0, 1), 0.4);
}

TEST(NetworkDeliveryTest, DeferredSendsFeedRttObserverButTimeoutsDoNot) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyConfig cfg;
  cfg.timeout_ms = 250.0;
  LatencyDelivery model(cfg, 17);
  net.SetDeliveryModel(&model, &events);

  RtoConfig rc;
  rc.min_ms = 0.0;
  rc.max_ms = 100000.0;
  PeerRtoEstimator est(rc);
  net.SetRttObserver(&est);

  RecordingHandler h(&events);
  net.Register(1, &h);
  EXPECT_TRUE(net.Send(Msg(0, 1)));
  // One deferred delivery = one RTT sample: twice the charged one-way
  // delay, in milliseconds.
  EXPECT_EQ(est.samples(), 1u);
  const double rtt_ms = 2e3 * model.LinkDelaySeconds(0, 1);
  EXPECT_NEAR(est.RtoMs(0, 1), 3.0 * static_cast<float>(rtt_ms), 1e-3);

  // Karn's rule: charged timeouts contribute no sample.
  net.ChargeProbeTimeout(0, 2);
  EXPECT_EQ(est.samples(), 1u);
}

TEST(NetworkDeliveryTest, ImmediateModelObjectKeepsSynchronousDelivery) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  ImmediateDelivery imm;
  net.SetDeliveryModel(&imm, &events);
  EXPECT_FALSE(net.deferred_delivery());

  RecordingHandler h(&events);
  net.Register(1, &h);
  EXPECT_TRUE(net.Send(Msg(0, 1)));
  // Delivered during Send, not parked on the queue.
  ASSERT_EQ(h.messages.size(), 1u);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(net.DeferredCount(), 0u);
}

TEST(NetworkDeliveryTest, LatencyModelDefersToScheduledTime) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyDelivery model(LatencyConfig{}, 11);
  net.SetDeliveryModel(&model, &events);
  EXPECT_TRUE(net.deferred_delivery());

  RecordingHandler h(&events);
  net.Register(1, &h);
  EXPECT_TRUE(net.Send(Msg(0, 1)));
  // Charged and parked, not yet delivered.
  EXPECT_EQ(net.TotalMessages(), 1u);
  EXPECT_EQ(net.DeferredCount(), 1u);
  EXPECT_TRUE(h.messages.empty());
  ASSERT_EQ(events.size(), 1u);

  events.RunAll();
  ASSERT_EQ(h.messages.size(), 1u);
  EXPECT_EQ(h.messages[0].from, 0u);
  EXPECT_DOUBLE_EQ(h.arrival_times[0], model.LinkDelaySeconds(0, 1));
}

TEST(NetworkDeliveryTest, ArrivalToChurnedOfflinePeerIsDropped) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyDelivery model(LatencyConfig{}, 11);
  net.SetDeliveryModel(&model, &events);

  RecordingHandler h(&events);
  net.Register(1, &h);
  EXPECT_TRUE(net.Send(Msg(0, 1)));  // online at send time
  net.SetOnline(1, false);           // churns offline mid-flight
  events.RunAll();
  EXPECT_TRUE(h.messages.empty());
  EXPECT_EQ(net.DroppedCount(), 1u);
  // The message was still charged at send time.
  EXPECT_EQ(net.TotalMessages(), 1u);
}

TEST(NetworkDeliveryTest, OfflineSendStillFailsFastAndCountsLost) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyDelivery model(LatencyConfig{}, 11);
  net.SetDeliveryModel(&model, &events);

  net.SetOnline(1, false);
  EXPECT_FALSE(net.Send(Msg(0, 1)));
  EXPECT_TRUE(events.empty());  // nothing scheduled for a dead link
  EXPECT_EQ(counters.Value("net.lost"), 1u);
  EXPECT_EQ(net.TotalMessages(), 1u);  // counted: the bytes hit the wire
}

TEST(NetworkDeliveryTest, RecordsPerTypeLatencyAndRunningSum) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyDelivery model(LatencyConfig{}, 17);
  net.SetDeliveryModel(&model, &events);

  net.SetOnline(0, true);
  net.SetOnline(1, true);
  net.SetOnline(2, true);
  EXPECT_TRUE(net.Send(Msg(0, 1, MessageType::kDhtLookup)));
  EXPECT_TRUE(net.Send(Msg(1, 2, MessageType::kDhtLookup)));
  EXPECT_TRUE(net.Send(Msg(2, 0, MessageType::kDhtResponse)));

  const Histogram& lookups = net.TypeLatencyMs(MessageType::kDhtLookup);
  EXPECT_EQ(lookups.count(), 2u);
  EXPECT_EQ(net.TypeLatencyMs(MessageType::kDhtResponse).count(), 1u);
  const double expected_s = model.LinkDelaySeconds(0, 1) +
                            model.LinkDelaySeconds(1, 2) +
                            model.LinkDelaySeconds(2, 0);
  EXPECT_NEAR(net.total_latency_s(), expected_s, 1e-12);
  EXPECT_NEAR(lookups.sum() * 1e-3,
              model.LinkDelaySeconds(0, 1) + model.LinkDelaySeconds(1, 2),
              1e-12);
}

TEST(NetworkDeliveryTest, ChargeProbeTimeoutAddsLatencyAndCounts) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyConfig cfg;
  cfg.timeout_ms = 300.0;
  LatencyDelivery model(cfg, 21);
  net.SetDeliveryModel(&model, &events);

  EXPECT_EQ(net.TimeoutCount(), 0u);
  net.ChargeProbeTimeout(0, 1);
  net.ChargeProbeTimeout(2, 3);
  EXPECT_EQ(net.TimeoutCount(), 2u);
  EXPECT_EQ(counters.Value("net.timeout"), 2u);
  // The waits joined the latency sum (what lookup-RTT brackets read);
  // no message was charged -- timeouts price waiting, not the wire.
  EXPECT_NEAR(net.total_latency_s(), 0.6, 1e-12);
  EXPECT_EQ(net.TotalMessages(), 0u);
}

TEST(NetworkDeliveryTest, ChargeProbeTimeoutIsNoOpUnderImmediateDelivery) {
  CounterRegistry counters;
  Network net(&counters);
  net.ChargeProbeTimeout(0, 1);  // no model installed: inline path
  EXPECT_EQ(net.TimeoutCount(), 0u);
  EXPECT_DOUBLE_EQ(net.total_latency_s(), 0.0);
}

TEST(NetworkDeliveryTest, ResettingToNullRestoresInlinePath) {
  CounterRegistry counters;
  sim::EventQueue events;
  Network net(&counters);
  LatencyDelivery model(LatencyConfig{}, 3);
  net.SetDeliveryModel(&model, &events);
  net.SetDeliveryModel(nullptr, nullptr);
  EXPECT_FALSE(net.deferred_delivery());

  RecordingHandler h(&events);
  net.Register(1, &h);
  EXPECT_TRUE(net.Send(Msg(0, 1)));
  EXPECT_EQ(h.messages.size(), 1u);
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace pdht::net
