#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace pdht::net {
namespace {

class RecordingHandler : public MessageHandler {
 public:
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
  }
  std::vector<Message> received;
};

TEST(MessageTypeTest, NamesAreStableAndCategorized) {
  EXPECT_STREQ(MessageTypeName(MessageType::kFloodQuery),
               "msg.unstructured.flood");
  EXPECT_STREQ(MessageTypeName(MessageType::kDhtLookup), "msg.dht.lookup");
  EXPECT_STREQ(MessageTypeName(MessageType::kRoutingProbe),
               "msg.maint.probe");
  EXPECT_STREQ(MessageTypeName(MessageType::kReplicaPush),
               "msg.replica.push");
}

TEST(MessageTypeTest, AllTypesHaveMsgPrefix) {
  for (int t = 0; t < static_cast<int>(MessageType::kCount); ++t) {
    std::string name = MessageTypeName(static_cast<MessageType>(t));
    EXPECT_EQ(name.rfind("msg.", 0), 0u) << name;
  }
}

TEST(NetworkTest, SendCountsAndDelivers) {
  CounterRegistry counters;
  Network net(&counters);
  RecordingHandler h;
  net.Register(1, &h);
  Message m;
  m.type = MessageType::kDhtLookup;
  m.from = 0;
  m.to = 1;
  m.key = 42;
  EXPECT_TRUE(net.Send(m));
  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].key, 42u);
  EXPECT_EQ(counters.Value("msg.dht.lookup"), 1u);
  EXPECT_EQ(counters.Value("msg.total"), 1u);
}

TEST(NetworkTest, SendToOfflinePeerCountsButFails) {
  CounterRegistry counters;
  Network net(&counters);
  RecordingHandler h;
  net.Register(1, &h);
  net.SetOnline(1, false);
  Message m;
  m.to = 1;
  EXPECT_FALSE(net.Send(m));
  EXPECT_TRUE(h.received.empty());
  // The transmission still hit the wire.
  EXPECT_EQ(counters.Value("msg.total"), 1u);
}

TEST(NetworkTest, SendToUnregisteredPeerCountsButFails) {
  CounterRegistry counters;
  Network net(&counters);
  Message m;
  m.to = 99;
  EXPECT_FALSE(net.Send(m));
  EXPECT_EQ(counters.Value("msg.total"), 1u);
}

TEST(NetworkTest, OnlineStateDefaultsTrueForRegistered) {
  CounterRegistry counters;
  Network net(&counters);
  RecordingHandler h;
  net.Register(5, &h);
  EXPECT_TRUE(net.IsOnline(5));
  EXPECT_FALSE(net.IsOnline(6));  // never seen
}

TEST(NetworkTest, SetOnlineToggles) {
  CounterRegistry counters;
  Network net(&counters);
  net.SetOnline(3, true);
  EXPECT_TRUE(net.IsOnline(3));
  net.SetOnline(3, false);
  EXPECT_FALSE(net.IsOnline(3));
  net.SetOnline(3, true);
  EXPECT_TRUE(net.IsOnline(3));
}

TEST(NetworkTest, CountOnlyAddsWithoutDelivery) {
  CounterRegistry counters;
  Network net(&counters);
  RecordingHandler h;
  net.Register(0, &h);
  net.CountOnly(MessageType::kReplicaFlood, 90);
  EXPECT_TRUE(h.received.empty());
  EXPECT_EQ(counters.Value("msg.replica.flood"), 90u);
  EXPECT_EQ(net.TotalMessages(), 90u);
}

TEST(NetworkTest, MessagesOfTypeQueriesCounter) {
  CounterRegistry counters;
  Network net(&counters);
  net.CountOnly(MessageType::kWalkQuery, 3);
  net.CountOnly(MessageType::kDhtLookup, 2);
  EXPECT_EQ(net.MessagesOfType(MessageType::kWalkQuery), 3u);
  EXPECT_EQ(net.MessagesOfType(MessageType::kDhtLookup), 2u);
  EXPECT_EQ(net.TotalMessages(), 5u);
}

TEST(NetworkTest, RegisterReplacesHandler) {
  CounterRegistry counters;
  Network net(&counters);
  RecordingHandler h1;
  RecordingHandler h2;
  net.Register(0, &h1);
  net.Register(0, &h2);
  Message m;
  m.to = 0;
  net.Send(m);
  EXPECT_TRUE(h1.received.empty());
  EXPECT_EQ(h2.received.size(), 1u);
}

}  // namespace
}  // namespace pdht::net
