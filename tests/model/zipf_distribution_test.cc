#include "model/zipf_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdht::model {
namespace {

TEST(ZipfDistributionTest, PmfSumsToOne) {
  ZipfDistribution z(10000, 1.2);
  double sum = 0.0;
  for (uint64_t r = 1; r <= 10000; ++r) sum += z.Prob(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, ProbMatchesEquation3) {
  // Eq. 3: prob(rank) = rank^-alpha / sum x^-alpha.
  ZipfDistribution z(100, 1.2);
  double h = 0.0;
  for (uint64_t x = 1; x <= 100; ++x) h += std::pow(x, -1.2);
  EXPECT_NEAR(z.Prob(1), 1.0 / h, 1e-12);
  EXPECT_NEAR(z.Prob(10), std::pow(10.0, -1.2) / h, 1e-12);
}

TEST(ZipfDistributionTest, CdfMonotoneAndComplete) {
  ZipfDistribution z(500, 1.2);
  for (uint64_t r = 2; r <= 500; ++r) {
    EXPECT_GT(z.Cdf(r), z.Cdf(r - 1));
  }
  EXPECT_DOUBLE_EQ(z.Cdf(500), 1.0);
  EXPECT_DOUBLE_EQ(z.Cdf(9999), 1.0);
  EXPECT_DOUBLE_EQ(z.Cdf(0), 0.0);
}

TEST(ZipfDistributionTest, ProbQueriedAtLeastOnceEquation4) {
  // Eq. 4 at moderate scale: direct formula comparison.
  ZipfDistribution z(100, 1.0);
  double q = 50.0;  // total queries per round
  for (uint64_t r : {1ull, 10ull, 100ull}) {
    double p = z.Prob(r);
    double expected = 1.0 - std::pow(1.0 - p, q);
    EXPECT_NEAR(z.ProbQueriedAtLeastOnce(r, q), expected, 1e-12);
  }
}

TEST(ZipfDistributionTest, ProbQueriedStableForTinyProbabilities) {
  // With 40,000 keys and alpha 1.2 the tail pmf is ~1e-7; the naive
  // 1-(1-p)^q would lose precision.  probT ~= q*p for q*p << 1.
  ZipfDistribution z(40000, 1.2);
  double p = z.Prob(40000);
  double q = 2.778;  // 20,000 peers * 1/7200
  double pt = z.ProbQueriedAtLeastOnce(40000, q);
  EXPECT_NEAR(pt, q * p, q * p * 0.01);
  EXPECT_GT(pt, 0.0);
}

TEST(ZipfDistributionTest, ProbQueriedMonotoneInRank) {
  ZipfDistribution z(1000, 1.2);
  double q = 100.0;
  for (uint64_t r = 2; r <= 1000; r += 7) {
    EXPECT_LE(z.ProbQueriedAtLeastOnce(r, q),
              z.ProbQueriedAtLeastOnce(r - 1, q));
  }
}

TEST(ZipfDistributionTest, ProbQueriedMonotoneInLoad) {
  ZipfDistribution z(1000, 1.2);
  EXPECT_LT(z.ProbQueriedAtLeastOnce(10, 1.0),
            z.ProbQueriedAtLeastOnce(10, 10.0));
}

TEST(ZipfDistributionTest, MaxRankBinarySearchMatchesLinearScan) {
  ZipfDistribution z(2000, 1.2);
  double q = 70.0;
  for (double threshold : {1e-4, 1e-3, 1e-2, 0.1, 0.5}) {
    uint64_t expected = 0;
    for (uint64_t r = 1; r <= 2000; ++r) {
      if (z.ProbQueriedAtLeastOnce(r, q) >= threshold) expected = r;
      else break;
    }
    EXPECT_EQ(z.MaxRankWithProbTAtLeast(threshold, q), expected)
        << "threshold " << threshold;
  }
}

TEST(ZipfDistributionTest, MaxRankZeroWhenThresholdUnreachable) {
  ZipfDistribution z(100, 1.2);
  EXPECT_EQ(z.MaxRankWithProbTAtLeast(2.0, 1000.0), 0u);
}

TEST(ZipfDistributionTest, MaxRankFullWhenThresholdTiny) {
  ZipfDistribution z(100, 1.2);
  EXPECT_EQ(z.MaxRankWithProbTAtLeast(1e-30, 10.0), 100u);
}

}  // namespace
}  // namespace pdht::model
