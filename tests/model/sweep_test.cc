#include "model/sweep.h"

#include <gtest/gtest.h>

namespace pdht::model {
namespace {

ScenarioParams Paper() { return ScenarioParams{}; }

TEST(SweepTest, FrequencyLabelRendersPaperAxis) {
  EXPECT_EQ(FrequencyLabel(1.0 / 30), "1/30");
  EXPECT_EQ(FrequencyLabel(1.0 / 7200), "1/7200");
  EXPECT_EQ(FrequencyLabel(0.5), "1/2");
}

TEST(SweepTest, Fig1RowsCoverAllFrequencies) {
  auto rows = SweepFig1(Paper(), ScenarioParams::PaperQueryFrequencies());
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& r : rows) {
    EXPECT_GT(r.index_all, 0.0);
    EXPECT_GT(r.no_index, 0.0);
    EXPECT_GT(r.partial, 0.0);
    EXPECT_LE(r.partial, r.index_all);
    EXPECT_LE(r.partial, r.no_index);
  }
}

TEST(SweepTest, Fig1NoIndexScalesLinearly) {
  auto rows = SweepFig1(Paper(), {1.0 / 30, 1.0 / 60});
  EXPECT_NEAR(rows[0].no_index / rows[1].no_index, 2.0, 1e-9);
}

TEST(SweepTest, Fig2SavingsWithinUnitInterval) {
  auto rows = SweepFig2(Paper(), ScenarioParams::PaperQueryFrequencies());
  for (const auto& r : rows) {
    EXPECT_GT(r.savings_vs_index_all, 0.0);
    EXPECT_LT(r.savings_vs_index_all, 1.0);
    EXPECT_GT(r.savings_vs_no_index, 0.0);
    EXPECT_LT(r.savings_vs_no_index, 1.0);
  }
}

TEST(SweepTest, Fig3IndexSizeMonotone) {
  auto rows = SweepFig3(Paper(), ScenarioParams::PaperQueryFrequencies());
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].index_size_fraction,
              rows[i - 1].index_size_fraction + 1e-12);
    EXPECT_LE(rows[i].p_indxd, rows[i - 1].p_indxd + 1e-12);
  }
  // pIndxd dominates index fraction everywhere (Zipf head effect).
  for (const auto& r : rows) {
    EXPECT_GE(r.p_indxd, r.index_size_fraction);
  }
}

TEST(SweepTest, Fig4SavingsBelowIdealFig2) {
  auto fig2 = SweepFig2(Paper(), ScenarioParams::PaperQueryFrequencies());
  auto fig4 = SweepFig4(Paper(), ScenarioParams::PaperQueryFrequencies());
  ASSERT_EQ(fig2.size(), fig4.size());
  for (size_t i = 0; i < fig2.size(); ++i) {
    EXPECT_LE(fig4[i].savings_vs_index_all,
              fig2[i].savings_vs_index_all + 1e-9);
    EXPECT_LE(fig4[i].savings_vs_no_index,
              fig2[i].savings_vs_no_index + 1e-9);
  }
}

TEST(SweepTest, TtlSensitivityGridComplete) {
  auto rows = SweepTtlSensitivity(Paper(), {1.0 / 300, 1.0 / 600},
                                  {0.5, 1.0, 1.5});
  EXPECT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GT(r.key_ttl, 0.0);
    EXPECT_GT(r.partial, 0.0);
  }
}

TEST(SweepTest, TtlSensitivityIdealScaleIsBest) {
  // scale=1.0 should be within a whisker of the best across tested scales
  // (it is the analytically motivated choice).
  auto rows = SweepTtlSensitivity(Paper(), {1.0 / 600},
                                  {0.25, 0.5, 1.0, 2.0, 4.0});
  double at_one = 0.0;
  double best = 1e300;
  for (const auto& r : rows) {
    if (r.ttl_scale == 1.0) at_one = r.partial;
    best = std::min(best, r.partial);
  }
  EXPECT_LT(at_one, best * 1.3);
}

TEST(SweepTest, TablesHaveMatchingRowCounts) {
  auto fs = ScenarioParams::PaperQueryFrequencies();
  EXPECT_EQ(Fig1Table(SweepFig1(Paper(), fs)).num_rows(), fs.size());
  EXPECT_EQ(Fig2Table(SweepFig2(Paper(), fs)).num_rows(), fs.size());
  EXPECT_EQ(Fig3Table(SweepFig3(Paper(), fs)).num_rows(), fs.size());
  EXPECT_EQ(Fig4Table(SweepFig4(Paper(), fs)).num_rows(), fs.size());
}

TEST(SweepTest, TablesRenderFrequencyLabels) {
  auto fs = ScenarioParams::PaperQueryFrequencies();
  std::string txt = Fig1Table(SweepFig1(Paper(), fs)).ToText();
  EXPECT_NE(txt.find("1/30"), std::string::npos);
  EXPECT_NE(txt.find("1/7200"), std::string::npos);
}

}  // namespace
}  // namespace pdht::model
