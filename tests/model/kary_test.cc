// Footnote-3 generalization: k-ary key spaces.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"

namespace pdht::model {
namespace {

ScenarioParams WithArity(uint32_t k) {
  ScenarioParams p;
  p.key_space_arity = k;
  return p;
}

TEST(KaryTest, BinaryIsTheDefault) {
  EXPECT_EQ(ScenarioParams{}.key_space_arity, 2u);
}

TEST(KaryTest, ArityOneRejected) {
  ScenarioParams p = WithArity(1);
  EXPECT_FALSE(p.Validate().empty());
}

TEST(KaryTest, BinaryMatchesOriginalEquations) {
  CostModel m2(WithArity(2));
  EXPECT_NEAR(m2.CostSearchIndex(20000), 0.5 * std::log2(20000.0), 1e-12);
  EXPECT_NEAR(m2.CostRoutingMaintenance(40000),
              (1.0 / 14.0) * std::log2(20000.0) * 20000.0 / 40000.0,
              1e-9);
}

TEST(KaryTest, LargerAritySpeedsLookups) {
  // log_16(n) = log2(n)/4: quarter the hops.
  CostModel m2(WithArity(2));
  CostModel m16(WithArity(16));
  EXPECT_NEAR(m16.CostSearchIndex(20000),
              m2.CostSearchIndex(20000) / 4.0, 1e-9);
}

TEST(KaryTest, LargerArityRaisesMaintenance) {
  // Table size (k-1)*log_k(n): for k=16 that is 15/4 the binary table.
  CostModel m2(WithArity(2));
  CostModel m16(WithArity(16));
  EXPECT_NEAR(m16.CostRoutingMaintenance(40000),
              m2.CostRoutingMaintenance(40000) * 15.0 / 4.0, 1e-9);
}

TEST(KaryTest, QualitativeResultsSurviveArity) {
  // The paper claims "the qualitative insights and the proposed algorithm
  // will hold" for non-binary spaces (footnote 2/3): partial indexing
  // still beats both baselines across the frequency sweep for k in
  // {2, 4, 16}.
  for (uint32_t k : {2u, 4u, 16u}) {
    CostModel m(WithArity(k));
    for (double f : ScenarioParams::PaperQueryFrequencies()) {
      double partial = m.TotalPartialIdeal(f);
      EXPECT_LT(partial, m.TotalIndexAll(f)) << "k=" << k << " f=" << f;
      EXPECT_LT(partial, m.TotalNoIndex(f)) << "k=" << k << " f=" << f;
    }
  }
}

TEST(KaryTest, FMinShiftsWithArity) {
  // Bigger tables cost more upkeep per key, but lookups save more per
  // query; the net fMin movement depends on the balance -- just assert it
  // stays finite, positive, and the fixed point stays solvable.
  for (uint32_t k : {2u, 3u, 4u, 8u, 16u, 64u}) {
    CostModel m(WithArity(k));
    uint64_t mr = m.SolveMaxRank(1.0 / 300);
    EXPECT_GT(mr, 0u) << "k=" << k;
    double f_min = m.FMin(mr);
    EXPECT_GT(f_min, 0.0) << "k=" << k;
    EXPECT_TRUE(std::isfinite(f_min)) << "k=" << k;
  }
}

TEST(KaryTest, ArityInTableOutput) {
  ScenarioParams p = WithArity(8);
  EXPECT_NE(p.ToTable().find("Key space arity"), std::string::npos);
}

// Sweep: the maintenance/lookup trade-off is monotone in k on both sides.
class AritySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AritySweep, TradeoffMonotone) {
  uint32_t k = GetParam();
  CostModel lo(WithArity(k));
  CostModel hi(WithArity(k * 2));
  EXPECT_LT(hi.CostSearchIndex(20000), lo.CostSearchIndex(20000));
  EXPECT_GT(hi.CostRoutingMaintenance(40000),
            lo.CostRoutingMaintenance(40000));
}

INSTANTIATE_TEST_SUITE_P(Arities, AritySweep,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace pdht::model
