#include "model/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/scenario_params.h"

namespace pdht::model {
namespace {

ScenarioParams Paper() { return ScenarioParams{}; }

TEST(ScenarioParamsTest, DefaultsMatchTable1) {
  ScenarioParams p;
  EXPECT_EQ(p.num_peers, 20000u);
  EXPECT_EQ(p.keys, 40000u);
  EXPECT_EQ(p.stor, 100u);
  EXPECT_EQ(p.repl, 50u);
  EXPECT_DOUBLE_EQ(p.alpha, 1.2);
  EXPECT_DOUBLE_EQ(p.f_qry, 1.0 / 30.0);
  EXPECT_DOUBLE_EQ(p.f_upd, 1.0 / 86400.0);
  EXPECT_NEAR(p.env, 1.0 / 14.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.dup, 1.8);
  EXPECT_DOUBLE_EQ(p.dup2, 1.8);
  EXPECT_TRUE(p.Validate().empty());
}

TEST(ScenarioParamsTest, PaperFrequencies) {
  auto fs = ScenarioParams::PaperQueryFrequencies();
  ASSERT_EQ(fs.size(), 8u);
  EXPECT_DOUBLE_EQ(fs.front(), 1.0 / 30.0);
  EXPECT_DOUBLE_EQ(fs.back(), 1.0 / 7200.0);
  for (size_t i = 1; i < fs.size(); ++i) EXPECT_LT(fs[i], fs[i - 1]);
}

TEST(ScenarioParamsTest, ValidateRejectsBadValues) {
  ScenarioParams p;
  p.num_peers = 0;
  EXPECT_FALSE(p.Validate().empty());
  p = ScenarioParams{};
  p.repl = p.num_peers + 1;
  EXPECT_FALSE(p.Validate().empty());
  p = ScenarioParams{};
  p.dup = 0.5;
  EXPECT_FALSE(p.Validate().empty());
  p = ScenarioParams{};
  p.f_qry = 0.0;
  EXPECT_FALSE(p.Validate().empty());
}

TEST(ScenarioParamsTest, ToTableMentionsAllParams) {
  std::string t = ScenarioParams{}.ToTable();
  for (const char* name : {"numPeers", "keys", "stor", "repl", "alpha",
                           "fQry", "fUpd", "env", "dup"}) {
    EXPECT_NE(t.find(name), std::string::npos) << name;
  }
}

TEST(CostModelTest, CSUnstrEquation6) {
  // cSUnstr = numPeers/repl * dup = 20000/50 * 1.8 = 720 messages.
  CostModel m(Paper());
  EXPECT_NEAR(m.CostSearchUnstructured(), 720.0, 1e-9);
}

TEST(CostModelTest, NumActivePeersScalesWithIndexSize) {
  CostModel m(Paper());
  // Full index: 40000 keys * 50 replicas / 100 per peer = 20000 peers --
  // exactly the whole network, as the scenario intends.
  EXPECT_EQ(m.NumActivePeers(40000), 20000u);
  // Half the keys need half the peers.
  EXPECT_EQ(m.NumActivePeers(20000), 10000u);
  // Rounding up.
  EXPECT_EQ(m.NumActivePeers(1), 1u);
  EXPECT_EQ(m.NumActivePeers(3), 2u);
  // Clamped to the population.
  ScenarioParams p = Paper();
  p.keys = 100000;
  CostModel big(p);
  EXPECT_EQ(big.NumActivePeers(100000), 20000u);
}

TEST(CostModelTest, CSIndxEquation7) {
  // cSIndx = 0.5*log2(20000) ~= 7.14 messages for the full-size DHT.
  CostModel m(Paper());
  EXPECT_NEAR(m.CostSearchIndex(20000), 0.5 * std::log2(20000.0), 1e-12);
  EXPECT_NEAR(m.CostSearchIndex(20000), 7.14, 0.01);
}

TEST(CostModelTest, CRtnEquation8FullIndex) {
  // cRtn = env * log2(nap) * nap / maxRank
  //      = (1/14) * log2(20000) * 20000 / 40000 ~= 0.51 msg/s per key.
  CostModel m(Paper());
  double expected = (1.0 / 14.0) * std::log2(20000.0) * 20000.0 / 40000.0;
  EXPECT_NEAR(m.CostRoutingMaintenance(40000), expected, 1e-9);
  EXPECT_NEAR(m.CostRoutingMaintenance(40000), 0.51, 0.01);
}

TEST(CostModelTest, MaintenanceMatchesMaCa03Observation) {
  // [MaCa03]: ~1 message per peer per second.  Per-peer maintenance =
  // cRtn * maxRank / nap = env * log2(nap) ~= 14.29/14 ~= 1.02.
  CostModel m(Paper());
  double per_peer =
      m.CostRoutingMaintenance(40000) * 40000.0 / 20000.0;
  EXPECT_NEAR(per_peer, 1.0, 0.05);
}

TEST(CostModelTest, CUpdEquation9) {
  // cUpd = (cSIndx + repl*dup2) * fUpd = (7.14 + 90)/86400 ~= 0.0011.
  CostModel m(Paper());
  double expected = (0.5 * std::log2(20000.0) + 50 * 1.8) / 86400.0;
  EXPECT_NEAR(m.CostUpdate(20000), expected, 1e-12);
  EXPECT_NEAR(m.CostUpdate(20000), 0.00112, 1e-4);
}

TEST(CostModelTest, RoutingDominatesUpdateCost) {
  // "In this scenario, the maintenance cost (cRtn) clearly outweighs the
  // update cost (cUpd)" (Section 4).
  CostModel m(Paper());
  EXPECT_GT(m.CostRoutingMaintenance(40000), 100 * m.CostUpdate(20000));
}

TEST(CostModelTest, CIndKeyIsSumEquation10) {
  CostModel m(Paper());
  EXPECT_NEAR(m.CostIndexKey(40000),
              m.CostRoutingMaintenance(40000) + m.CostUpdate(20000),
              1e-12);
}

TEST(CostModelTest, FMinEquation2) {
  CostModel m(Paper());
  double f_min = m.FMin(40000);
  double expected = m.CostIndexKey(40000) /
                    (m.CostSearchUnstructured() - m.CostSearchIndex(20000));
  EXPECT_NEAR(f_min, expected, 1e-12);
  // Order of magnitude: ~0.51/713 ~= 7.2e-4 queries/s.
  EXPECT_NEAR(f_min, 7.2e-4, 1e-4);
}

TEST(CostModelTest, FMinInfiniteWhenIndexNotCheaper) {
  // If the unstructured search is as cheap as the index search, no key is
  // worth indexing.
  ScenarioParams p = Paper();
  p.repl = p.num_peers;  // cSUnstr = dup = 1.8 < cSIndx
  CostModel m(p);
  EXPECT_TRUE(std::isinf(m.FMin(p.keys)));
  EXPECT_EQ(m.SolveMaxRank(p.f_qry), 0u);
}

TEST(CostModelTest, WorthIndexingEquation1) {
  CostModel m(Paper());
  double f_min = m.FMin(40000);
  EXPECT_TRUE(m.WorthIndexing(f_min * 2.0, 40000));
  EXPECT_FALSE(m.WorthIndexing(f_min / 2.0, 40000));
}

TEST(CostModelTest, SolveMaxRankIsSelfConsistentFixedPoint) {
  // The returned maxRank must satisfy probT(maxRank) >= fMin(maxRank) and
  // probT(maxRank+1) < fMin(maxRank+1): the paper's definition.
  CostModel m(Paper());
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    uint64_t mr = m.SolveMaxRank(f);
    ASSERT_GE(mr, 1u);
    double q = f * 20000.0;
    EXPECT_GE(m.zipf().ProbQueriedAtLeastOnce(mr, q), m.FMin(mr))
        << "f=" << f;
    if (mr < 40000) {
      EXPECT_LT(m.zipf().ProbQueriedAtLeastOnce(mr + 1, q),
                m.FMin(mr + 1))
          << "f=" << f;
    }
  }
}

TEST(CostModelTest, MaxRankShrinksWithQueryFrequency) {
  // Fig. 3: the index only stores keys worth indexing, so the index size
  // decreases with lower query frequencies.
  CostModel m(Paper());
  uint64_t prev = 40000;
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    uint64_t mr = m.SolveMaxRank(f);
    EXPECT_LE(mr, prev) << "f=" << f;
    prev = mr;
  }
  // Busiest period indexes a large fraction; calmest a small one.
  EXPECT_GT(m.SolveMaxRank(1.0 / 30), 10000u);
  EXPECT_LT(m.SolveMaxRank(1.0 / 7200), 2000u);
}

TEST(CostModelTest, TotalNoIndexEquation12) {
  CostModel m(Paper());
  // fQry*numPeers*cSUnstr at 1/30: 666.7 * 720 = 480,000 msg/s.
  EXPECT_NEAR(m.TotalNoIndex(1.0 / 30), (20000.0 / 30.0) * 720.0, 1e-6);
}

TEST(CostModelTest, TotalIndexAllEquation11) {
  CostModel m(Paper());
  double c_ind_key = m.CostIndexKey(40000);
  double c_s_indx = m.CostSearchIndex(20000);
  double expected = 40000.0 * c_ind_key + (20000.0 / 30.0) * c_s_indx;
  EXPECT_NEAR(m.TotalIndexAll(1.0 / 30), expected, 1e-6);
  // Fig. 1 ballpark: ~25k msg/s at the busiest load.
  EXPECT_NEAR(m.TotalIndexAll(1.0 / 30), 25200, 500);
}

TEST(CostModelTest, IndexAllIsMaintenanceBoundAtLowLoad) {
  // At 1/7200 the query term is negligible; indexAll stays ~20.5k msg/s.
  CostModel m(Paper());
  double high = m.TotalIndexAll(1.0 / 30);
  double low = m.TotalIndexAll(1.0 / 7200);
  EXPECT_GT(low, 20000.0);
  EXPECT_LT((high - low) / high, 0.25);
}

TEST(CostModelTest, PartialNeverWorseThanEitherBaseline) {
  // Fig. 1/2: ideal partial indexing is cheaper than both baselines at
  // every paper frequency.
  CostModel m(Paper());
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    double partial = m.TotalPartialIdeal(f);
    EXPECT_LT(partial, m.TotalIndexAll(f)) << "f=" << f;
    EXPECT_LT(partial, m.TotalNoIndex(f)) << "f=" << f;
  }
}

TEST(CostModelTest, SavingsShapesMatchFig2) {
  CostModel m(Paper());
  CostBreakdown busy = m.Evaluate(1.0 / 30);
  CostBreakdown calm = m.Evaluate(1.0 / 7200);
  // Savings vs indexAll grow as load falls (index shrinks away).
  EXPECT_LT(busy.savings_vs_index_all, calm.savings_vs_index_all);
  EXPECT_GT(calm.savings_vs_index_all, 0.9);
  // Savings vs noIndex grow as load rises (broadcasts dominate).
  EXPECT_GT(busy.savings_vs_no_index, calm.savings_vs_no_index);
  EXPECT_GT(busy.savings_vs_no_index, 0.9);
  // Both stay positive everywhere (partial always wins).
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    CostBreakdown b = m.Evaluate(f);
    EXPECT_GT(b.savings_vs_index_all, 0.0) << "f=" << f;
    EXPECT_GT(b.savings_vs_no_index, 0.0) << "f=" << f;
  }
}

TEST(CostModelTest, PIndxdShapeMatchesFig3) {
  // "even a small index can answer a high percentage of queries":
  // at the calmest load the index fraction is tiny but pIndxd stays high.
  CostModel m(Paper());
  CostBreakdown calm = m.Evaluate(1.0 / 7200);
  double index_fraction =
      static_cast<double>(calm.max_rank) / 40000.0;
  EXPECT_LT(index_fraction, 0.05);
  EXPECT_GT(calm.p_indxd, 0.6);
  EXPECT_GT(calm.p_indxd, index_fraction * 10);
  // At the busiest load pIndxd approaches 1.
  CostBreakdown busy = m.Evaluate(1.0 / 30);
  EXPECT_GT(busy.p_indxd, 0.95);
}

TEST(CostModelTest, EvaluateBreakdownConsistency) {
  CostModel m(Paper());
  CostBreakdown b = m.Evaluate(1.0 / 300);
  EXPECT_NEAR(b.c_ind_key, b.c_rtn + b.c_upd, 1e-12);
  EXPECT_EQ(b.num_active_peers, m.NumActivePeers(b.max_rank));
  EXPECT_NEAR(b.index_all, m.TotalIndexAll(1.0 / 300), 1e-9);
  EXPECT_NEAR(b.no_index, m.TotalNoIndex(1.0 / 300), 1e-9);
  EXPECT_NEAR(b.partial, m.TotalPartialIdeal(1.0 / 300), 1e-9);
  EXPECT_NEAR(b.savings_vs_index_all, 1.0 - b.partial / b.index_all,
              1e-12);
}

TEST(CostModelTest, EvaluateUsesScenarioFrequencyByDefault) {
  CostModel m(Paper());
  CostBreakdown a = m.Evaluate();
  CostBreakdown b = m.Evaluate(Paper().f_qry);
  EXPECT_EQ(a.max_rank, b.max_rank);
  EXPECT_DOUBLE_EQ(a.partial, b.partial);
}

TEST(CostModelTest, DegenerateSinglePeerIndexSearch) {
  CostModel m(Paper());
  EXPECT_DOUBLE_EQ(m.CostSearchIndex(1), 0.5);
  EXPECT_DOUBLE_EQ(m.CostSearchIndex(0), 0.5);
}

TEST(CostModelTest, ZeroMaxRankCosts) {
  CostModel m(Paper());
  EXPECT_DOUBLE_EQ(m.CostRoutingMaintenance(0), 0.0);
  EXPECT_DOUBLE_EQ(m.CostIndexKey(0), 0.0);
  EXPECT_EQ(m.NumActivePeers(0), 0u);
}

// Parameterized property: over a grid of frequencies, the partial cost is
// monotone non-decreasing in query frequency (more load can never reduce
// total traffic under a fixed optimal policy).
class CostMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotonicity, PartialCostMonotoneInLoad) {
  CostModel m(Paper());
  double base = 1.0 / (30 * (1 << GetParam()));
  double lower = base / 2.0;
  EXPECT_LE(m.TotalPartialIdeal(lower), m.TotalPartialIdeal(base) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, CostMonotonicity,
                         ::testing::Range(0, 8));

// Property: fMin decreases (weakly) with smaller index sizes -- a smaller
// DHT is cheaper to search and maintain per key.
TEST(CostModelTest, FMinMonotoneInIndexSize) {
  CostModel m(Paper());
  double prev = 0.0;
  for (uint64_t mr : {1ull, 10ull, 100ull, 1000ull, 10000ull, 40000ull}) {
    double f = m.FMin(mr);
    EXPECT_GE(f, prev) << "maxRank " << mr;
    prev = f;
  }
}

}  // namespace
}  // namespace pdht::model
