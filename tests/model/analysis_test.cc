#include "model/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"

namespace pdht::model {
namespace {

ScenarioParams Paper() { return ScenarioParams{}; }

TEST(AnalysisTest, CurveNames) {
  EXPECT_STREQ(CostCurveName(CostCurve::kIndexAll), "indexAll");
  EXPECT_STREQ(CostCurveName(CostCurve::kPartialTtl), "partialTtl");
}

TEST(AnalysisTest, EvaluateCurveMatchesModels) {
  ScenarioParams p = Paper();
  CostModel m(p);
  double f = 1.0 / 300;
  EXPECT_NEAR(EvaluateCurve(p, CostCurve::kIndexAll, f),
              m.TotalIndexAll(f), 1e-9);
  EXPECT_NEAR(EvaluateCurve(p, CostCurve::kNoIndex, f),
              m.TotalNoIndex(f), 1e-9);
  EXPECT_NEAR(EvaluateCurve(p, CostCurve::kPartialIdeal, f),
              m.TotalPartialIdeal(f), 1e-9);
  EXPECT_GT(EvaluateCurve(p, CostCurve::kPartialTtl, f), 0.0);
}

TEST(AnalysisTest, IndexAllNoIndexCrossoverInPaperBand) {
  // Fig. 1: the indexAll and noIndex curves cross between 1/1800 and
  // 1/600 (noIndex = 8,000 vs 24,000 around indexAll's ~20.5k plateau).
  double f = FindCrossoverFrequency(Paper(), CostCurve::kIndexAll,
                                    CostCurve::kNoIndex, 1.0 / 7200,
                                    1.0 / 30);
  ASSERT_GT(f, 0.0);
  EXPECT_GT(f, 1.0 / 1800);
  EXPECT_LT(f, 1.0 / 600);
  // At the crossover, the two costs agree.
  double a = EvaluateCurve(Paper(), CostCurve::kIndexAll, f);
  double b = EvaluateCurve(Paper(), CostCurve::kNoIndex, f);
  EXPECT_NEAR(a, b, a * 1e-6);
}

TEST(AnalysisTest, NoCrossoverReturnsZero) {
  // partial ideal is below noIndex across the whole band: no sign change.
  double f = FindCrossoverFrequency(Paper(), CostCurve::kPartialIdeal,
                                    CostCurve::kNoIndex, 1.0 / 7200,
                                    1.0 / 30);
  EXPECT_EQ(f, 0.0);
}

TEST(AnalysisTest, TtlVsIndexAllCrossoverNearHighLoad) {
  // Eq. 17's per-query replica-flood overhead makes the TTL algorithm
  // costlier than indexAll at very high loads (EXPERIMENTS.md note); the
  // crossover lies between 1/300 (TTL wins) and 1/120 (indexAll wins).
  double f = FindCrossoverFrequency(Paper(), CostCurve::kPartialTtl,
                                    CostCurve::kIndexAll, 1.0 / 7200,
                                    1.0 / 30);
  ASSERT_GT(f, 0.0);
  EXPECT_GT(f, 1.0 / 300);
  EXPECT_LT(f, 1.0 / 120);
}

TEST(AnalysisTest, OptimizeReplicationFindsInteriorOrBoundary) {
  ScenarioParams p = Paper();
  p.f_qry = 1.0 / 300;
  Optimum best = OptimizeReplication(p, CostCurve::kPartialIdeal, 5, 200, 5);
  ASSERT_GE(best.repl, 5u);
  ASSERT_LE(best.repl, 200u);
  // The optimum must not be worse than the paper's repl = 50 choice.
  ScenarioParams at50 = p;
  at50.repl = 50;
  double cost50 =
      EvaluateCurve(at50, CostCurve::kPartialIdeal, at50.f_qry);
  EXPECT_LE(best.cost, cost50 + 1e-9);
}

TEST(AnalysisTest, OptimizeRespectsStep) {
  ScenarioParams p = Paper();
  Optimum best = OptimizeReplication(p, CostCurve::kNoIndex, 10, 100, 10);
  EXPECT_EQ(best.repl % 10, 0u);
  // noIndex cost = fQry*numPeers*numPeers/repl*dup: strictly decreasing in
  // repl, so the boundary wins.
  EXPECT_EQ(best.repl, 100u);
}

TEST(AnalysisTest, OptimizeSkipsInvalidRepl) {
  ScenarioParams p = Paper();
  p.num_peers = 50;  // repl cannot exceed num_peers
  Optimum best = OptimizeReplication(p, CostCurve::kNoIndex, 10, 500, 10);
  EXPECT_LE(best.repl, 50u);
  EXPECT_GT(best.repl, 0u);
}

}  // namespace
}  // namespace pdht::model
