// Golden-value regression tests: every equation of the paper evaluated at
// hand-computed reference points.  These pin the model against accidental
// refactoring drift far more tightly than the shape tests.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"
#include "model/selection_model.h"

namespace pdht::model {
namespace {

// Reference scenario A: tiny numbers, everything computable by hand.
//   numPeers = 1000, keys = 100, stor = 10, repl = 10, dup = dup2 = 2,
//   env = 0.1, fUpd = 0.01, alpha = 0 (uniform -- closed forms are exact).
ScenarioParams TinyUniform() {
  ScenarioParams p;
  p.num_peers = 1000;
  p.keys = 100;
  p.stor = 10;
  p.repl = 10;
  p.alpha = 0.0;
  p.f_qry = 0.05;
  p.f_upd = 0.01;
  p.env = 0.1;
  p.dup = 2.0;
  p.dup2 = 2.0;
  return p;
}

TEST(EquationReferenceTest, Eq6CSUnstr) {
  // cSUnstr = numPeers/repl * dup = 1000/10 * 2 = 200.
  CostModel m(TinyUniform());
  EXPECT_DOUBLE_EQ(m.CostSearchUnstructured(), 200.0);
}

TEST(EquationReferenceTest, NumActivePeersExact) {
  // nap(maxRank) = ceil(maxRank*10/10) = maxRank (clamped at 1000).
  CostModel m(TinyUniform());
  EXPECT_EQ(m.NumActivePeers(100), 100u);
  EXPECT_EQ(m.NumActivePeers(37), 37u);
}

TEST(EquationReferenceTest, Eq7CSIndx) {
  // cSIndx(100) = 0.5*log2(100) = 3.321928...
  CostModel m(TinyUniform());
  EXPECT_NEAR(m.CostSearchIndex(100), 0.5 * std::log2(100.0), 1e-12);
  EXPECT_NEAR(m.CostSearchIndex(100), 3.3219, 1e-4);
}

TEST(EquationReferenceTest, Eq8CRtn) {
  // cRtn(100) = 0.1 * log2(100) * 100 / 100 = 0.66439.
  CostModel m(TinyUniform());
  EXPECT_NEAR(m.CostRoutingMaintenance(100),
              0.1 * std::log2(100.0), 1e-12);
}

TEST(EquationReferenceTest, Eq9CUpd) {
  // cUpd(100) = (3.3219 + 10*2) * 0.01 = 0.233219.
  CostModel m(TinyUniform());
  EXPECT_NEAR(m.CostUpdate(100), (0.5 * std::log2(100.0) + 20.0) * 0.01,
              1e-12);
}

TEST(EquationReferenceTest, Eq10CIndKey) {
  CostModel m(TinyUniform());
  EXPECT_NEAR(m.CostIndexKey(100),
              0.1 * std::log2(100.0) +
                  (0.5 * std::log2(100.0) + 20.0) * 0.01,
              1e-12);
}

TEST(EquationReferenceTest, Eq2FMin) {
  // fMin(100) = cIndKey / (200 - 3.3219) = 0.89763/196.678 = 0.0045639...
  CostModel m(TinyUniform());
  double c_ind_key = m.CostIndexKey(100);
  EXPECT_NEAR(m.FMin(100), c_ind_key / (200.0 - 0.5 * std::log2(100.0)),
              1e-12);
}

TEST(EquationReferenceTest, Eq3UniformPmf) {
  // alpha = 0: every key has probability 1/100.
  CostModel m(TinyUniform());
  for (uint64_t r = 1; r <= 100; r += 13) {
    EXPECT_NEAR(m.zipf().Prob(r), 0.01, 1e-12);
  }
}

TEST(EquationReferenceTest, Eq4ProbTUniform) {
  // probT = 1 - (1 - 1/100)^(1000*0.05) = 1 - 0.99^50 = 0.394994...
  CostModel m(TinyUniform());
  double expected = 1.0 - std::pow(0.99, 50.0);
  EXPECT_NEAR(m.zipf().ProbQueriedAtLeastOnce(1, 50.0), expected, 1e-12);
  EXPECT_NEAR(expected, 0.39499, 1e-5);
}

TEST(EquationReferenceTest, UniformMaxRankIsAllOrNothing) {
  // With a uniform distribution every key has identical probT = 0.395,
  // far above fMin(100) = 0.00456: everything is worth indexing.
  CostModel m(TinyUniform());
  EXPECT_EQ(m.SolveMaxRank(0.05), 100u);
  // Crush the query rate by 10,000x: probT ~= 0.005*0.01/... = 5e-5 per
  // round; fMin stays ~0.0046 (index shrinks with maxRank but its log
  // terms keep fMin above 1e-3): nothing clears the bar.
  EXPECT_EQ(m.SolveMaxRank(0.05 / 10000.0), 0u);
}

TEST(EquationReferenceTest, Eq11IndexAll) {
  // indexAll = 100*cIndKey(100) + 50*cSIndx(100).
  CostModel m(TinyUniform());
  double expected =
      100.0 * m.CostIndexKey(100) + 50.0 * m.CostSearchIndex(100);
  EXPECT_NEAR(m.TotalIndexAll(0.05), expected, 1e-9);
  EXPECT_NEAR(expected, 100.0 * 0.8976 + 50.0 * 3.3219, 0.2);
}

TEST(EquationReferenceTest, Eq12NoIndex) {
  // noIndex = 50 * 200 = 10,000 msg/s.
  CostModel m(TinyUniform());
  EXPECT_DOUBLE_EQ(m.TotalNoIndex(0.05), 10000.0);
}

TEST(EquationReferenceTest, Eq13PartialWithFullIndex) {
  // maxRank = keys -> pIndxd = 1: partial == maxRank*cIndKey + 50*cSIndx,
  // i.e. identical to indexAll.
  CostModel m(TinyUniform());
  EXPECT_NEAR(m.TotalPartialIdeal(0.05), m.TotalIndexAll(0.05), 1e-9);
}

TEST(EquationReferenceTest, Eq14Eq15UniformClosedForm) {
  // Uniform keys: pInIndex = 1-(1-probT)^ttl identical for every key, so
  // keysInIndex = 100*pIn and pIndxd = pIn exactly.
  ScenarioParams p = TinyUniform();
  SelectionModel sel(p);
  double ttl = 7.0;
  double prob_t = 1.0 - std::pow(0.99, 50.0);
  double p_in = 1.0 - std::pow(1.0 - prob_t, ttl);
  EXPECT_NEAR(sel.PIndxd(0.05, ttl), p_in, 1e-9);
  EXPECT_NEAR(sel.ExpectedKeysInIndex(0.05, ttl), 100.0 * p_in, 1e-7);
}

TEST(EquationReferenceTest, Eq16Eq17Composition) {
  ScenarioParams p = TinyUniform();
  SelectionModel sel(p);
  SelectionBreakdown b = sel.Evaluate(0.05);
  CostModel cost(p);
  // cSIndx2 = cSIndx(nap) + repl*dup2 with nap sized by keysInIndex.
  double c_s_indx = cost.CostSearchIndex(b.num_active_peers);
  EXPECT_NEAR(b.c_s_indx2, c_s_indx + 20.0, 1e-12);
  double queries = 50.0;
  double expected = b.keys_in_index * b.c_rtn +
                    b.p_indxd * queries * b.c_s_indx2 +
                    (1.0 - b.p_indxd) * queries *
                        (2.0 * b.c_s_indx2 + 200.0);
  EXPECT_NEAR(b.partial, expected, 1e-9);
}

// Reference scenario B: the paper's own Table 1 numbers as quoted in its
// prose (already covered piecewise in cost_model_test; here as one
// composite snapshot to catch cross-equation drift).
TEST(EquationReferenceTest, PaperScenarioSnapshot) {
  CostModel m(ScenarioParams{});
  CostBreakdown b = m.Evaluate(1.0 / 30);
  EXPECT_NEAR(b.c_s_unstr, 720.0, 1e-9);
  EXPECT_NEAR(b.index_all, 25218.6, 1.0);
  EXPECT_NEAR(b.no_index, 480000.0, 1.0);
  EXPECT_NEAR(b.partial, 22392.5, 1.0);
  EXPECT_EQ(b.max_rank, 25604u);
  EXPECT_NEAR(b.p_indxd, 0.9888, 1e-3);
}

}  // namespace
}  // namespace pdht::model
