#include "model/selection_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdht::model {
namespace {

ScenarioParams Paper() { return ScenarioParams{}; }

TEST(SelectionModelTest, IdealKeyTtlIsInverseFMin) {
  SelectionModel sel(Paper());
  CostModel cost(Paper());
  double f = 1.0 / 300;
  uint64_t mr = cost.SolveMaxRank(f);
  EXPECT_NEAR(sel.IdealKeyTtl(f), 1.0 / cost.FMin(mr), 1e-9);
}

TEST(SelectionModelTest, KeyTtlIsHoursNotSeconds) {
  // fMin ~ 7e-4 -> keyTtl ~ 1400 rounds at the busiest load: keys must
  // survive long enough between queries.
  SelectionModel sel(Paper());
  double ttl = sel.IdealKeyTtl(1.0 / 30);
  EXPECT_GT(ttl, 500.0);
  EXPECT_LT(ttl, 10000.0);
}

TEST(SelectionModelTest, PIndxdEquation14Bounds) {
  SelectionModel sel(Paper());
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    double ttl = sel.IdealKeyTtl(f);
    double p = sel.PIndxd(f, ttl);
    EXPECT_GT(p, 0.0) << "f=" << f;
    EXPECT_LE(p, 1.0) << "f=" << f;
  }
}

TEST(SelectionModelTest, PIndxdIncreasesWithTtl) {
  // A longer TTL keeps more keys resident, so more queries hit the index.
  SelectionModel sel(Paper());
  double f = 1.0 / 300;
  double ttl = sel.IdealKeyTtl(f);
  EXPECT_LT(sel.PIndxd(f, ttl * 0.5), sel.PIndxd(f, ttl));
  EXPECT_LT(sel.PIndxd(f, ttl), sel.PIndxd(f, ttl * 2.0));
}

TEST(SelectionModelTest, KeysInIndexEquation15Bounds) {
  SelectionModel sel(Paper());
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    double ttl = sel.IdealKeyTtl(f);
    double k = sel.ExpectedKeysInIndex(f, ttl);
    EXPECT_GT(k, 0.0) << "f=" << f;
    EXPECT_LE(k, 40000.0) << "f=" << f;
  }
}

TEST(SelectionModelTest, KeysInIndexGrowsWithLoad) {
  SelectionModel sel(Paper());
  double busy =
      sel.ExpectedKeysInIndex(1.0 / 30, sel.IdealKeyTtl(1.0 / 30));
  double calm =
      sel.ExpectedKeysInIndex(1.0 / 7200, sel.IdealKeyTtl(1.0 / 7200));
  EXPECT_GT(busy, calm);
}

TEST(SelectionModelTest, TtlAlgorithmCostsMoreThanIdealPartial) {
  // Section 5.1 lists four reasons the realized algorithm exceeds the
  // ideal cost; verify partial_selection >= partial_ideal everywhere.
  SelectionModel sel(Paper());
  CostModel cost(Paper());
  for (double f : ScenarioParams::PaperQueryFrequencies()) {
    EXPECT_GE(sel.TotalPartialSelection(f), cost.TotalPartialIdeal(f))
        << "f=" << f;
  }
}

TEST(SelectionModelTest, StillSavesAtModerateLoads) {
  // Fig. 4: "partial indexing still realizes substantial savings, in
  // particular for average query frequencies."
  SelectionModel sel(Paper());
  for (double f : {1.0 / 300, 1.0 / 600, 1.0 / 1800}) {
    SelectionBreakdown b = sel.Evaluate(f);
    EXPECT_GT(b.savings_vs_index_all, 0.2) << "f=" << f;
    EXPECT_GT(b.savings_vs_no_index, 0.2) << "f=" << f;
  }
}

TEST(SelectionModelTest, SavingsVsNoIndexShrinkAtHighestLoad) {
  // Fig. 4: savings vs noIndex are smallest (can even vanish) at the very
  // highest query frequency because every query pays cSIndx2 overhead.
  SelectionModel sel(Paper());
  SelectionBreakdown busy = sel.Evaluate(1.0 / 30);
  SelectionBreakdown mid = sel.Evaluate(1.0 / 600);
  EXPECT_LT(busy.savings_vs_no_index, mid.savings_vs_no_index + 0.3);
}

TEST(SelectionModelTest, CSIndx2Equation16) {
  SelectionModel sel(Paper());
  SelectionBreakdown b = sel.Evaluate(1.0 / 300);
  CostModel cost(Paper());
  double c_s_indx = cost.CostSearchIndex(b.num_active_peers);
  EXPECT_NEAR(b.c_s_indx2, c_s_indx + 50 * 1.8, 1e-9);
  EXPECT_GT(b.c_s_indx2, 90.0);  // dominated by the replica flood
}

TEST(SelectionModelTest, Equation17Composition) {
  // Recompute Eq. 17 from the breakdown's pieces and compare.
  ScenarioParams p = Paper();
  SelectionModel sel(p);
  double f = 1.0 / 600;
  SelectionBreakdown b = sel.Evaluate(f);
  CostModel cost(p);
  double queries = f * static_cast<double>(p.num_peers);
  double c_s_unstr = cost.CostSearchUnstructured();
  double expected = b.keys_in_index * b.c_rtn +
                    b.p_indxd * queries * b.c_s_indx2 +
                    (1.0 - b.p_indxd) * queries *
                        (b.c_s_indx2 + c_s_unstr + b.c_s_indx2);
  EXPECT_NEAR(b.partial, expected, 1e-9);
}

TEST(SelectionModelTest, TtlEstimationErrorDegradesGracefully) {
  // Section 5.1.1: "an estimation error of +-50% of the ideal keyTtl
  // decreases the savings only slightly."
  SelectionModel sel(Paper());
  for (double f : {1.0 / 120, 1.0 / 600, 1.0 / 1800}) {
    double ideal = sel.Evaluate(f, 1.0).partial;
    double low = sel.Evaluate(f, 0.5).partial;
    double high = sel.Evaluate(f, 1.5).partial;
    // Mis-estimated TTLs cost at most ~35% extra at these loads.
    EXPECT_LT(low, ideal * 1.35) << "f=" << f;
    EXPECT_LT(high, ideal * 1.35) << "f=" << f;
  }
}

TEST(SelectionModelTest, ExplicitTtlOverloadConsistent) {
  SelectionModel sel(Paper());
  double f = 1.0 / 300;
  double ttl = sel.IdealKeyTtl(f);
  EXPECT_NEAR(sel.TotalPartialSelection(f),
              sel.TotalPartialSelection(f, ttl), 1e-6);
}

TEST(SelectionModelTest, BaselinesMatchCostModel) {
  SelectionModel sel(Paper());
  CostModel cost(Paper());
  double f = 1.0 / 1800;
  SelectionBreakdown b = sel.Evaluate(f);
  EXPECT_NEAR(b.index_all, cost.TotalIndexAll(f), 1e-9);
  EXPECT_NEAR(b.no_index, cost.TotalNoIndex(f), 1e-9);
}

// Parameterized sweep: the TTL-scale study of Section 5.1.1 across the
// paper's frequency grid -- savings remain positive vs indexAll for all
// scales in [0.5, 2].
class TtlScaleSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TtlScaleSweep, SavingsRemainPositiveVsIndexAll) {
  auto [f, scale] = GetParam();
  SelectionModel sel(Paper());
  SelectionBreakdown b = sel.Evaluate(f, scale);
  EXPECT_GT(b.savings_vs_index_all, 0.0)
      << "f=" << f << " scale=" << scale;
}

// Note: at the very highest query frequencies (1/30 .. 1/120) Eq. 17's
// per-query cSIndx2 overhead can make the TTL algorithm costlier than
// indexAll -- the paper concedes savings hold "except for very high query
// frequencies" -- so the positivity sweep covers the average-to-low band.
INSTANTIATE_TEST_SUITE_P(
    Grid, TtlScaleSweep,
    ::testing::Combine(::testing::Values(1.0 / 300, 1.0 / 600, 1.0 / 3600),
                       ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0)));

}  // namespace
}  // namespace pdht::model
