#include "core/pdht_system.h"

#include <gtest/gtest.h>

namespace pdht::core {
namespace {

// A scaled-down scenario (same structure as Table 1, ~50x smaller) so the
// whole-system tests run in milliseconds.  cSUnstr = 400/10*1.8 = 72,
// full-index numActivePeers = 800*10/20 = 400.
model::ScenarioParams Scaled() {
  model::ScenarioParams p;
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  p.alpha = 1.2;
  p.f_qry = 1.0 / 5.0;
  p.f_upd = 1.0 / 3600.0;
  p.env = 1.0 / 14.0;
  p.dup = 1.8;
  p.dup2 = 1.8;
  return p;
}

SystemConfig BaseConfig(Strategy s) {
  SystemConfig c;
  c.params = Scaled();
  c.strategy = s;
  c.churn.enabled = false;  // churn-specific tests enable it explicitly
  c.seed = 1234;
  return c;
}

TEST(SystemConfigTest, ValidatesScaledScenario) {
  EXPECT_EQ(BaseConfig(Strategy::kPartialTtl).Validate(), "");
}

TEST(SystemConfigTest, RejectsBadTtlScale) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.ttl_scale = 0.0;
  EXPECT_FALSE(c.Validate().empty());
}

TEST(PdhtSystemTest, DerivesKeyTtlFromModel) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  EXPECT_GT(sys.EffectiveKeyTtl(), 1.0);
  // ttl_scale rescales it.
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.ttl_scale = 2.0;
  PdhtSystem sys2(c);
  EXPECT_NEAR(sys2.EffectiveKeyTtl(), 2.0 * sys.EffectiveKeyTtl(), 1e-6);
}

TEST(PdhtSystemTest, ExplicitKeyTtlWins) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.key_ttl = 77.0;
  PdhtSystem sys(c);
  EXPECT_DOUBLE_EQ(sys.EffectiveKeyTtl(), 77.0);
}

TEST(PdhtSystemTest, MembershipSizedByStrategy) {
  PdhtSystem all(BaseConfig(Strategy::kIndexAll));
  // Full index: 800 keys * 10 repl / 20 stor = 400 = whole population.
  EXPECT_EQ(all.DhtMemberCount(), 400u);

  PdhtSystem none(BaseConfig(Strategy::kNoIndex));
  EXPECT_EQ(none.DhtMemberCount(), 0u);

  PdhtSystem ideal(BaseConfig(Strategy::kPartialIdeal));
  EXPECT_GT(ideal.DhtMemberCount(), 0u);
  EXPECT_LE(ideal.DhtMemberCount(), 400u);
}

TEST(PdhtSystemTest, NoIndexStrategyUsesOnlyUnstructuredTraffic) {
  PdhtSystem sys(BaseConfig(Strategy::kNoIndex));
  sys.RunRounds(5);
  auto& counters = sys.engine().counters();
  EXPECT_GT(counters.SumWithPrefix("msg.unstructured."), 0u);
  EXPECT_EQ(counters.SumWithPrefix("msg.dht."), 0u);
  EXPECT_EQ(counters.SumWithPrefix("msg.maint."), 0u);
}

TEST(PdhtSystemTest, IndexAllAnswersEverythingFromIndex) {
  PdhtSystem sys(BaseConfig(Strategy::kIndexAll));
  sys.RunRounds(5);
  EXPECT_GT(sys.TailHitRate(5), 0.95);
  // The full key universe is resident (a handful of keys can lose replica
  // slots to per-peer capacity displacement; residency must stay ~ full).
  EXPECT_GT(sys.IndexedKeyCount(), 790u);
  // Broadcast fallbacks are at most a trickle.
  auto& counters = sys.engine().counters();
  EXPECT_LT(counters.SumWithPrefix("msg.unstructured."),
            counters.SumWithPrefix("msg.dht.") / 5 + 1);
}

TEST(PdhtSystemTest, IndexAllMaintenanceTrafficFlows) {
  PdhtSystem sys(BaseConfig(Strategy::kIndexAll));
  sys.RunRounds(10);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.maint."), 0u);
}

TEST(PdhtSystemTest, PartialIdealSplitsTraffic) {
  // At f = 1/5 every key clears fMin at this scale, so drop the load to
  // get a genuine partial index.
  SystemConfig c = BaseConfig(Strategy::kPartialIdeal);
  c.params.f_qry = 1.0 / 20.0;
  PdhtSystem sys(c);
  ASSERT_GT(sys.OracleMaxRank(), 0u);
  ASSERT_LT(sys.OracleMaxRank(), 800u);
  sys.RunRounds(10);
  auto& counters = sys.engine().counters();
  // Popular keys hit the DHT; unpopular ones broadcast.
  EXPECT_GT(counters.SumWithPrefix("msg.dht."), 0u);
  EXPECT_GT(counters.SumWithPrefix("msg.unstructured."), 0u);
}

TEST(PdhtSystemTest, PartialTtlStartsEmptyAndFills) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  EXPECT_EQ(sys.IndexedKeyCount(), 0u);
  sys.RunRounds(20);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
}

TEST(PdhtSystemTest, PartialTtlHitRateRises) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(60);
  const auto& hits = sys.engine().Series(PdhtSystem::kSeriesHitRate);
  double early = hits.MeanOver(0, 5);
  double late = hits.TailMean(10);
  EXPECT_GT(late, early + 0.2);
  EXPECT_GT(late, 0.5);  // Zipf head keys become resident quickly
}

TEST(PdhtSystemTest, TtlQueryMissInsertsThenHits) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  uint64_t key = 42;
  QueryOutcome first = sys.ExecuteQuery(key);
  EXPECT_TRUE(first.found);
  EXPECT_FALSE(first.answered_from_index);
  EXPECT_TRUE(first.used_unstructured);
  QueryOutcome second = sys.ExecuteQuery(key);
  EXPECT_TRUE(second.found);
  EXPECT_TRUE(second.answered_from_index);
  EXPECT_FALSE(second.used_unstructured);
  EXPECT_LT(second.index_messages + second.unstructured_messages,
            first.index_messages + first.unstructured_messages);
}

TEST(PdhtSystemTest, TtlEvictionPurgesIdleKeys) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.key_ttl = 3.0;  // very short TTL
  PdhtSystem sys(c);
  sys.ExecuteQuery(7);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  // Run idle rounds (queries happen, but key 7 is unlikely to recur; use
  // rounds > ttl so eviction must fire for untouched keys).
  sys.RunRounds(10);
  // After 10 rounds with ttl 3, key 7's replicas have expired unless the
  // workload re-queried it; residency must be bounded by recent traffic.
  const auto& size = sys.engine().Series(PdhtSystem::kSeriesIndexSize);
  EXPECT_LT(size.TailMean(1), 800.0);
}

TEST(PdhtSystemTest, NoIndexQueriesNeverUseIndex) {
  PdhtSystem sys(BaseConfig(Strategy::kNoIndex));
  QueryOutcome out = sys.ExecuteQuery(5);
  EXPECT_TRUE(out.found);
  EXPECT_FALSE(out.answered_from_index);
  EXPECT_TRUE(out.used_unstructured);
  EXPECT_EQ(out.index_messages, 0u);
}

TEST(PdhtSystemTest, SeriesAreRecordedEveryRound) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(7);
  for (const char* name :
       {PdhtSystem::kSeriesMsgTotal, PdhtSystem::kSeriesMsgDht,
        PdhtSystem::kSeriesMsgUnstructured, PdhtSystem::kSeriesMsgReplica,
        PdhtSystem::kSeriesMsgMaint, PdhtSystem::kSeriesHitRate,
        PdhtSystem::kSeriesIndexSize,
        PdhtSystem::kSeriesOnlineFraction}) {
    ASSERT_TRUE(sys.engine().HasSeries(name)) << name;
    EXPECT_EQ(sys.engine().Series(name).size(), 7u) << name;
  }
}

TEST(PdhtSystemTest, DeterministicAcrossRuns) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  PdhtSystem a(c);
  PdhtSystem b(c);
  a.RunRounds(10);
  b.RunRounds(10);
  EXPECT_DOUBLE_EQ(a.TailMessageRate(10), b.TailMessageRate(10));
  EXPECT_EQ(a.IndexedKeyCount(), b.IndexedKeyCount());
}

TEST(PdhtSystemTest, DifferentSeedsDiffer) {
  SystemConfig c1 = BaseConfig(Strategy::kPartialTtl);
  SystemConfig c2 = BaseConfig(Strategy::kPartialTtl);
  c2.seed = 999;
  PdhtSystem a(c1);
  PdhtSystem b(c2);
  a.RunRounds(5);
  b.RunRounds(5);
  EXPECT_NE(a.TailMessageRate(5), b.TailMessageRate(5));
}

TEST(PdhtSystemTest, ChurnKeepsSystemFunctional) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.churn.enabled = true;
  c.churn.mean_online_s = 120;
  c.churn.mean_offline_s = 60;
  PdhtSystem sys(c);
  sys.RunRounds(40);
  // Online fraction hovers near the stationary 2/3.
  double online = sys.engine()
                      .Series(PdhtSystem::kSeriesOnlineFraction)
                      .TailMean(10);
  EXPECT_NEAR(online, 2.0 / 3.0, 0.1);
  // Queries still succeed and populate the index.
  EXPECT_GT(sys.TailHitRate(10), 0.2);
  // Rejoin pulls happened.
  EXPECT_GT(sys.engine().counters().Value("msg.replica.pull"), 0u);
}

TEST(PdhtSystemTest, PGridBackendWorks) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.backend = DhtBackend::kPGrid;
  PdhtSystem sys(c);
  sys.RunRounds(30);
  EXPECT_GT(sys.TailHitRate(10), 0.3);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.dht."), 0u);
}

TEST(PdhtSystemTest, PopularityShiftDropsThenRecoversHitRate) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(50);
  double before = sys.TailHitRate(10);
  sys.ShiftPopularity();
  sys.RunRounds(3);
  const auto& hits = sys.engine().Series(PdhtSystem::kSeriesHitRate);
  double just_after = hits.MeanOver(50, 53);
  sys.RunRounds(60);
  double recovered = sys.TailHitRate(10);
  EXPECT_LT(just_after, before - 0.1);       // the shift hurt
  EXPECT_GT(recovered, just_after + 0.1);    // the index adapted
}

TEST(PdhtSystemTest, TimeoutCostingPricesFailedProbesWithoutTouchingCounts) {
  SystemConfig base = BaseConfig(Strategy::kPartialTtl);
  base.delivery_model = net::DeliveryModelKind::kLatency;
  base.proximity_routing = false;  // blind tables: count-stable baseline
  base.route_proximity = false;
  base.churn.enabled = true;  // failed probes need stale entries
  base.churn.mean_online_s = 600.0;
  base.churn.mean_offline_s = 120.0;

  SystemConfig timed = base;
  timed.timeout_costing = true;

  PdhtSystem plain(base);
  PdhtSystem priced(timed);
  plain.RunRounds(30);
  priced.RunRounds(30);

  // Timeout costing changed no routing decision: every message series is
  // bit-identical; only the latency axis moved.
  for (const char* series :
       {PdhtSystem::kSeriesMsgTotal, PdhtSystem::kSeriesMsgDht,
        PdhtSystem::kSeriesHitRate}) {
    const auto& a = plain.engine().Series(series);
    const auto& b = priced.engine().Series(series);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.at(i), b.at(i)) << series << " round " << i;
    }
  }
  EXPECT_GT(priced.network().TimeoutCount(), 0u);
  EXPECT_EQ(plain.network().TimeoutCount(), 0u);
  EXPECT_GT(priced.lookup_rtt_ms().mean(), plain.lookup_rtt_ms().mean());

  // The new per-round series and snapshot metrics are wired through.
  EXPECT_TRUE(priced.engine().HasSeries(PdhtSystem::kSeriesTimeoutRate));
  EXPECT_FALSE(plain.engine().HasSeries(PdhtSystem::kSeriesTimeoutRate));
  RunSnapshot snap = priced.Snapshot(10);
  EXPECT_GT(snap.latency.at(PdhtSystem::kMetricLookupTimeouts), 0.0);
  EXPECT_GT(snap.latency.at(PdhtSystem::kMetricLookupHopsMean), 0.0);
  EXPECT_GE(snap.latency.at(PdhtSystem::kMetricLookupHopsP95),
            snap.latency.at(PdhtSystem::kMetricLookupHopsMean));
}

TEST(PdhtSystemTest, RoutePnsLowersLookupRttOverTableOnlyPns) {
  SystemConfig table_only = BaseConfig(Strategy::kPartialTtl);
  table_only.delivery_model = net::DeliveryModelKind::kLatency;
  table_only.backend = DhtBackend::kKademlia;
  table_only.proximity_routing = true;
  table_only.route_proximity = false;

  SystemConfig with_route = table_only;
  with_route.route_proximity = true;

  PdhtSystem a(table_only);
  PdhtSystem b(with_route);
  a.RunRounds(40);
  b.RunRounds(40);
  ASSERT_GT(a.lookup_rtt_ms().count(), 100u);
  ASSERT_GT(b.lookup_rtt_ms().count(), 100u);
  EXPECT_LT(b.lookup_rtt_ms().mean(), a.lookup_rtt_ms().mean());
}

TEST(PdhtSystemTest, NodeAccessorsReportQueryStats) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(10);
  uint64_t total_queries = 0;
  for (uint32_t i = 0; i < 400; ++i) {
    total_queries += sys.NodeOf(i).queries_sent();
  }
  EXPECT_GT(total_queries, 0u);
}

}  // namespace
}  // namespace pdht::core
