#include "core/pdht_system.h"

#include <gtest/gtest.h>

namespace pdht::core {
namespace {

// A scaled-down scenario (same structure as Table 1, ~50x smaller) so the
// whole-system tests run in milliseconds.  cSUnstr = 400/10*1.8 = 72,
// full-index numActivePeers = 800*10/20 = 400.
model::ScenarioParams Scaled() {
  model::ScenarioParams p;
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  p.alpha = 1.2;
  p.f_qry = 1.0 / 5.0;
  p.f_upd = 1.0 / 3600.0;
  p.env = 1.0 / 14.0;
  p.dup = 1.8;
  p.dup2 = 1.8;
  return p;
}

SystemConfig BaseConfig(Strategy s) {
  SystemConfig c;
  c.params = Scaled();
  c.strategy = s;
  c.churn.enabled = false;  // churn-specific tests enable it explicitly
  c.seed = 1234;
  return c;
}

TEST(SystemConfigTest, ValidatesScaledScenario) {
  EXPECT_EQ(BaseConfig(Strategy::kPartialTtl).Validate(), "");
}

TEST(SystemConfigTest, RejectsBadTtlScale) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.ttl_scale = 0.0;
  EXPECT_FALSE(c.Validate().empty());
}

TEST(PdhtSystemTest, DerivesKeyTtlFromModel) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  EXPECT_GT(sys.EffectiveKeyTtl(), 1.0);
  // ttl_scale rescales it.
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.ttl_scale = 2.0;
  PdhtSystem sys2(c);
  EXPECT_NEAR(sys2.EffectiveKeyTtl(), 2.0 * sys.EffectiveKeyTtl(), 1e-6);
}

TEST(PdhtSystemTest, ExplicitKeyTtlWins) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.key_ttl = 77.0;
  PdhtSystem sys(c);
  EXPECT_DOUBLE_EQ(sys.EffectiveKeyTtl(), 77.0);
}

TEST(PdhtSystemTest, MembershipSizedByStrategy) {
  PdhtSystem all(BaseConfig(Strategy::kIndexAll));
  // Full index: 800 keys * 10 repl / 20 stor = 400 = whole population.
  EXPECT_EQ(all.DhtMemberCount(), 400u);

  PdhtSystem none(BaseConfig(Strategy::kNoIndex));
  EXPECT_EQ(none.DhtMemberCount(), 0u);

  PdhtSystem ideal(BaseConfig(Strategy::kPartialIdeal));
  EXPECT_GT(ideal.DhtMemberCount(), 0u);
  EXPECT_LE(ideal.DhtMemberCount(), 400u);
}

TEST(PdhtSystemTest, NoIndexStrategyUsesOnlyUnstructuredTraffic) {
  PdhtSystem sys(BaseConfig(Strategy::kNoIndex));
  sys.RunRounds(5);
  auto& counters = sys.engine().counters();
  EXPECT_GT(counters.SumWithPrefix("msg.unstructured."), 0u);
  EXPECT_EQ(counters.SumWithPrefix("msg.dht."), 0u);
  EXPECT_EQ(counters.SumWithPrefix("msg.maint."), 0u);
}

TEST(PdhtSystemTest, IndexAllAnswersEverythingFromIndex) {
  PdhtSystem sys(BaseConfig(Strategy::kIndexAll));
  sys.RunRounds(5);
  EXPECT_GT(sys.TailHitRate(5), 0.95);
  // The full key universe is resident (a handful of keys can lose replica
  // slots to per-peer capacity displacement; residency must stay ~ full).
  EXPECT_GT(sys.IndexedKeyCount(), 790u);
  // Broadcast fallbacks are at most a trickle.
  auto& counters = sys.engine().counters();
  EXPECT_LT(counters.SumWithPrefix("msg.unstructured."),
            counters.SumWithPrefix("msg.dht.") / 5 + 1);
}

TEST(PdhtSystemTest, IndexAllMaintenanceTrafficFlows) {
  PdhtSystem sys(BaseConfig(Strategy::kIndexAll));
  sys.RunRounds(10);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.maint."), 0u);
}

TEST(PdhtSystemTest, PartialIdealSplitsTraffic) {
  // At f = 1/5 every key clears fMin at this scale, so drop the load to
  // get a genuine partial index.
  SystemConfig c = BaseConfig(Strategy::kPartialIdeal);
  c.params.f_qry = 1.0 / 20.0;
  PdhtSystem sys(c);
  ASSERT_GT(sys.OracleMaxRank(), 0u);
  ASSERT_LT(sys.OracleMaxRank(), 800u);
  sys.RunRounds(10);
  auto& counters = sys.engine().counters();
  // Popular keys hit the DHT; unpopular ones broadcast.
  EXPECT_GT(counters.SumWithPrefix("msg.dht."), 0u);
  EXPECT_GT(counters.SumWithPrefix("msg.unstructured."), 0u);
}

TEST(PdhtSystemTest, PartialTtlStartsEmptyAndFills) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  EXPECT_EQ(sys.IndexedKeyCount(), 0u);
  sys.RunRounds(20);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
}

TEST(PdhtSystemTest, PartialTtlHitRateRises) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(60);
  const auto& hits = sys.engine().Series(PdhtSystem::kSeriesHitRate);
  double early = hits.MeanOver(0, 5);
  double late = hits.TailMean(10);
  EXPECT_GT(late, early + 0.2);
  EXPECT_GT(late, 0.5);  // Zipf head keys become resident quickly
}

TEST(PdhtSystemTest, TtlQueryMissInsertsThenHits) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  uint64_t key = 42;
  QueryOutcome first = sys.ExecuteQuery(key);
  EXPECT_TRUE(first.found);
  EXPECT_FALSE(first.answered_from_index);
  EXPECT_TRUE(first.used_unstructured);
  QueryOutcome second = sys.ExecuteQuery(key);
  EXPECT_TRUE(second.found);
  EXPECT_TRUE(second.answered_from_index);
  EXPECT_FALSE(second.used_unstructured);
  EXPECT_LT(second.index_messages + second.unstructured_messages,
            first.index_messages + first.unstructured_messages);
}

TEST(PdhtSystemTest, TtlEvictionPurgesIdleKeys) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.key_ttl = 3.0;  // very short TTL
  PdhtSystem sys(c);
  sys.ExecuteQuery(7);
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  // Run idle rounds (queries happen, but key 7 is unlikely to recur; use
  // rounds > ttl so eviction must fire for untouched keys).
  sys.RunRounds(10);
  // After 10 rounds with ttl 3, key 7's replicas have expired unless the
  // workload re-queried it; residency must be bounded by recent traffic.
  const auto& size = sys.engine().Series(PdhtSystem::kSeriesIndexSize);
  EXPECT_LT(size.TailMean(1), 800.0);
}

TEST(PdhtSystemTest, NoIndexQueriesNeverUseIndex) {
  PdhtSystem sys(BaseConfig(Strategy::kNoIndex));
  QueryOutcome out = sys.ExecuteQuery(5);
  EXPECT_TRUE(out.found);
  EXPECT_FALSE(out.answered_from_index);
  EXPECT_TRUE(out.used_unstructured);
  EXPECT_EQ(out.index_messages, 0u);
}

TEST(PdhtSystemTest, SeriesAreRecordedEveryRound) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(7);
  for (const char* name :
       {PdhtSystem::kSeriesMsgTotal, PdhtSystem::kSeriesMsgDht,
        PdhtSystem::kSeriesMsgUnstructured, PdhtSystem::kSeriesMsgReplica,
        PdhtSystem::kSeriesMsgMaint, PdhtSystem::kSeriesHitRate,
        PdhtSystem::kSeriesIndexSize,
        PdhtSystem::kSeriesOnlineFraction}) {
    ASSERT_TRUE(sys.engine().HasSeries(name)) << name;
    EXPECT_EQ(sys.engine().Series(name).size(), 7u) << name;
  }
}

TEST(PdhtSystemTest, DeterministicAcrossRuns) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  PdhtSystem a(c);
  PdhtSystem b(c);
  a.RunRounds(10);
  b.RunRounds(10);
  EXPECT_DOUBLE_EQ(a.TailMessageRate(10), b.TailMessageRate(10));
  EXPECT_EQ(a.IndexedKeyCount(), b.IndexedKeyCount());
}

TEST(PdhtSystemTest, DifferentSeedsDiffer) {
  SystemConfig c1 = BaseConfig(Strategy::kPartialTtl);
  SystemConfig c2 = BaseConfig(Strategy::kPartialTtl);
  c2.seed = 999;
  PdhtSystem a(c1);
  PdhtSystem b(c2);
  a.RunRounds(5);
  b.RunRounds(5);
  EXPECT_NE(a.TailMessageRate(5), b.TailMessageRate(5));
}

TEST(PdhtSystemTest, ChurnKeepsSystemFunctional) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.churn.enabled = true;
  c.churn.mean_online_s = 120;
  c.churn.mean_offline_s = 60;
  PdhtSystem sys(c);
  sys.RunRounds(40);
  // Online fraction hovers near the stationary 2/3.
  double online = sys.engine()
                      .Series(PdhtSystem::kSeriesOnlineFraction)
                      .TailMean(10);
  EXPECT_NEAR(online, 2.0 / 3.0, 0.1);
  // Queries still succeed and populate the index.
  EXPECT_GT(sys.TailHitRate(10), 0.2);
  // Rejoin pulls happened.
  EXPECT_GT(sys.engine().counters().Value("msg.replica.pull"), 0u);
}

TEST(PdhtSystemTest, PGridBackendWorks) {
  SystemConfig c = BaseConfig(Strategy::kPartialTtl);
  c.backend = DhtBackend::kPGrid;
  PdhtSystem sys(c);
  sys.RunRounds(30);
  EXPECT_GT(sys.TailHitRate(10), 0.3);
  EXPECT_GT(sys.engine().counters().SumWithPrefix("msg.dht."), 0u);
}

TEST(PdhtSystemTest, PopularityShiftDropsThenRecoversHitRate) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(50);
  double before = sys.TailHitRate(10);
  sys.ShiftPopularity();
  sys.RunRounds(3);
  const auto& hits = sys.engine().Series(PdhtSystem::kSeriesHitRate);
  double just_after = hits.MeanOver(50, 53);
  sys.RunRounds(60);
  double recovered = sys.TailHitRate(10);
  EXPECT_LT(just_after, before - 0.1);       // the shift hurt
  EXPECT_GT(recovered, just_after + 0.1);    // the index adapted
}

TEST(PdhtSystemTest, NodeAccessorsReportQueryStats) {
  PdhtSystem sys(BaseConfig(Strategy::kPartialTtl));
  sys.RunRounds(10);
  uint64_t total_queries = 0;
  for (uint32_t i = 0; i < 400; ++i) {
    total_queries += sys.NodeOf(i).queries_sent();
  }
  EXPECT_GT(total_queries, 0u);
}

}  // namespace
}  // namespace pdht::core
