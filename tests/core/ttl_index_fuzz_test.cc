// Randomized differential test: TtlIndex against a trivially correct
// reference model (a plain map scanned linearly).  Any divergence in
// Contains/size/eviction behaviour across thousands of random operations
// is a bug in the heap/generation machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/ttl_index.h"
#include "util/rng.h"

namespace pdht::core {
namespace {

/// Reference implementation: O(n) everything, obviously correct.
class ReferenceTtlIndex {
 public:
  explicit ReferenceTtlIndex(uint64_t capacity) : capacity_(capacity) {}

  uint64_t Put(uint64_t key, double now, double ttl) {
    uint64_t displaced = TtlIndex::kNoKey;
    if (!map_.count(key) && capacity_ > 0 && map_.size() >= capacity_) {
      auto victim = map_.begin();
      for (auto it = map_.begin(); it != map_.end(); ++it) {
        if (it->second < victim->second ||
            (it->second == victim->second && it->first < victim->first)) {
          victim = it;
        }
      }
      displaced = victim->first;
      map_.erase(victim);
    }
    map_[key] = now + ttl;
    return displaced;
  }

  bool Contains(uint64_t key, double now) const {
    auto it = map_.find(key);
    return it != map_.end() && it->second > now;
  }

  bool Touch(uint64_t key, double now, double ttl) {
    auto it = map_.find(key);
    if (it == map_.end() || it->second <= now) return false;
    it->second = now + ttl;
    return true;
  }

  bool Erase(uint64_t key) { return map_.erase(key) > 0; }

  std::vector<uint64_t> EvictExpired(double now) {
    std::vector<uint64_t> evicted;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second <= now) {
        evicted.push_back(it->first);
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
    return evicted;
  }

  size_t size() const { return map_.size(); }

 private:
  uint64_t capacity_;
  std::map<uint64_t, double> map_;
};

class TtlIndexFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TtlIndexFuzz, MatchesReferenceModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const uint64_t capacity = seed % 3 == 0 ? 0 : 16;  // mixed regimes
  TtlIndex idx(capacity);
  ReferenceTtlIndex ref(capacity);
  double now = 0.0;
  constexpr uint64_t kKeySpace = 48;

  for (int op = 0; op < 4000; ++op) {
    now += rng.UniformDouble();
    uint64_t key = rng.UniformU64(kKeySpace);
    switch (rng.UniformU64(5)) {
      case 0: {
        double ttl = 0.5 + rng.UniformDouble() * 20.0;
        // Displacement ties (equal expiry) may be broken differently by
        // the two implementations; avoid exact ties via the continuous
        // `now` drift, and only compare sizes (set equality is checked
        // via Contains below).
        idx.Put(key, now, ttl);
        ref.Put(key, now, ttl);
        break;
      }
      case 1: {
        double ttl = 0.5 + rng.UniformDouble() * 20.0;
        ASSERT_EQ(idx.Touch(key, now, ttl), ref.Touch(key, now, ttl))
            << "op " << op << " touch key " << key;
        break;
      }
      case 2:
        ASSERT_EQ(idx.Erase(key), ref.Erase(key)) << "op " << op;
        break;
      case 3: {
        std::vector<uint64_t> got;
        idx.EvictExpired(now, [&](uint64_t k) { got.push_back(k); });
        std::vector<uint64_t> want = ref.EvictExpired(now);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "op " << op << " eviction divergence";
        break;
      }
      default:
        ASSERT_EQ(idx.Contains(key, now), ref.Contains(key, now))
            << "op " << op << " contains key " << key;
        break;
    }
    if (capacity == 0) {
      // Without displacement ambiguity the sets must agree exactly.
      ASSERT_EQ(idx.size(), ref.size()) << "op " << op;
      for (uint64_t k = 0; k < kKeySpace; ++k) {
        ASSERT_EQ(idx.Contains(k, now), ref.Contains(k, now))
            << "op " << op << " key " << k;
      }
    } else {
      ASSERT_EQ(idx.size(), ref.size()) << "op " << op;
      ASSERT_LE(idx.size(), capacity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtlIndexFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pdht::core
