#include "core/strategy.h"

#include <gtest/gtest.h>

namespace pdht::core {
namespace {

TEST(StrategyTest, NamesRoundTrip) {
  for (Strategy s : {Strategy::kIndexAll, Strategy::kNoIndex,
                     Strategy::kPartialIdeal, Strategy::kPartialTtl}) {
    Strategy parsed;
    ASSERT_TRUE(ParseStrategy(StrategyName(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
}

TEST(StrategyTest, ParseIsCaseInsensitive) {
  Strategy s;
  EXPECT_TRUE(ParseStrategy("INDEXALL", &s));
  EXPECT_EQ(s, Strategy::kIndexAll);
  EXPECT_TRUE(ParseStrategy("partialttl", &s));
  EXPECT_EQ(s, Strategy::kPartialTtl);
}

TEST(StrategyTest, ParseRejectsUnknown) {
  Strategy s;
  EXPECT_FALSE(ParseStrategy("fullIndex", &s));
  EXPECT_FALSE(ParseStrategy("", &s));
}

TEST(DhtBackendTest, NamesRoundTrip) {
  for (DhtBackend b : {DhtBackend::kChord, DhtBackend::kPGrid,
                       DhtBackend::kCan, DhtBackend::kKademlia}) {
    DhtBackend parsed;
    ASSERT_TRUE(ParseDhtBackend(DhtBackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
}

TEST(DhtBackendTest, ParseAcceptsHyphenatedPGrid) {
  DhtBackend b;
  EXPECT_TRUE(ParseDhtBackend("P-Grid", &b));
  EXPECT_EQ(b, DhtBackend::kPGrid);
}

TEST(DhtBackendTest, ParseAcceptsKadShorthand) {
  DhtBackend b;
  EXPECT_TRUE(ParseDhtBackend("kad", &b));
  EXPECT_EQ(b, DhtBackend::kKademlia);
}

TEST(DhtBackendTest, ParseRejectsUnknown) {
  DhtBackend b;
  EXPECT_FALSE(ParseDhtBackend("pastry", &b));
  EXPECT_FALSE(ParseDhtBackend("", &b));
}

}  // namespace
}  // namespace pdht::core
