#include "core/ttl_index.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pdht::core {
namespace {

TEST(TtlIndexTest, PutAndContains) {
  TtlIndex idx;
  idx.Put(1, /*now=*/0.0, /*ttl=*/10.0);
  EXPECT_TRUE(idx.Contains(1, 0.0));
  EXPECT_TRUE(idx.Contains(1, 9.9));
  EXPECT_FALSE(idx.Contains(1, 10.0));  // expiry boundary is exclusive
  EXPECT_FALSE(idx.Contains(2, 0.0));
}

TEST(TtlIndexTest, TouchExtendsLifetime) {
  // "The expiration time of a key is reset ... whenever the peer that
  // stores the key receives a query for it."
  TtlIndex idx;
  idx.Put(1, 0.0, 10.0);
  EXPECT_TRUE(idx.Touch(1, 5.0, 10.0));  // new expiry: 15
  EXPECT_TRUE(idx.Contains(1, 12.0));
  EXPECT_FALSE(idx.Contains(1, 15.0));
}

TEST(TtlIndexTest, TouchFailsOnAbsentOrExpired) {
  TtlIndex idx;
  EXPECT_FALSE(idx.Touch(1, 0.0, 10.0));
  idx.Put(1, 0.0, 5.0);
  EXPECT_FALSE(idx.Touch(1, 6.0, 10.0));  // already expired
}

TEST(TtlIndexTest, EvictExpiredRemovesOnlyExpired) {
  TtlIndex idx;
  idx.Put(1, 0.0, 5.0);
  idx.Put(2, 0.0, 15.0);
  std::vector<uint64_t> evicted;
  uint64_t n = idx.EvictExpired(
      10.0, [&](uint64_t k) { evicted.push_back(k); });
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.Contains(2, 10.0));
}

TEST(TtlIndexTest, TouchedKeySurvivesEviction) {
  // The TTL-refresh mechanism is what keeps popular keys resident: a
  // touched key must not be evicted by its original expiry.
  TtlIndex idx;
  idx.Put(1, 0.0, 10.0);
  idx.Touch(1, 9.0, 10.0);  // expiry now 19
  EXPECT_EQ(idx.EvictExpired(10.0), 0u);
  EXPECT_TRUE(idx.Contains(1, 15.0));
  EXPECT_EQ(idx.EvictExpired(19.0), 1u);
}

TEST(TtlIndexTest, RePutRefreshes) {
  TtlIndex idx;
  idx.Put(1, 0.0, 5.0);
  idx.Put(1, 3.0, 5.0);  // expiry 8
  EXPECT_EQ(idx.EvictExpired(5.0), 0u);
  EXPECT_TRUE(idx.Contains(1, 7.0));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(TtlIndexTest, EraseRemovesImmediately) {
  TtlIndex idx;
  idx.Put(1, 0.0, 100.0);
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_FALSE(idx.Contains(1, 0.0));
  EXPECT_FALSE(idx.Erase(1));
  // Stale heap entries must not resurrect or miscount evictions.
  EXPECT_EQ(idx.EvictExpired(1000.0), 0u);
}

TEST(TtlIndexTest, CapacityDisplacesNearestExpiry) {
  TtlIndex idx(/*capacity=*/2);
  idx.Put(1, 0.0, 5.0);    // expires 5
  idx.Put(2, 0.0, 50.0);   // expires 50
  uint64_t displaced = idx.Put(3, 0.0, 20.0);
  EXPECT_EQ(displaced, 1u);  // key 1 was closest to expiry
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_FALSE(idx.Contains(1, 0.0));
  EXPECT_TRUE(idx.Contains(2, 0.0));
  EXPECT_TRUE(idx.Contains(3, 0.0));
}

TEST(TtlIndexTest, CapacityRePutDoesNotDisplace) {
  TtlIndex idx(2);
  idx.Put(1, 0.0, 5.0);
  idx.Put(2, 0.0, 10.0);
  uint64_t displaced = idx.Put(1, 0.0, 7.0);  // refresh, not insert
  EXPECT_EQ(displaced, TtlIndex::kNoKey);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(TtlIndexTest, UnboundedCapacity) {
  TtlIndex idx(0);
  for (uint64_t k = 0; k < 1000; ++k) idx.Put(k, 0.0, 10.0);
  EXPECT_EQ(idx.size(), 1000u);
}

TEST(TtlIndexTest, ExpiryOf) {
  TtlIndex idx;
  EXPECT_EQ(idx.ExpiryOf(1), TtlIndex::kNever);
  idx.Put(1, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(idx.ExpiryOf(1), 5.0);
}

TEST(TtlIndexTest, KeysListsResidents) {
  TtlIndex idx;
  idx.Put(1, 0.0, 10.0);
  idx.Put(2, 0.0, 10.0);
  auto keys = idx.Keys();
  std::set<uint64_t> s(keys.begin(), keys.end());
  EXPECT_EQ(s, (std::set<uint64_t>{1, 2}));
}

TEST(TtlIndexTest, ManyTouchesDoNotLeakHeap) {
  // Touch creates superseded heap entries; a subsequent eviction pass must
  // skip them all and report the key exactly once.
  TtlIndex idx;
  idx.Put(1, 0.0, 10.0);
  for (int i = 0; i < 1000; ++i) {
    idx.Touch(1, 0.1 * i, 10.0);
  }
  std::vector<uint64_t> evicted;
  idx.EvictExpired(1e6, [&](uint64_t k) { evicted.push_back(k); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(TtlIndexTest, SelectionAlgorithmScenario) {
  // Mini end-to-end of Section 5.1: a popular key queried every round
  // survives; an unpopular key inserted once times out after keyTtl.
  TtlIndex idx;
  const double key_ttl = 5.0;
  idx.Put(100, 0.0, key_ttl);  // popular
  idx.Put(200, 0.0, key_ttl);  // unpopular
  for (double now = 1.0; now <= 20.0; now += 1.0) {
    idx.EvictExpired(now);
    // The popular key is queried (touched) every round.
    idx.Touch(100, now, key_ttl);
  }
  EXPECT_TRUE(idx.Contains(100, 20.0));
  EXPECT_FALSE(idx.Contains(200, 20.0));
}

TEST(TtlIndexTest, EvictionOrderIsByExpiry) {
  TtlIndex idx;
  idx.Put(3, 0.0, 3.0);
  idx.Put(1, 0.0, 1.0);
  idx.Put(2, 0.0, 2.0);
  std::vector<uint64_t> order;
  idx.EvictExpired(10.0, [&](uint64_t k) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(TtlIndexTest, StressChurnOfKeys) {
  TtlIndex idx(100);
  double now = 0.0;
  for (int round = 0; round < 1000; ++round) {
    now += 1.0;
    idx.Put(static_cast<uint64_t>(round % 250), now, 10.0);
    idx.EvictExpired(now);
    ASSERT_LE(idx.size(), 100u);
  }
}

}  // namespace
}  // namespace pdht::core
