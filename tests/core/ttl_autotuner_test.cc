#include "core/ttl_autotuner.h"

#include <gtest/gtest.h>

#include "core/pdht_system.h"
#include "model/selection_model.h"
#include "util/rng.h"

namespace pdht::core {
namespace {

TEST(KeyTtlAutotunerTest, InitialTtlBeforeData) {
  AutotunerConfig cfg;
  cfg.initial_ttl = 123.0;
  KeyTtlAutotuner tuner(cfg);
  EXPECT_FALSE(tuner.HasEnoughData());
  EXPECT_DOUBLE_EQ(tuner.RecommendedTtl(), 123.0);
  EXPECT_DOUBLE_EQ(tuner.EstimatedFMin(), 0.0);
}

TEST(KeyTtlAutotunerTest, NeedsAllThreeSignals) {
  KeyTtlAutotuner tuner;
  tuner.ObserveUnstructuredSearch(700.0);
  EXPECT_FALSE(tuner.HasEnoughData());
  tuner.ObserveIndexSearch(10.0);
  EXPECT_FALSE(tuner.HasEnoughData());
  tuner.ObserveMaintenanceRound(100.0, 200.0);
  EXPECT_TRUE(tuner.HasEnoughData());
}

TEST(KeyTtlAutotunerTest, ComputesInverseFMin) {
  // cSUnstr = 720, cSIndx2 = 97, cRtn = 0.5:
  // fMin = 0.5 / 623 -> ttl = 1246.
  KeyTtlAutotuner tuner;
  for (int i = 0; i < 200; ++i) {
    tuner.ObserveUnstructuredSearch(720.0);
    tuner.ObserveIndexSearch(97.0);
    tuner.ObserveMaintenanceRound(0.5 * 1000.0, 1000.0);
  }
  EXPECT_NEAR(tuner.c_s_unstr_hat(), 720.0, 1e-6);
  EXPECT_NEAR(tuner.c_s_indx_hat(), 97.0, 1e-6);
  EXPECT_NEAR(tuner.c_rtn_hat(), 0.5, 1e-6);
  EXPECT_NEAR(tuner.RecommendedTtl(), (720.0 - 97.0) / 0.5, 1.0);
}

TEST(KeyTtlAutotunerTest, EwmaSmoothsNoisyObservations) {
  KeyTtlAutotuner tuner;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    tuner.ObserveUnstructuredSearch(600.0 +
                                    rng.UniformDouble() * 240.0);  // ~720
    tuner.ObserveIndexSearch(80.0 + rng.UniformDouble() * 34.0);   // ~97
    tuner.ObserveMaintenanceRound(400.0 + rng.UniformDouble() * 200.0,
                                  1000.0);                          // ~0.5
  }
  double ttl = tuner.RecommendedTtl();
  double ideal = (720.0 - 97.0) / 0.5;
  // Well inside the paper's +-50% error band (Section 5.1.1).
  EXPECT_GT(ttl, ideal * 0.5);
  EXPECT_LT(ttl, ideal * 1.5);
}

TEST(KeyTtlAutotunerTest, AdaptsToRegimeChange) {
  AutotunerConfig cfg;
  cfg.alpha = 0.1;
  KeyTtlAutotuner tuner(cfg);
  for (int i = 0; i < 300; ++i) {
    tuner.ObserveUnstructuredSearch(720.0);
    tuner.ObserveIndexSearch(97.0);
    tuner.ObserveMaintenanceRound(500.0, 1000.0);
  }
  double before = tuner.RecommendedTtl();
  // The network doubles: broadcasts get twice as expensive.
  for (int i = 0; i < 300; ++i) {
    tuner.ObserveUnstructuredSearch(1440.0);
    tuner.ObserveIndexSearch(99.0);
    tuner.ObserveMaintenanceRound(500.0, 1000.0);
  }
  double after = tuner.RecommendedTtl();
  // Bigger broadcast margin -> lower fMin -> longer TTL, roughly 2x.
  EXPECT_GT(after, before * 1.7);
  EXPECT_LT(after, before * 2.5);
}

TEST(KeyTtlAutotunerTest, NegativeMarginClampsToMinTtl) {
  AutotunerConfig cfg;
  cfg.min_ttl = 5.0;
  KeyTtlAutotuner tuner(cfg);
  for (int i = 0; i < 50; ++i) {
    tuner.ObserveUnstructuredSearch(10.0);  // broadcasts cheaper than index!
    tuner.ObserveIndexSearch(100.0);
    tuner.ObserveMaintenanceRound(100.0, 100.0);
  }
  EXPECT_DOUBLE_EQ(tuner.RecommendedTtl(), 5.0);
}

TEST(KeyTtlAutotunerTest, ClampsToBand) {
  AutotunerConfig cfg;
  cfg.min_ttl = 10.0;
  cfg.max_ttl = 100.0;
  KeyTtlAutotuner tuner(cfg);
  for (int i = 0; i < 50; ++i) {
    tuner.ObserveUnstructuredSearch(1e9);
    tuner.ObserveIndexSearch(1.0);
    tuner.ObserveMaintenanceRound(1.0, 1e9);  // tiny cRtn -> huge ttl
  }
  EXPECT_DOUBLE_EQ(tuner.RecommendedTtl(), 100.0);
}

TEST(KeyTtlAutotunerTest, IgnoresInvalidObservations) {
  KeyTtlAutotuner tuner;
  tuner.ObserveUnstructuredSearch(-5.0);
  tuner.ObserveIndexSearch(-1.0);
  tuner.ObserveMaintenanceRound(10.0, 0.0);  // empty index
  EXPECT_FALSE(tuner.HasEnoughData());
}

// Whole-system integration: the autotuned TTL converges to the same order
// of magnitude as the model's 1/fMin and the system keeps working.
TEST(KeyTtlAutotunerTest, SystemLevelConvergence) {
  SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 90;
  c.autotune_ttl = true;
  c.autotuner.alpha = 0.05;
  PdhtSystem sys(c);
  sys.RunRounds(150);
  ASSERT_TRUE(sys.autotuner().HasEnoughData());
  double tuned = sys.EffectiveKeyTtl();

  model::SelectionModel sel(c.params);
  double ideal = sel.IdealKeyTtl(c.params.f_qry);
  // Same order of magnitude as the omniscient model.  The estimator sees
  // realized cSIndx2 costs (entry hop, failures, response, replica flood)
  // where the model counts bare routing hops, so its margin is smaller
  // and its TTL shorter; Section 5.1.1 establishes that this degree of
  // mis-estimation "decreases the savings only slightly", which the
  // hit-rate assertion below confirms end-to-end.
  EXPECT_GT(tuned, ideal / 8.0);
  EXPECT_LT(tuned, ideal * 8.0);
  // The system still performs.
  EXPECT_GT(sys.TailHitRate(30), 0.5);
}

}  // namespace
}  // namespace pdht::core
