#include "app/news_service.h"

#include <gtest/gtest.h>

namespace pdht::app {
namespace {

NewsServiceOptions SmallOptions(uint64_t seed = 11) {
  NewsServiceOptions o;
  o.num_articles = 50;
  o.keys_per_article = 10;
  o.corpus_seed = seed;
  o.system.params.num_peers = 200;
  o.system.params.stor = 20;
  o.system.params.repl = 10;
  o.system.params.f_qry = 1.0 / 5.0;
  o.system.params.f_upd = 1.0 / 3600.0;
  o.system.strategy = core::Strategy::kPartialTtl;
  o.system.churn.enabled = false;
  o.system.seed = seed;
  return o;
}

TEST(NewsServiceTest, BuildsKeyUniverseFromCorpus) {
  NewsService svc(SmallOptions());
  EXPECT_GT(svc.key_universe_size(), 100u);
  EXPECT_LE(svc.key_universe_size(), 500u);
  EXPECT_EQ(svc.corpus().size(), 50u);
}

TEST(NewsServiceTest, PredicatesResolveToDenseKeys) {
  NewsService svc(SmallOptions());
  auto preds = svc.PredicatesOf(0);
  ASSERT_EQ(preds.size(), 10u);
  for (const auto& p : preds) {
    EXPECT_NE(svc.DenseKeyOf(p), NewsService::kUnknownKey) << p;
  }
  EXPECT_EQ(svc.DenseKeyOf("no=such predicate"),
            NewsService::kUnknownKey);
}

TEST(NewsServiceTest, SearchFindsPublishedArticle) {
  NewsService svc(SmallOptions());
  auto preds = svc.PredicatesOf(7);
  SearchResult r = svc.Search(preds[0]);
  EXPECT_TRUE(r.found);
  // Article 7 must be among the matches (shared predicates can match
  // several articles).
  EXPECT_NE(std::find(r.article_ids.begin(), r.article_ids.end(), 7ull),
            r.article_ids.end());
}

TEST(NewsServiceTest, RepeatSearchServedFromIndex) {
  NewsService svc(SmallOptions());
  auto preds = svc.PredicatesOf(3);
  SearchResult first = svc.Search(preds[1]);
  ASSERT_TRUE(first.found);
  SearchResult second = svc.Search(preds[1]);
  EXPECT_TRUE(second.found);
  EXPECT_TRUE(second.answered_from_index);
  EXPECT_LT(second.messages, first.messages);
}

TEST(NewsServiceTest, ConjunctionSearchUsesCanonicalOrder) {
  NewsService svc(SmallOptions());
  const auto& art = svc.corpus().at(0);
  // Find two indexable pairs that actually form one of the article's keys.
  metadata::MetadataPair a = art.metadata[0];
  metadata::MetadataPair b = art.metadata[1];
  SearchResult ab = svc.SearchConjunction(a, b);
  SearchResult ba = svc.SearchConjunction(b, a);
  EXPECT_EQ(ab.predicate, ba.predicate);
}

TEST(NewsServiceTest, UnknownPredicateCostsButFails) {
  NewsService svc(SmallOptions());
  SearchResult r = svc.Search("author=Nobody At All");
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.messages, 0u);  // the network still paid for the search
  EXPECT_TRUE(r.article_ids.empty());
}

TEST(NewsServiceTest, BackgroundTrafficWarmsIndex) {
  NewsService svc(SmallOptions());
  svc.Run(60);
  EXPECT_GT(svc.system().TailHitRate(15), 0.5);
  EXPECT_GT(svc.system().IndexedKeyCount(), 0u);
}

TEST(NewsServiceTest, DeterministicForSeed) {
  NewsService a(SmallOptions(21));
  NewsService b(SmallOptions(21));
  a.Run(20);
  b.Run(20);
  EXPECT_EQ(a.key_universe_size(), b.key_universe_size());
  EXPECT_DOUBLE_EQ(a.system().TailMessageRate(10),
                   b.system().TailMessageRate(10));
}

TEST(NewsServiceTest, SearchIsTermOrderInvariant) {
  NewsService svc(SmallOptions(41));
  // Find a conjunctive predicate of article 0 and scramble its order.
  std::string conj;
  for (const auto& p : svc.PredicatesOf(0)) {
    if (p.find(" AND ") != std::string::npos) {
      conj = p;
      break;
    }
  }
  ASSERT_FALSE(conj.empty());
  size_t split = conj.find(" AND ");
  std::string scrambled =
      conj.substr(split + 5) + " and " + conj.substr(0, split);
  SearchResult canonical = svc.Search(conj);
  SearchResult reordered = svc.Search(scrambled);
  EXPECT_EQ(canonical.found, reordered.found);
  EXPECT_EQ(canonical.article_ids, reordered.article_ids);
}

TEST(NewsServiceTest, SharedPredicatesMatchMultipleArticles) {
  // Category/language predicates are shared across articles by design.
  NewsService svc(SmallOptions(31));
  bool found_shared = false;
  for (uint64_t id = 0; id < 50 && !found_shared; ++id) {
    for (const auto& p : svc.PredicatesOf(id)) {
      if (p.rfind("category=", 0) == 0) {
        SearchResult r = svc.Search(p);
        if (r.found && r.article_ids.size() > 1) found_shared = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_shared);
}

}  // namespace
}  // namespace pdht::app
