// Grid expansion, seed derivation and aggregation semantics of the
// experiment subsystem (exp/experiment.h).

#include "exp/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace pdht::exp {
namespace {

core::SystemConfig SmallConfig() {
  core::SystemConfig c;
  c.params.num_peers = 120;
  c.params.keys = 240;
  c.params.stor = 10;
  c.params.repl = 5;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 99;
  return c;
}

ExperimentSpec TwoAxisSpec() {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {
      Axis{"letter",
           {{"a", [](core::SystemConfig& c) { c.ttl_scale = 1.0; }},
            {"b", [](core::SystemConfig& c) { c.ttl_scale = 2.0; }}}},
      Axis{"number",
           {{"1", [](core::SystemConfig& c) { c.params.repl = 4; }},
            {"2", [](core::SystemConfig& c) { c.params.repl = 5; }},
            {"3", [](core::SystemConfig& c) { c.params.repl = 6; }}}}};
  spec.seeds_per_cell = 2;
  return spec;
}

TEST(ExperimentSpecTest, GridAndCellCounts) {
  ExperimentSpec spec = TwoAxisSpec();
  EXPECT_EQ(spec.GridSize(), 6u);
  EXPECT_EQ(spec.NumCells(), 12u);

  ExperimentSpec empty;
  empty.base = SmallConfig();
  EXPECT_EQ(empty.GridSize(), 1u);
  EXPECT_EQ(empty.NumCells(), 1u);
}

TEST(ExperimentSpecTest, MakeCellDecodesLastAxisFastest) {
  ExperimentSpec spec = TwoAxisSpec();
  // Flat order: grid point changes every seeds_per_cell cells; within a
  // grid sweep the *last* axis varies fastest.
  Cell c0 = spec.MakeCell(0);
  EXPECT_EQ(c0.grid_index, 0u);
  EXPECT_EQ(c0.seed_index, 0u);
  EXPECT_EQ(c0.labels, (std::vector<std::string>{"a", "1"}));

  Cell c1 = spec.MakeCell(1);
  EXPECT_EQ(c1.grid_index, 0u);
  EXPECT_EQ(c1.seed_index, 1u);

  Cell c2 = spec.MakeCell(2);
  EXPECT_EQ(c2.labels, (std::vector<std::string>{"a", "2"}));

  Cell c_last = spec.MakeCell(11);
  EXPECT_EQ(c_last.grid_index, 5u);
  EXPECT_EQ(c_last.seed_index, 1u);
  EXPECT_EQ(c_last.labels, (std::vector<std::string>{"b", "3"}));
}

TEST(ExperimentSpecTest, PatchesApplyWithoutMutatingBase) {
  ExperimentSpec spec = TwoAxisSpec();
  Cell cell = spec.MakeCell(10);  // ("b", "3"), seed 0
  EXPECT_DOUBLE_EQ(cell.config.ttl_scale, 2.0);
  EXPECT_EQ(cell.config.params.repl, 6u);
  EXPECT_DOUBLE_EQ(spec.base.ttl_scale, 1.0);
  EXPECT_EQ(spec.base.params.repl, 5u);
}

TEST(ExperimentSpecTest, CellSeedsAreDerivedStableAndDistinct) {
  ExperimentSpec spec = TwoAxisSpec();
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < spec.NumCells(); ++i) {
    Cell cell = spec.MakeCell(i);
    EXPECT_EQ(cell.config.seed, DeriveCellSeed(spec.base.seed, i));
    seeds.insert(cell.config.seed);
  }
  EXPECT_EQ(seeds.size(), spec.NumCells());  // no collisions
  // Pure function: same inputs, same seed, every time.
  EXPECT_EQ(DeriveCellSeed(99, 7), DeriveCellSeed(99, 7));
  EXPECT_NE(DeriveCellSeed(99, 7), DeriveCellSeed(100, 7));
}

TEST(ExperimentSpecTest, EmptyAxisMeansEmptyGrid) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {Axis{"empty", {}}, Axis{"full", {{"x", nullptr}}}};
  EXPECT_EQ(spec.GridSize(), 0u);
  EXPECT_EQ(spec.NumCells(), 0u);
}

TEST(ExperimentRunCellTest, ThrowingApplyPatchIsCapturedNotPropagated) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {Axis{"bad",
                    {{"throws", [](core::SystemConfig&) {
                        throw std::runtime_error("patch boom");
                      }}}}};
  CellResult r = RunCell(spec, 0);
  EXPECT_EQ(r.error, "patch boom");
  EXPECT_TRUE(r.metrics.empty());
}

TEST(ExperimentRunCellTest, InvalidConfigReportsErrorInsteadOfThrowing) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {Axis{"bad",
                    {{"degree0", [](core::SystemConfig& c) {
                        c.overlay_degree = 0.0;
                      }}}}};
  CellResult r = RunCell(spec, 0);
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.metrics.empty());
}

TEST(ExperimentRunCellTest, CollectsStandardMetrics) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.rounds = 20;
  spec.tail = 5;
  CellResult r = RunCell(spec, 0);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.metrics.count(core::PdhtSystem::kSeriesMsgTotal));
  EXPECT_TRUE(r.metrics.count(core::PdhtSystem::kSeriesHitRate));
  EXPECT_TRUE(r.metrics.count(kMetricIndexKeys));
  EXPECT_TRUE(r.metrics.count(kMetricKeyTtl));
  EXPECT_GT(r.metrics.at(core::PdhtSystem::kSeriesMsgTotal), 0.0);
}

TEST(AggregateTest, MeanMinMaxAcrossSeeds) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {Axis{"x", {{"only", nullptr}}}};
  spec.seeds_per_cell = 3;
  std::vector<CellResult> cells(3);
  for (uint32_t s = 0; s < 3; ++s) {
    cells[s].index = s;
    cells[s].grid_index = 0;
    cells[s].seed_index = s;
    cells[s].labels = {"only"};
    cells[s].metrics["m"] = 1.0 + s;  // 1, 2, 3
  }
  auto rows = Aggregate(spec, cells);
  ASSERT_EQ(rows.size(), 1u);
  const AggregateStats& st = rows[0].metrics.at("m");
  EXPECT_DOUBLE_EQ(st.mean, 2.0);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 3.0);
  EXPECT_EQ(st.n, 3u);
}

TEST(AggregateTest, FailedSeedsLandInErrorsNotStats) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.axes = {Axis{"x", {{"only", nullptr}}}};
  spec.seeds_per_cell = 2;
  std::vector<CellResult> cells(2);
  cells[0].grid_index = 0;
  cells[0].labels = {"only"};
  cells[0].metrics["m"] = 4.0;
  cells[1].index = 1;
  cells[1].grid_index = 0;
  cells[1].seed_index = 1;
  cells[1].labels = {"only"};
  cells[1].error = "boom";
  auto rows = Aggregate(spec, cells);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].metrics.at("m").n, 1u);
  ASSERT_EQ(rows[0].errors.size(), 1u);
  EXPECT_EQ(rows[0].errors[0], "boom");
}

TEST(AggregateTest, FullyFailedGridPointKeepsLabelsAndTableArity) {
  ExperimentSpec spec;
  spec.base = SmallConfig();
  spec.seeds_per_cell = 2;
  spec.axes = {Axis{"bad",
                    {{"throws", [](core::SystemConfig&) {
                        throw std::runtime_error("boom");
                      }}}}};
  std::vector<CellResult> cells;
  for (size_t i = 0; i < spec.NumCells(); ++i) {
    cells.push_back(RunCell(spec, i));
  }
  auto rows = Aggregate(spec, cells);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].errors.size(), 2u);
  // Labels are reconstructed from the grid decode even though no cell
  // ever materialized, so ToTable keeps its column arity and renders
  // the ERROR sentinel instead of tripping AddRow's arity assert.
  EXPECT_EQ(rows[0].labels, (std::vector<std::string>{"throws"}));
  TableWriter t = ToTable(spec, rows, {{"m", "m"}});
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], "throws");
  EXPECT_EQ(t.rows()[0][1], "ERROR");
}

TEST(AggregateTest, StatOnMissingMetricIsEmptyNaN) {
  AggregateRow row;
  row.metrics["m"] = {2.0, 2.0, 2.0, 1};
  EXPECT_DOUBLE_EQ(row.Stat("m").mean, 2.0);
  AggregateStats missing = row.Stat("not-there");
  EXPECT_EQ(missing.n, 0u);
  EXPECT_TRUE(std::isnan(missing.mean));
  // NaN comparisons are false, so downstream shape checks FAIL instead
  // of aborting the bench.
  EXPECT_FALSE(missing.mean < 4.0 || missing.mean >= 4.0);
}

TEST(FormatStatsTest, SingleVsMultiSeed) {
  AggregateStats one{1.5, 1.5, 1.5, 1};
  EXPECT_EQ(FormatStats(one, 4), "1.5");
  AggregateStats many{2.0, 1.0, 3.0, 4};
  EXPECT_EQ(FormatStats(many, 4), "2 [1, 3]");
}

TEST(ToTableTest, AxisColumnsThenMetricColumns) {
  ExperimentSpec spec = TwoAxisSpec();
  std::vector<AggregateRow> rows(1);
  rows[0].labels = {"a", "1"};
  rows[0].metrics["m"] = {5.0, 5.0, 5.0, 1};
  TableWriter t = ToTable(spec, rows, {{"metric m", "m"}, {"missing", "z"}});
  ASSERT_EQ(t.columns().size(), 4u);
  EXPECT_EQ(t.columns()[0], "letter");
  EXPECT_EQ(t.columns()[1], "number");
  EXPECT_EQ(t.columns()[2], "metric m");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][2], "5");
  EXPECT_EQ(t.rows()[0][3], "-");  // unknown metric, no errors
}

}  // namespace
}  // namespace pdht::exp
