// Determinism regression suite for the parallel experiment runner: the
// same ExperimentSpec must produce byte-identical aggregated tables at
// any thread count (ISSUE 2 acceptance criterion).  Cell seeds derive
// from the flat cell index alone, so the execution schedule cannot leak
// into results.

#include "exp/parallel_runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/experiment.h"

namespace pdht::exp {
namespace {

ExperimentSpec SmallSweep() {
  ExperimentSpec spec;
  spec.name = "determinism_probe";
  spec.base.params.num_peers = 120;
  spec.base.params.keys = 240;
  spec.base.params.stor = 10;
  spec.base.params.repl = 5;
  spec.base.params.f_qry = 1.0 / 5.0;
  spec.base.params.f_upd = 1.0 / 3600.0;
  spec.base.strategy = core::Strategy::kPartialTtl;
  spec.base.churn.enabled = true;
  spec.base.churn.mean_online_s = 200;
  spec.base.churn.mean_offline_s = 100;
  spec.base.seed = 20040314;
  spec.rounds = 30;
  spec.tail = 8;
  spec.seeds_per_cell = 2;
  spec.axes = {
      Axis{"backend",
           {{"chord",
             [](core::SystemConfig& c) {
               c.backend = core::DhtBackend::kChord;
             }},
            {"kademlia",
             [](core::SystemConfig& c) {
               c.backend = core::DhtBackend::kKademlia;
             }}}}};
  return spec;
}

TEST(ParallelRunnerTest, EffectiveThreadsClampsToCells) {
  EXPECT_EQ(ParallelRunner::EffectiveThreads(8, 3), 3u);
  EXPECT_EQ(ParallelRunner::EffectiveThreads(2, 100), 2u);
  EXPECT_GE(ParallelRunner::EffectiveThreads(0, 100), 1u);
  EXPECT_EQ(ParallelRunner::EffectiveThreads(4, 0), 1u);
}

TEST(ParallelRunnerTest, ResultsOrderedByFlatIndex) {
  ExperimentSpec spec = SmallSweep();
  auto results = ParallelRunner({4}).Run(spec);
  ASSERT_EQ(results.size(), spec.NumCells());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
  }
}

// The headline regression: 1 thread vs N threads, bit-identical cell
// metrics and byte-identical aggregated CSV tables.
TEST(ParallelRunnerTest, DeterministicAcrossThreadCounts) {
  ExperimentSpec spec = SmallSweep();
  auto serial = ParallelRunner({1}).Run(spec);
  auto parallel = ParallelRunner({4}).Run(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].labels, parallel[i].labels);
    EXPECT_EQ(serial[i].error, parallel[i].error);
    // Exact double equality on purpose: same seed, same code path, no
    // tolerance for schedule-dependent drift.
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "cell " << i;
  }

  auto table = [&](const std::vector<CellResult>& cells) {
    return ToTable(spec, Aggregate(spec, cells),
                   {{"msg", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit", core::PdhtSystem::kSeriesHitRate},
                    {"keys", kMetricIndexKeys}})
        .ToCsv();
  };
  EXPECT_EQ(table(serial), table(parallel));
}

TEST(ParallelRunnerTest, SeedsProduceDistinctRuns) {
  ExperimentSpec spec = SmallSweep();
  auto results = ParallelRunner({2}).Run(spec);
  // Seed 0 and seed 1 of the same grid point are different simulations.
  EXPECT_NE(results[0].metrics.at(core::PdhtSystem::kSeriesMsgTotal),
            results[1].metrics.at(core::PdhtSystem::kSeriesMsgTotal));
}

TEST(ParallelRunnerTest, CellFailureIsIsolated) {
  ExperimentSpec spec = SmallSweep();
  spec.run = [](core::PdhtSystem& sys, const Cell& cell) {
    if (cell.index == 1) throw std::runtime_error("injected failure");
    sys.RunRounds(10);
  };
  auto results = ParallelRunner({4}).Run(spec);
  EXPECT_EQ(results[1].error, "injected failure");
  EXPECT_TRUE(results[1].metrics.empty());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(results[i].error.empty()) << results[i].error;
    EXPECT_FALSE(results[i].metrics.empty());
  }
  // The failed seed is quarantined in errors; the grid point still
  // aggregates its surviving seed.
  auto rows = Aggregate(spec, results);
  EXPECT_EQ(rows[0].errors.size(), 1u);
  EXPECT_EQ(rows[0].metrics.at(core::PdhtSystem::kSeriesMsgTotal).n, 1u);
}

}  // namespace
}  // namespace pdht::exp
