#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdht {
namespace {

TEST(GeneralizedHarmonicTest, MatchesHandComputedValues) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(4, 2.0),
              1.0 + 0.25 + 1.0 / 9.0 + 1.0 / 16.0, 1e-12);
  // alpha = 0: every term is 1.
  EXPECT_NEAR(GeneralizedHarmonic(100, 0.0), 100.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler z(1000, 1.2);
  double sum = 0.0;
  for (uint64_t r = 1; r <= 1000; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfIsMonotoneDecreasing) {
  ZipfSampler z(500, 0.8);
  for (uint64_t r = 2; r <= 500; ++r) {
    EXPECT_LT(z.Pmf(r), z.Pmf(r - 1));
  }
}

TEST(ZipfSamplerTest, PmfZeroOutsideSupport) {
  ZipfSampler z(10, 1.0);
  EXPECT_EQ(z.Pmf(0), 0.0);
  EXPECT_EQ(z.Pmf(11), 0.0);
}

TEST(ZipfSamplerTest, CdfEndpoints) {
  ZipfSampler z(100, 1.2);
  EXPECT_EQ(z.Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(z.Cdf(100), 1.0);
  EXPECT_DOUBLE_EQ(z.Cdf(200), 1.0);
  EXPECT_NEAR(z.Cdf(1), z.Pmf(1), 1e-12);
}

TEST(ZipfSamplerTest, CdfIsMonotone) {
  ZipfSampler z(200, 1.5);
  for (uint64_t r = 2; r <= 200; ++r) {
    EXPECT_GE(z.Cdf(r), z.Cdf(r - 1));
  }
}

TEST(ZipfSamplerTest, SamplesInRange) {
  ZipfSampler z(50, 1.2);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = z.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 50u);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  constexpr uint64_t kN = 100;
  ZipfSampler z(kN, 1.2);
  Rng rng(99);
  constexpr int kSamples = 200000;
  std::vector<int> counts(kN + 1, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[z.Sample(rng)];
  // Check the head ranks where counts are large enough for tight bounds.
  for (uint64_t r = 1; r <= 5; ++r) {
    double expected = z.Pmf(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected))
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform) {
  constexpr uint64_t kN = 20;
  ZipfSampler z(kN, 0.0);
  for (uint64_t r = 1; r <= kN; ++r) {
    EXPECT_NEAR(z.Pmf(r), 1.0 / kN, 1e-12);
  }
}

TEST(ZipfSamplerTest, SingleKeyAlwaysRankOne) {
  ZipfSampler z(1, 1.2);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(z.Sample(rng), 1u);
  }
  EXPECT_DOUBLE_EQ(z.Pmf(1), 1.0);
}

TEST(ZipfSamplerTest, PaperAlphaHeadMass) {
  // With alpha = 1.2 over 40,000 keys [Srip01], the head of the
  // distribution concentrates a large share of queries: rank 1 alone gets
  // ~20% of the mass (1/H_{40000,1.2} with H ~= 5.0).
  ZipfSampler z(40000, 1.2);
  EXPECT_NEAR(z.Pmf(1), 1.0 / GeneralizedHarmonic(40000, 1.2), 1e-12);
  EXPECT_NEAR(z.Pmf(1), 0.20, 0.015);
  // The top 1% of keys (400) answers well over half the queries.
  EXPECT_GT(z.Cdf(400), 0.55);
}

TEST(ZipfRejectionSamplerTest, SamplesInRange) {
  ZipfRejectionSampler z(1000, 1.2);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = z.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 1000u);
  }
}

TEST(ZipfRejectionSamplerTest, AgreesWithTableSampler) {
  // Both samplers target the same distribution; compare empirical CDFs.
  constexpr uint64_t kN = 200;
  constexpr double kAlpha = 1.2;
  ZipfSampler table(kN, kAlpha);
  ZipfRejectionSampler rej(kN, kAlpha);
  Rng r1(7);
  Rng r2(8);
  constexpr int kSamples = 100000;
  std::vector<double> c1(kN + 1, 0.0);
  std::vector<double> c2(kN + 1, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    ++c1[table.Sample(r1)];
    ++c2[rej.Sample(r2)];
  }
  double acc1 = 0.0;
  double acc2 = 0.0;
  double max_gap = 0.0;
  for (uint64_t r = 1; r <= kN; ++r) {
    acc1 += c1[r] / kSamples;
    acc2 += c2[r] / kSamples;
    max_gap = std::max(max_gap, std::abs(acc1 - acc2));
  }
  // Kolmogorov-Smirnov style bound: the two empirical CDFs should agree
  // within sampling noise.
  EXPECT_LT(max_gap, 0.01);
}

TEST(ZipfRejectionSamplerTest, HandlesAlphaNearOne) {
  ZipfRejectionSampler z(100, 1.0);
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = z.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    sum += static_cast<double>(r);
  }
  // Mean of Zipf(1) over 100: H(100,0)/H(100,1) = 100 / 5.187 ~= 19.28.
  EXPECT_NEAR(sum / 20000.0, 100.0 / GeneralizedHarmonic(100, 1.0), 1.0);
}

// Property sweep over alpha: the sampler's empirical rank-1 frequency
// matches the analytical pmf.
class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, HeadFrequencyMatchesPmf) {
  double alpha = GetParam();
  constexpr uint64_t kN = 500;
  ZipfSampler z(kN, alpha);
  Rng rng(static_cast<uint64_t>(alpha * 1000) + 1);
  constexpr int kSamples = 100000;
  int rank1 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (z.Sample(rng) == 1) ++rank1;
  }
  double expected = z.Pmf(1);
  double sd = std::sqrt(expected * (1 - expected) / kSamples);
  EXPECT_NEAR(static_cast<double>(rank1) / kSamples, expected,
              6 * sd + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace pdht
