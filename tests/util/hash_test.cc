#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace pdht {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, DifferentStringsDiffer) {
  EXPECT_NE(Fnv1a64("title=Weather Iraklion"),
            Fnv1a64("title=Weather Lausanne"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(Fnv1aTest, SeededFamiliesAreIndependent) {
  // The same input under different seeds must produce different outputs.
  std::string input = "key";
  EXPECT_NE(Fnv1a64Seeded(input, 1), Fnv1a64Seeded(input, 2));
}

TEST(Fnv1a128Test, HalvesDiffer) {
  Hash128 h = Fnv1a128("some metadata predicate");
  EXPECT_NE(h.hi, h.lo);
}

TEST(Fnv1a128Test, EqualityOperator) {
  EXPECT_EQ(Fnv1a128("x"), Fnv1a128("x"));
  EXPECT_FALSE(Fnv1a128("x") == Fnv1a128("y"));
}

TEST(Fnv1aTest, NoCollisionsOnRealisticPredicates) {
  // 40,000 scenario-style predicates must hash without collision (64-bit
  // space; a collision here would break key identity in the index).
  std::set<uint64_t> seen;
  for (int article = 0; article < 2000; ++article) {
    for (int k = 0; k < 20; ++k) {
      std::string pred = "article=" + std::to_string(article) +
                         " AND slot=" + std::to_string(k);
      auto [it, inserted] = seen.insert(Fnv1a64(pred));
      ASSERT_TRUE(inserted) << "collision on " << pred;
    }
  }
  EXPECT_EQ(seen.size(), 40000u);
}

TEST(Mix64Test, IsBijectiveOnSamples) {
  // A bijective mixer cannot map two distinct inputs to one output.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(outputs.insert(Mix64(i)).second);
  }
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Flipping one input bit should change roughly half the output bits.
  int total_flips = 0;
  constexpr int kTrials = 256;
  for (uint64_t i = 0; i < kTrials; ++i) {
    uint64_t a = Mix64(i);
    uint64_t b = Mix64(i ^ 1);
    total_flips += __builtin_popcountll(a ^ b);
  }
  double avg = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(123, 456), HashCombine(123, 456));
}

TEST(ToBinaryPrefixTest, ExtractsMsbBits) {
  EXPECT_EQ(ToBinaryPrefix(0x8000000000000000ULL, 4), "1000");
  EXPECT_EQ(ToBinaryPrefix(0x0, 4), "0000");
  EXPECT_EQ(ToBinaryPrefix(0xF000000000000000ULL, 4), "1111");
  EXPECT_EQ(ToBinaryPrefix(0xA000000000000000ULL, 4), "1010");
}

TEST(ToBinaryPrefixTest, ZeroBitsEmpty) {
  EXPECT_EQ(ToBinaryPrefix(0x123, 0), "");
}

TEST(ToBinaryPrefixTest, FullWidth) {
  std::string s = ToBinaryPrefix(~uint64_t{0}, 64);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_EQ(s.find('0'), std::string::npos);
}

}  // namespace
}  // namespace pdht
