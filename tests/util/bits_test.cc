#include "util/bits.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdht {
namespace {

TEST(FloorLog2Test, PowersOfTwo) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 63), 63);
}

TEST(FloorLog2Test, NonPowers) {
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(5), 2);
  EXPECT_EQ(FloorLog2(1000), 9);
  EXPECT_EQ(FloorLog2(20000), 14);
}

TEST(CeilLog2Test, PowersOfTwo) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(1024), 10);
}

TEST(CeilLog2Test, NonPowers) {
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(17000), 15);  // the [MaCa03] trace size
  EXPECT_EQ(CeilLog2(20000), 15);
}

TEST(CeilFloorLog2Test, ConsistentBracketing) {
  for (uint64_t x = 1; x < 10000; x += 7) {
    int f = FloorLog2(x);
    int c = CeilLog2(x);
    EXPECT_LE(f, c);
    EXPECT_LE(c - f, 1);
    EXPECT_LE(uint64_t{1} << f, x);
    EXPECT_GE(uint64_t{1} << c, x);
  }
}

TEST(Log2Test, MatchesStd) {
  EXPECT_DOUBLE_EQ(Log2(8.0), 3.0);
  EXPECT_NEAR(Log2(20000.0), 14.2877, 1e-3);
  EXPECT_NEAR(Log2(17000.0), 14.0532, 1e-3);  // env = 1/log2(17000) ~ 1/14
}

TEST(CommonPrefixLengthTest, IdenticalValues) {
  EXPECT_EQ(CommonPrefixLength(0, 0), 64);
  EXPECT_EQ(CommonPrefixLength(~uint64_t{0}, ~uint64_t{0}), 64);
}

TEST(CommonPrefixLengthTest, TopBitDiffers) {
  EXPECT_EQ(CommonPrefixLength(0, uint64_t{1} << 63), 0);
}

TEST(CommonPrefixLengthTest, MiddleBit) {
  uint64_t a = 0xFF00000000000000ULL;
  uint64_t b = 0xFF80000000000000ULL;
  EXPECT_EQ(CommonPrefixLength(a, b), 8);
}

TEST(CommonPrefixLengthTest, Symmetric) {
  uint64_t a = 0x123456789abcdef0ULL;
  uint64_t b = 0x123456789abcdeffULL;
  EXPECT_EQ(CommonPrefixLength(a, b), CommonPrefixLength(b, a));
}

TEST(NextPow2Test, Values) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

}  // namespace
}  // namespace pdht
