#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pdht {
namespace {

TEST(SplitMix64Test, ProducesKnownSequence) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 0.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(&state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64Next(&state), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64BoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformU64(1), 0u);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformU64(kBuckets)];
  }
  double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(RngTest, ExponentialAlwaysNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Exponential(3.0), 0.0);
  }
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(41);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.Geometric(0.25));
  }
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(RngTest, GeometricOfOneIsAlwaysOne) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Geometric(1.0), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(53);
  Rng b(53);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ca.Next(), cb.Next());
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v.data(), v.size());
  std::multiset<int> sorted_orig(orig.begin(), orig.end());
  std::multiset<int> sorted_new(v.begin(), v.end());
  EXPECT_EQ(sorted_orig, sorted_new);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(empty.data(), 0);  // must not crash
  std::vector<int> one{42};
  rng.Shuffle(one.data(), 1);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ShuffleIsUnbiasedOnPairs) {
  Rng rng(67);
  int first_zero = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    int v[2] = {0, 1};
    rng.Shuffle(v, 2);
    if (v[0] == 0) ++first_zero;
  }
  EXPECT_NEAR(static_cast<double>(first_zero) / kTrials, 0.5, 0.02);
}

// Property sweep: bounded generation is unbiased across bounds.
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, MeanIsHalfBound) {
  uint64_t bound = GetParam();
  Rng rng(bound * 2654435761u + 1);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.UniformU64(bound));
  }
  double mean = sum / kSamples;
  double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  double sd = static_cast<double>(bound) / std::sqrt(12.0 * kSamples);
  EXPECT_NEAR(mean, expected, 6 * sd + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 16, 100, 1024, 65536));

}  // namespace
}  // namespace pdht
