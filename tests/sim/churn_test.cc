#include "sim/churn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdht::sim {
namespace {

TEST(ChurnConfigTest, StationaryAvailability) {
  ChurnConfig c;
  c.mean_online_s = 3600;
  c.mean_offline_s = 1800;
  EXPECT_NEAR(c.StationaryAvailability(), 2.0 / 3.0, 1e-12);
  c.enabled = false;
  EXPECT_DOUBLE_EQ(c.StationaryAvailability(), 1.0);
}

TEST(ChurnModelTest, DisabledChurnKeepsEveryoneOnline) {
  ChurnConfig c;
  c.enabled = false;
  ChurnModel m(100, c, Rng(1));
  m.AdvanceTo(100000.0);
  EXPECT_EQ(m.online_count(), 100u);
  EXPECT_DOUBLE_EQ(m.OnlineFraction(), 1.0);
}

TEST(ChurnModelTest, InitialStateNearStationary) {
  ChurnConfig c;
  c.mean_online_s = 3000;
  c.mean_offline_s = 1000;
  ChurnModel m(10000, c, Rng(2));
  EXPECT_NEAR(m.OnlineFraction(), 0.75, 0.03);
}

TEST(ChurnModelTest, LongRunFractionMatchesStationary) {
  ChurnConfig c;
  c.mean_online_s = 200;
  c.mean_offline_s = 100;
  ChurnModel m(2000, c, Rng(3));
  double sum = 0.0;
  int samples = 0;
  for (double t = 100; t <= 5000; t += 50) {
    m.AdvanceTo(t);
    sum += m.OnlineFraction();
    ++samples;
  }
  EXPECT_NEAR(sum / samples, 2.0 / 3.0, 0.03);
}

TEST(ChurnModelTest, AdvanceToIsMonotone) {
  ChurnModel m(10, ChurnConfig{}, Rng(4));
  m.AdvanceTo(100.0);
  EXPECT_DOUBLE_EQ(m.now(), 100.0);
  m.AdvanceTo(50.0);  // going backwards is a no-op on the clock
  EXPECT_DOUBLE_EQ(m.now(), 100.0);
}

TEST(ChurnModelTest, ObserversSeeEveryFlip) {
  ChurnConfig c;
  c.mean_online_s = 10;
  c.mean_offline_s = 10;
  ChurnModel m(50, c, Rng(5));
  struct Ctx {
    int flips = 0;
    std::vector<bool> last;
  } ctx;
  ctx.last.resize(50);
  for (uint32_t i = 0; i < 50; ++i) ctx.last[i] = m.IsOnline(i);
  m.AddObserver(
      [](void* vctx, uint32_t peer, bool online, double) {
        auto* c2 = static_cast<Ctx*>(vctx);
        ++c2->flips;
        // Each callback must report a genuine state change.
        EXPECT_NE(c2->last[peer], online);
        c2->last[peer] = online;
      },
      &ctx);
  m.AdvanceTo(200.0);
  EXPECT_GT(ctx.flips, 100);  // 50 peers, mean session 10s, 200s horizon
}

TEST(ChurnModelTest, TransitionRateMatchesExpectation) {
  ChurnConfig c;
  c.mean_online_s = 50;
  c.mean_offline_s = 50;
  ChurnModel m(1000, c, Rng(6));
  struct Ctx {
    int flips = 0;
  } ctx;
  m.AddObserver(
      [](void* vctx, uint32_t, bool, double) {
        ++static_cast<Ctx*>(vctx)->flips;
      },
      &ctx);
  double horizon = 2000.0;
  m.AdvanceTo(horizon);
  double expected = m.ExpectedTransitionRate() * 1000 * horizon;
  EXPECT_NEAR(ctx.flips, expected, expected * 0.1);
}

TEST(ChurnModelTest, OnlineCountConsistentWithStates) {
  ChurnModel m(200, ChurnConfig{}, Rng(7));
  m.AdvanceTo(5000.0);
  uint32_t manual = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    if (m.IsOnline(i)) ++manual;
  }
  EXPECT_EQ(manual, m.online_count());
}

TEST(ChurnModelTest, DeterministicGivenSeed) {
  ChurnConfig c;
  ChurnModel a(100, c, Rng(42));
  ChurnModel b(100, c, Rng(42));
  a.AdvanceTo(1000.0);
  b.AdvanceTo(1000.0);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.IsOnline(i), b.IsOnline(i));
  }
}

TEST(ChurnModelTest, ExpectedTransitionRateZeroWhenDisabled) {
  ChurnConfig c;
  c.enabled = false;
  ChurnModel m(10, c, Rng(8));
  EXPECT_DOUBLE_EQ(m.ExpectedTransitionRate(), 0.0);
}

}  // namespace
}  // namespace pdht::sim
