// Correlated-failure scenario tests: the pure recovery-metric analysis
// (ComputeRecoveryMetrics) and the ChurnModel forced-outage mask it is
// built on -- effective-state pinning, observer behaviour, and the
// Rng-stream invariance that keeps scenario runs deterministic relative
// to outage-free ones.

#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/churn.h"

namespace pdht::sim {
namespace {

TEST(ScenarioConfigTest, ValidateRequiresOrderedOutageWindow) {
  ScenarioConfig c;
  EXPECT_TRUE(c.Validate().empty());  // kNone needs nothing
  c.kind = ScenarioKind::kClusterOutage;
  c.outage_start_round = 100;
  c.outage_end_round = 100;
  EXPECT_FALSE(c.Validate().empty());
  c.outage_end_round = 200;
  EXPECT_TRUE(c.Validate().empty());
  EXPECT_STREQ(ScenarioKindName(c.kind), "cluster_outage");
  EXPECT_STREQ(ScenarioKindName(ScenarioKind::kNone), "none");
}

TEST(RecoveryMetricsTest, DipAndRecoveryOnAStepSeries) {
  // Steady 0.9, dip to 0.5 during [10, 20), back to 0.9 from 20 on.
  std::vector<double> s;
  for (int r = 0; r < 10; ++r) s.push_back(0.9);
  for (int r = 10; r < 20; ++r) s.push_back(0.5);
  for (int r = 20; r < 40; ++r) s.push_back(0.9);
  RecoveryMetrics m = ComputeRecoveryMetrics(s, /*outage_start=*/10,
                                             /*heal_round=*/20,
                                             /*window=*/5, 0.95);
  EXPECT_DOUBLE_EQ(m.pre_outage_mean, 0.9);
  EXPECT_DOUBLE_EQ(m.worst_window, 0.5);
  EXPECT_TRUE(m.recovered);
  EXPECT_EQ(m.recovery_round, 20u);  // instantly whole again at the heal
  EXPECT_EQ(m.recovery_rounds, 0u);
}

TEST(RecoveryMetricsTest, SlowRecoveryCountsRoundsPastTheHeal) {
  // The dip persists past the heal: 0.5 until round 28, then 0.9.
  std::vector<double> s;
  for (int r = 0; r < 10; ++r) s.push_back(0.9);
  for (int r = 10; r < 28; ++r) s.push_back(0.5);
  for (int r = 28; r < 60; ++r) s.push_back(0.9);
  RecoveryMetrics m = ComputeRecoveryMetrics(s, 10, 20, 4, 0.95);
  EXPECT_TRUE(m.recovered);
  EXPECT_EQ(m.recovery_round, 28u);
  EXPECT_EQ(m.recovery_rounds, 8u);
}

TEST(RecoveryMetricsTest, NeverRecoveringReportsSeriesSize) {
  std::vector<double> s;
  for (int r = 0; r < 10; ++r) s.push_back(0.9);
  for (int r = 10; r < 30; ++r) s.push_back(0.2);
  RecoveryMetrics m = ComputeRecoveryMetrics(s, 10, 20, 5, 0.95);
  EXPECT_FALSE(m.recovered);
  EXPECT_EQ(m.recovery_round, s.size());
  EXPECT_EQ(m.recovery_rounds, 0u);
  EXPECT_DOUBLE_EQ(m.worst_window, 0.2);
}

TEST(RecoveryMetricsTest, DegenerateInputsAreSafe) {
  // Outage beyond the series: all defaults.
  RecoveryMetrics m =
      ComputeRecoveryMetrics({0.9, 0.9}, /*outage_start=*/10, 20, 5, 0.95);
  EXPECT_DOUBLE_EQ(m.pre_outage_mean, 0.0);
  EXPECT_FALSE(m.recovered);
  // Empty series.
  m = ComputeRecoveryMetrics({}, 0, 0, 5, 0.95);
  EXPECT_FALSE(m.recovered);
  // window = 0 is clamped to 1 instead of dividing by zero.
  m = ComputeRecoveryMetrics({0.9, 0.1, 0.9}, 1, 2, 0, 0.95);
  EXPECT_DOUBLE_EQ(m.worst_window, 0.1);
  EXPECT_TRUE(m.recovered);
}

TEST(ChurnForcedOutageTest, ForceOfflinePinsEffectiveStateAndHealRestores) {
  ChurnConfig c;
  c.enabled = false;  // everyone online, no background flips
  ChurnModel m(10, c, Rng(1));
  EXPECT_TRUE(m.IsOnline(3));
  m.ForceOffline(3);
  EXPECT_FALSE(m.IsOnline(3));
  EXPECT_TRUE(m.IsForcedOffline(3));
  EXPECT_EQ(m.online_count(), 9u);
  m.ForceOffline(3);  // idempotent
  EXPECT_EQ(m.online_count(), 9u);
  m.Heal(3);
  EXPECT_TRUE(m.IsOnline(3));
  EXPECT_FALSE(m.IsForcedOffline(3));
  EXPECT_EQ(m.online_count(), 10u);
  m.Heal(3);  // idempotent
  EXPECT_EQ(m.online_count(), 10u);
}

TEST(ChurnForcedOutageTest, ObserversSeeForcedTransitionsOnce) {
  ChurnConfig c;
  c.enabled = false;
  ChurnModel m(4, c, Rng(2));
  struct Rec {
    std::vector<std::pair<uint32_t, bool>> flips;
  } rec;
  m.AddObserver(
      [](void* ctx, uint32_t peer, bool online, double) {
        static_cast<Rec*>(ctx)->flips.emplace_back(peer, online);
      },
      &rec);
  m.ForceOffline(2);
  m.ForceOffline(2);  // repeat: no second notification
  m.Heal(2);
  ASSERT_EQ(rec.flips.size(), 2u);
  EXPECT_EQ(rec.flips[0], (std::pair<uint32_t, bool>{2, false}));
  EXPECT_EQ(rec.flips[1], (std::pair<uint32_t, bool>{2, true}));
}

TEST(ChurnForcedOutageTest, MaskLeavesUnderlyingRngStreamUntouched) {
  // The determinism contract (sim/churn.h): a forced outage must not
  // consume or reorder any Rng draws -- after the heal, a masked run's
  // effective online pattern reconverges exactly with an outage-free
  // twin fed the same seed.
  ChurnConfig c;
  c.mean_online_s = 50.0;
  c.mean_offline_s = 25.0;
  ChurnModel plain(64, c, Rng(7));
  ChurnModel masked(64, c, Rng(7));

  plain.AdvanceTo(100.0);
  masked.AdvanceTo(100.0);
  for (uint32_t p = 0; p < 16; ++p) masked.ForceOffline(p);
  // During the outage the underlying sessions keep flipping in both.
  for (double t = 110.0; t <= 300.0; t += 10.0) {
    plain.AdvanceTo(t);
    masked.AdvanceTo(t);
    for (uint32_t p = 0; p < 16; ++p) EXPECT_FALSE(masked.IsOnline(p));
  }
  for (uint32_t p = 0; p < 16; ++p) masked.Heal(p);
  // Post-heal: bit-identical effective state, forever.
  for (double t = 310.0; t <= 600.0; t += 10.0) {
    plain.AdvanceTo(t);
    masked.AdvanceTo(t);
    for (uint32_t p = 0; p < 64; ++p) {
      ASSERT_EQ(plain.IsOnline(p), masked.IsOnline(p))
          << "peer " << p << " at t " << t;
    }
    ASSERT_EQ(plain.online_count(), masked.online_count()) << "t " << t;
  }
}

TEST(ChurnForcedOutageTest, ForcedPeerOnlineAtForceTimeCountsDownOnce) {
  // A peer that is *already* offline by churn when forced must not move
  // the count; one that churns back online while forced must stay
  // effectively offline.
  ChurnConfig c;
  c.mean_online_s = 5.0;
  c.mean_offline_s = 5.0;
  ChurnModel m(32, c, Rng(11));
  m.AdvanceTo(50.0);
  const uint32_t count_before = m.online_count();
  uint32_t online_forced = 0;
  for (uint32_t p = 0; p < 32; ++p) {
    if (m.IsOnline(p)) ++online_forced;
    m.ForceOffline(p);
  }
  EXPECT_EQ(m.online_count(), count_before - online_forced);
  EXPECT_EQ(m.online_count(), 0u);  // every peer is now masked
  m.AdvanceTo(200.0);               // churn keeps flipping underneath
  EXPECT_EQ(m.online_count(), 0u);
  for (uint32_t p = 0; p < 32; ++p) m.Heal(p);
  m.AdvanceTo(201.0);
  EXPECT_GT(m.online_count(), 0u);
}

}  // namespace
}  // namespace pdht::sim
