#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace pdht::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(5.0, [&] {});
  q.RunUntil(5.0);
  q.ScheduleAfter(2.0, [&] { fired_at = q.now(); });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueueTest, PastEventsRunAtCurrentTime) {
  EventQueue q;
  q.ScheduleAt(10.0, [] {});
  q.RunUntil(10.0);
  double fired_at = -1.0;
  q.ScheduleAt(1.0, [&] { fired_at = q.now(); });  // in the past
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(1.0, [&] { fired.push_back(1); });
  q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.ScheduleAt(3.0, [&] { fired.push_back(3); });
  uint64_t n = q.RunUntil(2.0);  // inclusive boundary
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.RunUntil(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  q.ScheduleAt(1.0, [&] {
    ++chain;
    q.ScheduleAfter(1.0, [&] { ++chain; });
  });
  q.RunAll();
  EXPECT_EQ(chain, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunAllRespectsMaxEvents) {
  EventQueue q;
  int count = 0;
  // Self-perpetuating chain; must be cut off by the budget.
  std::function<void()> tick = [&] {
    ++count;
    q.ScheduleAfter(1.0, tick);
  };
  q.ScheduleAt(0.0, tick);
  uint64_t ran = q.RunAll(100);
  EXPECT_EQ(ran, 100u);
  EXPECT_EQ(count, 100);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  uint64_t id = q.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue q;
  uint64_t id = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

// Deferred message delivery (net/delivery_model.h) made out-of-order
// ScheduleAt *into the current round* a hot-path operation: every
// in-flight message is one ScheduleAfter, and sub-round delays mean the
// queue constantly interleaves freshly scheduled near-past/near-future
// events with older ones.  These tests pin the exact semantics deferred
// delivery relies on.

TEST(EventQueueTest, PastClampedEventsRunAfterEqualTimeEarlierInsertions) {
  // A past event is clamped to now(); at that clamped time it must still
  // lose the tie against anything scheduled there *earlier* (insertion
  // sequence breaks ties, and clamping does not reorder).
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5.0, [&] { order.push_back(1); });
  q.ScheduleAt(5.0, [&] { order.push_back(2); });
  q.ScheduleAt(4.0, [&] {});  // advance now() to 4.0 first
  q.RunUntil(4.0);
  q.ScheduleAt(1.0, [&] { order.push_back(3); });  // clamped to 4.0
  q.RunAll();
  // The clamped event fires at 4.0, i.e. *before* the 5.0 pair despite
  // being inserted last -- past events do not jump ahead of equal-time
  // earlier insertions, but they do keep their clamped position in time.
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueueTest, MidRoundSchedulingInterleavesByTimeNotInsertion) {
  // The deferred-delivery pattern: a handler firing at t schedules new
  // arrivals at t + delay, which must interleave with already-queued
  // events in pure time order.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(0.10, [&] {
    order.push_back(1);
    q.ScheduleAfter(0.15, [&] { order.push_back(3); });  // t = 0.25
  });
  q.ScheduleAt(0.20, [&] { order.push_back(2); });
  q.ScheduleAt(0.30, [&] { order.push_back(4); });
  q.RunUntil(1.0);  // one round's boundary drain
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueueTest, EqualTimeMidRoundInsertionsKeepInsertionOrder) {
  // Two messages sent back-to-back with identical link delay must be
  // delivered in send order (seq tie-break), never by heap internals.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(0.5, [&] { order.push_back(1); });
  q.ScheduleAt(0.5, [&] { order.push_back(2); });
  q.ScheduleAt(0.5, [&] { order.push_back(3); });
  q.ScheduleAt(0.5, [&] { order.push_back(4); });
  q.RunUntil(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, ClampedPastEventNeverRewindsClock) {
  EventQueue q;
  q.ScheduleAt(3.0, [] {});
  q.RunUntil(3.0);
  double fired_at = -1.0;
  q.ScheduleAt(0.5, [&] { fired_at = q.now(); });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);  // monotone: never back to 0.5
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  uint64_t a = q.ScheduleAt(1.0, [] {});
  q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.RunAll();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace pdht::sim
