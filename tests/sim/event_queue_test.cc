#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace pdht::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(5.0, [&] {});
  q.RunUntil(5.0);
  q.ScheduleAfter(2.0, [&] { fired_at = q.now(); });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueueTest, PastEventsRunAtCurrentTime) {
  EventQueue q;
  q.ScheduleAt(10.0, [] {});
  q.RunUntil(10.0);
  double fired_at = -1.0;
  q.ScheduleAt(1.0, [&] { fired_at = q.now(); });  // in the past
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(1.0, [&] { fired.push_back(1); });
  q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.ScheduleAt(3.0, [&] { fired.push_back(3); });
  uint64_t n = q.RunUntil(2.0);  // inclusive boundary
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.RunUntil(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  q.ScheduleAt(1.0, [&] {
    ++chain;
    q.ScheduleAfter(1.0, [&] { ++chain; });
  });
  q.RunAll();
  EXPECT_EQ(chain, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunAllRespectsMaxEvents) {
  EventQueue q;
  int count = 0;
  // Self-perpetuating chain; must be cut off by the budget.
  std::function<void()> tick = [&] {
    ++count;
    q.ScheduleAfter(1.0, tick);
  };
  q.ScheduleAt(0.0, tick);
  uint64_t ran = q.RunAll(100);
  EXPECT_EQ(ran, 100u);
  EXPECT_EQ(count, 100);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  uint64_t id = q.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue q;
  uint64_t id = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  uint64_t a = q.ScheduleAt(1.0, [] {});
  q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.RunAll();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace pdht::sim
