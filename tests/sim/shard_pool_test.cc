// ShardPool unit tests: exactly-once task execution under chunked
// claiming, barrier re-park across many back-to-back Run() cycles, the
// single-thread inline path, and a contention stress that gives TSan
// (ctest -R "^sim_" under PDHT_TSAN=ON) real interleavings to chew on.

#include "sim/shard_pool.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#define CHECK_TRUE(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "FAILED %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                              \
      std::exit(1);                                               \
    }                                                             \
  } while (0)

namespace {

using pdht::sim::ShardPool;

// Every task index in [0, n) runs exactly once, no matter the explicit
// chunk size -- including chunks that don't divide n, chunks larger than
// n, and the auto heuristic (chunk = 0).
void TestExactlyOnceAcrossChunkSizes() {
  for (uint32_t threads : {1u, 2u, 4u}) {
    ShardPool pool(threads);
    for (uint32_t chunk : {0u, 1u, 3u, 7u, 64u, 1000u}) {
      constexpr uint32_t kTasks = 501;  // odd, not a multiple of any chunk
      std::vector<std::atomic<uint32_t>> hits(kTasks);
      for (auto& h : hits) h.store(0);
      pool.Run(
          kTasks,
          [&hits](uint32_t /*worker*/, uint32_t task) {
            hits[task].fetch_add(1, std::memory_order_relaxed);
          },
          chunk);
      for (uint32_t t = 0; t < kTasks; ++t) {
        CHECK_TRUE(hits[t].load() == 1);
      }
    }
  }
}

// Worker indices stay in range and every task lands on exactly one of
// them (the caller participates as worker 0; whether it wins any claims
// is a scheduling accident, so only the range and the total are
// asserted here -- caller participation is pinned by the 1-thread test).
void TestWorkerIndexRange() {
  constexpr uint32_t kThreads = 4;
  ShardPool pool(kThreads);
  constexpr uint32_t kTasks = 10000;
  std::vector<std::atomic<uint32_t>> per_worker(kThreads);
  for (auto& w : per_worker) w.store(0);
  pool.Run(
      kTasks,
      [&per_worker](uint32_t worker, uint32_t /*task*/) {
        CHECK_TRUE(worker < kThreads);
        per_worker[worker].fetch_add(1, std::memory_order_relaxed);
      },
      1);
  uint32_t total = 0;
  for (auto& w : per_worker) total += w.load();
  CHECK_TRUE(total == kTasks);
}

// The barrier re-parks cleanly: many consecutive arm/drain cycles on one
// pool must each see a fresh claim counter and a complete task set.
// This is the regression surface for generation-counter bugs (a worker
// missing a wake, or re-running a stale job after the barrier).
void TestBarrierReparkCycles() {
  ShardPool pool(4);
  constexpr int kCycles = 300;
  std::atomic<uint64_t> sum{0};
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const uint32_t tasks = 1 + static_cast<uint32_t>(cycle % 17);
    sum.store(0);
    pool.Run(tasks, [&sum](uint32_t /*worker*/, uint32_t task) {
      sum.fetch_add(task + 1, std::memory_order_relaxed);
    });
    // 1 + 2 + ... + tasks: every task of THIS cycle ran, none twice,
    // and nothing leaked in from a previous generation.
    CHECK_TRUE(sum.load() ==
               static_cast<uint64_t>(tasks) * (tasks + 1) / 2);
  }
}

// num_threads == 1 runs inline (no workers to hand off to) and in task
// order -- callers may rely on the 1-thread pool being a plain loop.
void TestSingleThreadInlineOrder() {
  ShardPool pool(1);
  CHECK_TRUE(pool.num_threads() == 1);
  std::vector<uint32_t> order;
  pool.Run(100, [&order](uint32_t worker, uint32_t task) {
    CHECK_TRUE(worker == 0);
    order.push_back(task);  // unsynchronized: inline path is one thread
  });
  CHECK_TRUE(order.size() == 100);
  for (uint32_t t = 0; t < 100; ++t) CHECK_TRUE(order[t] == t);
}

// Contention stress: tiny tasks, small chunks, many cycles.  Correctness
// assertion is the per-cycle checksum; under TSan this doubles as the
// data-race probe for the claim counter / barrier handshake.
void TestContentionStress() {
  ShardPool pool(4);
  constexpr int kCycles = 50;
  constexpr uint32_t kTasks = 4096;
  std::vector<uint8_t> ran(kTasks);
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::fill(ran.begin(), ran.end(), 0);
    pool.Run(
        kTasks,
        [&ran](uint32_t /*worker*/, uint32_t task) {
          // Distinct tasks write distinct bytes: any double-claim is a
          // TSan-visible race on ran[task] as well as a checksum miss.
          ran[task] = 1;
        },
        2);
    const uint64_t total =
        std::accumulate(ran.begin(), ran.end(), uint64_t{0});
    CHECK_TRUE(total == kTasks);
  }
}

}  // namespace

int main() {
  TestExactlyOnceAcrossChunkSizes();
  TestWorkerIndexRange();
  TestBarrierReparkCycles();
  TestSingleThreadInlineOrder();
  TestContentionStress();
  std::printf("shard_pool_test: all tests passed\n");
  return 0;
}
