#include "sim/round_engine.h"

#include <gtest/gtest.h>

namespace pdht::sim {
namespace {

TEST(RoundEngineTest, RunsRequestedRounds) {
  RoundEngine e;
  int calls = 0;
  e.AddActor("counter", [&](RoundContext&) { ++calls; });
  e.Run(5);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(e.current_round(), 5u);
}

TEST(RoundEngineTest, ContextCarriesRoundAndTime) {
  RoundEngine e(2.0);  // 2-second rounds
  std::vector<double> times;
  std::vector<uint64_t> rounds;
  e.AddActor("probe", [&](RoundContext& ctx) {
    times.push_back(ctx.time);
    rounds.push_back(ctx.round);
  });
  e.Run(3);
  EXPECT_EQ(times, (std::vector<double>{0.0, 2.0, 4.0}));
  EXPECT_EQ(rounds, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(RoundEngineTest, ActorsRunInRegistrationOrder) {
  RoundEngine e;
  std::vector<int> order;
  e.AddActor("first", [&](RoundContext&) { order.push_back(1); });
  e.AddActor("second", [&](RoundContext&) { order.push_back(2); });
  e.Run(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RoundEngineTest, IntraRoundEventsRunBeforeNextRound) {
  RoundEngine e;
  std::vector<std::string> log;
  e.AddActor("actor", [&](RoundContext& ctx) {
    log.push_back("actor@" + std::to_string(ctx.round));
    ctx.events->ScheduleAfter(0.5, [&log, r = ctx.round] {
      log.push_back("event@" + std::to_string(r));
    });
  });
  e.Run(2);
  EXPECT_EQ(log, (std::vector<std::string>{"actor@0", "event@0", "actor@1",
                                           "event@1"}));
}

TEST(RoundEngineTest, MetricsRecordedEveryRound) {
  RoundEngine e;
  int v = 0;
  e.AddActor("inc", [&](RoundContext&) { v += 10; });
  e.AddMetric("v", [&](const RoundContext&) {
    return static_cast<double>(v);
  });
  e.Run(3);
  const TimeSeries& s = e.Series("v");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(2), 30.0);
}

TEST(RoundEngineTest, CounterRateMetricReportsDeltas) {
  RoundEngine e;
  e.AddActor("traffic", [&](RoundContext& ctx) {
    ctx.counters->Get("msg.test").Add(7);
  });
  e.AddCounterRateMetric("rate", "msg.test");
  e.Run(4);
  const TimeSeries& s = e.Series("rate");
  ASSERT_EQ(s.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(s.at(i), 7.0) << "round " << i;
  }
}

TEST(RoundEngineTest, CounterRateMetricSumsPrefix) {
  RoundEngine e;
  e.AddActor("traffic", [&](RoundContext& ctx) {
    ctx.counters->Get("msg.a.x").Add(1);
    ctx.counters->Get("msg.a.y").Add(2);
    ctx.counters->Get("msg.b.z").Add(100);
  });
  e.AddCounterRateMetric("a_rate", "msg.a.");
  e.Run(2);
  EXPECT_DOUBLE_EQ(e.Series("a_rate").at(1), 3.0);
}

TEST(RoundEngineTest, SeriesThrowsOnUnknownName) {
  RoundEngine e;
  EXPECT_THROW(e.Series("nope"), std::out_of_range);
  EXPECT_FALSE(e.HasSeries("nope"));
}

TEST(RoundEngineTest, SeriesNamesListsAll) {
  RoundEngine e;
  e.AddMetric("m1", [](const RoundContext&) { return 0.0; });
  e.AddMetric("m2", [](const RoundContext&) { return 0.0; });
  auto names = e.SeriesNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(RoundEngineTest, RunCanBeCalledRepeatedly) {
  RoundEngine e;
  int calls = 0;
  e.AddActor("c", [&](RoundContext&) { ++calls; });
  e.Run(2);
  e.Run(3);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(e.current_round(), 5u);
}

TEST(RoundEngineTest, TracksDrainedEventCountsPerRoundAndTotal) {
  // The boundary drain's accounting, which delivery-model experiments
  // read to see in-flight traffic: last_round_events() is the most
  // recent round's drained count, total_events_run() the running sum.
  RoundEngine e;
  e.AddActor("sender", [](RoundContext& ctx) {
    // Two sub-round "deliveries" in round 0, one in every later round.
    ctx.events->ScheduleAfter(0.25, [] {});
    if (ctx.round == 0) ctx.events->ScheduleAfter(0.5, [] {});
  });
  e.Run(1);
  EXPECT_EQ(e.last_round_events(), 2u);
  EXPECT_EQ(e.total_events_run(), 2u);
  e.Run(2);
  EXPECT_EQ(e.last_round_events(), 1u);
  EXPECT_EQ(e.total_events_run(), 4u);
}

}  // namespace
}  // namespace pdht::sim
