#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdht {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.variance(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.variance(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Median(), 42.0);
}

TEST(HistogramTest, MeanAndVariance) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  // Sample variance of this classic data set: 32/7.
  EXPECT_NEAR(h.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(h.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(HistogramTest, MinMaxTrackExtremes) {
  Histogram h;
  h.Add(3.0);
  h.Add(-1.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(HistogramTest, SumAccumulates) {
  Histogram h;
  h.Add(1.5);
  h.Add(2.5);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
}

TEST(HistogramTest, QuantilesOnUniformSequence) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 99.0, 1.0);
}

TEST(HistogramTest, QuantileAfterInterleavedAdds) {
  Histogram h;
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
  h.Add(1.0);  // re-sorting must happen lazily
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(BucketHistogramTest, PlacesValuesInBuckets) {
  BucketHistogram h(0.0, 10.0, 5);  // width 2
  h.Add(1.0);
  h.Add(3.0);
  h.Add(3.5);
  h.Add(9.9);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(4), 1u);
}

TEST(BucketHistogramTest, UnderAndOverflow) {
  BucketHistogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);   // hi is exclusive
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(BucketHistogramTest, BucketLowBoundaries) {
  BucketHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 18.0);
}

TEST(BucketHistogramTest, RenderProducesOneLinePerBucket) {
  BucketHistogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  std::string out = h.Render();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(HistogramTest, SampleCapKeepsMomentsExact) {
  Histogram capped, full;
  capped.SetSampleCap(64);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 7919) % 1000);
    capped.Add(v);
    full.Add(v);
  }
  // Moments are Welford-accumulated, independent of retention.
  EXPECT_EQ(capped.count(), full.count());
  EXPECT_DOUBLE_EQ(capped.sum(), full.sum());
  EXPECT_DOUBLE_EQ(capped.mean(), full.mean());
  EXPECT_DOUBLE_EQ(capped.min(), full.min());
  EXPECT_DOUBLE_EQ(capped.max(), full.max());
}

TEST(HistogramTest, SampleCapBoundsRetentionAndEstimatesQuantiles) {
  Histogram h;
  h.SetSampleCap(128);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<double>(i % 1000));  // uniform over [0, 1000)
  }
  // Quantiles come from an at-most-cap systematic subsample: still in
  // the right neighbourhood for a uniform stream.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 120.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 120.0);
  EXPECT_EQ(h.count(), 100000u);
}

TEST(HistogramTest, SampleCapIsDeterministic) {
  Histogram a, b;
  a.SetSampleCap(32);
  b.SetSampleCap(32);
  for (int i = 0; i < 5000; ++i) {
    a.Add(static_cast<double>((i * 31) % 97));
    b.Add(static_cast<double>((i * 31) % 97));
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

}  // namespace
}  // namespace pdht
