#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace pdht {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.variance(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.variance(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Median(), 42.0);
}

TEST(HistogramTest, MeanAndVariance) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  // Sample variance of this classic data set: 32/7.
  EXPECT_NEAR(h.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(h.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(HistogramTest, MinMaxTrackExtremes) {
  Histogram h;
  h.Add(3.0);
  h.Add(-1.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(HistogramTest, SumAccumulates) {
  Histogram h;
  h.Add(1.5);
  h.Add(2.5);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
}

TEST(HistogramTest, QuantilesOnUniformSequence) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 99.0, 1.0);
}

TEST(HistogramTest, QuantileAfterInterleavedAdds) {
  Histogram h;
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
  h.Add(1.0);  // re-sorting must happen lazily
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(BucketHistogramTest, PlacesValuesInBuckets) {
  BucketHistogram h(0.0, 10.0, 5);  // width 2
  h.Add(1.0);
  h.Add(3.0);
  h.Add(3.5);
  h.Add(9.9);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(4), 1u);
}

TEST(BucketHistogramTest, UnderAndOverflow) {
  BucketHistogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);   // hi is exclusive
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(BucketHistogramTest, BucketLowBoundaries) {
  BucketHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 18.0);
}

TEST(BucketHistogramTest, RenderProducesOneLinePerBucket) {
  BucketHistogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  std::string out = h.Render();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(HistogramTest, SampleCapKeepsMomentsExact) {
  Histogram capped, full;
  capped.SetSampleCap(64);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>((i * 7919) % 1000);
    capped.Add(v);
    full.Add(v);
  }
  // Moments are Welford-accumulated, independent of retention.
  EXPECT_EQ(capped.count(), full.count());
  EXPECT_DOUBLE_EQ(capped.sum(), full.sum());
  EXPECT_DOUBLE_EQ(capped.mean(), full.mean());
  EXPECT_DOUBLE_EQ(capped.min(), full.min());
  EXPECT_DOUBLE_EQ(capped.max(), full.max());
}

TEST(HistogramTest, SampleCapBoundsRetentionAndEstimatesQuantiles) {
  Histogram h;
  h.SetSampleCap(128);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<double>(i % 1000));  // uniform over [0, 1000)
  }
  // Quantiles come from an at-most-cap systematic subsample: still in
  // the right neighbourhood for a uniform stream.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 120.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 120.0);
  EXPECT_EQ(h.count(), 100000u);
}

TEST(HistogramTest, SampleCapIsDeterministic) {
  Histogram a, b;
  a.SetSampleCap(32);
  b.SetSampleCap(32);
  for (int i = 0; i < 5000; ++i) {
    a.Add(static_cast<double>((i * 31) % 97));
    b.Add(static_cast<double>((i * 31) % 97));
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

// --- P² streaming quantile sketch --------------------------------------
//
// Accuracy is checked against the exact nearest-rank percentile of the
// same stream; the P² paper reports relative errors well under a percent
// for smooth distributions at these stream lengths, so the tolerances
// below (a few percent of the true value) are generous but would still
// catch an off-by-one-marker or interpolation bug immediately.

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

TEST(P2QuantileTest, ExactUntilFiveObservations) {
  P2Quantile p(0.5);
  EXPECT_EQ(p.Value(), 0.0);  // empty
  p.Add(9.0);
  EXPECT_DOUBLE_EQ(p.Value(), 9.0);
  p.Add(1.0);
  p.Add(5.0);
  EXPECT_DOUBLE_EQ(p.Value(), 5.0);  // exact median of {1, 5, 9}
}

TEST(P2QuantileTest, UniformStreamMatchesExactPercentiles) {
  Rng rng(12345);
  std::vector<double> values;
  values.reserve(50000);
  for (int i = 0; i < 50000; ++i) values.push_back(rng.UniformDouble() * 100.0);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    P2Quantile p(q);
    for (double v : values) p.Add(v);
    EXPECT_NEAR(p.Value(), ExactQuantile(values, q), 1.5)
        << "uniform q=" << q;
  }
}

TEST(P2QuantileTest, ExponentialStreamMatchesExactPercentiles) {
  // Heavy right tail: the hard case for five-marker interpolation.
  Rng rng(67890);
  std::vector<double> values;
  values.reserve(50000);
  for (int i = 0; i < 50000; ++i) values.push_back(rng.Exponential(0.1));
  for (double q : {0.5, 0.95, 0.99}) {
    P2Quantile p(q);
    for (double v : values) p.Add(v);
    const double exact = ExactQuantile(values, q);
    EXPECT_NEAR(p.Value(), exact, 0.05 * exact) << "exponential q=" << q;
  }
}

TEST(P2QuantileTest, SortedAndShuffledStreamsAgree) {
  // Arrival order changes the estimate slightly (the sketch is
  // order-sensitive by construction) but both must land on the truth.
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(static_cast<double>(i));
  P2Quantile sorted_in(0.95);
  for (double v : values) sorted_in.Add(v);
  Rng rng(42);
  rng.Shuffle(values.data(), values.size());
  P2Quantile shuffled_in(0.95);
  for (double v : values) shuffled_in.Add(v);
  EXPECT_NEAR(sorted_in.Value(), 9500.0, 100.0);
  EXPECT_NEAR(shuffled_in.Value(), 9500.0, 100.0);
}

TEST(HistogramTest, StreamingQuantilesRetainNothingAndStayAccurate) {
  Histogram streaming, exact;
  streaming.TrackStreamingQuantiles({0.5, 0.95, 0.99});
  EXPECT_TRUE(streaming.streaming());
  Rng rng(2024);
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.Exponential(0.02);
    streaming.Add(v);
    exact.Add(v);
  }
  // Moments are Welford-accumulated, unaffected by the sketch switch.
  EXPECT_EQ(streaming.count(), exact.count());
  EXPECT_DOUBLE_EQ(streaming.mean(), exact.mean());
  EXPECT_DOUBLE_EQ(streaming.sum(), exact.sum());
  EXPECT_DOUBLE_EQ(streaming.min(), exact.min());
  EXPECT_DOUBLE_EQ(streaming.max(), exact.max());
  // Quantile(q) answers from the nearest tracked sketch.
  for (double q : {0.5, 0.95, 0.99}) {
    const double truth = exact.Quantile(q);
    EXPECT_NEAR(streaming.Quantile(q), truth, 0.05 * truth) << "q=" << q;
  }
}

TEST(HistogramTest, StreamingQuantileAnswersFromNearestTrackedSketch) {
  Histogram h;
  h.TrackStreamingQuantiles({0.5, 0.99});
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // q=0.6 has no sketch; the median sketch is nearest.
  EXPECT_DOUBLE_EQ(h.Quantile(0.6), h.Quantile(0.5));
  // q=0.9 rounds to the p99 sketch.
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(HistogramTest, StreamingResetRestartsTheSketches) {
  Histogram h;
  h.TrackStreamingQuantiles({0.5});
  for (int i = 0; i < 100; ++i) h.Add(1000.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  for (int i = 0; i < 100; ++i) h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

}  // namespace
}  // namespace pdht
