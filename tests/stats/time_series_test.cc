#include "stats/time_series.h"

#include <gtest/gtest.h>

namespace pdht {
namespace {

TEST(TimeSeriesTest, EmptyBehaviour) {
  TimeSeries s("x");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.MeanOver(0, 10), 0.0);
  EXPECT_EQ(s.TailMean(5), 0.0);
  EXPECT_EQ(s.name(), "x");
}

TEST(TimeSeriesTest, AppendAndAccess) {
  TimeSeries s;
  s.Append(1.0);
  s.Append(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);
}

TEST(TimeSeriesTest, MeanOverRange) {
  TimeSeries s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Append(v);
  EXPECT_DOUBLE_EQ(s.MeanOver(0, 4), 2.5);
  EXPECT_DOUBLE_EQ(s.MeanOver(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(s.MeanOver(2, 2), 0.0);  // empty range
}

TEST(TimeSeriesTest, MeanOverClampsBounds) {
  TimeSeries s;
  s.Append(10.0);
  s.Append(20.0);
  EXPECT_DOUBLE_EQ(s.MeanOver(0, 100), 15.0);
  EXPECT_DOUBLE_EQ(s.MeanOver(50, 100), 0.0);
}

TEST(TimeSeriesTest, TailMean) {
  TimeSeries s;
  for (double v : {100.0, 1.0, 2.0, 3.0}) s.Append(v);
  EXPECT_DOUBLE_EQ(s.TailMean(3), 2.0);
  EXPECT_DOUBLE_EQ(s.TailMean(100), 26.5);  // whole series
  EXPECT_DOUBLE_EQ(s.TailMean(0), 0.0);
}

TEST(TimeSeriesTest, MovingAverageWindowOne) {
  TimeSeries s;
  for (double v : {1.0, 2.0, 3.0}) s.Append(v);
  auto ma = s.MovingAverage(1);
  ASSERT_EQ(ma.size(), 3u);
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[2], 3.0);
}

TEST(TimeSeriesTest, MovingAverageSmooths) {
  TimeSeries s;
  for (double v : {0.0, 10.0, 0.0, 10.0}) s.Append(v);
  auto ma = s.MovingAverage(2);
  ASSERT_EQ(ma.size(), 4u);
  EXPECT_DOUBLE_EQ(ma[0], 0.0);   // prefix window of 1
  EXPECT_DOUBLE_EQ(ma[1], 5.0);
  EXPECT_DOUBLE_EQ(ma[2], 5.0);
  EXPECT_DOUBLE_EQ(ma[3], 5.0);
}

TEST(TimeSeriesTest, MovingAverageZeroWindowTreatedAsOne) {
  TimeSeries s;
  s.Append(4.0);
  auto ma = s.MovingAverage(0);
  ASSERT_EQ(ma.size(), 1u);
  EXPECT_DOUBLE_EQ(ma[0], 4.0);
}

TEST(TimeSeriesTest, FirstIndexAtLeast) {
  TimeSeries s;
  for (double v : {0.1, 0.5, 0.9, 0.5}) s.Append(v);
  EXPECT_EQ(s.FirstIndexAtLeast(0.5), 1u);
  EXPECT_EQ(s.FirstIndexAtLeast(0.9), 2u);
  EXPECT_EQ(s.FirstIndexAtLeast(0.5, 2), 2u);
  EXPECT_EQ(s.FirstIndexAtLeast(2.0), 4u);  // not found -> size()
}

TEST(TimeSeriesTest, FirstIndexAtMost) {
  TimeSeries s;
  for (double v : {0.9, 0.5, 0.1}) s.Append(v);
  EXPECT_EQ(s.FirstIndexAtMost(0.5), 1u);
  EXPECT_EQ(s.FirstIndexAtMost(0.0), 3u);
}

}  // namespace
}  // namespace pdht
