#include "stats/table_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace pdht {
namespace {

TEST(TableWriterTest, TextContainsHeaderAndRows) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, ColumnsAligned) {
  TableWriter t({"col", "x"});
  t.AddRow({"longvalue", "1"});
  std::string text = t.ToText();
  // Header line must be padded to at least the widest cell.
  size_t header_end = text.find('\n');
  size_t rule_end = text.find('\n', header_end + 1);
  std::string rule = text.substr(header_end + 1, rule_end - header_end - 1);
  EXPECT_GE(rule.size(), std::string("longvalue  x").size());
}

TEST(TableWriterTest, NumericRowFormatting) {
  TableWriter t({"v"});
  t.AddNumericRow({3.14159265}, 3);
  EXPECT_EQ(t.rows()[0][0], "3.14");
}

TEST(TableWriterTest, FormatDouble) {
  EXPECT_EQ(TableWriter::FormatDouble(0.5, 4), "0.5");
  EXPECT_EQ(TableWriter::FormatDouble(20000.0, 6), "20000");
}

TEST(TableWriterTest, CsvBasic) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"name"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableWriterTest, WriteCsvFileRoundTrip) {
  TableWriter t({"k", "v"});
  t.AddRow({"x", "1"});
  std::string path = "/tmp/pdht_table_writer_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "x,1");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter t({"a"});
  EXPECT_FALSE(t.WriteCsvFile("/nonexistent-dir/zzz/file.csv"));
}

TEST(TableWriterTest, WriteCsvFileFailureReportsPathAndErrnoContext) {
  TableWriter t({"a"});
  const std::string path = "/nonexistent-dir/zzz/file.csv";
  std::string error;
  ASSERT_FALSE(t.WriteCsvFile(path, &error));
  // The diagnosis names the failing path and carries an OS-level cause
  // beyond the bare path (strerror text, e.g. "No such file or
  // directory").
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_GT(error.size(), path.size() + 2) << error;
}

TEST(TableWriterTest, WriteCsvFileSuccessClearsError) {
  TableWriter t({"a"});
  t.AddRow({"1"});
  std::string error = "stale";
  std::string path = "/tmp/pdht_table_writer_err_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path, &error));
  EXPECT_TRUE(error.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdht
