#include "stats/counter.h"

#include <gtest/gtest.h>

namespace pdht {
namespace {

TEST(CounterTest, StartsAtZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, AddAccumulates) {
  Counter c;
  c.Add();
  c.Add(5);
  EXPECT_EQ(c.value(), 6u);
}

TEST(CounterTest, ResetClears) {
  Counter c;
  c.Add(10);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterRegistryTest, GetCreatesOnFirstUse) {
  CounterRegistry reg;
  EXPECT_EQ(reg.Value("msg.x"), 0u);
  reg.Get("msg.x").Add(3);
  EXPECT_EQ(reg.Value("msg.x"), 3u);
}

TEST(CounterRegistryTest, GetReturnsStableReference) {
  CounterRegistry reg;
  Counter& a = reg.Get("a");
  reg.Get("b").Add();
  reg.Get("c").Add();
  a.Add(7);
  EXPECT_EQ(reg.Value("a"), 7u);
}

TEST(CounterRegistryTest, ValueOfUnknownIsZero) {
  CounterRegistry reg;
  EXPECT_EQ(reg.Value("never-created"), 0u);
}

TEST(CounterRegistryTest, SumWithPrefix) {
  CounterRegistry reg;
  reg.Get("msg.dht.lookup").Add(10);
  reg.Get("msg.dht.insert").Add(5);
  reg.Get("msg.unstructured.walk").Add(100);
  reg.Get("msg.total").Add(115);
  EXPECT_EQ(reg.SumWithPrefix("msg.dht."), 15u);
  EXPECT_EQ(reg.SumWithPrefix("msg.unstructured."), 100u);
  EXPECT_EQ(reg.SumWithPrefix("msg."), 230u);
  EXPECT_EQ(reg.SumWithPrefix("zzz"), 0u);
}

TEST(CounterRegistryTest, SumWithPrefixExactNameMatch) {
  CounterRegistry reg;
  reg.Get("msg.total").Add(42);
  EXPECT_EQ(reg.SumWithPrefix("msg.total"), 42u);
}

TEST(CounterRegistryTest, PrefixDoesNotMatchSiblings) {
  CounterRegistry reg;
  reg.Get("msg.dht").Add(1);
  reg.Get("msg.dhtx").Add(2);
  // "msg.dht" as a prefix matches both (string prefix semantics)...
  EXPECT_EQ(reg.SumWithPrefix("msg.dht"), 3u);
  // ...but the dotted convention isolates categories.
  EXPECT_EQ(reg.SumWithPrefix("msg.dht."), 0u);
}

TEST(CounterRegistryTest, TotalSumsEverything) {
  CounterRegistry reg;
  reg.Get("a").Add(1);
  reg.Get("b").Add(2);
  reg.Get("c").Add(3);
  EXPECT_EQ(reg.Total(), 6u);
}

TEST(CounterRegistryTest, ResetAllKeepsNames) {
  CounterRegistry reg;
  reg.Get("a").Add(5);
  reg.Get("b").Add(6);
  reg.ResetAll();
  EXPECT_EQ(reg.Value("a"), 0u);
  EXPECT_EQ(reg.Value("b"), 0u);
  EXPECT_EQ(reg.Snapshot().size(), 2u);
}

TEST(CounterRegistryTest, SnapshotSortedByName) {
  CounterRegistry reg;
  reg.Get("zeta").Add(1);
  reg.Get("alpha").Add(2);
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[1].first, "zeta");
}

TEST(CounterRegistryTest, ReportContainsEntries) {
  CounterRegistry reg;
  reg.Get("msg.x").Add(9);
  std::string report = reg.Report();
  EXPECT_NE(report.find("msg.x = 9"), std::string::npos);
}

}  // namespace
}  // namespace pdht
