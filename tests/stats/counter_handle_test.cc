// Coverage for the interned-handle fast path of CounterRegistry
// (Intern/Add(id)/Value(id) + prefix groups), and its equivalence with
// the string-keyed compatibility API.  The string API itself is covered
// by counter_test.cc, unchanged from before the handle refactor.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/counter.h"

namespace pdht {
namespace {

TEST(CounterInternTest, IdsAreDenseAndStable) {
  CounterRegistry reg;
  CounterId a = reg.Intern("msg.a");
  CounterId b = reg.Intern("msg.b");
  CounterId c = reg.Intern("msg.c");
  // Dense: 0,1,2 in intern order.
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(reg.NumCounters(), 3u);
  // Stable: re-interning any name yields the same id, forever.
  EXPECT_EQ(reg.Intern("msg.a"), a);
  EXPECT_EQ(reg.Intern("msg.c"), c);
  reg.Intern("msg.d");
  EXPECT_EQ(reg.Intern("msg.b"), b);
  EXPECT_EQ(reg.NumCounters(), 4u);
}

TEST(CounterInternTest, NameOfRoundTrips) {
  CounterRegistry reg;
  CounterId id = reg.Intern("msg.dht.lookup");
  EXPECT_EQ(reg.NameOf(id), "msg.dht.lookup");
}

TEST(CounterInternTest, AddByIdAgreesWithStringApi) {
  CounterRegistry reg;
  CounterId id = reg.Intern("msg.x");
  reg.Add(id);
  reg.Add(id, 5);
  // Id reads == string reads.
  EXPECT_EQ(reg.Value(id), 6u);
  EXPECT_EQ(reg.Value("msg.x"), 6u);
  // Mixing the APIs hits the same slot in both directions.
  reg.Get("msg.x").Add(4);
  EXPECT_EQ(reg.Value(id), 10u);
  EXPECT_EQ(reg.Get("msg.x").value(), 10u);
}

TEST(CounterInternTest, GetInternsTheSameId) {
  CounterRegistry reg;
  reg.Get("msg.y").Add(3);
  CounterId id = reg.Intern("msg.y");
  EXPECT_EQ(reg.Value(id), 3u);
}

TEST(CounterInternTest, HandleReferencesSurviveGrowth) {
  CounterRegistry reg;
  Counter& a = reg.Get("a");
  // Force the flat value array through several growth reallocations.
  for (int i = 0; i < 100; ++i) reg.Intern("grow." + std::to_string(i));
  a.Add(7);
  EXPECT_EQ(reg.Value("a"), 7u);
  EXPECT_EQ(a.value(), 7u);
}

TEST(CounterInternTest, ResetAllZeroesIdSlots) {
  CounterRegistry reg;
  CounterId id = reg.Intern("msg.z");
  reg.Add(id, 9);
  reg.ResetAll();
  EXPECT_EQ(reg.Value(id), 0u);
  EXPECT_EQ(reg.NumCounters(), 1u);  // names/ids retained
}

TEST(PrefixGroupTest, GroupSumMatchesSumWithPrefix) {
  CounterRegistry reg;
  reg.Get("msg.dht.lookup").Add(10);
  reg.Get("msg.dht.insert").Add(5);
  reg.Get("msg.unstructured.walk").Add(100);
  reg.Get("msg.total").Add(115);
  GroupId dht = reg.InternPrefix("msg.dht.");
  GroupId all = reg.InternPrefix("msg.");
  GroupId none = reg.InternPrefix("zzz");
  EXPECT_EQ(reg.GroupSum(dht), reg.SumWithPrefix("msg.dht."));
  EXPECT_EQ(reg.GroupSum(dht), 15u);
  EXPECT_EQ(reg.GroupSum(all), reg.SumWithPrefix("msg."));
  EXPECT_EQ(reg.GroupSum(none), 0u);
}

TEST(PrefixGroupTest, MembershipIncludesLateInternedCounters) {
  CounterRegistry reg;
  reg.Get("msg.dht.lookup").Add(1);
  GroupId dht = reg.InternPrefix("msg.dht.");
  EXPECT_EQ(reg.GroupMembers(dht).size(), 1u);
  // Counters interned after the group joins it, via either API.
  CounterId ins = reg.Intern("msg.dht.insert");
  reg.Add(ins, 2);
  reg.Get("msg.dht.response").Add(4);
  reg.Get("msg.maint.probe").Add(100);  // non-member stays out
  EXPECT_EQ(reg.GroupMembers(dht).size(), 3u);
  EXPECT_EQ(reg.GroupSum(dht), 7u);
  EXPECT_EQ(reg.GroupSum(dht), reg.SumWithPrefix("msg.dht."));
}

TEST(PrefixGroupTest, InternPrefixIsIdempotent) {
  CounterRegistry reg;
  GroupId a = reg.InternPrefix("msg.");
  GroupId b = reg.InternPrefix("msg.");
  EXPECT_EQ(a, b);
  reg.Get("msg.x").Add(1);
  EXPECT_EQ(reg.GroupSum(a), 1u);
}

TEST(PrefixGroupTest, ExactNameAndSiblingSemanticsMatchLegacy) {
  CounterRegistry reg;
  reg.Get("msg.dht").Add(1);
  reg.Get("msg.dhtx").Add(2);
  reg.Get("msg.total").Add(42);
  // Same string-prefix semantics as SumWithPrefix: "msg.dht" matches both
  // siblings, the dotted convention isolates, an exact name matches itself.
  EXPECT_EQ(reg.GroupSum(reg.InternPrefix("msg.dht")), 3u);
  EXPECT_EQ(reg.GroupSum(reg.InternPrefix("msg.dht.")), 0u);
  EXPECT_EQ(reg.GroupSum(reg.InternPrefix("msg.total")), 42u);
}

TEST(PrefixGroupTest, RandomizedEquivalenceWithLegacySums) {
  // Interleave counter interns and group interns in a fixed pseudo-random
  // order and check every group always equals the legacy walk.
  CounterRegistry reg;
  const std::vector<std::string> names = {
      "msg.dht.lookup", "msg.dht.insert",  "msg.dht.response",
      "msg.maint.probe", "msg.maint.stab", "msg.replica.push",
      "msg.unstructured.walk", "msg.total", "hit.count"};
  const std::vector<std::string> prefixes = {"msg.", "msg.dht.",
                                             "msg.maint.", "msg.replica.",
                                             "msg.total", "hit."};
  std::vector<GroupId> groups;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t step = 0; step < 64; ++step) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    if (step % 3 == 0 && groups.size() < prefixes.size()) {
      groups.push_back(reg.InternPrefix(prefixes[groups.size()]));
    } else {
      const std::string& name = names[state % names.size()];
      reg.Add(reg.Intern(name), state % 17);
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      EXPECT_EQ(reg.GroupSum(groups[g]), reg.SumWithPrefix(prefixes[g]))
          << "prefix " << prefixes[g] << " at step " << step;
    }
  }
}

}  // namespace
}  // namespace pdht
