#include "stats/ascii_chart.h"

#include <gtest/gtest.h>

namespace pdht {
namespace {

TEST(AsciiChartTest, EmptyChart) {
  AsciiChart c;
  EXPECT_EQ(c.Render(), "(empty chart)\n");
}

TEST(AsciiChartTest, SingleSeriesRenders) {
  AsciiChart c(32, 8);
  c.AddSeries("line", {1.0, 2.0, 3.0, 4.0}, '*');
  std::string out = c.Render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend: *=line"), std::string::npos);
}

TEST(AsciiChartTest, MarkersForAllSeriesAppear) {
  AsciiChart c(32, 8);
  c.AddSeries("a", {1.0, 5.0}, 'a');
  c.AddSeries("b", {5.0, 1.0}, 'b');
  std::string out = c.Render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChartTest, HigherValuesAppearOnHigherRows) {
  AsciiChart c(16, 8);
  c.AddSeries("s", {0.0, 10.0}, '#');
  std::string out = c.Render();
  // First '#' found scanning top-down must be the max value's column (the
  // right end).
  size_t first_hash_line = out.find('#');
  ASSERT_NE(first_hash_line, std::string::npos);
  size_t line_start = out.rfind('\n', first_hash_line);
  size_t col = first_hash_line - (line_start + 1);
  EXPECT_GT(col, 12u + 8u);  // right half of the plotting area
}

TEST(AsciiChartTest, XLabelsPrinted) {
  AsciiChart c(40, 6);
  c.AddSeries("s", {1, 2, 3}, '*');
  c.SetXLabels({"1/30", "1/600", "1/7200"});
  std::string out = c.Render();
  EXPECT_NE(out.find("1/30"), std::string::npos);
  EXPECT_NE(out.find("1/7200"), std::string::npos);
}

TEST(AsciiChartTest, LogScaleHandlesWideRanges) {
  AsciiChart c(32, 8);
  c.SetLogY(true);
  c.AddSeries("wide", {10.0, 100000.0}, 'o');
  std::string out = c.Render();
  EXPECT_NE(out.find("(log y)"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChartTest, FixedYRangeClamps) {
  AsciiChart c(16, 6);
  c.SetYRange(0.0, 1.0);
  c.AddSeries("s", {0.5, 99.0}, 'x');  // 99 clamps to the top row
  std::string out = c.Render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(AsciiChartTest, YAxisTicksPresent) {
  AsciiChart c(16, 8);
  c.AddSeries("s", {0.0, 100.0}, '*');
  std::string out = c.Render();
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("0"), std::string::npos);
}

}  // namespace
}  // namespace pdht
