#include "metadata/article.h"

#include <gtest/gtest.h>

namespace pdht::metadata {
namespace {

TEST(MetadataPairTest, CanonicalForm) {
  MetadataPair p{"title", "Weather Iraklion"};
  EXPECT_EQ(p.Canonical(), "title=Weather Iraklion");
}

TEST(ArticleTest, ValueOfFindsElement) {
  Article a;
  a.metadata.push_back({"title", "storm Athens"});
  a.metadata.push_back({"date", "2004/03/14"});
  EXPECT_EQ(a.ValueOf("date"), "2004/03/14");
  EXPECT_EQ(a.ValueOf("missing"), "");
}

TEST(ArticleCorpusTest, GeneratesRequestedCount) {
  ArticleCorpus c(100, 20, 1);
  EXPECT_EQ(c.size(), 100u);
}

TEST(ArticleCorpusTest, ArticlesHaveCoreMetadata) {
  ArticleCorpus c(50, 20, 2);
  for (const auto& a : c.articles()) {
    EXPECT_FALSE(a.ValueOf("title").empty());
    EXPECT_FALSE(a.ValueOf("author").empty());
    EXPECT_FALSE(a.ValueOf("date").empty());
    EXPECT_FALSE(a.ValueOf("size").empty());
  }
}

TEST(ArticleCorpusTest, PairCountMatchesRequest) {
  ArticleCorpus c(10, 20, 3);
  for (const auto& a : c.articles()) {
    EXPECT_EQ(a.metadata.size(), 20u);
  }
  ArticleCorpus c4(10, 4, 3);
  for (const auto& a : c4.articles()) {
    EXPECT_EQ(a.metadata.size(), 4u);
  }
}

TEST(ArticleCorpusTest, DeterministicForSeed) {
  ArticleCorpus a(20, 8, 42);
  ArticleCorpus b(20, 8, 42);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.at(i).metadata.size(), b.at(i).metadata.size());
    for (size_t j = 0; j < a.at(i).metadata.size(); ++j) {
      EXPECT_EQ(a.at(i).metadata[j], b.at(i).metadata[j]);
    }
  }
}

TEST(ArticleCorpusTest, DifferentSeedsDiffer) {
  ArticleCorpus a(20, 8, 1);
  ArticleCorpus b(20, 8, 2);
  int identical = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    if (a.at(i).ValueOf("title") == b.at(i).ValueOf("title")) ++identical;
  }
  EXPECT_LT(identical, 20);
}

TEST(ArticleCorpusTest, DatesAreWellFormed) {
  ArticleCorpus c(30, 6, 4);
  for (const auto& a : c.articles()) {
    std::string d = a.ValueOf("date");
    ASSERT_EQ(d.size(), 10u);
    EXPECT_EQ(d.substr(0, 5), "2004/");
    EXPECT_EQ(d[7], '/');
  }
}

TEST(ArticleCorpusTest, ReplaceArticleChangesMetadataKeepsId) {
  ArticleCorpus c(10, 20, 5);
  Article before = c.at(3);
  c.ReplaceArticle(3);
  const Article& after = c.at(3);
  EXPECT_EQ(after.id, before.id);
  // Regeneration with a bumped generation counter must change content
  // (title/author/date triple collision is vanishingly unlikely).
  bool changed = before.ValueOf("title") != after.ValueOf("title") ||
                 before.ValueOf("date") != after.ValueOf("date") ||
                 before.ValueOf("size") != after.ValueOf("size");
  EXPECT_TRUE(changed);
}

TEST(ArticleCorpusTest, ReplaceArticleLeavesOthersIntact) {
  ArticleCorpus c(10, 10, 6);
  Article other = c.at(7);
  c.ReplaceArticle(3);
  EXPECT_EQ(c.at(7).ValueOf("title"), other.ValueOf("title"));
  EXPECT_EQ(c.at(7).ValueOf("size"), other.ValueOf("size"));
}

TEST(ArticleCorpusTest, ScenarioScaleCorpus) {
  // The paper's 2,000-article corpus with 20 keys each builds quickly and
  // yields 40,000 metadata pairs in total.
  ArticleCorpus c(2000, 20, 7);
  EXPECT_EQ(c.size(), 2000u);
  uint64_t pairs = 0;
  for (const auto& a : c.articles()) pairs += a.metadata.size();
  EXPECT_EQ(pairs, 40000u);
}

}  // namespace
}  // namespace pdht::metadata
