#include "metadata/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/pdht_system.h"

namespace pdht::metadata {
namespace {

TEST(QueryTraceTest, AppendAndAccess) {
  QueryTrace t;
  t.Append(0, 5);
  t.Append(0, 7);
  t.Append(2, 5);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.entries()[2].round, 2u);
}

TEST(QueryTraceTest, RoundRangeFindsEntries) {
  QueryTrace t;
  t.Append(0, 1);
  t.Append(1, 2);
  t.Append(1, 3);
  t.Append(3, 4);
  auto [b0, e0] = t.RoundRange(0);
  EXPECT_EQ(e0 - b0, 1u);
  auto [b1, e1] = t.RoundRange(1);
  EXPECT_EQ(e1 - b1, 2u);
  auto [b2, e2] = t.RoundRange(2);
  EXPECT_EQ(b2, e2);  // empty round
  auto [b3, e3] = t.RoundRange(3);
  EXPECT_EQ(e3 - b3, 1u);
}

TEST(QueryTraceTest, SynthesizeMatchesWorkloadScale) {
  QueryWorkload w(500, 1.2, Rng(1));
  QueryTrace t = QueryTrace::Synthesize(w, 50, 1000, 0.1);
  TraceStats s = t.Stats();
  // ~100 queries/round * 50 rounds.
  EXPECT_NEAR(static_cast<double>(s.total_queries), 5000.0, 500.0);
  EXPECT_EQ(s.rounds, 50u);
  // Zipf(1.2) head share ~ pmf(1) ~= 0.21 at 500 keys.
  EXPECT_GT(s.head_share, 0.1);
  EXPECT_LT(s.head_share, 0.35);
}

TEST(QueryTraceTest, CsvRoundTrip) {
  QueryWorkload w(100, 1.2, Rng(2));
  QueryTrace t = QueryTrace::Synthesize(w, 10, 200, 0.2);
  std::string path = "/tmp/pdht_trace_test.csv";
  ASSERT_TRUE(t.SaveCsv(path));
  QueryTrace loaded;
  ASSERT_TRUE(QueryTrace::LoadCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), t.size());
  EXPECT_EQ(loaded.entries(), t.entries());
  std::remove(path.c_str());
}

TEST(QueryTraceTest, LoadRejectsGarbage) {
  std::string path = "/tmp/pdht_trace_bad.csv";
  {
    std::ofstream f(path);
    f << "round,key\n1,2\nnot-a-number\n";
  }
  QueryTrace t;
  EXPECT_FALSE(QueryTrace::LoadCsv(path, &t));
  std::remove(path.c_str());
}

TEST(QueryTraceTest, LoadRejectsDecreasingRounds) {
  std::string path = "/tmp/pdht_trace_order.csv";
  {
    std::ofstream f(path);
    f << "round,key\n5,1\n3,2\n";
  }
  QueryTrace t;
  EXPECT_FALSE(QueryTrace::LoadCsv(path, &t));
  std::remove(path.c_str());
}

TEST(QueryTraceTest, StatsOnEmptyTrace) {
  QueryTrace t;
  TraceStats s = t.Stats();
  EXPECT_EQ(s.total_queries, 0u);
  EXPECT_EQ(s.rounds, 0u);
}

TEST(QueryTraceReplayTest, IdenticalSequenceAcrossStrategies) {
  // The whole point of traces: two systems with different seeds replay
  // the exact same queries, so their hit counts are comparable
  // query-for-query.
  QueryWorkload w(400, 1.2, Rng(3));
  QueryTrace trace = QueryTrace::Synthesize(w, 30, 300, 0.1);

  core::SystemConfig c;
  c.params.num_peers = 300;
  c.params.keys = 400;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 10.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 777;
  c.trace = &trace;
  core::PdhtSystem sys(c);
  sys.RunRounds(30);
  // Index warmed by exactly the trace's keys.
  EXPECT_GT(sys.IndexedKeyCount(), 0u);
  EXPECT_LE(sys.IndexedKeyCount(), trace.Stats().distinct_keys);
  EXPECT_GT(sys.TailHitRate(10), 0.2);

  // A second system with a different seed replays the same trace: the
  // resident key sets may differ (different DHT members / churn draws)
  // but the set of *ever-inserted* keys is bounded by the same trace.
  core::SystemConfig c2 = c;
  c2.seed = 31415;
  core::PdhtSystem sys2(c2);
  sys2.RunRounds(30);
  EXPECT_LE(sys2.IndexedKeyCount(), trace.Stats().distinct_keys);
}

TEST(QueryTraceReplayTest, ForeignKeysSkipped) {
  QueryTrace trace;
  trace.Append(0, 999999);  // key outside the system's universe
  trace.Append(0, 1);
  core::SystemConfig c;
  c.params.num_peers = 100;
  c.params.keys = 50;
  c.params.stor = 20;
  c.params.repl = 5;
  c.params.f_qry = 1.0 / 10.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 5;
  c.trace = &trace;
  core::PdhtSystem sys(c);
  sys.RunRounds(1);  // must not crash on the out-of-range key
  SUCCEED();
}

}  // namespace
}  // namespace pdht::metadata
