#include "metadata/predicate.h"

#include <gtest/gtest.h>

#include "metadata/key_generator.h"

namespace pdht::metadata {
namespace {

TEST(PredicateTest, ParsesSingleTerm) {
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("title=Weather Iraklion", &p));
  ASSERT_EQ(p.terms.size(), 1u);
  EXPECT_EQ(p.terms[0].element, "title");
  EXPECT_EQ(p.terms[0].value, "Weather Iraklion");
}

TEST(PredicateTest, ParsesConjunction) {
  ParsedPredicate p;
  ASSERT_TRUE(
      ParsePredicate("title=Weather Iraklion AND date=2004/03/14", &p));
  ASSERT_EQ(p.terms.size(), 2u);
  EXPECT_EQ(p.terms[1].element, "date");
  EXPECT_EQ(p.terms[1].value, "2004/03/14");
}

TEST(PredicateTest, ToleratesWhitespaceAndCase) {
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("  title = storm Athens   and  size = 99 ", &p));
  ASSERT_EQ(p.terms.size(), 2u);
  EXPECT_EQ(p.terms[0].element, "title");
  EXPECT_EQ(p.terms[0].value, "storm Athens");
  EXPECT_EQ(p.terms[1].element, "size");
}

TEST(PredicateTest, ValueMayContainEquals) {
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("formula=a=b", &p));
  EXPECT_EQ(p.terms[0].element, "formula");
  EXPECT_EQ(p.terms[0].value, "a=b");
}

TEST(PredicateTest, RejectsMalformedInput) {
  ParsedPredicate p;
  EXPECT_FALSE(ParsePredicate("", &p));
  EXPECT_FALSE(ParsePredicate("   ", &p));
  EXPECT_FALSE(ParsePredicate("noequals", &p));
  EXPECT_FALSE(ParsePredicate("=value", &p));
  EXPECT_FALSE(ParsePredicate("elem=", &p));
  EXPECT_FALSE(ParsePredicate("a=b AND ", &p));
  EXPECT_FALSE(ParsePredicate("a=b AND nokey", &p));
}

TEST(PredicateTest, WordContainingAndIsNotSplit) {
  // "band=sandstorm" contains the letters 'and' but no standalone AND.
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("band=sandstorm", &p));
  ASSERT_EQ(p.terms.size(), 1u);
  EXPECT_EQ(p.terms[0].value, "sandstorm");
}

TEST(PredicateTest, CanonicalSortsByElement) {
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("title=x AND date=y", &p));
  EXPECT_EQ(CanonicalPredicate(p), "date=y AND title=x");
}

TEST(PredicateTest, NormalizeIsOrderInvariant) {
  EXPECT_EQ(NormalizePredicate("b=2 AND a=1"),
            NormalizePredicate("a=1   and   b=2"));
  EXPECT_EQ(NormalizePredicate("a=1 AND b=2"), "a=1 AND b=2");
}

TEST(PredicateTest, NormalizeEmptyOnError) {
  EXPECT_EQ(NormalizePredicate("garbage"), "");
}

TEST(PredicateTest, NormalizeMatchesKeyGeneratorCanonicalForm) {
  // The canonical conjunctive form must be byte-identical to what
  // KeyGenerator produces, or predicate hashes would diverge.
  MetadataPair a{"title", "Weather Iraklion"};
  MetadataPair b{"date", "2004/03/14"};
  std::string via_generator =
      pdht::metadata::KeyGenerator::ConjunctivePredicate(a, b);
  std::string via_parser = NormalizePredicate(
      "title=Weather Iraklion AND date=2004/03/14");
  EXPECT_EQ(via_generator, via_parser);
}

TEST(PredicateTest, ThreeTermConjunction) {
  ParsedPredicate p;
  ASSERT_TRUE(ParsePredicate("c=3 AND a=1 AND b=2", &p));
  EXPECT_EQ(CanonicalPredicate(p), "a=1 AND b=2 AND c=3");
}

}  // namespace
}  // namespace pdht::metadata
