#include "metadata/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdht::metadata {
namespace {

TEST(QueryWorkloadTest, RankKeyBijection) {
  QueryWorkload w(1000, 1.2, Rng(1));
  for (uint64_t r = 1; r <= 1000; ++r) {
    uint64_t key = w.KeyAtRank(r);
    EXPECT_EQ(w.RankOf(key), r);
  }
}

TEST(QueryWorkloadTest, SampleKeysInRange) {
  QueryWorkload w(100, 1.2, Rng(2));
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(w.SampleKey(), 100u);
  }
}

TEST(QueryWorkloadTest, TopRankedKeyDominates) {
  QueryWorkload w(1000, 1.2, Rng(3));
  uint64_t hot = w.KeyAtRank(1);
  int hot_count = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (w.SampleKey() == hot) ++hot_count;
  }
  double freq = static_cast<double>(hot_count) / kSamples;
  EXPECT_NEAR(freq, w.ProbOf(hot), 0.01);
  EXPECT_GT(freq, 0.1);  // Zipf(1.2) head
}

TEST(QueryWorkloadTest, ProbOfMatchesRankPmf) {
  QueryWorkload w(500, 1.2, Rng(4));
  // Sum over all keys must be 1.
  double sum = 0.0;
  for (uint64_t k = 0; k < 500; ++k) sum += w.ProbOf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(QueryWorkloadTest, ShufflePopularityRerankesKeys) {
  QueryWorkload w(2000, 1.2, Rng(5));
  uint64_t old_hot = w.KeyAtRank(1);
  std::vector<uint64_t> old_top;
  for (uint64_t r = 1; r <= 100; ++r) old_top.push_back(w.KeyAtRank(r));
  w.ShufflePopularity();
  // Bijection still holds.
  for (uint64_t r = 1; r <= 2000; r += 97) {
    EXPECT_EQ(w.RankOf(w.KeyAtRank(r)), r);
  }
  // The old head almost surely lost its crown.
  int preserved = 0;
  for (uint64_t r = 1; r <= 100; ++r) {
    if (w.KeyAtRank(r) == old_top[r - 1]) ++preserved;
  }
  EXPECT_LT(preserved, 5);
  (void)old_hot;
}

TEST(QueryWorkloadTest, RotatePopularityShiftsRanks) {
  QueryWorkload w(100, 1.2, Rng(6));
  uint64_t k1 = w.KeyAtRank(1);
  uint64_t k11 = w.KeyAtRank(11);
  w.RotatePopularity(10);
  // The key formerly at rank 11 is now at rank 1.
  EXPECT_EQ(w.KeyAtRank(1), k11);
  // The old head moved 10 ranks up the tail (wrapping).
  EXPECT_EQ(w.RankOf(k1), 91u);
}

TEST(QueryWorkloadTest, RotateByZeroIsNoop) {
  QueryWorkload w(50, 1.2, Rng(7));
  uint64_t k1 = w.KeyAtRank(1);
  w.RotatePopularity(0);
  EXPECT_EQ(w.KeyAtRank(1), k1);
  w.RotatePopularity(50);  // full cycle
  EXPECT_EQ(w.KeyAtRank(1), k1);
}

TEST(QueryWorkloadTest, SampleQueryCountMatchesMean) {
  QueryWorkload w(10, 1.2, Rng(8));
  constexpr uint64_t kPeers = 20000;
  constexpr double kF = 1.0 / 30.0;
  double sum = 0.0;
  constexpr int kRounds = 2000;
  for (int i = 0; i < kRounds; ++i) {
    sum += static_cast<double>(w.SampleQueryCount(kPeers, kF));
  }
  double mean = sum / kRounds;
  EXPECT_NEAR(mean, kPeers * kF, kPeers * kF * 0.02);
}

TEST(QueryWorkloadTest, SampleQueryCountZeroLoad) {
  QueryWorkload w(10, 1.2, Rng(9));
  EXPECT_EQ(w.SampleQueryCount(100, 0.0), 0u);
}

TEST(QueryWorkloadTest, DeterministicForSeed) {
  QueryWorkload a(100, 1.2, Rng(10));
  QueryWorkload b(100, 1.2, Rng(10));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.SampleKey(), b.SampleKey());
  }
}

TEST(QueryWorkloadTest, AfterShiftDistributionStillZipf) {
  QueryWorkload w(500, 1.2, Rng(11));
  w.ShufflePopularity();
  uint64_t new_hot = w.KeyAtRank(1);
  int hot_count = 0;
  constexpr int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) {
    if (w.SampleKey() == new_hot) ++hot_count;
  }
  EXPECT_NEAR(static_cast<double>(hot_count) / kSamples, w.ProbOf(new_hot),
              0.012);
}

}  // namespace
}  // namespace pdht::metadata
