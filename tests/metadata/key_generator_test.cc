#include "metadata/key_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "metadata/article.h"

namespace pdht::metadata {
namespace {

Article SampleArticle() {
  Article a;
  a.id = 1;
  a.metadata.push_back({"title", "Weather Iraklion"});
  a.metadata.push_back({"author", "Crete Weather Service"});
  a.metadata.push_back({"date", "2004/03/14"});
  a.metadata.push_back({"size", "2405"});
  return a;
}

TEST(KeyGeneratorTest, ProducesExactlyRequestedKeyCount) {
  KeyGenerator gen(20);
  auto keys = gen.KeysFor(SampleArticle());
  EXPECT_EQ(keys.size(), 20u);
}

TEST(KeyGeneratorTest, SinglePairPredicatesComeFirst) {
  KeyGenerator gen(20);
  auto keys = gen.KeysFor(SampleArticle());
  EXPECT_EQ(keys[0].predicate, "title=Weather Iraklion");
  EXPECT_EQ(keys[1].predicate, "author=Crete Weather Service");
}

TEST(KeyGeneratorTest, ConjunctionsIncludePaperExample) {
  // key1 = hash(title = "Weather Iraklion" AND date = "2004/03/14").
  KeyGenerator gen(20);
  auto keys = gen.KeysFor(SampleArticle());
  std::string want = "date=2004/03/14 AND title=Weather Iraklion";
  bool found = false;
  for (const auto& k : keys) {
    if (k.predicate == want) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KeyGeneratorTest, ConjunctivePredicateIsOrderCanonical) {
  MetadataPair a{"title", "x"};
  MetadataPair b{"date", "y"};
  EXPECT_EQ(KeyGenerator::ConjunctivePredicate(a, b),
            KeyGenerator::ConjunctivePredicate(b, a));
}

TEST(KeyGeneratorTest, HashesMatchPredicateHash) {
  KeyGenerator gen(10);
  auto keys = gen.KeysFor(SampleArticle());
  for (const auto& k : keys) {
    EXPECT_EQ(k.hash, KeyGenerator::HashPredicate(k.predicate));
  }
}

TEST(KeyGeneratorTest, KeysAreDistinct) {
  KeyGenerator gen(20);
  auto keys = gen.KeysFor(SampleArticle());
  std::set<uint64_t> hashes;
  for (const auto& k : keys) hashes.insert(k.hash);
  EXPECT_EQ(hashes.size(), keys.size());
}

TEST(KeyGeneratorTest, StopWordOnlyValuesSkipped) {
  Article a;
  a.id = 2;
  a.metadata.push_back({"title", "the and of"});  // pure stop words
  a.metadata.push_back({"author", "Aegean Press"});
  KeyGenerator gen(3);
  auto keys = gen.KeysFor(a);
  for (const auto& k : keys) {
    EXPECT_EQ(k.predicate.find("title=the and of"), std::string::npos)
        << k.predicate;
  }
}

TEST(KeyGeneratorTest, PadsWhenMetadataTooSmall) {
  Article a;
  a.id = 3;
  a.metadata.push_back({"title", "solo"});
  KeyGenerator gen(5);
  auto keys = gen.KeysFor(a);
  EXPECT_EQ(keys.size(), 5u);
  std::set<uint64_t> hashes;
  for (const auto& k : keys) hashes.insert(k.hash);
  EXPECT_EQ(hashes.size(), 5u);
}

TEST(KeyGeneratorTest, ScenarioYieldsFortyThousandKeys) {
  // 2,000 articles x 20 keys = 40,000 keys; collisions must be negligible
  // (they would silently merge index entries).
  ArticleCorpus corpus(2000, 20, 11);
  KeyGenerator gen(20);
  std::set<uint64_t> all;
  uint64_t total = 0;
  for (const auto& art : corpus.articles()) {
    for (const auto& k : gen.KeysFor(art)) {
      all.insert(k.hash);
      ++total;
    }
  }
  EXPECT_EQ(total, 40000u);
  // Different articles can legitimately share predicates (same
  // category/language values), so distinct hashes < total; but there must
  // be plenty of distinct keys and zero *hash* collisions among distinct
  // predicates -- verified indirectly by the predicate->hash map size.
  EXPECT_GT(all.size(), 10000u);
}

TEST(KeyGeneratorTest, DistinctPredicatesNeverCollide) {
  ArticleCorpus corpus(500, 20, 13);
  KeyGenerator gen(20);
  std::map<uint64_t, std::string> by_hash;
  for (const auto& art : corpus.articles()) {
    for (const auto& k : gen.KeysFor(art)) {
      auto [it, inserted] = by_hash.emplace(k.hash, k.predicate);
      if (!inserted) {
        EXPECT_EQ(it->second, k.predicate)
            << "hash collision between distinct predicates";
      }
    }
  }
}

}  // namespace
}  // namespace pdht::metadata
