#include "metadata/stopwords.h"

#include <gtest/gtest.h>

namespace pdht::metadata {
namespace {

TEST(StopWordsTest, ClassicStopWordsDetected) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_TRUE(IsStopWord("of"));
  EXPECT_TRUE(IsStopWord("a"));
}

TEST(StopWordsTest, CaseInsensitive) {
  EXPECT_TRUE(IsStopWord("The"));
  EXPECT_TRUE(IsStopWord("AND"));
  EXPECT_TRUE(IsStopWord("Of"));
}

TEST(StopWordsTest, ContentWordsPass) {
  EXPECT_FALSE(IsStopWord("weather"));
  EXPECT_FALSE(IsStopWord("Iraklion"));
  EXPECT_FALSE(IsStopWord("earthquake"));
  EXPECT_FALSE(IsStopWord(""));
}

TEST(StopWordsTest, ListIsSorted) {
  // Binary search correctness depends on sortedness; spot check count.
  EXPECT_GT(StopWordCount(), 20u);
}

TEST(ContentWordsTest, FiltersAndLowercases) {
  auto words = ContentWords("The Weather of Iraklion");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "weather");
  EXPECT_EQ(words[1], "iraklion");
}

TEST(ContentWordsTest, SplitsOnPunctuation) {
  auto words = ContentWords("storm,market;derby");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "storm");
  EXPECT_EQ(words[2], "derby");
}

TEST(ContentWordsTest, AllStopWordsYieldEmpty) {
  EXPECT_TRUE(ContentWords("the and of a").empty());
  EXPECT_TRUE(ContentWords("").empty());
  EXPECT_TRUE(ContentWords(" , ; ").empty());
}

TEST(ContentWordsTest, NumbersAreContent) {
  auto words = ContentWords("2405");
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], "2405");
}

TEST(ContentWordsTest, MixedAlnumTokens) {
  auto words = ContentWords("date 2004/03/14");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "date");
  EXPECT_EQ(words[1], "2004");
}

}  // namespace
}  // namespace pdht::metadata
