// Demonstrates the headline adaptive behaviour (paper Sections 5.2/6):
// the TTL-based partial index follows the query distribution.  We run the
// system to steady state, flip the entire popularity ranking ("the range
// of the key space that is actually queried ... can dramatically change
// over time"), and print the hit-rate timeline around the shift.

#include <cstdio>

#include "core/pdht_system.h"

int main() {
  using namespace pdht;

  core::SystemConfig config;
  config.params.num_peers = 400;
  config.params.keys = 800;
  config.params.stor = 20;
  config.params.repl = 10;
  config.params.f_qry = 1.0 / 5.0;
  config.strategy = core::Strategy::kPartialTtl;
  config.churn.enabled = false;
  config.seed = 99;
  core::PdhtSystem system(config);

  const uint64_t warmup = 100;
  system.RunRounds(warmup);
  std::printf("steady state after %llu rounds: hit rate %.2f, "
              "index %llu keys\n\n",
              (unsigned long long)warmup, system.TailHitRate(25),
              (unsigned long long)system.IndexedKeyCount());

  std::printf(">>> popularity distribution shifts completely <<<\n\n");
  system.ShiftPopularity();
  system.RunRounds(150);

  const auto& hits =
      system.engine().Series(core::PdhtSystem::kSeriesHitRate);
  auto smooth = hits.MovingAverage(10);
  std::printf("hit rate timeline (smoothed, every 10 rounds):\n");
  std::printf("%-8s %-10s %s\n", "round", "hit rate", "bar");
  for (size_t r = warmup - 20; r < smooth.size(); r += 10) {
    int bar = static_cast<int>(smooth[r] * 50);
    std::printf("%-8zu %-10.2f ", r, smooth[r]);
    for (int i = 0; i < bar; ++i) std::printf("#");
    if (r < warmup && r + 10 >= warmup) {
      std::printf("   <-- shift happens here");
    }
    std::printf("\n");
  }

  std::printf("\nfinal: hit rate %.2f, index %llu keys -- the index "
              "re-learned the new hot set without any coordination.\n",
              system.TailHitRate(25),
              (unsigned long long)system.IndexedKeyCount());
  return 0;
}
