// Quickstart: evaluate the paper's analytical model and run a small
// partial-DHT simulation in ~30 lines of library usage.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/pdht_system.h"
#include "model/cost_model.h"
#include "model/scenario_params.h"

int main() {
  using namespace pdht;

  // 1. Ask the analytical model (paper Sections 2-4) whether partial
  //    indexing pays off for the paper's news-system scenario.
  model::ScenarioParams params;           // Table 1 defaults
  model::CostModel model_(params);
  model::CostBreakdown b = model_.Evaluate();  // at fQry = 1/30
  std::printf("analytical model at fQry = 1/30:\n");
  std::printf("  indexAll: %8.0f msg/s\n", b.index_all);
  std::printf("  noIndex:  %8.0f msg/s\n", b.no_index);
  std::printf("  partial:  %8.0f msg/s  (index %llu of %llu keys, "
              "pIndxd %.2f)\n",
              b.partial, (unsigned long long)b.max_rank,
              (unsigned long long)params.keys, b.p_indxd);

  // 2. Run the decentralized TTL selection algorithm (Section 5) on the
  //    full simulated substrate, scaled down 50x so it finishes instantly.
  core::SystemConfig config;
  config.params.num_peers = 400;
  config.params.keys = 800;
  config.params.stor = 20;
  config.params.repl = 10;
  config.params.f_qry = 1.0 / 5.0;
  config.strategy = core::Strategy::kPartialTtl;
  config.churn.enabled = false;
  config.seed = 1;
  core::PdhtSystem system(config);
  system.RunRounds(100);

  std::printf("\nsimulated TTL selection algorithm (400 peers, 800 keys, "
              "100 rounds):\n");
  std::printf("  keyTtl:        %.0f rounds (derived, = 1/fMin)\n",
              system.EffectiveKeyTtl());
  std::printf("  hit rate:      %.2f\n", system.TailHitRate(25));
  std::printf("  index size:    %llu keys\n",
              (unsigned long long)system.IndexedKeyCount());
  std::printf("  message rate:  %.0f msg/round\n",
              system.TailMessageRate(25));
  return 0;
}
