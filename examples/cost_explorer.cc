// Interactive-ish cost explorer: evaluates the paper's analytical model
// for user-supplied parameters and prints the full strategy comparison,
// answering the paper's title question -- "to index or not to index?" --
// for any scenario.
//
// Usage:
//   cost_explorer [numPeers] [keys] [fQryPeriod] [repl] [stor]
// Defaults reproduce Table 1 with fQry = 1/300.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "model/cost_model.h"
#include "model/selection_model.h"
#include "stats/table_writer.h"

int main(int argc, char** argv) {
  using namespace pdht;

  model::ScenarioParams p;
  p.f_qry = 1.0 / 300.0;
  if (argc > 1) p.num_peers = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) p.keys = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) p.f_qry = 1.0 / std::strtod(argv[3], nullptr);
  if (argc > 4) p.repl = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) p.stor = std::strtoull(argv[5], nullptr, 10);
  std::string err = p.Validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid parameters: %s\n", err.c_str());
    return 1;
  }

  std::printf("%s\n", p.ToTable().c_str());

  model::CostModel cost(p);
  model::SelectionModel sel(p);
  model::CostBreakdown b = cost.Evaluate(p.f_qry);
  model::SelectionBreakdown s = sel.Evaluate(p.f_qry);

  std::printf("primitive costs (Section 3):\n");
  std::printf("  cSUnstr       = %10.2f msg      (Eq. 6)\n", b.c_s_unstr);
  std::printf("  cSIndx        = %10.2f msg      (Eq. 7, nap=%llu)\n",
              b.c_s_indx, (unsigned long long)b.num_active_peers);
  std::printf("  cRtn          = %10.4f msg/s    (Eq. 8)\n", b.c_rtn);
  std::printf("  cUpd          = %10.6f msg/s    (Eq. 9)\n", b.c_upd);
  std::printf("  cIndKey       = %10.4f msg/s    (Eq. 10)\n", b.c_ind_key);
  std::printf("  fMin          = %10.6f 1/s      (Eq. 2)\n\n", b.f_min);

  std::printf("to index or not to index? keys above rank %llu are NOT "
              "worth indexing.\n\n",
              (unsigned long long)b.max_rank);

  TableWriter t({"strategy", "total [msg/s]", "vs best", "notes"});
  double best = std::min({b.index_all, b.no_index, b.partial, s.partial});
  auto rel = [&](double v) {
    return TableWriter::FormatDouble(v / best, 3) + "x";
  };
  t.AddRow({"indexAll (Eq. 11)", TableWriter::FormatDouble(b.index_all, 6),
            rel(b.index_all), "maintains all " + std::to_string(p.keys) +
            " keys"});
  t.AddRow({"noIndex (Eq. 12)", TableWriter::FormatDouble(b.no_index, 6),
            rel(b.no_index), "every query broadcasts"});
  t.AddRow({"partial ideal (Eq. 13)",
            TableWriter::FormatDouble(b.partial, 6), rel(b.partial),
            "oracle; pIndxd=" + TableWriter::FormatDouble(b.p_indxd, 3)});
  t.AddRow({"partial TTL (Eq. 17)", TableWriter::FormatDouble(s.partial, 6),
            rel(s.partial),
            "keyTtl=" + TableWriter::FormatDouble(s.key_ttl, 4) +
                " rounds"});
  std::printf("%s", t.ToText().c_str());
  return 0;
}
