// Runs the identical TTL-selection workload over every structured overlay
// backend in the factory registry (Chord ring, P-Grid trie, CAN torus,
// Kademlia XOR space, plus any backend registered later) and prints a
// side-by-side comparison -- the paper's "generic enough ... for any of
// the DHT based systems" claim, made concrete.

#include <cstdio>
#include <string>

#include "core/pdht_system.h"
#include "overlay/structured_overlay.h"

int main() {
  using namespace pdht;

  std::printf("%-10s %-12s %-10s %-12s %-12s %-12s\n", "backend",
              "msg/round", "hit rate", "index keys", "dht msgs",
              "maint msgs");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (core::DhtBackend backend : overlay::RegisteredBackends()) {
    core::SystemConfig c;
    c.params.num_peers = 400;
    c.params.keys = 800;
    c.params.stor = 20;
    c.params.repl = 10;
    c.params.f_qry = 1.0 / 5.0;
    c.params.f_upd = 1.0 / 3600.0;
    c.strategy = core::Strategy::kPartialTtl;
    c.backend = backend;
    c.churn.enabled = true;
    c.churn.mean_online_s = 300;
    c.churn.mean_offline_s = 100;
    c.seed = 2004;
    core::PdhtSystem sys(c);
    sys.RunRounds(120);
    std::printf("%-10s %-12.0f %-10.2f %-12llu %-12.0f %-12.0f\n",
                core::DhtBackendName(backend), sys.TailMessageRate(30),
                sys.TailHitRate(30),
                (unsigned long long)sys.IndexedKeyCount(),
                sys.engine()
                    .Series(core::PdhtSystem::kSeriesMsgDht)
                    .TailMean(30),
                sys.engine()
                    .Series(core::PdhtSystem::kSeriesMsgMaint)
                    .TailMean(30));
  }
  std::printf(
      "\nEvery overlay sustains the query-adaptive partial index; they\n"
      "differ only in how lookup cost (log n ring hops, trie prefix hops,\n"
      "sqrt n torus hops, log n XOR hops) trades against routing-table\n"
      "upkeep -- the same trade-off Eq. 7 vs Eq. 8 captures analytically.\n");
  return 0;
}
