// Runs the identical TTL-selection workload over every structured overlay
// backend in the factory registry (Chord ring, P-Grid trie, CAN torus,
// Kademlia XOR space, plus any backend registered later) and prints a
// side-by-side comparison -- the paper's "generic enough ... for any of
// the DHT based systems" claim, made concrete.  Runs multi-seed on the
// experiment runner's thread pool; understands the shared bench flags
// (--threads/--seeds/--rounds/--csv).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "overlay/structured_overlay.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);

  exp::ExperimentSpec spec;
  spec.name = "backend_comparison";
  spec.base = bench::ScaledBaseConfig();
  spec.base.churn.enabled = true;
  spec.base.churn.mean_online_s = 300;
  spec.base.churn.mean_offline_s = 100;
  spec.base.seed = 2004;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis backends{"backend", {}};
  for (core::DhtBackend b : overlay::RegisteredBackends()) {
    backends.levels.push_back({core::DhtBackendName(b),
                               [b](core::SystemConfig& c) { c.backend = b; }});
  }
  spec.axes = {backends};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));
  bench::EmitTable(
      exp::ToTable(spec, rows,
                   {{"msg/round", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate},
                    {"index keys", exp::kMetricIndexKeys},
                    {"dht msgs", core::PdhtSystem::kSeriesMsgDht},
                    {"maint msgs", core::PdhtSystem::kSeriesMsgMaint}},
                   4),
      flags.csv);
  std::printf(
      "Every overlay sustains the query-adaptive partial index; they\n"
      "differ only in how lookup cost (log n ring hops, trie prefix hops,\n"
      "sqrt n torus hops, log n XOR hops) trades against routing-table\n"
      "upkeep -- the same trade-off Eq. 7 vs Eq. 8 captures analytically.\n");
  return 0;
}
