// The paper's motivating application (Section 1/4): a decentralized P2P
// news system.  Articles carry element=value metadata; index keys are
// hashes of single and conjunctive predicates [FeBi04] with stop words
// excluded; queries follow a Zipf popularity over those keys.
//
// The example builds a corpus, derives the key universe, wires it into a
// PDHT simulation, and shows a concrete query resolving first via
// broadcast and then -- once adaptively indexed -- via the DHT.

#include <cstdio>
#include <map>

#include "core/pdht_system.h"
#include "metadata/article.h"
#include "metadata/key_generator.h"
#include "metadata/stopwords.h"

int main() {
  using namespace pdht;

  // Build a 100-article corpus with 20 metadata keys each (the paper's
  // 2,000 x 20 scenario at 1/20 scale).
  metadata::ArticleCorpus corpus(100, 20, /*seed=*/2004);
  metadata::KeyGenerator gen(20);

  const metadata::Article& sample = corpus.at(0);
  std::printf("sample article #%llu:\n",
              (unsigned long long)sample.id);
  for (size_t i = 0; i < 4; ++i) {
    std::printf("  %s = %s\n", sample.metadata[i].element.c_str(),
                sample.metadata[i].value.c_str());
  }

  auto keys = gen.KeysFor(sample);
  std::printf("\nits first index keys (predicate -> 64-bit key):\n");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  %-55s -> %016llx\n", keys[i].predicate.c_str(),
                (unsigned long long)keys[i].hash);
  }
  std::printf("  ... (%zu keys total; stop words like 'the' are never "
              "indexed: IsStopWord(\"the\") = %d)\n",
              keys.size(), metadata::IsStopWord("the"));

  // Map predicate hashes to the dense key ids the workload uses.
  std::map<uint64_t, uint64_t> hash_to_dense;
  uint64_t next_dense = 0;
  for (const auto& art : corpus.articles()) {
    for (const auto& k : gen.KeysFor(art)) {
      if (!hash_to_dense.count(k.hash)) {
        hash_to_dense[k.hash] = next_dense++;
      }
    }
  }
  std::printf("\nkey universe: %llu distinct keys from %llu articles\n",
              (unsigned long long)hash_to_dense.size(),
              (unsigned long long)corpus.size());

  // Run the news system on the PDHT.
  core::SystemConfig config;
  config.params.num_peers = 400;
  config.params.keys = next_dense;
  config.params.stor = 20;
  config.params.repl = 10;
  config.params.f_qry = 1.0 / 5.0;
  config.strategy = core::Strategy::kPartialTtl;
  config.churn.enabled = true;
  config.churn.mean_online_s = 600;
  config.churn.mean_offline_s = 200;
  config.seed = 7;
  core::PdhtSystem system(config);

  // A user repeatedly asks for the paper's example predicate type:
  // title AND date of the sample article.
  uint64_t query_key = hash_to_dense[keys[4].hash];
  std::printf("\nquerying '%s' before warm-up:\n",
              keys[4].predicate.c_str());
  core::QueryOutcome cold = system.ExecuteQuery(query_key);
  std::printf("  answered from index: %s, messages: %llu\n",
              cold.answered_from_index ? "yes" : "no (broadcast search)",
              (unsigned long long)(cold.index_messages +
                                   cold.unstructured_messages));

  core::QueryOutcome warm = system.ExecuteQuery(query_key);
  std::printf("repeat query (key now adaptively indexed):\n");
  std::printf("  answered from index: %s, messages: %llu\n",
              warm.answered_from_index ? "yes" : "no",
              (unsigned long long)(warm.index_messages +
                                   warm.unstructured_messages));

  // Let the whole population query for a while.
  system.RunRounds(120);
  std::printf("\nafter 120 rounds of Zipf traffic under churn:\n");
  std::printf("  hit rate:   %.2f\n", system.TailHitRate(30));
  std::printf("  index size: %llu of %llu keys\n",
              (unsigned long long)system.IndexedKeyCount(),
              (unsigned long long)next_dense);
  std::printf("  msg rate:   %.0f msg/round\n",
              system.TailMessageRate(30));
  return 0;
}
