// Benchmark for the self-tuning keyTtl mechanism (Section 5.1.1 future
// work, implemented in core/ttl_autotuner.h).  Compares three TTL regimes
// on identical substrates:
//   1. model-derived static keyTtl = 1/fMin (the paper's choice),
//   2. deliberately mis-estimated static TTLs (0.5x and 2x),
//   3. the online autotuner.
// The paper predicts (Section 5.1.1) that mis-estimation costs little and
// an online estimator should land near the model value.

#include "bench_common.h"
#include "core/pdht_system.h"
#include "model/selection_model.h"

namespace {

struct RunResult {
  double msg_rate;
  double hit_rate;
  double ttl;
  uint64_t index_keys;
};

RunResult Run(double ttl_scale, bool autotune) {
  pdht::core::SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = pdht::core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 1337;
  c.ttl_scale = ttl_scale;
  c.autotune_ttl = autotune;
  pdht::core::PdhtSystem sys(c);
  sys.RunRounds(200);
  return {sys.TailMessageRate(50), sys.TailHitRate(50),
          sys.EffectiveKeyTtl(), sys.IndexedKeyCount()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_autotuner -- self-tuning keyTtl",
                     "Section 5.1.1 (future-work mechanism)");

  model::ScenarioParams p;
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  p.f_qry = 1.0 / 10.0;
  p.f_upd = 1.0 / 3600.0;
  model::SelectionModel sel(p);
  double ideal = sel.IdealKeyTtl(p.f_qry);
  std::printf("model-ideal keyTtl = %.1f rounds\n\n", ideal);

  TableWriter t({"regime", "keyTtl [rounds]", "msg/round", "hit rate",
                 "index keys"});
  RunResult r1 = Run(1.0, false);
  RunResult r_half = Run(0.5, false);
  RunResult r_double = Run(2.0, false);
  RunResult r_auto = Run(1.0, true);
  auto add = [&](const char* name, const RunResult& r) {
    t.AddRow({name, TableWriter::FormatDouble(r.ttl, 5),
              TableWriter::FormatDouble(r.msg_rate, 6),
              TableWriter::FormatDouble(r.hit_rate, 3),
              std::to_string(r.index_keys)});
  };
  add("static 1/fMin (paper)", r1);
  add("static 0.5x (underestimate)", r_half);
  add("static 2.0x (overestimate)", r_double);
  add("autotuned (online)", r_auto);
  bench::EmitTable(t, csv);

  // The online estimator sees realized cSIndx2 costs (entry hop, failed
  // probes, response, replica flood) where the model counts bare routing
  // hops, so it lands within an order of magnitude, not a factor of two.
  bool tuner_in_band = r_auto.ttl > ideal / 8.0 && r_auto.ttl < ideal * 8.0;
  bool graceful = r_half.msg_rate < r1.msg_rate * 1.5 &&
                  r_double.msg_rate < r1.msg_rate * 1.5;
  std::printf("shape check: autotuned TTL within 4x of model ideal: %s\n",
              tuner_in_band ? "PASS" : "FAIL");
  std::printf("shape check: +-2x static mis-estimation costs < 50%% extra: "
              "%s\n",
              graceful ? "PASS" : "FAIL");
  return (tuner_in_band && graceful) ? 0 : 1;
}
