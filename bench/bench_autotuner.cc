// Benchmark for the self-tuning keyTtl mechanism (Section 5.1.1 future
// work, implemented in core/ttl_autotuner.h).  Compares three TTL regimes
// on identical substrates (multi-seed, on the experiment runner):
//   1. model-derived static keyTtl = 1/fMin (the paper's choice),
//   2. deliberately mis-estimated static TTLs (0.5x and 2x),
//   3. the online autotuner.
// The paper predicts (Section 5.1.1) that mis-estimation costs little and
// an online estimator should land near the model value.

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "model/selection_model.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_autotuner -- self-tuning keyTtl",
                     "Section 5.1.1 (future-work mechanism)");

  core::SystemConfig base = bench::ScaledBaseConfig();
  base.params.f_qry = 1.0 / 10.0;
  base.seed = 1337;
  const model::ScenarioParams& p = base.params;
  model::SelectionModel sel(p);
  double ideal = sel.IdealKeyTtl(p.f_qry);
  std::printf("model-ideal keyTtl = %.1f rounds\n\n", ideal);

  struct Regime {
    const char* name;
    double ttl_scale;
    bool autotune;
  };
  const Regime regimes[] = {{"static 1/fMin (paper)", 1.0, false},
                            {"static 0.5x (underestimate)", 0.5, false},
                            {"static 2.0x (overestimate)", 2.0, false},
                            {"autotuned (online)", 1.0, true}};

  exp::ExperimentSpec spec;
  spec.name = "autotuner";
  spec.base = base;
  spec.rounds = flags.RoundsOrDefault(200);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis regime_axis{"regime", {}};
  for (const Regime& r : regimes) {
    regime_axis.levels.push_back({r.name, [r](core::SystemConfig& c) {
                                    c.ttl_scale = r.ttl_scale;
                                    c.autotune_ttl = r.autotune;
                                  }});
  }
  spec.axes = {regime_axis};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));

  bench::EmitTable(
      exp::ToTable(spec, rows,
                   {{"keyTtl [rounds]", exp::kMetricKeyTtl},
                    {"msg/round", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate},
                    {"index keys", exp::kMetricIndexKeys}}),
      flags.csv);

  const double msg_paper =
      rows[0].Stat(core::PdhtSystem::kSeriesMsgTotal).mean;
  const double msg_half =
      rows[1].Stat(core::PdhtSystem::kSeriesMsgTotal).mean;
  const double msg_double =
      rows[2].Stat(core::PdhtSystem::kSeriesMsgTotal).mean;
  const double auto_ttl = rows[3].Stat(exp::kMetricKeyTtl).mean;

  // The online estimator sees realized cSIndx2 costs (entry hop, failed
  // probes, response, replica flood) where the model counts bare routing
  // hops, so it lands within an order of magnitude, not a factor of two.
  bool tuner_in_band = auto_ttl > ideal / 8.0 && auto_ttl < ideal * 8.0;
  bool graceful = msg_half < msg_paper * 1.5 && msg_double < msg_paper * 1.5;
  std::printf("shape check: autotuned TTL within 8x of model ideal: %s\n",
              tuner_in_band ? "PASS" : "FAIL");
  std::printf("shape check: +-2x static mis-estimation costs < 50%% extra: "
              "%s\n",
              graceful ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, tuner_in_band && graceful);
}
