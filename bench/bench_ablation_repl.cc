// Ablation: replication factor sweep.  Eq. 6 makes cSUnstr inversely
// proportional to repl while Eq. 9/16 make replica maintenance linear in
// repl -- the sweep exposes that tension in both the model and the
// simulator.

#include "bench_common.h"
#include "core/pdht_system.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_ablation_repl -- replication factor sweep",
                     "Eqs. 6 and 9/16 interplay (Section 3)");

  TableWriter t({"repl", "model cSUnstr", "model partialTtl [msg/s]",
                 "sim msg/round", "sim hit rate"});
  std::vector<double> model_cost;
  std::vector<double> sim_cost;
  for (uint64_t repl : {5ull, 10ull, 20ull, 40ull}) {
    model::ScenarioParams p;
    p.num_peers = 400;
    p.keys = 800;
    p.stor = 20;
    p.repl = repl;
    p.f_qry = 1.0 / 5.0;
    p.f_upd = 1.0 / 3600.0;
    model::CostModel cm(p);
    model::SelectionModel sel(p);
    double model_total = sel.TotalPartialSelection(p.f_qry);
    model_cost.push_back(model_total);

    core::SystemConfig c;
    c.params = p;
    c.strategy = core::Strategy::kPartialTtl;
    c.churn.enabled = false;
    c.seed = 77;
    core::PdhtSystem sys(c);
    sys.RunRounds(100);
    sim_cost.push_back(sys.TailMessageRate(25));

    t.AddRow({std::to_string(repl),
              TableWriter::FormatDouble(cm.CostSearchUnstructured(), 5),
              TableWriter::FormatDouble(model_total, 6),
              TableWriter::FormatDouble(sys.TailMessageRate(25), 6),
              TableWriter::FormatDouble(sys.TailHitRate(25), 3)});
  }
  bench::EmitTable(t, csv);

  // Shape: model and simulation must agree on the *direction* of the
  // repl-5 -> repl-40 change.
  bool same_direction =
      (model_cost.back() - model_cost.front()) *
          (sim_cost.back() - sim_cost.front()) >= 0.0;
  std::printf("shape check: model and simulation agree on cost direction "
              "across repl sweep: %s\n",
              same_direction ? "PASS" : "FAIL");
  return same_direction ? 0 : 1;
}
