// Ablation: replication factor sweep.  Eq. 6 makes cSUnstr inversely
// proportional to repl while Eq. 9/16 make replica maintenance linear in
// repl -- the sweep exposes that tension in both the model and the
// simulator (multi-seed, on the experiment runner).

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_ablation_repl -- replication factor sweep",
                     "Eqs. 6 and 9/16 interplay (Section 3)");

  const uint64_t repls[] = {5, 10, 20, 40};

  exp::ExperimentSpec spec;
  spec.name = "ablation_repl";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 77;
  spec.rounds = flags.RoundsOrDefault(100);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis repl_axis{"repl", {}};
  for (uint64_t repl : repls) {
    repl_axis.levels.push_back(
        {std::to_string(repl),
         [repl](core::SystemConfig& c) { c.params.repl = repl; }});
  }
  spec.axes = {repl_axis};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));

  TableWriter t({"repl", "model cSUnstr", "model partialTtl [msg/s]",
                 "sim msg/round", "sim hit rate"});
  std::vector<double> model_cost;
  std::vector<double> sim_cost;
  for (size_t i = 0; i < rows.size(); ++i) {
    model::ScenarioParams p = spec.base.params;
    p.repl = repls[i];
    model::CostModel cm(p);
    model::SelectionModel sel(p);
    double model_total = sel.TotalPartialSelection(p.f_qry);
    model_cost.push_back(model_total);
    sim_cost.push_back(rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal).mean);
    t.AddRow({rows[i].labels[0],
              TableWriter::FormatDouble(cm.CostSearchUnstructured(), 5),
              TableWriter::FormatDouble(model_total, 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal), 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesHitRate), 3)});
  }
  bench::EmitTable(t, flags.csv);

  // Shape: model and simulation must agree on the *direction* of the
  // repl-5 -> repl-40 change.
  bool same_direction = (model_cost.back() - model_cost.front()) *
                            (sim_cost.back() - sim_cost.front()) >=
                        0.0;
  std::printf("shape check: model and simulation agree on cost direction "
              "across repl sweep: %s\n",
              same_direction ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, same_direction);
}
