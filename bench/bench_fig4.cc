// Regenerates paper Fig. 4: savings of the realized TTL selection
// algorithm (Eqs. 14-17) compared to indexAll and noIndex.
//
// Shape expectations (paper): savings are lower than the ideal Fig. 2
// numbers (four overheads enumerated in Section 5.1) but remain
// substantial, especially at average query frequencies; savings vs noIndex
// can vanish at the very highest load.

#include "bench_common.h"
#include "model/sweep.h"
#include "stats/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader("bench_fig4 -- savings of the TTL selection algorithm",
                     "Fig. 4 (Section 5)");
  model::ScenarioParams params;
  auto freqs = model::ScenarioParams::PaperQueryFrequencies();
  auto rows4 = model::SweepFig4(params, freqs);
  bench::EmitTable(model::Fig4Table(rows4), csv);

  AsciiChart chart(64, 12);
  chart.SetYRange(-0.5, 1.0);
  std::vector<double> vs_all, vs_none;
  std::vector<std::string> labels;
  for (const auto& r : rows4) {
    vs_all.push_back(r.savings_vs_index_all);
    vs_none.push_back(r.savings_vs_no_index);
    labels.push_back(model::FrequencyLabel(r.f_qry));
  }
  chart.AddSeries("vs indexAll", vs_all, 'A');
  chart.AddSeries("vs noIndex", vs_none, 'N');
  chart.SetXLabels(labels);
  std::printf("%s\n", chart.Render().c_str());

  auto rows2 = model::SweepFig2(params, freqs);
  bool below_ideal = true;
  for (size_t i = 0; i < rows4.size(); ++i) {
    if (rows4[i].savings_vs_index_all >
            rows2[i].savings_vs_index_all + 1e-9 ||
        rows4[i].savings_vs_no_index >
            rows2[i].savings_vs_no_index + 1e-9) {
      below_ideal = false;
    }
  }
  std::printf("shape check: selection-algorithm savings <= ideal savings "
              "everywhere: %s\n",
              below_ideal ? "PASS" : "FAIL");
  bool mid_band_substantial = true;
  for (size_t i = 3; i <= 6; ++i) {  // 1/300 .. 1/3600
    if (rows4[i].savings_vs_index_all < 0.2 ||
        rows4[i].savings_vs_no_index < 0.2) {
      mid_band_substantial = false;
    }
  }
  std::printf("shape check: substantial savings at average frequencies: "
              "%s\n",
              mid_band_substantial ? "PASS" : "FAIL");
  return (below_ideal && mid_band_substantial) ? 0 : 1;
}
