// Regenerates paper Table 1: parameters of the sample scenario, plus the
// derived primitive costs of Section 3 at each end of the load range.

#include <cstdio>

#include "bench_common.h"
#include "model/cost_model.h"
#include "model/scenario_params.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader("bench_table1 -- scenario parameters",
                     "Table 1 (Section 4)");
  model::ScenarioParams params;
  std::printf("%s\n", params.ToTable().c_str());

  // Derived quantities the text quotes alongside Table 1.
  model::CostModel m(params);
  TableWriter derived({"derived quantity", "value", "paper reference"});
  derived.AddRow({"cSUnstr [msg]",
                  TableWriter::FormatDouble(m.CostSearchUnstructured(), 6),
                  "Eq. 6 (= 720)"});
  derived.AddRow({"cSIndx(full DHT) [msg]",
                  TableWriter::FormatDouble(m.CostSearchIndex(20000), 6),
                  "Eq. 7 (~ 7.1)"});
  derived.AddRow({"cRtn(full index) [msg/s/key]",
                  TableWriter::FormatDouble(m.CostRoutingMaintenance(40000), 6),
                  "Eq. 8 (~ 0.51)"});
  derived.AddRow({"cUpd(full DHT) [msg/s/key]",
                  TableWriter::FormatDouble(m.CostUpdate(20000), 6),
                  "Eq. 9 (~ 0.0011)"});
  derived.AddRow({"cIndKey(full index) [msg/s/key]",
                  TableWriter::FormatDouble(m.CostIndexKey(40000), 6),
                  "Eq. 10"});
  derived.AddRow({"fMin(full index) [1/s]",
                  TableWriter::FormatDouble(m.FMin(40000), 6),
                  "Eq. 2"});
  derived.AddRow(
      {"peers for full index", std::to_string(m.NumActivePeers(40000)),
       "Section 4 (= 20000)"});
  bench::EmitTable(derived, csv);
  return 0;
}
