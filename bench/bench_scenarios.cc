// Correlated-failure recovery under the cluster-outage scenario
// (sim/scenario.h): one whole transit-stub cluster is forced offline
// mid-run and healed later, per registered backend at two policy rungs:
//
//   baseline   -- the +timeout rung of bench_latency (proximity routing,
//                 route-time PNS, fixed-ceiling timeout costing),
//   resilient  -- + adaptive per-peer RTO and replica-route failover
//                 (this PR's fault-tolerance layer).
//
// Each cell is ONE simulation run (no experiment-runner aggregation):
// recovery is judged from the per-round hit-rate series via
// ComputeRecoveryMetrics, which needs the series, not its tail mean.
// All cells pin sim_shards = 4 so the sharded engine's task order -- and
// therefore every recorded series -- is independent of --sim-threads.
//
// Shape checks:
//   1. The outage engages and disrupts lookups: the online fraction
//      drops during the outage window in every cell, and the per-round
//      probe-timeout rate rises in every baseline cell.  (The hit rate
//      itself barely moves: the query-driven partial index reassigns
//      responsibility to live peers and repopulates on the first miss,
//      so at repl=25 no key loses all its replicas -- the worst-window
//      hit rate is reported as the depth-of-dip measurement, not
//      asserted as a dip.)
//   2. Recovery: after the heal the hit rate is within 5% of the
//      pre-outage steady state (ComputeRecoveryMetrics at threshold
//      0.95) in every cell.
//   3. Resilience pays: the resilient rung's mean lookup RTT stays below
//      the baseline rung's for every backend (dead cluster members stop
//      costing full fixed-timeout ladders).
//   4. Determinism: the kademlia/resilient cell re-run at sim_threads=4
//      reproduces the sim_threads=1 snapshot and hit-rate series bit for
//      bit (the acceptance gate for the new metrics).
//
// Emits BENCH_scenarios.json (--json=<path>; smoke budgets default to
// BENCH_scenarios_smoke.json so they cannot clobber the committed
// baseline).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "net/delivery_model.h"
#include "overlay/structured_overlay.h"
#include "sim/round_engine.h"
#include "sim/scenario.h"
#include "stats/table_writer.h"

namespace {

using pdht::TableWriter;
using pdht::core::PdhtSystem;
using pdht::core::SystemConfig;

constexpr uint64_t kSeed = 20260731;
constexpr uint64_t kDefaultRounds = 360;
constexpr double kRecoveryThreshold = 0.95;

/// The bench_latency 1/14 scenario moved onto the transit-stub topology
/// (the outage needs clusters to take down), sharded engine pinned at 4
/// shards for thread-count-independent series.
SystemConfig ScenarioConfigFor(pdht::core::DhtBackend backend,
                               uint64_t rounds, bool resilient) {
  SystemConfig c;
  c.params.num_peers = 1428;
  c.params.keys = 2857;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = pdht::core::Strategy::kPartialTtl;
  c.backend = backend;
  c.churn.enabled = true;
  c.seed = kSeed;
  c.sim_threads = 1;
  c.sim_shards = 4;
  c.delivery_model = pdht::net::DeliveryModelKind::kLatency;
  c.latency.topology = pdht::net::LatencyTopology::kTransitStub;
  c.proximity_routing = true;
  c.route_proximity = true;
  c.timeout_costing = true;
  c.adaptive_rto = resilient;
  c.replica_route = resilient;
  c.scenario.kind = pdht::sim::ScenarioKind::kClusterOutage;
  c.scenario.outage_start_round = rounds / 3;
  c.scenario.outage_end_round = 2 * rounds / 3;
  return c;
}

struct CellResult {
  std::string label;
  pdht::sim::RecoveryMetrics recovery;
  std::vector<double> hit_series;
  std::vector<double> online_series;
  std::vector<double> timeout_series;
  std::vector<double> msg_series;
  pdht::core::RunSnapshot snap;
};

CellResult RunCell(const std::string& label, const SystemConfig& config,
                   uint64_t rounds, size_t tail) {
  PdhtSystem sys(config);
  sys.RunRounds(rounds);
  CellResult r;
  r.label = label;
  r.hit_series = sys.engine().Series(PdhtSystem::kSeriesHitRate).values();
  r.online_series =
      sys.engine().Series(PdhtSystem::kSeriesOnlineFraction).values();
  r.timeout_series =
      sys.engine().Series(PdhtSystem::kSeriesTimeoutRate).values();
  r.msg_series = sys.engine().Series(PdhtSystem::kSeriesMsgTotal).values();
  r.snap = sys.Snapshot(tail);
  return r;
}

/// Mean over series[first, last) clamped to the series; 0 when empty.
double WindowMean(const std::vector<double>& s, size_t first, size_t last) {
  first = std::min(first, s.size());
  last = std::min(last, s.size());
  if (first >= last) return 0.0;
  double sum = 0.0;
  for (size_t i = first; i < last; ++i) sum += s[i];
  return sum / static_cast<double>(last - first);
}

double LatencyMetric(const CellResult& r, const char* key) {
  auto it = r.snap.latency.find(key);
  return it == r.snap.latency.end() ? std::nan("") : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  pdht::bench::BenchFlags flags = pdht::bench::ParseBenchFlags(argc, argv);
  const uint64_t rounds = flags.RoundsOrDefault(kDefaultRounds);
  const uint64_t outage_start = rounds / 3;
  const uint64_t heal = 2 * rounds / 3;
  const size_t window = std::max<uint64_t>(5, rounds / 24);
  const size_t tail = std::max<uint64_t>(1, rounds - heal);

  pdht::bench::PrintHeader(
      "bench_scenarios -- correlated cluster outage and recovery per "
      "backend (1/14 scale, transit-stub topology, churn on)",
      "time-to-recover and worst-window hit rate; baseline artifact "
      "BENCH_scenarios.json");
  std::printf("outage rounds [%llu, %llu), recovery window %zu rounds, "
              "threshold %.2f\n",
              static_cast<unsigned long long>(outage_start),
              static_cast<unsigned long long>(heal), window,
              kRecoveryThreshold);

  std::vector<CellResult> cells;
  for (pdht::core::DhtBackend backend : pdht::overlay::RegisteredBackends()) {
    for (bool resilient : {false, true}) {
      std::string label = std::string(pdht::core::DhtBackendName(backend)) +
                          (resilient ? "/resilient" : "/baseline");
      SystemConfig c = ScenarioConfigFor(backend, rounds, resilient);
      cells.push_back(RunCell(label, c, rounds, tail));
      CellResult& r = cells.back();
      r.recovery = pdht::sim::ComputeRecoveryMetrics(
          r.hit_series, outage_start, heal, window, kRecoveryThreshold);
      std::printf("measured %-20s: pre %.4f, worst %.4f, %s\n",
                  r.label.c_str(), r.recovery.pre_outage_mean,
                  r.recovery.worst_window,
                  r.recovery.recovered
                      ? (std::string("recovered +") +
                         std::to_string(r.recovery.recovery_rounds) +
                         " rounds after heal")
                            .c_str()
                      : "NOT recovered");
    }
  }

  TableWriter table({"cell", "pre-outage hit", "worst window", "dip",
                     "recovery [rounds]", "rtt mean [ms]", "failovers"});
  for (const CellResult& r : cells) {
    const double rtt = LatencyMetric(r, PdhtSystem::kMetricLookupRttMean);
    const double failovers =
        LatencyMetric(r, PdhtSystem::kMetricLookupFailovers);
    char pre[32], worst[32], dip[32], rec[32], rtt_s[32], fo[32];
    std::snprintf(pre, sizeof pre, "%.4f", r.recovery.pre_outage_mean);
    std::snprintf(worst, sizeof worst, "%.4f", r.recovery.worst_window);
    std::snprintf(dip, sizeof dip, "%.1f%%",
                  r.recovery.pre_outage_mean > 0.0
                      ? 100.0 * (1.0 - r.recovery.worst_window /
                                           r.recovery.pre_outage_mean)
                      : 0.0);
    std::snprintf(rec, sizeof rec, "%s",
                  r.recovery.recovered
                      ? std::to_string(r.recovery.recovery_rounds).c_str()
                      : "never");
    std::snprintf(rtt_s, sizeof rtt_s, "%.2f", rtt);
    if (std::isnan(failovers)) {
      std::snprintf(fo, sizeof fo, "-");
    } else {
      std::snprintf(fo, sizeof fo, "%.0f", failovers);
    }
    table.AddRow({r.label, pre, worst, dip, rec, rtt_s, fo});
  }
  pdht::bench::EmitTable(table, flags.csv);

  // --- Shape checks ----------------------------------------------------
  bool pass = true;

  // 1. The outage engages: online fraction drops during the outage
  //    window in every cell, and the probe-timeout rate rises in every
  //    baseline cell (lookups actually run into the dead cluster).
  bool dip_visible = true;
  for (const CellResult& r : cells) {
    const double online_pre =
        WindowMean(r.online_series, outage_start - window, outage_start);
    const double online_out =
        WindowMean(r.online_series, outage_start, heal);
    if (!(online_out < 0.95 * online_pre)) {
      dip_visible = false;
      std::printf("  no online-fraction drop in cell %s (%.4f -> %.4f)\n",
                  r.label.c_str(), online_pre, online_out);
    }
    const bool baseline = r.label.find("/baseline") != std::string::npos;
    if (baseline) {
      // Per-message, not per-round: the outage also removes ~a cluster's
      // worth of query origins, so the raw per-round timeout count can
      // fall even while the timeout *probability* rises.
      const double msg_pre =
          WindowMean(r.msg_series, outage_start - window, outage_start);
      const double msg_out = WindowMean(r.msg_series, outage_start, heal);
      const double to_pre =
          WindowMean(r.timeout_series, outage_start - window, outage_start) /
          std::max(msg_pre, 1.0);
      const double to_out =
          WindowMean(r.timeout_series, outage_start, heal) /
          std::max(msg_out, 1.0);
      if (!(to_out > to_pre)) {
        dip_visible = false;
        std::printf("  no timeout-per-message rise in cell %s "
                    "(%.4f -> %.4f)\n",
                    r.label.c_str(), to_pre, to_out);
      }
    }
  }
  std::printf("shape check: the cluster outage drops the online fraction "
              "and raises the baseline probe-timeout rate: %s\n",
              dip_visible ? "PASS" : "FAIL");
  pass &= dip_visible;

  // 2. Every cell recovers to within 5% of steady state after the heal.
  bool recovered = true;
  for (const CellResult& r : cells) {
    if (!r.recovery.recovered) {
      recovered = false;
      std::printf("  cell %s never recovered\n", r.label.c_str());
    }
  }
  std::printf("shape check: hit rate recovers to within %.0f%% of the "
              "pre-outage steady state after the heal in every cell: %s\n",
              100.0 * (1.0 - kRecoveryThreshold),
              recovered ? "PASS" : "FAIL");
  pass &= recovered;

  // 3. The resilient rung's mean lookup RTT beats baseline per backend.
  bool resilient_wins = true;
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    const double base =
        LatencyMetric(cells[i], PdhtSystem::kMetricLookupRttMean);
    const double res =
        LatencyMetric(cells[i + 1], PdhtSystem::kMetricLookupRttMean);
    const bool ok = res > 0.0 && res < base;
    std::printf("info: %-10s baseline %.2f ms -> resilient %.2f ms "
                "(%+.1f%%): %s\n",
                cells[i].label.c_str(), base, res,
                base > 0.0 ? 100.0 * (res / base - 1.0) : 0.0,
                ok ? "ok" : "WORSE");
    resilient_wins &= ok;
  }
  std::printf("shape check: adaptive RTO + replica failover reduce mean "
              "lookup RTT vs the fixed-timeout baseline for every "
              "backend: %s\n", resilient_wins ? "PASS" : "FAIL");
  pass &= resilient_wins;

  // 4. Thread-count determinism: the kademlia/resilient cell re-run at
  //    sim_threads=4 (same 4 shards) must reproduce the snapshot and the
  //    full hit-rate series bit for bit.
  {
    SystemConfig c =
        ScenarioConfigFor(pdht::core::DhtBackend::kKademlia, rounds, true);
    c.sim_threads = 4;
    CellResult rerun = RunCell("kademlia/resilient@t4", c, rounds, tail);
    const CellResult* t1 = nullptr;
    for (const CellResult& r : cells) {
      if (r.label == "kademlia/resilient") t1 = &r;
    }
    bool identical = t1 != nullptr && rerun.hit_series == t1->hit_series &&
                     rerun.snap.series_tail == t1->snap.series_tail &&
                     rerun.snap.latency == t1->snap.latency &&
                     rerun.snap.index_keys == t1->snap.index_keys;
    std::printf("shape check: scenario metrics are bit-identical at "
                "sim_threads 1 vs 4: %s\n", identical ? "PASS" : "FAIL");
    pass &= identical;
  }

  std::string json_path = flags.json;
  if (json_path.empty()) {
    json_path =
        flags.smoke ? "BENCH_scenarios_smoke.json" : "BENCH_scenarios.json";
  }
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write json baseline to %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"scenarios\",\n");
  std::fprintf(f, "  \"scenario\": \"cluster_outage\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"rounds\": %llu,\n",
               static_cast<unsigned long long>(rounds));
  std::fprintf(f, "  \"outage_start\": %llu,\n",
               static_cast<unsigned long long>(outage_start));
  std::fprintf(f, "  \"heal\": %llu,\n",
               static_cast<unsigned long long>(heal));
  std::fprintf(f, "  \"window\": %zu,\n", window);
  std::fprintf(f, "  \"threshold\": %.2f,\n", kRecoveryThreshold);
  std::fprintf(f, "  \"smoke\": %s,\n", flags.smoke ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = cells[i];
    const double rtt = LatencyMetric(r, PdhtSystem::kMetricLookupRttMean);
    const double failovers =
        LatencyMetric(r, PdhtSystem::kMetricLookupFailovers);
    std::fprintf(f,
                 "    {\"cell\": \"%s\", \"pre_outage_hit\": %.6f, "
                 "\"worst_window_hit\": %.6f, \"recovered\": %s, "
                 "\"recovery_rounds\": %llu, \"lookup_rtt_mean_ms\": ",
                 r.label.c_str(), r.recovery.pre_outage_mean,
                 r.recovery.worst_window,
                 r.recovery.recovered ? "true" : "false",
                 static_cast<unsigned long long>(r.recovery.recovery_rounds));
    if (std::isnan(rtt)) {
      std::fprintf(f, "null");
    } else {
      std::fprintf(f, "%.3f", rtt);
    }
    std::fprintf(f, ", \"failovers\": ");
    if (std::isnan(failovers)) {
      std::fprintf(f, "null");
    } else {
      std::fprintf(f, "%.0f", failovers);
    }
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json baseline written to %s\n", json_path.c_str());

  return pdht::bench::ShapeCheckExit(flags, pass);
}
