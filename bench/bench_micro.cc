// google-benchmark microbenchmarks for the hot primitives of the library:
// RNG, Zipf sampling, TTL-index operations, Chord lookups, analytical
// model evaluation.  These guard the simulator's throughput (a 20,000-peer
// run issues millions of these operations).

#include <benchmark/benchmark.h>

#include "core/ttl_index.h"
#include "model/cost_model.h"
#include "model/selection_model.h"
#include "net/network.h"
#include "overlay/dht/chord.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

using namespace pdht;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngUniformBounded(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformU64(12345));
  }
}
BENCHMARK(BM_RngUniformBounded);

void BM_ZipfTableSample(benchmark::State& state) {
  ZipfSampler z(static_cast<uint64_t>(state.range(0)), 1.2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Sample(rng));
  }
}
BENCHMARK(BM_ZipfTableSample)->Arg(1000)->Arg(40000);

void BM_ZipfRejectionSample(benchmark::State& state) {
  ZipfRejectionSampler z(static_cast<uint64_t>(state.range(0)), 1.2);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Sample(rng));
  }
}
BENCHMARK(BM_ZipfRejectionSample)->Arg(1000)->Arg(40000);

void BM_TtlIndexPutTouch(benchmark::State& state) {
  core::TtlIndex idx(static_cast<uint64_t>(state.range(0)));
  Rng rng(5);
  double now = 0.0;
  for (auto _ : state) {
    now += 0.001;
    uint64_t key = rng.UniformU64(1000);
    if (!idx.Touch(key, now, 100.0)) {
      idx.Put(key, now, 100.0);
    }
  }
}
BENCHMARK(BM_TtlIndexPutTouch)->Arg(0)->Arg(100);

void BM_TtlIndexEvictExpired(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    core::TtlIndex idx;
    for (uint64_t k = 0; k < 1000; ++k) {
      idx.Put(k, 0.0, 1.0 + static_cast<double>(k % 10));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(idx.EvictExpired(100.0));
  }
}
BENCHMARK(BM_TtlIndexEvictExpired);

void BM_ChordLookup(benchmark::State& state) {
  CounterRegistry counters;
  net::Network net(&counters);
  overlay::ChordOverlay chord(&net, Rng(6));
  uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<net::PeerId> members;
  for (uint32_t i = 0; i < n; ++i) {
    members.push_back(i);
    net.SetOnline(i, true);
  }
  chord.SetMembers(members);
  Rng pick(7);
  for (auto _ : state) {
    overlay::LookupResult r = chord.Lookup(
        static_cast<net::PeerId>(pick.UniformU64(n)), pick.Next());
    benchmark::DoNotOptimize(r.hops);
  }
}
BENCHMARK(BM_ChordLookup)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CostModelEvaluate(benchmark::State& state) {
  model::ScenarioParams p;
  model::CostModel m(p);
  double f = 1.0 / 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Evaluate(f).partial);
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_SelectionModelEvaluate(benchmark::State& state) {
  model::ScenarioParams p;
  model::SelectionModel sel(p);
  double f = 1.0 / 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.Evaluate(f).partial);
  }
}
BENCHMARK(BM_SelectionModelEvaluate);

}  // namespace

BENCHMARK_MAIN();
