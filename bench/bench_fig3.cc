// Regenerates paper Fig. 3: percentage of indexed keys (index size) and
// percentage of queries answered from the index (pIndxd) vs query
// frequency, under ideal partial indexing.
//
// Shape expectations (paper): both decrease as load falls, with pIndxd
// staying far above the index-size fraction ("even a small index can
// answer a high percentage of queries" -- the Zipf head effect).

#include "bench_common.h"
#include "model/sweep.h"
#include "stats/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader("bench_fig3 -- index size and pIndxd",
                     "Fig. 3 (Section 4)");
  model::ScenarioParams params;
  auto rows =
      model::SweepFig3(params, model::ScenarioParams::PaperQueryFrequencies());
  bench::EmitTable(model::Fig3Table(rows), csv);

  AsciiChart chart(64, 12);
  chart.SetYRange(0.0, 1.0);
  std::vector<double> size, p_indxd;
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    size.push_back(r.index_size_fraction);
    p_indxd.push_back(r.p_indxd);
    labels.push_back(model::FrequencyLabel(r.f_qry));
  }
  chart.AddSeries("index size", size, 'S');
  chart.AddSeries("pIndxd", p_indxd, 'P');
  chart.SetXLabels(labels);
  std::printf("%s\n", chart.Render().c_str());

  bool head_effect = true;
  for (const auto& r : rows) {
    if (r.p_indxd < r.index_size_fraction) head_effect = false;
  }
  std::printf(
      "shape check: pIndxd >= index fraction at all frequencies: %s\n",
      head_effect ? "PASS" : "FAIL");
  std::printf("at 1/7200: index only %.1f%% of keys answers %.0f%% of "
              "queries\n",
              rows.back().index_size_fraction * 100.0,
              rows.back().p_indxd * 100.0);
  return head_effect ? 0 : 1;
}
