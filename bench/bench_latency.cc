// Lookup latency under the pluggable delivery models and routing
// policies (PR 4 opened the latency axis; the routing-driver PR makes
// lookups latency- and timeout-aware).  Two tables:
//
// Table 1 -- the kademlia 1/14 headline, one row per policy rung:
//   immediate     -- the seed's synchronous delivery (message counts only),
//   blind         -- latency delivery, RTT-blind tables and routing,
//   table-pns     -- + proximity-aware bucket selection (PR 4's table-
//                    build PNS, StructuredOverlay::SetPeerRtt),
//   +route-pns    -- + route-time PNS (RoutingDriver candidate scoring +
//                    proximity entry selection),
//   +timeout      -- + timeout-aware failed-probe costing (failed probe
//                    rounds charge LatencyConfig::timeout_ms),
//   +adaptive-rto -- + per-peer Jacobson RTO estimation (failed probes
//                    charge srtt + 4*rttvar instead of the fixed ceiling),
//   +replica-route-- + latency-aware replica failover at terminal hops
//                    (route to the cheapest live replica of the key's
//                    group instead of insisting on the primary).
//
// Table 2 -- the routing-policy grid per registered backend (blind /
// table-pns / table-pns+route-pns / +timeout costing at the same 1/14
// scenario), the cross-backend view the shared RoutingDriver makes a
// ~zero-code sweep.
//
// Shape checks:
//   1. Message counts are delivery-model invariant: every per-cell
//      msg.rate.* / hit.rate metric under `blind` equals the `immediate`
//      cell bit-for-bit (the models only decide *when* handlers run).
//   2. Table-build PNS reduces mean lookup RTT vs blind (the PR 4 win).
//   3. Route-time PNS reduces it further vs table-only PNS (this PR's
//      acceptance criterion).
//   4. Timeout costing surfaces timeouts (lookup.timeout.n > 0) and
//      prices them (mean lookup RTT >= the uncosted variant); counts
//      stay bit-identical to the +route-pns cell.
//   5. Routing stretch falls monotonically blind -> table -> +route.
//   6. Adaptive RTO re-prices timeouts without touching a routing
//      decision: counts stay bit-identical to +timeout while the mean
//      lookup RTT strictly drops.
//   7. Replica failover strictly reduces mean lookup RTT vs +timeout
//      (dead primaries stop costing full timeout ladders).
//   8. (full grid) Both wins replicate on the CAN and Kademlia rows.
//
// Seeds are paired across the variant runs (same ExperimentSpec shape,
// same base seed, no extra axes), so the comparisons are per-cell, not
// just in-expectation.  Emits BENCH_latency.json (--json=<path>;
// smoke-budget runs default to BENCH_latency_smoke.json so they cannot
// clobber the committed full-budget baseline).  --full doubles the round
// budget (nightly runs it that way and uploads the artifacts).

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "net/delivery_model.h"
#include "overlay/structured_overlay.h"
#include "stats/table_writer.h"

namespace {

using pdht::TableWriter;
using pdht::core::PdhtSystem;
using pdht::core::SystemConfig;

constexpr uint64_t kSeed = 20260730;
constexpr uint64_t kDefaultRounds = 240;

/// Table 1 at 1/14 scale (the bench_perf_roundloop scenario): 1428 peers,
/// 2857 keys, churn on, Kademlia-backed partialTtl index.
SystemConfig Scale14Config() {
  SystemConfig c;
  c.params.num_peers = 1428;
  c.params.keys = 2857;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = pdht::core::Strategy::kPartialTtl;
  c.backend = pdht::core::DhtBackend::kKademlia;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

/// The four routing-policy rungs of the latency axis, applied on top of
/// kLatency delivery.
struct Policy {
  const char* label;
  bool table_pns;
  bool route_pns;
  bool timeout;
  bool adaptive;
  bool replica;
};

constexpr Policy kPolicies[] = {
    {"blind", false, false, false, false, false},
    {"table-pns", true, false, false, false, false},
    {"table+route-pns", true, true, false, false, false},
    {"+timeout", true, true, true, false, false},
    {"+adaptive-rto", true, true, true, true, false},
    {"+replica-route", true, true, true, true, true},
};

void ApplyPolicy(SystemConfig* c, const Policy& p) {
  c->delivery_model = pdht::net::DeliveryModelKind::kLatency;
  c->proximity_routing = p.table_pns;
  c->route_proximity = p.route_pns;
  c->timeout_costing = p.timeout;
  c->adaptive_rto = p.adaptive;
  c->replica_route = p.replica;
}

struct VariantResult {
  std::string label;
  std::vector<pdht::exp::CellResult> cells;
  pdht::exp::AggregateRow row;  ///< single-grid-point aggregate
};

double Mean(const pdht::exp::AggregateRow& row, const char* key) {
  return row.Stat(key).mean;
}

VariantResult RunVariant(pdht::exp::ParallelRunner& runner,
                         const std::string& label, const SystemConfig& base,
                         uint64_t rounds, uint32_t seeds) {
  pdht::exp::ExperimentSpec spec;
  spec.name = "latency_" + label;
  spec.base = base;
  spec.rounds = rounds;
  spec.tail = std::max<size_t>(1, rounds / 4);
  spec.seeds_per_cell = seeds;
  VariantResult r;
  r.label = label;
  r.cells = runner.Run(spec);
  r.row = pdht::exp::Aggregate(spec, r.cells).front();
  return r;
}

/// JSON has no NaN literal; absent metrics (the immediate variant has no
/// latency axis) serialize as null.
void PrintJsonNumber(std::FILE* f, double v, int precision) {
  if (std::isnan(v)) {
    std::fprintf(f, "null");
  } else {
    std::fprintf(f, "%.*f", precision, v);
  }
}

void PrintJsonRow(std::FILE* f, const pdht::exp::AggregateRow& row) {
  std::fprintf(f, "\"msgs_per_round\": %.2f, \"hit_rate\": %.4f, ",
               Mean(row, PdhtSystem::kSeriesMsgTotal),
               Mean(row, PdhtSystem::kSeriesHitRate));
  const std::vector<std::pair<const char*, const char*>> fields = {
      {"lookup_rtt_mean_ms", PdhtSystem::kMetricLookupRttMean},
      {"lookup_rtt_p50_ms", PdhtSystem::kMetricLookupRttP50},
      {"lookup_rtt_p95_ms", PdhtSystem::kMetricLookupRttP95},
      {"lookup_rtt_p99_ms", PdhtSystem::kMetricLookupRttP99},
      {"lookup_hops_mean", PdhtSystem::kMetricLookupHopsMean},
      {"timeouts", PdhtSystem::kMetricLookupTimeouts},
      {"failovers", PdhtSystem::kMetricLookupFailovers}};
  for (const auto& [name, key] : fields) {
    std::fprintf(f, "\"%s\": ", name);
    PrintJsonNumber(f, Mean(row, key), 3);
    std::fprintf(f, ", ");
  }
  std::fprintf(f, "\"stretch\": ");
  PrintJsonNumber(f, Mean(row, PdhtSystem::kMetricLookupStretch), 4);
}

bool WriteJson(const std::string& path,
               const std::vector<VariantResult>& headline,
               const std::vector<VariantResult>& policy_rows,
               uint64_t rounds, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"latency\",\n");
  std::fprintf(f, "  \"scenario\": \"scale_1_14\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"rounds\": %llu,\n",
               static_cast<unsigned long long>(rounds));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"variants\": [\n");
  for (size_t i = 0; i < headline.size(); ++i) {
    std::fprintf(f, "    {\"delivery\": \"%s\", ",
                 headline[i].label.c_str());
    PrintJsonRow(f, headline[i].row);
    std::fprintf(f, "}%s\n", i + 1 < headline.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"policy_table\": [\n");
  for (size_t i = 0; i < policy_rows.size(); ++i) {
    std::fprintf(f, "    {\"cell\": \"%s\", ",
                 policy_rows[i].label.c_str());
    PrintJsonRow(f, policy_rows[i].row);
    std::fprintf(f, "}%s\n", i + 1 < policy_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void EmitResultTable(const char* title,
                     const std::vector<VariantResult>& results,
                     const std::string& csv) {
  std::printf("\n%s\n", title);
  TableWriter table({"cell", "msg/round (tail)", "hit rate",
                     "rtt mean [ms]", "p50", "p95", "hops", "timeouts",
                     "stretch"});
  for (const VariantResult& r : results) {
    auto cell = [&](const char* key, int prec) {
      return pdht::exp::FormatStats(r.row.Stat(key), prec);
    };
    const bool has_rtt =
        r.row.Stat(PdhtSystem::kMetricLookupRttMean).n > 0;
    table.AddRow(
        {r.label, cell(PdhtSystem::kSeriesMsgTotal, 6),
         cell(PdhtSystem::kSeriesHitRate, 4),
         has_rtt ? cell(PdhtSystem::kMetricLookupRttMean, 4) : "-",
         has_rtt ? cell(PdhtSystem::kMetricLookupRttP50, 4) : "-",
         has_rtt ? cell(PdhtSystem::kMetricLookupRttP95, 4) : "-",
         has_rtt ? cell(PdhtSystem::kMetricLookupHopsMean, 4) : "-",
         has_rtt ? cell(PdhtSystem::kMetricLookupTimeouts, 0) : "-",
         has_rtt ? cell(PdhtSystem::kMetricLookupStretch, 4) : "-"});
  }
  pdht::bench::EmitTable(table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  pdht::bench::BenchFlags flags = pdht::bench::ParseBenchFlags(argc, argv);
  const uint64_t rounds =
      flags.RoundsOrDefault(flags.full ? 2 * kDefaultRounds : kDefaultRounds);

  pdht::bench::PrintHeader(
      "bench_latency -- lookup RTT under pluggable delivery models and "
      "routing policies (1/14-scale Table 1, churn on)",
      "latency axis over the paper's message-count metric; baseline "
      "artifact BENCH_latency.json");

  pdht::exp::ParallelRunner runner({flags.threads});

  // --- Table 1: the kademlia headline ladder ---------------------------
  std::vector<VariantResult> headline;
  {
    SystemConfig imm = Scale14Config();
    imm.delivery_model = pdht::net::DeliveryModelKind::kImmediate;
    imm.proximity_routing = false;
    headline.push_back(
        RunVariant(runner, "immediate", imm, rounds, flags.seeds));
  }
  for (const Policy& p : kPolicies) {
    SystemConfig c = Scale14Config();
    ApplyPolicy(&c, p);
    headline.push_back(RunVariant(runner, p.label, c, rounds, flags.seeds));
    std::printf("measured %-16s: %.1f msg/round, lookup rtt mean %.2f ms\n",
                p.label, Mean(headline.back().row, PdhtSystem::kSeriesMsgTotal),
                Mean(headline.back().row, PdhtSystem::kMetricLookupRttMean));
  }
  EmitResultTable("table 1: delivery/policy ladder (kademlia, 1/14)",
                  headline, flags.csv);

  // --- Table 2: routing policies per registered backend ----------------
  // 24 cells of latency-delivery simulation: skipped on smoke budgets so
  // the CTest smoke target stays cheap (the headline ladder above
  // already proves count invariance and the policy wins; the full grid
  // runs at the default budget and nightly's --full).
  std::vector<VariantResult> policy_rows;
  if (!flags.smoke) {
    for (pdht::core::DhtBackend backend :
         pdht::overlay::RegisteredBackends()) {
      for (const Policy& p : kPolicies) {
        SystemConfig c = Scale14Config();
        c.backend = backend;
        ApplyPolicy(&c, p);
        policy_rows.push_back(RunVariant(
            runner,
            std::string(pdht::core::DhtBackendName(backend)) + "/" +
                p.label,
            c, rounds, flags.seeds));
      }
    }
    EmitResultTable("table 2: routing-policy grid per backend (1/14)",
                    policy_rows,
                    flags.csv.empty() ? std::string()
                                      : flags.csv + ".policy.csv");
  } else {
    std::printf("(smoke budget: skipping the per-backend routing-policy "
                "grid)\n");
  }

  // --- Shape checks ----------------------------------------------------
  bool pass = true;

  // 1. Message counts are delivery-model invariant, per cell and bit for
  //    bit: only metrics that exist under both models are compared (the
  //    latency run adds lookup.rtt.* / net.rate.deferred on top).
  const auto& imm_cells = headline[0].cells;
  const auto& blind_cells = headline[1].cells;
  bool invariant = imm_cells.size() == blind_cells.size();
  if (invariant) {
    for (size_t i = 0; i < imm_cells.size(); ++i) {
      for (const auto& [key, value] : imm_cells[i].metrics) {
        auto it = blind_cells[i].metrics.find(key);
        if (it == blind_cells[i].metrics.end() || it->second != value) {
          invariant = false;
          std::printf("  count divergence: cell %zu metric %s\n", i,
                      key.c_str());
          break;
        }
      }
    }
  }
  std::printf("shape check: latency delivery keeps every immediate-mode "
              "metric bit-identical: %s\n", invariant ? "PASS" : "FAIL");
  pass &= invariant;

  const double blind_rtt =
      Mean(headline[1].row, PdhtSystem::kMetricLookupRttMean);
  const double table_rtt =
      Mean(headline[2].row, PdhtSystem::kMetricLookupRttMean);
  const double route_rtt =
      Mean(headline[3].row, PdhtSystem::kMetricLookupRttMean);
  const double timeout_rtt =
      Mean(headline[4].row, PdhtSystem::kMetricLookupRttMean);
  const double adaptive_rtt =
      Mean(headline[5].row, PdhtSystem::kMetricLookupRttMean);
  const double replica_rtt =
      Mean(headline[6].row, PdhtSystem::kMetricLookupRttMean);

  // 2. The PR 4 win still holds: table-build PNS beats blind.
  const bool table_wins = table_rtt > 0.0 && table_rtt < blind_rtt;
  std::printf("shape check: kademlia table-PNS reduces mean lookup RTT "
              "(blind %.2f ms -> table %.2f ms, %.1f%% win): %s\n",
              blind_rtt, table_rtt,
              blind_rtt > 0.0 ? 100.0 * (1.0 - table_rtt / blind_rtt) : 0.0,
              table_wins ? "PASS" : "FAIL");
  pass &= table_wins;

  // 3. This PR's acceptance criterion: route-time PNS beats table-only.
  const bool route_wins = route_rtt > 0.0 && route_rtt < table_rtt;
  std::printf("shape check: route-time PNS improves on table-only PNS "
              "(table %.2f ms -> +route %.2f ms, %.1f%% win): %s\n",
              table_rtt, route_rtt,
              table_rtt > 0.0 ? 100.0 * (1.0 - route_rtt / table_rtt) : 0.0,
              route_wins ? "PASS" : "FAIL");
  pass &= route_wins;

  // 4. Timeout costing surfaces and prices failed-probe waits without
  //    touching a single counted message.
  const double timeouts =
      Mean(headline[4].row, PdhtSystem::kMetricLookupTimeouts);
  bool timeout_ok = timeouts > 0.0 && timeout_rtt >= route_rtt;
  if (timeout_ok) {
    const auto& route_cells = headline[3].cells;
    const auto& timeout_cells = headline[4].cells;
    for (size_t i = 0; i < route_cells.size() && timeout_ok; ++i) {
      for (const char* key :
           {PdhtSystem::kSeriesMsgTotal, PdhtSystem::kSeriesHitRate}) {
        if (route_cells[i].metrics.at(key) !=
            timeout_cells[i].metrics.at(key)) {
          timeout_ok = false;
          std::printf("  timeout costing changed counts: cell %zu %s\n", i,
                      key);
          break;
        }
      }
    }
  }
  std::printf("shape check: timeout costing prices failed probes "
              "(%.0f timeouts, rtt %.2f -> %.2f ms) and keeps counts "
              "bit-identical: %s\n",
              timeouts, route_rtt, timeout_rtt, timeout_ok ? "PASS" : "FAIL");
  pass &= timeout_ok;

  // 5. Routing stretch falls down the ladder.
  const double blind_stretch =
      Mean(headline[1].row, PdhtSystem::kMetricLookupStretch);
  const double route_stretch =
      Mean(headline[3].row, PdhtSystem::kMetricLookupStretch);
  const bool stretch_wins =
      route_stretch > 0.0 && route_stretch < blind_stretch;
  std::printf("shape check: routing stretch drops blind -> +route "
              "(%.3f -> %.3f): %s\n",
              blind_stretch, route_stretch, stretch_wins ? "PASS" : "FAIL");
  pass &= stretch_wins;

  // 6. Adaptive RTO is pure re-pricing: no routing decision changes
  //    (counts bit-identical to +timeout), yet failed probes now charge
  //    the learned per-link srtt + 4*rttvar instead of the fixed
  //    ceiling, so the mean lookup RTT strictly drops.
  bool adaptive_ok = adaptive_rtt > 0.0 && adaptive_rtt < timeout_rtt;
  if (adaptive_ok) {
    const auto& timeout_cells = headline[4].cells;
    const auto& adaptive_cells = headline[5].cells;
    for (size_t i = 0; i < timeout_cells.size() && adaptive_ok; ++i) {
      for (const char* key :
           {PdhtSystem::kSeriesMsgTotal, PdhtSystem::kSeriesHitRate}) {
        if (timeout_cells[i].metrics.at(key) !=
            adaptive_cells[i].metrics.at(key)) {
          adaptive_ok = false;
          std::printf("  adaptive RTO changed counts: cell %zu %s\n", i,
                      key);
          break;
        }
      }
    }
  }
  std::printf("shape check: adaptive RTO re-prices timeouts "
              "(rtt %.2f -> %.2f ms, %.1f%% win) with bit-identical "
              "counts: %s\n",
              timeout_rtt, adaptive_rtt,
              timeout_rtt > 0.0 ? 100.0 * (1.0 - adaptive_rtt / timeout_rtt)
                                : 0.0,
              adaptive_ok ? "PASS" : "FAIL");
  pass &= adaptive_ok;

  // 7. Replica failover beats the fixed-timeout rung: terminal hops stop
  //    paying full timeout ladders for dead primaries.
  const bool replica_wins = replica_rtt > 0.0 && replica_rtt < timeout_rtt;
  const double failovers =
      Mean(headline[6].row, PdhtSystem::kMetricLookupFailovers);
  std::printf("shape check: replica failover reduces mean lookup RTT vs "
              "+timeout (%.2f -> %.2f ms, %.1f%% win; %.0f failovers): %s\n",
              timeout_rtt, replica_rtt,
              timeout_rtt > 0.0 ? 100.0 * (1.0 - replica_rtt / timeout_rtt)
                                : 0.0,
              failovers, replica_wins ? "PASS" : "FAIL");
  pass &= replica_wins;

  // 8. (full grid only) The resilience wins replicate on the CAN and
  //    Kademlia rows -- the two backends the motivation data shows
  //    exploding under fixed timeouts.
  constexpr size_t kRungs = std::size(kPolicies);
  if (!flags.smoke) {
    for (size_t i = 0; i + kRungs - 1 < policy_rows.size(); i += kRungs) {
      const std::string& label = policy_rows[i].label;
      const bool checked = label.rfind("can/", 0) == 0 ||
                           label.rfind("kademlia/", 0) == 0;
      if (!checked) continue;
      const double t =
          Mean(policy_rows[i + 3].row, PdhtSystem::kMetricLookupRttMean);
      const double a =
          Mean(policy_rows[i + 4].row, PdhtSystem::kMetricLookupRttMean);
      const double rr =
          Mean(policy_rows[i + 5].row, PdhtSystem::kMetricLookupRttMean);
      const bool ok = a > 0.0 && a < t && rr > 0.0 && rr < t;
      std::printf("shape check: %-10s +timeout %.2f ms -> adaptive %.2f / "
                  "replica %.2f ms: %s\n",
                  label.c_str(), t, a, rr, ok ? "PASS" : "FAIL");
      pass &= ok;
    }
  }

  // Informational: per-backend route-PNS wins (structural for CAN, whose
  // exact-tie candidate groups leave little reordering freedom).
  for (size_t i = 0; i + kRungs - 1 < policy_rows.size(); i += kRungs) {
    const double b = Mean(policy_rows[i].row, PdhtSystem::kMetricLookupRttMean);
    const double r =
        Mean(policy_rows[i + 2].row, PdhtSystem::kMetricLookupRttMean);
    std::printf("info: %-24s blind %.2f ms -> table+route %.2f ms "
                "(%+.1f%%)\n",
                policy_rows[i].label.c_str(), b, r,
                b > 0.0 ? 100.0 * (r / b - 1.0) : 0.0);
  }

  std::string json_path = flags.json;
  if (json_path.empty()) {
    json_path =
        flags.smoke ? "BENCH_latency_smoke.json" : "BENCH_latency.json";
  }
  if (WriteJson(json_path, headline, policy_rows, rounds, flags.smoke)) {
    std::printf("json baseline written to %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write json baseline to %s\n", json_path.c_str());
    return 1;
  }

  return pdht::bench::ShapeCheckExit(flags, pass);
}
