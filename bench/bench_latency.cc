// Lookup latency under the pluggable delivery models (PR 4's new
// measurement axis): the same 1/14-scale Table 1 scenario run under
//
//   immediate     -- the seed's synchronous delivery (message counts only),
//   latency       -- synthetic-coordinate delays, RTT-blind routing tables,
//   latency+pns   -- same delays, Kademlia proximity-aware bucket selection
//                    (StructuredOverlay::SetPeerRtt).
//
// Three claims are checked as shapes:
//   1. Message counts are delivery-model invariant: every per-cell
//      msg.rate.* / hit.rate metric under `latency` equals the `immediate`
//      cell bit-for-bit (the models only decide *when* handlers run).
//   2. Proximity-aware bucket selection reduces mean lookup RTT vs the
//      RTT-blind baseline at the same scenario (the PNS win).
//   3. Routing stretch (lookup RTT / direct origin->terminus RTT) drops
//      accordingly.
//
// Seeds are paired across the three runs (same ExperimentSpec shape, same
// base seed, no extra axes), so the comparisons are per-cell, not just
// in-expectation.  Emits BENCH_latency.json (--json=<path>; smoke-budget
// runs default to BENCH_latency_smoke.json so they cannot clobber the
// committed full-budget baseline).

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "net/delivery_model.h"
#include "stats/table_writer.h"

namespace {

using pdht::TableWriter;
using pdht::core::PdhtSystem;
using pdht::core::SystemConfig;

constexpr uint64_t kSeed = 20260730;
constexpr uint64_t kDefaultRounds = 240;

/// Table 1 at 1/14 scale (the bench_perf_roundloop scenario): 1428 peers,
/// 2857 keys, churn on, Kademlia-backed partialTtl index.
SystemConfig Scale14Config() {
  SystemConfig c;
  c.params.num_peers = 1428;
  c.params.keys = 2857;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = pdht::core::Strategy::kPartialTtl;
  c.backend = pdht::core::DhtBackend::kKademlia;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

struct Variant {
  std::string label;
  pdht::net::DeliveryModelKind delivery;
  bool proximity;
};

struct VariantResult {
  std::string label;
  std::vector<pdht::exp::CellResult> cells;
  pdht::exp::AggregateRow row;  ///< single-grid-point aggregate
};

double Mean(const pdht::exp::AggregateRow& row, const char* key) {
  return row.Stat(key).mean;
}

/// JSON has no NaN literal; absent metrics (the immediate variant has no
/// latency axis) serialize as null.
void PrintJsonNumber(std::FILE* f, double v, int precision) {
  if (std::isnan(v)) {
    std::fprintf(f, "null");
  } else {
    std::fprintf(f, "%.*f", precision, v);
  }
}

bool WriteJson(const std::string& path,
               const std::vector<VariantResult>& results, uint64_t rounds,
               bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"latency\",\n");
  std::fprintf(f, "  \"scenario\": \"scale_1_14\",\n");
  std::fprintf(f, "  \"backend\": \"kademlia\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"rounds\": %llu,\n",
               static_cast<unsigned long long>(rounds));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"variants\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const pdht::exp::AggregateRow& row = results[i].row;
    std::fprintf(f, "    {\"delivery\": \"%s\", \"msgs_per_round\": %.2f, "
                 "\"hit_rate\": %.4f, ",
                 results[i].label.c_str(),
                 Mean(row, PdhtSystem::kSeriesMsgTotal),
                 Mean(row, PdhtSystem::kSeriesHitRate));
    const std::vector<std::pair<const char*, const char*>> rtt_fields = {
        {"lookup_rtt_mean_ms", PdhtSystem::kMetricLookupRttMean},
        {"lookup_rtt_p50_ms", PdhtSystem::kMetricLookupRttP50},
        {"lookup_rtt_p95_ms", PdhtSystem::kMetricLookupRttP95},
        {"lookup_rtt_p99_ms", PdhtSystem::kMetricLookupRttP99}};
    for (const auto& [name, key] : rtt_fields) {
      std::fprintf(f, "\"%s\": ", name);
      PrintJsonNumber(f, Mean(row, key), 3);
      std::fprintf(f, ", ");
    }
    std::fprintf(f, "\"stretch\": ");
    PrintJsonNumber(f, Mean(row, PdhtSystem::kMetricLookupStretch), 4);
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pdht::bench::BenchFlags flags = pdht::bench::ParseBenchFlags(argc, argv);
  const uint64_t rounds = flags.RoundsOrDefault(kDefaultRounds);

  pdht::bench::PrintHeader(
      "bench_latency -- lookup RTT under pluggable delivery models "
      "(1/14-scale Table 1, kademlia, churn on)",
      "new measurement axis over the paper's message-count metric; "
      "baseline artifact BENCH_latency.json");

  const std::vector<Variant> variants = {
      {"immediate", pdht::net::DeliveryModelKind::kImmediate, false},
      {"latency", pdht::net::DeliveryModelKind::kLatency, false},
      {"latency+pns", pdht::net::DeliveryModelKind::kLatency, true},
  };

  // One spec per variant, no axes: the three runs share base seed and
  // cell indexing, so seed i of one variant pairs exactly with seed i of
  // every other (the per-cell invariance check depends on this).
  pdht::exp::ParallelRunner runner({flags.threads});
  std::vector<VariantResult> results;
  for (const Variant& v : variants) {
    pdht::exp::ExperimentSpec spec;
    spec.name = "latency_" + v.label;
    spec.base = Scale14Config();
    spec.base.delivery_model = v.delivery;
    spec.base.proximity_routing = v.proximity;
    spec.rounds = rounds;
    spec.tail = std::max<size_t>(1, rounds / 4);
    spec.seeds_per_cell = flags.seeds;
    VariantResult r;
    r.label = v.label;
    r.cells = runner.Run(spec);
    auto rows = pdht::exp::Aggregate(spec, r.cells);
    r.row = rows.front();
    results.push_back(std::move(r));
    std::printf("measured %-12s: %.1f msg/round, lookup rtt mean %.2f ms\n",
                v.label.c_str(),
                Mean(results.back().row, PdhtSystem::kSeriesMsgTotal),
                Mean(results.back().row, PdhtSystem::kMetricLookupRttMean));
  }

  TableWriter table({"delivery", "msg/round (tail)", "hit rate",
                     "rtt mean [ms]", "p50", "p95", "p99", "stretch"});
  for (const VariantResult& r : results) {
    auto cell = [&](const char* key, int prec) {
      return pdht::exp::FormatStats(r.row.Stat(key), prec);
    };
    const bool has_rtt =
        r.row.Stat(PdhtSystem::kMetricLookupRttMean).n > 0;
    table.AddRow({r.label,
                  cell(PdhtSystem::kSeriesMsgTotal, 6),
                  cell(PdhtSystem::kSeriesHitRate, 4),
                  has_rtt ? cell(PdhtSystem::kMetricLookupRttMean, 4) : "-",
                  has_rtt ? cell(PdhtSystem::kMetricLookupRttP50, 4) : "-",
                  has_rtt ? cell(PdhtSystem::kMetricLookupRttP95, 4) : "-",
                  has_rtt ? cell(PdhtSystem::kMetricLookupRttP99, 4) : "-",
                  has_rtt ? cell(PdhtSystem::kMetricLookupStretch, 4)
                          : "-"});
  }
  pdht::bench::EmitTable(table, flags.csv);

  // --- Shape checks ----------------------------------------------------
  bool pass = true;

  // 1. Message counts are delivery-model invariant, per cell and bit for
  //    bit: only metrics that exist under both models are compared (the
  //    latency run adds lookup.rtt.* / net.rate.deferred on top).
  const auto& imm_cells = results[0].cells;
  const auto& lat_cells = results[1].cells;
  bool invariant = imm_cells.size() == lat_cells.size();
  if (invariant) {
    for (size_t i = 0; i < imm_cells.size(); ++i) {
      for (const auto& [key, value] : imm_cells[i].metrics) {
        auto it = lat_cells[i].metrics.find(key);
        if (it == lat_cells[i].metrics.end() || it->second != value) {
          invariant = false;
          std::printf("  count divergence: cell %zu metric %s\n", i,
                      key.c_str());
          break;
        }
      }
    }
  }
  std::printf("shape check: latency delivery keeps every immediate-mode "
              "metric bit-identical: %s\n", invariant ? "PASS" : "FAIL");
  pass &= invariant;

  // 2. The PNS win (the acceptance criterion): proximity-aware bucket
  //    selection reduces mean lookup RTT vs the RTT-blind baseline.
  const double blind_rtt =
      Mean(results[1].row, PdhtSystem::kMetricLookupRttMean);
  const double pns_rtt =
      Mean(results[2].row, PdhtSystem::kMetricLookupRttMean);
  const bool pns_wins = pns_rtt > 0.0 && pns_rtt < blind_rtt;
  std::printf("shape check: kademlia PNS reduces mean lookup RTT "
              "(blind %.2f ms -> pns %.2f ms, %.1f%% win): %s\n",
              blind_rtt, pns_rtt,
              blind_rtt > 0.0 ? 100.0 * (1.0 - pns_rtt / blind_rtt) : 0.0,
              pns_wins ? "PASS" : "FAIL");
  pass &= pns_wins;

  // 3. Routing stretch moves the same way.
  const double blind_stretch =
      Mean(results[1].row, PdhtSystem::kMetricLookupStretch);
  const double pns_stretch =
      Mean(results[2].row, PdhtSystem::kMetricLookupStretch);
  const bool stretch_wins = pns_stretch > 0.0 && pns_stretch < blind_stretch;
  std::printf("shape check: routing stretch drops under PNS "
              "(%.3f -> %.3f): %s\n",
              blind_stretch, pns_stretch, stretch_wins ? "PASS" : "FAIL");
  pass &= stretch_wins;

  std::string json_path = flags.json;
  if (json_path.empty()) {
    json_path =
        flags.smoke ? "BENCH_latency_smoke.json" : "BENCH_latency.json";
  }
  if (WriteJson(json_path, results, rounds, flags.smoke)) {
    std::printf("json baseline written to %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write json baseline to %s\n", json_path.c_str());
    return 1;
  }

  return pdht::bench::ShapeCheckExit(flags, pass);
}
