// Round-loop throughput: rounds/sec of the inner simulation loop, the
// quantity every sweep, bench and the paper-scale --full run multiply.
// PR 2 parallelized *across* cells; this bench pins the cost of one cell
// so hot-path regressions (message accounting, replica-group allocation,
// metric probes) are caught as a number, not a feeling.  The
// --sim-threads axis (comma list, e.g. --sim-threads=1,4) measures the
// sharded round engine: 1 runs the legacy serial loop, >1 runs the
// phase-parallel engine whose results are bit-identical at any thread
// count (tests/integration/sharded_determinism_test.cc).
//
// Scenarios are the paper's Table 1 at 1/14 and 1/50 scale (peers and keys
// divided, per-peer storage and replication reduced proportionally), run
// under churn so the probe/repair path is part of the measured loop, plus
// the 100k- and 1M-peer scale-up scenarios the sharded engine exists for.
// Each scenario is measured for the strategies whose round loops differ
// most: partialTtl (index-first queries, TTL eviction) and indexAll
// (proactive updates, no eviction); the 1M scenario runs partialTtl only
// to keep construction cost and CI memory bounded.
//
// Besides the stdout table, the bench emits a machine-readable JSON
// baseline (--json=<path>; defaults to BENCH_roundloop.json for
// full-budget runs and BENCH_roundloop_smoke.json for reduced-budget
// ones, so smoke runs can't clobber the committed baseline) so the
// rounds/sec trajectory accumulates across PRs; CI runs this binary in
// Release (-O2) smoke mode at --sim-threads=1 and --sim-threads=4 and
// uploads both JSONs so the scaling ratio is tracked per commit.
//
// Reading the --sim-threads axis: speedup only appears when the host
// actually has the cores (the committed baseline was recorded on a
// single-CPU container, where 4 threads measuring ~parity with 1 is the
// expected result -- it shows the pool adds no synchronization pathology
// when oversubscribed, not that sharding is free).  Compare thread
// counts from the same host; CI's two smoke JSONs give that per commit.
//
// Flags: the shared set (bench_common.h; --rounds=<n> below a scenario's
// default budget = smoke mode for it -- an explicit --rounds is capped at
// each scenario's default so a small-scenario budget cannot explode the
// 1M-peer run -- --full adds the paper-scale scenario, --json=<path>
// overrides the baseline output path).  --sim-threads accepts the token
// "auto" as an axis point (the system picks serial vs sharded from the
// work size and sizes the pool from the host).  --phase-times enables
// the opt-in round.phase.*.ms series and prints a per-phase wall-clock
// breakdown plus a serial_fraction column ((plan + publish + drain) /
// total, the sharded engine's Amdahl floor) -- the tool for spotting
// which serial remainder dominates at a given scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "stats/table_writer.h"

namespace {

using pdht::TableWriter;
using pdht::bench::BenchFlags;
using pdht::core::Strategy;
using pdht::core::SystemConfig;

constexpr uint64_t kSeed = 12345;

struct Scenario {
  std::string name;
  SystemConfig config;     ///< strategy is patched per measurement.
  uint64_t default_rounds; ///< timed rounds at the full budget.
  std::vector<Strategy> strategies = {Strategy::kPartialTtl,
                                      Strategy::kIndexAll};
  uint64_t min_warmup = 10;  ///< lowered for the scale-up scenarios,
                             ///< where construction dominates anyway.
};

// Table 1 at 1/14 scale: 20000/14 peers, 40000/14 keys; stor and repl
// halved from the paper values so capacity pressure per peer matches the
// scaled key population.  Churn on: stale routing entries and rejoin pulls
// belong to the hot path being measured.
SystemConfig Scale14Config() {
  SystemConfig c;
  c.params.num_peers = 1428;
  c.params.keys = 2857;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

SystemConfig Scale50Config() {
  SystemConfig c = pdht::bench::ScaledBaseConfig();
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

SystemConfig FullScaleConfig() {
  SystemConfig c;  // paper defaults: 20000 peers / 40000 keys
  c.params.f_qry = 1.0 / 30.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

// At 100k+ peers the paper's unstructured-search settings are unusable
// for a throughput bench: a miss floods the whole graph (O(peers)
// messages), so one cold-index round costs minutes.  The scale-up
// scenarios bound the walk budget and disable the flood fallback --
// they measure the round loop's mechanics at scale, not the paper's
// search-cost economics (that is bench_fig*/bench_table1 territory).
void BoundUnstructuredSearch(SystemConfig& c) {
  c.walk.num_walkers = 16;
  c.walk.max_steps_per_walker = 128;
  c.walk.flood_fallback = false;
}

// 5x the paper's peer population with the paper's 2-keys-per-peer ratio;
// per-peer storage/replication at the 1/14-scale values.  This is the
// first rung of the ROADMAP's millions-of-peers ladder and the scale at
// which the sharded engine's SoA/arena layout starts to matter.
SystemConfig Scale100kConfig() {
  SystemConfig c;
  c.params.num_peers = 100000;
  c.params.keys = 200000;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 100.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  BoundUnstructuredSearch(c);
  return c;
}

// The 1M-peer target scenario: ~1.5 GB resident (index arenas, content
// tables, ~915k DHT members' routing state), ~8 s construction, well
// under a CI runner's memory.  Query rate is per-peer, so 1/1000 still
// drives 1000 queries through the engine every round; storage and
// replication are kept moderate to bound the arena footprint.
SystemConfig Scale1MConfig() {
  SystemConfig c;
  c.params.num_peers = 1000000;
  c.params.keys = 2000000;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 1000.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  BoundUnstructuredSearch(c);
  return c;
}

/// The round loop's instrumented phases, in actor order (must match the
/// EnablePhaseTiming list in core/pdht_system.cc).
constexpr const char* kPhaseNames[] = {"churn",  "maint",   "plan",
                                       "query",  "publish", "update",
                                       "evict",  "drain"};
constexpr size_t kNumPhases = sizeof(kPhaseNames) / sizeof(kPhaseNames[0]);

/// Phases that still hold serial work in the sharded engine.  plan and
/// publish keep a serial remainder (prefix sum, the order-sensitive
/// publish slice) and drain falls back to serial whenever a batch holds
/// an unkeyed or cancelled event, so their combined share of the round is
/// the engine's Amdahl floor.  Computed from the same round.phase.*.ms
/// means the breakdown table shows.
constexpr const char* kSerialPhases[] = {"plan", "publish", "drain"};

double SerialFraction(const double (&phase_ms)[kNumPhases]) {
  double total = 0.0;
  double serial = 0.0;
  for (size_t p = 0; p < kNumPhases; ++p) {
    total += phase_ms[p];
    for (const char* name : kSerialPhases) {
      if (std::string(kPhaseNames[p]) == name) serial += phase_ms[p];
    }
  }
  return total > 0.0 ? serial / total : 0.0;
}

struct Measurement {
  std::string scenario;
  std::string strategy;
  uint64_t peers = 0;
  /// Axis label: a thread count ("1", "4") or "auto" (engine selection
  /// left to SystemConfig::sim_threads_auto).
  std::string sim_threads = "1";
  uint64_t warmup = 0;
  uint64_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  double msgs_per_round = 0.0;
  /// Mean ms/round per phase over the timed window (--phase-times only).
  bool has_phases = false;
  double phase_ms[kNumPhases] = {};
  /// (plan + publish + drain) / total phase time: the serial share of the
  /// round under the sharded engine.  0 when phases were not recorded.
  double serial_fraction = 0.0;
  /// Scenarios have different default budgets, so smoke (reduced budget,
  /// shape checks informational) is tracked per measurement, not in the
  /// shared flags.
  bool smoke = false;
};

Measurement MeasureOne(const Scenario& sc, Strategy strategy,
                       uint32_t sim_threads, uint64_t rounds,
                       bool phase_times) {
  SystemConfig config = sc.config;
  config.strategy = strategy;
  if (sim_threads == BenchFlags::kSimThreadsAuto) {
    config.sim_threads_auto = true;  // engine + thread count by work size
  } else {
    config.sim_threads = sim_threads;  // 1 = legacy serial engine
  }
  config.phase_timing = phase_times;
  pdht::core::PdhtSystem system(config);

  Measurement m;
  m.scenario = sc.name;
  m.strategy = pdht::core::StrategyName(strategy);
  m.peers = config.params.num_peers;
  m.sim_threads = sim_threads == BenchFlags::kSimThreadsAuto
                      ? "auto"
                      : std::to_string(sim_threads);
  // Warm up past the transient (partialTtl index fill, churn mixing) so
  // the timed window measures the steady-state loop.
  m.warmup = std::max<uint64_t>(sc.min_warmup, rounds / 5);
  m.rounds = rounds;
  system.RunRounds(m.warmup);

  uint64_t msgs_before = system.network().TotalMessages();
  auto t0 = std::chrono::steady_clock::now();
  system.RunRounds(rounds);
  auto t1 = std::chrono::steady_clock::now();
  uint64_t msgs_after = system.network().TotalMessages();

  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.rounds_per_sec =
      m.seconds > 0.0 ? static_cast<double>(rounds) / m.seconds : 0.0;
  m.msgs_per_round = static_cast<double>(msgs_after - msgs_before) /
                     static_cast<double>(rounds);
  if (phase_times) {
    m.has_phases = true;
    for (size_t p = 0; p < kNumPhases; ++p) {
      const std::string name =
          pdht::sim::RoundEngine::PhaseSeriesName(kPhaseNames[p]);
      // Tail over the timed window only: warmup rounds are in the series
      // too, but the steady-state mean is what the breakdown should show.
      m.phase_ms[p] = system.engine().Series(name).TailMean(rounds);
    }
    m.serial_fraction = SerialFraction(m.phase_ms);
  }
  return m;
}

bool WriteJson(const std::string& path,
               const std::vector<Measurement>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
#ifdef NDEBUG
  const char* build = "optimized";
#else
  const char* build = "debug";
#endif
  std::fprintf(f, "{\n  \"bench\": \"roundloop\",\n");
  std::fprintf(f, "  \"build\": \"%s\",\n", build);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"strategy\": \"%s\", "
                 "\"peers\": %llu, \"sim_threads\": \"%s\", "
                 "\"warmup_rounds\": %llu, "
                 "\"timed_rounds\": %llu, \"smoke\": %s, "
                 "\"seconds\": %.6f, "
                 "\"rounds_per_sec\": %.2f, \"msgs_per_round\": %.2f, "
                 "\"serial_fraction\": %.4f}%s\n",
                 m.scenario.c_str(), m.strategy.c_str(),
                 static_cast<unsigned long long>(m.peers),
                 m.sim_threads.c_str(),
                 static_cast<unsigned long long>(m.warmup),
                 static_cast<unsigned long long>(m.rounds),
                 m.smoke ? "true" : "false", m.seconds,
                 m.rounds_per_sec, m.msgs_per_round, m.serial_fraction,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = pdht::bench::ParseBenchFlags(argc, argv);

  pdht::bench::PrintHeader(
      "round-loop throughput: rounds/sec over a --sim-threads axis "
      "(scaled Table 1 + 100k/1M scale-up scenarios, churn on)",
      "hot-path baseline; perf trajectory artifact BENCH_roundloop.json");

  std::vector<Scenario> scenarios = {
      {"scale_1_14", Scale14Config(), 400},
      {"scale_1_50", Scale50Config(), 1000},
      // Scale-up rungs: fewer timed rounds (a 1M round costs ~0.4 s
      // even with bounded walks), tiny warmup, partialTtl only at 1M.
      {"scale_100k", Scale100kConfig(), 60,
       {Strategy::kPartialTtl, Strategy::kIndexAll}, 10},
      {"scale_1m", Scale1MConfig(), 10, {Strategy::kPartialTtl}, 2},
  };
  if (flags.full) {
    scenarios.push_back({"full_scale", FullScaleConfig(), 50});
  }

  std::vector<Measurement> results;
  for (const Scenario& sc : scenarios) {
    for (Strategy strategy : sc.strategies) {
      // Cap an explicit --rounds at the scenario default so one smoke
      // budget fits every scale (100 timed rounds at 1M peers would run
      // for hours); below-default budgets mark the measurement smoke.
      uint64_t rounds = flags.rounds == 0
                            ? sc.default_rounds
                            : std::min(flags.rounds, sc.default_rounds);
      for (uint32_t sim_threads : flags.sim_threads) {
        results.push_back(MeasureOne(sc, strategy, sim_threads, rounds,
                                     flags.phase_times));
        results.back().smoke = rounds < sc.default_rounds;
        std::printf("measured %s/%s @%s threads: %.1f rounds/s\n",
                    results.back().scenario.c_str(),
                    results.back().strategy.c_str(),
                    results.back().sim_threads.c_str(),
                    results.back().rounds_per_sec);
      }
    }
  }

  TableWriter table({"scenario", "strategy", "peers", "sim threads",
                     "timed rounds", "seconds", "rounds/sec",
                     "msgs/round"});
  for (const Measurement& m : results) {
    table.AddRow({m.scenario, m.strategy, std::to_string(m.peers),
                  m.sim_threads, std::to_string(m.rounds),
                  TableWriter::FormatDouble(m.seconds, 4),
                  TableWriter::FormatDouble(m.rounds_per_sec, 5),
                  TableWriter::FormatDouble(m.msgs_per_round, 5)});
  }
  pdht::bench::EmitTable(table, flags.csv);

  if (flags.phase_times) {
    // Per-phase wall-clock breakdown (mean ms/round over the timed
    // window).  plan, publish and drain carry the sharded engine's serial
    // remainders (prefix sum, the order-sensitive publish slice, the
    // serial-fallback drain path); serial_frac = their combined share of
    // the row, i.e. the Amdahl floor of the parallel phases.  Serial-
    // engine rows charge whole actors (no plan/publish split), so those
    // columns read 0 there.
    std::vector<std::string> cols = {"scenario", "strategy", "sim threads"};
    for (size_t p = 0; p < kNumPhases; ++p) {
      cols.push_back(std::string(kPhaseNames[p]) + " ms");
    }
    cols.push_back("serial_frac");
    TableWriter phases(cols);
    for (const Measurement& m : results) {
      if (!m.has_phases) continue;
      std::vector<std::string> row = {m.scenario, m.strategy,
                                      m.sim_threads};
      for (size_t p = 0; p < kNumPhases; ++p) {
        row.push_back(TableWriter::FormatDouble(m.phase_ms[p], 4));
      }
      row.push_back(TableWriter::FormatDouble(m.serial_fraction, 4));
      phases.AddRow(row);
    }
    std::printf("per-phase wall clock (mean ms/round, timed window):\n");
    std::printf("%s\n", phases.ToText().c_str());
  }

  // Default output path: full-budget runs refresh the committed baseline
  // name; reduced-budget runs get their own file so a casual smoke run
  // from the repo root cannot clobber the recorded full-budget numbers.
  std::string json_path = flags.json;
  if (json_path.empty()) {
    bool any_smoke = false;
    for (const Measurement& m : results) any_smoke |= m.smoke;
    json_path =
        any_smoke ? "BENCH_roundloop_smoke.json" : "BENCH_roundloop.json";
  }
  if (WriteJson(json_path, results)) {
    std::printf("json baseline written to %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write json baseline to %s\n", json_path.c_str());
    return 1;
  }

  // Shape check: every measured configuration actually simulated traffic.
  // Failures are fatal only for measurements that ran at their scenario's
  // full budget (per-measurement smoke semantics).
  bool full_budget_pass = true;
  for (const Measurement& m : results) {
    if (!(m.msgs_per_round > 0.0) || !(m.rounds_per_sec > 0.0)) {
      std::printf("SHAPE FAIL%s: %s/%s produced no traffic or no progress\n",
                  m.smoke ? " (smoke, informational)" : "",
                  m.scenario.c_str(), m.strategy.c_str());
      if (!m.smoke) full_budget_pass = false;
    }
  }
  return full_budget_pass ? 0 : 1;
}
