// Single-thread round-loop throughput: rounds/sec of the inner simulation
// loop, the quantity every sweep, bench and the paper-scale --full run
// multiply.  PR 2 parallelized *across* cells; this bench pins the cost of
// one cell so hot-path regressions (message accounting, replica-group
// allocation, metric probes) are caught as a number, not a feeling.
//
// Scenarios are the paper's Table 1 at 1/14 and 1/50 scale (peers and keys
// divided, per-peer storage and replication reduced proportionally), run
// under churn so the probe/repair path is part of the measured loop.  Each
// scenario is measured for the two strategies whose round loops differ
// most: partialTtl (index-first queries, TTL eviction) and indexAll
// (proactive updates, no eviction).
//
// Besides the stdout table, the bench emits a machine-readable JSON
// baseline (--json=<path>; defaults to BENCH_roundloop.json for
// full-budget runs and BENCH_roundloop_smoke.json for reduced-budget
// ones, so smoke runs can't clobber the committed baseline) so the
// rounds/sec trajectory accumulates across PRs; CI runs this binary in
// Release (-O2) smoke mode and uploads the JSON as an artifact.
//
// Flags: the shared set (bench_common.h; --rounds=<n> below the default
// budget = smoke mode, --full adds the paper-scale scenario, --json=<path>
// overrides the baseline output path).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "stats/table_writer.h"

namespace {

using pdht::TableWriter;
using pdht::bench::BenchFlags;
using pdht::core::Strategy;
using pdht::core::SystemConfig;

constexpr uint64_t kSeed = 12345;

struct Scenario {
  std::string name;
  SystemConfig config;     ///< strategy is patched per measurement.
  uint64_t default_rounds; ///< timed rounds at the full budget.
};

// Table 1 at 1/14 scale: 20000/14 peers, 40000/14 keys; stor and repl
// halved from the paper values so capacity pressure per peer matches the
// scaled key population.  Churn on: stale routing entries and rejoin pulls
// belong to the hot path being measured.
SystemConfig Scale14Config() {
  SystemConfig c;
  c.params.num_peers = 1428;
  c.params.keys = 2857;
  c.params.stor = 50;
  c.params.repl = 25;
  c.params.f_qry = 1.0 / 10.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

SystemConfig Scale50Config() {
  SystemConfig c = pdht::bench::ScaledBaseConfig();
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

SystemConfig FullScaleConfig() {
  SystemConfig c;  // paper defaults: 20000 peers / 40000 keys
  c.params.f_qry = 1.0 / 30.0;
  c.churn.enabled = true;
  c.seed = kSeed;
  return c;
}

struct Measurement {
  std::string scenario;
  std::string strategy;
  uint64_t peers = 0;
  uint64_t warmup = 0;
  uint64_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  double msgs_per_round = 0.0;
  /// Scenarios have different default budgets, so smoke (reduced budget,
  /// shape checks informational) is tracked per measurement, not in the
  /// shared flags.
  bool smoke = false;
};

Measurement MeasureOne(const Scenario& sc, Strategy strategy,
                       uint64_t rounds) {
  SystemConfig config = sc.config;
  config.strategy = strategy;
  pdht::core::PdhtSystem system(config);

  Measurement m;
  m.scenario = sc.name;
  m.strategy = pdht::core::StrategyName(strategy);
  m.peers = config.params.num_peers;
  // Warm up past the transient (partialTtl index fill, churn mixing) so
  // the timed window measures the steady-state loop.
  m.warmup = std::max<uint64_t>(10, rounds / 5);
  m.rounds = rounds;
  system.RunRounds(m.warmup);

  uint64_t msgs_before = system.network().TotalMessages();
  auto t0 = std::chrono::steady_clock::now();
  system.RunRounds(rounds);
  auto t1 = std::chrono::steady_clock::now();
  uint64_t msgs_after = system.network().TotalMessages();

  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.rounds_per_sec =
      m.seconds > 0.0 ? static_cast<double>(rounds) / m.seconds : 0.0;
  m.msgs_per_round = static_cast<double>(msgs_after - msgs_before) /
                     static_cast<double>(rounds);
  return m;
}

bool WriteJson(const std::string& path,
               const std::vector<Measurement>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
#ifdef NDEBUG
  const char* build = "optimized";
#else
  const char* build = "debug";
#endif
  std::fprintf(f, "{\n  \"bench\": \"roundloop\",\n");
  std::fprintf(f, "  \"build\": \"%s\",\n", build);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"strategy\": \"%s\", "
                 "\"peers\": %llu, \"warmup_rounds\": %llu, "
                 "\"timed_rounds\": %llu, \"smoke\": %s, "
                 "\"seconds\": %.6f, "
                 "\"rounds_per_sec\": %.2f, \"msgs_per_round\": %.2f}%s\n",
                 m.scenario.c_str(), m.strategy.c_str(),
                 static_cast<unsigned long long>(m.peers),
                 static_cast<unsigned long long>(m.warmup),
                 static_cast<unsigned long long>(m.rounds),
                 m.smoke ? "true" : "false", m.seconds,
                 m.rounds_per_sec, m.msgs_per_round,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = pdht::bench::ParseBenchFlags(argc, argv);

  pdht::bench::PrintHeader(
      "round-loop throughput: single-thread rounds/sec (scaled Table 1 "
      "scenarios, churn on)",
      "hot-path baseline; perf trajectory artifact BENCH_roundloop.json");

  std::vector<Scenario> scenarios = {
      {"scale_1_14", Scale14Config(), 400},
      {"scale_1_50", Scale50Config(), 1000},
  };
  if (flags.full) {
    scenarios.push_back({"full_scale", FullScaleConfig(), 50});
  }

  std::vector<Measurement> results;
  for (const Scenario& sc : scenarios) {
    for (Strategy strategy :
         {Strategy::kPartialTtl, Strategy::kIndexAll}) {
      uint64_t rounds =
          flags.rounds == 0 ? sc.default_rounds : flags.rounds;
      results.push_back(MeasureOne(sc, strategy, rounds));
      results.back().smoke = rounds < sc.default_rounds;
      std::printf("measured %s/%s: %.1f rounds/s\n",
                  results.back().scenario.c_str(),
                  results.back().strategy.c_str(),
                  results.back().rounds_per_sec);
    }
  }

  TableWriter table({"scenario", "strategy", "peers", "timed rounds",
                     "seconds", "rounds/sec", "msgs/round"});
  for (const Measurement& m : results) {
    table.AddRow({m.scenario, m.strategy, std::to_string(m.peers),
                  std::to_string(m.rounds),
                  TableWriter::FormatDouble(m.seconds, 4),
                  TableWriter::FormatDouble(m.rounds_per_sec, 5),
                  TableWriter::FormatDouble(m.msgs_per_round, 5)});
  }
  pdht::bench::EmitTable(table, flags.csv);

  // Default output path: full-budget runs refresh the committed baseline
  // name; reduced-budget runs get their own file so a casual smoke run
  // from the repo root cannot clobber the recorded full-budget numbers.
  std::string json_path = flags.json;
  if (json_path.empty()) {
    bool any_smoke = false;
    for (const Measurement& m : results) any_smoke |= m.smoke;
    json_path =
        any_smoke ? "BENCH_roundloop_smoke.json" : "BENCH_roundloop.json";
  }
  if (WriteJson(json_path, results)) {
    std::printf("json baseline written to %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write json baseline to %s\n", json_path.c_str());
    return 1;
  }

  // Shape check: every measured configuration actually simulated traffic.
  // Failures are fatal only for measurements that ran at their scenario's
  // full budget (per-measurement smoke semantics).
  bool full_budget_pass = true;
  for (const Measurement& m : results) {
    if (!(m.msgs_per_round > 0.0) || !(m.rounds_per_sec > 0.0)) {
      std::printf("SHAPE FAIL%s: %s/%s produced no traffic or no progress\n",
                  m.smoke ? " (smoke, informational)" : "",
                  m.scenario.c_str(), m.strategy.c_str());
      if (!m.smoke) full_budget_pass = false;
    }
  }
  return full_budget_pass ? 0 : 1;
}
