// Regenerates paper Fig. 2: savings of ideal partial indexing compared to
// indexing all keys and compared to broadcasting all queries.
//
// Shape expectations (paper): savings vs indexAll grow toward 1 as load
// falls; savings vs noIndex grow toward 1 as load rises; both positive.

#include "bench_common.h"
#include "model/sweep.h"
#include "stats/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader("bench_fig2 -- savings of ideal partial indexing",
                     "Fig. 2 (Section 4)");
  model::ScenarioParams params;
  auto rows =
      model::SweepFig2(params, model::ScenarioParams::PaperQueryFrequencies());
  bench::EmitTable(model::Fig2Table(rows), csv);

  AsciiChart chart(64, 12);
  chart.SetYRange(0.0, 1.0);
  std::vector<double> vs_all, vs_none;
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    vs_all.push_back(r.savings_vs_index_all);
    vs_none.push_back(r.savings_vs_no_index);
    labels.push_back(model::FrequencyLabel(r.f_qry));
  }
  chart.AddSeries("vs indexAll", vs_all, 'A');
  chart.AddSeries("vs noIndex", vs_none, 'N');
  chart.SetXLabels(labels);
  std::printf("%s\n", chart.Render().c_str());

  bool monotone_vs_index_all = true;
  bool monotone_vs_no_index = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    // Frequencies descend across rows.
    if (rows[i].savings_vs_index_all < rows[i - 1].savings_vs_index_all) {
      monotone_vs_index_all = false;
    }
    if (rows[i].savings_vs_no_index > rows[i - 1].savings_vs_no_index) {
      monotone_vs_no_index = false;
    }
  }
  std::printf("shape check: savings vs indexAll increase as load falls: %s\n",
              monotone_vs_index_all ? "PASS" : "FAIL");
  std::printf("shape check: savings vs noIndex increase as load rises: %s\n",
              monotone_vs_no_index ? "PASS" : "FAIL");
  return (monotone_vs_index_all && monotone_vs_no_index) ? 0 : 1;
}
