// Regenerates paper Fig. 1: query frequency per peer (x axis) vs total
// sent messages per second for indexAll (Eq. 11), noIndex (Eq. 12) and
// ideal partial indexing (Eq. 13).
//
// Shape expectations (paper): noIndex falls linearly with fQry and is by
// far the most expensive at high load; indexAll is nearly flat
// (maintenance-bound); partial <= min(indexAll, noIndex) everywhere.

#include "bench_common.h"
#include "model/sweep.h"
#include "stats/ascii_chart.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader(
      "bench_fig1 -- strategy cost vs query frequency",
      "Fig. 1 (Section 4): indexAll / noIndex / ideal partial");
  model::ScenarioParams params;
  auto rows =
      model::SweepFig1(params, model::ScenarioParams::PaperQueryFrequencies());
  bench::EmitTable(model::Fig1Table(rows), csv);

  AsciiChart chart(64, 16);
  chart.SetLogY(true);
  std::vector<double> index_all, no_index, partial;
  std::vector<std::string> labels;
  for (const auto& r : rows) {
    index_all.push_back(r.index_all);
    no_index.push_back(r.no_index);
    partial.push_back(r.partial);
    labels.push_back(model::FrequencyLabel(r.f_qry));
  }
  chart.AddSeries("indexAll", index_all, 'A');
  chart.AddSeries("noIndex", no_index, 'N');
  chart.AddSeries("partial", partial, 'P');
  chart.SetXLabels(labels);
  std::printf("%s\n", chart.Render().c_str());

  // Shape assertions printed for the record (EXPERIMENTS.md references
  // these lines).
  bool partial_wins = true;
  for (const auto& r : rows) {
    if (r.partial > r.index_all || r.partial > r.no_index) {
      partial_wins = false;
    }
  }
  std::printf("shape check: partial <= min(indexAll, noIndex) at all "
              "frequencies: %s\n",
              partial_wins ? "PASS" : "FAIL");
  std::printf("shape check: noIndex/indexAll at 1/30 = %.1f (paper: ~19x)\n",
              rows.front().no_index / rows.front().index_all);
  return partial_wins ? 0 : 1;
}
