// Shared helpers for the figure/table bench binaries.
//
// Each binary prints (a) a header identifying the paper artifact it
// regenerates, (b) an aligned table with the same series the paper plots,
// and (c) optionally writes a CSV next to the binary when --csv=<path> is
// passed.

#ifndef PDHT_BENCH_BENCH_COMMON_H_
#define PDHT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "stats/table_writer.h"

namespace pdht::bench {

inline std::string CsvPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--csv=", 0) == 0) return arg.substr(6);
  }
  return "";
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void EmitTable(const TableWriter& table, const std::string& csv_path) {
  std::printf("%s\n", table.ToText().c_str());
  if (!csv_path.empty()) {
    if (table.WriteCsvFile(csv_path)) {
      std::printf("csv written to %s\n", csv_path.c_str());
    } else {
      std::printf("FAILED to write csv to %s\n", csv_path.c_str());
    }
  }
}

}  // namespace pdht::bench

#endif  // PDHT_BENCH_BENCH_COMMON_H_
