// Shared flags and output helpers for the bench/example binaries.
//
// Each binary prints (a) a header identifying the paper artifact it
// regenerates, (b) an aligned table with the same series the paper plots,
// and (c) optionally writes a CSV when --csv=<path> is passed.
//
// Every binary understands the shared flag set:
//   --csv=<path>     write the main table as CSV in addition to stdout
//   --threads=<n>    experiment-runner worker threads; 0/absent = one per
//                    hardware thread.  The PDHT_THREADS environment
//                    variable is the fallback when the flag is absent
//                    (CI pins it to 2).
//   --seeds=<n>      independent seeds per grid cell (default 4; results
//                    report mean [min, max] across seeds)
//   --rounds=<n>     simulated rounds per cell; 0/absent = the bench's
//                    default budget
//   --sim-threads=<list>  comma-separated in-simulation thread counts
//                    (e.g. "1,4") for the benches that exercise the
//                    sharded round engine (bench_perf_roundloop); 1 runs
//                    the legacy serial engine.  The token "auto" adds an
//                    axis point that lets the system pick the engine and
//                    thread count itself (SystemConfig::sim_threads_auto).
//                    Default "1".
//   --phase-times    record the opt-in round.phase.*.ms series
//                    (SystemConfig::phase_timing) and print a per-phase
//                    wall-clock breakdown table; bench_perf_roundloop
//                    only, ignored by the rest
//   --full           paper-scale scenario where supported
//   --json=<path>    machine-readable baseline output, for the benches
//                    that emit one (bench_perf_roundloop, bench_latency);
//                    ignored by the rest
//
// Smoke mode: when --rounds undercuts the bench's default budget the run
// is marked as a smoke run -- shape checks are still evaluated and
// printed, but no longer fail the process, because they are calibrated
// at the full budget.  The CTest smoke targets (--rounds=50 --seeds=1)
// rely on this to catch crashes/regressions cheaply without flaking.

#ifndef PDHT_BENCH_BENCH_COMMON_H_
#define PDHT_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pdht_system.h"
#include "stats/table_writer.h"

namespace pdht::bench {

/// The 1/50-scale simulation scenario (400 peers / 800 keys / stor 20 /
/// repl 10 / fQry 1/5 / fUpd 1/3600, partialTtl, churn off) shared by
/// the simulation benches so it is recalibrated in one place; each
/// bench overrides what it sweeps (fQry, churn, seed, ...) on top.
inline core::SystemConfig ScaledBaseConfig() {
  core::SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  return c;
}

struct BenchFlags {
  std::string csv;
  std::string json;      ///< baseline output path; empty = bench default.
  unsigned threads = 0;  ///< 0 = auto (hardware_concurrency).
  uint32_t seeds = 4;
  uint64_t rounds = 0;  ///< 0 = bench default.
  /// In-simulation thread counts to measure (--sim-threads=1,4); each
  /// value is a separate measurement axis point, not a worker-pool size
  /// for the experiment runner (that is --threads).  The sentinel
  /// kSimThreadsAuto (flag token "auto") asks for sim_threads_auto mode.
  static constexpr uint32_t kSimThreadsAuto = 0xffffffffu;
  std::vector<uint32_t> sim_threads = {1};
  bool full = false;
  bool phase_times = false;  ///< per-phase wall-clock breakdown on.
  bool smoke = false;  ///< set by RoundsOrDefault on a reduced budget.

  /// The per-cell round budget: the explicit --rounds value, or `def`.
  /// Marks the run as a smoke run when the explicit budget is below the
  /// default the shape checks were calibrated at.
  uint64_t RoundsOrDefault(uint64_t def) {
    if (rounds == 0) return def;
    if (rounds < def) smoke = true;
    return rounds;
  }
};

inline BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags f;
  if (const char* env = std::getenv("PDHT_THREADS")) {
    f.threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--csv=")) {
      f.csv = v;
    } else if (const char* v = value_of("--json=")) {
      f.json = v;
    } else if (const char* v = value_of("--threads=")) {
      f.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--seeds=")) {
      uint64_t seeds = std::strtoull(v, nullptr, 10);
      f.seeds = seeds == 0 ? 1u : static_cast<uint32_t>(seeds);
    } else if (const char* v = value_of("--rounds=")) {
      f.rounds = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--sim-threads=")) {
      f.sim_threads.clear();
      for (const char* p = v; *p != '\0';) {
        if (std::strncmp(p, "auto", 4) == 0) {
          f.sim_threads.push_back(BenchFlags::kSimThreadsAuto);
          p += 4;
          if (*p == ',') ++p;
          continue;
        }
        char* end = nullptr;
        unsigned long n = std::strtoul(p, &end, 10);
        if (end == p) break;  // malformed tail; keep what parsed
        f.sim_threads.push_back(n == 0 ? 1u : static_cast<uint32_t>(n));
        p = (*end == ',') ? end + 1 : end;
      }
      if (f.sim_threads.empty()) f.sim_threads = {1};
    } else if (arg == "--full") {
      f.full = true;
    } else if (arg == "--phase-times") {
      f.phase_times = true;
    } else {
      std::fprintf(stderr, "warning: ignoring unknown flag '%s'\n",
                   arg.c_str());
    }
  }
  return f;
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void EmitTable(const TableWriter& table, const std::string& csv_path) {
  std::printf("%s\n", table.ToText().c_str());
  if (!csv_path.empty()) {
    std::string error;
    if (table.WriteCsvFile(csv_path, &error)) {
      std::printf("csv written to %s\n", csv_path.c_str());
    } else {
      std::printf("FAILED to write csv: %s\n", error.c_str());
    }
  }
}

/// Exit status for a bench whose shape checks evaluated to `pass`:
/// failures are fatal only at the full round budget (see smoke mode
/// above).
inline int ShapeCheckExit(const BenchFlags& flags, bool pass) {
  if (!pass && flags.smoke) {
    std::printf("(smoke run at reduced --rounds budget: shape-check "
                "results are informational)\n");
    return 0;
  }
  return pass ? 0 : 1;
}

}  // namespace pdht::bench

#endif  // PDHT_BENCH_BENCH_COMMON_H_
