// Ablation: every registered structured-overlay backend under the
// identical TTL-selection workload.  The paper claims its analysis "can
// be adapted to suit most other DHT proposals"; this bench enumerates the
// overlay factory registry (Chord, P-Grid, CAN, Kademlia, plus anything
// registered later) and compares cost and hit rate.

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "overlay/structured_overlay.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_ablation_backends -- all registered backends",
                     "Section 5.2 (P-Grid prototype) / footnote 2");

  TableWriter t({"backend", "msg/round (tail)", "hit rate", "index keys",
                 "dht msg/round", "maint msg/round"});
  std::vector<double> rates;
  for (core::DhtBackend backend : overlay::RegisteredBackends()) {
    core::SystemConfig c;
    c.params.num_peers = 400;
    c.params.keys = 800;
    c.params.stor = 20;
    c.params.repl = 10;
    c.params.f_qry = 1.0 / 5.0;
    c.params.f_upd = 1.0 / 3600.0;
    c.strategy = core::Strategy::kPartialTtl;
    c.backend = backend;
    c.churn.enabled = false;
    c.seed = 42;
    core::PdhtSystem sys(c);
    sys.RunRounds(120);
    rates.push_back(sys.TailMessageRate(30));
    t.AddRow({core::DhtBackendName(backend),
              TableWriter::FormatDouble(sys.TailMessageRate(30), 6),
              TableWriter::FormatDouble(sys.TailHitRate(30), 3),
              std::to_string(sys.IndexedKeyCount()),
              TableWriter::FormatDouble(
                  sys.engine().Series(core::PdhtSystem::kSeriesMsgDht)
                      .TailMean(30), 6),
              TableWriter::FormatDouble(
                  sys.engine().Series(core::PdhtSystem::kSeriesMsgMaint)
                      .TailMean(30), 6)});
  }
  bench::EmitTable(t, csv);

  double lo = *std::min_element(rates.begin(), rates.end());
  double hi = *std::max_element(rates.begin(), rates.end());
  // CAN's O(sqrt n) hops make it pricier than the log-n overlays; the
  // paper's claim is qualitative viability, so allow a 4x corridor across
  // all backends.
  bool comparable = hi / lo < 4.0;
  std::printf("shape check: all %zu backends within 4x of each other "
              "(generic analysis claim): %s (spread %.2fx)\n",
              rates.size(), comparable ? "PASS" : "FAIL", hi / lo);
  return comparable ? 0 : 1;
}
