// Ablation: every registered structured-overlay backend under the
// identical TTL-selection workload.  The paper claims its analysis "can
// be adapted to suit most other DHT proposals"; this bench enumerates the
// overlay factory registry (Chord, P-Grid, CAN, Kademlia, plus anything
// registered later) and compares cost and hit rate, multi-seed on the
// experiment runner (exp/).
//
// Second table: Kademlia k-bucket size sweep.  Kademlia's routing tables
// are larger than Chord's finger tables, so its probe maintenance
// dominates at env=1/14; sweeping k quantifies how much of that traffic
// is bucket redundancy.

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "net/network.h"
#include "overlay/dht/kademlia.h"
#include "overlay/structured_overlay.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_ablation_backends -- all registered backends",
                     "Section 5.2 (P-Grid prototype) / footnote 2");

  exp::ExperimentSpec spec;
  spec.name = "ablation_backends";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 42;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis backends{"backend", {}};
  for (core::DhtBackend b : overlay::RegisteredBackends()) {
    backends.levels.push_back({core::DhtBackendName(b),
                               [b](core::SystemConfig& c) { c.backend = b; }});
  }
  spec.axes = {backends};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));
  bench::EmitTable(
      exp::ToTable(spec, rows,
                   {{"msg/round (tail)", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate},
                    {"index keys", exp::kMetricIndexKeys},
                    {"dht msg/round", core::PdhtSystem::kSeriesMsgDht},
                    {"maint msg/round", core::PdhtSystem::kSeriesMsgMaint}}),
      flags.csv);

  // --- Kademlia k-bucket size sweep (maintenance-traffic ablation) ----
  exp::ExperimentSpec buckets;
  buckets.name = "kademlia_bucket_sweep";
  buckets.base = bench::ScaledBaseConfig();
  buckets.base.backend = core::DhtBackend::kKademlia;
  buckets.base.seed = 4242;  // decouple the cell seeds from table 1
  buckets.rounds = spec.rounds;
  buckets.tail = spec.tail;
  buckets.seeds_per_cell = flags.seeds;
  exp::Axis ksize{"bucket size", {}};
  for (uint32_t k : {4u, 8u, 16u, 32u}) {
    ksize.levels.push_back(
        {std::to_string(k),
         [k](core::SystemConfig& c) { c.kademlia_bucket_size = k; }});
  }
  buckets.axes = {ksize};
  buckets.collect = [](const core::PdhtSystem& sys, const exp::Cell&,
                       std::map<std::string, double>& metrics) {
    const auto* kad =
        dynamic_cast<const overlay::KademliaOverlay*>(sys.dht_overlay());
    if (kad == nullptr || kad->num_members() == 0) return;
    size_t contacts = 0;
    for (net::PeerId p : kad->members()) contacts += kad->TableSize(p);
    metrics["contacts.per.member"] =
        static_cast<double>(contacts) / static_cast<double>(kad->num_members());
  };
  auto bucket_rows = exp::Aggregate(buckets, runner.Run(buckets));
  std::printf("kademlia k-bucket size sweep (env = 1/14 probes per routing "
              "entry):\n");
  bench::EmitTable(
      exp::ToTable(buckets, bucket_rows,
                   {{"contacts/member", "contacts.per.member"},
                    {"maint msg/round", core::PdhtSystem::kSeriesMsgMaint},
                    {"msg/round (tail)", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate}}),
      "");

  std::vector<double> rates;
  for (const exp::AggregateRow& r : rows) {
    rates.push_back(r.Stat(core::PdhtSystem::kSeriesMsgTotal).mean);
  }
  double lo = *std::min_element(rates.begin(), rates.end());
  double hi = *std::max_element(rates.begin(), rates.end());
  // CAN's O(sqrt n) hops make it pricier than the log-n overlays; the
  // paper's claim is qualitative viability, so allow a 4x corridor across
  // all backends.
  bool comparable = hi / lo < 4.0;
  std::printf("shape check: all %zu backends within 4x of each other "
              "(generic analysis claim): %s (spread %.2fx)\n",
              rates.size(), comparable ? "PASS" : "FAIL", hi / lo);

  double maint_small =
      bucket_rows.front().Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
  double maint_large =
      bucket_rows.back().Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
  bool maint_grows = maint_large > maint_small;
  std::printf("shape check: kademlia maintenance traffic grows with bucket "
              "size (k=4 %.1f -> k=32 %.1f): %s\n",
              maint_small, maint_large, maint_grows ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, comparable && maint_grows);
}
