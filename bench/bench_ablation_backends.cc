// Ablation: every registered structured-overlay backend under the
// identical TTL-selection workload.  The paper claims its analysis "can
// be adapted to suit most other DHT proposals"; this bench enumerates the
// overlay factory registry (Chord, P-Grid, CAN, Kademlia, plus anything
// registered later) and compares cost and hit rate, multi-seed on the
// experiment runner (exp/).
//
// Second table: Kademlia k-bucket size sweep.  Kademlia's routing tables
// are larger than Chord's finger tables, so its probe maintenance
// dominates at env=1/14; sweeping k quantifies how much of that traffic
// is bucket redundancy.
//
// Third table: per-backend env calibration (ROADMAP item).  Eq. 8 charges
// env probes per routing entry, so a fixed env = 1/14 taxes big-table
// backends more.  The calibration sweeps env per backend and reports, for
// each backend, the env at which its maintenance traffic best matches the
// chord @ 1/14 reference while routing-table quality (tail hit rate)
// stays within tolerance -- the setting a fair cross-backend comparison
// should charge.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "net/network.h"
#include "overlay/dht/kademlia.h"
#include "overlay/structured_overlay.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_ablation_backends -- all registered backends",
                     "Section 5.2 (P-Grid prototype) / footnote 2");

  exp::ExperimentSpec spec;
  spec.name = "ablation_backends";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 42;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis backends{"backend", {}};
  for (core::DhtBackend b : overlay::RegisteredBackends()) {
    backends.levels.push_back({core::DhtBackendName(b),
                               [b](core::SystemConfig& c) { c.backend = b; }});
  }
  spec.axes = {backends};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));
  bench::EmitTable(
      exp::ToTable(spec, rows,
                   {{"msg/round (tail)", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate},
                    {"index keys", exp::kMetricIndexKeys},
                    {"dht msg/round", core::PdhtSystem::kSeriesMsgDht},
                    {"maint msg/round", core::PdhtSystem::kSeriesMsgMaint}}),
      flags.csv);

  // --- Kademlia k-bucket size sweep (maintenance-traffic ablation) ----
  exp::ExperimentSpec buckets;
  buckets.name = "kademlia_bucket_sweep";
  buckets.base = bench::ScaledBaseConfig();
  buckets.base.backend = core::DhtBackend::kKademlia;
  buckets.base.seed = 4242;  // decouple the cell seeds from table 1
  buckets.rounds = spec.rounds;
  buckets.tail = spec.tail;
  buckets.seeds_per_cell = flags.seeds;
  exp::Axis ksize{"bucket size", {}};
  for (uint32_t k : {4u, 8u, 16u, 32u}) {
    ksize.levels.push_back(
        {std::to_string(k),
         [k](core::SystemConfig& c) { c.kademlia_bucket_size = k; }});
  }
  buckets.axes = {ksize};
  buckets.collect = [](const core::PdhtSystem& sys, const exp::Cell&,
                       std::map<std::string, double>& metrics) {
    const auto* kad =
        dynamic_cast<const overlay::KademliaOverlay*>(sys.dht_overlay());
    if (kad == nullptr || kad->num_members() == 0) return;
    size_t contacts = 0;
    for (net::PeerId p : kad->members()) contacts += kad->TableSize(p);
    metrics["contacts.per.member"] =
        static_cast<double>(contacts) / static_cast<double>(kad->num_members());
  };
  auto bucket_rows = exp::Aggregate(buckets, runner.Run(buckets));
  std::printf("kademlia k-bucket size sweep (env = 1/14 probes per routing "
              "entry):\n");
  bench::EmitTable(
      exp::ToTable(buckets, bucket_rows,
                   {{"contacts/member", "contacts.per.member"},
                    {"maint msg/round", core::PdhtSystem::kSeriesMsgMaint},
                    {"msg/round (tail)", core::PdhtSystem::kSeriesMsgTotal},
                    {"hit rate", core::PdhtSystem::kSeriesHitRate}}),
      "");

  // --- Per-backend env calibration (table 3) --------------------------
  exp::ExperimentSpec cal;
  cal.name = "env_calibration";
  cal.base = bench::ScaledBaseConfig();
  cal.base.seed = 7777;  // decouple cell seeds from tables 1-2
  cal.rounds = spec.rounds;
  cal.tail = spec.tail;
  cal.seeds_per_cell = flags.seeds;
  const std::vector<std::pair<std::string, double>> env_levels = {
      {"1/56", 1.0 / 56.0},
      {"1/28", 1.0 / 28.0},
      {"1/14", 1.0 / 14.0},
      {"1/7", 1.0 / 7.0}};
  exp::Axis cal_backends{"backend", {}};
  for (core::DhtBackend b : overlay::RegisteredBackends()) {
    cal_backends.levels.push_back(
        {core::DhtBackendName(b),
         [b](core::SystemConfig& c) { c.backend = b; }});
  }
  exp::Axis cal_env{"env", {}};
  for (const auto& [label, value] : env_levels) {
    double v = value;
    cal_env.levels.push_back(
        {label, [v](core::SystemConfig& c) { c.params.env = v; }});
  }
  cal.axes = {cal_backends, cal_env};  // env varies fastest
  auto cal_rows = exp::Aggregate(cal, runner.Run(cal));

  // Reference point: chord @ the paper's env = 1/14.
  const size_t num_envs = env_levels.size();
  auto cal_row = [&](size_t backend_idx, size_t env_idx)
      -> const exp::AggregateRow& {
    return cal_rows[backend_idx * num_envs + env_idx];
  };
  // Both reference coordinates resolve by label; a silent positional
  // fallback would keep printing plausible numbers against the wrong
  // reference if the registry or the env grid ever changes.
  size_t chord_idx = cal_backends.levels.size();
  for (size_t i = 0; i < cal_backends.levels.size(); ++i) {
    if (cal_backends.levels[i].label == "chord") chord_idx = i;
  }
  size_t ref_env_idx = num_envs;
  for (size_t e = 0; e < num_envs; ++e) {
    if (env_levels[e].first == "1/14") ref_env_idx = e;
  }
  if (chord_idx == cal_backends.levels.size() || ref_env_idx == num_envs) {
    std::printf("env calibration: reference point chord @ 1/14 not in the "
                "sweep; cannot calibrate\n");
    return 1;
  }
  const double ref_maint =
      cal_row(chord_idx, ref_env_idx).Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
  const double ref_hit =
      cal_row(chord_idx, ref_env_idx).Stat(core::PdhtSystem::kSeriesHitRate).mean;
  constexpr double kHitTolerance = 0.03;

  // Per backend: among envs whose hit rate is within tolerance of the
  // reference, pick the one whose maintenance traffic is closest to the
  // reference (log-scale distance: the sweep is geometric).
  TableWriter cal_table({"backend", "calibrated env", "maint msg/round",
                         "maint/ref", "hit rate", "ref hit rate"});
  bool all_calibrated = true;
  for (size_t b = 0; b < cal_backends.levels.size(); ++b) {
    int best = -1;
    double best_dist = 0.0;
    for (size_t e = 0; e < num_envs; ++e) {
      const exp::AggregateRow& row = cal_row(b, e);
      const double hit = row.Stat(core::PdhtSystem::kSeriesHitRate).mean;
      const double maint =
          row.Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
      if (!(hit >= ref_hit - kHitTolerance)) continue;  // NaN-safe
      if (!(maint > 0.0)) continue;
      const double dist = std::abs(std::log(maint / ref_maint));
      if (best < 0 || dist < best_dist) {
        best = static_cast<int>(e);
        best_dist = dist;
      }
    }
    if (best < 0) {
      all_calibrated = false;
      cal_table.AddRow({cal_backends.levels[b].label, "NONE", "-", "-", "-",
                        TableWriter::FormatDouble(ref_hit, 3)});
      continue;
    }
    const exp::AggregateRow& row = cal_row(b, static_cast<size_t>(best));
    const double maint = row.Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
    cal_table.AddRow(
        {cal_backends.levels[b].label, env_levels[best].first,
         TableWriter::FormatDouble(maint, 6),
         TableWriter::FormatDouble(maint / ref_maint, 3),
         TableWriter::FormatDouble(
             row.Stat(core::PdhtSystem::kSeriesHitRate).mean, 3),
         TableWriter::FormatDouble(ref_hit, 3)});
  }
  std::printf("per-backend env calibration (reference: chord @ env 1/14, "
              "hit-rate tolerance %.2f):\n", kHitTolerance);
  bench::EmitTable(cal_table, "");

  std::vector<double> rates;
  for (const exp::AggregateRow& r : rows) {
    rates.push_back(r.Stat(core::PdhtSystem::kSeriesMsgTotal).mean);
  }
  double lo = *std::min_element(rates.begin(), rates.end());
  double hi = *std::max_element(rates.begin(), rates.end());
  // CAN's O(sqrt n) hops make it pricier than the log-n overlays; the
  // paper's claim is qualitative viability, so allow a 4x corridor across
  // all backends.
  bool comparable = hi / lo < 4.0;
  std::printf("shape check: all %zu backends within 4x of each other "
              "(generic analysis claim): %s (spread %.2fx)\n",
              rates.size(), comparable ? "PASS" : "FAIL", hi / lo);

  double maint_small =
      bucket_rows.front().Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
  double maint_large =
      bucket_rows.back().Stat(core::PdhtSystem::kSeriesMsgMaint).mean;
  bool maint_grows = maint_large > maint_small;
  std::printf("shape check: kademlia maintenance traffic grows with bucket "
              "size (k=4 %.1f -> k=32 %.1f): %s\n",
              maint_small, maint_large, maint_grows ? "PASS" : "FAIL");
  std::printf("shape check: every backend calibrates to a comparable-"
              "maintenance env at equal routing-table quality: %s\n",
              all_calibrated ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags,
                               comparable && maint_grows && all_calibrated);
}
