// Ablation: per-primitive cost validation.  Measures each cost primitive
// (cSUnstr via random walks, cSIndx via Chord and P-Grid lookups, cRtn via
// probing maintenance, repl*dup2 via replica gossip) on the real substrate
// and prints measured-vs-model rows for Eqs. 6-9 and 16.

#include <cmath>

#include "bench_common.h"
#include "model/cost_model.h"
#include "overlay/dht/chord.h"
#include "overlay/dht/maintenance.h"
#include "overlay/pgrid/pgrid.h"
#include "overlay/replica/gossip.h"
#include "overlay/unstructured/random_walk.h"
#include "overlay/unstructured/replication.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::ParseBenchFlags(argc, argv).csv;
  bench::PrintHeader("bench_ablation_costs -- cost primitives vs model",
                     "Eqs. 6, 7, 8, 9/16 (Section 3)");

  model::ScenarioParams p;
  p.num_peers = 1000;
  p.keys = 2000;
  p.stor = 50;
  p.repl = 25;
  model::CostModel model_(p);
  const uint32_t n = static_cast<uint32_t>(p.num_peers);

  TableWriter t({"primitive", "measured [msg]", "model [msg]", "ratio"});
  auto add = [&](const std::string& name, double measured, double modeled) {
    t.AddRow({name, TableWriter::FormatDouble(measured, 5),
              TableWriter::FormatDouble(modeled, 5),
              TableWriter::FormatDouble(measured / modeled, 3)});
  };

  // --- cSUnstr (Eq. 6): random-walk search cost.
  {
    Rng rng(1);
    overlay::RandomGraph graph(n, 6.0, &rng);
    CounterRegistry counters;
    net::Network net(&counters);
    for (uint32_t i = 0; i < n; ++i) net.SetOnline(i, true);
    overlay::ReplicaPlacement placement(n, static_cast<uint32_t>(p.repl),
                                        Rng(2));
    placement.PlaceKeys(100);
    overlay::RandomWalkConfig cfg;
    cfg.check_interval = 0;
    overlay::RandomWalkSearch walk(
        &graph, &net,
        [&](net::PeerId peer, uint64_t key) {
          return placement.PeerHoldsKey(peer, key);
        },
        cfg, Rng(3));
    Histogram h;
    Rng pick(4);
    for (int trial = 0; trial < 400; ++trial) {
      overlay::WalkResult r =
          walk.Search(static_cast<net::PeerId>(pick.UniformU64(n)),
                      trial % 100);
      if (r.found) h.Add(static_cast<double>(r.messages));
    }
    add("cSUnstr (random walks)", h.mean(),
        model_.CostSearchUnstructured());
  }

  // --- cSIndx (Eq. 7): Chord lookup hops.
  {
    CounterRegistry counters;
    net::Network net(&counters);
    overlay::ChordOverlay chord(&net, Rng(5));
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    chord.SetMembers(members);
    Histogram h;
    Rng pick(6);
    for (int trial = 0; trial < 600; ++trial) {
      overlay::LookupResult r = chord.Lookup(
          static_cast<net::PeerId>(pick.UniformU64(n)), pick.Next());
      if (r.success) h.Add(static_cast<double>(r.hops));
    }
    add("cSIndx (chord hops)", h.mean(), model_.CostSearchIndex(n));
  }

  // --- cSIndx (Eq. 7): P-Grid lookup hops.
  {
    CounterRegistry counters;
    net::Network net(&counters);
    overlay::PGridOverlay grid(&net, Rng(7));
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    grid.SetMembers(members);
    Histogram h;
    Rng pick(8);
    for (int trial = 0; trial < 600; ++trial) {
      overlay::LookupResult r = grid.Lookup(
          static_cast<net::PeerId>(pick.UniformU64(n)), pick.Next());
      if (r.success) h.Add(static_cast<double>(r.hops));
    }
    add("cSIndx (p-grid hops)", h.mean(), model_.CostSearchIndex(n));
  }

  // --- cRtn numerator (Eq. 8): probe traffic per peer per round.
  {
    CounterRegistry counters;
    net::Network net(&counters);
    overlay::ChordOverlay chord(&net, Rng(9));
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < n; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    chord.SetMembers(members);
    overlay::ChordMaintenance maint(&chord, &net, p.env, Rng(10));
    constexpr int kRounds = 50;
    for (int r = 0; r < kRounds; ++r) maint.RunRound();
    double per_peer_per_round =
        static_cast<double>(maint.stats().probes_sent) / kRounds /
        static_cast<double>(n);
    add("probe msgs/peer/round (env*log2 n)", per_peer_per_round,
        p.env * std::log2(static_cast<double>(n)));
  }

  // --- repl*dup2 (Eq. 9/16): replica subnetwork flood cost.
  {
    CounterRegistry counters;
    net::Network net(&counters);
    Rng rng(11);
    std::vector<net::PeerId> members;
    for (uint32_t i = 0; i < p.repl; ++i) {
      members.push_back(i);
      net.SetOnline(i, true);
    }
    overlay::GossipProtocol gossip(&net);
    Histogram h;
    for (int trial = 0; trial < 50; ++trial) {
      // A subnetwork of average degree dup2+1 floods at ~repl*dup2 cost
      // (each informed replica forwards to all neighbors but its source).
      overlay::ReplicaGroup group(trial, members, p.dup2 + 1.0, &rng);
      uint64_t v = group.ProduceUpdate(0);
      overlay::GossipResult r = gossip.PushUpdate(&group, 0, v);
      h.Add(static_cast<double>(r.messages));
    }
    add("replica flood (repl*dup2)", h.mean(),
        static_cast<double>(p.repl) * p.dup2);
  }

  bench::EmitTable(t, csv);
  std::printf("note: ratios within [0.5, 2.0] validate the model's shape; "
              "constants differ by substrate details (successor lists,\n"
              "      walker overlap) exactly as the paper's 'simplifying "
              "assumptions' anticipate.\n");
  return 0;
}
