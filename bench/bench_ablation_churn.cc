// Ablation: churn-rate sweep.  cRtn exists because "P2P clients are
// extremely transient"; this bench varies session lengths (our synthetic
// substitute for the [MaCa03] Gnutella trace, see DESIGN.md) and reports
// maintenance traffic, stale-entry pressure and hit rate.

#include "bench_common.h"
#include "core/pdht_system.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_ablation_churn -- churn-rate sweep",
                     "Section 3.3.1 ([MaCa03] substitution)");

  TableWriter t({"mean online [s]", "mean offline [s]", "availability",
                 "msg/round", "maint msg/round", "hit rate"});
  struct Level {
    double on;
    double off;
  };
  const Level levels[] = {{1e9, 1.0},      // static (churn disabled below)
                          {600, 300},      // mild
                          {200, 100},      // moderate
                          {60, 30}};       // harsh
  std::vector<double> hit_rates;
  int idx = 0;
  for (const Level& lv : levels) {
    core::SystemConfig c;
    c.params.num_peers = 400;
    c.params.keys = 800;
    c.params.stor = 20;
    c.params.repl = 10;
    c.params.f_qry = 1.0 / 5.0;
    c.params.f_upd = 1.0 / 3600.0;
    c.strategy = core::Strategy::kPartialTtl;
    c.churn.enabled = idx != 0;
    c.churn.mean_online_s = lv.on;
    c.churn.mean_offline_s = lv.off;
    c.seed = 4711;
    core::PdhtSystem sys(c);
    sys.RunRounds(120);
    double hit = sys.TailHitRate(30);
    hit_rates.push_back(hit);
    t.AddRow({idx == 0 ? "static" : TableWriter::FormatDouble(lv.on, 4),
              idx == 0 ? "-" : TableWriter::FormatDouble(lv.off, 4),
              TableWriter::FormatDouble(
                  idx == 0 ? 1.0 : c.churn.StationaryAvailability(), 3),
              TableWriter::FormatDouble(sys.TailMessageRate(30), 6),
              TableWriter::FormatDouble(
                  sys.engine().Series(core::PdhtSystem::kSeriesMsgMaint)
                      .TailMean(30), 6),
              TableWriter::FormatDouble(hit, 3)});
    ++idx;
  }
  bench::EmitTable(t, csv);

  bool degrades_gracefully =
      hit_rates.back() > 0.1 && hit_rates.front() >= hit_rates.back() - 0.05;
  std::printf("shape check: hit rate degrades gracefully (not collapses) "
              "with churn: %s\n",
              degrades_gracefully ? "PASS" : "FAIL");
  return degrades_gracefully ? 0 : 1;
}
