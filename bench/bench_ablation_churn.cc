// Ablation: churn-rate sweep.  cRtn exists because "P2P clients are
// extremely transient"; this bench varies session lengths (our synthetic
// substitute for the [MaCa03] Gnutella trace, see DESIGN.md) and reports
// maintenance traffic, stale-entry pressure and hit rate, multi-seed on
// the experiment runner (exp/).

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_ablation_churn -- churn-rate sweep",
                     "Section 3.3.1 ([MaCa03] substitution)");

  struct Level {
    const char* name;
    double on;
    double off;
    bool enabled;
  };
  const Level levels[] = {{"static", 1e9, 1.0, false},
                          {"mild 600/300", 600, 300, true},
                          {"moderate 200/100", 200, 100, true},
                          {"harsh 60/30", 60, 30, true}};

  exp::ExperimentSpec spec;
  spec.name = "ablation_churn";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 4711;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis churn{"churn level", {}};
  for (const Level& lv : levels) {
    churn.levels.push_back({lv.name, [lv](core::SystemConfig& c) {
                              c.churn.enabled = lv.enabled;
                              c.churn.mean_online_s = lv.on;
                              c.churn.mean_offline_s = lv.off;
                            }});
  }
  spec.axes = {churn};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));

  TableWriter t({"churn level", "availability", "msg/round",
                 "maint msg/round", "hit rate"});
  std::vector<double> hit_rates;
  for (size_t i = 0; i < rows.size(); ++i) {
    core::SystemConfig c = spec.base;
    churn.levels[i].apply(c);
    hit_rates.push_back(rows[i].Stat(core::PdhtSystem::kSeriesHitRate).mean);
    t.AddRow({rows[i].labels[0],
              TableWriter::FormatDouble(
                  c.churn.enabled ? c.churn.StationaryAvailability() : 1.0, 3),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal), 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesMsgMaint), 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesHitRate), 3)});
  }
  bench::EmitTable(t, flags.csv);

  bool degrades_gracefully =
      hit_rates.back() > 0.1 && hit_rates.front() >= hit_rates.back() - 0.05;
  std::printf("shape check: hit rate degrades gracefully (not collapses) "
              "with churn: %s\n",
              degrades_gracefully ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, degrades_gracefully);
}
