// Simulation validation (paper Section 5.2): runs the four strategies on
// the full discrete substrate at a scaled scenario and compares measured
// per-round message cost with the analytical model's prediction.
//
// Scale note: the paper's 20,000-peer scenario is simulated here at 1/50
// scale (400 peers / 800 keys / repl 10) so the bench finishes in seconds;
// pass --full to run the paper-size scenario (minutes).  The *shape* --
// who wins, by what factor -- is the object of comparison, not absolute
// message counts.

#include <cstring>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

namespace {

pdht::model::ScenarioParams ScaledParams(bool full) {
  pdht::model::ScenarioParams p;
  if (full) return p;  // paper defaults
  p.num_peers = 400;
  p.keys = 800;
  p.stor = 20;
  p.repl = 10;
  // 1/10 per peer puts the scaled scenario in the regime where the
  // partial index is a strict subset of the keys (maxRank < keys).
  p.f_qry = 1.0 / 10.0;
  p.f_upd = 1.0 / 3600.0;
  return p;
}

double RunStrategy(const pdht::model::ScenarioParams& params,
                   pdht::core::Strategy s, uint64_t rounds,
                   double* hit_rate, uint64_t* index_size) {
  pdht::core::SystemConfig c;
  c.params = params;
  c.strategy = s;
  c.churn.enabled = false;
  c.seed = 20040314;  // the paper example's date
  pdht::core::PdhtSystem sys(c);
  sys.RunRounds(rounds);
  if (hit_rate) *hit_rate = sys.TailHitRate(rounds / 4);
  if (index_size) *index_size = sys.IndexedKeyCount();
  return sys.TailMessageRate(rounds / 4);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdht;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader(
      "bench_sim_validation -- simulator vs analytical model",
      "Section 5.2 (simulation of the selection algorithm)");
  model::ScenarioParams params = ScaledParams(full);
  std::printf("scenario: numPeers=%llu keys=%llu repl=%llu stor=%llu "
              "fQry=%.4f\n\n",
              (unsigned long long)params.num_peers,
              (unsigned long long)params.keys,
              (unsigned long long)params.repl,
              (unsigned long long)params.stor, params.f_qry);

  const uint64_t rounds = full ? 400 : 120;
  model::CostModel cost(params);
  model::SelectionModel sel(params);

  TableWriter t({"strategy", "measured [msg/round]", "model [msg/s]",
                 "hit rate", "index keys"});
  struct Row {
    core::Strategy s;
    double model;
  };
  const Row rows[] = {
      {core::Strategy::kNoIndex, cost.TotalNoIndex(params.f_qry)},
      {core::Strategy::kIndexAll, cost.TotalIndexAll(params.f_qry)},
      {core::Strategy::kPartialIdeal,
       cost.TotalPartialIdeal(params.f_qry)},
      {core::Strategy::kPartialTtl,
       sel.TotalPartialSelection(params.f_qry)},
  };
  double measured[4] = {0, 0, 0, 0};
  int i = 0;
  for (const Row& r : rows) {
    double hit = 0.0;
    uint64_t idx = 0;
    double m = RunStrategy(params, r.s, rounds, &hit, &idx);
    measured[i++] = m;
    t.AddRow({core::StrategyName(r.s), TableWriter::FormatDouble(m, 6),
              TableWriter::FormatDouble(r.model, 6),
              TableWriter::FormatDouble(hit, 3), std::to_string(idx)});
  }
  bench::EmitTable(t, csv);

  // Shape checks: orderings, not absolute values.
  bool ordering =
      measured[2] < measured[0] &&          // partialIdeal < noIndex
      measured[3] < measured[0] &&          // partialTtl   < noIndex
      measured[1] < measured[0];            // indexAll     < noIndex (busy)
  std::printf("shape check: partial strategies and indexAll all beat "
              "noIndex at busy load: %s\n",
              ordering ? "PASS" : "FAIL");
  return ordering ? 0 : 1;
}
