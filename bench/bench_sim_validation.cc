// Simulation validation (paper Section 5.2): runs the four strategies on
// the full discrete substrate at a scaled scenario and compares measured
// per-round message cost with the analytical model's prediction.
// Multi-seed on the experiment runner (exp/): the measured column reports
// mean [min, max] across seeds.
//
// Scale note: the paper's 20,000-peer scenario is simulated here at 1/50
// scale (400 peers / 800 keys / repl 10) so the bench finishes in seconds;
// pass --full to run the paper-size scenario (minutes).  The *shape* --
// who wins, by what factor -- is the object of comparison, not absolute
// message counts.

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

namespace {

pdht::model::ScenarioParams ScaledParams(bool full) {
  if (full) return pdht::model::ScenarioParams{};  // paper defaults
  pdht::model::ScenarioParams p = pdht::bench::ScaledBaseConfig().params;
  // 1/10 per peer puts the scaled scenario in the regime where the
  // partial index is a strict subset of the keys (maxRank < keys).
  p.f_qry = 1.0 / 10.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader(
      "bench_sim_validation -- simulator vs analytical model",
      "Section 5.2 (simulation of the selection algorithm)");
  model::ScenarioParams params = ScaledParams(flags.full);
  std::printf("scenario: numPeers=%llu keys=%llu repl=%llu stor=%llu "
              "fQry=%.4f\n\n",
              (unsigned long long)params.num_peers,
              (unsigned long long)params.keys,
              (unsigned long long)params.repl,
              (unsigned long long)params.stor, params.f_qry);

  model::CostModel cost(params);
  model::SelectionModel sel(params);
  const core::Strategy strategies[] = {
      core::Strategy::kNoIndex, core::Strategy::kIndexAll,
      core::Strategy::kPartialIdeal, core::Strategy::kPartialTtl};
  const double model_cost[] = {
      cost.TotalNoIndex(params.f_qry), cost.TotalIndexAll(params.f_qry),
      cost.TotalPartialIdeal(params.f_qry),
      sel.TotalPartialSelection(params.f_qry)};

  exp::ExperimentSpec spec;
  spec.name = "sim_validation";
  spec.base.params = params;
  spec.base.churn.enabled = false;
  spec.base.seed = 20040314;  // the paper example's date
  spec.rounds = flags.RoundsOrDefault(flags.full ? 400 : 120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis strategy_axis{"strategy", {}};
  for (core::Strategy s : strategies) {
    strategy_axis.levels.push_back(
        {core::StrategyName(s),
         [s](core::SystemConfig& c) { c.strategy = s; }});
  }
  spec.axes = {strategy_axis};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));

  TableWriter t({"strategy", "measured [msg/round]", "model [msg/s]",
                 "hit rate", "index keys"});
  double measured[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < rows.size(); ++i) {
    measured[i] = rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal).mean;
    t.AddRow({rows[i].labels[0],
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal), 6),
              TableWriter::FormatDouble(model_cost[i], 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesHitRate), 3),
              exp::FormatStats(rows[i].Stat(exp::kMetricIndexKeys), 4)});
  }
  bench::EmitTable(t, flags.csv);

  // Shape checks: orderings, not absolute values.
  bool ordering =
      measured[2] < measured[0] &&          // partialIdeal < noIndex
      measured[3] < measured[0] &&          // partialTtl   < noIndex
      measured[1] < measured[0];            // indexAll     < noIndex (busy)
  std::printf("shape check: partial strategies and indexAll all beat "
              "noIndex at busy load: %s\n",
              ordering ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, ordering);
}
