// Ablation: k-ary key space (paper footnote 3).  Sweeps the arity of the
// structured key space and reports the lookup-vs-maintenance trade-off and
// the resulting total costs, confirming the paper's claim that the
// qualitative results hold beyond the binary space.

#include "bench_common.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_ablation_arity -- k-ary key space sweep",
                     "footnote 3 generalization");

  const double f = 1.0 / 300;
  TableWriter t({"k", "cSIndx [msg]", "cRtn [msg/s/key]", "maxRank",
                 "partial ideal [msg/s]", "partial TTL [msg/s]",
                 "savings vs indexAll"});
  bool partial_always_wins = true;
  for (uint32_t k : {2u, 4u, 8u, 16u, 64u}) {
    model::ScenarioParams p;
    p.key_space_arity = k;
    model::CostModel cm(p);
    model::SelectionModel sel(p);
    model::CostBreakdown b = cm.Evaluate(f);
    double ttl_total = sel.TotalPartialSelection(f);
    if (b.partial > b.index_all || b.partial > b.no_index) {
      partial_always_wins = false;
    }
    t.AddRow({std::to_string(k),
              TableWriter::FormatDouble(
                  cm.CostSearchIndex(cm.NumActivePeers(p.keys)), 5),
              TableWriter::FormatDouble(cm.CostRoutingMaintenance(p.keys), 5),
              std::to_string(b.max_rank),
              TableWriter::FormatDouble(b.partial, 6),
              TableWriter::FormatDouble(ttl_total, 6),
              TableWriter::FormatDouble(b.savings_vs_index_all, 4)});
  }
  bench::EmitTable(t, csv);
  std::printf("shape check: partial indexing beats both baselines at every "
              "arity: %s\n",
              partial_always_wins ? "PASS" : "FAIL");
  return partial_always_wins ? 0 : 1;
}
