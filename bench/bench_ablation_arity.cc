// Ablation: k-ary key space (paper footnote 3).  Sweeps the arity of the
// structured key space and reports the lookup-vs-maintenance trade-off
// and the resulting total costs, confirming the paper's claim that the
// qualitative results hold beyond the binary space.
//
// Model columns evaluate the paper-scale scenario analytically; the sim
// columns run the 1/50-scale discrete simulator (experiment runner,
// multi-seed) at each arity -- arity feeds the sim through the derived
// DHT membership and keyTtl, so this doubles as a regression check that
// the simulated system stays healthy across the k sweep.

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "model/cost_model.h"
#include "model/selection_model.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_ablation_arity -- k-ary key space sweep",
                     "footnote 3 generalization");

  const uint32_t arities[] = {2, 4, 8, 16, 64};
  const double f = 1.0 / 300;

  exp::ExperimentSpec spec;
  spec.name = "ablation_arity";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 3;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis arity_axis{"k", {}};
  for (uint32_t k : arities) {
    arity_axis.levels.push_back(
        {std::to_string(k),
         [k](core::SystemConfig& c) { c.params.key_space_arity = k; }});
  }
  spec.axes = {arity_axis};

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));

  TableWriter t({"k", "cSIndx [msg]", "cRtn [msg/s/key]", "maxRank",
                 "partial ideal [msg/s]", "partial TTL [msg/s]",
                 "savings vs indexAll", "sim msg/round", "sim hit rate"});
  bool partial_always_wins = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    model::ScenarioParams p;  // paper scale for the analytical columns
    p.key_space_arity = arities[i];
    model::CostModel cm(p);
    model::SelectionModel sel(p);
    model::CostBreakdown b = cm.Evaluate(f);
    double ttl_total = sel.TotalPartialSelection(f);
    if (b.partial > b.index_all || b.partial > b.no_index) {
      partial_always_wins = false;
    }
    t.AddRow({rows[i].labels[0],
              TableWriter::FormatDouble(
                  cm.CostSearchIndex(cm.NumActivePeers(p.keys)), 5),
              TableWriter::FormatDouble(cm.CostRoutingMaintenance(p.keys), 5),
              std::to_string(b.max_rank),
              TableWriter::FormatDouble(b.partial, 6),
              TableWriter::FormatDouble(ttl_total, 6),
              TableWriter::FormatDouble(b.savings_vs_index_all, 4),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesMsgTotal), 6),
              exp::FormatStats(
                  rows[i].Stat(core::PdhtSystem::kSeriesHitRate), 3)});
  }
  bench::EmitTable(t, flags.csv);
  std::printf("shape check: partial indexing beats both baselines at every "
              "arity: %s\n",
              partial_always_wins ? "PASS" : "FAIL");

  // The simulated system must stay functional across the sweep (the
  // derived membership/TTL shifts with k, the workload does not).
  bool sim_healthy = true;
  for (const exp::AggregateRow& r : rows) {
    if (!(r.Stat(core::PdhtSystem::kSeriesHitRate).mean > 0.1) ||
        !r.errors.empty()) {
      sim_healthy = false;
    }
  }
  std::printf("shape check: simulated hit rate stays > 0.1 at every arity: "
              "%s\n",
              sim_healthy ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, partial_always_wins && sim_healthy);
}
