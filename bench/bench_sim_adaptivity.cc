// Adaptivity experiment (paper Sections 5.2/6): "P-Grid adapts to changing
// query distributions."  Runs the TTL selection algorithm, shifts the
// entire popularity permutation mid-run, and reports the hit-rate dip and
// recovery time.

#include "bench_common.h"
#include "core/pdht_system.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader(
      "bench_sim_adaptivity -- index adaptation to distribution shift",
      "Sections 5.2 and 6 (query-adaptive behaviour)");

  core::SystemConfig c;
  c.params.num_peers = 400;
  c.params.keys = 800;
  c.params.stor = 20;
  c.params.repl = 10;
  c.params.f_qry = 1.0 / 5.0;
  c.params.f_upd = 1.0 / 3600.0;
  c.strategy = core::Strategy::kPartialTtl;
  c.churn.enabled = false;
  c.seed = 7;
  // A short explicit TTL keeps the index selective (top keys only) so the
  // distribution shift produces a visible dip before re-adaptation; the
  // derived 1/fMin TTL at this small scale would keep ~80% of all keys
  // resident and mask the effect.
  c.key_ttl = 30.0;
  core::PdhtSystem sys(c);

  const uint64_t warmup = 100;
  const uint64_t post = 150;
  sys.RunRounds(warmup);
  double steady = sys.TailHitRate(25);
  sys.ShiftPopularity();
  sys.RunRounds(post);

  const auto& hits = sys.engine().Series(core::PdhtSystem::kSeriesHitRate);
  auto smooth = hits.MovingAverage(10);
  double dip = 1.0;
  for (size_t r = warmup; r < warmup + 30 && r < smooth.size(); ++r) {
    dip = std::min(dip, smooth[r]);
  }
  // Recovery: first smoothed round after the shift at >= 90% of steady.
  size_t recovery_round = smooth.size();
  for (size_t r = warmup; r < smooth.size(); ++r) {
    if (smooth[r] >= steady * 0.9) {
      recovery_round = r;
      break;
    }
  }
  double recovered = sys.TailHitRate(25);

  TableWriter t({"metric", "value"});
  t.AddRow({"steady-state hit rate (pre-shift)",
            TableWriter::FormatDouble(steady, 3)});
  t.AddRow({"post-shift dip (smoothed)", TableWriter::FormatDouble(dip, 3)});
  t.AddRow({"rounds to 90% recovery",
            recovery_round == smooth.size()
                ? std::string("not reached")
                : std::to_string(recovery_round - warmup)});
  t.AddRow({"steady-state hit rate (post-recovery)",
            TableWriter::FormatDouble(recovered, 3)});
  t.AddRow({"index size (post-recovery)",
            std::to_string(sys.IndexedKeyCount())});
  bench::EmitTable(t, csv);

  bool adapted = dip < steady && recovered > steady * 0.8 &&
                 recovery_round < smooth.size();
  std::printf("shape check: hit rate dips after shift and recovers: %s\n",
              adapted ? "PASS" : "FAIL");
  return adapted ? 0 : 1;
}
