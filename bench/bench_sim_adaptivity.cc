// Adaptivity experiment (paper Sections 5.2/6): "P-Grid adapts to changing
// query distributions."  Runs the TTL selection algorithm, shifts the
// entire popularity permutation mid-run, and reports the hit-rate dip and
// recovery time -- multi-seed on the experiment runner, using a custom
// cell executor for the mid-run shift and a collect hook that reads the
// dip/recovery off the recorded hit-rate series.

#include <algorithm>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader(
      "bench_sim_adaptivity -- index adaptation to distribution shift",
      "Sections 5.2 and 6 (query-adaptive behaviour)");

  // Floor of 5 rounds keeps warmup >= 2 > 0 so the pre-shift window
  // (warmup - tail) stays well-formed even at absurd --rounds values.
  const uint64_t total = std::max<uint64_t>(5, flags.RoundsOrDefault(250));
  const uint64_t warmup = total * 2 / 5;  // 100 at the default budget
  const uint64_t post = total - warmup;
  const size_t tail = std::max<size_t>(1, warmup / 4);
  const size_t window = std::max<size_t>(2, warmup / 10);

  exp::ExperimentSpec spec;
  spec.name = "sim_adaptivity";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 7;
  // A short explicit TTL keeps the index selective (top keys only) so the
  // distribution shift produces a visible dip before re-adaptation; the
  // derived 1/fMin TTL at this small scale would keep ~80% of all keys
  // resident and mask the effect.
  spec.base.key_ttl = 30.0;
  spec.rounds = total;
  spec.tail = tail;
  spec.seeds_per_cell = flags.seeds;
  spec.run = [warmup, post](core::PdhtSystem& sys, const exp::Cell&) {
    sys.RunRounds(warmup);
    sys.ShiftPopularity();
    sys.RunRounds(post);
  };
  spec.collect = [warmup, post, tail, window](
                     const core::PdhtSystem& sys, const exp::Cell&,
                     std::map<std::string, double>& m) {
    const auto& hits = sys.engine().Series(core::PdhtSystem::kSeriesHitRate);
    double steady = hits.MeanOver(warmup - tail, warmup);
    auto smooth = hits.MovingAverage(window);
    double dip = 1.0;
    for (size_t r = warmup; r < warmup + 30 && r < smooth.size(); ++r) {
      dip = std::min(dip, smooth[r]);
    }
    // Recovery: first smoothed round after the shift at >= 90% of steady.
    size_t recovery_round = smooth.size();
    for (size_t r = warmup; r < smooth.size(); ++r) {
      if (smooth[r] >= steady * 0.9) {
        recovery_round = r;
        break;
      }
    }
    double recovered = sys.TailHitRate(tail);
    bool reached = recovery_round < smooth.size();
    m["steady"] = steady;
    m["dip"] = dip;
    m["recovery.rounds"] =
        reached ? static_cast<double>(recovery_round - warmup)
                : static_cast<double>(post);  // capped at the budget
    m["recovered"] = recovered;
    m["adapted"] =
        (dip < steady && recovered > steady * 0.8 && reached) ? 1.0 : 0.0;
  };

  exp::ParallelRunner runner({flags.threads});
  auto rows = exp::Aggregate(spec, runner.Run(spec));
  const exp::AggregateRow& row = rows.front();

  TableWriter t({"metric", "value (mean [min, max] across seeds)"});
  t.AddRow({"steady-state hit rate (pre-shift)",
            exp::FormatStats(row.Stat("steady"), 3)});
  t.AddRow({"post-shift dip (smoothed)",
            exp::FormatStats(row.Stat("dip"), 3)});
  t.AddRow({"rounds to 90% recovery",
            exp::FormatStats(row.Stat("recovery.rounds"), 4)});
  t.AddRow({"steady-state hit rate (post-recovery)",
            exp::FormatStats(row.Stat("recovered"), 3)});
  t.AddRow({"index size (post-recovery)",
            exp::FormatStats(row.Stat(exp::kMetricIndexKeys), 4)});
  t.AddRow({"seeds adapted (dip + 80% recovery)",
            exp::FormatStats(row.Stat("adapted"), 3)});
  bench::EmitTable(t, flags.csv);

  // At least 3 of 4 default seeds must show the dip-and-recover shape
  // (a single seed can draw a popularity permutation whose shift barely
  // moves the indexed set).
  bool adapted = row.Stat("adapted").mean >= 0.75;
  std::printf("shape check: hit rate dips after shift and recovers: %s\n",
              adapted ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, adapted);
}
