// Regenerates the Section 5.1.1 keyTtl sensitivity study: "Analytical
// results show that an estimation error of +-50% of the ideal keyTtl
// decreases the savings only slightly."
//
// The analytical sweep is the paper artifact; a second, simulated sweep
// (experiment runner, fQry x ttl-scale grid, multi-seed) checks the same
// gentleness on the discrete substrate at 1/50 scale.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/pdht_system.h"
#include "exp/experiment.h"
#include "exp/parallel_runner.h"
#include "model/sweep.h"

int main(int argc, char** argv) {
  using namespace pdht;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("bench_keyttl_sensitivity -- keyTtl estimation error",
                     "Section 5.1.1");
  model::ScenarioParams params;
  std::vector<double> freqs = {1.0 / 30,  1.0 / 120, 1.0 / 600,
                               1.0 / 1800, 1.0 / 7200};
  std::vector<double> scales = {0.5, 0.75, 1.0, 1.25, 1.5};
  auto rows = model::SweepTtlSensitivity(params, freqs, scales);
  bench::EmitTable(model::TtlSensitivityTable(rows), flags.csv);

  // Shape check: for each frequency, cost at scale 0.5 / 1.5 within 40%
  // of cost at scale 1.0 ("decreases the savings only slightly").
  bool gentle = true;
  for (double f : freqs) {
    double at_one = 0.0;
    for (const auto& r : rows) {
      if (r.f_qry == f && r.ttl_scale == 1.0) at_one = r.partial;
    }
    for (const auto& r : rows) {
      if (r.f_qry != f) continue;
      if (r.partial > at_one * 1.4) gentle = false;
    }
  }
  std::printf("shape check: +-50%% keyTtl error costs < 40%% extra "
              "(analytical): %s\n",
              gentle ? "PASS" : "FAIL");

  // --- simulated counterpart (scaled scenario) -------------------------
  exp::ExperimentSpec spec;
  spec.name = "keyttl_sensitivity_sim";
  spec.base = bench::ScaledBaseConfig();
  spec.base.seed = 511;
  spec.rounds = flags.RoundsOrDefault(120);
  spec.tail = std::max<size_t>(1, spec.rounds / 4);
  spec.seeds_per_cell = flags.seeds;
  exp::Axis freq_axis{"fQry", {}};
  for (double denom : {5.0, 30.0, 120.0}) {
    freq_axis.levels.push_back(
        {"1/" + TableWriter::FormatDouble(denom, 4),
         [denom](core::SystemConfig& c) { c.params.f_qry = 1.0 / denom; }});
  }
  exp::Axis scale_axis{"ttl scale", {}};
  for (double s : {0.5, 1.0, 1.5}) {
    scale_axis.levels.push_back(
        {TableWriter::FormatDouble(s, 3),
         [s](core::SystemConfig& c) { c.ttl_scale = s; }});
  }
  spec.axes = {freq_axis, scale_axis};

  exp::ParallelRunner runner({flags.threads});
  auto sim_rows = exp::Aggregate(spec, runner.Run(spec));
  std::printf("simulated sweep (1/50-scale scenario):\n");
  bench::EmitTable(
      exp::ToTable(spec, sim_rows,
                   {{"sim msg/round", core::PdhtSystem::kSeriesMsgTotal},
                    {"sim hit rate", core::PdhtSystem::kSeriesHitRate},
                    {"index keys", exp::kMetricIndexKeys}}),
      "");

  // Informational only: the discrete run is noisy at low fQry, so the
  // simulated gentleness is reported but the analytical check decides
  // the exit status.
  bool sim_gentle = true;
  for (size_t f = 0; f < freq_axis.levels.size(); ++f) {
    const size_t base_idx = f * scale_axis.levels.size();
    double at_one = sim_rows[base_idx + 1]
                        .Stat(core::PdhtSystem::kSeriesMsgTotal)
                        .mean;
    for (size_t s = 0; s < scale_axis.levels.size(); ++s) {
      double v = sim_rows[base_idx + s]
                     .Stat(core::PdhtSystem::kSeriesMsgTotal)
                     .mean;
      if (v > at_one * 1.4) sim_gentle = false;
    }
  }
  std::printf("info: +-50%% keyTtl error costs < 40%% extra (simulated): "
              "%s\n",
              sim_gentle ? "PASS" : "FAIL");
  return bench::ShapeCheckExit(flags, gentle);
}
