// Regenerates the Section 5.1.1 keyTtl sensitivity study: "Analytical
// results show that an estimation error of +-50% of the ideal keyTtl
// decreases the savings only slightly."

#include <cmath>

#include "bench_common.h"
#include "model/sweep.h"

int main(int argc, char** argv) {
  using namespace pdht;
  std::string csv = bench::CsvPathFromArgs(argc, argv);
  bench::PrintHeader("bench_keyttl_sensitivity -- keyTtl estimation error",
                     "Section 5.1.1");
  model::ScenarioParams params;
  std::vector<double> freqs = {1.0 / 30,  1.0 / 120, 1.0 / 600,
                               1.0 / 1800, 1.0 / 7200};
  std::vector<double> scales = {0.5, 0.75, 1.0, 1.25, 1.5};
  auto rows = model::SweepTtlSensitivity(params, freqs, scales);
  bench::EmitTable(model::TtlSensitivityTable(rows), csv);

  // Shape check: for each frequency, cost at scale 0.5 / 1.5 within 40%
  // of cost at scale 1.0 ("decreases the savings only slightly").
  bool gentle = true;
  for (double f : freqs) {
    double at_one = 0.0;
    for (const auto& r : rows) {
      if (r.f_qry == f && r.ttl_scale == 1.0) at_one = r.partial;
    }
    for (const auto& r : rows) {
      if (r.f_qry != f) continue;
      if (r.partial > at_one * 1.4) gentle = false;
    }
  }
  std::printf("shape check: +-50%% keyTtl error costs < 40%% extra: %s\n",
              gentle ? "PASS" : "FAIL");
  return gentle ? 0 : 1;
}
