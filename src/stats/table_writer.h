// Aligned text tables and CSV output.
//
// Every bench binary prints (a) an aligned table to stdout that mirrors the
// corresponding figure/table in the paper and (b) optionally a CSV file for
// external plotting.  TableWriter collects typed rows and renders both.

#ifndef PDHT_STATS_TABLE_WRITER_H_
#define PDHT_STATS_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace pdht {

class TableWriter {
 public:
  /// `columns` are the header names; every row must have the same arity.
  explicit TableWriter(std::vector<std::string> columns);

  /// Adds a row of preformatted cells.  Dies (assert) on arity mismatch.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders a fixed-width aligned table with a header rule.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`; returns false on IO failure.  When
  /// `error` is non-null it receives a diagnosis with the path and the
  /// OS errno text ("bench.csv: No such file or directory"), or the
  /// empty string on success.
  bool WriteCsvFile(const std::string& path,
                    std::string* error = nullptr) const;

  /// Formats a double like "%.*g" (shared helper so tables look uniform).
  static std::string FormatDouble(double v, int precision = 4);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdht

#endif  // PDHT_STATS_TABLE_WRITER_H_
