#include "stats/table_writer.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace pdht {

TableWriter::TableWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::AddNumericRow(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TableWriter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TableWriter::ToText() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TableWriter::ToCsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << CsvEscape(columns_[c]) << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << CsvEscape(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return os.str();
}

bool TableWriter::WriteCsvFile(const std::string& path,
                               std::string* error) const {
  if (error) error->clear();
  auto fail = [&](const char* stage) {
    if (error) {
      // errno from the failed stream operation; "I/O error" when the
      // stream failed without the C library recording a cause.
      int err = errno;
      *error = path + ": " +
               (err != 0 ? std::strerror(err) : "I/O error") + " (" +
               stage + ")";
    }
    return false;
  };
  errno = 0;
  std::ofstream f(path);
  if (!f) return fail("open");
  f << ToCsv();
  f.flush();
  if (!f) return fail("write");
  return true;
}

}  // namespace pdht
