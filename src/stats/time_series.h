// Time series of per-round measurements.
//
// Experiments record one sample per simulation round (e.g. messages sent,
// index size, hit rate); TimeSeries supports windowed averaging so that the
// adaptivity experiments (query-distribution shift, Section 5.2 / 6) can
// report smoothed before/after levels.

#ifndef PDHT_STATS_TIME_SERIES_H_
#define PDHT_STATS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pdht {

class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void Append(double value) { values_.push_back(value); }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double at(size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  const std::string& name() const { return name_; }

  /// Mean over [first, last) clamped to the series bounds; 0 when empty.
  double MeanOver(size_t first, size_t last) const;

  /// Mean over the final `n` samples.
  double TailMean(size_t n) const;

  /// Simple moving average with the given window (window >= 1); output has
  /// the same length as the input (shorter prefix windows are averaged over
  /// what exists).
  std::vector<double> MovingAverage(size_t window) const;

  /// Index of the first sample >= threshold at or after `from`, or size()
  /// if none.  Used to measure adaptation time after a workload shift.
  size_t FirstIndexAtLeast(double threshold, size_t from = 0) const;

  /// Index of the first sample <= threshold at or after `from`, or size().
  size_t FirstIndexAtMost(double threshold, size_t from = 0) const;

 private:
  std::string name_;
  std::vector<double> values_;
};

}  // namespace pdht

#endif  // PDHT_STATS_TIME_SERIES_H_
