// Streaming histogram / summary statistics.
//
// Used to validate protocol behaviour against the closed-form model, e.g.
// the distribution of Chord lookup hop counts against cSIndx =
// 0.5*log2(numActivePeers) (Eq. 7), or random-walk message counts against
// cSUnstr (Eq. 6).

#ifndef PDHT_STATS_HISTOGRAM_H_
#define PDHT_STATS_HISTOGRAM_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pdht {

/// P² (piecewise-parabolic) streaming quantile estimator
/// (Jain & Chlamtac, CACM 1985): tracks one quantile with five markers in
/// O(1) memory and O(1) work per observation, no samples retained.  The
/// first five observations are stored exactly; afterwards marker heights
/// are adjusted parabolically (falling back to linear interpolation when
/// the parabola would break marker monotonicity).  Deterministic for a
/// given observation order.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void Add(double value);

  /// Current estimate; exact (nearest-rank over the stored values) until
  /// five observations have been seen, 0 when empty.
  double Value() const;

  double q() const { return q_; }
  uint64_t count() const { return count_; }
  void Reset();

 private:
  double q_;
  uint64_t count_ = 0;
  double heights_[5];    ///< marker heights h_i (h_2 estimates q)
  double positions_[5];  ///< actual marker positions n_i (1-based ranks)
  double desired_[5];    ///< desired positions n'_i
  double rates_[5];      ///< dn'_i per observation
};

/// Accumulates scalar observations; supports mean/variance (Welford),
/// min/max, and exact quantiles (values are retained).
class Histogram {
 public:
  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Exact quantile via nearest-rank on the sorted sample; q in [0, 1].
  /// O(n log n) on first call after new data (lazy sort).  Under a
  /// sample cap (below) the quantile is a systematic-subsample estimate.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// Bounds retained-sample memory for unbounded streams (e.g. one
  /// sample per simulated message): once more than `cap` values are
  /// retained the sample is decimated 2x and subsequent observations are
  /// kept at the doubled stride.  Deterministic; moment statistics
  /// (count/mean/variance/min/max/sum) stay exact, quantiles degrade
  /// gracefully to estimates over an at-most-`cap` systematic subsample.
  /// 0 (the default) retains everything.  Set before adding data.
  void SetSampleCap(size_t cap) { sample_cap_ = cap; }

  /// Switches quantile tracking to streaming P² estimators for the given
  /// probabilities and stops retaining samples entirely: memory becomes
  /// O(1) per tracked probability regardless of stream length, which is
  /// what per-lookup latency histograms need at 100k-1M peers.  Moment
  /// statistics (count/mean/variance/min/max/sum) stay exact.  Quantile(q)
  /// returns the estimate of the tracked probability nearest to `q`.
  /// Call before adding data; an empty list just disables retention.
  void TrackStreamingQuantiles(std::initializer_list<double> qs);

  /// True once TrackStreamingQuantiles has been called.
  bool streaming() const { return streaming_; }

  void Reset();

  /// One-line summary: "n=... mean=... sd=... min=... p50=... p99=... max=..."
  std::string Summary() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  size_t sample_cap_ = 0;   ///< 0 = retain every value
  uint64_t stride_ = 1;     ///< keep every stride-th observation
  uint64_t stride_pos_ = 0; ///< observations since the last kept one
  bool streaming_ = false;  ///< quantiles via P² sketches, no retention
  std::vector<P2Quantile> sketches_;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-width bucketed counts for plotting distributions as text.
class BucketHistogram {
 public:
  /// Buckets [lo, lo+w), [lo+w, lo+2w), ...; values outside [lo, hi) go to
  /// under/overflow buckets.
  BucketHistogram(double lo, double hi, int num_buckets);

  void Add(double value);
  uint64_t BucketCount(int i) const { return buckets_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  double BucketLow(int i) const { return lo_ + i * width_; }

  /// ASCII rendering, one bucket per line with a proportional bar.
  std::string Render(int bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace pdht

#endif  // PDHT_STATS_HISTOGRAM_H_
