#include "stats/time_series.h"

#include <algorithm>

namespace pdht {

double TimeSeries::MeanOver(size_t first, size_t last) const {
  first = std::min(first, values_.size());
  last = std::min(last, values_.size());
  if (first >= last) return 0.0;
  double sum = 0.0;
  for (size_t i = first; i < last; ++i) sum += values_[i];
  return sum / static_cast<double>(last - first);
}

double TimeSeries::TailMean(size_t n) const {
  if (values_.empty() || n == 0) return 0.0;
  size_t first = n >= values_.size() ? 0 : values_.size() - n;
  return MeanOver(first, values_.size());
}

std::vector<double> TimeSeries::MovingAverage(size_t window) const {
  std::vector<double> out(values_.size());
  if (window == 0) window = 1;
  double sum = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    sum += values_[i];
    if (i >= window) sum -= values_[i - window];
    size_t n = std::min(i + 1, window);
    out[i] = sum / static_cast<double>(n);
  }
  return out;
}

size_t TimeSeries::FirstIndexAtLeast(double threshold, size_t from) const {
  for (size_t i = from; i < values_.size(); ++i) {
    if (values_[i] >= threshold) return i;
  }
  return values_.size();
}

size_t TimeSeries::FirstIndexAtMost(double threshold, size_t from) const {
  for (size_t i = from; i < values_.size(); ++i) {
    if (values_[i] <= threshold) return i;
  }
  return values_.size();
}

}  // namespace pdht
