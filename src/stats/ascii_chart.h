// ASCII line charts.
//
// The paper's Figs. 1-4 are plots; the bench binaries print both the raw
// series tables (TableWriter) and an AsciiChart rendering so the figure
// shape is directly inspectable in a terminal or a bench log.

#ifndef PDHT_STATS_ASCII_CHART_H_
#define PDHT_STATS_ASCII_CHART_H_

#include <string>
#include <vector>

namespace pdht {

class AsciiChart {
 public:
  /// `height` rows by `width` columns of plotting area.
  AsciiChart(int width = 64, int height = 16);

  /// Adds a named series; all series must have the same length (one value
  /// per x position).  `marker` is the glyph used for its points.
  void AddSeries(std::string name, std::vector<double> values, char marker);

  /// X-axis labels (one per value position; printed under the chart,
  /// spread across the width).
  void SetXLabels(std::vector<std::string> labels);

  /// Optional fixed y-range; by default the range spans all series.
  void SetYRange(double lo, double hi);

  /// Log-scale the y axis (values must be positive).
  void SetLogY(bool log_y) { log_y_ = log_y; }

  /// Renders the chart with a y-axis scale, legend and x labels.
  std::string Render() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
    char marker;
  };

  int width_;
  int height_;
  bool log_y_ = false;
  bool has_y_range_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
  std::vector<Series> series_;
  std::vector<std::string> x_labels_;
};

}  // namespace pdht

#endif  // PDHT_STATS_ASCII_CHART_H_
