#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace pdht {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  Reset();
}

void P2Quantile::Reset() {
  count_ = 0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  rates_[0] = 0.0;
  rates_[1] = q_ / 2.0;
  rates_[2] = q_;
  rates_[3] = (1.0 + q_) / 2.0;
  rates_[4] = 1.0;
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Locate the cell k such that h[k] <= value < h[k+1], extending the
  // extreme markers when the observation falls outside them.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += rates_[i];
  ++count_;
  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    double below = positions_[i] - positions_[i - 1];
    double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the new height.
      double hp =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (hp <= heights_[i - 1] || hp >= heights_[i + 1]) {
        // Parabola would violate marker ordering: use linear interpolation
        // toward the neighbour in the adjustment direction.
        int j = i + static_cast<int>(s);
        hp = heights_[i] + s * (heights_[j] - heights_[i]) /
                               (positions_[j] - positions_[i]);
      }
      heights_[i] = hp;
      positions_[i] += s;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank over the (unsorted) initial buffer.
    double tmp[5];
    std::copy(heights_, heights_ + count_, tmp);
    std::sort(tmp, tmp + count_);
    size_t idx = static_cast<size_t>(q_ * static_cast<double>(count_));
    if (idx >= count_) idx = count_ - 1;
    return tmp[idx];
  }
  return heights_[2];
}

void Histogram::TrackStreamingQuantiles(std::initializer_list<double> qs) {
  assert(count_ == 0 && "set streaming mode before adding data");
  streaming_ = true;
  sketches_.clear();
  for (double q : qs) sketches_.emplace_back(q);
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  if (streaming_) {
    for (P2Quantile& s : sketches_) s.Add(value);
  } else if (sample_cap_ == 0) {
    values_.push_back(value);
  } else {
    // Systematic retention: keep every stride-th observation; once the
    // buffer outgrows the cap, decimate 2x and double the stride.  The
    // kept values are a deterministic uniform subsample, so quantile
    // estimates stay unbiased while memory is bounded by the cap.
    if (stride_pos_ == 0) {
      values_.push_back(value);
      if (values_.size() > sample_cap_) {
        for (size_t i = 1; 2 * i < values_.size(); ++i) {
          values_[i] = values_[2 * i];
        }
        values_.resize((values_.size() + 1) / 2);
        stride_ *= 2;
      }
    }
    if (++stride_pos_ >= stride_) stride_pos_ = 0;
  }
  sorted_ = false;
}

double Histogram::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Histogram::stddev() const { return std::sqrt(variance()); }

double Histogram::Quantile(double q) const {
  if (streaming_) {
    if (sketches_.empty()) return 0.0;
    const P2Quantile* best = &sketches_[0];
    for (const P2Quantile& s : sketches_) {
      if (std::abs(s.q() - q) < std::abs(best->q() - q)) best = &s;
    }
    return best->Value();
  }
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(values_.size()));
  if (idx >= values_.size()) idx = values_.size() - 1;
  return values_[idx];
}

void Histogram::Reset() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = sum_ = 0.0;
  stride_ = 1;
  stride_pos_ = 0;
  for (P2Quantile& s : sketches_) s.Reset();
  values_.clear();
  sorted_ = true;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " p50=" << Quantile(0.5)
     << " p99=" << Quantile(0.99) << " max=" << max();
  return os.str();
}

BucketHistogram::BucketHistogram(double lo, double hi, int num_buckets)
    : lo_(lo), buckets_(static_cast<size_t>(num_buckets), 0) {
  assert(num_buckets > 0);
  assert(hi > lo);
  width_ = (hi - lo) / num_buckets;
}

void BucketHistogram::Add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  size_t i = static_cast<size_t>((value - lo_) / width_);
  if (i >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[i];
}

std::string BucketHistogram::Render(int bar_width) const {
  uint64_t max_count = 1;
  for (uint64_t b : buckets_) max_count = std::max(max_count, b);
  std::ostringstream os;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double lo = lo_ + static_cast<double>(i) * width_;
    int bar = static_cast<int>(static_cast<double>(buckets_[i]) /
                               static_cast<double>(max_count) * bar_width);
    os << "[" << lo << ", " << (lo + width_) << ") " << buckets_[i] << " ";
    for (int j = 0; j < bar; ++j) os << '#';
    os << "\n";
  }
  return os.str();
}

}  // namespace pdht
