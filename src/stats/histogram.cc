#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace pdht {

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  if (sample_cap_ == 0) {
    values_.push_back(value);
  } else {
    // Systematic retention: keep every stride-th observation; once the
    // buffer outgrows the cap, decimate 2x and double the stride.  The
    // kept values are a deterministic uniform subsample, so quantile
    // estimates stay unbiased while memory is bounded by the cap.
    if (stride_pos_ == 0) {
      values_.push_back(value);
      if (values_.size() > sample_cap_) {
        for (size_t i = 1; 2 * i < values_.size(); ++i) {
          values_[i] = values_[2 * i];
        }
        values_.resize((values_.size() + 1) / 2);
        stride_ *= 2;
      }
    }
    if (++stride_pos_ >= stride_) stride_pos_ = 0;
  }
  sorted_ = false;
}

double Histogram::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Histogram::stddev() const { return std::sqrt(variance()); }

double Histogram::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(values_.size()));
  if (idx >= values_.size()) idx = values_.size() - 1;
  return values_[idx];
}

void Histogram::Reset() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = sum_ = 0.0;
  stride_ = 1;
  stride_pos_ = 0;
  values_.clear();
  sorted_ = true;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " p50=" << Quantile(0.5)
     << " p99=" << Quantile(0.99) << " max=" << max();
  return os.str();
}

BucketHistogram::BucketHistogram(double lo, double hi, int num_buckets)
    : lo_(lo), buckets_(static_cast<size_t>(num_buckets), 0) {
  assert(num_buckets > 0);
  assert(hi > lo);
  width_ = (hi - lo) / num_buckets;
}

void BucketHistogram::Add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  size_t i = static_cast<size_t>((value - lo_) / width_);
  if (i >= buckets_.size()) {
    ++overflow_;
    return;
  }
  ++buckets_[i];
}

std::string BucketHistogram::Render(int bar_width) const {
  uint64_t max_count = 1;
  for (uint64_t b : buckets_) max_count = std::max(max_count, b);
  std::ostringstream os;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double lo = lo_ + static_cast<double>(i) * width_;
    int bar = static_cast<int>(static_cast<double>(buckets_[i]) /
                               static_cast<double>(max_count) * bar_width);
    os << "[" << lo << ", " << (lo + width_) << ") " << buckets_[i] << " ";
    for (int j = 0; j < bar; ++j) os << '#';
    os << "\n";
  }
  return os.str();
}

}  // namespace pdht
