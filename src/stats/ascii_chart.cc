#include "stats/ascii_chart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pdht {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  assert(width >= 8);
  assert(height >= 4);
}

void AsciiChart::AddSeries(std::string name, std::vector<double> values,
                           char marker) {
  assert(series_.empty() || values.size() == series_[0].values.size());
  series_.push_back(Series{std::move(name), std::move(values), marker});
}

void AsciiChart::SetXLabels(std::vector<std::string> labels) {
  x_labels_ = std::move(labels);
}

void AsciiChart::SetYRange(double lo, double hi) {
  assert(hi > lo);
  y_lo_ = lo;
  y_hi_ = hi;
  has_y_range_ = true;
}

std::string AsciiChart::Render() const {
  if (series_.empty() || series_[0].values.empty()) return "(empty chart)\n";
  const size_t n = series_[0].values.size();

  auto transform = [&](double v) {
    return log_y_ ? std::log10(std::max(v, 1e-300)) : v;
  };

  double lo = has_y_range_ ? transform(y_lo_) : 1e300;
  double hi = has_y_range_ ? transform(y_hi_) : -1e300;
  if (!has_y_range_) {
    for (const auto& s : series_) {
      for (double v : s.values) {
        lo = std::min(lo, transform(v));
        hi = std::max(hi, transform(v));
      }
    }
    if (hi <= lo) hi = lo + 1.0;
  }

  // Grid of glyphs; later series overwrite earlier ones on collisions.
  std::vector<std::string> grid(static_cast<size_t>(height_),
                                std::string(static_cast<size_t>(width_), ' '));
  auto x_of = [&](size_t i) {
    if (n == 1) return 0;
    return static_cast<int>(static_cast<double>(i) *
                            static_cast<double>(width_ - 1) /
                            static_cast<double>(n - 1));
  };
  auto y_of = [&](double v) {
    double t = (transform(v) - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<int>(std::round((1.0 - t) * (height_ - 1)));
  };
  for (const auto& s : series_) {
    for (size_t i = 0; i < n; ++i) {
      grid[static_cast<size_t>(y_of(s.values[i]))]
          [static_cast<size_t>(x_of(i))] = s.marker;
    }
  }

  std::ostringstream os;
  // Y-axis scale: top, middle, bottom ticks.
  auto untransform = [&](double t) { return log_y_ ? std::pow(10, t) : t; };
  char label[32];
  for (int row = 0; row < height_; ++row) {
    double t = hi - (hi - lo) * static_cast<double>(row) / (height_ - 1);
    if (row == 0 || row == height_ / 2 || row == height_ - 1) {
      std::snprintf(label, sizeof(label), "%10.4g", untransform(t));
      os << label << " |";
    } else {
      os << std::string(10, ' ') << " |";
    }
    os << grid[static_cast<size_t>(row)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<size_t>(width_), '-')
     << "\n";
  // X labels spread under the axis.
  if (!x_labels_.empty()) {
    size_t max_label = 0;
    for (const auto& l : x_labels_) max_label = std::max(max_label, l.size());
    std::string row(static_cast<size_t>(width_) + 12 + max_label, ' ');
    for (size_t i = 0; i < x_labels_.size() && i < n; ++i) {
      const std::string& lbl = x_labels_[i];
      size_t pos = static_cast<size_t>(x_of(i)) + 12;
      // Keep the trailing label inside the row (right-aligned at the end).
      pos = std::min(pos, row.size() - lbl.size());
      for (size_t c = 0; c < lbl.size(); ++c) row[pos + c] = lbl[c];
    }
    while (!row.empty() && row.back() == ' ') row.pop_back();
    os << row << "\n";
  }
  // Legend.
  os << "   legend: ";
  for (size_t i = 0; i < series_.size(); ++i) {
    os << series_[i].marker << "=" << series_[i].name;
    if (i + 1 < series_.size()) os << "  ";
  }
  os << (log_y_ ? "  (log y)" : "") << "\n";
  return os.str();
}

}  // namespace pdht
