// Named message/event counters.
//
// The paper's cost metric is "number of messages sent per second"; the
// simulator attributes every message to a named counter (per message type
// and per strategy) so experiments can print exactly the series the paper
// plots.  CounterRegistry owns a set of monotonically increasing counters
// addressed by name, with snapshot/delta support for per-round rates.

#ifndef PDHT_STATS_COUNTER_H_
#define PDHT_STATS_COUNTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pdht {

/// A single monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Registry of named counters.  Names are hierarchical by convention, e.g.
/// "msg.unstructured.walk" or "msg.dht.lookup".
class CounterRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  /// The returned reference stays valid for the registry's lifetime.
  Counter& Get(const std::string& name);

  /// Value of `name`, or 0 if the counter does not exist.
  uint64_t Value(const std::string& name) const;

  /// Sum of all counters whose name starts with `prefix`.
  uint64_t SumWithPrefix(const std::string& prefix) const;

  /// Total across all counters.
  uint64_t Total() const;

  /// Resets every counter to zero (names are retained).
  void ResetAll();

  /// Returns (name, value) pairs sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Renders a human-readable multi-line report.
  std::string Report() const;

 private:
  std::map<std::string, Counter> counters_;
};

}  // namespace pdht

#endif  // PDHT_STATS_COUNTER_H_
