// Named message/event counters.
//
// The paper's cost metric is "number of messages sent per second"; the
// simulator attributes every message to a named counter (per message type
// and per strategy) so experiments can print exactly the series the paper
// plots.  CounterRegistry owns a set of monotonically increasing counters
// addressed by name, with snapshot/delta support for per-round rates.
//
// Hot path: names are *interned once* -- Intern(name) returns a dense
// CounterId indexing a flat vector<uint64_t> -- so per-message accounting
// (Network::Send) is a plain array increment with zero string work.
// Prefix sums ("msg.dht." -> messages-per-round series) go through
// *prefix groups*: InternPrefix(prefix) registers the prefix once,
// membership is resolved at intern time (including counters interned
// after the group), and GroupSum is an O(group size) integer sum.  The
// string-keyed API (Get/Value/SumWithPrefix) survives as a thin
// compatibility layer over the intern table.

#ifndef PDHT_STATS_COUNTER_H_
#define PDHT_STATS_COUNTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace pdht {

class CounterRegistry;

/// Dense handle of an interned counter: index into the registry's flat
/// value array.  Ids are assigned 0,1,2,... in intern order and never
/// change for the registry's lifetime.
using CounterId = uint32_t;

/// Handle of an interned prefix group (see CounterRegistry::InternPrefix).
using GroupId = uint32_t;

/// A single monotonically increasing counter.
///
/// Standalone Counter objects own their value.  Counters returned by
/// CounterRegistry::Get are handles forwarding to the registry's flat
/// value array (the registry is the single source of truth shared with
/// the CounterId fast path), with the same stable-reference guarantee as
/// before.
class Counter {
 public:
  Counter() = default;
  inline void Add(uint64_t n = 1);
  inline uint64_t value() const;
  inline void Reset();

 private:
  friend class CounterRegistry;
  Counter(CounterRegistry* registry, CounterId id)
      : registry_(registry), id_(id) {}

  CounterRegistry* registry_ = nullptr;  ///< null = standalone counter
  CounterId id_ = 0;
  uint64_t value_ = 0;  ///< storage for standalone counters only
};

/// Registry of named counters.  Names are hierarchical by convention, e.g.
/// "msg.unstructured.walk" or "msg.dht.lookup".
class CounterRegistry {
 public:
  CounterRegistry() = default;
  // The registry is self-referential (compat handles store `this`,
  // id->name pointers alias the intern-map keys), so copying or moving
  // it would leave handles mutating the source registry.
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  // --- Interned fast path ----------------------------------------------

  /// Interns `name`, returning its dense id (idempotent: the same name
  /// always yields the same id).  Ids index a flat value array; intern
  /// once at setup, then use Add(id)/Value(id) per event.
  CounterId Intern(const std::string& name);

  /// Increments counter `id` (must come from Intern) by `n`.
  void Add(CounterId id, uint64_t n = 1) { values_[id] += n; }

  /// Current value of counter `id`.
  uint64_t Value(CounterId id) const { return values_[id]; }

  /// Name that `id` was interned under.
  const std::string& NameOf(CounterId id) const { return *names_[id]; }

  /// Number of interned counters (ids are 0..NumCounters()-1).
  size_t NumCounters() const { return values_.size(); }

  /// Interns a prefix group (idempotent per prefix string).  The group's
  /// members are all counters whose name starts with `prefix` --
  /// including counters interned *after* the group is created.
  GroupId InternPrefix(const std::string& prefix);

  /// Sum over the group's member counters: the O(group size) integer
  /// equivalent of SumWithPrefix(prefix), with zero string work.
  uint64_t GroupSum(GroupId group) const {
    uint64_t sum = 0;
    for (CounterId id : groups_[group].members) sum += values_[id];
    return sum;
  }

  /// Member ids of `group`, in intern order (test support).
  const std::vector<CounterId>& GroupMembers(GroupId group) const {
    return groups_[group].members;
  }

  /// Adds `delta[id]` to each counter id in one pass.  `delta` is a flat
  /// per-id accumulation buffer (a shard lane) sized at most NumCounters();
  /// integer adds commute, so lanes can be merged in any order.  Used by
  /// the sharded round engine to fold per-shard message accounting back
  /// into the registry at a phase barrier.
  void MergeDelta(const std::vector<uint64_t>& delta) {
    size_t n = delta.size() < values_.size() ? delta.size() : values_.size();
    for (size_t i = 0; i < n; ++i) values_[i] += delta[i];
  }

  // --- String-keyed compatibility layer --------------------------------

  /// Returns the counter registered under `name`, creating it on first
  /// use.  The returned reference stays valid for the registry's
  /// lifetime and shares storage with the interned id.  Use it by
  /// reference: a by-value copy is still a *handle* (it aliases the
  /// registry slot and must not outlive the registry), not a snapshot.
  Counter& Get(const std::string& name);

  /// Value of `name`, or 0 if the counter does not exist.
  uint64_t Value(const std::string& name) const;

  /// Sum of all counters whose name starts with `prefix`.
  uint64_t SumWithPrefix(const std::string& prefix) const;

  /// Total across all counters.
  uint64_t Total() const;

  /// Resets every counter to zero (names, ids and groups are retained).
  void ResetAll();

  /// Returns (name, value) pairs sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Renders a human-readable multi-line report.
  std::string Report() const;

 private:
  friend class Counter;

  void Set(CounterId id, uint64_t v) { values_[id] = v; }

  struct PrefixGroup {
    std::string prefix;
    std::vector<CounterId> members;
  };

  std::map<std::string, CounterId> ids_;   ///< intern table (name->id),
                                           ///< ordered for reports
  std::vector<uint64_t> values_;           ///< id -> value (the hot array)
  std::vector<const std::string*> names_;  ///< id -> name (map keys: stable)
  std::deque<Counter> handles_;            ///< id -> compat handle (stable
                                           ///< references across growth)
  std::vector<PrefixGroup> groups_;
};

inline void Counter::Add(uint64_t n) {
  if (registry_ != nullptr) {
    registry_->Add(id_, n);
  } else {
    value_ += n;
  }
}

inline uint64_t Counter::value() const {
  return registry_ != nullptr ? registry_->Value(id_) : value_;
}

inline void Counter::Reset() {
  if (registry_ != nullptr) {
    registry_->Set(id_, 0);
  } else {
    value_ = 0;
  }
}

}  // namespace pdht

#endif  // PDHT_STATS_COUNTER_H_
