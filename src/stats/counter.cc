#include "stats/counter.h"

#include <sstream>

namespace pdht {

Counter& CounterRegistry::Get(const std::string& name) {
  return counters_[name];
}

uint64_t CounterRegistry::Value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

uint64_t CounterRegistry::SumWithPrefix(const std::string& prefix) const {
  uint64_t sum = 0;
  // std::map is ordered, so all keys with the prefix form a contiguous range.
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second.value();
  }
  return sum;
}

uint64_t CounterRegistry::Total() const {
  uint64_t sum = 0;
  for (const auto& [name, c] : counters_) sum += c.value();
  return sum;
}

void CounterRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c.Reset();
}

std::vector<std::pair<std::string, uint64_t>> CounterRegistry::Snapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::string CounterRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  return os.str();
}

}  // namespace pdht
