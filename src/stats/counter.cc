#include "stats/counter.h"

#include <sstream>

namespace pdht {

CounterId CounterRegistry::Intern(const std::string& name) {
  // try_emplace: no node/string allocation when the name is already
  // interned (the common case for the compat Get path).
  auto [it, inserted] =
      ids_.try_emplace(name, static_cast<CounterId>(values_.size()));
  if (!inserted) return it->second;
  CounterId id = it->second;
  values_.push_back(0);
  names_.push_back(&it->first);
  handles_.push_back(Counter(this, id));
  // Late-interned counters join every matching group so GroupSum stays
  // equivalent to SumWithPrefix regardless of intern/group order.
  for (PrefixGroup& g : groups_) {
    if (name.compare(0, g.prefix.size(), g.prefix) == 0) {
      g.members.push_back(id);
    }
  }
  return id;
}

GroupId CounterRegistry::InternPrefix(const std::string& prefix) {
  for (GroupId g = 0; g < groups_.size(); ++g) {
    if (groups_[g].prefix == prefix) return g;
  }
  GroupId g = static_cast<GroupId>(groups_.size());
  groups_.push_back(PrefixGroup{prefix, {}});
  // Existing counters with the prefix form a contiguous range of the
  // ordered intern table.
  for (auto it = ids_.lower_bound(prefix); it != ids_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    groups_.back().members.push_back(it->second);
  }
  return g;
}

Counter& CounterRegistry::Get(const std::string& name) {
  return handles_[Intern(name)];
}

uint64_t CounterRegistry::Value(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? 0 : values_[it->second];
}

uint64_t CounterRegistry::SumWithPrefix(const std::string& prefix) const {
  uint64_t sum = 0;
  // std::map is ordered, so all keys with the prefix form a contiguous range.
  for (auto it = ids_.lower_bound(prefix); it != ids_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += values_[it->second];
  }
  return sum;
}

uint64_t CounterRegistry::Total() const {
  uint64_t sum = 0;
  for (uint64_t v : values_) sum += v;
  return sum;
}

void CounterRegistry::ResetAll() {
  for (uint64_t& v : values_) v = 0;
}

std::vector<std::pair<std::string, uint64_t>> CounterRegistry::Snapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(ids_.size());
  for (const auto& [name, id] : ids_) out.emplace_back(name, values_[id]);
  return out;
}

std::string CounterRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, id] : ids_) {
    os << name << " = " << values_[id] << "\n";
  }
  return os.str();
}

}  // namespace pdht
