#include "core/pdht_node.h"

// PdhtNode is header-only today; this translation unit anchors the target
// and reserves a home for future out-of-line logic (e.g. per-node
// persistence hooks).
