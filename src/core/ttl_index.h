// Per-peer TTL-evicting index store (the heart of the selection algorithm,
// paper Section 5.1).
//
// "Each key has an expiration time keyTtl, which determines how long the
// key stays in the index.  The expiration time of a key is reset to a
// predefined value whenever the peer that stores the key receives a query
// for it.  Therefore, peers evict those keys from their local storage that
// have not been queried for keyTtl rounds."
//
// The store also enforces the scenario's per-peer capacity (stor = 100
// key-value pairs): when full, the entry closest to expiry is displaced
// (it is the one the TTL policy would give up on first).
//
// Memory layout: open-addressing hash table (linear probing, backward-
// shift deletion) plus a binary min-heap over expiry times, both stored
// in flat power-of-two blocks drawn from a SlabArena shared across the
// owning system's nodes (heap-allocated when standalone).  An empty index
// owns no storage at all -- at 1M peers only DHT members ever allocate --
// and a populated one is two contiguous slabs with zero per-entry
// allocator overhead, unlike the former unordered_map/priority_queue
// storage.  Lookups (Contains) are const and touch only the table, so
// concurrent readers are safe while no writer runs -- which is exactly
// the sharded round engine's phase discipline.
//
// Complexity: Put/Touch/Contains expected O(1) table work plus O(log n)
// heap maintenance; EvictExpired amortized O(k log n) for k evictions via
// the lazy min-heap (entries superseded by Touch/Put are skipped on pop;
// the heap is rebuilt from the table when stale entries dominate).
//
// EvictExpired and ForEachKey take their callbacks as template parameters
// (not std::function): the eviction actor runs them for every DHT member
// every round, and a std::function would be re-constructed -- potentially
// heap-allocating -- per call on that hot path.

#ifndef PDHT_CORE_TTL_INDEX_H_
#define PDHT_CORE_TTL_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/slab_arena.h"

namespace pdht::core {

class TtlIndex {
 public:
  /// `capacity` = 0 means unbounded (used by the indexAll strategy whose
  /// sizing guarantees fit by construction).  `arena`, when given, backs
  /// the index's storage and must outlive it.
  explicit TtlIndex(uint64_t capacity = 0, SlabArena* arena = nullptr);
  ~TtlIndex();

  TtlIndex(const TtlIndex&) = delete;
  TtlIndex& operator=(const TtlIndex&) = delete;
  TtlIndex(TtlIndex&& o) noexcept;
  TtlIndex& operator=(TtlIndex&& o) noexcept;

  /// Inserts or refreshes `key` with expiry `now + ttl`.  Returns the key
  /// displaced by the capacity bound, or kNoKey.  kNoKey itself is not a
  /// valid key (it is the table's empty-slot sentinel).
  static constexpr uint64_t kNoKey = UINT64_MAX;
  uint64_t Put(uint64_t key, double now, double ttl);

  /// True iff `key` is resident and unexpired at `now`.
  bool Contains(uint64_t key, double now) const;

  /// Resets `key`'s expiry to now + ttl if resident; returns whether it
  /// was.  This is the query-driven TTL refresh.
  bool Touch(uint64_t key, double now, double ttl);

  /// Removes `key` immediately; returns whether it was resident.
  bool Erase(uint64_t key);

  /// Evicts everything expired at `now`; calls `on_evict(key)` per
  /// eviction.  `on_evict` is any callable taking uint64_t.  Eviction
  /// order is (expiry, key)-sorted, so it is deterministic.  Never
  /// allocates, so shard-parallel eviction over disjoint indexes is safe.
  template <typename OnEvict>
  uint64_t EvictExpired(double now, OnEvict&& on_evict) {
    uint64_t evicted = 0;
    uint64_t key;
    while (PopExpiredOne(now, &key)) {
      ++evicted;
      on_evict(key);
    }
    return evicted;
  }

  uint64_t EvictExpired(double now) {
    return EvictExpired(now, [](uint64_t) {});
  }

  /// Visits every resident key (possibly including expired-but-not-yet-
  /// collected ones), in unspecified order.
  template <typename Visitor>
  void ForEachKey(Visitor&& visit) const {
    for (size_t i = 0; i < slot_cap_; ++i) {
      if (slots_[i].key != kNoKey) visit(slots_[i].key);
    }
  }

  /// Currently resident (possibly including expired-but-not-yet-collected)
  /// key count; call EvictExpired first for an exact live count.
  uint64_t size() const { return live_; }
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return live_ == 0; }

  /// Expiry time of `key` (kNever if absent).
  static constexpr double kNever = -1.0;
  double ExpiryOf(uint64_t key) const;

  /// All resident keys (test support; O(n)).
  std::vector<uint64_t> Keys() const;

 private:
  struct Slot {
    uint64_t key;  ///< kNoKey = empty
    double expires;
    uint64_t generation;
  };
  struct HeapEntry {
    double expires;
    uint64_t key;
    uint64_t generation;
  };

  size_t ProbeStart(uint64_t key) const;
  /// Index of `key`'s slot, or slot_cap_ when absent.
  size_t FindSlot(uint64_t key) const;
  void InsertSlot(uint64_t key, double expires, uint64_t generation);
  void EraseSlotAt(size_t i);  // backward-shift deletion
  void GrowTable();
  void HeapPush(double expires, uint64_t key, uint64_t generation);
  void HeapRebuild();  ///< drop stale entries by rebuilding from the table
  /// Pops the next live expired entry and erases it from the table;
  /// false when nothing (left) is expired at `now`.
  bool PopExpiredOne(double now, uint64_t* key);

  void* AllocBlock(size_t bytes);
  void FreeBlock(void* p, size_t bytes);
  void ReleaseStorage();

  SlabArena* arena_;  ///< not owned; null = standalone malloc storage
  uint64_t capacity_;
  uint64_t next_generation_ = 1;

  Slot* slots_ = nullptr;  ///< power-of-two open-addressing table
  size_t slot_cap_ = 0;
  size_t live_ = 0;

  HeapEntry* heap_ = nullptr;  ///< min-heap by (expires, key)
  size_t heap_size_ = 0;
  size_t heap_cap_ = 0;
};

}  // namespace pdht::core

#endif  // PDHT_CORE_TTL_INDEX_H_
