// Per-peer TTL-evicting index store (the heart of the selection algorithm,
// paper Section 5.1).
//
// "Each key has an expiration time keyTtl, which determines how long the
// key stays in the index.  The expiration time of a key is reset to a
// predefined value whenever the peer that stores the key receives a query
// for it.  Therefore, peers evict those keys from their local storage that
// have not been queried for keyTtl rounds."
//
// The store also enforces the scenario's per-peer capacity (stor = 100
// key-value pairs): when full, the entry closest to expiry is displaced
// (it is the one the TTL policy would give up on first).
//
// Complexity: Put/Touch/Contains O(log n); EvictExpired amortized
// O(k log n) for k evictions via a lazy min-heap over expiry times.
//
// EvictExpired and ForEachKey take their callbacks as template parameters
// (not std::function): the eviction actor runs them for every DHT member
// every round, and a std::function would be re-constructed -- potentially
// heap-allocating -- per call on that hot path.

#ifndef PDHT_CORE_TTL_INDEX_H_
#define PDHT_CORE_TTL_INDEX_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

namespace pdht::core {

class TtlIndex {
 public:
  /// `capacity` = 0 means unbounded (used by the indexAll strategy whose
  /// sizing guarantees fit by construction).
  explicit TtlIndex(uint64_t capacity = 0);

  /// Inserts or refreshes `key` with expiry `now + ttl`.  Returns the key
  /// displaced by the capacity bound, or kNoKey.
  static constexpr uint64_t kNoKey = UINT64_MAX;
  uint64_t Put(uint64_t key, double now, double ttl);

  /// True iff `key` is resident and unexpired at `now`.
  bool Contains(uint64_t key, double now) const;

  /// Resets `key`'s expiry to now + ttl if resident; returns whether it
  /// was.  This is the query-driven TTL refresh.
  bool Touch(uint64_t key, double now, double ttl);

  /// Removes `key` immediately; returns whether it was resident.
  bool Erase(uint64_t key);

  /// Evicts everything expired at `now`; calls `on_evict(key)` per
  /// eviction.  `on_evict` is any callable taking uint64_t.
  template <typename OnEvict>
  uint64_t EvictExpired(double now, OnEvict&& on_evict) {
    uint64_t evicted = 0;
    while (!heap_.empty() && heap_.top().expires <= now) {
      HeapEntry top = heap_.top();
      heap_.pop();
      auto it = map_.find(top.key);
      if (it == map_.end() || it->second.generation != top.generation) {
        continue;  // superseded by a Touch/Put or already erased
      }
      map_.erase(it);
      ++evicted;
      on_evict(top.key);
    }
    return evicted;
  }

  uint64_t EvictExpired(double now) {
    return EvictExpired(now, [](uint64_t) {});
  }

  /// Visits every resident key (possibly including expired-but-not-yet-
  /// collected ones), in unspecified order.
  template <typename Visitor>
  void ForEachKey(Visitor&& visit) const {
    for (const auto& [key, entry] : map_) {
      (void)entry;
      visit(key);
    }
  }

  /// Currently resident (possibly including expired-but-not-yet-collected)
  /// key count; call EvictExpired first for an exact live count.
  uint64_t size() const { return map_.size(); }
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return map_.empty(); }

  /// Expiry time of `key` (kNever if absent).
  static constexpr double kNever = -1.0;
  double ExpiryOf(uint64_t key) const;

  /// All resident keys (test support; O(n)).
  std::vector<uint64_t> Keys() const;

 private:
  struct HeapEntry {
    double expires;
    uint64_t key;
    uint64_t generation;
    bool operator>(const HeapEntry& o) const {
      if (expires != o.expires) return expires > o.expires;
      return key > o.key;
    }
  };
  struct MapEntry {
    double expires;
    uint64_t generation;
  };

  void Compact();

  uint64_t capacity_;
  uint64_t next_generation_ = 1;
  std::unordered_map<uint64_t, MapEntry> map_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace pdht::core

#endif  // PDHT_CORE_TTL_INDEX_H_
