// Indexing strategies.
//
// The paper compares three regimes (Section 4) plus the realized selection
// algorithm (Section 5); all four run on identical substrates in the
// simulator so cost differences are attributable to the policy alone
// (design decision #3 in DESIGN.md):
//
//  * kIndexAll     -- every key proactively indexed; queries go to the DHT
//                     only (Eq. 11).
//  * kNoIndex      -- no DHT at all; every query broadcast-searches the
//                     unstructured network (Eq. 12).
//  * kPartialIdeal -- oracle partial indexing: the top-maxRank keys (from
//                     the analytical fixed point) are indexed, and every
//                     peer magically knows whether a key is indexed
//                     (Eq. 13's lower bound).
//  * kPartialTtl   -- the decentralized selection algorithm: search the
//                     index first, broadcast on miss, insert the result
//                     with a TTL; unqueried keys time out (Eq. 17).

#ifndef PDHT_CORE_STRATEGY_H_
#define PDHT_CORE_STRATEGY_H_

#include <cstdint>
#include <string>

namespace pdht::core {

enum class Strategy : uint8_t {
  kIndexAll,
  kNoIndex,
  kPartialIdeal,
  kPartialTtl,
};

const char* StrategyName(Strategy s);

/// Parses "indexAll" / "noIndex" / "partialIdeal" / "partialTtl"
/// (case-insensitive); returns false on unknown input.
bool ParseStrategy(const std::string& name, Strategy* out);

/// Which structured overlay implementation backs the index.  Concrete
/// construction goes through the overlay factory registry
/// (overlay/structured_overlay.h); adding a value here plus a registered
/// factory is all a new backend needs.
enum class DhtBackend : uint8_t {
  kChord,
  kPGrid,
  kCan,
  kKademlia,
};

const char* DhtBackendName(DhtBackend b);

/// Parses "chord" / "pgrid" / "can" / "kademlia" (case-insensitive);
/// returns false on unknown input.
bool ParseDhtBackend(const std::string& name, DhtBackend* out);

}  // namespace pdht::core

#endif  // PDHT_CORE_STRATEGY_H_
