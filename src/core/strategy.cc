#include "core/strategy.h"

#include <algorithm>
#include <cctype>

namespace pdht::core {

namespace {
std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}
}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kIndexAll:
      return "indexAll";
    case Strategy::kNoIndex:
      return "noIndex";
    case Strategy::kPartialIdeal:
      return "partialIdeal";
    case Strategy::kPartialTtl:
      return "partialTtl";
  }
  return "?";
}

bool ParseStrategy(const std::string& name, Strategy* out) {
  std::string n = Lower(name);
  if (n == "indexall") {
    *out = Strategy::kIndexAll;
  } else if (n == "noindex") {
    *out = Strategy::kNoIndex;
  } else if (n == "partialideal") {
    *out = Strategy::kPartialIdeal;
  } else if (n == "partialttl") {
    *out = Strategy::kPartialTtl;
  } else {
    return false;
  }
  return true;
}

const char* DhtBackendName(DhtBackend b) {
  switch (b) {
    case DhtBackend::kChord:
      return "chord";
    case DhtBackend::kPGrid:
      return "pgrid";
    case DhtBackend::kCan:
      return "can";
    case DhtBackend::kKademlia:
      return "kademlia";
  }
  return "?";
}

bool ParseDhtBackend(const std::string& name, DhtBackend* out) {
  std::string n = Lower(name);
  if (n == "chord") {
    *out = DhtBackend::kChord;
  } else if (n == "pgrid" || n == "p-grid") {
    *out = DhtBackend::kPGrid;
  } else if (n == "can") {
    *out = DhtBackend::kCan;
  } else if (n == "kademlia" || n == "kad") {
    *out = DhtBackend::kKademlia;
  } else {
    return false;
  }
  return true;
}

}  // namespace pdht::core
