#include "core/ttl_autotuner.h"

#include <algorithm>
#include <cassert>

namespace pdht::core {

KeyTtlAutotuner::KeyTtlAutotuner(const AutotunerConfig& config)
    : config_(config) {
  assert(config.alpha > 0.0 && config.alpha <= 1.0);
  assert(config.min_ttl > 0.0);
  assert(config.max_ttl >= config.min_ttl);
}

void KeyTtlAutotuner::Ewma(double* est, double sample, double alpha,
                           bool* seeded) {
  if (!*seeded) {
    *est = sample;
    *seeded = true;
  } else {
    *est += alpha * (sample - *est);
  }
}

void KeyTtlAutotuner::ObserveUnstructuredSearch(double messages) {
  if (messages < 0.0) return;
  Ewma(&c_s_unstr_hat_, messages, config_.alpha, &unstr_seeded_);
}

void KeyTtlAutotuner::ObserveIndexSearch(double messages) {
  if (messages < 0.0) return;
  Ewma(&c_s_indx_hat_, messages, config_.alpha, &indx_seeded_);
}

void KeyTtlAutotuner::ObserveMaintenanceRound(double probe_messages,
                                              double indexed_keys) {
  if (indexed_keys <= 0.0 || probe_messages < 0.0) return;
  Ewma(&c_rtn_hat_, probe_messages / indexed_keys, config_.alpha,
       &rtn_seeded_);
}

bool KeyTtlAutotuner::HasEnoughData() const {
  return unstr_seeded_ && indx_seeded_ && rtn_seeded_ && c_rtn_hat_ > 0.0;
}

double KeyTtlAutotuner::EstimatedFMin() const {
  if (!HasEnoughData()) return 0.0;
  double margin = c_s_unstr_hat_ - c_s_indx_hat_;
  if (margin <= 0.0) {
    // The index search is not observed to be cheaper: indexing never
    // amortizes, so demand an (effectively) infinite query frequency.
    return 1.0 / config_.min_ttl;
  }
  return c_rtn_hat_ / margin;
}

double KeyTtlAutotuner::RecommendedTtl() const {
  if (!HasEnoughData()) return config_.initial_ttl;
  double f_min = EstimatedFMin();
  double ttl = f_min > 0.0 ? 1.0 / f_min : config_.max_ttl;
  return std::clamp(ttl, config_.min_ttl, config_.max_ttl);
}

}  // namespace pdht::core
