// Whole-system PDHT simulation harness.
//
// Wires every substrate together: churned peers on a Gnutella-like random
// graph with randomly replicated content (articles), a structured overlay
// (any registered StructuredOverlay backend -- Chord, P-Grid, CAN,
// Kademlia, ...) over the active-peer subset, probe-based routing
// maintenance, a replica layer for index entries, a Zipf query workload,
// and one of the four indexing strategies (strategy.h).  Message costs are
// accounted on the shared Network so per-category rates can be compared
// against the analytical model (bench_sim_validation) and the adaptivity
// behaviour of Section 5.2 can be reproduced (bench_sim_adaptivity).
//
// Replica-subnetwork traffic note: per-key replica groups in the *index*
// are costed statistically as round(repl * dup2) messages per flood/push
// (Network::CountOnly), because materializing 40,000 replica-subnetwork
// graphs is pointless when Eq. 9/16 only need their aggregate cost; the
// per-message gossip implementation (overlay/replica) is exercised and
// validated separately by its unit tests and bench_ablation_costs.  All
// other traffic (walks, floods, DHT hops, probes) is counted per actual
// message.

#ifndef PDHT_CORE_PDHT_SYSTEM_H_
#define PDHT_CORE_PDHT_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pdht_node.h"
#include "core/strategy.h"
#include "core/ttl_autotuner.h"
#include "metadata/trace.h"
#include "metadata/workload.h"
#include "model/cost_model.h"
#include "model/scenario_params.h"
#include "net/delivery_model.h"
#include "net/network.h"
#include "stats/histogram.h"
#include "overlay/structured_overlay.h"
#include "overlay/unstructured/flooding.h"
#include "overlay/unstructured/random_graph.h"
#include "overlay/unstructured/random_walk.h"
#include "overlay/unstructured/replication.h"
#include "sim/churn.h"
#include "sim/round_engine.h"
#include "sim/scenario.h"
#include "sim/shard_pool.h"

namespace pdht::core {

struct SystemConfig {
  model::ScenarioParams params;     ///< scenario (Table 1) parameters.
  Strategy strategy = Strategy::kPartialTtl;
  DhtBackend backend = DhtBackend::kChord;

  /// keyTtl in rounds; 0 derives the paper's choice 1/fMin (times
  /// ttl_scale) from the analytical model.
  double key_ttl = 0.0;
  double ttl_scale = 1.0;

  /// Self-tune keyTtl online from observed traffic instead of using the
  /// static value above (the paper's Section 5.1.1 future-work mechanism,
  /// see core/ttl_autotuner.h).  Only meaningful for kPartialTtl.
  bool autotune_ttl = false;
  AutotunerConfig autotuner;

  /// Unstructured overlay average degree ("a few open connections").
  double overlay_degree = 6.0;
  overlay::RandomWalkConfig walk;  ///< max_steps_per_walker 0 = auto-size.

  sim::ChurnConfig churn;
  uint64_t seed = 42;

  /// Optional recorded query trace.  When set, each round replays the
  /// trace entries whose round matches the current round instead of
  /// sampling the Zipf workload (identical query sequences across
  /// strategies/backends).  Not owned; must outlive the system.
  const metadata::QueryTrace* trace = nullptr;

  /// Number of DHT member peers; 0 derives numActivePeers from the model
  /// for the chosen strategy.
  uint32_t dht_member_target = 0;

  /// Kademlia's k: redundant contacts per k-bucket.  Larger buckets give
  /// more routing redundancy under churn but linearly more maintenance
  /// probes (Eq. 8 charges env per routing entry) -- the bucket-size
  /// sweep in bench_ablation_backends quantifies that trade-off.  Other
  /// backends ignore it.
  uint32_t kademlia_bucket_size = 8;

  /// Kademlia's alpha: bounded lookup parallelism -- the routing driver
  /// probes up to alpha closer contacts per hop round, advancing to the
  /// best online one (deterministic tie-breaks by candidate order).
  /// 1 (the default) is the sequential walk, bit-identical to the
  /// pre-driver era; larger values trade extra lookup messages for
  /// fewer serialized timeout stalls.  Other backends ignore it.
  uint32_t kademlia_alpha = 1;

  /// Message-delivery model (net/delivery_model.h).  kImmediate is the
  /// seed's synchronous semantics (and costs the hot loop nothing);
  /// kLatency assigns every peer a deterministic synthetic coordinate,
  /// defers deliveries through the event queue and opens the latency
  /// measurement axis (lookup RTT quantiles in Snapshot().latency).
  /// The delivery seam itself never changes message counts; to hold the
  /// count series bit-identical to an immediate run, also set
  /// proximity_routing = false (PNS deliberately builds different
  /// routing tables, which changes who talks to whom).
  net::DeliveryModelKind delivery_model = net::DeliveryModelKind::kImmediate;
  /// Seed of the synthetic coordinate space; 0 derives one from `seed`,
  /// so default runs stay reproducible while sweeps can pin the topology
  /// across cells (same coordinates, different workload randomness).
  uint64_t latency_seed = 0;
  /// Link-delay knobs of the kLatency model (ignored by kImmediate).
  net::LatencyConfig latency;
  /// Let overlays consult the delivery model's RTT oracle for
  /// proximity-aware neighbor selection (StructuredOverlay::SetPeerRtt;
  /// Kademlia implements it).  Only meaningful with kLatency; turn off
  /// for an RTT-blind baseline under the same delay model.
  bool proximity_routing = true;
  /// Route-time PNS on top of table-build PNS: the routing driver
  /// prefers the lowest-RTT candidate among equal-progress next hops at
  /// every hop of every backend (overlay::RoutingPolicy::proximity).
  /// Effective only when proximity_routing is also on (it is the same
  /// PNS idea, applied at lookup time) and the delivery model is
  /// non-immediate; off = probe in the backend's blind order.
  bool route_proximity = true;
  /// Timeout-aware failed-probe costing: each failed probe round charges
  /// the delivery model's ProbeTimeoutSeconds (latency.timeout_ms) into
  /// the latency accounting instead of being free.  Message counts are
  /// unchanged -- this prices the *waiting*, not the wire.  Only
  /// meaningful with kLatency.
  bool timeout_costing = false;
  /// Adaptive per-peer RTO (net/rtt_estimator.h): timeout costing charges
  /// a Jacobson-estimated per-link detection timeout -- seeded from the
  /// RTT oracle, updated from observed link delays, clamped to
  /// [latency.rto_min_ms, latency.rto_max_ms or timeout_ms] -- instead of
  /// the fixed latency.timeout_ms.  Effective only with timeout_costing
  /// and proximity_routing (the oracle seeds the estimator) under
  /// kLatency; otherwise nothing is installed and behaviour is
  /// bit-identical to the fixed timeout.
  bool adaptive_rto = false;
  /// Latency-aware replica failover (overlay::RoutingPolicy::
  /// replica_route): terminal hops route to the cheapest live replica of
  /// the key's group and fail over past dead ones instead of failing the
  /// lookup; failovers surface as "net.failover" / lookup.failover.n.
  /// Only meaningful with kLatency (deferred delivery).
  bool replica_route = false;
  /// Correlated-failure scenario script (sim/scenario.h).  kClusterOutage
  /// requires kLatency with transit_stub topology (the cluster is a
  /// transit-stub domain).
  sim::ScenarioConfig scenario;

  /// Worker threads for the parallel phases of the round loop (queries,
  /// eviction).  sim_threads <= 1 with sim_shards == 0 runs the legacy
  /// serial engine, bit-identical to the seed era.  Any other setting
  /// enables the *sharded* engine, whose results are bit-identical across
  /// every (sim_threads, sim_shards) combination -- parallelism changes
  /// wall-clock only -- but form a different (equally valid) random
  /// stream than the serial engine's: query effects publish at a phase
  /// barrier instead of interleaving, and each query draws from its own
  /// derived Rng.  See docs/architecture.md, "Sharded round engine".
  uint32_t sim_threads = 1;
  /// Peer shards for the shard-partitioned phases (eviction).  Shard
  /// assignment is a pure function of peer id and shard count, so
  /// results never depend on which thread runs a shard; they do not
  /// depend on the shard count either (shard merges commute).  0 = auto
  /// (4 * sim_threads when the sharded engine is enabled).
  uint32_t sim_shards = 0;

  /// Automatic engine selection: ignore sim_threads and choose serial vs
  /// sharded from the configuration's expected per-round work, sizing
  /// the worker pool from the host when the sharded engine wins.  The
  /// serial/sharded decision is a pure function of the config -- the two
  /// engines are distinct random streams, so a machine-dependent choice
  /// would break reproducibility -- while the thread count itself may be
  /// hardware-derived because sharded results are bit-identical at any
  /// thread count.  Small scenarios therefore never pay the pool's
  /// barrier overhead; big ones scale without per-scenario tuning.
  bool sim_threads_auto = false;

  /// Record per-phase wall-clock series round.phase.{churn,maint,plan,
  /// query,publish,update,evict,drain}.ms (sim/round_engine.h; "drain"
  /// is the round-boundary event drain, timed by the engine itself).
  /// Off by default: the values are timing noise, so enabling this
  /// forfeits run-to-run bit-identity of the recorded series (the
  /// determinism and golden suites run with it off).
  bool phase_timing = false;

  /// Determinism-audit knob: publish commutative slices in a deliberately
  /// perturbed order -- lane counter deltas merge last-to-first and the
  /// parallel per-origin stats pass visits shards in reversed index
  /// order.  Every perturbed operation commutes by construction, so all
  /// results must be bit-identical to the default order; the sharded
  /// determinism suite asserts exactly that.  Never affects the serial
  /// engine.
  bool debug_shuffle_publish = false;

  /// Returns an empty string when the configuration is self-consistent.
  std::string Validate() const;
};

/// End-of-run measurement snapshot: every recorded series reduced to its
/// tail mean, plus the scalar state experiments report.  This is the
/// unit of data the experiment runner (exp/) aggregates across seeds;
/// keeping it a plain value lets cells ship results across threads.
struct RunSnapshot {
  /// Series name -> TailMean(tail) for every series the engine recorded
  /// (msg.rate.*, hit.rate, index.size, online.fraction, ...).
  std::map<std::string, double> series_tail;
  uint64_t index_keys = 0;       ///< IndexedKeyCount() at snapshot time.
  double effective_key_ttl = 0;  ///< EffectiveKeyTtl() at snapshot time.
  uint32_t dht_members = 0;      ///< DhtMemberCount().
  /// Latency metrics, present only under a non-immediate delivery model
  /// (empty maps keep immediate-mode snapshots byte-identical to the
  /// pre-latency era).  Keys are the PdhtSystem::kMetricLookup* names:
  /// lookup RTT mean/p50/p95/p99 (ms), sample count, mean link delay and
  /// the routing stretch (mean lookup RTT / mean direct origin->terminus
  /// RTT).
  std::map<std::string, double> latency;
};

/// Outcome of a single query, for tests and fine-grained experiments.
struct QueryOutcome {
  bool found = false;              ///< the value was located somewhere.
  bool answered_from_index = false;
  bool used_unstructured = false;
  uint64_t index_messages = 0;     ///< DHT + replica traffic this query.
  uint64_t unstructured_messages = 0;
  net::PeerId origin = net::kInvalidPeer;
};

class PdhtSystem {
 public:
  explicit PdhtSystem(const SystemConfig& config);
  ~PdhtSystem();

  PdhtSystem(const PdhtSystem&) = delete;
  PdhtSystem& operator=(const PdhtSystem&) = delete;

  /// Advances the simulation by `n` rounds (1 round = 1 s).
  void RunRounds(uint64_t n);

  /// Executes one query for `key` from a random online origin immediately
  /// (outside the round loop); used by tests.
  QueryOutcome ExecuteQuery(uint64_t key);

  /// Workload control for adaptivity experiments.
  void ShiftPopularity();
  void RotatePopularity(uint64_t offset);

  // --- Introspection ---------------------------------------------------

  const SystemConfig& config() const { return config_; }
  sim::RoundEngine& engine() { return engine_; }
  const sim::RoundEngine& engine() const { return engine_; }
  net::Network& network() { return *network_; }

  /// The installed delivery model (never null; ImmediateDelivery when
  /// config().delivery_model == kImmediate).
  const net::DeliveryModel& delivery_model() const { return *delivery_; }

  /// Per-lookup end-to-end RTT samples (ms): entry forward + routing
  /// hops + response, bracketed over Network::total_latency_s().  Only
  /// populated under a non-immediate delivery model.
  const Histogram& lookup_rtt_ms() const { return lookup_rtt_ms_; }

  /// Routing hops per bracketed lookup (same population rules).
  const Histogram& lookup_hops() const { return lookup_hops_; }

  /// Distinct keys currently resident in >= 1 index shard.
  uint64_t IndexedKeyCount() const;

  /// The keyTtl actually in force this instant: the static (config or
  /// model-derived) value, or the autotuner's current recommendation.
  double EffectiveKeyTtl() const;

  /// The online estimator (valid regardless of autotune_ttl; it always
  /// observes, it only *drives* the TTL when the flag is set).
  const KeyTtlAutotuner& autotuner() const { return autotuner_; }

  /// Oracle index size used by kPartialIdeal (the model's maxRank).
  uint64_t OracleMaxRank() const { return oracle_max_rank_; }

  /// DHT membership actually provisioned.
  uint32_t DhtMemberCount() const;

  /// The structured overlay backing the index; nullptr when the strategy
  /// runs without a DHT (kNoIndex).
  const overlay::StructuredOverlay* dht_overlay() const {
    return overlay_.get();
  }

  /// Measures the run so far into a plain value (see RunSnapshot).
  RunSnapshot Snapshot(size_t tail) const;

  /// Mean total messages per round over the last `tail` rounds.
  double TailMessageRate(size_t tail) const;

  /// Mean index hit rate over the last `tail` rounds.
  double TailHitRate(size_t tail) const;

  metadata::QueryWorkload& workload() { return *workload_; }

  PdhtNode& NodeOf(net::PeerId peer) { return nodes_[peer]; }

  /// Standard series names recorded every round.
  static constexpr const char* kSeriesMsgTotal = "msg.rate.total";
  static constexpr const char* kSeriesMsgDht = "msg.rate.dht";
  static constexpr const char* kSeriesMsgUnstructured =
      "msg.rate.unstructured";
  static constexpr const char* kSeriesMsgReplica = "msg.rate.replica";
  static constexpr const char* kSeriesMsgMaint = "msg.rate.maint";
  static constexpr const char* kSeriesHitRate = "hit.rate";
  static constexpr const char* kSeriesIndexSize = "index.size";
  static constexpr const char* kSeriesOnlineFraction = "online.fraction";
  /// Deferred deliveries per round; recorded only under a non-immediate
  /// delivery model (immediate runs keep the seed-era series set).
  static constexpr const char* kSeriesDeferredRate = "net.rate.deferred";
  /// Probe timeouts charged per round; recorded only when
  /// timeout_costing is active (so existing latency runs keep their
  /// series set).
  static constexpr const char* kSeriesTimeoutRate = "net.rate.timeout";

  /// RunSnapshot::latency keys (and exp:: metric names once RunCell
  /// merges them): per-lookup RTT distribution in milliseconds, sample
  /// count, mean per-message link delay, and routing stretch.
  static constexpr const char* kMetricLookupRttMean = "lookup.rtt.mean";
  static constexpr const char* kMetricLookupRttP50 = "lookup.rtt.p50";
  static constexpr const char* kMetricLookupRttP95 = "lookup.rtt.p95";
  static constexpr const char* kMetricLookupRttP99 = "lookup.rtt.p99";
  static constexpr const char* kMetricLookupRttCount = "lookup.rtt.n";
  static constexpr const char* kMetricLinkDelayMean = "link.delay.mean";
  static constexpr const char* kMetricLookupStretch = "lookup.stretch";
  /// Per-lookup routing-hop breakdown (driver-level instrumentation) and
  /// total probe timeouts charged, same latency-only presence rules.
  static constexpr const char* kMetricLookupHopsMean = "lookup.hops.mean";
  static constexpr const char* kMetricLookupHopsP95 = "lookup.hops.p95";
  static constexpr const char* kMetricLookupTimeouts = "lookup.timeout.n";
  /// Total replica failovers (present only when replica_route is on).
  static constexpr const char* kMetricLookupFailovers = "lookup.failover.n";
  /// Per-hop RTT histogram means, keyed by hop index: the metric
  /// "lookup.hop.rtt.mean.<k>" is emitted for every hop bucket k that
  /// collected samples (needs the driver's RTT oracle -- route_proximity
  /// or replica_route).
  static constexpr const char* kMetricLookupHopRttPrefix =
      "lookup.hop.rtt.mean.";
  /// Replica failovers per round; recorded only when replica_route is on.
  static constexpr const char* kSeriesFailoverRate = "net.rate.failover";

  /// Per-hop-index RTT samples (hop k of every bracketed lookup), for
  /// tests; Snapshot() surfaces the means.
  const Histogram& lookup_hop_rtt_ms(size_t k) const {
    return hop_rtt_ms_[k];
  }

  /// The installed adaptive-RTO estimator; null unless adaptive_rto is
  /// effective (see SystemConfig::adaptive_rto).
  const net::PeerRtoEstimator* rto_estimator() const { return rto_.get(); }

 private:
  void DeriveSettings();
  void BuildSubstrates();
  void SelectDhtMembers();
  void PreloadIndex();
  void RegisterActors();

  // Query path pieces.  The pieces shared between the serial and sharded
  // engines take an explicit Rng so a parallel query task can route its
  // randomness through its own derived stream (serial callers pass rng_).
  QueryOutcome RunIndexFirstQuery(net::PeerId origin, uint64_t key,
                                  bool ttl_semantics);
  QueryOutcome RunUnstructuredQuery(net::PeerId origin, uint64_t key);
  overlay::LookupResult DhtLookup(net::PeerId origin, uint64_t key);
  /// The key's index replica group, written into a reused scratch buffer
  /// (valid until the next IndexReplicasOf call; callers iterate it
  /// immediately).  Keeps the per-insert/per-flood replica walk
  /// allocation-free.
  const std::vector<net::PeerId>& IndexReplicasOf(uint64_t key) const {
    return IndexReplicasInto(key, &replica_scratch_);
  }
  /// Same, into a caller-chosen buffer (parallel tasks use per-worker
  /// scratch so they never share replica_scratch_).
  const std::vector<net::PeerId>& IndexReplicasInto(
      uint64_t key, std::vector<net::PeerId>* out) const;
  void InsertIntoIndex(uint64_t key, double now, double ttl);
  uint64_t StatisticalReplicaFloodCost(Rng& rng);
  net::PeerId RandomOnlinePeer();
  net::PeerId DhtEntryPoint(Rng& rng, net::PeerId origin);
  void OnChurnFlip(net::PeerId peer, bool online);
  static void ChurnTrampoline(void* ctx, uint32_t peer, bool online,
                              double when);
  /// Applies the scenario script's forced-outage/heal transitions due at
  /// `round` (serial, before the round's churn flips drain).
  void ApplyScenarioTransitions(uint64_t round);
  void RunChurnActor(sim::RoundContext& ctx);
  void RunMaintenanceActor(sim::RoundContext& ctx);
  void RunQueryActor(sim::RoundContext& ctx);
  void RunUpdateActor(sim::RoundContext& ctx);
  void RunEvictionActor(sim::RoundContext& ctx);
  void IncResidency(uint64_t key);
  void DecResidency(uint64_t key);

  // --- Sharded round engine (see docs/architecture.md) ------------------

  /// One planned query of the round: everything the serial planning pass
  /// decided (from the main Rng/workload streams) before the parallel
  /// phase starts, so the task body is a pure function of (task, round
  /// snapshot, derived task Rng).
  struct QueryTask {
    uint64_t key = 0;
    net::PeerId origin = net::kInvalidPeer;
    bool index_first = false;    ///< strategy dispatch, decided at planning
    bool ttl_semantics = false;  ///< kPartialTtl touch/insert semantics
  };

  /// Buffered effects of one parallel query task, applied serially in
  /// global task order by PublishQueryResults -- the order-sensitive
  /// complement of the order-free counter-delta merge.
  struct QueryTaskResult {
    uint32_t lane = 0;       ///< worker lane the task recorded into
    uint32_t def_begin = 0;  ///< slice of lanes_[lane].deferred
    uint32_t def_end = 0;
    bool found = false;
    bool answered_from_index = false;
    bool has_touch = false;   ///< hit under TTL semantics: Touch at publish
    bool has_insert = false;  ///< miss-then-found: replica Puts at publish
    bool has_rtt = false;     ///< bracketed RTT samples below are valid
    net::PeerId touch_holder = net::kInvalidPeer;
    double index_obs = -1.0;  ///< ObserveIndexSearch arg; < 0 = none
    double unstructured_obs = -1.0;
    double rtt_ms = 0.0;
    double direct_ms = 0.0;
    double hops = 0.0;
    uint32_t hop_rtt_n = 0;  ///< per-hop RTT trace (replayed at publish)
    float hop_rtt_ms[overlay::LookupResult::kMaxHopRtt] = {};
  };

  /// Lane-local effect slice of one parallel task: which worker lane it
  /// recorded into and its half-open slice of that lane's deferred log,
  /// replayed serially in global task order at publish.
  struct PhaseSlice {
    uint32_t lane = 0;
    uint32_t def_begin = 0;
    uint32_t def_end = 0;
  };

  /// Buffered effects of one parallel proactive-update task.  The rank
  /// draw happens at planning (main stream); the task runs entry-point
  /// selection + lookup + statistical flood costing; publish replays the
  /// deferred slice and applies the replica Puts in task order.
  struct UpdateTaskResult {
    PhaseSlice slice;
    bool inserted = false;  ///< entry point found: replica Puts at publish
  };

  void SetupShardedEngine();
  void RunShardedQueryActor(sim::RoundContext& ctx);
  void PlanQueryTasks(sim::RoundContext& ctx);
  /// Strategy dispatch for one planned query (pure function of config +
  /// the workload permutation; safe from parallel planning passes).
  QueryTask MakeQueryTask(uint64_t key, net::PeerId origin) const;
  void AppendQueryTask(uint64_t key);
  void RunQueryTask(uint32_t worker, uint32_t task_index);
  /// Merges every lane's counter delta into the shared registry (order-
  /// free integer adds; debug_shuffle_publish reverses the lane order to
  /// prove it).  Shared by the query/maintenance/update publish steps and
  /// the partitioned boundary drain.
  void MergeLaneCounters();
  void PublishQueryResults();
  void ShardIndexFirstQuery(Rng& rng, uint32_t worker, net::PeerId origin,
                            uint64_t key, bool ttl_semantics,
                            QueryTaskResult* r);
  void ShardUnstructuredQuery(Rng& rng, uint32_t worker, net::PeerId origin,
                              uint64_t key, QueryTaskResult* r);
  void RunShardedMaintenance(sim::RoundContext& ctx);
  void RunShardedUpdateActor(sim::RoundContext& ctx, uint64_t indexed_keys);

  SystemConfig config_;
  // Derived settings.
  double key_ttl_ = 0.0;
  uint64_t oracle_max_rank_ = 0;
  uint32_t dht_member_target_ = 0;

  Rng rng_;
  sim::RoundEngine engine_;
  std::unique_ptr<net::Network> network_;
  /// The delivery model backing network_ (never null).  Latency models
  /// are pure hash functions of (latency_seed, peer ids): installing one
  /// consumes no Rng stream, so immediate-mode runs are bit-identical to
  /// the pre-delivery-model era.
  std::unique_ptr<net::DeliveryModel> delivery_;
  std::unique_ptr<sim::ChurnModel> churn_;
  std::unique_ptr<overlay::RandomGraph> graph_;
  std::unique_ptr<overlay::ReplicaPlacement> content_;
  std::unique_ptr<overlay::RandomWalkSearch> walk_;
  /// The one structured overlay backing the index (null iff the strategy
  /// runs without a DHT); every backend dispatch goes through it.
  std::unique_ptr<overlay::StructuredOverlay> overlay_;
  std::unique_ptr<metadata::QueryWorkload> workload_;
  /// Backing store for every node's TtlIndex; declared before nodes_ so
  /// it outlives them.
  SlabArena index_arena_;
  std::vector<PdhtNode> nodes_;
  std::vector<net::PeerId> dht_members_;
  std::unordered_map<uint64_t, uint32_t> residency_;  // key -> #shards
  mutable std::vector<net::PeerId> replica_scratch_;  // IndexReplicasOf buf

  /// Interned id of "msg.maint.probe" for the per-round autotuner delta.
  CounterId probe_counter_id_ = 0;

  /// Route-time PNS active (proximity_routing && route_proximity under a
  /// non-immediate delivery model): the routing driver reorders
  /// equal-progress candidates by RTT and DhtEntryPoint picks the
  /// cheapest origin->entry link among a sample.
  bool route_pns_ = false;

  // Per-round query accounting for the hit-rate metric.
  uint64_t round_queries_ = 0;
  uint64_t round_hits_ = 0;
  double update_carry_ = 0.0;  // fractional proactive updates per round

  KeyTtlAutotuner autotuner_;
  uint64_t last_probe_count_ = 0;  // for per-round maintenance deltas

  /// Lookup-latency accounting (deferred delivery only): the measured
  /// serialized RTT of each index lookup, and the direct origin->terminus
  /// RTT of the same lookup -- their mean ratio is the routing stretch.
  Histogram lookup_rtt_ms_;
  Histogram lookup_direct_ms_;
  /// Routing hops per bracketed lookup (driver walk length), same
  /// deferred-delivery-only population rules.
  Histogram lookup_hops_;
  /// Per-hop-index RTT samples: hop_rtt_ms_[k] collects the oracle RTT
  /// of hop k's link across bracketed lookups (mean-only; populated only
  /// when the routing policy has an RTT oracle).
  std::array<Histogram, overlay::LookupResult::kMaxHopRtt> hop_rtt_ms_;

  /// Adaptive per-peer RTO estimator (config_.adaptive_rto): consulted by
  /// the latency model's ProbeTimeoutSeconds, fed by the network's
  /// deferred-delivery observer.  Null = fixed timeout_ms.
  std::unique_ptr<net::PeerRtoEstimator> rto_;

  /// Correlated-failure scenario state: the scripted cluster's peers and
  /// whether the outage window is currently in force.
  std::vector<net::PeerId> outage_peers_;
  bool outage_active_ = false;

  // Sharded-engine state (empty/unused when the legacy serial engine is
  // active).  Lanes, walk searchers and replica scratch are per *worker*
  // (disjoint while a phase runs); shard member lists and eviction
  // buffers are per *shard* (each shard claimed by exactly one task).
  bool sharded_ = false;
  uint32_t num_shards_ = 0;
  uint64_t round_seed_ = 0;  ///< Mix64(HashCombine(seed, round))
  std::unique_ptr<sim::ShardPool> pool_;
  std::vector<net::ShardLane> lanes_;
  std::vector<std::unique_ptr<overlay::RandomWalkSearch>> walk_slots_;
  mutable std::vector<std::vector<net::PeerId>> replica_slots_;
  std::vector<std::vector<net::PeerId>> shard_members_;
  std::vector<std::vector<uint64_t>> evict_buffers_;
  std::vector<QueryTask> query_tasks_;
  std::vector<QueryTaskResult> query_results_;
  /// Counting-sort planner scratch (PlanQueryTasks): per-online-peer
  /// query counts, per-chunk task-offset bases (exclusive prefix sums of
  /// chunk totals), and per-shard partial tallies of the parallel
  /// publish's per-origin stats pass.
  std::vector<uint32_t> plan_counts_;
  std::vector<uint64_t> plan_chunk_bases_;
  std::vector<uint64_t> publish_queries_;
  std::vector<uint64_t> publish_hits_;
  /// Sharded-maintenance / sharded-update round state (resized per
  /// round, reused across rounds).
  std::vector<PhaseSlice> maint_slices_;
  std::vector<uint64_t> update_tasks_;  // planned update keys, in draw order
  std::vector<UpdateTaskResult> update_results_;
  /// Churn-phase rejoin deferral: while the sharded churn actor drains
  /// flip events, OnChurnFlip queues member rejoins here instead of
  /// rebuilding inline; the actor dedupes and rebuilds them in parallel.
  bool defer_rejoins_ = false;
  std::vector<net::PeerId> rejoin_queue_;

  /// Phase indices for EnablePhaseTiming/AddPhaseMs; must match the name
  /// list RegisterActors passes to EnablePhaseTiming.
  enum SimPhase : size_t {
    kPhaseChurn = 0,
    kPhaseMaint,
    kPhasePlan,
    kPhaseQuery,
    kPhasePublish,
    kPhaseUpdate,
    kPhaseEvict,
    kPhaseDrain,  ///< timed by RoundEngine itself (runs after the actors)
    kNumPhases,
  };
};

}  // namespace pdht::core

#endif  // PDHT_CORE_PDHT_SYSTEM_H_
