// Self-tuning keyTtl estimation (paper Section 5.1.1, future work).
//
// "It is important that peers insert keys into the index with the right
// expiration time (keyTtl).  The value of keyTtl can be calculated by
// estimating cSUnstr, cSIndx, and cIndKey. ... A mechanism to self-tune
// keyTtl based on the query distribution and frequency is part of future
// work."
//
// This module implements that mechanism from locally observable traffic
// only -- no global knowledge:
//   * cSUnstr_hat  -- EWMA of observed broadcast-search message costs;
//   * cSIndx_hat   -- EWMA of observed index-search message costs
//                     (routing + replica flood, i.e. cSIndx2 semantics);
//   * cRtn_hat     -- maintenance probes per round divided by the
//                     (estimated) number of indexed keys;
// and sets keyTtl = 1 / fMin_hat = (cSUnstr_hat - cSIndx_hat) / cRtn_hat
// (the reciprocal of Eq. 2), clamped to a configurable band.
//
// Section 5.1.1 says a +-50% estimation error barely hurts; the property
// tests assert the estimator converges well inside that band under a
// stationary workload and re-converges after a load change.

#ifndef PDHT_CORE_TTL_AUTOTUNER_H_
#define PDHT_CORE_TTL_AUTOTUNER_H_

#include <cstdint>

namespace pdht::core {

struct AutotunerConfig {
  /// EWMA smoothing factor per observation in (0, 1]; higher = faster.
  double alpha = 0.05;
  /// keyTtl clamp band [min_ttl, max_ttl] in rounds.
  double min_ttl = 1.0;
  double max_ttl = 1e6;
  /// Initial keyTtl until both cost estimates have observations.
  double initial_ttl = 100.0;
};

class KeyTtlAutotuner {
 public:
  explicit KeyTtlAutotuner(const AutotunerConfig& config = {});

  /// Feed one observed broadcast-search cost (messages).
  void ObserveUnstructuredSearch(double messages);

  /// Feed one observed index-search cost (messages, cSIndx2 semantics:
  /// routing hops + replica flood).
  void ObserveIndexSearch(double messages);

  /// Feed one round's maintenance traffic and the current index size
  /// (keys).  Ignored while the index is empty.
  void ObserveMaintenanceRound(double probe_messages, double indexed_keys);

  /// Current keyTtl recommendation [rounds].
  double RecommendedTtl() const;

  /// Current fMin estimate [1/round]; 0 while insufficient data.
  double EstimatedFMin() const;

  // Raw estimates (test/diagnostic access).
  double c_s_unstr_hat() const { return c_s_unstr_hat_; }
  double c_s_indx_hat() const { return c_s_indx_hat_; }
  double c_rtn_hat() const { return c_rtn_hat_; }
  bool HasEnoughData() const;

 private:
  static void Ewma(double* est, double sample, double alpha, bool* seeded);

  AutotunerConfig config_;
  double c_s_unstr_hat_ = 0.0;
  double c_s_indx_hat_ = 0.0;
  double c_rtn_hat_ = 0.0;
  bool unstr_seeded_ = false;
  bool indx_seeded_ = false;
  bool rtn_seeded_ = false;
};

}  // namespace pdht::core

#endif  // PDHT_CORE_TTL_AUTOTUNER_H_
