#include "core/pdht_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "model/selection_model.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pdht::core {

std::string SystemConfig::Validate() const {
  std::string err = params.Validate();
  if (!err.empty()) return err;
  if (strategy != Strategy::kNoIndex &&
      !overlay::IsRegisteredBackend(backend)) {
    return "no overlay factory registered for backend '" +
           std::string(DhtBackendName(backend)) + "'";
  }
  if (ttl_scale <= 0.0) return "ttl_scale must be positive";
  if (key_ttl < 0.0) return "key_ttl must be non-negative";
  if (overlay_degree < 2.0) return "overlay_degree must be >= 2";
  if (walk.num_walkers == 0) return "walk.num_walkers must be >= 1";
  if (kademlia_bucket_size == 0) return "kademlia_bucket_size must be >= 1";
  if (kademlia_alpha == 0) return "kademlia_alpha must be >= 1";
  if (delivery_model == net::DeliveryModelKind::kLatency) {
    std::string lat_err = latency.Validate();
    if (!lat_err.empty()) return lat_err;
  }
  return "";
}

PdhtSystem::PdhtSystem(const SystemConfig& config)
    : config_(config), rng_(config.seed), engine_(1.0),
      autotuner_(config.autotuner) {
  assert(config_.Validate().empty());
  // One sample per query: unbounded at paper scale, so cap retention
  // (moments exact, surfaced quantiles become estimates over a 256k
  // systematic subsample -- far past the precision any p99 needs).
  lookup_rtt_ms_.SetSampleCap(1 << 18);
  lookup_direct_ms_.SetSampleCap(1 << 18);
  lookup_hops_.SetSampleCap(1 << 18);
  DeriveSettings();
  BuildSubstrates();
  SelectDhtMembers();
  PreloadIndex();
  RegisterActors();
}

PdhtSystem::~PdhtSystem() = default;

void PdhtSystem::DeriveSettings() {
  const auto& p = config_.params;
  model::CostModel cost(p);
  oracle_max_rank_ = cost.SolveMaxRank(p.f_qry);

  if (config_.key_ttl > 0.0) {
    key_ttl_ = config_.key_ttl * config_.ttl_scale;
  } else {
    model::SelectionModel sel(p);
    key_ttl_ = sel.IdealKeyTtl(p.f_qry) * config_.ttl_scale;
  }

  if (config_.dht_member_target > 0) {
    dht_member_target_ = config_.dht_member_target;
  } else {
    switch (config_.strategy) {
      case Strategy::kNoIndex:
        dht_member_target_ = 0;
        break;
      case Strategy::kIndexAll:
        dht_member_target_ =
            static_cast<uint32_t>(cost.NumActivePeers(p.keys));
        break;
      case Strategy::kPartialIdeal:
        dht_member_target_ = static_cast<uint32_t>(
            cost.NumActivePeers(std::max<uint64_t>(oracle_max_rank_, 1)));
        break;
      case Strategy::kPartialTtl: {
        model::SelectionModel sel(p);
        double expected = sel.ExpectedKeysInIndex(p.f_qry, key_ttl_);
        uint64_t whole =
            static_cast<uint64_t>(std::ceil(std::max(expected, 1.0)));
        dht_member_target_ =
            static_cast<uint32_t>(cost.NumActivePeers(whole));
        break;
      }
    }
  }
  // A functioning ring needs a handful of members.
  if (config_.strategy != Strategy::kNoIndex) {
    dht_member_target_ = std::max<uint32_t>(dht_member_target_, 4);
    dht_member_target_ = std::min<uint32_t>(
        dht_member_target_, static_cast<uint32_t>(p.num_peers));
  }

  if (config_.walk.max_steps_per_walker == 0) {
    // Budget ~8x the expected steps-to-hit, split across walkers.
    uint64_t expected_total =
        8 * p.num_peers / std::max<uint64_t>(1, p.repl);
    config_.walk.max_steps_per_walker = static_cast<uint32_t>(
        std::max<uint64_t>(64, expected_total / config_.walk.num_walkers));
  }
}

void PdhtSystem::BuildSubstrates() {
  const auto& p = config_.params;
  network_ = std::make_unique<net::Network>(&engine_.counters());
  if (config_.delivery_model == net::DeliveryModelKind::kLatency) {
    // Hash-derived topology seed: latency_seed pins the coordinate space
    // across sweep cells; 0 ties it to the run seed.  No Rng fork -- the
    // model is a pure hash function, so the main stream (and with it
    // every immediate-mode golden series) is untouched.
    const uint64_t topo_seed =
        config_.latency_seed != 0
            ? config_.latency_seed
            : Mix64(HashCombine(config_.seed, 0x64656c6179ULL));  // "delay"
    delivery_ = std::make_unique<net::LatencyDelivery>(config_.latency,
                                                       topo_seed);
  } else {
    delivery_ = std::make_unique<net::ImmediateDelivery>();
  }
  network_->SetDeliveryModel(delivery_.get(), &engine_.events());
  nodes_.resize(p.num_peers);
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    nodes_[i] = PdhtNode(i, p.stor);
    network_->SetOnline(i, true);
  }

  Rng churn_rng = rng_.Fork();
  churn_ = std::make_unique<sim::ChurnModel>(
      static_cast<uint32_t>(p.num_peers), config_.churn, churn_rng);
  churn_->AddObserver(&PdhtSystem::ChurnTrampoline, this);
  // Align network state with the churn model's initial draw.
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    network_->SetOnline(i, churn_->IsOnline(i));
  }

  Rng graph_rng = rng_.Fork();
  graph_ = std::make_unique<overlay::RandomGraph>(
      static_cast<uint32_t>(p.num_peers), config_.overlay_degree,
      &graph_rng);

  content_ = std::make_unique<overlay::ReplicaPlacement>(
      static_cast<uint32_t>(p.num_peers), static_cast<uint32_t>(p.repl),
      rng_.Fork());
  content_->PlaceKeys(p.keys);

  auto oracle = [this](net::PeerId peer, uint64_t key) {
    return content_->PeerHoldsKey(peer, key);
  };
  walk_ = std::make_unique<overlay::RandomWalkSearch>(
      graph_.get(), network_.get(), oracle, config_.walk, rng_.Fork());

  workload_ = std::make_unique<metadata::QueryWorkload>(
      p.keys, p.alpha, rng_.Fork());
}

void PdhtSystem::SelectDhtMembers() {
  const auto& p = config_.params;
  dht_members_.clear();
  if (config_.strategy == Strategy::kNoIndex || dht_member_target_ == 0) {
    return;
  }
  // Random member sample without replacement.
  std::vector<net::PeerId> all(p.num_peers);
  for (uint32_t i = 0; i < p.num_peers; ++i) all[i] = i;
  rng_.Shuffle(all.data(), all.size());
  dht_members_.assign(all.begin(), all.begin() + dht_member_target_);
  for (net::PeerId m : dht_members_) nodes_[m].set_dht_member(true);

  overlay::OverlayParams op;
  op.repl = p.repl;
  op.num_peers = p.num_peers;
  op.kademlia_bucket_size = config_.kademlia_bucket_size;
  op.kademlia_alpha = config_.kademlia_alpha;
  overlay_ = overlay::MakeOverlay(config_.backend, network_.get(), op,
                                  rng_.Fork());
  // Validate() already vetted the backend; exactly one overlay is live
  // from here on.
  assert(overlay_ != nullptr);
  const bool deferred = network_->deferred_delivery();
  const net::DeliveryModel* model = delivery_.get();
  if (config_.proximity_routing && deferred) {
    // Hand the overlay the delivery model's RTT oracle *before* the
    // routing tables are built so proximity-aware backends (Kademlia)
    // can prefer cheap links among equivalent candidates.
    overlay_->SetPeerRtt([model](net::PeerId a, net::PeerId b) {
      return model->RttMs(a, b);
    });
  }
  // Lookup-time policies of the shared routing driver.  Blind defaults
  // (both off) keep every walk bit-identical to the monolithic era.
  overlay::RoutingPolicy rp;
  rp.proximity =
      config_.proximity_routing && config_.route_proximity && deferred;
  route_pns_ = rp.proximity;
  rp.timeout_costing = config_.timeout_costing && deferred;
  if (rp.proximity) {
    rp.rtt = [model](net::PeerId a, net::PeerId b) {
      return model->RttMs(a, b);
    };
  }
  overlay_->SetRoutingPolicy(std::move(rp));
  overlay_->SetMembers(dht_members_);
}

const std::vector<net::PeerId>& PdhtSystem::IndexReplicasOf(
    uint64_t key) const {
  // "Index and content are replicated with the same factor" (Section 4);
  // replica-group composition is the backend's business (hash-spread by
  // default, structural leaf groups for P-Grid).
  replica_scratch_.clear();
  if (overlay_) {
    overlay_->ResponsiblePeersInto(
        key,
        static_cast<uint32_t>(std::min<uint64_t>(
            config_.params.repl, std::numeric_limits<uint32_t>::max())),
        &replica_scratch_);
  }
  return replica_scratch_;
}

void PdhtSystem::IncResidency(uint64_t key) { ++residency_[key]; }

void PdhtSystem::DecResidency(uint64_t key) {
  auto it = residency_.find(key);
  if (it == residency_.end()) return;
  if (--it->second == 0) residency_.erase(it);
}

void PdhtSystem::PreloadIndex() {
  const auto& p = config_.params;
  uint64_t preload = 0;
  switch (config_.strategy) {
    case Strategy::kIndexAll:
      preload = p.keys;
      break;
    case Strategy::kPartialIdeal:
      preload = oracle_max_rank_;
      break;
    default:
      return;  // TTL strategy starts empty; noIndex has no index.
  }
  constexpr double kForever = 1e15;
  for (uint64_t r = 1; r <= preload; ++r) {
    uint64_t key = config_.strategy == Strategy::kIndexAll
                       ? r - 1
                       : workload_->KeyAtRank(r);
    for (net::PeerId rep : IndexReplicasOf(key)) {
      uint64_t displaced = nodes_[rep].index().Put(key, 0.0, kForever);
      if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
      IncResidency(key);
    }
  }
}

void PdhtSystem::RegisterActors() {
  engine_.AddActor("churn", [this](sim::RoundContext& ctx) {
    churn_->AdvanceTo(ctx.time);
  });
  // Network's constructor interned every message-type counter; resolve
  // the probe counter to its id once instead of a string lookup per round.
  probe_counter_id_ =
      network_->CounterIdOf(net::MessageType::kRoutingProbe);
  engine_.AddActor("maintenance", [this](sim::RoundContext&) {
    if (config_.strategy == Strategy::kNoIndex || !overlay_) return;
    overlay_->RunMaintenanceRound(config_.params.env);
    // Feed the TTL autotuner the round's maintenance traffic: probes per
    // round per currently indexed key approximate cRtn (Eq. 8).
    uint64_t probes = engine_.counters().Value(probe_counter_id_);
    uint64_t delta = probes - last_probe_count_;
    last_probe_count_ = probes;
    autotuner_.ObserveMaintenanceRound(
        static_cast<double>(delta), static_cast<double>(residency_.size()));
  });
  engine_.AddActor("queries", [this](sim::RoundContext& ctx) {
    RunQueryActor(ctx);
  });
  engine_.AddActor("updates", [this](sim::RoundContext& ctx) {
    RunUpdateActor(ctx);
  });
  engine_.AddActor("eviction", [this](sim::RoundContext& ctx) {
    RunEvictionActor(ctx);
  });

  engine_.AddCounterRateMetric(kSeriesMsgTotal, "msg.total");
  engine_.AddCounterRateMetric(kSeriesMsgDht, "msg.dht.");
  engine_.AddCounterRateMetric(kSeriesMsgUnstructured, "msg.unstructured.");
  engine_.AddCounterRateMetric(kSeriesMsgReplica, "msg.replica.");
  engine_.AddCounterRateMetric(kSeriesMsgMaint, "msg.maint.");
  if (network_->deferred_delivery()) {
    // In-flight observability for latency runs only: immediate-mode runs
    // keep the seed-era series set (snapshots stay byte-identical).
    engine_.AddCounterRateMetric(kSeriesDeferredRate,
                                 "net.delivery.deferred");
    if (config_.timeout_costing) {
      // Per-round probe-timeout counts; registered only when timeout
      // costing is on so existing latency runs keep their series set.
      engine_.AddCounterRateMetric(kSeriesTimeoutRate,
                                   network_->timeout_counter_id());
    }
  }
  engine_.AddMetric(kSeriesHitRate, [this](const sim::RoundContext&) {
    return round_queries_ == 0
               ? 0.0
               : static_cast<double>(round_hits_) /
                     static_cast<double>(round_queries_);
  });
  engine_.AddMetric(kSeriesIndexSize, [this](const sim::RoundContext&) {
    return static_cast<double>(residency_.size());
  });
  engine_.AddMetric(kSeriesOnlineFraction,
                    [this](const sim::RoundContext&) {
                      return churn_->OnlineFraction();
                    });
}

void PdhtSystem::RunRounds(uint64_t n) { engine_.Run(n); }

net::PeerId PdhtSystem::RandomOnlinePeer() {
  const auto& p = config_.params;
  uint32_t online = network_->online_count();
  if (online == 0) return net::kInvalidPeer;
  // At least the historical 128 draws (identical rng behaviour whenever
  // availability is sane); under heavy churn scale the budget with the
  // expected draws-per-hit (num_peers / online) so the biased lowest-id
  // linear fallback stays a last resort instead of the common path.
  uint64_t tries = std::max<uint64_t>(
      128, std::min<uint64_t>(2048, 8 * p.num_peers / online));
  for (uint64_t attempt = 0; attempt < tries; ++attempt) {
    net::PeerId cand =
        static_cast<net::PeerId>(rng_.UniformU64(p.num_peers));
    if (network_->IsOnline(cand)) return cand;
  }
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    if (network_->IsOnline(i)) return i;
  }
  return net::kInvalidPeer;
}

net::PeerId PdhtSystem::DhtEntryPoint(net::PeerId origin) {
  if (origin != net::kInvalidPeer && nodes_[origin].is_dht_member() &&
      network_->IsOnline(origin)) {
    return origin;
  }
  net::PeerId entry =
      overlay_ ? overlay_->RandomOnlineMember(rng_) : net::kInvalidPeer;
  if (route_pns_ && entry != net::kInvalidPeer &&
      origin != net::kInvalidPeer) {
    // Proximity entry selection (route-time PNS, hop 0): any online
    // member is an equal-progress entry into the DHT -- the key is
    // equidistant from a random member either way -- so take the
    // cheapest origin->entry link among a small sample.  This leg is a
    // full random link under blind routing (~a third of the mean lookup
    // RTT at the 1/14 scenario), making it the single largest
    // latency-aware routing win.
    double best = delivery_->RttMs(origin, entry);
    for (int i = 1; i < 8; ++i) {
      net::PeerId cand = overlay_->RandomOnlineMember(rng_);
      if (cand == net::kInvalidPeer) break;
      if (cand == entry) continue;
      const double rtt = delivery_->RttMs(origin, cand);
      if (rtt < best) {
        best = rtt;
        entry = cand;
      }
    }
  }
  if (entry != net::kInvalidPeer && origin != net::kInvalidPeer) {
    // Forwarding the query from the non-member origin into the DHT is one
    // message ("it is sufficient to know at least one online peer that is
    // participating in the DHT", Section 3.2).
    net::Message m;
    m.type = net::MessageType::kDhtLookup;
    m.from = origin;
    m.to = entry;
    network_->Send(m);
  }
  return entry;
}

overlay::LookupResult PdhtSystem::DhtLookup(net::PeerId origin,
                                            uint64_t key) {
  assert(overlay_ != nullptr);
  return overlay_->Lookup(origin, key);
}

uint64_t PdhtSystem::StatisticalReplicaFloodCost() {
  // Flooding the replica subnetwork costs ~ repl * dup2 messages (Eq. 16);
  // the fractional part is realized probabilistically so the expectation
  // is exact.
  double cost = static_cast<double>(config_.params.repl) *
                config_.params.dup2;
  uint64_t whole = static_cast<uint64_t>(cost);
  double frac = cost - static_cast<double>(whole);
  return whole + (rng_.Bernoulli(frac) ? 1 : 0);
}

void PdhtSystem::InsertIntoIndex(uint64_t key, double now, double ttl) {
  // Route the insert to the responsible region (cSIndx) ...
  net::PeerId entry = DhtEntryPoint(net::kInvalidPeer);
  if (entry == net::kInvalidPeer) return;
  overlay::LookupResult route = DhtLookup(entry, key);
  (void)route;
  // ... then flood the replica subnetwork with the new value (repl * dup2).
  network_->CountOnly(net::MessageType::kReplicaPush,
                      StatisticalReplicaFloodCost());
  for (net::PeerId rep : IndexReplicasOf(key)) {
    if (!network_->IsOnline(rep)) continue;  // offline replicas pull later
    uint64_t displaced = nodes_[rep].index().Put(key, now, ttl);
    if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
    IncResidency(key);
  }
}

QueryOutcome PdhtSystem::RunUnstructuredQuery(net::PeerId origin,
                                              uint64_t key) {
  QueryOutcome out;
  out.origin = origin;
  out.used_unstructured = true;
  overlay::WalkResult wr = walk_->Search(origin, key);
  out.found = wr.found;
  out.unstructured_messages = wr.messages;
  if (wr.found) {
    autotuner_.ObserveUnstructuredSearch(
        static_cast<double>(wr.messages));
  }
  return out;
}

QueryOutcome PdhtSystem::RunIndexFirstQuery(net::PeerId origin, uint64_t key,
                                            bool ttl_semantics) {
  QueryOutcome out;
  out.origin = origin;
  const double now = engine_.now();
  uint64_t before = network_->TotalMessages();
  // Lookup-RTT bracket: the index phase's messages are sequential hops,
  // so its serialized latency is the delta of the network's running
  // link-delay sum (0 under immediate delivery).
  const double lat_before = network_->total_latency_s();

  net::PeerId entry = DhtEntryPoint(origin);
  if (entry == net::kInvalidPeer) {
    // DHT unreachable (everything offline): degrade to broadcast.
    QueryOutcome fallback = RunUnstructuredQuery(origin, key);
    fallback.index_messages = network_->TotalMessages() - before -
                              fallback.unstructured_messages;
    return fallback;
  }

  overlay::LookupResult route = DhtLookup(entry, key);
  if (network_->deferred_delivery() &&
      route.terminus != net::kInvalidPeer) {
    // Paired samples: measured serialized RTT of this lookup vs the
    // direct origin->terminus round trip -- their mean ratio is the
    // routing stretch bench_latency reports.  Timeout costing folds
    // failed-probe waits into the same latency sum, so the RTT bracket
    // prices them automatically.
    lookup_rtt_ms_.Add((network_->total_latency_s() - lat_before) * 1e3);
    lookup_direct_ms_.Add(delivery_->RttMs(origin, route.terminus));
    lookup_hops_.Add(static_cast<double>(route.hops));
  }
  net::PeerId holder = net::kInvalidPeer;
  if (route.success && route.terminus != net::kInvalidPeer &&
      nodes_[route.terminus].index().Contains(key, now)) {
    holder = route.terminus;
  }
  if (holder == net::kInvalidPeer) {
    // Terminus cannot answer: flood the replica subnetwork (Section 5.1;
    // purging leaves replicas unsynchronized, so siblings may still hold
    // the key).
    network_->CountOnly(net::MessageType::kReplicaFlood,
                        StatisticalReplicaFloodCost());
    for (net::PeerId rep : IndexReplicasOf(key)) {
      if (!network_->IsOnline(rep)) continue;
      if (nodes_[rep].index().Contains(key, now)) {
        holder = rep;
        break;
      }
    }
  }

  if (holder != net::kInvalidPeer) {
    if (ttl_semantics) {
      nodes_[holder].index().Touch(key, now, EffectiveKeyTtl());
    }
    out.found = true;
    out.answered_from_index = true;
    out.index_messages = network_->TotalMessages() - before;
    autotuner_.ObserveIndexSearch(
        static_cast<double>(out.index_messages));
    return out;
  }

  out.index_messages = network_->TotalMessages() - before;
  autotuner_.ObserveIndexSearch(static_cast<double>(out.index_messages));
  // Miss: broadcast search, then (TTL algorithm only) insert the result.
  QueryOutcome walk_out = RunUnstructuredQuery(origin, key);
  out.used_unstructured = true;
  out.found = walk_out.found;
  out.unstructured_messages = walk_out.unstructured_messages;
  if (ttl_semantics && out.found) {
    uint64_t before_insert = network_->TotalMessages();
    InsertIntoIndex(key, now, EffectiveKeyTtl());
    out.index_messages += network_->TotalMessages() - before_insert;
  }
  return out;
}

QueryOutcome PdhtSystem::ExecuteQuery(uint64_t key) {
  net::PeerId origin = RandomOnlinePeer();
  QueryOutcome out;
  if (origin == net::kInvalidPeer) return out;

  switch (config_.strategy) {
    case Strategy::kNoIndex:
      out = RunUnstructuredQuery(origin, key);
      break;
    case Strategy::kIndexAll:
      out = RunIndexFirstQuery(origin, key, /*ttl_semantics=*/false);
      break;
    case Strategy::kPartialIdeal: {
      // Oracle: every peer knows whether the key is worth indexing.
      bool indexed = workload_->RankOf(key) <= oracle_max_rank_;
      out = indexed ? RunIndexFirstQuery(origin, key, false)
                    : RunUnstructuredQuery(origin, key);
      break;
    }
    case Strategy::kPartialTtl:
      out = RunIndexFirstQuery(origin, key, /*ttl_semantics=*/true);
      break;
  }
  nodes_[origin].RecordQuery(out.answered_from_index);
  return out;
}

void PdhtSystem::RunQueryActor(sim::RoundContext& ctx) {
  const auto& p = config_.params;
  round_queries_ = 0;
  round_hits_ = 0;
  if (config_.trace != nullptr) {
    // Trace replay: every entry tagged with this round, verbatim.
    auto [begin, end] = config_.trace->RoundRange(ctx.round);
    for (size_t i = begin; i < end; ++i) {
      uint64_t key = config_.trace->entries()[i].key;
      if (key >= p.keys) continue;  // foreign trace entries are skipped
      QueryOutcome out = ExecuteQuery(key);
      ++round_queries_;
      if (out.answered_from_index) ++round_hits_;
    }
    return;
  }
  uint64_t count = workload_->SampleQueryCount(p.num_peers, p.f_qry);
  for (uint64_t q = 0; q < count; ++q) {
    uint64_t key = workload_->SampleKey();
    QueryOutcome out = ExecuteQuery(key);
    ++round_queries_;
    if (out.answered_from_index) ++round_hits_;
  }
}

void PdhtSystem::RunUpdateActor(sim::RoundContext&) {
  // Proactive updates exist only while the index is proactively maintained
  // (Section 5.1 removes cUpd: the TTL algorithm refreshes values on
  // miss-triggered re-insertion).
  if (config_.strategy != Strategy::kIndexAll &&
      config_.strategy != Strategy::kPartialIdeal) {
    return;
  }
  const auto& p = config_.params;
  uint64_t indexed_keys = config_.strategy == Strategy::kIndexAll
                              ? p.keys
                              : oracle_max_rank_;
  if (indexed_keys == 0) return;
  update_carry_ += static_cast<double>(indexed_keys) * p.f_upd;
  constexpr double kForever = 1e15;
  while (update_carry_ >= 1.0) {
    update_carry_ -= 1.0;
    uint64_t rank = 1 + rng_.UniformU64(indexed_keys);
    uint64_t key = config_.strategy == Strategy::kIndexAll
                       ? rank - 1
                       : workload_->KeyAtRank(rank);
    // Insert at one responsible peer (cSIndx) + gossip to replicas
    // (repl * dup2): exactly Eq. 9's per-update cost.
    net::PeerId entry = DhtEntryPoint(net::kInvalidPeer);
    if (entry == net::kInvalidPeer) continue;
    DhtLookup(entry, key);
    network_->CountOnly(net::MessageType::kReplicaPush,
                        StatisticalReplicaFloodCost());
    for (net::PeerId rep : IndexReplicasOf(key)) {
      if (!network_->IsOnline(rep)) continue;
      uint64_t displaced =
          nodes_[rep].index().Put(key, engine_.now(), kForever);
      if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
      IncResidency(key);
    }
  }
}

void PdhtSystem::RunEvictionActor(sim::RoundContext& ctx) {
  if (config_.strategy != Strategy::kPartialTtl) return;
  for (net::PeerId m : dht_members_) {
    nodes_[m].index().EvictExpired(
        ctx.time, [this](uint64_t key) { DecResidency(key); });
  }
}

void PdhtSystem::OnChurnFlip(net::PeerId peer, bool online) {
  network_->SetOnline(peer, online);
  if (!online) return;
  if (!nodes_[peer].is_dht_member()) return;
  // Rejoin: refresh routing state (piggybacked, free) and pull missed
  // replica updates (one pull + one response).
  if (overlay_) overlay_->OnPeerRejoin(peer);
  network_->CountOnly(net::MessageType::kReplicaPull, 2);
}

void PdhtSystem::ChurnTrampoline(void* ctx, uint32_t peer, bool online,
                                 double /*when*/) {
  static_cast<PdhtSystem*>(ctx)->OnChurnFlip(peer, online);
}

void PdhtSystem::ShiftPopularity() { workload_->ShufflePopularity(); }

void PdhtSystem::RotatePopularity(uint64_t offset) {
  workload_->RotatePopularity(offset);
}

double PdhtSystem::EffectiveKeyTtl() const {
  if (config_.autotune_ttl && autotuner_.HasEnoughData()) {
    return autotuner_.RecommendedTtl();
  }
  return key_ttl_;
}

uint64_t PdhtSystem::IndexedKeyCount() const { return residency_.size(); }

uint32_t PdhtSystem::DhtMemberCount() const {
  return static_cast<uint32_t>(dht_members_.size());
}

double PdhtSystem::TailMessageRate(size_t tail) const {
  return engine_.Series(kSeriesMsgTotal).TailMean(tail);
}

double PdhtSystem::TailHitRate(size_t tail) const {
  return engine_.Series(kSeriesHitRate).TailMean(tail);
}

RunSnapshot PdhtSystem::Snapshot(size_t tail) const {
  RunSnapshot snap;
  for (const std::string& name : engine_.SeriesNames()) {
    snap.series_tail[name] = engine_.Series(name).TailMean(tail);
  }
  snap.index_keys = IndexedKeyCount();
  snap.effective_key_ttl = EffectiveKeyTtl();
  snap.dht_members = DhtMemberCount();
  if (network_->deferred_delivery()) {
    snap.latency[kMetricLookupRttMean] = lookup_rtt_ms_.mean();
    snap.latency[kMetricLookupRttP50] = lookup_rtt_ms_.Quantile(0.5);
    snap.latency[kMetricLookupRttP95] = lookup_rtt_ms_.Quantile(0.95);
    snap.latency[kMetricLookupRttP99] = lookup_rtt_ms_.Quantile(0.99);
    snap.latency[kMetricLookupRttCount] =
        static_cast<double>(lookup_rtt_ms_.count());
    const uint64_t deferred = network_->DeferredCount();
    snap.latency[kMetricLinkDelayMean] =
        deferred == 0 ? 0.0
                      : network_->total_latency_s() * 1e3 /
                            static_cast<double>(deferred);
    snap.latency[kMetricLookupStretch] =
        lookup_direct_ms_.mean() > 0.0
            ? lookup_rtt_ms_.mean() / lookup_direct_ms_.mean()
            : 0.0;
    snap.latency[kMetricLookupHopsMean] = lookup_hops_.mean();
    snap.latency[kMetricLookupHopsP95] = lookup_hops_.Quantile(0.95);
    snap.latency[kMetricLookupTimeouts] =
        static_cast<double>(network_->TimeoutCount());
  }
  return snap;
}

}  // namespace pdht::core
