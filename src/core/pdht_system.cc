#include "core/pdht_system.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "model/selection_model.h"
#include "net/rtt_estimator.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pdht::core {

namespace {

/// Phase wall-clock scope for the opt-in round.phase.* series: measures
/// into RoundEngine::AddPhaseMs when phase timing is enabled, costs two
/// branches when it is not (the common case).
class ScopedPhaseMs {
 public:
  ScopedPhaseMs(sim::RoundEngine* engine, size_t phase)
      : engine_(engine->phase_timing() ? engine : nullptr), phase_(phase) {
    if (engine_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhaseMs() {
    if (engine_) {
      engine_->AddPhaseMs(phase_,
                          std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }
  ScopedPhaseMs(const ScopedPhaseMs&) = delete;
  ScopedPhaseMs& operator=(const ScopedPhaseMs&) = delete;

 private:
  sim::RoundEngine* engine_;
  size_t phase_;
  std::chrono::steady_clock::time_point start_;
};

/// sim_threads_auto work floor: below this expected per-round work (every
/// peer is swept by churn/eviction, plus one task per expected query) the
/// sharded engine's pool wake/barrier overhead outweighs the parallelism,
/// so auto picks the serial engine.  Compared against a pure function of
/// the configuration -- never the machine -- so the engine choice (and
/// with it the random stream) is reproducible across hosts.
constexpr double kAutoShardedWorkFloor = 16384.0;

}  // namespace

std::string SystemConfig::Validate() const {
  std::string err = params.Validate();
  if (!err.empty()) return err;
  if (strategy != Strategy::kNoIndex &&
      !overlay::IsRegisteredBackend(backend)) {
    return "no overlay factory registered for backend '" +
           std::string(DhtBackendName(backend)) + "'";
  }
  if (ttl_scale <= 0.0) return "ttl_scale must be positive";
  if (key_ttl < 0.0) return "key_ttl must be non-negative";
  if (overlay_degree < 2.0) return "overlay_degree must be >= 2";
  if (walk.num_walkers == 0) return "walk.num_walkers must be >= 1";
  if (kademlia_bucket_size == 0) return "kademlia_bucket_size must be >= 1";
  if (kademlia_alpha == 0) return "kademlia_alpha must be >= 1";
  if (delivery_model == net::DeliveryModelKind::kLatency) {
    std::string lat_err = latency.Validate();
    if (!lat_err.empty()) return lat_err;
  }
  std::string sc_err = scenario.Validate();
  if (!sc_err.empty()) return sc_err;
  if (scenario.kind == sim::ScenarioKind::kClusterOutage &&
      (delivery_model != net::DeliveryModelKind::kLatency ||
       latency.topology != net::LatencyTopology::kTransitStub)) {
    return "scenario cluster_outage requires the latency delivery model "
           "with transit_stub topology (the cluster is a stub domain)";
  }
  if (sim_threads > 256) return "sim_threads must be <= 256";
  if (sim_shards > (1u << 20)) return "sim_shards must be <= 2^20";
  return "";
}

PdhtSystem::PdhtSystem(const SystemConfig& config)
    : config_(config), rng_(config.seed), engine_(1.0),
      autotuner_(config.autotuner) {
  assert(config_.Validate().empty());
  // One sample per query: unbounded at paper scale, so retain nothing --
  // P² sketches track exactly the probabilities Snapshot() surfaces in
  // O(1) memory (moments stay exact), which is what keeps per-lookup
  // latency accounting flat at the 100k-1M peer scenarios.
  lookup_rtt_ms_.TrackStreamingQuantiles({0.5, 0.95, 0.99});
  lookup_direct_ms_.TrackStreamingQuantiles({});  // mean-only (stretch)
  lookup_hops_.TrackStreamingQuantiles({0.95});
  for (Histogram& h : hop_rtt_ms_) {
    h.TrackStreamingQuantiles({});  // mean-only, O(1) memory per hop bucket
  }
  DeriveSettings();
  BuildSubstrates();
  SelectDhtMembers();
  PreloadIndex();
  RegisterActors();
  SetupShardedEngine();
}

PdhtSystem::~PdhtSystem() = default;

void PdhtSystem::DeriveSettings() {
  const auto& p = config_.params;
  model::CostModel cost(p);
  oracle_max_rank_ = cost.SolveMaxRank(p.f_qry);

  if (config_.key_ttl > 0.0) {
    key_ttl_ = config_.key_ttl * config_.ttl_scale;
  } else {
    model::SelectionModel sel(p);
    key_ttl_ = sel.IdealKeyTtl(p.f_qry) * config_.ttl_scale;
  }

  if (config_.dht_member_target > 0) {
    dht_member_target_ = config_.dht_member_target;
  } else {
    switch (config_.strategy) {
      case Strategy::kNoIndex:
        dht_member_target_ = 0;
        break;
      case Strategy::kIndexAll:
        dht_member_target_ =
            static_cast<uint32_t>(cost.NumActivePeers(p.keys));
        break;
      case Strategy::kPartialIdeal:
        dht_member_target_ = static_cast<uint32_t>(
            cost.NumActivePeers(std::max<uint64_t>(oracle_max_rank_, 1)));
        break;
      case Strategy::kPartialTtl: {
        model::SelectionModel sel(p);
        double expected = sel.ExpectedKeysInIndex(p.f_qry, key_ttl_);
        uint64_t whole =
            static_cast<uint64_t>(std::ceil(std::max(expected, 1.0)));
        dht_member_target_ =
            static_cast<uint32_t>(cost.NumActivePeers(whole));
        break;
      }
    }
  }
  // A functioning ring needs a handful of members.
  if (config_.strategy != Strategy::kNoIndex) {
    dht_member_target_ = std::max<uint32_t>(dht_member_target_, 4);
    dht_member_target_ = std::min<uint32_t>(
        dht_member_target_, static_cast<uint32_t>(p.num_peers));
  }

  if (config_.walk.max_steps_per_walker == 0) {
    // Budget ~8x the expected steps-to-hit, split across walkers.
    uint64_t expected_total =
        8 * p.num_peers / std::max<uint64_t>(1, p.repl);
    config_.walk.max_steps_per_walker = static_cast<uint32_t>(
        std::max<uint64_t>(64, expected_total / config_.walk.num_walkers));
  }
}

void PdhtSystem::BuildSubstrates() {
  const auto& p = config_.params;
  network_ = std::make_unique<net::Network>(&engine_.counters());
  if (config_.delivery_model == net::DeliveryModelKind::kLatency) {
    // Hash-derived topology seed: latency_seed pins the coordinate space
    // across sweep cells; 0 ties it to the run seed.  No Rng fork -- the
    // model is a pure hash function, so the main stream (and with it
    // every immediate-mode golden series) is untouched.
    const uint64_t topo_seed =
        config_.latency_seed != 0
            ? config_.latency_seed
            : Mix64(HashCombine(config_.seed, 0x64656c6179ULL));  // "delay"
    delivery_ = std::make_unique<net::LatencyDelivery>(config_.latency,
                                                       topo_seed);
  } else {
    delivery_ = std::make_unique<net::ImmediateDelivery>();
  }
  network_->SetDeliveryModel(delivery_.get(), &engine_.events());
  if (config_.adaptive_rto && config_.timeout_costing &&
      config_.proximity_routing &&
      config_.delivery_model == net::DeliveryModelKind::kLatency) {
    // Adaptive per-peer RTO: the latency model consults the estimator in
    // ProbeTimeoutSeconds, the network feeds it observed link delays.
    // Gated on proximity_routing because the RTT oracle seeds unsampled
    // destinations; with any leg of the condition off, nothing is
    // installed and timeout costing stays the fixed timeout_ms, bit for
    // bit.  Construction consumes no Rng stream.
    auto* lat = static_cast<net::LatencyDelivery*>(delivery_.get());
    net::RtoConfig rc;
    rc.min_ms = config_.latency.rto_min_ms;
    rc.max_ms = config_.latency.rto_max_ms > 0.0
                    ? config_.latency.rto_max_ms
                    : config_.latency.timeout_ms;
    rc.fallback_ms = config_.latency.timeout_ms;
    rto_ = std::make_unique<net::PeerRtoEstimator>(
        rc, [lat](net::PeerId a, net::PeerId b) { return lat->RttMs(a, b); });
    lat->SetRtoEstimator(rto_.get());
    network_->SetRttObserver(rto_.get());
  }
  nodes_.resize(p.num_peers);
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    nodes_[i] = PdhtNode(i, p.stor, &index_arena_);
    network_->SetOnline(i, true);
  }

  Rng churn_rng = rng_.Fork();
  churn_ = std::make_unique<sim::ChurnModel>(
      static_cast<uint32_t>(p.num_peers), config_.churn, churn_rng);
  churn_->AddObserver(&PdhtSystem::ChurnTrampoline, this);
  // Align network state with the churn model's initial draw.
  for (uint32_t i = 0; i < p.num_peers; ++i) {
    network_->SetOnline(i, churn_->IsOnline(i));
  }

  if (config_.scenario.kind == sim::ScenarioKind::kClusterOutage) {
    // Resolve the scripted cluster's membership once (Validate() vetted
    // kLatency + transit_stub, so the cast holds).  Pure hash reads: no
    // Rng stream is consumed, so enabling a scenario never perturbs the
    // baseline's draws.
    const auto* lat =
        static_cast<const net::LatencyDelivery*>(delivery_.get());
    uint32_t cluster = config_.scenario.cluster;
    if (cluster == sim::ScenarioConfig::kLargestCluster) {
      std::vector<uint32_t> population(config_.latency.num_clusters, 0);
      for (uint32_t i = 0; i < p.num_peers; ++i) {
        ++population[lat->ClusterOf(i)];
      }
      cluster = 0;
      for (uint32_t c = 1; c < population.size(); ++c) {
        if (population[c] > population[cluster]) cluster = c;
      }
    }
    outage_peers_.clear();
    for (uint32_t i = 0; i < p.num_peers; ++i) {
      if (lat->ClusterOf(i) == cluster) outage_peers_.push_back(i);
    }
  }

  Rng graph_rng = rng_.Fork();
  graph_ = std::make_unique<overlay::RandomGraph>(
      static_cast<uint32_t>(p.num_peers), config_.overlay_degree,
      &graph_rng);

  content_ = std::make_unique<overlay::ReplicaPlacement>(
      static_cast<uint32_t>(p.num_peers), static_cast<uint32_t>(p.repl),
      rng_.Fork());
  content_->PlaceKeys(p.keys);

  auto oracle = [this](net::PeerId peer, uint64_t key) {
    return content_->PeerHoldsKey(peer, key);
  };
  walk_ = std::make_unique<overlay::RandomWalkSearch>(
      graph_.get(), network_.get(), oracle, config_.walk, rng_.Fork());

  workload_ = std::make_unique<metadata::QueryWorkload>(
      p.keys, p.alpha, rng_.Fork());
}

void PdhtSystem::SelectDhtMembers() {
  const auto& p = config_.params;
  dht_members_.clear();
  if (config_.strategy == Strategy::kNoIndex || dht_member_target_ == 0) {
    return;
  }
  // Random member sample without replacement.
  std::vector<net::PeerId> all(p.num_peers);
  for (uint32_t i = 0; i < p.num_peers; ++i) all[i] = i;
  rng_.Shuffle(all.data(), all.size());
  dht_members_.assign(all.begin(), all.begin() + dht_member_target_);
  for (net::PeerId m : dht_members_) nodes_[m].set_dht_member(true);

  overlay::OverlayParams op;
  op.repl = p.repl;
  op.num_peers = p.num_peers;
  op.kademlia_bucket_size = config_.kademlia_bucket_size;
  op.kademlia_alpha = config_.kademlia_alpha;
  overlay_ = overlay::MakeOverlay(config_.backend, network_.get(), op,
                                  rng_.Fork());
  // Validate() already vetted the backend; exactly one overlay is live
  // from here on.
  assert(overlay_ != nullptr);
  const bool deferred = network_->deferred_delivery();
  const net::DeliveryModel* model = delivery_.get();
  if (config_.proximity_routing && deferred) {
    // Hand the overlay the delivery model's RTT oracle *before* the
    // routing tables are built so proximity-aware backends (Kademlia)
    // can prefer cheap links among equivalent candidates.
    overlay_->SetPeerRtt([model](net::PeerId a, net::PeerId b) {
      return model->RttMs(a, b);
    });
  }
  // Lookup-time policies of the shared routing driver.  Blind defaults
  // (both off) keep every walk bit-identical to the monolithic era.
  overlay::RoutingPolicy rp;
  rp.proximity =
      config_.proximity_routing && config_.route_proximity && deferred;
  route_pns_ = rp.proximity;
  rp.timeout_costing = config_.timeout_costing && deferred;
  rp.replica_route = config_.replica_route && deferred;
  if (rp.replica_route) {
    rp.replica_count = static_cast<uint32_t>(std::min<uint64_t>(
        p.repl, std::numeric_limits<uint32_t>::max()));
  }
  if (rp.proximity || rp.replica_route) {
    // The oracle serves route-PNS ordering, cheapest-replica selection
    // and the per-hop RTT trace.
    rp.rtt = [model](net::PeerId a, net::PeerId b) {
      return model->RttMs(a, b);
    };
  }
  overlay_->SetRoutingPolicy(std::move(rp));
  overlay_->SetMembers(dht_members_);
}

const std::vector<net::PeerId>& PdhtSystem::IndexReplicasInto(
    uint64_t key, std::vector<net::PeerId>* out) const {
  // "Index and content are replicated with the same factor" (Section 4);
  // replica-group composition is the backend's business (hash-spread by
  // default, structural leaf groups for P-Grid).
  out->clear();
  if (overlay_) {
    overlay_->ResponsiblePeersInto(
        key,
        static_cast<uint32_t>(std::min<uint64_t>(
            config_.params.repl, std::numeric_limits<uint32_t>::max())),
        out);
  }
  return *out;
}

void PdhtSystem::IncResidency(uint64_t key) { ++residency_[key]; }

void PdhtSystem::DecResidency(uint64_t key) {
  auto it = residency_.find(key);
  if (it == residency_.end()) return;
  if (--it->second == 0) residency_.erase(it);
}

void PdhtSystem::PreloadIndex() {
  const auto& p = config_.params;
  uint64_t preload = 0;
  switch (config_.strategy) {
    case Strategy::kIndexAll:
      preload = p.keys;
      break;
    case Strategy::kPartialIdeal:
      preload = oracle_max_rank_;
      break;
    default:
      return;  // TTL strategy starts empty; noIndex has no index.
  }
  constexpr double kForever = 1e15;
  for (uint64_t r = 1; r <= preload; ++r) {
    uint64_t key = config_.strategy == Strategy::kIndexAll
                       ? r - 1
                       : workload_->KeyAtRank(r);
    for (net::PeerId rep : IndexReplicasOf(key)) {
      uint64_t displaced = nodes_[rep].index().Put(key, 0.0, kForever);
      if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
      IncResidency(key);
    }
  }
}

void PdhtSystem::RegisterActors() {
  if (config_.phase_timing) {
    // List order must match the SimPhase enum (pdht_system.h).
    engine_.EnablePhaseTiming({"churn", "maint", "plan", "query", "publish",
                               "update", "evict", "drain"});
  }
  engine_.AddActor("churn", [this](sim::RoundContext& ctx) {
    RunChurnActor(ctx);
  });
  // Network's constructor interned every message-type counter; resolve
  // the probe counter to its id once instead of a string lookup per round.
  probe_counter_id_ =
      network_->CounterIdOf(net::MessageType::kRoutingProbe);
  engine_.AddActor("maintenance", [this](sim::RoundContext& ctx) {
    RunMaintenanceActor(ctx);
  });
  engine_.AddActor("queries", [this](sim::RoundContext& ctx) {
    RunQueryActor(ctx);
  });
  engine_.AddActor("updates", [this](sim::RoundContext& ctx) {
    RunUpdateActor(ctx);
  });
  engine_.AddActor("eviction", [this](sim::RoundContext& ctx) {
    RunEvictionActor(ctx);
  });

  engine_.AddCounterRateMetric(kSeriesMsgTotal, "msg.total");
  engine_.AddCounterRateMetric(kSeriesMsgDht, "msg.dht.");
  engine_.AddCounterRateMetric(kSeriesMsgUnstructured, "msg.unstructured.");
  engine_.AddCounterRateMetric(kSeriesMsgReplica, "msg.replica.");
  engine_.AddCounterRateMetric(kSeriesMsgMaint, "msg.maint.");
  if (network_->deferred_delivery()) {
    // In-flight observability for latency runs only: immediate-mode runs
    // keep the seed-era series set (snapshots stay byte-identical).
    engine_.AddCounterRateMetric(kSeriesDeferredRate,
                                 "net.delivery.deferred");
    if (config_.timeout_costing) {
      // Per-round probe-timeout counts; registered only when timeout
      // costing is on so existing latency runs keep their series set.
      engine_.AddCounterRateMetric(kSeriesTimeoutRate,
                                   network_->timeout_counter_id());
    }
    if (config_.replica_route) {
      // Per-round replica-failover counts, same presence rules.
      engine_.AddCounterRateMetric(kSeriesFailoverRate,
                                   network_->failover_counter_id());
    }
  }
  engine_.AddMetric(kSeriesHitRate, [this](const sim::RoundContext&) {
    return round_queries_ == 0
               ? 0.0
               : static_cast<double>(round_hits_) /
                     static_cast<double>(round_queries_);
  });
  engine_.AddMetric(kSeriesIndexSize, [this](const sim::RoundContext&) {
    return static_cast<double>(residency_.size());
  });
  engine_.AddMetric(kSeriesOnlineFraction,
                    [this](const sim::RoundContext&) {
                      return churn_->OnlineFraction();
                    });
}

void PdhtSystem::RunRounds(uint64_t n) { engine_.Run(n); }

net::PeerId PdhtSystem::RandomOnlinePeer() {
  // One draw from the network's dense online index: exactly uniform over
  // online peers (the old rejection loop was only asymptotically so) and
  // O(1) regardless of availability.  Consumes one Rng value per call
  // where the rejection loop consumed a variable number.
  const uint32_t online = network_->online_count();
  if (online == 0) return net::kInvalidPeer;
  return network_->OnlinePeerAt(
      static_cast<uint32_t>(rng_.UniformU64(online)));
}

net::PeerId PdhtSystem::DhtEntryPoint(Rng& rng, net::PeerId origin) {
  if (origin != net::kInvalidPeer && nodes_[origin].is_dht_member() &&
      network_->IsOnline(origin)) {
    return origin;
  }
  net::PeerId entry =
      overlay_ ? overlay_->RandomOnlineMember(rng) : net::kInvalidPeer;
  if (route_pns_ && entry != net::kInvalidPeer &&
      origin != net::kInvalidPeer) {
    // Proximity entry selection (route-time PNS, hop 0): any online
    // member is an equal-progress entry into the DHT -- the key is
    // equidistant from a random member either way -- so take the
    // cheapest origin->entry link among a small sample.  This leg is a
    // full random link under blind routing (~a third of the mean lookup
    // RTT at the 1/14 scenario), making it the single largest
    // latency-aware routing win.
    double best = delivery_->RttMs(origin, entry);
    for (int i = 1; i < 8; ++i) {
      net::PeerId cand = overlay_->RandomOnlineMember(rng);
      if (cand == net::kInvalidPeer) break;
      if (cand == entry) continue;
      const double rtt = delivery_->RttMs(origin, cand);
      if (rtt < best) {
        best = rtt;
        entry = cand;
      }
    }
  }
  if (entry != net::kInvalidPeer && origin != net::kInvalidPeer) {
    // Forwarding the query from the non-member origin into the DHT is one
    // message ("it is sufficient to know at least one online peer that is
    // participating in the DHT", Section 3.2).
    net::Message m;
    m.type = net::MessageType::kDhtLookup;
    m.from = origin;
    m.to = entry;
    network_->Send(m);
  }
  return entry;
}

overlay::LookupResult PdhtSystem::DhtLookup(net::PeerId origin,
                                            uint64_t key) {
  assert(overlay_ != nullptr);
  return overlay_->Lookup(origin, key);
}

uint64_t PdhtSystem::StatisticalReplicaFloodCost(Rng& rng) {
  // Flooding the replica subnetwork costs ~ repl * dup2 messages (Eq. 16);
  // the fractional part is realized probabilistically so the expectation
  // is exact.
  double cost = static_cast<double>(config_.params.repl) *
                config_.params.dup2;
  uint64_t whole = static_cast<uint64_t>(cost);
  double frac = cost - static_cast<double>(whole);
  return whole + (rng.Bernoulli(frac) ? 1 : 0);
}

void PdhtSystem::InsertIntoIndex(uint64_t key, double now, double ttl) {
  // Route the insert to the responsible region (cSIndx) ...
  net::PeerId entry = DhtEntryPoint(rng_, net::kInvalidPeer);
  if (entry == net::kInvalidPeer) return;
  overlay::LookupResult route = DhtLookup(entry, key);
  (void)route;
  // ... then flood the replica subnetwork with the new value (repl * dup2).
  network_->CountOnly(net::MessageType::kReplicaPush,
                      StatisticalReplicaFloodCost(rng_));
  for (net::PeerId rep : IndexReplicasOf(key)) {
    if (!network_->IsOnline(rep)) continue;  // offline replicas pull later
    uint64_t displaced = nodes_[rep].index().Put(key, now, ttl);
    if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
    IncResidency(key);
  }
}

QueryOutcome PdhtSystem::RunUnstructuredQuery(net::PeerId origin,
                                              uint64_t key) {
  QueryOutcome out;
  out.origin = origin;
  out.used_unstructured = true;
  overlay::WalkResult wr = walk_->Search(origin, key);
  out.found = wr.found;
  out.unstructured_messages = wr.messages;
  if (wr.found) {
    autotuner_.ObserveUnstructuredSearch(
        static_cast<double>(wr.messages));
  }
  return out;
}

QueryOutcome PdhtSystem::RunIndexFirstQuery(net::PeerId origin, uint64_t key,
                                            bool ttl_semantics) {
  QueryOutcome out;
  out.origin = origin;
  const double now = engine_.now();
  uint64_t before = network_->TotalMessages();
  // Lookup-RTT bracket: the index phase's messages are sequential hops,
  // so its serialized latency is the delta of the network's running
  // link-delay sum (0 under immediate delivery).
  const double lat_before = network_->total_latency_s();

  net::PeerId entry = DhtEntryPoint(rng_, origin);
  if (entry == net::kInvalidPeer) {
    // DHT unreachable (everything offline): degrade to broadcast.
    QueryOutcome fallback = RunUnstructuredQuery(origin, key);
    fallback.index_messages = network_->TotalMessages() - before -
                              fallback.unstructured_messages;
    return fallback;
  }

  overlay::LookupResult route = DhtLookup(entry, key);
  if (network_->deferred_delivery() &&
      route.terminus != net::kInvalidPeer) {
    // Paired samples: measured serialized RTT of this lookup vs the
    // direct origin->terminus round trip -- their mean ratio is the
    // routing stretch bench_latency reports.  Timeout costing folds
    // failed-probe waits into the same latency sum, so the RTT bracket
    // prices them automatically.
    lookup_rtt_ms_.Add((network_->total_latency_s() - lat_before) * 1e3);
    lookup_direct_ms_.Add(delivery_->RttMs(origin, route.terminus));
    lookup_hops_.Add(static_cast<double>(route.hops));
    for (uint32_t k = 0; k < route.hop_rtt_n; ++k) {
      hop_rtt_ms_[k].Add(route.hop_rtt_ms[k]);
    }
  }
  net::PeerId holder = net::kInvalidPeer;
  if (route.success && route.terminus != net::kInvalidPeer &&
      nodes_[route.terminus].index().Contains(key, now)) {
    holder = route.terminus;
  }
  if (holder == net::kInvalidPeer) {
    // Terminus cannot answer: flood the replica subnetwork (Section 5.1;
    // purging leaves replicas unsynchronized, so siblings may still hold
    // the key).
    network_->CountOnly(net::MessageType::kReplicaFlood,
                        StatisticalReplicaFloodCost(rng_));
    for (net::PeerId rep : IndexReplicasOf(key)) {
      if (!network_->IsOnline(rep)) continue;
      if (nodes_[rep].index().Contains(key, now)) {
        holder = rep;
        break;
      }
    }
  }

  if (holder != net::kInvalidPeer) {
    if (ttl_semantics) {
      nodes_[holder].index().Touch(key, now, EffectiveKeyTtl());
    }
    out.found = true;
    out.answered_from_index = true;
    out.index_messages = network_->TotalMessages() - before;
    autotuner_.ObserveIndexSearch(
        static_cast<double>(out.index_messages));
    return out;
  }

  out.index_messages = network_->TotalMessages() - before;
  autotuner_.ObserveIndexSearch(static_cast<double>(out.index_messages));
  // Miss: broadcast search, then (TTL algorithm only) insert the result.
  QueryOutcome walk_out = RunUnstructuredQuery(origin, key);
  out.used_unstructured = true;
  out.found = walk_out.found;
  out.unstructured_messages = walk_out.unstructured_messages;
  if (ttl_semantics && out.found) {
    uint64_t before_insert = network_->TotalMessages();
    InsertIntoIndex(key, now, EffectiveKeyTtl());
    out.index_messages += network_->TotalMessages() - before_insert;
  }
  return out;
}

QueryOutcome PdhtSystem::ExecuteQuery(uint64_t key) {
  net::PeerId origin = RandomOnlinePeer();
  QueryOutcome out;
  if (origin == net::kInvalidPeer) return out;

  switch (config_.strategy) {
    case Strategy::kNoIndex:
      out = RunUnstructuredQuery(origin, key);
      break;
    case Strategy::kIndexAll:
      out = RunIndexFirstQuery(origin, key, /*ttl_semantics=*/false);
      break;
    case Strategy::kPartialIdeal: {
      // Oracle: every peer knows whether the key is worth indexing.
      bool indexed = workload_->RankOf(key) <= oracle_max_rank_;
      out = indexed ? RunIndexFirstQuery(origin, key, false)
                    : RunUnstructuredQuery(origin, key);
      break;
    }
    case Strategy::kPartialTtl:
      out = RunIndexFirstQuery(origin, key, /*ttl_semantics=*/true);
      break;
  }
  nodes_[origin].RecordQuery(out.answered_from_index);
  return out;
}

void PdhtSystem::RunQueryActor(sim::RoundContext& ctx) {
  if (sharded_) {
    RunShardedQueryActor(ctx);
    return;
  }
  ScopedPhaseMs timer(&engine_, kPhaseQuery);
  const auto& p = config_.params;
  round_queries_ = 0;
  round_hits_ = 0;
  if (config_.trace != nullptr) {
    // Trace replay: every entry tagged with this round, verbatim.
    auto [begin, end] = config_.trace->RoundRange(ctx.round);
    for (size_t i = begin; i < end; ++i) {
      uint64_t key = config_.trace->entries()[i].key;
      if (key >= p.keys) continue;  // foreign trace entries are skipped
      QueryOutcome out = ExecuteQuery(key);
      ++round_queries_;
      if (out.answered_from_index) ++round_hits_;
    }
    return;
  }
  uint64_t count = workload_->SampleQueryCount(p.num_peers, p.f_qry);
  for (uint64_t q = 0; q < count; ++q) {
    uint64_t key = workload_->SampleKey();
    QueryOutcome out = ExecuteQuery(key);
    ++round_queries_;
    if (out.answered_from_index) ++round_hits_;
  }
}

// --- Sharded round engine -------------------------------------------------
//
// The parallel query phase runs in three steps (docs/architecture.md):
//  1. PLAN (serial): draw the round's query count, keys and origins from
//     the main workload/Rng streams -- one deterministic sequence no
//     matter how many threads or shards run the phase.
//  2. EXECUTE (parallel): the worker pool claims tasks; each task routes
//     against the round-start snapshot of the index/overlay state, draws
//     from its own Rng(Mix64(HashCombine(round_seed, task))), counts
//     messages into its worker's lane, and buffers every state mutation.
//  3. PUBLISH (serial): lane counter deltas merge (order-free), then each
//     task's order-sensitive effects replay in global task order --
//     deferred deliveries, autotuner observations, Touch/insert Puts,
//     RTT samples, per-origin RecordQuery -- so the result is a pure
//     function of the task list, independent of worker assignment.

void PdhtSystem::SetupShardedEngine() {
  uint32_t threads = std::max<uint32_t>(1, config_.sim_threads);
  if (config_.sim_threads_auto) {
    // Auto engine selection.  The serial/sharded decision compares the
    // configuration's expected per-round work against a fixed floor --
    // never the machine -- because the two engines are distinct random
    // streams.  The *thread count* is hardware-derived (capped so a
    // many-core host doesn't spin up workers the phase sizes can't
    // feed): sharded results are bit-identical at any thread count, so
    // this affects wall-clock only.
    const auto& p = config_.params;
    const double work =
        static_cast<double>(p.num_peers) * (1.0 + p.f_qry);
    if (work < kAutoShardedWorkFloor) {
      sharded_ = false;
      return;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::clamp<uint32_t>(hw == 0 ? 1 : hw, 1, 8);
    sharded_ = true;
  } else {
    sharded_ = config_.sim_threads > 1 || config_.sim_shards > 0;
    if (!sharded_) return;
  }
  num_shards_ = config_.sim_shards > 0 ? config_.sim_shards : 4 * threads;
  pool_ = std::make_unique<sim::ShardPool>(threads);
  lanes_.resize(threads);
  replica_slots_.resize(threads);
  if (overlay_) overlay_->SetLookupSlots(threads);
  auto oracle = [this](net::PeerId peer, uint64_t key) {
    return content_->PeerHoldsKey(peer, key);
  };
  walk_slots_.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    // One searcher per worker so walk scratch never crosses threads.  The
    // searcher's own stream is never used -- sharded tasks always pass
    // their derived task Rng -- and seeding it from a hash (not a
    // rng_.Fork()) keeps the main stream independent of the thread count.
    walk_slots_.push_back(std::make_unique<overlay::RandomWalkSearch>(
        graph_.get(), network_.get(), oracle, config_.walk,
        Rng(Mix64(HashCombine(config_.seed, 0x77616c6bULL + w)))));
  }
  // Eviction partition: shard of a peer is a pure function of its id, so
  // the partition (and with it every shard-buffered result) is identical
  // for every thread count.
  shard_members_.assign(num_shards_, {});
  for (net::PeerId m : dht_members_) {
    shard_members_[Mix64(m) % num_shards_].push_back(m);
  }
  evict_buffers_.assign(num_shards_, {});
  // Partitioned boundary drain: deferred-delivery arrivals are tagged
  // with their destination (PDHT peers are handler-free, so an arrival's
  // only effect is the commutative drop tally), letting the drain hand
  // per-destination-shard batches to the pool.  Workers bind lanes so
  // the tallies accumulate race-free and merge after -- commutative, so
  // the result is bit-identical to the serial drain, which the queue
  // falls back to whenever any batch event is order-sensitive.
  engine_.SetBoundaryDrainer([this](double until) {
    return engine_.events().DrainBoundaryPartitioned(
        until, num_shards_,
        [this](uint32_t shards, const sim::EventQueue::ShardRunFn& run) {
          const size_t num_counters = engine_.counters().NumCounters();
          for (net::ShardLane& lane : lanes_) lane.Prepare(num_counters);
          pool_->Run(shards, [this, &run](uint32_t w, uint32_t shard) {
            network_->BeginLane(&lanes_[w]);
            run(shard);
            network_->EndLane();
          });
          MergeLaneCounters();
        });
  });
}

PdhtSystem::QueryTask PdhtSystem::MakeQueryTask(uint64_t key,
                                                net::PeerId origin) const {
  QueryTask t;
  t.key = key;
  t.origin = origin;
  switch (config_.strategy) {
    case Strategy::kNoIndex:
      break;
    case Strategy::kIndexAll:
      t.index_first = true;
      break;
    case Strategy::kPartialIdeal:
      t.index_first = workload_->RankOf(key) <= oracle_max_rank_;
      break;
    case Strategy::kPartialTtl:
      t.index_first = true;
      t.ttl_semantics = true;
      break;
  }
  return t;
}

void PdhtSystem::AppendQueryTask(uint64_t key) {
  // Trace-replay planning: origin off the main stream, in entry order.
  query_tasks_.push_back(MakeQueryTask(key, RandomOnlinePeer()));
}

/// Counting-sort planner chunk: fixed size so the chunk partition -- and
/// with it every task offset -- is a pure function of the online count,
/// never of the thread count.
constexpr uint32_t kPlanChunk = 8192;

void PdhtSystem::PlanQueryTasks(sim::RoundContext& ctx) {
  const auto& p = config_.params;
  query_tasks_.clear();
  if (config_.trace != nullptr) {
    auto [begin, end] = config_.trace->RoundRange(ctx.round);
    for (size_t i = begin; i < end; ++i) {
      uint64_t key = config_.trace->entries()[i].key;
      if (key >= p.keys) continue;  // foreign trace entries are skipped
      AppendQueryTask(key);
    }
    return;
  }
  // Counting-sort plan over the dense online index, two parallel passes:
  // A counts each online peer's queries this round, B materializes tasks
  // at exact offsets.  Each peer's draws come from its own streams --
  // pure functions of (seed, round, peer) -- so the plan consumes ZERO
  // main-stream values and is bit-identical at every thread/shard count
  // (the legacy planner burned one main-stream draw per query on the
  // origin alone, a serial floor at 100k+ queries/round).  Semantics
  // shift with the stream: each online peer issues floor(rate) +
  // Bernoulli(frac) queries where rate spreads the round's expected
  // total (num_peers * f_qry) over the online population, and the peer
  // itself is the query's origin -- the same aggregate mean as the old
  // binomial count with uniformly drawn origins, realized per-peer.
  const uint32_t online = network_->online_count();
  if (online == 0) return;  // nothing can originate a query
  const double rate =
      static_cast<double>(p.num_peers) * p.f_qry / static_cast<double>(online);
  const uint32_t whole = static_cast<uint32_t>(rate);
  const double frac = rate - static_cast<double>(whole);
  const uint64_t count_seed =
      Mix64(HashCombine(round_seed_, 0x706c636eULL));  // "plcn"
  const uint64_t key_seed =
      Mix64(HashCombine(round_seed_, 0x706c6b79ULL));  // "plky"
  const uint32_t num_chunks = (online + kPlanChunk - 1) / kPlanChunk;
  plan_counts_.resize(online);
  plan_chunk_bases_.assign(num_chunks, 0);
  // Pass A (parallel): per-peer query counts and per-chunk totals.
  pool_->Run(num_chunks, [this, online, whole, frac,
                          count_seed](uint32_t /*w*/, uint32_t chunk) {
    const uint32_t begin = chunk * kPlanChunk;
    const uint32_t end = std::min(online, begin + kPlanChunk);
    uint64_t total = 0;
    for (uint32_t i = begin; i < end; ++i) {
      Rng rng(Mix64(HashCombine(count_seed, network_->OnlinePeerAt(i))));
      const uint32_t c = whole + (rng.Bernoulli(frac) ? 1 : 0);
      plan_counts_[i] = c;
      total += c;
    }
    plan_chunk_bases_[chunk] = total;
  });
  // Serial seam: exclusive prefix sum of the chunk totals = each chunk's
  // base task offset.
  uint64_t total = 0;
  for (uint32_t c = 0; c < num_chunks; ++c) {
    const uint64_t chunk_total = plan_chunk_bases_[c];
    plan_chunk_bases_[c] = total;
    total += chunk_total;
  }
  query_tasks_.resize(total);
  if (total == 0) return;
  // Pass B (parallel): materialize each peer's tasks at its exact slot
  // range; keys come from the peer's key stream, in issue order.
  pool_->Run(num_chunks,
             [this, online, key_seed](uint32_t /*w*/, uint32_t chunk) {
               const uint32_t begin = chunk * kPlanChunk;
               const uint32_t end = std::min(online, begin + kPlanChunk);
               uint64_t slot = plan_chunk_bases_[chunk];
               for (uint32_t i = begin; i < end; ++i) {
                 const uint32_t c = plan_counts_[i];
                 if (c == 0) continue;
                 const net::PeerId peer = network_->OnlinePeerAt(i);
                 Rng rng(Mix64(HashCombine(key_seed, peer)));
                 for (uint32_t q = 0; q < c; ++q) {
                   query_tasks_[slot++] =
                       MakeQueryTask(workload_->SampleKey(rng), peer);
                 }
               }
             });
}

void PdhtSystem::RunShardedQueryActor(sim::RoundContext& ctx) {
  // The planner's per-peer streams derive from the round seed, so set it
  // before planning (task streams hang off it too, as before).
  round_seed_ = Mix64(HashCombine(config_.seed, ctx.round));
  {
    ScopedPhaseMs timer(&engine_, kPhasePlan);
    PlanQueryTasks(ctx);
  }
  round_queries_ = 0;
  round_hits_ = 0;
  if (query_tasks_.empty()) return;
  // Warm lazily-built shared read state serially (e.g. Chord's mutable
  // members cache) so the parallel phase only ever reads it.
  if (overlay_) overlay_->members();
  const size_t num_counters = engine_.counters().NumCounters();
  for (net::ShardLane& lane : lanes_) lane.Prepare(num_counters);
  query_results_.resize(query_tasks_.size());
  {
    ScopedPhaseMs timer(&engine_, kPhaseQuery);
    pool_->Run(static_cast<uint32_t>(query_tasks_.size()),
               [this](uint32_t w, uint32_t q) { RunQueryTask(w, q); });
  }
  ScopedPhaseMs timer(&engine_, kPhasePublish);
  PublishQueryResults();
}

void PdhtSystem::RunQueryTask(uint32_t worker, uint32_t task_index) {
  const QueryTask& t = query_tasks_[task_index];
  QueryTaskResult& r = query_results_[task_index];
  r = QueryTaskResult{};
  r.lane = worker;
  if (t.origin == net::kInvalidPeer) return;  // nothing online at planning
  overlay::SetCurrentLookupSlot(worker);
  net::ShardLane& lane = lanes_[worker];
  // Reset the bracket accumulator so latency deltas are computed from a
  // task-invariant base: (frozen_global + x) - frozen_global rounds the
  // same way no matter which worker ran the previous tasks.  The charged
  // latency itself is not lost -- CommitDeferred replays it from the
  // deferred log at publish.
  lane.latency_s = 0.0;
  network_->BeginLane(&lane);
  r.def_begin = static_cast<uint32_t>(lane.deferred.size());
  // The task's whole random behaviour hangs off this one derived stream:
  // any worker running this task draws the same values.
  Rng rng(Mix64(HashCombine(round_seed_, task_index)));
  if (t.index_first) {
    ShardIndexFirstQuery(rng, worker, t.origin, t.key, t.ttl_semantics, &r);
  } else {
    ShardUnstructuredQuery(rng, worker, t.origin, t.key, &r);
  }
  r.def_end = static_cast<uint32_t>(lane.deferred.size());
  network_->EndLane();
}

void PdhtSystem::ShardUnstructuredQuery(Rng& rng, uint32_t worker,
                                        net::PeerId origin, uint64_t key,
                                        QueryTaskResult* r) {
  overlay::WalkResult wr = walk_slots_[worker]->Search(origin, key, rng);
  r->found = wr.found;
  if (wr.found) r->unstructured_obs = static_cast<double>(wr.messages);
}

void PdhtSystem::ShardIndexFirstQuery(Rng& rng, uint32_t worker,
                                      net::PeerId origin, uint64_t key,
                                      bool ttl_semantics,
                                      QueryTaskResult* r) {
  const double now = engine_.now();
  // Lane-relative brackets: the shared counters are frozen during the
  // phase, so the observed before/after deltas are this task's own
  // traffic/latency -- same semantics as the serial brackets.
  const uint64_t before = network_->ObservedTotalMessages();
  const double lat_before = network_->ObservedLatencyS();

  net::PeerId entry = DhtEntryPoint(rng, origin);
  if (entry == net::kInvalidPeer) {
    // DHT unreachable (everything offline): degrade to broadcast.
    ShardUnstructuredQuery(rng, worker, origin, key, r);
    return;
  }

  overlay::LookupResult route = DhtLookup(entry, key);
  if (network_->deferred_delivery() &&
      route.terminus != net::kInvalidPeer) {
    r->has_rtt = true;
    r->rtt_ms = (network_->ObservedLatencyS() - lat_before) * 1e3;
    r->direct_ms = delivery_->RttMs(origin, route.terminus);
    r->hops = static_cast<double>(route.hops);
    r->hop_rtt_n = route.hop_rtt_n;
    for (uint32_t k = 0; k < route.hop_rtt_n; ++k) {
      r->hop_rtt_ms[k] = route.hop_rtt_ms[k];
    }
  }
  net::PeerId holder = net::kInvalidPeer;
  if (route.success && route.terminus != net::kInvalidPeer &&
      nodes_[route.terminus].index().Contains(key, now)) {
    holder = route.terminus;
  }
  if (holder == net::kInvalidPeer) {
    network_->CountOnly(net::MessageType::kReplicaFlood,
                        StatisticalReplicaFloodCost(rng));
    for (net::PeerId rep :
         IndexReplicasInto(key, &replica_slots_[worker])) {
      if (!network_->IsOnline(rep)) continue;
      if (nodes_[rep].index().Contains(key, now)) {
        holder = rep;
        break;
      }
    }
  }

  if (holder != net::kInvalidPeer) {
    if (ttl_semantics) {
      // Touch applies at publish (in task order, against live state).
      r->has_touch = true;
      r->touch_holder = holder;
    }
    r->found = true;
    r->answered_from_index = true;
    r->index_obs =
        static_cast<double>(network_->ObservedTotalMessages() - before);
    return;
  }

  r->index_obs =
      static_cast<double>(network_->ObservedTotalMessages() - before);
  ShardUnstructuredQuery(rng, worker, origin, key, r);
  if (ttl_semantics && r->found) {
    // Miss-then-found re-insertion: route + statistical flood now (wire
    // cost belongs to this task), replica Puts at publish.
    net::PeerId insert_entry = DhtEntryPoint(rng, net::kInvalidPeer);
    if (insert_entry != net::kInvalidPeer) {
      DhtLookup(insert_entry, key);
      network_->CountOnly(net::MessageType::kReplicaPush,
                          StatisticalReplicaFloodCost(rng));
      r->has_insert = true;
    }
  }
}

void PdhtSystem::MergeLaneCounters() {
  // Integer adds commute, so lane-major merge order is immaterial (and
  // cheap -- one flat vector add per lane).  The audit knob merges in
  // reverse to prove the claim stays true (the determinism suite pins
  // shuffled-vs-default snapshots bit for bit).
  if (config_.debug_shuffle_publish) {
    for (auto it = lanes_.rbegin(); it != lanes_.rend(); ++it) {
      engine_.counters().MergeDelta(it->counter_delta);
    }
    return;
  }
  for (const net::ShardLane& lane : lanes_) {
    engine_.counters().MergeDelta(lane.counter_delta);
  }
}

void PdhtSystem::PublishQueryResults() {
  const double now = engine_.now();
  // Commutative slice 1: lane counter deltas (order-free).
  MergeLaneCounters();
  // Ordered slice: everything below is genuinely order-sensitive under
  // the bit-identity contract -- CommitDeferred feeds floating-point
  // latency sums, capped/P^2 histograms and event scheduling; the
  // autotuner EWMAs and the Touch/Put index mutations see state the
  // previous task may have moved -- so it replays serially in global
  // task order, exactly as a serial engine would interleave it.
  for (size_t q = 0; q < query_tasks_.size(); ++q) {
    const QueryTask& t = query_tasks_[q];
    const QueryTaskResult& r = query_results_[q];
    // (1) Order-sensitive network effects (fp latency sums, capped
    //     histograms, event scheduling) replay in task order.
    for (uint32_t i = r.def_begin; i < r.def_end; ++i) {
      network_->CommitDeferred(lanes_[r.lane].deferred[i]);
    }
    // (2) Autotuner observations, index before unstructured (the serial
    //     per-query order).
    if (r.index_obs >= 0.0) autotuner_.ObserveIndexSearch(r.index_obs);
    if (r.unstructured_obs >= 0.0) {
      autotuner_.ObserveUnstructuredSearch(r.unstructured_obs);
    }
    // (3) Index mutations, with the TTL in force at this publish point
    //     (the autotuner may have just moved it).
    if (r.has_touch) {
      nodes_[r.touch_holder].index().Touch(t.key, now, EffectiveKeyTtl());
    }
    if (r.has_insert) {
      const double ttl = EffectiveKeyTtl();
      for (net::PeerId rep : IndexReplicasOf(t.key)) {
        if (!network_->IsOnline(rep)) continue;
        uint64_t displaced = nodes_[rep].index().Put(t.key, now, ttl);
        if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
        IncResidency(t.key);
      }
    }
    // (4) Latency samples (capped histograms subsample deterministically
    //     in arrival order).
    if (r.has_rtt) {
      lookup_rtt_ms_.Add(r.rtt_ms);
      lookup_direct_ms_.Add(r.direct_ms);
      lookup_hops_.Add(r.hops);
      for (uint32_t k = 0; k < r.hop_rtt_n; ++k) {
        hop_rtt_ms_[k].Add(r.hop_rtt_ms[k]);
      }
    }
  }
  // Commutative slice 2 (parallel): per-origin stats and the round's
  // hit-rate tally.  RecordQuery is integer increments on the origin's
  // node, so partitioning tasks by origin shard -- a pure function of
  // the origin id -- gives every shard task a disjoint node set, and the
  // per-shard query/hit partials sum serially after the barrier.  Scan
  // order within a shard is task order, though nothing here needs it.
  publish_queries_.assign(num_shards_, 0);
  publish_hits_.assign(num_shards_, 0);
  const bool shuffle = config_.debug_shuffle_publish;
  pool_->Run(num_shards_, [this, shuffle](uint32_t /*w*/, uint32_t s) {
    // Audit knob: visit shards in reversed index order (shard s processes
    // partition num_shards-1-s).  The partition itself is unchanged, so
    // results must be bit-identical.
    const uint32_t shard = shuffle ? num_shards_ - 1 - s : s;
    uint64_t queries = 0;
    uint64_t hits = 0;
    for (size_t q = 0; q < query_tasks_.size(); ++q) {
      const net::PeerId origin = query_tasks_[q].origin;
      const uint32_t home =
          origin == net::kInvalidPeer
              ? 0
              : static_cast<uint32_t>(Mix64(origin) % num_shards_);
      if (home != shard) continue;
      const bool hit = query_results_[q].answered_from_index;
      if (origin != net::kInvalidPeer) {
        nodes_[origin].RecordQuery(hit);
      }
      ++queries;
      if (hit) ++hits;
    }
    publish_queries_[shard] = queries;
    publish_hits_[shard] = hits;
  });
  for (uint32_t s = 0; s < num_shards_; ++s) {
    round_queries_ += publish_queries_[s];
    round_hits_ += publish_hits_[s];
  }
}

void PdhtSystem::RunMaintenanceActor(sim::RoundContext& ctx) {
  if (config_.strategy == Strategy::kNoIndex || !overlay_) return;
  ScopedPhaseMs timer(&engine_, kPhaseMaint);
  if (sharded_ && overlay_->has_sharded_maintenance()) {
    RunShardedMaintenance(ctx);
  } else {
    overlay_->RunMaintenanceRound(config_.params.env);
  }
  // Feed the TTL autotuner the round's maintenance traffic: probes per
  // round per currently indexed key approximate cRtn (Eq. 8).
  uint64_t probes = engine_.counters().Value(probe_counter_id_);
  uint64_t delta = probes - last_probe_count_;
  last_probe_count_ = probes;
  autotuner_.ObserveMaintenanceRound(
      static_cast<double>(delta), static_cast<double>(residency_.size()));
}

void PdhtSystem::RunShardedMaintenance(sim::RoundContext& ctx) {
  // PLAN (serial): the overlay consumes its fractional budget map in
  // canonical member order and freezes the round's task list -- one
  // deterministic (member, probe-count) sequence no matter how many
  // threads run the phase.
  const uint32_t num_tasks =
      overlay_->PlanMaintenanceRound(config_.params.env);
  if (num_tasks == 0) return;
  round_seed_ = Mix64(HashCombine(config_.seed, ctx.round));
  const uint64_t maint_seed =
      Mix64(HashCombine(round_seed_, 0x6d61696e74ULL));  // "maint"
  const size_t num_counters = engine_.counters().NumCounters();
  for (net::ShardLane& lane : lanes_) lane.Prepare(num_counters);
  maint_slices_.resize(num_tasks);
  // EXECUTE (parallel): each task probes/repairs exactly one member's
  // own routing table against the frozen membership snapshot, counts
  // into its worker's lane, and draws from its own derived stream.
  pool_->Run(num_tasks, [this, maint_seed](uint32_t w, uint32_t task) {
    net::ShardLane& lane = lanes_[w];
    lane.latency_s = 0.0;
    network_->BeginLane(&lane);
    PhaseSlice& s = maint_slices_[task];
    s.lane = w;
    s.def_begin = static_cast<uint32_t>(lane.deferred.size());
    Rng rng(Mix64(HashCombine(maint_seed, task)));
    overlay_->ExecuteMaintenanceTask(task, rng);
    s.def_end = static_cast<uint32_t>(lane.deferred.size());
    network_->EndLane();
  });
  // PUBLISH (serial): lane counter deltas merge (order-free integer
  // adds), deferred network effects replay in global task order, then
  // the overlay folds its per-task repair stats.
  MergeLaneCounters();
  for (const PhaseSlice& s : maint_slices_) {
    for (uint32_t i = s.def_begin; i < s.def_end; ++i) {
      network_->CommitDeferred(lanes_[s.lane].deferred[i]);
    }
  }
  overlay_->FinishMaintenanceRound();
}

void PdhtSystem::RunUpdateActor(sim::RoundContext& ctx) {
  // Proactive updates exist only while the index is proactively maintained
  // (Section 5.1 removes cUpd: the TTL algorithm refreshes values on
  // miss-triggered re-insertion).
  if (config_.strategy != Strategy::kIndexAll &&
      config_.strategy != Strategy::kPartialIdeal) {
    return;
  }
  const auto& p = config_.params;
  uint64_t indexed_keys = config_.strategy == Strategy::kIndexAll
                              ? p.keys
                              : oracle_max_rank_;
  if (indexed_keys == 0) return;
  ScopedPhaseMs timer(&engine_, kPhaseUpdate);
  update_carry_ += static_cast<double>(indexed_keys) * p.f_upd;
  if (sharded_) {
    RunShardedUpdateActor(ctx, indexed_keys);
    return;
  }
  constexpr double kForever = 1e15;
  while (update_carry_ >= 1.0) {
    update_carry_ -= 1.0;
    uint64_t rank = 1 + rng_.UniformU64(indexed_keys);
    uint64_t key = config_.strategy == Strategy::kIndexAll
                       ? rank - 1
                       : workload_->KeyAtRank(rank);
    // Insert at one responsible peer (cSIndx) + gossip to replicas
    // (repl * dup2): exactly Eq. 9's per-update cost.
    net::PeerId entry = DhtEntryPoint(rng_, net::kInvalidPeer);
    if (entry == net::kInvalidPeer) continue;
    DhtLookup(entry, key);
    network_->CountOnly(net::MessageType::kReplicaPush,
                        StatisticalReplicaFloodCost(rng_));
    for (net::PeerId rep : IndexReplicasOf(key)) {
      if (!network_->IsOnline(rep)) continue;
      uint64_t displaced =
          nodes_[rep].index().Put(key, engine_.now(), kForever);
      if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
      IncResidency(key);
    }
  }
}

void PdhtSystem::RunShardedUpdateActor(sim::RoundContext& ctx,
                                       uint64_t indexed_keys) {
  // PLAN (serial): rank draws come off the main stream in carry order --
  // the same one-draw-per-update sequence the serial loop consumes.
  update_tasks_.clear();
  while (update_carry_ >= 1.0) {
    update_carry_ -= 1.0;
    uint64_t rank = 1 + rng_.UniformU64(indexed_keys);
    update_tasks_.push_back(config_.strategy == Strategy::kIndexAll
                                ? rank - 1
                                : workload_->KeyAtRank(rank));
  }
  if (update_tasks_.empty()) return;
  if (overlay_) overlay_->members();  // warm shared read caches serially
  round_seed_ = Mix64(HashCombine(config_.seed, ctx.round));
  const uint64_t upd_seed =
      Mix64(HashCombine(round_seed_, 0x75706474ULL));  // "updt"
  const size_t num_counters = engine_.counters().NumCounters();
  for (net::ShardLane& lane : lanes_) lane.Prepare(num_counters);
  update_results_.resize(update_tasks_.size());
  // EXECUTE (parallel): entry-point selection, insert routing and the
  // statistical replica-flood costing per task (wire cost belongs to the
  // task); index mutations wait for publish.
  pool_->Run(
      static_cast<uint32_t>(update_tasks_.size()),
      [this, upd_seed](uint32_t w, uint32_t task) {
        UpdateTaskResult& r = update_results_[task];
        r = UpdateTaskResult{};
        r.slice.lane = w;
        overlay::SetCurrentLookupSlot(w);
        net::ShardLane& lane = lanes_[w];
        lane.latency_s = 0.0;
        network_->BeginLane(&lane);
        r.slice.def_begin = static_cast<uint32_t>(lane.deferred.size());
        Rng rng(Mix64(HashCombine(upd_seed, task)));
        net::PeerId entry = DhtEntryPoint(rng, net::kInvalidPeer);
        if (entry != net::kInvalidPeer) {
          DhtLookup(entry, update_tasks_[task]);
          network_->CountOnly(net::MessageType::kReplicaPush,
                              StatisticalReplicaFloodCost(rng));
          r.inserted = true;
        }
        r.slice.def_end = static_cast<uint32_t>(lane.deferred.size());
        network_->EndLane();
      });
  // PUBLISH (serial): merge lane counter deltas, then replay each task's
  // deferred effects and apply its replica Puts in global task order.
  MergeLaneCounters();
  constexpr double kForever = 1e15;
  const double now = engine_.now();
  for (size_t task = 0; task < update_tasks_.size(); ++task) {
    const UpdateTaskResult& r = update_results_[task];
    for (uint32_t i = r.slice.def_begin; i < r.slice.def_end; ++i) {
      network_->CommitDeferred(lanes_[r.slice.lane].deferred[i]);
    }
    if (!r.inserted) continue;
    const uint64_t key = update_tasks_[task];
    for (net::PeerId rep : IndexReplicasOf(key)) {
      if (!network_->IsOnline(rep)) continue;
      uint64_t displaced = nodes_[rep].index().Put(key, now, kForever);
      if (displaced != TtlIndex::kNoKey) DecResidency(displaced);
      IncResidency(key);
    }
  }
}

void PdhtSystem::RunEvictionActor(sim::RoundContext& ctx) {
  if (config_.strategy != Strategy::kPartialTtl) return;
  ScopedPhaseMs timer(&engine_, kPhaseEvict);
  if (!sharded_) {
    for (net::PeerId m : dht_members_) {
      nodes_[m].index().EvictExpired(
          ctx.time, [this](uint64_t key) { DecResidency(key); });
    }
    return;
  }
  // Shard-parallel sweep: each shard owns a disjoint member set (pure
  // function of peer id), evicted keys land in per-shard buffers, and
  // residency decrements -- commutative integer ops over an unordered
  // map nothing iterates -- replay serially in shard order.
  const double now = ctx.time;
  pool_->Run(num_shards_, [this, now](uint32_t /*worker*/, uint32_t shard) {
    std::vector<uint64_t>& evicted = evict_buffers_[shard];
    evicted.clear();
    for (net::PeerId m : shard_members_[shard]) {
      nodes_[m].index().EvictExpired(
          now, [&evicted](uint64_t key) { evicted.push_back(key); });
    }
  });
  for (const std::vector<uint64_t>& evicted : evict_buffers_) {
    for (uint64_t key : evicted) DecResidency(key);
  }
}

void PdhtSystem::ApplyScenarioTransitions(uint64_t round) {
  if (config_.scenario.kind != sim::ScenarioKind::kClusterOutage) return;
  const sim::ScenarioConfig& sc = config_.scenario;
  if (!outage_active_ && round >= sc.outage_start_round &&
      round < sc.outage_end_round) {
    outage_active_ = true;
    // Ascending-peer-id order: the flips (and their observer effects on
    // the dense online index) are a fixed sequence, so scenario runs are
    // bit-identical at any thread/shard count.  Force/Heal consume no
    // randomness (see sim/churn.h).
    for (net::PeerId peer : outage_peers_) churn_->ForceOffline(peer);
  } else if (outage_active_ && round >= sc.outage_end_round) {
    outage_active_ = false;
    for (net::PeerId peer : outage_peers_) churn_->Heal(peer);
  }
}

void PdhtSystem::RunChurnActor(sim::RoundContext& ctx) {
  ScopedPhaseMs timer(&engine_, kPhaseChurn);
  if (!sharded_ || !overlay_ || !overlay_->has_sharded_rejoin()) {
    ApplyScenarioTransitions(ctx.round);
    churn_->AdvanceTo(ctx.time);
    return;
  }
  // Flip events apply serially in event order (the dense online index
  // and the replica-pull accounting are order-sensitive); the expensive
  // part -- rebuilding a rejoined member's routing table -- is deferred
  // by OnChurnFlip, deduped, and rebuilt in parallel below, one task per
  // distinct member writing only its own table.  Rebuilds are pure
  // functions of (membership, rng) -- they never read online state -- so
  // running them after the round's remaining flips changes nothing.
  rejoin_queue_.clear();
  defer_rejoins_ = true;
  // Scenario heals fire the rejoin observers inside the deferral window
  // so a healed cluster's members rebuild through the same deduped
  // parallel path as ordinary rejoins.
  ApplyScenarioTransitions(ctx.round);
  churn_->AdvanceTo(ctx.time);
  defer_rejoins_ = false;
  if (rejoin_queue_.empty()) return;
  // Dedup is mandatory, not an optimization: a member that flipped
  // online twice in one round must rebuild exactly once (two tasks would
  // race on its table).  Sort first so the task list is a pure function
  // of the flip *set*.
  std::sort(rejoin_queue_.begin(), rejoin_queue_.end());
  rejoin_queue_.erase(
      std::unique(rejoin_queue_.begin(), rejoin_queue_.end()),
      rejoin_queue_.end());
  const uint64_t churn_seed =
      Mix64(HashCombine(Mix64(HashCombine(config_.seed, ctx.round)),
                        0x6368726eULL));  // "chrn"
  // No lanes: table rebuilds send no messages and touch no counters.
  pool_->Run(static_cast<uint32_t>(rejoin_queue_.size()),
             [this, churn_seed](uint32_t /*worker*/, uint32_t task) {
               const net::PeerId peer = rejoin_queue_[task];
               // Streams key off the peer id, not the task index, so a
               // member's rebuild draws are independent of how many
               // other members rejoined the same round.
               Rng rng(Mix64(HashCombine(churn_seed, peer)));
               overlay_->RejoinNode(peer, rng);
             });
}

void PdhtSystem::OnChurnFlip(net::PeerId peer, bool online) {
  network_->SetOnline(peer, online);
  if (!online) return;
  if (!nodes_[peer].is_dht_member()) return;
  // Rejoin: refresh routing state (piggybacked, free) and pull missed
  // replica updates (one pull + one response).
  if (overlay_) {
    if (defer_rejoins_) {
      rejoin_queue_.push_back(peer);
    } else {
      overlay_->OnPeerRejoin(peer);
    }
  }
  network_->CountOnly(net::MessageType::kReplicaPull, 2);
}

void PdhtSystem::ChurnTrampoline(void* ctx, uint32_t peer, bool online,
                                 double /*when*/) {
  static_cast<PdhtSystem*>(ctx)->OnChurnFlip(peer, online);
}

void PdhtSystem::ShiftPopularity() { workload_->ShufflePopularity(); }

void PdhtSystem::RotatePopularity(uint64_t offset) {
  workload_->RotatePopularity(offset);
}

double PdhtSystem::EffectiveKeyTtl() const {
  if (config_.autotune_ttl && autotuner_.HasEnoughData()) {
    return autotuner_.RecommendedTtl();
  }
  return key_ttl_;
}

uint64_t PdhtSystem::IndexedKeyCount() const { return residency_.size(); }

uint32_t PdhtSystem::DhtMemberCount() const {
  return static_cast<uint32_t>(dht_members_.size());
}

double PdhtSystem::TailMessageRate(size_t tail) const {
  return engine_.Series(kSeriesMsgTotal).TailMean(tail);
}

double PdhtSystem::TailHitRate(size_t tail) const {
  return engine_.Series(kSeriesHitRate).TailMean(tail);
}

RunSnapshot PdhtSystem::Snapshot(size_t tail) const {
  RunSnapshot snap;
  for (const std::string& name : engine_.SeriesNames()) {
    snap.series_tail[name] = engine_.Series(name).TailMean(tail);
  }
  snap.index_keys = IndexedKeyCount();
  snap.effective_key_ttl = EffectiveKeyTtl();
  snap.dht_members = DhtMemberCount();
  if (network_->deferred_delivery()) {
    snap.latency[kMetricLookupRttMean] = lookup_rtt_ms_.mean();
    snap.latency[kMetricLookupRttP50] = lookup_rtt_ms_.Quantile(0.5);
    snap.latency[kMetricLookupRttP95] = lookup_rtt_ms_.Quantile(0.95);
    snap.latency[kMetricLookupRttP99] = lookup_rtt_ms_.Quantile(0.99);
    snap.latency[kMetricLookupRttCount] =
        static_cast<double>(lookup_rtt_ms_.count());
    const uint64_t deferred = network_->DeferredCount();
    snap.latency[kMetricLinkDelayMean] =
        deferred == 0 ? 0.0
                      : network_->total_latency_s() * 1e3 /
                            static_cast<double>(deferred);
    snap.latency[kMetricLookupStretch] =
        lookup_direct_ms_.mean() > 0.0
            ? lookup_rtt_ms_.mean() / lookup_direct_ms_.mean()
            : 0.0;
    snap.latency[kMetricLookupHopsMean] = lookup_hops_.mean();
    snap.latency[kMetricLookupHopsP95] = lookup_hops_.Quantile(0.95);
    snap.latency[kMetricLookupTimeouts] =
        static_cast<double>(network_->TimeoutCount());
    if (config_.replica_route) {
      snap.latency[kMetricLookupFailovers] =
          static_cast<double>(network_->FailoverCount());
    }
    // Per-hop RTT means, keyed by hop index; only buckets that collected
    // samples emit a metric (blind runs emit none, keeping their
    // snapshots unchanged).
    for (size_t k = 0; k < hop_rtt_ms_.size(); ++k) {
      if (hop_rtt_ms_[k].count() == 0) continue;
      snap.latency[std::string(kMetricLookupHopRttPrefix) +
                   std::to_string(k)] = hop_rtt_ms_[k].mean();
    }
  }
  return snap;
}

}  // namespace pdht::core
