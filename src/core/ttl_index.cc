#include "core/ttl_index.h"

#include <cassert>

namespace pdht::core {

TtlIndex::TtlIndex(uint64_t capacity) : capacity_(capacity) {}

uint64_t TtlIndex::Put(uint64_t key, double now, double ttl) {
  assert(ttl > 0.0);
  uint64_t displaced = kNoKey;
  auto it = map_.find(key);
  if (it == map_.end() && capacity_ > 0 && map_.size() >= capacity_) {
    // Displace the entry nearest to expiry.
    Compact();
    while (!heap_.empty()) {
      HeapEntry top = heap_.top();
      auto vit = map_.find(top.key);
      if (vit == map_.end() || vit->second.generation != top.generation) {
        heap_.pop();  // stale heap entry
        continue;
      }
      heap_.pop();
      map_.erase(vit);
      displaced = top.key;
      break;
    }
  }
  double expires = now + ttl;
  uint64_t gen = next_generation_++;
  map_[key] = MapEntry{expires, gen};
  heap_.push(HeapEntry{expires, key, gen});
  return displaced;
}

bool TtlIndex::Contains(uint64_t key, double now) const {
  auto it = map_.find(key);
  return it != map_.end() && it->second.expires > now;
}

bool TtlIndex::Touch(uint64_t key, double now, double ttl) {
  auto it = map_.find(key);
  if (it == map_.end() || it->second.expires <= now) return false;
  double expires = now + ttl;
  uint64_t gen = next_generation_++;
  it->second = MapEntry{expires, gen};
  heap_.push(HeapEntry{expires, key, gen});
  return true;
}

bool TtlIndex::Erase(uint64_t key) {
  return map_.erase(key) > 0;  // heap entries become stale, skipped later
}

double TtlIndex::ExpiryOf(uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kNever : it->second.expires;
}

std::vector<uint64_t> TtlIndex::Keys() const {
  std::vector<uint64_t> out;
  out.reserve(map_.size());
  ForEachKey([&out](uint64_t k) { out.push_back(k); });
  return out;
}

void TtlIndex::Compact() {
  // Drop stale heap heads so capacity displacement sees a live entry.
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    auto it = map_.find(top.key);
    if (it != map_.end() && it->second.generation == top.generation) break;
    heap_.pop();
  }
}

}  // namespace pdht::core
