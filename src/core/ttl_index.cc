#include "core/ttl_index.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/hash.h"

namespace pdht::core {

namespace {

size_t Pow2AtLeast(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TtlIndex::TtlIndex(uint64_t capacity, SlabArena* arena)
    : arena_(arena), capacity_(capacity) {}

TtlIndex::~TtlIndex() { ReleaseStorage(); }

TtlIndex::TtlIndex(TtlIndex&& o) noexcept
    : arena_(o.arena_),
      capacity_(o.capacity_),
      next_generation_(o.next_generation_),
      slots_(o.slots_),
      slot_cap_(o.slot_cap_),
      live_(o.live_),
      heap_(o.heap_),
      heap_size_(o.heap_size_),
      heap_cap_(o.heap_cap_) {
  o.slots_ = nullptr;
  o.slot_cap_ = 0;
  o.live_ = 0;
  o.heap_ = nullptr;
  o.heap_size_ = 0;
  o.heap_cap_ = 0;
}

TtlIndex& TtlIndex::operator=(TtlIndex&& o) noexcept {
  if (this == &o) return *this;
  ReleaseStorage();
  arena_ = o.arena_;
  capacity_ = o.capacity_;
  next_generation_ = o.next_generation_;
  slots_ = std::exchange(o.slots_, nullptr);
  slot_cap_ = std::exchange(o.slot_cap_, size_t{0});
  live_ = std::exchange(o.live_, size_t{0});
  heap_ = std::exchange(o.heap_, nullptr);
  heap_size_ = std::exchange(o.heap_size_, size_t{0});
  heap_cap_ = std::exchange(o.heap_cap_, size_t{0});
  return *this;
}

void* TtlIndex::AllocBlock(size_t bytes) {
  return arena_ != nullptr ? arena_->Allocate(bytes) : std::malloc(bytes);
}

void TtlIndex::FreeBlock(void* p, size_t bytes) {
  if (p == nullptr) return;
  if (arena_ != nullptr) {
    arena_->Free(p, bytes);
  } else {
    std::free(p);
  }
}

void TtlIndex::ReleaseStorage() {
  FreeBlock(slots_, slot_cap_ * sizeof(Slot));
  FreeBlock(heap_, heap_cap_ * sizeof(HeapEntry));
  slots_ = nullptr;
  slot_cap_ = 0;
  live_ = 0;
  heap_ = nullptr;
  heap_size_ = 0;
  heap_cap_ = 0;
}

size_t TtlIndex::ProbeStart(uint64_t key) const {
  return static_cast<size_t>(Mix64(key)) & (slot_cap_ - 1);
}

size_t TtlIndex::FindSlot(uint64_t key) const {
  if (slot_cap_ == 0) return 0;
  const size_t mask = slot_cap_ - 1;
  size_t i = ProbeStart(key);
  while (slots_[i].key != kNoKey) {
    if (slots_[i].key == key) return i;
    i = (i + 1) & mask;
  }
  return slot_cap_;
}

void TtlIndex::InsertSlot(uint64_t key, double expires,
                          uint64_t generation) {
  const size_t mask = slot_cap_ - 1;
  size_t i = ProbeStart(key);
  while (slots_[i].key != kNoKey) i = (i + 1) & mask;
  slots_[i] = Slot{key, expires, generation};
  ++live_;
}

void TtlIndex::EraseSlotAt(size_t i) {
  // Backward-shift deletion: pull cluster entries whose probe path spans
  // the hole, so lookups never need tombstones.
  const size_t mask = slot_cap_ - 1;
  size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (slots_[j].key == kNoKey) break;
    const size_t ideal = ProbeStart(slots_[j].key);
    if (((j - ideal) & mask) >= ((j - i) & mask)) {
      slots_[i] = slots_[j];
      i = j;
    }
  }
  slots_[i].key = kNoKey;
  --live_;
}

void TtlIndex::GrowTable() {
  if (slot_cap_ == 0) {
    // Lazy first allocation; a capacity-bounded index sizes its table
    // once (displacement keeps live_ <= capacity_, so it never regrows).
    slot_cap_ =
        capacity_ > 0 ? Pow2AtLeast(capacity_ + capacity_ / 3 + 1) : 16;
    slots_ = static_cast<Slot*>(AllocBlock(slot_cap_ * sizeof(Slot)));
    for (size_t i = 0; i < slot_cap_; ++i) slots_[i].key = kNoKey;
    return;
  }
  Slot* old = slots_;
  const size_t old_cap = slot_cap_;
  slot_cap_ = old_cap * 2;
  slots_ = static_cast<Slot*>(AllocBlock(slot_cap_ * sizeof(Slot)));
  for (size_t i = 0; i < slot_cap_; ++i) slots_[i].key = kNoKey;
  live_ = 0;
  for (size_t i = 0; i < old_cap; ++i) {
    if (old[i].key != kNoKey) {
      InsertSlot(old[i].key, old[i].expires, old[i].generation);
    }
  }
  FreeBlock(old, old_cap * sizeof(Slot));
}

namespace {
inline bool HeapAfter(double ae, uint64_t ak, double be, uint64_t bk) {
  // "a pops later than b": the std max-heap comparator that yields a
  // min-heap by (expires, key).
  if (ae != be) return ae > be;
  return ak > bk;
}
}  // namespace

void TtlIndex::HeapPush(double expires, uint64_t key, uint64_t generation) {
  if (heap_size_ == heap_cap_) {
    if (heap_size_ > 4 * live_ + 64) {
      // Stale entries (superseded by Touch/Put) dominate: rebuild from
      // the table instead of growing.  Pop order is (expires, key)-
      // sorted either way, so eviction behaviour is unchanged.
      HeapRebuild();
    } else {
      const size_t new_cap = heap_cap_ == 0 ? 16 : heap_cap_ * 2;
      HeapEntry* grown =
          static_cast<HeapEntry*>(AllocBlock(new_cap * sizeof(HeapEntry)));
      if (heap_size_ > 0) {
        std::memcpy(grown, heap_, heap_size_ * sizeof(HeapEntry));
      }
      FreeBlock(heap_, heap_cap_ * sizeof(HeapEntry));
      heap_ = grown;
      heap_cap_ = new_cap;
    }
  }
  // Sift-up.
  size_t i = heap_size_++;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!HeapAfter(heap_[parent].expires, heap_[parent].key, expires, key)) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = HeapEntry{expires, key, generation};
}

void TtlIndex::HeapRebuild() {
  heap_size_ = 0;
  for (size_t i = 0; i < slot_cap_; ++i) {
    if (slots_[i].key != kNoKey) {
      heap_[heap_size_++] =
          HeapEntry{slots_[i].expires, slots_[i].key, slots_[i].generation};
    }
  }
  std::make_heap(heap_, heap_ + heap_size_,
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return HeapAfter(a.expires, a.key, b.expires, b.key);
                 });
}

bool TtlIndex::PopExpiredOne(double now, uint64_t* key) {
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return HeapAfter(a.expires, a.key, b.expires, b.key);
  };
  while (heap_size_ > 0 && heap_[0].expires <= now) {
    HeapEntry top = heap_[0];
    std::pop_heap(heap_, heap_ + heap_size_, later);
    --heap_size_;
    const size_t s = FindSlot(top.key);
    if (s >= slot_cap_ || slots_[s].generation != top.generation) {
      continue;  // superseded by a Touch/Put or already erased
    }
    EraseSlotAt(s);
    *key = top.key;
    return true;
  }
  return false;
}

uint64_t TtlIndex::Put(uint64_t key, double now, double ttl) {
  assert(ttl > 0.0);
  assert(key != kNoKey);
  uint64_t displaced = kNoKey;
  const size_t s = FindSlot(key);
  const double expires = now + ttl;
  const uint64_t gen = next_generation_++;
  if (s < slot_cap_) {
    slots_[s].expires = expires;
    slots_[s].generation = gen;
  } else {
    if (capacity_ > 0 && live_ >= capacity_) {
      // Displace the live entry nearest to expiry.
      const auto later = [](const HeapEntry& a, const HeapEntry& b) {
        return HeapAfter(a.expires, a.key, b.expires, b.key);
      };
      while (heap_size_ > 0) {
        HeapEntry top = heap_[0];
        std::pop_heap(heap_, heap_ + heap_size_, later);
        --heap_size_;
        const size_t vs = FindSlot(top.key);
        if (vs >= slot_cap_ || slots_[vs].generation != top.generation) {
          continue;  // stale heap entry
        }
        EraseSlotAt(vs);
        displaced = top.key;
        break;
      }
    }
    if (slot_cap_ == 0 || (live_ + 1) * 4 > slot_cap_ * 3) GrowTable();
    InsertSlot(key, expires, gen);
  }
  HeapPush(expires, key, gen);
  return displaced;
}

bool TtlIndex::Contains(uint64_t key, double now) const {
  const size_t s = FindSlot(key);
  return s < slot_cap_ && slots_[s].expires > now;
}

bool TtlIndex::Touch(uint64_t key, double now, double ttl) {
  const size_t s = FindSlot(key);
  if (s >= slot_cap_ || slots_[s].expires <= now) return false;
  const double expires = now + ttl;
  const uint64_t gen = next_generation_++;
  slots_[s].expires = expires;
  slots_[s].generation = gen;
  HeapPush(expires, key, gen);
  return true;
}

bool TtlIndex::Erase(uint64_t key) {
  const size_t s = FindSlot(key);
  if (s >= slot_cap_) return false;
  EraseSlotAt(s);  // heap entries become stale, skipped later
  return true;
}

double TtlIndex::ExpiryOf(uint64_t key) const {
  const size_t s = FindSlot(key);
  return s >= slot_cap_ ? kNever : slots_[s].expires;
}

std::vector<uint64_t> TtlIndex::Keys() const {
  std::vector<uint64_t> out;
  out.reserve(live_);
  ForEachKey([&out](uint64_t k) { out.push_back(k); });
  return out;
}

}  // namespace pdht::core
