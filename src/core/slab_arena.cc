#include "core/slab_arena.h"

#include <cassert>
#include <cstdlib>

namespace pdht::core {

SlabArena::SlabArena(size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  assert(chunk_bytes >= kMinBlock);
}

SlabArena::~SlabArena() {
  for (void* c : chunks_) std::free(c);
}

size_t SlabArena::ClassOf(size_t bytes) {
  size_t cls = 0;
  size_t size = kMinBlock;
  while (size < bytes) {
    size <<= 1;
    ++cls;
  }
  return cls;
}

void* SlabArena::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  const size_t cls = ClassOf(bytes);
  const size_t size = kMinBlock << cls;
  if (void* p = free_lists_[cls]; p != nullptr) {
    free_lists_[cls] = *static_cast<void**>(p);
    return p;
  }
  if (size > bump_left_) {
    const size_t chunk = size > chunk_bytes_ ? size : chunk_bytes_;
    char* mem = static_cast<char*>(std::malloc(chunk));
    assert(mem != nullptr);
    chunks_.push_back(mem);
    bytes_reserved_ += chunk;
    bump_ = mem;
    bump_left_ = chunk;
  }
  char* p = bump_;
  bump_ += size;
  bump_left_ -= size;
  return p;
}

void SlabArena::Free(void* p, size_t bytes) {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const size_t cls = ClassOf(bytes);
  *static_cast<void**>(p) = free_lists_[cls];
  free_lists_[cls] = p;
}

}  // namespace pdht::core
