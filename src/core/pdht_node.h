// Per-peer state in the PDHT system.
//
// A peer participating in the structured overlay ("active peer") carries a
// TTL-evicting index shard bounded by the scenario's per-peer storage
// capacity (stor).  Non-member peers carry no index state; all peers can
// originate queries and hold content replicas (articles), which are
// tracked by ReplicaPlacement in the unstructured substrate.

#ifndef PDHT_CORE_PDHT_NODE_H_
#define PDHT_CORE_PDHT_NODE_H_

#include <cstdint>

#include "core/ttl_index.h"
#include "net/message.h"

namespace pdht::core {

class PdhtNode {
 public:
  PdhtNode() : PdhtNode(net::kInvalidPeer, 0) {}
  /// `arena`, when given, backs the node's index storage and must outlive
  /// the node (PdhtSystem declares its arena before its node table).
  PdhtNode(net::PeerId id, uint64_t index_capacity,
           SlabArena* arena = nullptr)
      : id_(id), index_(index_capacity, arena) {}

  net::PeerId id() const { return id_; }

  TtlIndex& index() { return index_; }
  const TtlIndex& index() const { return index_; }

  bool is_dht_member() const { return is_dht_member_; }
  void set_dht_member(bool v) { is_dht_member_ = v; }

  /// Lifetime query statistics (originated by this peer).
  uint64_t queries_sent() const { return queries_sent_; }
  uint64_t hits() const { return hits_; }
  void RecordQuery(bool hit) {
    ++queries_sent_;
    if (hit) ++hits_;
  }
  double HitRate() const {
    return queries_sent_ == 0
               ? 0.0
               : static_cast<double>(hits_) /
                     static_cast<double>(queries_sent_);
  }

 private:
  net::PeerId id_;
  TtlIndex index_;
  bool is_dht_member_ = false;
  uint64_t queries_sent_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace pdht::core

#endif  // PDHT_CORE_PDHT_NODE_H_
