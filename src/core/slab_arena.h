// Slab arena for per-node index storage.
//
// At the 100k-1M peer scale a simulation carries one TtlIndex per DHT
// member; backing each with node-based containers means millions of tiny
// allocations, pointer-chasing on every lookup, and ~100 bytes of
// allocator overhead per entry.  SlabArena instead hands out power-of-two
// blocks carved from large chunks: allocation is a free-list pop or a
// bump-pointer advance, freed blocks are recycled by size class, and all
// storage is released in one sweep when the arena (i.e. the owning
// system) dies.
//
// Single-threaded by design: the sharded round engine only mutates index
// storage in serial phases (publish/merge), so the arena needs no locks.

#ifndef PDHT_CORE_SLAB_ARENA_H_
#define PDHT_CORE_SLAB_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdht::core {

class SlabArena {
 public:
  /// `chunk_bytes` is the granularity of the arena's own allocations;
  /// requests larger than a chunk get a dedicated chunk.
  explicit SlabArena(size_t chunk_bytes = 1 << 20);
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Returns a 16-byte-aligned block of at least `bytes` (rounded up to a
  /// power-of-two size class, minimum 64).  Never null for bytes > 0.
  void* Allocate(size_t bytes);

  /// Recycles a block previously returned by Allocate with the same
  /// `bytes` request; it becomes available to later Allocate calls of the
  /// same size class.  No storage is returned to the OS until the arena
  /// is destroyed.
  void Free(void* p, size_t bytes);

  /// Total bytes obtained from the OS so far.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kMinBlock = 64;
  static constexpr size_t kNumClasses = 48;  // 64 << 47 covers any size_t

  static size_t ClassOf(size_t bytes);

  size_t chunk_bytes_;
  size_t bytes_reserved_ = 0;
  std::vector<void*> chunks_;
  // Intrusive free lists: a freed block's first word points to the next
  // free block of the same class.
  void* free_lists_[kNumClasses] = {};
  char* bump_ = nullptr;  ///< next free byte in the current chunk
  size_t bump_left_ = 0;  ///< bytes remaining in the current chunk
};

}  // namespace pdht::core

#endif  // PDHT_CORE_SLAB_ARENA_H_
