// Persistent worker pool for the sharded round engine.
//
// The round loop's parallel phases (queries, eviction) fan a fixed task
// list out over a small set of long-lived threads, twice or more per
// simulated round -- at 100k+ rounds/hour, thread start-up cost per phase
// would dwarf the work.  ShardPool keeps num_threads - 1 workers parked on
// a condition variable between phases; Run() wakes them, the *caller*
// participates as worker 0 (so `--sim-threads=N` means N CPUs busy, and
// N == 1 degenerates to a plain inline loop with no synchronization at
// all), and tasks are claimed from a shared atomic counter so uneven task
// costs self-balance.
//
// Determinism contract: the pool assigns *workers* to *tasks*
// nondeterministically -- any task may run on any worker in any order.
// Callers must therefore make task bodies depend only on the task index
// (per-task Rng streams, per-task result buffers) and use the worker
// index solely to select disjoint scratch (lookup slots, counter lanes).
// Run() is a full barrier: it returns only after every task completed.

#ifndef PDHT_SIM_SHARD_POOL_H_
#define PDHT_SIM_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdht::sim {

class ShardPool {
 public:
  /// One phase's task body: invoked as fn(worker, task) with
  /// worker in [0, num_threads) and task in [0, num_tasks), each task
  /// exactly once.
  using TaskFn = std::function<void(uint32_t worker, uint32_t task)>;

  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// background workers (none for num_threads <= 1).
  explicit ShardPool(uint32_t num_threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn over [0, num_tasks), caller participating as worker 0;
  /// returns after all tasks finish (barrier).  Not reentrant.
  void Run(uint32_t num_tasks, const TaskFn& fn);

 private:
  void WorkerLoop(uint32_t worker);
  void ClaimLoop(uint32_t worker);

  const uint32_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t job_gen_ = 0;       ///< bumped per Run(); workers wake on change
  uint32_t idle_workers_ = 0;  ///< background workers parked at the barrier
  bool stop_ = false;

  // Current job; valid while job_gen_ names it.
  const TaskFn* job_ = nullptr;
  uint32_t job_tasks_ = 0;
  std::atomic<uint32_t> next_task_{0};
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_SHARD_POOL_H_
