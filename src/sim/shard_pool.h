// Persistent worker pool for the sharded round engine.
//
// The round loop's parallel phases (maintenance, queries, eviction,
// updates) fan a fixed task list out over a small set of long-lived
// threads, several times per simulated round -- at 100k+ rounds/hour,
// thread start-up cost per phase would dwarf the work.  ShardPool keeps
// num_threads - 1 workers parked on a condition variable between phases;
// Run() wakes them, the *caller* participates as worker 0 (so
// `--sim-threads=N` means N CPUs busy, and N == 1 degenerates to a plain
// inline loop with no synchronization at all), and tasks are claimed from
// a shared atomic counter so uneven task costs self-balance.
//
// Claiming is *chunked*: each fetch_add grabs a run of `chunk` consecutive
// task indices instead of one, so phases with many tiny tasks (per-member
// maintenance probes, per-shard eviction sweeps) pay one atomic RMW per
// chunk rather than per task.  The claim counter lives on its own cache
// line so the RMW traffic never false-shares with the pool's mutex or job
// descriptor.  Chunking changes which worker runs which task, never which
// tasks run -- the determinism contract below is unaffected.
//
// Determinism contract: the pool assigns *workers* to *tasks*
// nondeterministically -- any task may run on any worker in any order.
// Callers must therefore make task bodies depend only on the task index
// (per-task Rng streams, per-task result buffers) and use the worker
// index solely to select disjoint scratch (lookup slots, counter lanes).
// Run() is a full barrier: it returns only after every task completed.

#ifndef PDHT_SIM_SHARD_POOL_H_
#define PDHT_SIM_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdht::sim {

class ShardPool {
 public:
  /// One phase's task body: invoked as fn(worker, task) with
  /// worker in [0, num_threads) and task in [0, num_tasks), each task
  /// exactly once.
  using TaskFn = std::function<void(uint32_t worker, uint32_t task)>;

  /// `num_threads` counts the caller: the pool spawns num_threads - 1
  /// background workers (none for num_threads <= 1).
  explicit ShardPool(uint32_t num_threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn over [0, num_tasks), caller participating as worker 0;
  /// returns after all tasks finish (barrier).  Not reentrant.
  /// `chunk` is the number of consecutive task indices claimed per atomic
  /// RMW; 0 picks a heuristic (~16 claims per thread, capped) that keeps
  /// both contention and load imbalance low.
  void Run(uint32_t num_tasks, const TaskFn& fn, uint32_t chunk = 0);

 private:
  void WorkerLoop(uint32_t worker);
  void ClaimLoop(uint32_t worker);

  const uint32_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t job_gen_ = 0;       ///< bumped per Run(); workers wake on change
  uint32_t idle_workers_ = 0;  ///< background workers parked at the barrier
  bool stop_ = false;

  // Current job; valid while job_gen_ names it.
  const TaskFn* job_ = nullptr;
  uint32_t job_tasks_ = 0;
  uint32_t job_chunk_ = 1;

  // The claim counter is the only word every worker hammers during a
  // phase; isolate it on its own cache line so claim RMWs never
  // false-share with the mutex/job fields above (touched around parking).
  alignas(64) std::atomic<uint32_t> next_task_{0};
  [[maybe_unused]] char pad_after_counter_[64 - sizeof(std::atomic<uint32_t>)];
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_SHARD_POOL_H_
