// Round-based simulation driver.
//
// The paper measures everything in messages per round (one round = one
// second).  RoundEngine advances simulated time one round at a time,
// invoking registered per-round actors in a fixed order and recording
// per-round metric deltas into time series.  Fine-grained events within a
// round live in the embedded EventQueue -- including deferred message
// deliveries scheduled by a non-immediate net::DeliveryModel: the engine
// drains the queue up to every round boundary, so in-flight messages land
// at their scheduled time inside the round (metric probes run after the
// drain and therefore observe a quiesced round).  A delivery scheduled
// past the boundary stays queued and lands in the round it belongs to.

#ifndef PDHT_SIM_ROUND_ENGINE_H_
#define PDHT_SIM_ROUND_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "stats/counter.h"
#include "stats/time_series.h"

namespace pdht::sim {

/// Context handed to actors each round.
struct RoundContext {
  uint64_t round = 0;      ///< 0-based round index.
  double time = 0.0;       ///< simulated seconds at the start of the round.
  EventQueue* events = nullptr;
  CounterRegistry* counters = nullptr;
};

using RoundActor = std::function<void(RoundContext&)>;

/// Per-round metric probe: returns the value to append to the named series
/// at the end of each round.
using MetricProbe = std::function<double(const RoundContext&)>;

class RoundEngine {
 public:
  explicit RoundEngine(double round_length_s = 1.0);

  /// Registers an actor called once per round, in registration order.
  void AddActor(std::string name, RoundActor actor);

  /// Registers a named end-of-round metric probe; its samples accumulate in
  /// Series(name).
  void AddMetric(std::string name, MetricProbe probe);

  /// Convenience: records the per-round delta of a counter-registry prefix
  /// (e.g. "msg.") as a metric, which yields messages-per-round directly.
  /// The prefix is resolved to an interned counter group at registration
  /// time and the metric's last-value slot lives in the probe itself, so
  /// the per-round cost is an O(group size) integer sum -- no string work,
  /// no map lookups.
  void AddCounterRateMetric(std::string name, std::string counter_prefix);

  /// Single-counter variant: the per-round delta of one interned counter
  /// (e.g. a Network outcome tally like "net.timeout"), one array read
  /// per round instead of a group sum.
  void AddCounterRateMetric(std::string name, CounterId counter);

  /// Opt-in per-phase wall-clock instrumentation: declares one series
  /// "round.phase.<name>.ms" per phase.  Actors report measured
  /// milliseconds into AddPhaseMs during the round; the engine appends
  /// each phase's accumulated value (0.0 when it never ran) after the
  /// metric probes and resets the accumulators.  Off by default -- the
  /// series would carry wall-clock noise into snapshots and break the
  /// bit-identity the determinism suite asserts, so only explicitly
  /// instrumented runs (bench_perf_roundloop --phase-times) pay for it.
  void EnablePhaseTiming(std::vector<std::string> phases);
  bool phase_timing() const { return !phase_series_.empty(); }

  /// Accumulates `ms` into declared phase `phase` (index into the
  /// EnablePhaseTiming list) for the current round.  No-op guard is the
  /// caller's job: check phase_timing() before measuring.
  void AddPhaseMs(size_t phase, double ms) { phase_pending_[phase] += ms; }

  /// The series name a phase records under ("round.phase.<name>.ms").
  static std::string PhaseSeriesName(const std::string& phase) {
    return "round.phase." + phase + ".ms";
  }

  /// Installs a replacement for the round-boundary drain -- the sharded
  /// engine's partitioned drain (EventQueue::DrainBoundaryPartitioned)
  /// plugs in here.  The drainer is called once per round with the
  /// boundary time and returns the number of events run; it must leave
  /// the queue in the same state DrainBoundary(until) would (same events
  /// run, now() advanced to the boundary).  nullptr restores the
  /// built-in serial drain.
  void SetBoundaryDrainer(std::function<uint64_t(double until)> drainer) {
    boundary_drainer_ = std::move(drainer);
  }

  /// Runs `rounds` rounds.  Each round: actors fire, then intra-round
  /// events up to the round boundary, then metric probes.
  void Run(uint64_t rounds);

  uint64_t current_round() const { return round_; }
  /// Events drained by the most recent round's boundary drain (deferred
  /// deliveries, probe timeouts, ...) and the running total across the
  /// run.  Cheap observability for delivery-model experiments.
  uint64_t last_round_events() const { return last_round_events_; }
  uint64_t total_events_run() const { return total_events_run_; }
  double now() const { return queue_.now(); }
  EventQueue& events() { return queue_; }
  CounterRegistry& counters() { return counters_; }

  const TimeSeries& Series(const std::string& name) const;
  bool HasSeries(const std::string& name) const;
  std::vector<std::string> SeriesNames() const;

 private:
  double round_length_;
  uint64_t round_ = 0;
  uint64_t last_round_events_ = 0;
  uint64_t total_events_run_ = 0;
  EventQueue queue_;
  CounterRegistry counters_;
  std::vector<std::pair<std::string, RoundActor>> actors_;
  struct Metric {
    std::string name;
    MetricProbe probe;
    TimeSeries* series;  ///< cached &series_[name]; map nodes are stable
  };
  std::vector<Metric> metrics_;
  std::map<std::string, TimeSeries> series_;
  // Phase timing (EnablePhaseTiming): per-phase pending accumulators and
  // their series, appended/reset once per round.
  std::vector<double> phase_pending_;
  std::vector<TimeSeries*> phase_series_;
  /// Index of the declared phase named "drain", if any: the engine times
  /// its own boundary drain into it (actors can't -- the drain runs after
  /// them).  SIZE_MAX = not declared.
  size_t drain_phase_ = SIZE_MAX;
  std::function<uint64_t(double)> boundary_drainer_;
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_ROUND_ENGINE_H_
