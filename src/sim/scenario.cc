#include "sim/scenario.h"

#include <algorithm>

namespace pdht::sim {

namespace {

/// Mean over series[first, last) with the bounds clamped to the series;
/// 0 on an empty range.
double RangeMean(const std::vector<double>& series, size_t first,
                 size_t last) {
  first = std::min(first, series.size());
  last = std::min(last, series.size());
  if (first >= last) return 0.0;
  double sum = 0.0;
  for (size_t i = first; i < last; ++i) sum += series[i];
  return sum / static_cast<double>(last - first);
}

}  // namespace

const char* ScenarioKindName(ScenarioKind k) {
  switch (k) {
    case ScenarioKind::kNone:
      return "none";
    case ScenarioKind::kClusterOutage:
      return "cluster_outage";
  }
  return "unknown";
}

std::string ScenarioConfig::Validate() const {
  if (kind == ScenarioKind::kNone) return "";
  if (outage_end_round <= outage_start_round) {
    return "scenario.outage_end_round must be > outage_start_round";
  }
  return "";
}

RecoveryMetrics ComputeRecoveryMetrics(const std::vector<double>& series,
                                       uint64_t outage_start,
                                       uint64_t heal_round, size_t window,
                                       double threshold) {
  RecoveryMetrics m;
  const size_t n = series.size();
  const size_t start = static_cast<size_t>(outage_start);
  window = std::max<size_t>(window, 1);
  if (start >= n) return m;

  // Steady state: the window leading up to the outage.
  const size_t pre_first = start >= window ? start - window : 0;
  m.pre_outage_mean = RangeMean(series, pre_first, start);

  // Depth of the dip: worst forward-window mean from the outage on.
  m.worst_window = RangeMean(series, start, start + window);
  for (size_t r = start; r < n; ++r) {
    m.worst_window =
        std::min(m.worst_window, RangeMean(series, r, r + window));
  }

  // Recovery: first round at/after the heal whose forward window is back
  // within `threshold` of steady state.
  const double bar = threshold * m.pre_outage_mean;
  m.recovery_round = n;
  const size_t heal = std::min(static_cast<size_t>(heal_round), n);
  for (size_t r = heal; r < n; ++r) {
    if (RangeMean(series, r, r + window) >= bar) {
      m.recovery_round = r;
      m.recovered = true;
      break;
    }
  }
  if (m.recovered && m.recovery_round > heal_round) {
    m.recovery_rounds = m.recovery_round - heal_round;
  }
  return m;
}

}  // namespace pdht::sim
