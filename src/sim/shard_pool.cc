#include "sim/shard_pool.h"

#include <algorithm>

namespace pdht::sim {

ShardPool::ShardPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  threads_.reserve(num_threads_ - 1);
  for (uint32_t w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::ClaimLoop(uint32_t worker) {
  const TaskFn& fn = *job_;
  const uint32_t num_tasks = job_tasks_;
  const uint32_t chunk = job_chunk_;
  // Chunked claiming: one RMW buys `chunk` consecutive tasks.  The
  // counter overshoots num_tasks by at most num_threads * chunk, far from
  // the uint32 range for any real phase.
  for (uint32_t base = next_task_.fetch_add(chunk, std::memory_order_relaxed);
       base < num_tasks;
       base = next_task_.fetch_add(chunk, std::memory_order_relaxed)) {
    const uint32_t end = std::min(base + chunk, num_tasks);
    for (uint32_t t = base; t < end; ++t) fn(worker, t);
  }
}

void ShardPool::WorkerLoop(uint32_t worker) {
  uint64_t seen_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      cv_done_.notify_one();
      cv_start_.wait(lock,
                     [&] { return stop_ || job_gen_ != seen_gen; });
      if (stop_) return;
      seen_gen = job_gen_;
      --idle_workers_;
    }
    ClaimLoop(worker);
  }
}

void ShardPool::Run(uint32_t num_tasks, const TaskFn& fn, uint32_t chunk) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    // Inline fast path: no atomics, no wakeups.  The single-task case
    // also lands here so phases with one shard pay nothing for the pool.
    for (uint32_t t = 0; t < num_tasks; ++t) fn(0, t);
    return;
  }
  if (chunk == 0) {
    // ~16 claims per thread balances contention (fewer RMWs) against
    // load imbalance (the last chunks may straggle); the cap keeps one
    // claim from serializing a visible fraction of a small phase.
    chunk = std::min(256u, std::max(1u, num_tasks / (num_threads_ * 16)));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // All workers must be parked before the job state is re-armed (a
    // straggler from the previous phase must not see the new job's
    // counter).  Run() is a barrier, so this only waits for workers that
    // are mid-park.
    cv_done_.wait(lock, [&] { return idle_workers_ == num_threads_ - 1; });
    job_ = &fn;
    job_tasks_ = num_tasks;
    job_chunk_ = chunk;
    next_task_.store(0, std::memory_order_relaxed);
    ++job_gen_;
  }
  cv_start_.notify_all();
  ClaimLoop(0);
  // The claim counter is exhausted; wait for in-flight tasks to finish
  // (workers park again when they fail to claim).
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return idle_workers_ == num_threads_ - 1; });
}

}  // namespace pdht::sim
