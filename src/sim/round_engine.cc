#include "sim/round_engine.h"

#include <cassert>
#include <chrono>
#include <stdexcept>

namespace pdht::sim {

RoundEngine::RoundEngine(double round_length_s)
    : round_length_(round_length_s) {
  assert(round_length_s > 0.0);
}

void RoundEngine::AddActor(std::string name, RoundActor actor) {
  actors_.emplace_back(std::move(name), std::move(actor));
}

void RoundEngine::AddMetric(std::string name, MetricProbe probe) {
  auto [it, inserted] = series_.emplace(name, TimeSeries(name));
  (void)inserted;
  metrics_.push_back(Metric{std::move(name), std::move(probe), &it->second});
}

void RoundEngine::AddCounterRateMetric(std::string name,
                                       std::string counter_prefix) {
  // Resolve the prefix to an interned group once; the last-value slot
  // lives in the closure, so each round is GroupSum + a subtraction.
  GroupId group = counters_.InternPrefix(counter_prefix);
  AddMetric(std::move(name),
            [this, group, last = uint64_t{0}](const RoundContext&) mutable {
              uint64_t total = counters_.GroupSum(group);
              uint64_t delta = total - last;
              last = total;
              return static_cast<double>(delta);
            });
}

void RoundEngine::AddCounterRateMetric(std::string name, CounterId counter) {
  AddMetric(std::move(name),
            [this, counter, last = uint64_t{0}](const RoundContext&) mutable {
              uint64_t total = counters_.Value(counter);
              uint64_t delta = total - last;
              last = total;
              return static_cast<double>(delta);
            });
}

void RoundEngine::EnablePhaseTiming(std::vector<std::string> phases) {
  phase_pending_.assign(phases.size(), 0.0);
  phase_series_.clear();
  phase_series_.reserve(phases.size());
  drain_phase_ = SIZE_MAX;
  for (size_t i = 0; i < phases.size(); ++i) {
    const std::string name = PhaseSeriesName(phases[i]);
    auto [it, inserted] = series_.emplace(name, TimeSeries(name));
    (void)inserted;
    phase_series_.push_back(&it->second);
    // The boundary drain runs inside Run(), after the actors; a declared
    // "drain" phase is therefore timed by the engine itself.
    if (phases[i] == "drain") drain_phase_ = i;
  }
}

void RoundEngine::Run(uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    RoundContext ctx;
    ctx.round = round_;
    ctx.time = static_cast<double>(round_) * round_length_;
    ctx.events = &queue_;
    ctx.counters = &counters_;
    for (auto& [name, actor] : actors_) actor(ctx);
    // Boundary drain: every intra-round event -- deferred deliveries
    // included -- runs before the metric probes observe the round.  An
    // installed drainer (the sharded engine's partitioned drain) replaces
    // the built-in serial one.
    const double boundary = ctx.time + round_length_;
    if (drain_phase_ != SIZE_MAX) {
      const auto start = std::chrono::steady_clock::now();
      last_round_events_ = boundary_drainer_ ? boundary_drainer_(boundary)
                                             : queue_.DrainBoundary(boundary);
      AddPhaseMs(drain_phase_,
                 std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    } else {
      last_round_events_ = boundary_drainer_ ? boundary_drainer_(boundary)
                                             : queue_.DrainBoundary(boundary);
    }
    total_events_run_ += last_round_events_;
    for (auto& m : metrics_) {
      m.series->Append(m.probe(ctx));
    }
    for (size_t p = 0; p < phase_series_.size(); ++p) {
      phase_series_[p]->Append(phase_pending_[p]);
      phase_pending_[p] = 0.0;
    }
    ++round_;
  }
}

const TimeSeries& RoundEngine::Series(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) {
    throw std::out_of_range("no such series: " + name);
  }
  return it->second;
}

bool RoundEngine::HasSeries(const std::string& name) const {
  return series_.count(name) > 0;
}

std::vector<std::string> RoundEngine::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

}  // namespace pdht::sim
