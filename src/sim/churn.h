// Peer churn model.
//
// "P2P clients are extremely transient in nature [ChRa03]" -- the paper's
// routing-maintenance cost cRtn exists precisely because peers continuously
// join and leave.  We model each peer's availability as an alternating
// renewal process with exponentially distributed online sessions (mean
// `mean_online_s`) and offline gaps (mean `mean_offline_s`), matching the
// session-length modelling used for the [MaCa03] maintenance analysis.
// The stationary availability is mean_on / (mean_on + mean_off).
//
// This synthetic churn is our substitute for the Gnutella trace the paper
// cites (see DESIGN.md "Substitutions"): it exercises the identical code
// path -- stale routing entries appear at a controllable rate and must be
// detected by probing.
//
// Correlated failures (sim/scenario.h) layer a *forced-outage mask* on
// top of the i.i.d. renewal processes: ForceOffline(peer) pins a peer's
// effective state offline until Heal(peer), regardless of its underlying
// session state.  The mask is deliberately non-invasive to the renewal
// machinery -- the underlying sessions keep flipping (and keep drawing
// from the Rng stream) while a peer is forced down, so the random stream
// and post-heal trajectories are bit-identical whether or not an outage
// was injected; observers simply don't hear about flips of masked peers
// (their effective state isn't changing).

#ifndef PDHT_SIM_CHURN_H_
#define PDHT_SIM_CHURN_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace pdht::sim {

struct ChurnConfig {
  double mean_online_s = 3600.0;   ///< mean online session length.
  double mean_offline_s = 1800.0;  ///< mean offline gap.
  /// If false, peers never leave (static network; useful for protocol
  /// correctness tests that separate routing logic from churn).
  bool enabled = true;

  double StationaryAvailability() const {
    if (!enabled) return 1.0;
    return mean_online_s / (mean_online_s + mean_offline_s);
  }
};

/// Tracks the on/off state of `n` peers in simulated time.
///
/// Usage: call AdvanceTo(t) before reading states; transitions between the
/// previous and new time are applied in order.  Observers (the overlays)
/// register callbacks to react to state flips (e.g. invalidating routing
/// entries).
class ChurnModel {
 public:
  using TransitionFn = void (*)(void* ctx, uint32_t peer, bool online,
                                double when);

  ChurnModel(uint32_t num_peers, const ChurnConfig& config, Rng rng);

  /// Applies all transitions up to and including time `t`.
  void AdvanceTo(double t);

  /// Effective state: the renewal-process state masked by any forced
  /// outage.
  bool IsOnline(uint32_t peer) const {
    return online_[peer] && !forced_off_[peer];
  }
  uint32_t num_peers() const { return static_cast<uint32_t>(online_.size()); }
  uint32_t online_count() const { return online_count_; }
  const ChurnConfig& config() const { return config_; }
  double now() const { return now_; }

  /// Registers a transition observer (plain function + context to keep the
  /// hot path allocation-free).  Observers fire in registration order.
  void AddObserver(TransitionFn fn, void* ctx);

  // --- Forced outages (correlated-failure scenarios) -------------------

  /// Pins `peer`'s effective state offline until Heal, independent of its
  /// renewal process (which keeps running underneath -- see the header
  /// comment's determinism note).  Fires the offline observers iff the
  /// effective state actually flips.  Idempotent; consumes no randomness.
  void ForceOffline(uint32_t peer);

  /// Lifts a forced outage; fires the online observers iff the peer's
  /// underlying session state makes it effectively online again.
  /// Idempotent; consumes no randomness.
  void Heal(uint32_t peer);

  bool IsForcedOffline(uint32_t peer) const { return forced_off_[peer]; }

  /// Fraction of peers currently online.
  double OnlineFraction() const;

  /// Expected number of state flips per peer per second under the config
  /// (used to validate the model statistically).
  double ExpectedTransitionRate() const;

 private:
  void ScheduleNext(uint32_t peer);

  struct PendingFlip {
    double when;
    uint32_t peer;
    bool operator>(const PendingFlip& o) const {
      if (when != o.when) return when > o.when;
      return peer > o.peer;
    }
  };

  ChurnConfig config_;
  Rng rng_;
  std::vector<bool> online_;      ///< underlying renewal-process state
  std::vector<bool> forced_off_;  ///< forced-outage mask (scenarios)
  std::priority_queue<PendingFlip, std::vector<PendingFlip>,
                      std::greater<PendingFlip>>
      heap_;
  std::vector<std::pair<TransitionFn, void*>> observers_;
  uint32_t online_count_ = 0;
  double now_ = 0.0;
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_CHURN_H_
