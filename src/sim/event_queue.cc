#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace pdht::sim {

uint64_t EventQueue::ScheduleAt(double when, EventFn fn,
                                uint32_t shard_key) {
  if (when < now_) when = now_;
  uint64_t id = next_id_++;
  if (heap_.empty() || when > max_pending_when_) max_pending_when_ = when;
  heap_.push_back(Entry{when, next_seq_++, id, shard_key, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return id;
}

uint64_t EventQueue::ScheduleAfter(double delay, EventFn fn,
                                   uint32_t shard_key) {
  return ScheduleAt(now_ + delay, std::move(fn), shard_key);
}

bool EventQueue::Cancel(uint64_t id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_count_ > 0) --live_count_;
  return true;
}

bool EventQueue::IsCancelled(uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);  // tombstone consumed
  return true;
}

bool EventQueue::PopOne() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (IsCancelled(e.id)) continue;
    now_ = e.when;
    if (live_count_ > 0) --live_count_;
    e.fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(double until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (PopOne()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::RunBatchSerial() {
  uint64_t ran = 0;
  for (Entry& e : batch_) {
    if (IsCancelled(e.id)) continue;
    now_ = e.when;
    if (live_count_ > 0) --live_count_;
    e.fn();
    ++ran;
  }
  batch_.clear();
  return ran;
}

uint64_t EventQueue::DrainBoundary(double until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (max_pending_when_ <= until) {
      // Every pending event is due this round: take the whole container,
      // order it once, and run it.  Handlers may schedule new events while
      // the batch runs; those land in the (now empty) heap and are picked
      // up by the next loop iteration, exactly as with per-event pops.
      batch_.clear();
      batch_.swap(heap_);
      std::sort(batch_.begin(), batch_.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.seq < b.seq;
                });
      ran += RunBatchSerial();
    } else {
      // Mixed horizon: some events are due later; fall back to heap pops
      // for the due prefix.
      if (PopOne()) ++ran;
    }
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::DrainBoundaryPartitioned(double until,
                                              uint32_t num_shards,
                                              const ParallelFor& pf) {
  if (num_shards <= 1) return DrainBoundary(until);
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (max_pending_when_ > until) {
      // Mixed horizon: heap pops for the due prefix, as DrainBoundary.
      if (PopOne()) ++ran;
      continue;
    }
    batch_.clear();
    batch_.swap(heap_);
    std::sort(batch_.begin(), batch_.end(),
              [](const Entry& a, const Entry& b) {
                if (a.when != b.when) return a.when < b.when;
                return a.seq < b.seq;
              });
    // Eligibility: every event keyed (order-sensitive ones force the
    // serial path) and no pending cancellations (IsCancelled consumes
    // tombstones and must not run concurrently).
    bool partitionable = cancelled_.empty();
    if (partitionable) {
      for (const Entry& e : batch_) {
        if (e.shard_key == kNoShardKey) {
          partitionable = false;
          break;
        }
      }
    }
    if (!partitionable) {
      ran += RunBatchSerial();
      continue;
    }
    // Partition by key: a pure function of (shard_key, num_shards), so
    // the shard lists -- and with them every per-shard effect sequence --
    // are identical at any executor/thread choice.  Within a shard,
    // events keep (when, seq) order.
    shard_batches_.resize(num_shards);
    for (auto& sb : shard_batches_) sb.clear();
    for (uint32_t i = 0; i < batch_.size(); ++i) {
      shard_batches_[Mix64(batch_[i].shard_key) % num_shards].push_back(i);
    }
    const size_t heap_before = heap_.size();
    pf(num_shards, [this](uint32_t shard) {
      for (uint32_t idx : shard_batches_[shard]) batch_[idx].fn();
    });
    // Keyed events must not schedule (the heap is not thread-safe while
    // the executor runs); the contract is cheap to spot-check here.
    assert(heap_.size() == heap_before);
    (void)heap_before;
    // Serial epilogue: time/liveness bookkeeping the workers skipped.
    // Every batch entry was live (no cancellations) and ran.
    now_ = batch_.back().when;
    live_count_ -= std::min(live_count_, batch_.size());
    ran += batch_.size();
    batch_.clear();
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (ran < max_events && PopOne()) ++ran;
  return ran;
}

}  // namespace pdht::sim
