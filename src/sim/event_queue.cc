#include "sim/event_queue.h"

#include <algorithm>

namespace pdht::sim {

uint64_t EventQueue::ScheduleAt(double when, EventFn fn) {
  if (when < now_) when = now_;
  uint64_t id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

uint64_t EventQueue::ScheduleAfter(double delay, EventFn fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(uint64_t id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_count_ > 0) --live_count_;
  return true;
}

bool EventQueue::PopOne() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstoned
    }
    now_ = e.when;
    if (live_count_ > 0) --live_count_;
    e.fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(double until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    if (PopOne()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (ran < max_events && PopOne()) ++ran;
  return ran;
}

}  // namespace pdht::sim
