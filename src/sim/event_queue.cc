#include "sim/event_queue.h"

#include <algorithm>

namespace pdht::sim {

uint64_t EventQueue::ScheduleAt(double when, EventFn fn) {
  if (when < now_) when = now_;
  uint64_t id = next_id_++;
  if (heap_.empty() || when > max_pending_when_) max_pending_when_ = when;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return id;
}

uint64_t EventQueue::ScheduleAfter(double delay, EventFn fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(uint64_t id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_count_ > 0) --live_count_;
  return true;
}

bool EventQueue::IsCancelled(uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);  // tombstone consumed
  return true;
}

bool EventQueue::PopOne() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (IsCancelled(e.id)) continue;
    now_ = e.when;
    if (live_count_ > 0) --live_count_;
    e.fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(double until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (PopOne()) ++ran;
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::DrainBoundary(double until) {
  uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= until) {
    if (max_pending_when_ <= until) {
      // Every pending event is due this round: take the whole container,
      // order it once, and run it.  Handlers may schedule new events while
      // the batch runs; those land in the (now empty) heap and are picked
      // up by the next loop iteration, exactly as with per-event pops.
      batch_.clear();
      batch_.swap(heap_);
      std::sort(batch_.begin(), batch_.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.seq < b.seq;
                });
      for (Entry& e : batch_) {
        if (IsCancelled(e.id)) continue;
        now_ = e.when;
        if (live_count_ > 0) --live_count_;
        e.fn();
        ++ran;
      }
      batch_.clear();
    } else {
      // Mixed horizon: some events are due later; fall back to heap pops
      // for the due prefix.
      if (PopOne()) ++ran;
    }
  }
  if (now_ < until) now_ = until;
  return ran;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (ran < max_events && PopOne()) ++ran;
  return ran;
}

}  // namespace pdht::sim
