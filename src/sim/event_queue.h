// Discrete-event priority queue.
//
// The PDHT simulation is round-based at the top level (one round = one
// second, paper footnote 1), but within a round individual protocol actions
// (probe timeouts, gossip exchanges, churn transitions) are ordered by a
// fractional timestamp.  EventQueue provides a deterministic total order:
// ties on time are broken by insertion sequence number, never by pointer
// values, so runs are reproducible.

#ifndef PDHT_SIM_EVENT_QUEUE_H_
#define PDHT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace pdht::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Shard key marking an event as order-sensitive (the default): such
  /// events only ever run on the serial drain paths.
  static constexpr uint32_t kNoShardKey = UINT32_MAX;

  /// Schedules `fn` at absolute time `when` (seconds).  Events scheduled in
  /// the past run at the current time (no reordering before already-popped
  /// events).  Returns a monotonically increasing event id.
  ///
  /// `shard_key` (optional) declares the event safe for the partitioned
  /// boundary drain: its effects are confined to the keyed destination
  /// plus commutative counting, it never reads now(), and it never
  /// schedules or cancels events.  Events sharing a key always run in
  /// (when, seq) order relative to each other; ordering against other
  /// keys is unspecified on the partitioned path.
  uint64_t ScheduleAt(double when, EventFn fn,
                      uint32_t shard_key = kNoShardKey);

  /// Schedules `fn` `delay` seconds after the current time.
  uint64_t ScheduleAfter(double delay, EventFn fn,
                         uint32_t shard_key = kNoShardKey);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool Cancel(uint64_t id);

  /// Runs events until the queue is empty or `until` is reached (events at
  /// exactly `until` are executed).  Returns the number of events run.
  uint64_t RunUntil(double until);

  /// Round-boundary drain: same observable behaviour as RunUntil, but when
  /// every pending event falls inside the boundary (the common case for a
  /// round engine draining deferred deliveries, which are all scheduled
  /// with sub-round delays) the whole batch is extracted in one pass and
  /// sorted once, instead of paying a heap pop per event.  Events scheduled
  /// by handlers during the drain are still honoured if they land at or
  /// before `until`.
  uint64_t DrainBoundary(double until);

  /// One shard's work in a partitioned drain: runs every batch event
  /// whose shard key maps to `shard`, in (when, seq) order.
  using ShardRunFn = std::function<void(uint32_t shard)>;
  /// Caller-supplied executor for the partitioned drain: must invoke the
  /// given ShardRunFn exactly once per shard in [0, num_shards) -- on any
  /// threads, in any order -- and return only when all shards finished.
  using ParallelFor =
      std::function<void(uint32_t num_shards, const ShardRunFn& run)>;

  /// Partitioned round-boundary drain: observably identical to
  /// DrainBoundary, but a whole-batch extraction whose events ALL carry a
  /// shard key (and no cancellation is pending) is partitioned by
  /// Mix64(shard_key) % num_shards and handed to `parallel_for` for
  /// concurrent consumption -- per-destination batches, the deferred-
  /// delivery common case.  Any untagged event in a batch (an
  /// order-sensitive handler) falls the whole batch back to the serial
  /// path, as does a mixed event horizon.  The partition is a pure
  /// function of shard keys and num_shards, and tagged events are
  /// commutative by contract (see ScheduleAt), so results are identical
  /// to the serial drain at every (num_shards, executor) choice.
  uint64_t DrainBoundaryPartitioned(double until, uint32_t num_shards,
                                    const ParallelFor& parallel_for);

  /// Runs every pending event (including ones scheduled by event handlers);
  /// `max_events` guards against non-terminating chains.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  double now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

 private:
  struct Entry {
    double when;
    uint64_t seq;
    uint64_t id;
    uint32_t shard_key;  ///< kNoShardKey = order-sensitive (serial only)
    EventFn fn;
  };
  // Heap comparator: the *top* of the heap is the earliest (when, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopOne();
  bool IsCancelled(uint64_t id);

  /// Runs one already-sorted batch serially (the DrainBoundary inner
  /// loop); shared by the serial drain and the partitioned drain's
  /// fallback.  Returns events run.
  uint64_t RunBatchSerial();

  std::vector<Entry> heap_;          // binary heap via std::push/pop_heap
  std::vector<Entry> batch_;         // scratch for DrainBoundary
  std::vector<std::vector<uint32_t>> shard_batches_;  // partitioned indices
  std::vector<uint64_t> cancelled_;  // sorted lazily; small in practice
  double now_ = 0.0;
  double max_pending_when_ = 0.0;  ///< max `when` in heap_ (valid iff nonempty)
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_EVENT_QUEUE_H_
