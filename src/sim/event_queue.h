// Discrete-event priority queue.
//
// The PDHT simulation is round-based at the top level (one round = one
// second, paper footnote 1), but within a round individual protocol actions
// (probe timeouts, gossip exchanges, churn transitions) are ordered by a
// fractional timestamp.  EventQueue provides a deterministic total order:
// ties on time are broken by insertion sequence number, never by pointer
// values, so runs are reproducible.

#ifndef PDHT_SIM_EVENT_QUEUE_H_
#define PDHT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pdht::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when` (seconds).  Events scheduled in
  /// the past run at the current time (no reordering before already-popped
  /// events).  Returns a monotonically increasing event id.
  uint64_t ScheduleAt(double when, EventFn fn);

  /// Schedules `fn` `delay` seconds after the current time.
  uint64_t ScheduleAfter(double delay, EventFn fn);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool Cancel(uint64_t id);

  /// Runs events until the queue is empty or `until` is reached (events at
  /// exactly `until` are executed).  Returns the number of events run.
  uint64_t RunUntil(double until);

  /// Runs every pending event (including ones scheduled by event handlers);
  /// `max_events` guards against non-terminating chains.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  double now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

 private:
  struct Entry {
    double when;
    uint64_t seq;
    uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopOne();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<uint64_t> cancelled_;  // sorted lazily; small in practice
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_EVENT_QUEUE_H_
