// Discrete-event priority queue.
//
// The PDHT simulation is round-based at the top level (one round = one
// second, paper footnote 1), but within a round individual protocol actions
// (probe timeouts, gossip exchanges, churn transitions) are ordered by a
// fractional timestamp.  EventQueue provides a deterministic total order:
// ties on time are broken by insertion sequence number, never by pointer
// values, so runs are reproducible.

#ifndef PDHT_SIM_EVENT_QUEUE_H_
#define PDHT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace pdht::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when` (seconds).  Events scheduled in
  /// the past run at the current time (no reordering before already-popped
  /// events).  Returns a monotonically increasing event id.
  uint64_t ScheduleAt(double when, EventFn fn);

  /// Schedules `fn` `delay` seconds after the current time.
  uint64_t ScheduleAfter(double delay, EventFn fn);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool Cancel(uint64_t id);

  /// Runs events until the queue is empty or `until` is reached (events at
  /// exactly `until` are executed).  Returns the number of events run.
  uint64_t RunUntil(double until);

  /// Round-boundary drain: same observable behaviour as RunUntil, but when
  /// every pending event falls inside the boundary (the common case for a
  /// round engine draining deferred deliveries, which are all scheduled
  /// with sub-round delays) the whole batch is extracted in one pass and
  /// sorted once, instead of paying a heap pop per event.  Events scheduled
  /// by handlers during the drain are still honoured if they land at or
  /// before `until`.
  uint64_t DrainBoundary(double until);

  /// Runs every pending event (including ones scheduled by event handlers);
  /// `max_events` guards against non-terminating chains.
  uint64_t RunAll(uint64_t max_events = UINT64_MAX);

  double now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

 private:
  struct Entry {
    double when;
    uint64_t seq;
    uint64_t id;
    EventFn fn;
  };
  // Heap comparator: the *top* of the heap is the earliest (when, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopOne();
  bool IsCancelled(uint64_t id);

  std::vector<Entry> heap_;          // binary heap via std::push/pop_heap
  std::vector<Entry> batch_;         // scratch for DrainBoundary
  std::vector<uint64_t> cancelled_;  // sorted lazily; small in practice
  double now_ = 0.0;
  double max_pending_when_ = 0.0;  ///< max `when` in heap_ (valid iff nonempty)
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace pdht::sim

#endif  // PDHT_SIM_EVENT_QUEUE_H_
