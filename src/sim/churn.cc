#include "sim/churn.h"

#include <cassert>

namespace pdht::sim {

ChurnModel::ChurnModel(uint32_t num_peers, const ChurnConfig& config, Rng rng)
    : config_(config),
      rng_(rng),
      online_(num_peers, true),
      forced_off_(num_peers, false) {
  online_count_ = num_peers;
  if (!config_.enabled) return;
  // Start every peer online with a fresh session; staggering the first
  // flips with full session lengths converges to the stationary
  // distribution after ~one mean session.
  for (uint32_t p = 0; p < num_peers; ++p) {
    // Start a fraction of peers offline according to the stationary
    // availability so measurements are valid from round 0.
    double avail = config_.StationaryAvailability();
    if (!rng_.Bernoulli(avail)) {
      online_[p] = false;
      --online_count_;
    }
    ScheduleNext(p);
  }
}

void ChurnModel::ScheduleNext(uint32_t peer) {
  double mean =
      online_[peer] ? config_.mean_online_s : config_.mean_offline_s;
  double dt = rng_.Exponential(1.0 / mean);
  heap_.push(PendingFlip{now_ + dt, peer});
}

void ChurnModel::AdvanceTo(double t) {
  if (t <= now_) return;  // the clock never runs backwards
  if (!config_.enabled) {
    now_ = t;
    return;
  }
  while (!heap_.empty() && heap_.top().when <= t) {
    PendingFlip f = heap_.top();
    heap_.pop();
    now_ = f.when;
    bool new_state = !online_[f.peer];
    online_[f.peer] = new_state;
    // A forced-offline peer's underlying sessions keep flipping (and
    // ScheduleNext keeps consuming the same Rng draws as an outage-free
    // run), but its *effective* state stays pinned offline: the count
    // and the observers only track effective flips.
    if (!forced_off_[f.peer]) {
      if (new_state) {
        ++online_count_;
      } else {
        assert(online_count_ > 0);
        --online_count_;
      }
      for (auto& [fn, ctx] : observers_) fn(ctx, f.peer, new_state, f.when);
    }
    ScheduleNext(f.peer);
  }
  now_ = t;
}

void ChurnModel::ForceOffline(uint32_t peer) {
  if (forced_off_[peer]) return;
  forced_off_[peer] = true;
  if (online_[peer]) {
    assert(online_count_ > 0);
    --online_count_;
    for (auto& [fn, ctx] : observers_) fn(ctx, peer, false, now_);
  }
}

void ChurnModel::Heal(uint32_t peer) {
  if (!forced_off_[peer]) return;
  forced_off_[peer] = false;
  if (online_[peer]) {
    ++online_count_;
    for (auto& [fn, ctx] : observers_) fn(ctx, peer, true, now_);
  }
}

void ChurnModel::AddObserver(TransitionFn fn, void* ctx) {
  observers_.emplace_back(fn, ctx);
}

double ChurnModel::OnlineFraction() const {
  if (online_.empty()) return 0.0;
  return static_cast<double>(online_count_) /
         static_cast<double>(online_.size());
}

double ChurnModel::ExpectedTransitionRate() const {
  if (!config_.enabled) return 0.0;
  // Alternating renewal process: one on->off and one off->on flip per
  // full cycle of expected length (mean_on + mean_off).
  return 2.0 / (config_.mean_online_s + config_.mean_offline_s);
}

}  // namespace pdht::sim
