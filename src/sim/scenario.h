// Correlated-failure scenarios and recovery metrics.
//
// The i.i.d. renewal churn of sim/churn.h is the steady-state background;
// real deployments additionally suffer *correlated* failures -- a region,
// rack or AS drops out as a unit.  This module scripts the first such
// scenario from the ROADMAP's production-diversity item: a cluster
// outage.  At a configured round every peer of one transit-stub cluster
// (net::LatencyDelivery::ClusterOf under LatencyTopology::kTransitStub)
// is forced offline via ChurnModel::ForceOffline; at a later round the
// cluster heals.  The forced-outage mask leaves the underlying renewal
// processes (and their Rng draws) untouched, so a run with the scenario
// differs from the baseline only by the scripted flips -- deterministic
// at any --sim-threads/shard count like everything else.
//
// Recovery is judged from the per-round hit-rate series:
//  * pre-outage steady state  -- mean over the window before the outage;
//  * worst window             -- the minimum sliding-window mean at or
//                                after the outage (depth of the dip);
//  * recovery round           -- the first round >= heal whose forward
//                                window mean is back within `threshold`
//                                of the pre-outage mean.
// ComputeRecoveryMetrics is a pure function of the series so the bench
// (bench_scenarios) and the tests share one definition.

#ifndef PDHT_SIM_SCENARIO_H_
#define PDHT_SIM_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pdht::sim {

enum class ScenarioKind : uint8_t {
  kNone,
  /// Force one whole transit-stub cluster offline for
  /// [outage_start_round, outage_end_round), then heal it.
  kClusterOutage,
};

const char* ScenarioKindName(ScenarioKind k);

struct ScenarioConfig {
  /// Selects the largest cluster (ties broken toward the lowest cluster
  /// id) instead of a fixed one -- the default, so the outage is always
  /// a meaningful fraction of the population.
  static constexpr uint32_t kLargestCluster = 0xffffffffu;

  ScenarioKind kind = ScenarioKind::kNone;
  /// Outage window in rounds: the cluster goes down at the start of
  /// round outage_start_round and heals at the start of
  /// outage_end_round.
  uint64_t outage_start_round = 0;
  uint64_t outage_end_round = 0;
  /// Which cluster to take down (kLargestCluster = pick the most
  /// populous one).
  uint32_t cluster = kLargestCluster;

  /// Empty when self-consistent.  Delivery-model requirements (latency
  /// model, transit-stub topology) are checked by the system config,
  /// which knows what is installed.
  std::string Validate() const;
};

/// Recovery judgment over a per-round quality series (hit rate).
struct RecoveryMetrics {
  double pre_outage_mean = 0.0;  ///< steady state before the outage.
  double worst_window = 0.0;     ///< minimum window mean from the outage on.
  /// First round >= heal_round whose forward window mean reaches
  /// threshold * pre_outage_mean; the series size when never reached.
  uint64_t recovery_round = 0;
  bool recovered = false;
  /// recovery_round - heal_round (0 when unrecovered or instant).
  uint64_t recovery_rounds = 0;
};

/// Pure series analysis (see the header comment).  `window` is clamped
/// to >= 1; windows are truncated at the series edges.  A series shorter
/// than the outage round yields an all-default result.
RecoveryMetrics ComputeRecoveryMetrics(const std::vector<double>& series,
                                       uint64_t outage_start,
                                       uint64_t heal_round, size_t window,
                                       double threshold);

}  // namespace pdht::sim

#endif  // PDHT_SIM_SCENARIO_H_
