// Message taxonomy.
//
// Every simulated protocol action that would cross the wire is recorded as
// one Message with a type drawn from this taxonomy.  The paper's evaluation
// metric is total messages per second, broken down by purpose (search in
// the unstructured net, index search, routing probes, replica gossip, ...);
// attributing each send to a MessageType lets the benches report the same
// decomposition as Eqs. 6-10.

#ifndef PDHT_NET_MESSAGE_H_
#define PDHT_NET_MESSAGE_H_

#include <cstdint>
#include <string>

namespace pdht::net {

using PeerId = uint32_t;
constexpr PeerId kInvalidPeer = UINT32_MAX;

enum class MessageType : uint8_t {
  // Unstructured overlay (cSUnstr).
  kFloodQuery,        ///< Gnutella-style flooded query.
  kWalkQuery,         ///< random-walk query step.
  kWalkCheck,         ///< walker's periodic success check with originator.
  kQueryResponse,     ///< result returned to the originator.
  // Structured overlay / DHT (cSIndx).
  kDhtLookup,         ///< one routing hop of an index lookup.
  kDhtInsert,         ///< one routing hop of an insert.
  kDhtResponse,       ///< lookup result delivery.
  // Routing table maintenance (cRtn).
  kRoutingProbe,      ///< liveness probe of a routing entry.
  kRoutingProbeAck,   ///< probe answer (not counted by default, see below).
  kStabilize,         ///< periodic successor/neighbor exchange.
  // Replica subnetwork (cUpd / cSIndx2).
  kReplicaPush,       ///< rumor push of an update.
  kReplicaPull,       ///< pull request for missed updates.
  kReplicaFlood,      ///< replica-subnetwork query flood (Eq. 16).
  // Overlay construction.
  kJoin,              ///< join/bootstrap traffic.
  kExchange,          ///< P-Grid pairwise exchange.
  kCount
};

/// Stable counter name for a message type, e.g. "msg.dht.lookup".
const char* MessageTypeName(MessageType t);

/// A simulated message.  Payload is modelled by a 64-bit key plus an
/// opaque tag; byte-level contents are irrelevant to the cost model.
struct Message {
  MessageType type = MessageType::kFloodQuery;
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  uint64_t key = 0;    ///< subject key (hash), when applicable.
  uint64_t tag = 0;    ///< request id / hop count / auxiliary field.
};

}  // namespace pdht::net

#endif  // PDHT_NET_MESSAGE_H_
