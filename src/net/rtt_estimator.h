// Per-peer adaptive retransmission-timeout (RTO) estimation.
//
// The fixed LatencyConfig::timeout_ms makes timeout-aware routing
// pathological under churn: every failed probe charges the full global
// detection timeout, no matter how cheap the link actually is
// (BENCH_latency.json: CAN mean lookup RTT 434 -> 1702 ms at 185k
// timeouts).  Real transports size the wait to the path: this is the
// Jacobson/Karels estimator of RFC 6298, kept per *destination* peer:
//
//   first sample:  srtt = R,             rttvar = R / 2
//   thereafter:    rttvar = 3/4 rttvar + 1/4 |srtt - R|   (before srtt)
//                  srtt   = 7/8 srtt   + 1/8 R
//   RTO = srtt + 4 * rttvar, clamped to [min_ms, max_ms]
//
// Samples come from observed link delays (Network feeds every deferred
// delivery's charged delay back as a round-trip proxy); probes that time
// out contribute no sample (Karn's rule -- a timeout tells us nothing
// about the path's true RTT).  Before the first sample for a destination
// the estimate is seeded from the delivery model's PeerRtt oracle
// (RTO = 3 * oracle RTT, the "no rttvar yet" convention), and with no
// oracle installed it degrades to `fallback_ms` -- configured to the
// fixed timeout_ms, so the unseeded estimator is bit-identical to the
// pre-adaptive behaviour (tests/overlay/backend_parity_test.cc).
//
// Determinism contract: Observe() is only called at serial points of the
// round loop (Network::SendDeferred on the serial path; CommitDeferred's
// publish replay, which runs in global task order), never from a worker
// inside a parallel phase -- lane-mode sends log their delay and observe
// at commit.  RtoMs() is read-only and may be called from parallel
// phases (the lane path of ChargeProbeTimeout evaluates it at execute
// time); the state it reads is frozen for the phase, so results are
// bit-identical at any --sim-threads/shard count.

#ifndef PDHT_NET_RTT_ESTIMATOR_H_
#define PDHT_NET_RTT_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.h"

namespace pdht::net {

struct RtoConfig {
  /// RTO floor in milliseconds: never declare a probe dead faster than
  /// this (spurious-timeout guard).
  double min_ms = 10.0;
  /// RTO ceiling in milliseconds; the fixed timeout_ms is the natural
  /// choice, which guarantees adaptive waits never exceed the fixed ones.
  double max_ms = 250.0;
  /// Returned when a destination has no samples and no seed oracle is
  /// installed.  Configured to the fixed timeout_ms so the unseeded
  /// estimator degrades bit-identically to pre-adaptive behaviour.
  double fallback_ms = 250.0;
};

class PeerRtoEstimator {
 public:
  /// RTT seed oracle in milliseconds (e.g. DeliveryModel::RttMs), used
  /// for destinations with no samples yet.  May be null: unseeded,
  /// unsampled destinations fall back to config.fallback_ms.
  using SeedFn = std::function<double(PeerId, PeerId)>;

  explicit PeerRtoEstimator(const RtoConfig& config, SeedFn seed = nullptr);

  /// Folds one round-trip sample (milliseconds) for destination `to`
  /// into its smoothed state.  Serial points only (see header comment).
  void Observe(PeerId to, double rtt_ms);

  /// The sender's detection timeout for a probe from `from` to `to`,
  /// in milliseconds.  Sampled destinations use srtt + 4 * rttvar;
  /// unsampled ones use 3 * seed RTT; both clamped to
  /// [min_ms, max_ms].  No oracle and no samples = fallback_ms.
  /// Read-only (safe from parallel phases while Observe is quiescent).
  double RtoMs(PeerId from, PeerId to) const;

  uint64_t samples() const { return samples_; }
  const RtoConfig& config() const { return config_; }

 private:
  /// rttvar_ms < 0 marks a never-sampled destination.
  struct State {
    float srtt_ms = 0.0f;
    float rttvar_ms = -1.0f;
  };

  double Clamp(double rto_ms) const;

  RtoConfig config_;
  SeedFn seed_;
  std::vector<State> state_;  ///< indexed by destination PeerId
  uint64_t samples_ = 0;
};

}  // namespace pdht::net

#endif  // PDHT_NET_RTT_ESTIMATOR_H_
