#include "net/message.h"

namespace pdht::net {

const char* MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kFloodQuery:
      return "msg.unstructured.flood";
    case MessageType::kWalkQuery:
      return "msg.unstructured.walk";
    case MessageType::kWalkCheck:
      return "msg.unstructured.walk_check";
    case MessageType::kQueryResponse:
      return "msg.unstructured.response";
    case MessageType::kDhtLookup:
      return "msg.dht.lookup";
    case MessageType::kDhtInsert:
      return "msg.dht.insert";
    case MessageType::kDhtResponse:
      return "msg.dht.response";
    case MessageType::kRoutingProbe:
      return "msg.maint.probe";
    case MessageType::kRoutingProbeAck:
      return "msg.maint.probe_ack";
    case MessageType::kStabilize:
      return "msg.maint.stabilize";
    case MessageType::kReplicaPush:
      return "msg.replica.push";
    case MessageType::kReplicaPull:
      return "msg.replica.pull";
    case MessageType::kReplicaFlood:
      return "msg.replica.flood";
    case MessageType::kJoin:
      return "msg.overlay.join";
    case MessageType::kExchange:
      return "msg.overlay.exchange";
    case MessageType::kCount:
      return "msg.invalid";
  }
  return "msg.invalid";
}

}  // namespace pdht::net
