#include "net/network.h"

#include <cassert>

namespace pdht::net {

Network::Network(CounterRegistry* counters) : counters_(counters) {
  assert(counters != nullptr);
}

void Network::Register(PeerId peer, MessageHandler* handler) {
  if (peer >= handlers_.size()) {
    handlers_.resize(peer + 1, nullptr);
    online_.resize(peer + 1, true);
  }
  handlers_[peer] = handler;
}

void Network::SetOnline(PeerId peer, bool online) {
  if (peer >= online_.size()) {
    handlers_.resize(peer + 1, nullptr);
    online_.resize(peer + 1, true);
  }
  online_[peer] = online;
}

bool Network::IsOnline(PeerId peer) const {
  return peer < online_.size() && online_[peer];
}

bool Network::Send(const Message& msg) {
  counters_->Get(MessageTypeName(msg.type)).Add();
  counters_->Get("msg.total").Add();
  if (msg.to >= handlers_.size()) return false;
  if (!online_[msg.to]) return false;
  // An online peer receives the message whether or not a handler object is
  // attached; most protocol logic in this library runs at system level and
  // only needs the delivered/lost outcome.
  MessageHandler* h = handlers_[msg.to];
  if (h != nullptr) h->HandleMessage(msg);
  return true;
}

void Network::CountOnly(MessageType type, uint64_t n) {
  counters_->Get(MessageTypeName(type)).Add(n);
  counters_->Get("msg.total").Add(n);
}

uint64_t Network::TotalMessages() const {
  return counters_->Value("msg.total");
}

uint64_t Network::MessagesOfType(MessageType type) const {
  return counters_->Value(MessageTypeName(type));
}

}  // namespace pdht::net
