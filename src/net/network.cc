#include "net/network.h"

#include <cassert>

namespace pdht::net {

Network::Network(CounterRegistry* counters) : counters_(counters) {
  assert(counters != nullptr);
  // Intern every message-type counter up front so Send never touches a
  // string.  Interning is idempotent, so sharing the registry between
  // networks (or with string-keyed users) is fine.
  for (size_t i = 0; i < kNumTypes; ++i) {
    type_ids_[i] =
        counters_->Intern(MessageTypeName(static_cast<MessageType>(i)));
  }
  total_id_ = counters_->Intern("msg.total");
}

void Network::EnsureSlot(PeerId peer) {
  if (peer >= handlers_.size()) {
    handlers_.resize(peer + 1, nullptr);
    online_.resize(peer + 1, false);
    seen_.resize(peer + 1, false);
  }
}

void Network::Register(PeerId peer, MessageHandler* handler) {
  EnsureSlot(peer);
  if (!seen_[peer]) {
    // First contact: a registered peer defaults online.  Peers only
    // *gap-covered* by a larger id stay unseen and unreachable.
    seen_[peer] = true;
    online_[peer] = true;
    ++online_count_;
  }
  handlers_[peer] = handler;
}

void Network::SetOnline(PeerId peer, bool online) {
  EnsureSlot(peer);
  seen_[peer] = true;
  if (online_[peer] != online) online_count_ += online ? 1 : -1;
  online_[peer] = online;
}

}  // namespace pdht::net
