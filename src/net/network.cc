#include "net/network.h"

#include <cassert>

#include "sim/event_queue.h"

namespace pdht::net {

Network::Network(CounterRegistry* counters) : counters_(counters) {
  assert(counters != nullptr);
  // Intern every message-type counter up front so Send never touches a
  // string.  Interning is idempotent, so sharing the registry between
  // networks (or with string-keyed users) is fine.
  for (size_t i = 0; i < kNumTypes; ++i) {
    type_ids_[i] =
        counters_->Intern(MessageTypeName(static_cast<MessageType>(i)));
  }
  total_id_ = counters_->Intern("msg.total");
  // Delivery-outcome counters live under "net.", not "msg.": they tally
  // outcomes of already-counted messages, so folding them into the
  // "msg." prefix groups would double-charge the cost series.
  lost_id_ = counters_->Intern("net.lost");
  deferred_id_ = counters_->Intern("net.delivery.deferred");
  dropped_id_ = counters_->Intern("net.delivery.dropped");
  timeout_id_ = counters_->Intern("net.timeout");
  // One latency sample lands here per deferred message -- an unbounded
  // stream at paper scale -- so bound the per-type retention; moments
  // stay exact and quantiles degrade to systematic-subsample estimates.
  for (Histogram& h : type_latency_ms_) h.SetSampleCap(1 << 16);
}

void Network::EnsureSlot(PeerId peer) {
  if (peer >= handlers_.size()) {
    handlers_.resize(peer + 1, nullptr);
    online_.resize(peer + 1, false);
    seen_.resize(peer + 1, false);
  }
}

void Network::Register(PeerId peer, MessageHandler* handler) {
  EnsureSlot(peer);
  if (!seen_[peer]) {
    // First contact: a registered peer defaults online.  Peers only
    // *gap-covered* by a larger id stay unseen and unreachable.
    seen_[peer] = true;
    online_[peer] = true;
    ++online_count_;
  }
  handlers_[peer] = handler;
}

void Network::SetOnline(PeerId peer, bool online) {
  EnsureSlot(peer);
  seen_[peer] = true;
  if (online_[peer] != online) online_count_ += online ? 1 : -1;
  online_[peer] = online;
}

void Network::SetDeliveryModel(const DeliveryModel* model,
                               sim::EventQueue* events) {
  delivery_ = model;
  events_ = events;
  deferred_ = model != nullptr && !model->immediate();
  assert(!deferred_ || events != nullptr);
}

void Network::ChargeProbeTimeout(PeerId from, PeerId to) {
  if (!deferred_) return;  // immediate delivery has no latency axis
  const double s = delivery_->ProbeTimeoutSeconds(from, to);
  if (s <= 0.0) return;
  latency_sum_s_ += s;
  counters_->Add(timeout_id_);
}

bool Network::SendDeferred(const Message& msg) {
  const double delay = delivery_->LinkDelaySeconds(msg.from, msg.to);
  latency_sum_s_ += delay;
  type_latency_ms_[TypeIndex(msg.type)].Add(delay * 1e3);
  counters_->Add(deferred_id_);
  events_->ScheduleAfter(delay, [this, msg] {
    // Arrival: the destination may have churned offline mid-flight; the
    // message was charged at send time, so the drop is free but tallied.
    if (msg.to < handlers_.size() && online_[msg.to]) {
      MessageHandler* h = handlers_[msg.to];
      if (h != nullptr) h->HandleMessage(msg);
    } else {
      counters_->Add(dropped_id_);
    }
  });
  return true;
}

}  // namespace pdht::net
