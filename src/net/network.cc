#include "net/network.h"

#include <cassert>

#include "net/rtt_estimator.h"
#include "sim/event_queue.h"

namespace pdht::net {

thread_local ShardLane* Network::tls_lane_ = nullptr;

namespace {
constexpr uint32_t kNotOnline = UINT32_MAX;
}  // namespace

Network::Network(CounterRegistry* counters) : counters_(counters) {
  assert(counters != nullptr);
  // Intern every message-type counter up front so Send never touches a
  // string.  Interning is idempotent, so sharing the registry between
  // networks (or with string-keyed users) is fine.
  for (size_t i = 0; i < kNumTypes; ++i) {
    type_ids_[i] =
        counters_->Intern(MessageTypeName(static_cast<MessageType>(i)));
  }
  total_id_ = counters_->Intern("msg.total");
  // Delivery-outcome counters live under "net.", not "msg.": they tally
  // outcomes of already-counted messages, so folding them into the
  // "msg." prefix groups would double-charge the cost series.
  lost_id_ = counters_->Intern("net.lost");
  deferred_id_ = counters_->Intern("net.delivery.deferred");
  dropped_id_ = counters_->Intern("net.delivery.dropped");
  timeout_id_ = counters_->Intern("net.timeout");
  failover_id_ = counters_->Intern("net.failover");
  // One latency sample lands here per deferred message -- an unbounded
  // stream at paper scale -- so bound the per-type retention; moments
  // stay exact and quantiles degrade to systematic-subsample estimates.
  for (Histogram& h : type_latency_ms_) h.SetSampleCap(1 << 16);
}

void Network::EnsureSlot(PeerId peer) {
  if (peer >= handlers_.size()) {
    handlers_.resize(peer + 1, nullptr);
    online_.resize(peer + 1, false);
    seen_.resize(peer + 1, false);
    online_pos_.resize(peer + 1, kNotOnline);
  }
}

void Network::Register(PeerId peer, MessageHandler* handler) {
  EnsureSlot(peer);
  if (!seen_[peer]) {
    // First contact: a registered peer defaults online.  Peers only
    // *gap-covered* by a larger id stay unseen and unreachable.
    seen_[peer] = true;
    online_[peer] = true;
    online_pos_[peer] = static_cast<uint32_t>(online_list_.size());
    online_list_.push_back(peer);
  }
  handlers_[peer] = handler;
}

void Network::SetOnline(PeerId peer, bool online) {
  EnsureSlot(peer);
  seen_[peer] = true;
  if (online_[peer] == online) return;
  online_[peer] = online;
  if (online) {
    online_pos_[peer] = static_cast<uint32_t>(online_list_.size());
    online_list_.push_back(peer);
  } else {
    // Swap-remove from the dense list; the displaced tail peer inherits
    // the vacated slot.
    uint32_t pos = online_pos_[peer];
    PeerId tail = online_list_.back();
    online_list_[pos] = tail;
    online_pos_[tail] = pos;
    online_list_.pop_back();
    online_pos_[peer] = kNotOnline;
  }
}

void Network::SetDeliveryModel(const DeliveryModel* model,
                               sim::EventQueue* events) {
  delivery_ = model;
  events_ = events;
  deferred_ = model != nullptr && !model->immediate();
  assert(!deferred_ || events != nullptr);
}

void Network::ChargeProbeTimeout(PeerId from, PeerId to) {
  if (!deferred_) return;  // immediate delivery has no latency axis
  const double s = delivery_->ProbeTimeoutSeconds(from, to);
  if (s <= 0.0) return;
  if (ShardLane* lane = tls_lane_; lane != nullptr) {
    lane->counter_delta[timeout_id_] += 1;
    lane->latency_s += s;
    lane->deferred.push_back(ShardLane::Deferred{Message{}, s, true});
    return;
  }
  latency_sum_s_ += s;
  counters_->Add(timeout_id_);
}

void Network::ScheduleArrival(const Message& msg, double delay_s) {
  auto arrival = [this, msg] {
    // Arrival: the destination may have churned offline mid-flight; the
    // message was charged at send time, so the drop is free but tallied.
    // The tally is lane-aware because tagged arrivals may run inside the
    // partitioned boundary drain, where each worker holds a bound lane
    // and the commutative deltas merge after (serial drains have no lane
    // bound and hit the registry directly, as before).
    if (msg.to < handlers_.size() && online_[msg.to]) {
      MessageHandler* h = handlers_[msg.to];
      if (h != nullptr) h->HandleMessage(msg);
    } else if (ShardLane* lane = tls_lane_; lane != nullptr) {
      lane->counter_delta[dropped_id_] += 1;
    } else {
      counters_->Add(dropped_id_);
    }
  };
  if (msg.to >= handlers_.size() || handlers_[msg.to] == nullptr) {
    // Handler-free destination (the PDHT system runs all protocol logic
    // at system level): the arrival's only possible effect is the
    // commutative drop tally above, so tag it with the destination for
    // the partitioned boundary drain.  A registered handler is
    // order-sensitive by assumption and keeps the event serial-only.
    events_->ScheduleAfter(delay_s, std::move(arrival), msg.to);
  } else {
    events_->ScheduleAfter(delay_s, std::move(arrival));
  }
}

bool Network::SendDeferred(const Message& msg) {
  const double delay = delivery_->LinkDelaySeconds(msg.from, msg.to);
  latency_sum_s_ += delay;
  type_latency_ms_[TypeIndex(msg.type)].Add(delay * 1e3);
  counters_->Add(deferred_id_);
  // Successful delivery = an implicit RTT sample for the destination
  // (2x one-way as the round-trip proxy).  Serial path: safe to mutate.
  if (rtt_observer_ != nullptr) rtt_observer_->Observe(msg.to, 2e3 * delay);
  ScheduleArrival(msg, delay);
  return true;
}

bool Network::LaneSend(ShardLane& lane, const Message& msg) {
  lane.counter_delta[type_ids_[TypeIndex(msg.type)]] += 1;
  lane.counter_delta[total_id_] += 1;
  if (msg.to >= handlers_.size() || !online_[msg.to]) {
    lane.counter_delta[lost_id_] += 1;
    return false;
  }
  if (deferred_) {
    // Charge the model's delay into the lane only; the shared latency
    // sum, histogram sample and event scheduling happen at the merge
    // barrier (CommitDeferred), serially and in task order.
    const double delay = delivery_->LinkDelaySeconds(msg.from, msg.to);
    lane.counter_delta[deferred_id_] += 1;
    lane.latency_s += delay;
    lane.deferred.push_back(ShardLane::Deferred{msg, delay, false});
    return true;
  }
  // Immediate delivery in lane mode is accounting-only: lane phases
  // require handler-free peers (all PDHT protocol logic runs at system
  // level), so the delivered/lost outcome is the whole effect.
  assert(handlers_[msg.to] == nullptr);
  return true;
}

void Network::CommitDeferred(const ShardLane::Deferred& d) {
  latency_sum_s_ += d.seconds;
  if (d.timeout) return;
  // Replayed serially in global task order, so lane-mode runs feed the
  // estimator the same sample sequence as a serial run.  Timeout entries
  // returned above: Karn's rule, a timed-out probe contributes no sample
  // (and its `seconds` is a wait, not a link delay).
  if (rtt_observer_ != nullptr) {
    rtt_observer_->Observe(d.msg.to, 2e3 * d.seconds);
  }
  type_latency_ms_[TypeIndex(d.msg.type)].Add(d.seconds * 1e3);
  ScheduleArrival(d.msg, d.seconds);
}

}  // namespace pdht::net
