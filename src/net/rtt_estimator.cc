#include "net/rtt_estimator.h"

#include <algorithm>
#include <cmath>

namespace pdht::net {

PeerRtoEstimator::PeerRtoEstimator(const RtoConfig& config, SeedFn seed)
    : config_(config), seed_(std::move(seed)) {}

double PeerRtoEstimator::Clamp(double rto_ms) const {
  return std::min(std::max(rto_ms, config_.min_ms), config_.max_ms);
}

void PeerRtoEstimator::Observe(PeerId to, double rtt_ms) {
  if (to >= state_.size()) state_.resize(to + 1);
  State& s = state_[to];
  const float r = static_cast<float>(rtt_ms);
  if (s.rttvar_ms < 0.0f) {
    // First sample (RFC 6298 2.2).
    s.srtt_ms = r;
    s.rttvar_ms = r * 0.5f;
  } else {
    // RFC 6298 2.3: rttvar uses the *old* srtt.
    s.rttvar_ms =
        0.75f * s.rttvar_ms + 0.25f * std::fabs(s.srtt_ms - r);
    s.srtt_ms = 0.875f * s.srtt_ms + 0.125f * r;
  }
  ++samples_;
}

double PeerRtoEstimator::RtoMs(PeerId from, PeerId to) const {
  if (to < state_.size() && state_[to].rttvar_ms >= 0.0f) {
    const State& s = state_[to];
    return Clamp(static_cast<double>(s.srtt_ms) +
                 4.0 * static_cast<double>(s.rttvar_ms));
  }
  if (seed_) {
    // Unsampled destination: seed srtt from the oracle with the
    // conventional rttvar = srtt/2, i.e. RTO = 3 * RTT.
    return Clamp(3.0 * seed_(from, to));
  }
  return config_.fallback_ms;
}

}  // namespace pdht::net
