// Pluggable message-delivery models.
//
// The paper's cost model counts messages, so the seed network delivered
// every message synchronously inside Network::Send.  A production-scale
// deployment is judged on lookup *latency* as much as on message counts,
// which needs a delay model.  DeliveryModel is that seam: Network asks the
// installed model for a per-link one-way delay and, when the model is not
// immediate, defers the destination handler's invocation through the
// simulation EventQueue so in-flight messages land at their scheduled time
// inside the round (sim/round_engine.h drains the queue at every round
// boundary).
//
// Two models ship:
//  * ImmediateDelivery -- delay identically 0; Network keeps the seed's
//    inline synchronous Send path (bit-for-bit, see the golden-series
//    tests), so the abstraction costs the hot loop nothing.
//  * LatencyDelivery -- every peer gets a deterministic synthetic network
//    coordinate in the unit square, hashed from (seed, peer id); a link's
//    one-way delay is base + distance * ms_per_unit + per-link jitter.
//    The model is a pure function of (seed, peer ids): no RNG stream is
//    consumed and no state is mutated, so results are bit-identical at
//    any experiment thread count and installing the model never perturbs
//    the simulation's random draws.
//
// Message *counts* are delivery-model invariant by construction: the model
// only decides *when* a handler runs, never whether a message is charged.
// (Proximity-aware neighbor selection -- an *overlay* policy the latency
// model merely feeds via StructuredOverlay::SetPeerRtt -- does change
// routing tables and therefore counts; disable it via
// core::SystemConfig::proximity_routing for a counts-identical run.)

#ifndef PDHT_NET_DELIVERY_MODEL_H_
#define PDHT_NET_DELIVERY_MODEL_H_

#include <cstdint>
#include <string>

#include "net/message.h"

namespace pdht::net {

class PeerRtoEstimator;

/// Selects the delivery model a system builds (core::SystemConfig knob;
/// sweepable as an experiment axis like any other config field).
enum class DeliveryModelKind : uint8_t {
  kImmediate,
  kLatency,
};

const char* DeliveryModelName(DeliveryModelKind k);

/// Parses "immediate" / "latency" (case-insensitive); returns false on
/// unknown input.
bool ParseDeliveryModel(const std::string& name, DeliveryModelKind* out);

/// Decides when a sent message reaches its destination.  Implementations
/// must be pure (no internal state mutation in LinkDelaySeconds): the
/// delay of a link may be queried from multiple experiment threads and
/// must depend only on construction parameters and the endpoint ids.
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  /// One-way delay, in seconds, of a message from `from` to `to`.
  virtual double LinkDelaySeconds(PeerId from, PeerId to) const = 0;

  /// Round-trip time in milliseconds (request + response legs).  The
  /// proximity-selection hook overlays use (StructuredOverlay::SetPeerRtt)
  /// and the routing-stretch metrics are expressed in these units.
  double RttMs(PeerId a, PeerId b) const {
    return 1e3 * (LinkDelaySeconds(a, b) + LinkDelaySeconds(b, a));
  }

  /// How long a sender waits before declaring a probe to `to` dead --
  /// the latency cost of a failed probe under timeout-aware routing
  /// (overlay::RoutingPolicy::timeout_costing, charged through
  /// Network::ChargeProbeTimeout).  0 (the default) makes failed probes
  /// latency-free, the pre-timeout behaviour.  Same purity rules as
  /// LinkDelaySeconds.
  virtual double ProbeTimeoutSeconds(PeerId from, PeerId to) const {
    (void)from;
    (void)to;
    return 0.0;
  }

  /// True when LinkDelaySeconds is identically zero.  Network keeps its
  /// inline synchronous Send path for immediate models, so they are free.
  virtual bool immediate() const = 0;

  virtual const char* name() const = 0;
};

/// The seed semantics: every delivery is synchronous.  Installing this
/// model is equivalent to installing none.
class ImmediateDelivery final : public DeliveryModel {
 public:
  double LinkDelaySeconds(PeerId, PeerId) const override { return 0.0; }
  bool immediate() const override { return true; }
  const char* name() const override { return "immediate"; }
};

/// Shape of the synthetic coordinate space.
enum class LatencyTopology : uint8_t {
  /// Coordinates i.i.d. uniform over the unit square (PR 4's model).
  kUniform,
  /// Transit-stub-like clustering: peers hash into one of num_clusters
  /// stub domains; a domain's members sit within cluster_spread of its
  /// hashed center, so intra-cluster links are cheap (~base + spread
  /// scale) while inter-cluster links pay the center-to-center transit
  /// distance.  The realistic-topology axis of the ROADMAP.
  kTransitStub,
};

const char* LatencyTopologyName(LatencyTopology t);

/// Parses "uniform" / "transit_stub" (case-insensitive); returns false
/// on unknown input.
bool ParseLatencyTopology(const std::string& name, LatencyTopology* out);

/// Knobs of the synthetic-coordinate latency model.  Defaults give a
/// WAN-ish spread: 5 ms floor, up to ~118 ms across the unit square
/// diagonal, 2 ms of deterministic per-link jitter.
struct LatencyConfig {
  /// Fixed per-link cost in milliseconds (processing + first/last mile).
  double base_ms = 5.0;
  /// Milliseconds per unit of Euclidean distance between the endpoints'
  /// synthetic coordinates (coordinates live in the unit square, so the
  /// largest distance-derived term is sqrt(2) * ms_per_unit).
  double ms_per_unit = 80.0;
  /// Amplitude of the deterministic per-link jitter: each (unordered)
  /// link adds a hash-derived constant in [0, jitter_ms).
  double jitter_ms = 2.0;
  /// Failed-probe detection timeout in milliseconds, charged per failed
  /// probe round when timeout-aware routing is on
  /// (core::SystemConfig::timeout_costing).  Ignored otherwise.  With an
  /// adaptive RTO estimator installed (SetRtoEstimator) this becomes the
  /// fallback/ceiling instead of the every-probe constant.
  double timeout_ms = 250.0;

  /// Adaptive-RTO clamp (used only when a PeerRtoEstimator is installed,
  /// core::SystemConfig::adaptive_rto): per-peer RTOs never drop below
  /// rto_min_ms, and never exceed rto_max_ms (0 = use timeout_ms, which
  /// guarantees adaptive waits are <= the fixed-timeout ones).
  double rto_min_ms = 10.0;
  double rto_max_ms = 0.0;

  /// Coordinate-space shape and its clustering knobs (used by
  /// kTransitStub only).  Everything stays a pure hash of
  /// (latency_seed, peer), so topologies are deterministic and
  /// thread-count invariant like the uniform model.
  LatencyTopology topology = LatencyTopology::kUniform;
  uint32_t num_clusters = 8;
  double cluster_spread = 0.03;

  /// Empty when self-consistent.
  std::string Validate() const;
};

/// Deterministic synthetic-coordinate latency.  Coordinates and jitter
/// are hashed from (seed, peer id) / (seed, link), never drawn from an
/// Rng stream: two instances with equal (config, seed) agree everywhere,
/// and construction order relative to other subsystems is irrelevant.
class LatencyDelivery final : public DeliveryModel {
 public:
  LatencyDelivery(const LatencyConfig& config, uint64_t seed);

  double LinkDelaySeconds(PeerId from, PeerId to) const override;
  /// The fixed config timeout, or -- with an estimator installed -- the
  /// adaptive per-peer RTO (net/rtt_estimator.h).
  double ProbeTimeoutSeconds(PeerId from, PeerId to) const override;
  bool immediate() const override { return false; }
  const char* name() const override { return "latency"; }

  /// Installs (or clears, with nullptr) the adaptive per-peer RTO
  /// estimator consulted by ProbeTimeoutSeconds.  Not owned; must
  /// outlive the model.  With none installed the fixed timeout_ms is
  /// charged -- today's behaviour, bit for bit.
  void SetRtoEstimator(const PeerRtoEstimator* rto) { rto_ = rto; }
  const PeerRtoEstimator* rto_estimator() const { return rto_; }

  /// The peer's synthetic coordinate: uniform in the unit square, or its
  /// cluster center plus a [-spread, spread] offset under kTransitStub
  /// (clustered coordinates may poke slightly past the unit square; the
  /// distance math doesn't care).
  void Coordinate(PeerId peer, double* x, double* y) const;

  /// The peer's stub domain under kTransitStub; 0 under kUniform.
  uint32_t ClusterOf(PeerId peer) const;

  const LatencyConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

 private:
  double JitterMs(PeerId a, PeerId b) const;

  LatencyConfig config_;
  uint64_t seed_;
  const PeerRtoEstimator* rto_ = nullptr;  ///< not owned; null = fixed
};

}  // namespace pdht::net

#endif  // PDHT_NET_DELIVERY_MODEL_H_
