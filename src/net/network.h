// Simulated network with message accounting and pluggable delivery.
//
// Design decision #5 (DESIGN.md): protocols do not count their own
// messages; every send goes through Network::Send, which attributes the
// message to the per-type counter registry.  This prevents a protocol
// implementation from under-reporting its cost and gives the benches a
// single source of truth.
//
// Accounting is allocation-free: the constructor interns one CounterId
// per MessageType plus "msg.total", so the per-message cost of Send is
// two array increments (no string construction, no map walk).  Send is
// defined inline here because it sits on the innermost simulation loop.
//
// Delivery model: pluggable (net/delivery_model.h).  The default is
// immediate -- the message is handed to the destination's handler
// synchronously, which is all the paper's message-count metric needs --
// and Send keeps that path inline and branch-cheap.  Installing a
// non-immediate model (SetDeliveryModel) routes delivery through
// SendDeferred: the model's per-link one-way delay is charged to the
// message, recorded into a per-message-type latency histogram and into
// the running total_latency_s() (which PdhtSystem brackets to measure
// per-lookup RTT), and the handler invocation is deferred through the
// simulation EventQueue so the message lands at its scheduled time.
// Message *counts* are identical under every model: the model decides
// when a handler runs, never whether a message is charged.
//
// Sends to offline peers are counted (the bytes hit the wire) but flagged
// undelivered -- additionally tallied under "net.lost" -- which is what
// makes stale routing entries costly and probing worthwhile.  Send's
// boolean reports the destination's liveness at *send* time; under
// deferred delivery a peer that churns offline mid-flight silently drops
// the message at arrival ("net.delivery.dropped").

#ifndef PDHT_NET_NETWORK_H_
#define PDHT_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/delivery_model.h"
#include "net/message.h"
#include "stats/counter.h"
#include "stats/histogram.h"

namespace pdht::sim {
class EventQueue;
}  // namespace pdht::sim

namespace pdht::net {

/// Interface implemented by anything that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

/// Per-shard accounting lane for the sharded round engine.
///
/// While a lane is bound to the calling thread (Network::BeginLane), Send/
/// CountOnly/ChargeProbeTimeout stop touching the shared CounterRegistry,
/// latency sum, histograms and event queue; instead they accumulate into
/// the lane: counter increments into `counter_delta` (a flat per-CounterId
/// buffer, merged later with CounterRegistry::MergeDelta -- integer adds
/// commute), and order-sensitive effects (deferred deliveries, timeout
/// waits, both of which feed floating-point sums, capped histograms and
/// event scheduling) into the `deferred` log, which the engine replays
/// serially in task order via Network::CommitDeferred so results are
/// bit-identical to a serial run.  Lane mode requires handler-free
/// delivery (the PDHT system runs all protocol logic at system level);
/// binding a lane while handlers are registered is unsupported.
struct ShardLane {
  struct Deferred {
    Message msg;     ///< valid when `timeout` is false
    double seconds;  ///< link delay (send) or probe-timeout wait
    bool timeout;
  };
  std::vector<uint64_t> counter_delta;  ///< CounterId -> pending increment
  std::vector<Deferred> deferred;       ///< order-sensitive effect log
  double latency_s = 0.0;  ///< per-task bracket accumulator (the engine
                           ///< zeroes it at task start so RTT deltas are
                           ///< scheduling-invariant); the authoritative
                           ///< latency replays from `deferred` at commit

  void Prepare(size_t num_counters) {
    counter_delta.assign(num_counters, 0);
    deferred.clear();
    latency_s = 0.0;
  }
};

class Network {
 public:
  /// `counters` must outlive the network.
  explicit Network(CounterRegistry* counters);

  /// Registers/replaces the handler for `peer`.  Peers without handlers
  /// swallow deliveries (counted, not processed).  First registration
  /// brings the peer online; later SetOnline calls are never clobbered.
  void Register(PeerId peer, MessageHandler* handler);

  /// Marks a peer online/offline.  Offline peers receive nothing.
  void SetOnline(PeerId peer, bool online);
  bool IsOnline(PeerId peer) const {
    return peer < online_.size() && online_[peer];
  }

  /// Peers currently online.  Maintained where the bit flips (SetOnline/
  /// Register), so callers sizing rejection-sampling loops or bailing out
  /// of an all-offline network need no bookkeeping of their own.
  uint32_t online_count() const {
    return static_cast<uint32_t>(online_list_.size());
  }

  /// The i-th currently-online peer, i in [0, online_count()).  Backed by
  /// a dense index maintained where the online bit flips (swap-remove on
  /// departure), so uniform draws over online peers are O(1) instead of
  /// rejection sampling over the id space -- which degrades badly at low
  /// online fractions and is hostile to sharded phases.  The ordering is
  /// an implementation detail, but it is a deterministic function of the
  /// online/offline flip history, so draws against it are reproducible.
  PeerId OnlinePeerAt(uint32_t i) const { return online_list_[i]; }

  /// Installs a delivery model (both must outlive the network; pass
  /// nullptr model to restore the built-in immediate path).  `events` is
  /// required for non-immediate models -- deferred deliveries are
  /// scheduled on it -- and may be nullptr otherwise.  Immediate models
  /// keep Send's inline synchronous path, so installing one is free.
  void SetDeliveryModel(const DeliveryModel* model, sim::EventQueue* events);

  const DeliveryModel* delivery_model() const { return delivery_; }
  /// True when deliveries are deferred through the event queue.
  bool deferred_delivery() const { return deferred_; }

  /// Sends `msg`; counts it under MessageTypeName(msg.type) and "msg.total".
  /// Returns true iff the destination was online at send time; a
  /// registered handler, if any, is invoked on delivery (synchronously,
  /// or at the model's scheduled arrival time when delivery is deferred).
  /// Peers never seen by Register/SetOnline are unreachable.
  bool Send(const Message& msg) {
    ShardLane* lane = tls_lane_;
    if (lane != nullptr) return LaneSend(*lane, msg);
    counters_->Add(type_ids_[TypeIndex(msg.type)]);
    counters_->Add(total_id_);
    if (msg.to >= handlers_.size() || !online_[msg.to]) {
      counters_->Add(lost_id_);
      return false;
    }
    if (deferred_) return SendDeferred(msg);
    // An online peer receives the message whether or not a handler object
    // is attached; most protocol logic in this library runs at system
    // level and only needs the delivered/lost outcome.
    MessageHandler* h = handlers_[msg.to];
    if (h != nullptr) h->HandleMessage(msg);
    return true;
  }

  /// Counts a message without delivering it.  Used for aggregate traffic
  /// the simulation accounts for statistically rather than hop-by-hop
  /// (e.g. duplication overhead factors).  Statistical traffic has no
  /// link, so no latency is charged under any delivery model.
  void CountOnly(MessageType type, uint64_t n = 1) {
    if (ShardLane* lane = tls_lane_; lane != nullptr) {
      lane->counter_delta[type_ids_[TypeIndex(type)]] += n;
      lane->counter_delta[total_id_] += n;
      return;
    }
    counters_->Add(type_ids_[TypeIndex(type)], n);
    counters_->Add(total_id_, n);
  }

  // --- Shard lanes (sharded round engine) -------------------------------

  /// Binds `lane` to the calling thread: until EndLane, this thread's
  /// Send/CountOnly/ChargeProbeTimeout accumulate into the lane instead of
  /// shared state (see ShardLane).  The lane must have been Prepare()d
  /// with counters()->NumCounters().  Per-thread, not per-network: a
  /// thread drives one system's phase at a time.
  void BeginLane(ShardLane* lane) { tls_lane_ = lane; }
  void EndLane() { tls_lane_ = nullptr; }

  /// Serially replays one logged order-sensitive effect from a lane, in
  /// task order, at the merge barrier: charges the latency sum, records
  /// the latency histogram sample and schedules the deferred arrival
  /// (or, for a timeout entry, just the latency charge).  Counter
  /// increments are NOT re-applied here -- they were captured in the
  /// lane's counter_delta and merged separately.
  void CommitDeferred(const ShardLane::Deferred& d);

  uint64_t TotalMessages() const { return counters_->Value(total_id_); }

  /// Total messages as observed by the *calling thread*: the shared
  /// counter plus the bound lane's pending delta, if any.  Query tasks in
  /// the sharded engine bracket this exactly like the serial path
  /// brackets TotalMessages() -- the shared counter is frozen during a
  /// parallel phase, so the before/after delta is the task's own traffic.
  uint64_t ObservedTotalMessages() const {
    uint64_t v = counters_->Value(total_id_);
    if (const ShardLane* lane = tls_lane_; lane != nullptr) {
      v += lane->counter_delta[total_id_];
    }
    return v;
  }

  /// Charged latency as observed by the calling thread (shared sum plus
  /// the bound lane's accumulator); the lane-mode analogue of bracketing
  /// total_latency_s().
  double ObservedLatencyS() const {
    const ShardLane* lane = tls_lane_;
    return lane != nullptr ? latency_sum_s_ + lane->latency_s
                           : latency_sum_s_;
  }
  uint64_t MessagesOfType(MessageType type) const {
    return counters_->Value(type_ids_[TypeIndex(type)]);
  }
  /// The interned id a message type is counted under (for callers that
  /// track per-round deltas without string lookups).
  CounterId CounterIdOf(MessageType type) const {
    return type_ids_[TypeIndex(type)];
  }
  CounterRegistry* counters() { return counters_; }

  // --- Latency accounting (populated only under deferred delivery) -----

  /// Running sum of every charged link delay, in seconds.  Callers
  /// bracket a protocol exchange (before/after delta) to measure its
  /// serialized path latency, e.g. PdhtSystem's per-lookup RTT samples.
  double total_latency_s() const { return latency_sum_s_; }

  /// Charges the delivery model's probe-detection timeout for a failed
  /// probe round from `from` toward `to` -- timeout-aware failed-probe
  /// costing (overlay::RoutingPolicy::timeout_costing): the sender
  /// waited ProbeTimeoutSeconds before giving up on the link, so that
  /// wait joins total_latency_s() (and thereby the per-lookup RTT
  /// brackets) and is tallied under "net.timeout".  A no-op under
  /// immediate delivery or a zero-timeout model.
  void ChargeProbeTimeout(PeerId from, PeerId to);

  /// Probe timeouts charged so far (the "net.timeout" counter).
  uint64_t TimeoutCount() const { return counters_->Value(timeout_id_); }
  /// The interned id timeouts are counted under (for per-round series).
  CounterId timeout_counter_id() const { return timeout_id_; }

  /// Tallies one replica-failover event under "net.failover": a dead
  /// terminal replica was skipped in favour of the next live one
  /// (overlay::RoutingPolicy::replica_route).  Timeout waits for the
  /// skipped replicas are charged separately via ChargeProbeTimeout.
  void CountFailover() {
    if (ShardLane* lane = tls_lane_; lane != nullptr) {
      lane->counter_delta[failover_id_] += 1;
      return;
    }
    counters_->Add(failover_id_);
  }

  /// Replica failovers so far (the "net.failover" counter).
  uint64_t FailoverCount() const { return counters_->Value(failover_id_); }
  /// The interned id failovers are counted under (for per-round series).
  CounterId failover_counter_id() const { return failover_id_; }

  /// Installs (or clears, with nullptr) the adaptive-RTO estimator fed
  /// by observed deferred-delivery delays (2x the one-way link delay as
  /// the round-trip proxy).  Not owned; must outlive the network.
  /// Determinism: Observe() fires only at serial points -- SendDeferred
  /// on the serial path and CommitDeferred's in-task-order replay --
  /// never from LaneSend inside a parallel phase, so estimator state is
  /// frozen while workers read it and results are shard-count invariant.
  void SetRttObserver(PeerRtoEstimator* obs) { rtt_observer_ = obs; }

  /// Per-message-type one-way link-delay samples, in milliseconds.
  const Histogram& TypeLatencyMs(MessageType type) const {
    return type_latency_ms_[TypeIndex(type)];
  }

  /// Messages handed to the event queue / dropped because the
  /// destination churned offline mid-flight.
  uint64_t DeferredCount() const { return counters_->Value(deferred_id_); }
  uint64_t DroppedCount() const { return counters_->Value(dropped_id_); }

  size_t num_registered() const { return handlers_.size(); }

 private:
  /// kCount (and anything out of range) maps to the "msg.invalid" slot,
  /// mirroring MessageTypeName's fallback.
  static size_t TypeIndex(MessageType type) {
    size_t i = static_cast<size_t>(type);
    return i < kNumTypes - 1 ? i : kNumTypes - 1;
  }

  static constexpr size_t kNumTypes =
      static_cast<size_t>(MessageType::kCount) + 1;

  /// Grows the per-peer arrays to cover `peer`; new slots are offline and
  /// unseen (the Send contract: never-seen peers are unreachable).
  void EnsureSlot(PeerId peer);

  /// The non-immediate delivery path: charges the model's link delay,
  /// records the latency sample and schedules the handler invocation on
  /// the event queue.  Out of line -- it only runs when a latency model
  /// is installed, and keeping it out of Send keeps the inline fast path
  /// small.
  bool SendDeferred(const Message& msg);

  /// Lane-mode Send: counter increments into the lane's delta buffer;
  /// deferred sends logged for serial replay.  Out of line to keep the
  /// serial fast path small.
  bool LaneSend(ShardLane& lane, const Message& msg);

  /// Schedules the arrival of a (possibly lane-logged) deferred message.
  void ScheduleArrival(const Message& msg, double delay_s);

  CounterRegistry* counters_;
  std::array<CounterId, kNumTypes> type_ids_;
  CounterId total_id_;
  CounterId lost_id_;      ///< "net.lost": sends to offline/unseen peers
  CounterId deferred_id_;  ///< "net.delivery.deferred"
  CounterId dropped_id_;   ///< "net.delivery.dropped"
  CounterId timeout_id_;   ///< "net.timeout": charged probe timeouts
  CounterId failover_id_;  ///< "net.failover": replica failover events
  // Struct-of-arrays peer state: parallel flat arrays indexed by PeerId,
  // plus a dense list of online peers for O(1) uniform draws.
  std::vector<MessageHandler*> handlers_;
  std::vector<bool> online_;
  std::vector<bool> seen_;            ///< touched by Register/SetOnline
  std::vector<PeerId> online_list_;   ///< dense: the online peers
  std::vector<uint32_t> online_pos_;  ///< peer -> index in online_list_

  static thread_local ShardLane* tls_lane_;

  const DeliveryModel* delivery_ = nullptr;  ///< not owned; null = immediate
  sim::EventQueue* events_ = nullptr;        ///< not owned
  PeerRtoEstimator* rtt_observer_ = nullptr;  ///< not owned; null = no RTO
  bool deferred_ = false;  ///< delivery_ != null && !delivery_->immediate()
  double latency_sum_s_ = 0.0;
  std::array<Histogram, kNumTypes> type_latency_ms_;
};

}  // namespace pdht::net

#endif  // PDHT_NET_NETWORK_H_
