// Simulated network with message accounting.
//
// Design decision #5 (DESIGN.md): protocols do not count their own
// messages; every send goes through Network::Send, which attributes the
// message to the per-type counter registry.  This prevents a protocol
// implementation from under-reporting its cost and gives the benches a
// single source of truth.
//
// Accounting is allocation-free: the constructor interns one CounterId
// per MessageType plus "msg.total", so the per-message cost of Send is
// two array increments (no string construction, no map walk).  Send is
// defined inline here because it sits on the innermost simulation loop.
//
// Delivery model: synchronous (the message is handed to the destination's
// handler immediately).  The paper's cost model counts messages, not
// latency, so a delay model is unnecessary; hop-by-hop control flow is
// expressed directly in the protocol code.  Sends to offline peers are
// counted (the bytes hit the wire) but flagged undelivered, which is what
// makes stale routing entries costly and probing worthwhile.

#ifndef PDHT_NET_NETWORK_H_
#define PDHT_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "stats/counter.h"

namespace pdht::net {

/// Interface implemented by anything that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

class Network {
 public:
  /// `counters` must outlive the network.
  explicit Network(CounterRegistry* counters);

  /// Registers/replaces the handler for `peer`.  Peers without handlers
  /// swallow deliveries (counted, not processed).  First registration
  /// brings the peer online; later SetOnline calls are never clobbered.
  void Register(PeerId peer, MessageHandler* handler);

  /// Marks a peer online/offline.  Offline peers receive nothing.
  void SetOnline(PeerId peer, bool online);
  bool IsOnline(PeerId peer) const {
    return peer < online_.size() && online_[peer];
  }

  /// Peers currently online.  Maintained where the bit flips (SetOnline/
  /// Register), so callers sizing rejection-sampling loops or bailing out
  /// of an all-offline network need no bookkeeping of their own.
  uint32_t online_count() const { return online_count_; }

  /// Sends `msg`; counts it under MessageTypeName(msg.type) and "msg.total".
  /// Returns true iff the destination was online (delivered); a registered
  /// handler, if any, is invoked on delivery.  Peers never seen by
  /// Register/SetOnline are unreachable.
  bool Send(const Message& msg) {
    counters_->Add(type_ids_[TypeIndex(msg.type)]);
    counters_->Add(total_id_);
    if (msg.to >= handlers_.size()) return false;
    if (!online_[msg.to]) return false;
    // An online peer receives the message whether or not a handler object
    // is attached; most protocol logic in this library runs at system
    // level and only needs the delivered/lost outcome.
    MessageHandler* h = handlers_[msg.to];
    if (h != nullptr) h->HandleMessage(msg);
    return true;
  }

  /// Counts a message without delivering it.  Used for aggregate traffic
  /// the simulation accounts for statistically rather than hop-by-hop
  /// (e.g. duplication overhead factors).
  void CountOnly(MessageType type, uint64_t n = 1) {
    counters_->Add(type_ids_[TypeIndex(type)], n);
    counters_->Add(total_id_, n);
  }

  uint64_t TotalMessages() const { return counters_->Value(total_id_); }
  uint64_t MessagesOfType(MessageType type) const {
    return counters_->Value(type_ids_[TypeIndex(type)]);
  }
  /// The interned id a message type is counted under (for callers that
  /// track per-round deltas without string lookups).
  CounterId CounterIdOf(MessageType type) const {
    return type_ids_[TypeIndex(type)];
  }
  CounterRegistry* counters() { return counters_; }

  size_t num_registered() const { return handlers_.size(); }

 private:
  /// kCount (and anything out of range) maps to the "msg.invalid" slot,
  /// mirroring MessageTypeName's fallback.
  static size_t TypeIndex(MessageType type) {
    size_t i = static_cast<size_t>(type);
    return i < kNumTypes - 1 ? i : kNumTypes - 1;
  }

  static constexpr size_t kNumTypes =
      static_cast<size_t>(MessageType::kCount) + 1;

  /// Grows the per-peer arrays to cover `peer`; new slots are offline and
  /// unseen (the Send contract: never-seen peers are unreachable).
  void EnsureSlot(PeerId peer);

  CounterRegistry* counters_;
  std::array<CounterId, kNumTypes> type_ids_;
  CounterId total_id_;
  std::vector<MessageHandler*> handlers_;
  std::vector<bool> online_;
  std::vector<bool> seen_;  ///< touched by Register/SetOnline
  uint32_t online_count_ = 0;
};

}  // namespace pdht::net

#endif  // PDHT_NET_NETWORK_H_
