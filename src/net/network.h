// Simulated network with message accounting.
//
// Design decision #5 (DESIGN.md): protocols do not count their own
// messages; every send goes through Network::Send, which attributes the
// message to the per-type counter registry.  This prevents a protocol
// implementation from under-reporting its cost and gives the benches a
// single source of truth.
//
// Delivery model: synchronous (the message is handed to the destination's
// handler immediately).  The paper's cost model counts messages, not
// latency, so a delay model is unnecessary; hop-by-hop control flow is
// expressed directly in the protocol code.  Sends to offline peers are
// counted (the bytes hit the wire) but flagged undelivered, which is what
// makes stale routing entries costly and probing worthwhile.

#ifndef PDHT_NET_NETWORK_H_
#define PDHT_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.h"
#include "stats/counter.h"

namespace pdht::net {

/// Interface implemented by anything that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

class Network {
 public:
  /// `counters` must outlive the network.
  explicit Network(CounterRegistry* counters);

  /// Registers/replaces the handler for `peer`.  Peers without handlers
  /// swallow deliveries (counted, not processed).
  void Register(PeerId peer, MessageHandler* handler);

  /// Marks a peer online/offline.  Offline peers receive nothing.
  void SetOnline(PeerId peer, bool online);
  bool IsOnline(PeerId peer) const;

  /// Sends `msg`; counts it under MessageTypeName(msg.type) and "msg.total".
  /// Returns true iff the destination was online (delivered); a registered
  /// handler, if any, is invoked on delivery.  Peers never seen by
  /// Register/SetOnline are unreachable.
  bool Send(const Message& msg);

  /// Counts a message without delivering it.  Used for aggregate traffic
  /// the simulation accounts for statistically rather than hop-by-hop
  /// (e.g. duplication overhead factors).
  void CountOnly(MessageType type, uint64_t n = 1);

  uint64_t TotalMessages() const;
  uint64_t MessagesOfType(MessageType type) const;
  CounterRegistry* counters() { return counters_; }

  size_t num_registered() const { return handlers_.size(); }

 private:
  CounterRegistry* counters_;
  std::vector<MessageHandler*> handlers_;
  std::vector<bool> online_;
};

}  // namespace pdht::net

#endif  // PDHT_NET_NETWORK_H_
