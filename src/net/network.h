// Simulated network with message accounting and pluggable delivery.
//
// Design decision #5 (DESIGN.md): protocols do not count their own
// messages; every send goes through Network::Send, which attributes the
// message to the per-type counter registry.  This prevents a protocol
// implementation from under-reporting its cost and gives the benches a
// single source of truth.
//
// Accounting is allocation-free: the constructor interns one CounterId
// per MessageType plus "msg.total", so the per-message cost of Send is
// two array increments (no string construction, no map walk).  Send is
// defined inline here because it sits on the innermost simulation loop.
//
// Delivery model: pluggable (net/delivery_model.h).  The default is
// immediate -- the message is handed to the destination's handler
// synchronously, which is all the paper's message-count metric needs --
// and Send keeps that path inline and branch-cheap.  Installing a
// non-immediate model (SetDeliveryModel) routes delivery through
// SendDeferred: the model's per-link one-way delay is charged to the
// message, recorded into a per-message-type latency histogram and into
// the running total_latency_s() (which PdhtSystem brackets to measure
// per-lookup RTT), and the handler invocation is deferred through the
// simulation EventQueue so the message lands at its scheduled time.
// Message *counts* are identical under every model: the model decides
// when a handler runs, never whether a message is charged.
//
// Sends to offline peers are counted (the bytes hit the wire) but flagged
// undelivered -- additionally tallied under "net.lost" -- which is what
// makes stale routing entries costly and probing worthwhile.  Send's
// boolean reports the destination's liveness at *send* time; under
// deferred delivery a peer that churns offline mid-flight silently drops
// the message at arrival ("net.delivery.dropped").

#ifndef PDHT_NET_NETWORK_H_
#define PDHT_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/delivery_model.h"
#include "net/message.h"
#include "stats/counter.h"
#include "stats/histogram.h"

namespace pdht::sim {
class EventQueue;
}  // namespace pdht::sim

namespace pdht::net {

/// Interface implemented by anything that can receive messages.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

class Network {
 public:
  /// `counters` must outlive the network.
  explicit Network(CounterRegistry* counters);

  /// Registers/replaces the handler for `peer`.  Peers without handlers
  /// swallow deliveries (counted, not processed).  First registration
  /// brings the peer online; later SetOnline calls are never clobbered.
  void Register(PeerId peer, MessageHandler* handler);

  /// Marks a peer online/offline.  Offline peers receive nothing.
  void SetOnline(PeerId peer, bool online);
  bool IsOnline(PeerId peer) const {
    return peer < online_.size() && online_[peer];
  }

  /// Peers currently online.  Maintained where the bit flips (SetOnline/
  /// Register), so callers sizing rejection-sampling loops or bailing out
  /// of an all-offline network need no bookkeeping of their own.
  uint32_t online_count() const { return online_count_; }

  /// Installs a delivery model (both must outlive the network; pass
  /// nullptr model to restore the built-in immediate path).  `events` is
  /// required for non-immediate models -- deferred deliveries are
  /// scheduled on it -- and may be nullptr otherwise.  Immediate models
  /// keep Send's inline synchronous path, so installing one is free.
  void SetDeliveryModel(const DeliveryModel* model, sim::EventQueue* events);

  const DeliveryModel* delivery_model() const { return delivery_; }
  /// True when deliveries are deferred through the event queue.
  bool deferred_delivery() const { return deferred_; }

  /// Sends `msg`; counts it under MessageTypeName(msg.type) and "msg.total".
  /// Returns true iff the destination was online at send time; a
  /// registered handler, if any, is invoked on delivery (synchronously,
  /// or at the model's scheduled arrival time when delivery is deferred).
  /// Peers never seen by Register/SetOnline are unreachable.
  bool Send(const Message& msg) {
    counters_->Add(type_ids_[TypeIndex(msg.type)]);
    counters_->Add(total_id_);
    if (msg.to >= handlers_.size() || !online_[msg.to]) {
      counters_->Add(lost_id_);
      return false;
    }
    if (deferred_) return SendDeferred(msg);
    // An online peer receives the message whether or not a handler object
    // is attached; most protocol logic in this library runs at system
    // level and only needs the delivered/lost outcome.
    MessageHandler* h = handlers_[msg.to];
    if (h != nullptr) h->HandleMessage(msg);
    return true;
  }

  /// Counts a message without delivering it.  Used for aggregate traffic
  /// the simulation accounts for statistically rather than hop-by-hop
  /// (e.g. duplication overhead factors).  Statistical traffic has no
  /// link, so no latency is charged under any delivery model.
  void CountOnly(MessageType type, uint64_t n = 1) {
    counters_->Add(type_ids_[TypeIndex(type)], n);
    counters_->Add(total_id_, n);
  }

  uint64_t TotalMessages() const { return counters_->Value(total_id_); }
  uint64_t MessagesOfType(MessageType type) const {
    return counters_->Value(type_ids_[TypeIndex(type)]);
  }
  /// The interned id a message type is counted under (for callers that
  /// track per-round deltas without string lookups).
  CounterId CounterIdOf(MessageType type) const {
    return type_ids_[TypeIndex(type)];
  }
  CounterRegistry* counters() { return counters_; }

  // --- Latency accounting (populated only under deferred delivery) -----

  /// Running sum of every charged link delay, in seconds.  Callers
  /// bracket a protocol exchange (before/after delta) to measure its
  /// serialized path latency, e.g. PdhtSystem's per-lookup RTT samples.
  double total_latency_s() const { return latency_sum_s_; }

  /// Charges the delivery model's probe-detection timeout for a failed
  /// probe round from `from` toward `to` -- timeout-aware failed-probe
  /// costing (overlay::RoutingPolicy::timeout_costing): the sender
  /// waited ProbeTimeoutSeconds before giving up on the link, so that
  /// wait joins total_latency_s() (and thereby the per-lookup RTT
  /// brackets) and is tallied under "net.timeout".  A no-op under
  /// immediate delivery or a zero-timeout model.
  void ChargeProbeTimeout(PeerId from, PeerId to);

  /// Probe timeouts charged so far (the "net.timeout" counter).
  uint64_t TimeoutCount() const { return counters_->Value(timeout_id_); }
  /// The interned id timeouts are counted under (for per-round series).
  CounterId timeout_counter_id() const { return timeout_id_; }

  /// Per-message-type one-way link-delay samples, in milliseconds.
  const Histogram& TypeLatencyMs(MessageType type) const {
    return type_latency_ms_[TypeIndex(type)];
  }

  /// Messages handed to the event queue / dropped because the
  /// destination churned offline mid-flight.
  uint64_t DeferredCount() const { return counters_->Value(deferred_id_); }
  uint64_t DroppedCount() const { return counters_->Value(dropped_id_); }

  size_t num_registered() const { return handlers_.size(); }

 private:
  /// kCount (and anything out of range) maps to the "msg.invalid" slot,
  /// mirroring MessageTypeName's fallback.
  static size_t TypeIndex(MessageType type) {
    size_t i = static_cast<size_t>(type);
    return i < kNumTypes - 1 ? i : kNumTypes - 1;
  }

  static constexpr size_t kNumTypes =
      static_cast<size_t>(MessageType::kCount) + 1;

  /// Grows the per-peer arrays to cover `peer`; new slots are offline and
  /// unseen (the Send contract: never-seen peers are unreachable).
  void EnsureSlot(PeerId peer);

  /// The non-immediate delivery path: charges the model's link delay,
  /// records the latency sample and schedules the handler invocation on
  /// the event queue.  Out of line -- it only runs when a latency model
  /// is installed, and keeping it out of Send keeps the inline fast path
  /// small.
  bool SendDeferred(const Message& msg);

  CounterRegistry* counters_;
  std::array<CounterId, kNumTypes> type_ids_;
  CounterId total_id_;
  CounterId lost_id_;      ///< "net.lost": sends to offline/unseen peers
  CounterId deferred_id_;  ///< "net.delivery.deferred"
  CounterId dropped_id_;   ///< "net.delivery.dropped"
  CounterId timeout_id_;   ///< "net.timeout": charged probe timeouts
  std::vector<MessageHandler*> handlers_;
  std::vector<bool> online_;
  std::vector<bool> seen_;  ///< touched by Register/SetOnline
  uint32_t online_count_ = 0;

  const DeliveryModel* delivery_ = nullptr;  ///< not owned; null = immediate
  sim::EventQueue* events_ = nullptr;        ///< not owned
  bool deferred_ = false;  ///< delivery_ != null && !delivery_->immediate()
  double latency_sum_s_ = 0.0;
  std::array<Histogram, kNumTypes> type_latency_ms_;
};

}  // namespace pdht::net

#endif  // PDHT_NET_NETWORK_H_
