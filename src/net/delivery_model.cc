#include "net/delivery_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/hash.h"

namespace pdht::net {

namespace {

/// Domain-separation salts so coordinates and jitter draw from
/// independent hash families of the same seed.
constexpr uint64_t kCoordSalt = 0x636f6f7264ULL;   // "coord"
constexpr uint64_t kJitterSalt = 0x6a69747472ULL;  // "jittr"

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

const char* DeliveryModelName(DeliveryModelKind k) {
  switch (k) {
    case DeliveryModelKind::kImmediate:
      return "immediate";
    case DeliveryModelKind::kLatency:
      return "latency";
  }
  return "unknown";
}

bool ParseDeliveryModel(const std::string& name, DeliveryModelKind* out) {
  const std::string lower = ToLower(name);
  if (lower == "immediate") {
    *out = DeliveryModelKind::kImmediate;
    return true;
  }
  if (lower == "latency") {
    *out = DeliveryModelKind::kLatency;
    return true;
  }
  return false;
}

std::string LatencyConfig::Validate() const {
  if (!(base_ms >= 0.0)) return "latency.base_ms must be >= 0";
  if (!(ms_per_unit >= 0.0)) return "latency.ms_per_unit must be >= 0";
  if (!(jitter_ms >= 0.0)) return "latency.jitter_ms must be >= 0";
  if (base_ms + ms_per_unit + jitter_ms <= 0.0) {
    return "latency model with all-zero delays: use delivery_model = "
           "immediate instead";
  }
  return "";
}

LatencyDelivery::LatencyDelivery(const LatencyConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {}

void LatencyDelivery::Coordinate(PeerId peer, double* x, double* y) const {
  const uint64_t h =
      Mix64(HashCombine(HashCombine(seed_, kCoordSalt), peer));
  // Top/bottom 32 bits -> two uniforms in [0, 1).
  *x = static_cast<double>(h >> 32) * 0x1p-32;
  *y = static_cast<double>(h & 0xffffffffULL) * 0x1p-32;
}

double LatencyDelivery::JitterMs(PeerId a, PeerId b) const {
  // Unordered link key: both directions of a link share the jitter term,
  // keeping RttMs symmetric.
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  const uint64_t h = Mix64(HashCombine(HashCombine(seed_, kJitterSalt),
                                       HashCombine(lo, hi)));
  return config_.jitter_ms * (static_cast<double>(h >> 11) * 0x1p-53);
}

double LatencyDelivery::LinkDelaySeconds(PeerId from, PeerId to) const {
  double fx, fy, tx, ty;
  Coordinate(from, &fx, &fy);
  Coordinate(to, &tx, &ty);
  const double dist = std::hypot(fx - tx, fy - ty);
  const double ms =
      config_.base_ms + config_.ms_per_unit * dist + JitterMs(from, to);
  return ms * 1e-3;
}

}  // namespace pdht::net
