#include "net/delivery_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "net/rtt_estimator.h"
#include "util/hash.h"

namespace pdht::net {

namespace {

/// Domain-separation salts so coordinates, jitter, cluster membership
/// and cluster centers draw from independent hash families of the same
/// seed.
constexpr uint64_t kCoordSalt = 0x636f6f7264ULL;    // "coord"
constexpr uint64_t kJitterSalt = 0x6a69747472ULL;   // "jittr"
constexpr uint64_t kClusterSalt = 0x636c757374ULL;  // "clust"
constexpr uint64_t kCenterSalt = 0x636e747273ULL;   // "cntrs"

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

const char* DeliveryModelName(DeliveryModelKind k) {
  switch (k) {
    case DeliveryModelKind::kImmediate:
      return "immediate";
    case DeliveryModelKind::kLatency:
      return "latency";
  }
  return "unknown";
}

bool ParseDeliveryModel(const std::string& name, DeliveryModelKind* out) {
  const std::string lower = ToLower(name);
  if (lower == "immediate") {
    *out = DeliveryModelKind::kImmediate;
    return true;
  }
  if (lower == "latency") {
    *out = DeliveryModelKind::kLatency;
    return true;
  }
  return false;
}

const char* LatencyTopologyName(LatencyTopology t) {
  switch (t) {
    case LatencyTopology::kUniform:
      return "uniform";
    case LatencyTopology::kTransitStub:
      return "transit_stub";
  }
  return "unknown";
}

bool ParseLatencyTopology(const std::string& name, LatencyTopology* out) {
  const std::string lower = ToLower(name);
  if (lower == "uniform") {
    *out = LatencyTopology::kUniform;
    return true;
  }
  if (lower == "transit_stub") {
    *out = LatencyTopology::kTransitStub;
    return true;
  }
  return false;
}

std::string LatencyConfig::Validate() const {
  if (!(base_ms >= 0.0)) return "latency.base_ms must be >= 0";
  if (!(ms_per_unit >= 0.0)) return "latency.ms_per_unit must be >= 0";
  if (!(jitter_ms >= 0.0)) return "latency.jitter_ms must be >= 0";
  if (!(timeout_ms >= 0.0)) return "latency.timeout_ms must be >= 0";
  if (!(rto_min_ms >= 0.0)) return "latency.rto_min_ms must be >= 0";
  if (!(rto_max_ms >= 0.0)) return "latency.rto_max_ms must be >= 0";
  if (rto_max_ms > 0.0 && rto_max_ms < rto_min_ms) {
    return "latency.rto_max_ms must be >= rto_min_ms";
  }
  if (base_ms + ms_per_unit + jitter_ms <= 0.0) {
    return "latency model with all-zero delays: use delivery_model = "
           "immediate instead";
  }
  if (topology == LatencyTopology::kTransitStub) {
    if (num_clusters < 1) return "latency.num_clusters must be >= 1";
    if (!(cluster_spread >= 0.0)) {
      return "latency.cluster_spread must be >= 0";
    }
  }
  return "";
}

LatencyDelivery::LatencyDelivery(const LatencyConfig& config, uint64_t seed)
    : config_(config), seed_(seed) {}

uint32_t LatencyDelivery::ClusterOf(PeerId peer) const {
  if (config_.topology != LatencyTopology::kTransitStub) return 0;
  return static_cast<uint32_t>(
      Mix64(HashCombine(HashCombine(seed_, kClusterSalt), peer)) %
      config_.num_clusters);
}

void LatencyDelivery::Coordinate(PeerId peer, double* x, double* y) const {
  const uint64_t h =
      Mix64(HashCombine(HashCombine(seed_, kCoordSalt), peer));
  // Top/bottom 32 bits -> two uniforms in [0, 1).
  const double u = static_cast<double>(h >> 32) * 0x1p-32;
  const double v = static_cast<double>(h & 0xffffffffULL) * 0x1p-32;
  if (config_.topology == LatencyTopology::kTransitStub) {
    // Stub domain center (hashed per cluster) plus a small per-peer
    // offset: intra-cluster distances are O(cluster_spread), while
    // inter-cluster links pay the center-to-center transit distance.
    const uint64_t hc = Mix64(HashCombine(HashCombine(seed_, kCenterSalt),
                                          ClusterOf(peer)));
    *x = static_cast<double>(hc >> 32) * 0x1p-32 +
         config_.cluster_spread * (2.0 * u - 1.0);
    *y = static_cast<double>(hc & 0xffffffffULL) * 0x1p-32 +
         config_.cluster_spread * (2.0 * v - 1.0);
    return;
  }
  *x = u;
  *y = v;
}

double LatencyDelivery::JitterMs(PeerId a, PeerId b) const {
  // Unordered link key: both directions of a link share the jitter term,
  // keeping RttMs symmetric.
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  const uint64_t h = Mix64(HashCombine(HashCombine(seed_, kJitterSalt),
                                       HashCombine(lo, hi)));
  return config_.jitter_ms * (static_cast<double>(h >> 11) * 0x1p-53);
}

double LatencyDelivery::LinkDelaySeconds(PeerId from, PeerId to) const {
  double fx, fy, tx, ty;
  Coordinate(from, &fx, &fy);
  Coordinate(to, &tx, &ty);
  const double dist = std::hypot(fx - tx, fy - ty);
  const double ms =
      config_.base_ms + config_.ms_per_unit * dist + JitterMs(from, to);
  // No link is ever cheaper than the fixed per-link floor, whatever the
  // distance/jitter terms evaluate to (a no-op under Validate()d configs,
  // where both terms are non-negative).
  return std::max(ms, config_.base_ms) * 1e-3;
}

double LatencyDelivery::ProbeTimeoutSeconds(PeerId from, PeerId to) const {
  if (rto_ != nullptr) return rto_->RtoMs(from, to) * 1e-3;
  return config_.timeout_ms * 1e-3;
}

}  // namespace pdht::net
