// Application facade: the paper's decentralized news system end-to-end.
//
// Wires the metadata substrate (articles -> predicate keys, Section 1/4)
// to the PDHT (core/pdht_system.h) behind the API a downstream application
// would actually use:
//
//   NewsService svc(options);
//   svc.Run(rounds);                             // background traffic
//   auto res = svc.Search("title=Weather Iraklion");
//   auto res2 = svc.SearchConjunction({"title", "..."}, {"date", "..."});
//
// The service owns the hash->dense-key mapping (the DHT key space is the
// 64-bit predicate-hash space; the workload generator operates on dense
// ids) and resolves query results back to article ids.

#ifndef PDHT_APP_NEWS_SERVICE_H_
#define PDHT_APP_NEWS_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pdht_system.h"
#include "metadata/article.h"
#include "metadata/key_generator.h"

namespace pdht::app {

struct NewsServiceOptions {
  uint64_t num_articles = 100;
  uint32_t keys_per_article = 20;
  uint64_t corpus_seed = 2004;
  /// PDHT configuration; `params.keys` is overwritten with the corpus's
  /// actual distinct-key count.
  core::SystemConfig system;
};

/// Result of one application-level search.
struct SearchResult {
  bool found = false;                ///< the predicate resolved to a value.
  bool answered_from_index = false;  ///< served by the DHT index.
  uint64_t messages = 0;             ///< total network cost of this search.
  std::vector<uint64_t> article_ids; ///< articles matching the predicate.
  std::string predicate;             ///< canonical predicate searched.
};

class NewsService {
 public:
  explicit NewsService(const NewsServiceOptions& options);

  /// Advances background traffic (the whole population querying with the
  /// configured Zipf workload) by `rounds` rounds.
  void Run(uint64_t rounds);

  /// Searches for an exact canonical predicate, e.g.
  /// "title=Weather Iraklion" or "date=2004/03/14 AND title=...".
  /// Unknown predicates cost a full broadcast search and return found =
  /// false -- exactly the system behaviour the paper models.
  SearchResult Search(const std::string& predicate);

  /// Convenience: canonicalizes and searches `a AND b`.
  SearchResult SearchConjunction(const metadata::MetadataPair& a,
                                 const metadata::MetadataPair& b);

  /// All canonical predicates for an article (what a publisher announces).
  std::vector<std::string> PredicatesOf(uint64_t article_id) const;

  const metadata::ArticleCorpus& corpus() const { return corpus_; }
  core::PdhtSystem& system() { return *system_; }
  uint64_t key_universe_size() const { return hash_to_dense_.size(); }

  /// Dense key id for a predicate, or kUnknownKey.
  static constexpr uint64_t kUnknownKey = UINT64_MAX;
  uint64_t DenseKeyOf(const std::string& predicate) const;

 private:
  metadata::ArticleCorpus corpus_;
  metadata::KeyGenerator generator_;
  std::unordered_map<uint64_t, uint64_t> hash_to_dense_;
  std::vector<std::vector<uint64_t>> dense_to_articles_;
  std::vector<std::string> dense_to_predicate_;
  std::unique_ptr<core::PdhtSystem> system_;
};

}  // namespace pdht::app

#endif  // PDHT_APP_NEWS_SERVICE_H_
