#include "app/news_service.h"

#include <algorithm>
#include <cassert>

#include "metadata/predicate.h"

namespace pdht::app {

NewsService::NewsService(const NewsServiceOptions& options)
    : corpus_(options.num_articles, options.keys_per_article,
              options.corpus_seed),
      generator_(options.keys_per_article) {
  // Build the dense key space from the corpus's predicate hashes.
  for (const auto& article : corpus_.articles()) {
    for (const auto& key : generator_.KeysFor(article)) {
      auto [it, inserted] =
          hash_to_dense_.try_emplace(key.hash, dense_to_articles_.size());
      if (inserted) {
        dense_to_articles_.emplace_back();
        dense_to_predicate_.push_back(key.predicate);
      }
      auto& holders = dense_to_articles_[it->second];
      if (std::find(holders.begin(), holders.end(), article.id) ==
          holders.end()) {
        holders.push_back(article.id);
      }
    }
  }
  core::SystemConfig config = options.system;
  config.params.keys = dense_to_articles_.size();
  assert(config.Validate().empty());
  system_ = std::make_unique<core::PdhtSystem>(config);
}

void NewsService::Run(uint64_t rounds) { system_->RunRounds(rounds); }

uint64_t NewsService::DenseKeyOf(const std::string& predicate) const {
  auto it = hash_to_dense_.find(
      metadata::KeyGenerator::HashPredicate(predicate));
  return it == hash_to_dense_.end() ? kUnknownKey : it->second;
}

SearchResult NewsService::Search(const std::string& predicate) {
  SearchResult result;
  // Canonicalize first so term order and spacing don't matter; fall back
  // to the raw string when the input doesn't parse (it will simply miss).
  std::string normalized = metadata::NormalizePredicate(predicate);
  result.predicate = normalized.empty() ? predicate : normalized;
  uint64_t dense = DenseKeyOf(result.predicate);
  if (dense == kUnknownKey) {
    // The predicate matches nothing in the network.  A peer cannot know
    // that in advance, so it still pays for a (failing) search; charge a
    // broadcast search like the paper's unanswerable-query path.
    core::QueryOutcome out = system_->ExecuteQuery(
        // Query an arbitrary existing key id but force the cost of the
        // miss path by querying the least popular key -- approximation:
        // application-level unknown predicates are rare and their exact
        // cost model is out of the paper's scope.
        system_->workload().KeyAtRank(system_->workload().num_keys()));
    result.messages = out.index_messages + out.unstructured_messages;
    result.found = false;
    return result;
  }
  core::QueryOutcome out = system_->ExecuteQuery(dense);
  result.found = out.found;
  result.answered_from_index = out.answered_from_index;
  result.messages = out.index_messages + out.unstructured_messages;
  if (out.found) result.article_ids = dense_to_articles_[dense];
  return result;
}

SearchResult NewsService::SearchConjunction(const metadata::MetadataPair& a,
                                            const metadata::MetadataPair& b) {
  return Search(metadata::KeyGenerator::ConjunctivePredicate(a, b));
}

std::vector<std::string> NewsService::PredicatesOf(
    uint64_t article_id) const {
  std::vector<std::string> out;
  if (article_id >= corpus_.size()) return out;
  for (const auto& key : generator_.KeysFor(corpus_.at(article_id))) {
    out.push_back(key.predicate);
  }
  return out;
}

}  // namespace pdht::app
