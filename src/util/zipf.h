// Zipf-distributed sampling.
//
// The paper assumes queries for keys are Zipf distributed with parameter
// alpha = 1.2 as observed for Gnutella queries [Srip01].  The probability of
// querying the key of popularity rank r (1-based) among `n` keys is
//
//     prob(r) = r^-alpha / sum_{x=1..n} x^-alpha                      (Eq. 3)
//
// Two samplers are provided:
//  * ZipfSampler: exact inverse-CDF sampling over a precomputed cumulative
//    table (O(log n) per sample, O(n) memory).  Used by workload generators
//    where n = 40,000 keys.
//  * ZipfRejectionSampler: Jason Crease / rejection-inversion style sampler
//    with O(1) memory, used in property tests as an independent check.

#ifndef PDHT_UTIL_ZIPF_H_
#define PDHT_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace pdht {

/// Returns the generalized harmonic number H_{n,alpha} = sum_{x=1..n} x^-alpha.
double GeneralizedHarmonic(uint64_t n, double alpha);

/// Exact Zipf(alpha) sampler over ranks {1, ..., n} using a cumulative
/// probability table and binary search.
class ZipfSampler {
 public:
  /// Builds the cumulative table.  Requires n >= 1 and alpha >= 0.
  /// alpha == 0 degenerates to the uniform distribution over ranks.
  ZipfSampler(uint64_t n, double alpha);

  /// Samples a rank in {1, ..., n}.
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank r (1-based); 0 outside {1..n}.
  double Pmf(uint64_t rank) const;

  /// Cumulative probability of ranks {1..rank}; equals 1 for rank >= n.
  double Cdf(uint64_t rank) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  double harmonic_;             // H_{n,alpha}
  std::vector<double> cum_;     // cum_[r-1] = Cdf(r)
};

/// O(1)-memory approximate-free Zipf sampler based on rejection inversion
/// (W. Hörmann & G. Derflinger, "Rejection-inversion to generate variates
/// from monotone discrete distributions").  Exact distribution, no table.
/// Requires alpha > 0 and alpha != 1 handled via the generalized integral.
class ZipfRejectionSampler {
 public:
  ZipfRejectionSampler(uint64_t n, double alpha);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  // Antiderivative H(x) of x^-alpha and its inverse.
  double H(double x) const;
  double HInverse(double u) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;       // H(1.5) - 1
  double h_n_;        // H(n + 0.5)
  double s_;          // 2 - HInverse(H(2.5) - 2^-alpha)
};

}  // namespace pdht

#endif  // PDHT_UTIL_ZIPF_H_
