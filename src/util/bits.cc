#include "util/bits.h"

#include <bit>
#include <cmath>

namespace pdht {

int FloorLog2(uint64_t x) {
  return 63 - std::countl_zero(x);
}

int CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

double Log2(double x) {
  return std::log2(x);
}

int CommonPrefixLength(uint64_t a, uint64_t b) {
  uint64_t diff = a ^ b;
  if (diff == 0) return 64;
  return std::countl_zero(diff);
}

uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << CeilLog2(x);
}

}  // namespace pdht
