// Minimal leveled logging for the library, benchmarks and examples.
//
// We deliberately avoid a heavyweight logging dependency: simulation inner
// loops must not pay for disabled log statements, so the macros check the
// global level before evaluating their arguments.

#ifndef PDHT_UTIL_LOGGING_H_
#define PDHT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pdht {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line (adds level tag and newline).  Thread-compatible:
/// the library is single-threaded by design (deterministic simulation),
/// so no locking is performed.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-collecting helper used by the PDHT_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pdht

/// Usage: PDHT_LOG(kInfo) << "round " << r << " cost " << c;
#define PDHT_LOG(severity)                                               \
  if (::pdht::LogLevel::severity < ::pdht::GetLogLevel()) {              \
  } else                                                                 \
    ::pdht::internal::LogLine(::pdht::LogLevel::severity)

#endif  // PDHT_UTIL_LOGGING_H_
