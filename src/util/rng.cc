#include "util/rng.h"

#include <cmath>

namespace pdht {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from SplitMix64 as recommended by the
  // xoshiro authors; this avoids correlated low-entropy states.
  uint64_t sm = seed;
  s_[0] = SplitMix64Next(&sm);
  s_[1] = SplitMix64Next(&sm);
  s_[2] = SplitMix64Next(&sm);
  s_[3] = SplitMix64Next(&sm);
  // An all-zero state would be a fixed point; the SplitMix64 outputs make
  // that astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double rate) {
  // Inverse-CDF; 1 - U is in (0, 1] so the log argument is never zero.
  return -std::log(1.0 - UniformDouble()) / rate;
}

uint64_t Rng::Geometric(double p) {
  if (p >= 1.0) return 1;
  // Inverse-CDF of the geometric distribution on {1, 2, ...}.
  double u = UniformDouble();
  double v = std::log1p(-u) / std::log1p(-p);
  uint64_t k = static_cast<uint64_t>(std::ceil(v));
  return k == 0 ? 1 : k;
}

Rng Rng::Fork() {
  // Derive the child's seed from two outputs of this stream; the SplitMix64
  // re-seeding in the constructor decorrelates parent and child.
  uint64_t a = Next();
  uint64_t b = Next();
  return Rng(a ^ Rotl(b, 32) ^ 0xd1342543de82ef95ULL);
}

}  // namespace pdht
