#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdht {

double GeneralizedHarmonic(uint64_t n, double alpha) {
  // Sum from the smallest terms up for slightly better floating point
  // accuracy (the tail terms are tiny for alpha > 1).
  double h = 0.0;
  for (uint64_t x = n; x >= 1; --x) {
    h += std::pow(static_cast<double>(x), -alpha);
  }
  return h;
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha)
    : n_(n), alpha_(alpha), cum_(n) {
  assert(n >= 1);
  assert(alpha >= 0.0);
  double acc = 0.0;
  for (uint64_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -alpha);
    cum_[r - 1] = acc;
  }
  harmonic_ = acc;
  for (double& c : cum_) c /= harmonic_;
  cum_[n - 1] = 1.0;  // guard against rounding leaving the last bucket < 1
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  return static_cast<uint64_t>(it - cum_.begin()) + 1;
}

double ZipfSampler::Pmf(uint64_t rank) const {
  if (rank < 1 || rank > n_) return 0.0;
  return std::pow(static_cast<double>(rank), -alpha_) / harmonic_;
}

double ZipfSampler::Cdf(uint64_t rank) const {
  if (rank < 1) return 0.0;
  if (rank >= n_) return 1.0;
  return cum_[rank - 1];
}

ZipfRejectionSampler::ZipfRejectionSampler(uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  assert(n >= 1);
  assert(alpha > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfRejectionSampler::H(double x) const {
  // Antiderivative of x^-alpha: x^(1-alpha)/(1-alpha), with the alpha == 1
  // limit log(x).
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double ZipfRejectionSampler::HInverse(double u) const {
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(u);
  return std::pow(u * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

uint64_t ZipfRejectionSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    double u = h_n_ + rng.UniformDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -alpha_)) {
      return k;
    }
  }
}

}  // namespace pdht
