// Small bit-manipulation helpers shared by the DHT id space and the
// analytical model (which works in a binary key space, cf. paper footnote 3).

#ifndef PDHT_UTIL_BITS_H_
#define PDHT_UTIL_BITS_H_

#include <cstdint>

namespace pdht {

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// ceil(log2(x)) for x >= 1 (CeilLog2(1) == 0).
int CeilLog2(uint64_t x);

/// log2 as a double; returns -inf for x <= 0.
double Log2(double x);

/// Number of leading bits shared by a and b (0..64).
int CommonPrefixLength(uint64_t a, uint64_t b);

/// Returns x rounded up to the next power of two (returns 1 for x == 0).
uint64_t NextPow2(uint64_t x);

}  // namespace pdht

#endif  // PDHT_UTIL_BITS_H_
