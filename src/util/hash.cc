#include "util/hash.h"

namespace pdht {

namespace {
constexpr uint64_t kFnvBasis64 = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime64 = 0x100000001b3ULL;
}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64Seeded(data, kFnvBasis64);
}

uint64_t Fnv1a64Seeded(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime64;
  }
  return h;
}

Hash128 Fnv1a128(std::string_view data) {
  // Two independent 64-bit streams with distinct bases; adequate for the
  // collision statistics we need (not cryptographic).
  Hash128 out;
  out.hi = Fnv1a64Seeded(data, kFnvBasis64);
  out.lo = Fnv1a64Seeded(data, 0x6c62272e07bb0142ULL);
  return out;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine style, widened to 64 bits.
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

std::string ToBinaryPrefix(uint64_t h, int bits) {
  std::string s;
  s.reserve(bits);
  for (int i = 0; i < bits; ++i) {
    s.push_back(((h >> (63 - i)) & 1) ? '1' : '0');
  }
  return s;
}

}  // namespace pdht
