// Hashing utilities.
//
// The paper generates DHT keys by hashing single or concatenated metadata
// element-value pairs, e.g.  key = hash(title = "Weather Iraklion" AND
// date = "2004/03/14") [FeBi04].  We provide FNV-1a (64-bit) for string
// hashing into the binary key space and a 128-bit variant for collision
// tests, plus mixing helpers for integer keys.

#ifndef PDHT_UTIL_HASH_H_
#define PDHT_UTIL_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pdht {

/// 64-bit FNV-1a hash of a byte string.
uint64_t Fnv1a64(std::string_view data);

/// FNV-1a with an explicit seed/basis so independent hash families can be
/// derived (used for replica placement vs. key-space placement).
uint64_t Fnv1a64Seeded(std::string_view data, uint64_t seed);

/// 128-bit FNV-1a (returned as two 64-bit halves) for collision analysis.
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool operator==(const Hash128&) const = default;
};
Hash128 Fnv1a128(std::string_view data);

/// Finalizing integer mixer (Stafford variant 13 of the MurmurHash3
/// finalizer).  Bijective on 64-bit values.
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes (order-sensitive).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Returns the `bits` most significant bits of `h` as a zero-padded binary
/// string, e.g. ToBinaryPrefix(0x8000...,4) == "1000".  Used by the P-Grid
/// overlay whose routing works on binary key prefixes.
std::string ToBinaryPrefix(uint64_t h, int bits);

}  // namespace pdht

#endif  // PDHT_UTIL_HASH_H_
