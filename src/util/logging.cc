#include "util/logging.h"

#include <cstdio>

namespace pdht {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[pdht %s] %s\n", LevelTag(level), msg.c_str());
}

}  // namespace pdht
