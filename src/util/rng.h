// Deterministic pseudo-random number generation for reproducible simulation.
//
// All randomness in the PDHT library flows through Rng instances seeded from
// a single experiment seed, so that every experiment run is bit-for-bit
// reproducible.  We implement xoshiro256** (Blackman & Vigna) seeded via
// SplitMix64 rather than relying on std::mt19937_64 because (a) the
// algorithm is fixed across standard library implementations, and (b) it is
// substantially faster, which matters for message-level simulation of
// 20,000-peer networks.

#ifndef PDHT_UTIL_RNG_H_
#define PDHT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace pdht {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding xoshiro and as a cheap standalone mixer.
uint64_t SplitMix64Next(uint64_t* state);

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions where convenient, but most call sites use
/// the direct helpers (UniformU64, UniformDouble, Bernoulli, ...) which are
/// deterministic across platforms.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed.  Two generators built from
  /// the same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next raw 64-bit output.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Returns a uniform integer in [0, bound).  `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns an exponentially distributed value with the given rate
  /// (mean 1/rate).  Requires rate > 0.
  double Exponential(double rate);

  /// Returns a geometrically distributed trial count in {1, 2, ...} with
  /// success probability `p` in (0, 1].
  uint64_t Geometric(double p);

  /// Creates a child generator whose stream is independent of this one for
  /// practical purposes.  Used to hand each subsystem its own stream.
  Rng Fork();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(T* data, size_t n) {
    if (n < 2) return;
    for (size_t i = n - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      T tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace pdht

#endif  // PDHT_UTIL_RNG_H_
