#include "exp/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace pdht::exp {

ParallelRunner::ParallelRunner(RunnerOptions options) : options_(options) {}

unsigned ParallelRunner::EffectiveThreads(unsigned requested,
                                          size_t num_cells) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (num_cells < n) n = static_cast<unsigned>(std::max<size_t>(1, num_cells));
  return n;
}

std::vector<CellResult> ParallelRunner::Run(const ExperimentSpec& spec) const {
  const size_t n = spec.NumCells();
  std::vector<CellResult> results(n);
  const unsigned threads = EffectiveThreads(options_.threads, n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) results[i] = RunCell(spec, i);
    return results;
  }

  std::atomic<size_t> next{0};
  auto worker = [&spec, &results, &next, n]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      results[i] = RunCell(spec, i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace pdht::exp
