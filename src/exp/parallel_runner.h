// Thread-pool executor for ExperimentSpec grids.
//
// Each grid cell is an independent simulation (own Rng, Network,
// RoundEngine; no shared mutable state -- the overlay factory registry is
// read-only after static init), so cells run embarrassingly parallel.
// Workers pull flat cell indices from an atomic counter and write results
// into a pre-sized vector slot, so the output order -- and, because cell
// seeds derive from the index alone, the output *values* -- are identical
// at any thread count.

#ifndef PDHT_EXP_PARALLEL_RUNNER_H_
#define PDHT_EXP_PARALLEL_RUNNER_H_

#include <cstddef>
#include <vector>

#include "exp/experiment.h"

namespace pdht::exp {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (or 1 when
  /// that is unknown).  Never more threads than cells.
  unsigned threads = 0;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions options = {});

  /// Executes every cell of `spec` and returns results ordered by flat
  /// cell index.  Per-cell failures land in CellResult::error; the
  /// sweep itself never throws.
  std::vector<CellResult> Run(const ExperimentSpec& spec) const;

  /// The thread count actually used for `num_cells` units of work given
  /// the requested count (0 = auto).
  static unsigned EffectiveThreads(unsigned requested, size_t num_cells);

  unsigned threads() const { return options_.threads; }

 private:
  RunnerOptions options_;
};

}  // namespace pdht::exp

#endif  // PDHT_EXP_PARALLEL_RUNNER_H_
