#include "exp/experiment.h"

#include <algorithm>
#include <exception>
#include <limits>

#include "util/hash.h"

namespace pdht::exp {

namespace {

/// Mixed-radix decode of a grid point into per-axis level indices, last
/// axis fastest.  Pure; shared by MakeCell and Aggregate so a grid
/// point's labels can be reconstructed even when every seed failed
/// before its cell was materialized.
std::vector<size_t> DecodeLevels(const std::vector<Axis>& axes,
                                 size_t grid_index) {
  std::vector<size_t> level_idx(axes.size(), 0);
  size_t rem = grid_index;
  for (size_t a = axes.size(); a-- > 0;) {
    size_t n = std::max<size_t>(1, axes[a].levels.size());
    level_idx[a] = rem % n;
    rem /= n;
  }
  return level_idx;
}

}  // namespace

size_t ExperimentSpec::GridSize() const {
  size_t n = 1;
  for (const Axis& a : axes) n *= a.levels.size();
  return n;
}

size_t ExperimentSpec::NumCells() const {
  return GridSize() * std::max<uint32_t>(1, seeds_per_cell);
}

Cell ExperimentSpec::MakeCell(size_t index) const {
  const uint32_t seeds = std::max<uint32_t>(1, seeds_per_cell);
  Cell cell;
  cell.index = index;
  cell.seed_index = static_cast<uint32_t>(index % seeds);
  cell.grid_index = index / seeds;
  cell.config = base;

  std::vector<size_t> level_idx = DecodeLevels(axes, cell.grid_index);
  cell.labels.reserve(axes.size());
  for (size_t a = 0; a < axes.size(); ++a) {
    // .at(): an empty axis means an empty grid (GridSize() == 0), so a
    // direct MakeCell on one is misuse -- throw rather than read OOB.
    const AxisLevel& level = axes[a].levels.at(level_idx[a]);
    cell.labels.push_back(level.label);
    if (level.apply) level.apply(cell.config);
  }
  cell.config.seed = DeriveCellSeed(base.seed, index);
  return cell;
}

uint64_t DeriveCellSeed(uint64_t base_seed, size_t cell_index) {
  return Mix64(HashCombine(base_seed, cell_index));
}

CellResult RunCell(const ExperimentSpec& spec, size_t index) {
  CellResult result;
  result.index = index;
  // The whole cell lifecycle stays inside the try: an apply-patch or
  // constructor that throws must land in result.error, not escape into
  // a worker thread (which would std::terminate the sweep).
  try {
    Cell cell = spec.MakeCell(index);
    result.grid_index = cell.grid_index;
    result.seed_index = cell.seed_index;
    result.labels = cell.labels;

    // Validate eagerly: PdhtSystem's own check is an assert, which is
    // compiled out in release builds, and a bad patch must not take the
    // whole sweep down.
    std::string err = cell.config.Validate();
    if (!err.empty()) {
      result.error = err;
      return result;
    }
    core::PdhtSystem sys(cell.config);
    if (spec.run) {
      spec.run(sys, cell);
    } else {
      sys.RunRounds(spec.rounds);
    }
    core::RunSnapshot snap = sys.Snapshot(spec.tail);
    result.metrics = std::move(snap.series_tail);
    result.metrics[kMetricIndexKeys] = static_cast<double>(snap.index_keys);
    result.metrics[kMetricKeyTtl] = snap.effective_key_ttl;
    result.metrics[kMetricDhtMembers] =
        static_cast<double>(snap.dht_members);
    // Latency metrics (lookup RTT quantiles, routing stretch) exist only
    // under a non-immediate delivery model; merging the map keeps
    // immediate-mode cells byte-identical to the pre-latency era.
    for (const auto& [key, value] : snap.latency) {
      result.metrics[key] = value;
    }
    if (spec.collect) spec.collect(sys, cell, result.metrics);
  } catch (const std::exception& e) {
    result.metrics.clear();
    result.error = e.what();
  } catch (...) {
    result.metrics.clear();
    result.error = "unknown exception";
  }
  return result;
}

std::vector<AggregateRow> Aggregate(const ExperimentSpec& spec,
                                    const std::vector<CellResult>& cells) {
  const size_t grid = spec.GridSize();
  std::vector<AggregateRow> rows(grid);
  for (size_t g = 0; g < grid; ++g) rows[g].grid_index = g;

  // Collect samples per (grid point, metric) in cell order.  Callers
  // pass ParallelRunner output, which is flat-index ordered, so the
  // mean's summation order is fixed regardless of thread schedule.
  std::vector<std::map<std::string, std::vector<double>>> samples(grid);
  for (const CellResult& c : cells) {
    if (c.grid_index >= grid) continue;
    AggregateRow& row = rows[c.grid_index];
    if (row.labels.empty()) row.labels = c.labels;
    if (!c.error.empty()) {
      row.errors.push_back(c.error);
      continue;
    }
    for (const auto& [key, value] : c.metrics) {
      samples[c.grid_index][key].push_back(value);
    }
  }
  for (size_t g = 0; g < grid; ++g) {
    // A grid point whose every seed failed before its cell materialized
    // (e.g. a throwing axis patch) never reported labels; reconstruct
    // them so downstream tables keep their arity.
    if (rows[g].labels.size() != spec.axes.size()) {
      std::vector<size_t> level_idx = DecodeLevels(spec.axes, g);
      rows[g].labels.clear();
      for (size_t a = 0; a < spec.axes.size(); ++a) {
        rows[g].labels.push_back(
            spec.axes[a].levels.empty() ? "?"
                                        : spec.axes[a].levels[level_idx[a]]
                                              .label);
      }
    }
    for (const auto& [key, values] : samples[g]) {
      AggregateStats s;
      s.n = static_cast<uint32_t>(values.size());
      s.min = values.front();
      s.max = values.front();
      double sum = 0.0;
      for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
      }
      s.mean = sum / static_cast<double>(values.size());
      rows[g].metrics.emplace(key, s);
    }
  }
  return rows;
}

AggregateStats AggregateRow::Stat(const std::string& key) const {
  auto it = metrics.find(key);
  if (it != metrics.end()) return it->second;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  return {nan, nan, nan, 0};
}

std::string FormatStats(const AggregateStats& s, int precision) {
  std::string out = TableWriter::FormatDouble(s.mean, precision);
  if (s.n > 1) {
    out += " [" + TableWriter::FormatDouble(s.min, precision) + ", " +
           TableWriter::FormatDouble(s.max, precision) + "]";
  }
  return out;
}

TableWriter ToTable(
    const ExperimentSpec& spec, const std::vector<AggregateRow>& rows,
    const std::vector<std::pair<std::string, std::string>>& metric_columns,
    int precision) {
  std::vector<std::string> columns;
  for (const Axis& a : spec.axes) columns.push_back(a.name);
  for (const auto& [header, key] : metric_columns) {
    (void)key;
    columns.push_back(header);
  }
  TableWriter t(std::move(columns));
  for (const AggregateRow& row : rows) {
    std::vector<std::string> cells = row.labels;
    for (const auto& [header, key] : metric_columns) {
      (void)header;
      auto it = row.metrics.find(key);
      if (it != row.metrics.end()) {
        cells.push_back(FormatStats(it->second, precision));
      } else {
        cells.push_back(row.errors.empty() ? "-" : "ERROR");
      }
    }
    t.AddRow(std::move(cells));
  }
  return t;
}

}  // namespace pdht::exp
