// Declarative experiment grids.
//
// Every result in the paper is a parameter sweep -- strategy x query
// frequency x backend x churn -- and every cell of such a sweep is one
// fully independent PdhtSystem run (own Rng, Network, RoundEngine).  An
// ExperimentSpec declares the sweep once: a base SystemConfig, a list of
// Axes whose levels patch that config, a seeds-per-cell count, a round
// budget and a tail window.  The spec expands into Cells; exp/parallel_runner.h
// executes them (sequentially or on a thread pool) and Aggregate() folds
// the per-cell metrics into mean/min/max-across-seeds rows for the
// existing TableWriter.
//
// Determinism contract: a cell's seed is a pure function of the spec's
// base seed and the cell's flat index (DeriveCellSeed), never of the
// execution schedule, so any thread count -- and any future execution
// order -- produces bit-identical results.  tests/exp/parallel_runner_test.cc
// enforces this.

#ifndef PDHT_EXP_EXPERIMENT_H_
#define PDHT_EXP_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pdht_system.h"
#include "stats/table_writer.h"

namespace pdht::exp {

/// One level of a sweep axis: a display label plus a configuration patch
/// applied on top of the spec's base config.
struct AxisLevel {
  std::string label;
  std::function<void(core::SystemConfig&)> apply;
};

/// One sweep dimension (strategy, backend, repl, churn level, ...).  The
/// grid is the cross product of all axes; the last axis varies fastest.
struct Axis {
  std::string name;
  std::vector<AxisLevel> levels;
};

/// One fully resolved grid cell: a single PdhtSystem run.
struct Cell {
  size_t index = 0;       ///< flat index over grid x seeds.
  size_t grid_index = 0;  ///< grid-point index (seed dimension excluded).
  uint32_t seed_index = 0;
  std::vector<std::string> labels;  ///< one per axis, in axis order.
  core::SystemConfig config;        ///< base + patches + derived seed.
};

/// Metrics measured on one finished cell.  Standard keys are every
/// RoundEngine series tail-mean (e.g. PdhtSystem::kSeriesMsgTotal) plus
/// kMetricIndexKeys / kMetricKeyTtl / kMetricDhtMembers; spec.collect
/// may add bench-specific ones.
struct CellResult {
  size_t index = 0;
  size_t grid_index = 0;
  uint32_t seed_index = 0;
  std::vector<std::string> labels;
  std::map<std::string, double> metrics;
  std::string error;  ///< non-empty when the cell failed; metrics empty.
};

inline constexpr const char* kMetricIndexKeys = "index.keys";
inline constexpr const char* kMetricKeyTtl = "key.ttl";
inline constexpr const char* kMetricDhtMembers = "dht.members";

struct ExperimentSpec {
  std::string name;
  /// Backbone configuration; base.seed is the experiment's base seed
  /// from which every cell seed is derived.
  core::SystemConfig base;
  std::vector<Axis> axes;
  uint32_t seeds_per_cell = 1;
  /// Round budget per cell (used by the default executor).
  uint64_t rounds = 120;
  /// Tail window (rounds) over which series are averaged into metrics.
  size_t tail = 30;

  /// Optional custom executor (mid-run workload shifts, phased runs);
  /// the default runs sys.RunRounds(rounds).
  std::function<void(core::PdhtSystem&, const Cell&)> run;
  /// Optional extra metrics, recorded after the standard snapshot.
  std::function<void(const core::PdhtSystem&, const Cell&,
                     std::map<std::string, double>&)>
      collect;

  /// Number of distinct grid points: the product of the axis sizes --
  /// 1 when axes is empty, 0 when any axis has no levels (the cross
  /// product with an empty set is empty; nothing runs).
  size_t GridSize() const;
  /// GridSize() * seeds_per_cell.
  size_t NumCells() const;
  /// Expands a flat index in [0, NumCells()) into the fully resolved
  /// cell, including the derived per-cell seed.
  Cell MakeCell(size_t index) const;
};

/// Deterministic per-cell seed: hash(base_seed, cell_index).  A pure
/// function of the flat index so results are bit-identical at any
/// thread count.
uint64_t DeriveCellSeed(uint64_t base_seed, size_t cell_index);

/// Runs one cell synchronously.  The ParallelRunner's unit of work;
/// exposed for tests and custom drivers.  Never throws: validation and
/// execution failures are reported through CellResult::error.
CellResult RunCell(const ExperimentSpec& spec, size_t index);

/// Across-seeds aggregate of one metric at one grid point.
struct AggregateStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  uint32_t n = 0;
};

/// One grid point with every metric reduced across its seeds.
struct AggregateRow {
  size_t grid_index = 0;
  std::vector<std::string> labels;
  std::map<std::string, AggregateStats> metrics;
  std::vector<std::string> errors;  ///< failures among this point's seeds.

  /// The named metric, or an empty stats value (n == 0, NaN moments)
  /// when the metric is absent -- e.g. every seed of this grid point
  /// failed.  NaN poisons downstream shape checks into FAIL instead of
  /// throwing out of a bench main.
  AggregateStats Stat(const std::string& key) const;
};

/// Groups cell results by grid point and reduces each metric to
/// mean/min/max across seeds.  Rows come back in grid order and the
/// reduction folds seeds in seed order, independent of the execution
/// schedule.
std::vector<AggregateRow> Aggregate(const ExperimentSpec& spec,
                                    const std::vector<CellResult>& cells);

/// "1.23" when n <= 1, "1.23 [1.1, 1.4]" (mean [min, max]) otherwise.
std::string FormatStats(const AggregateStats& s, int precision = 4);

/// Renders aggregate rows into a TableWriter: one column per axis
/// (labels), then one column per (header, metric key) pair.  Missing
/// metrics render as "-", or "ERROR" when the grid point had failures.
TableWriter ToTable(
    const ExperimentSpec& spec, const std::vector<AggregateRow>& rows,
    const std::vector<std::pair<std::string, std::string>>& metric_columns,
    int precision = 6);

}  // namespace pdht::exp

#endif  // PDHT_EXP_EXPERIMENT_H_
