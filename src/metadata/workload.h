// Query workload generation.
//
// Queries are Zipf(alpha)-distributed over the key universe [Srip01].  The
// mapping from popularity rank to concrete key is a permutation; the
// adaptivity experiments (Section 5.2 / 6: "adjusts to changing query
// frequencies and distributions") change that permutation mid-run, which
// instantly re-ranks every key while keeping the aggregate distribution --
// exactly the "popularity of keys can change dramatically over time"
// stressor from the introduction.

#ifndef PDHT_METADATA_WORKLOAD_H_
#define PDHT_METADATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/zipf.h"

namespace pdht::metadata {

class QueryWorkload {
 public:
  /// Zipf(alpha) over `num_keys` keys (keys are dense ids 0..num_keys-1).
  QueryWorkload(uint64_t num_keys, double alpha, Rng rng);

  /// Samples the key of one query.
  uint64_t SampleKey();

  /// Samples the key of one query from a caller-provided stream.  Const:
  /// reads only the precomputed sampler tables and the current
  /// permutation, so concurrent calls with distinct Rngs are race-free
  /// (the sharded planner's per-peer key streams rely on this).
  uint64_t SampleKey(Rng& rng) const;

  /// Samples the number of queries in a round given `num_peers` peers each
  /// querying with frequency `f_qry` (binomial approximated by the exact
  /// per-peer Bernoulli when f_qry < 1, else deterministic + Bernoulli
  /// remainder).
  uint64_t SampleQueryCount(uint64_t num_peers, double f_qry);

  /// Rank (1-based popularity position) of `key` under the current
  /// permutation.
  uint64_t RankOf(uint64_t key) const;

  /// Key occupying popularity rank `rank` (1-based).
  uint64_t KeyAtRank(uint64_t rank) const;

  /// Probability mass of `key` under the current permutation.
  double ProbOf(uint64_t key) const;

  /// Re-draws the rank->key permutation (total popularity shift).
  void ShufflePopularity();

  /// Rotates popularity by `offset` ranks (gradual drift: every key moves
  /// `offset` positions in the ranking).
  void RotatePopularity(uint64_t offset);

  uint64_t num_keys() const { return num_keys_; }
  double alpha() const { return sampler_.alpha(); }

 private:
  uint64_t num_keys_;
  Rng rng_;
  ZipfSampler sampler_;
  std::vector<uint64_t> rank_to_key_;  // rank r (1-based) -> key id
  std::vector<uint64_t> key_to_rank_;  // key id -> rank (1-based)
};

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_WORKLOAD_H_
