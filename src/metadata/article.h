// News articles and their metadata (paper Sections 1 and 4).
//
// "Peers generate news articles, which are described by metadata.  These
// metadata files consist of element-value pairs, such as title = 'Weather
// Iraklion', author = 'Crete Weather Service', date = '2004/03/14', and
// size = '2405'."  The evaluation scenario stores 2,000 unique articles,
// each described by 20 metadata keys, for 40,000 index keys total.

#ifndef PDHT_METADATA_ARTICLE_H_
#define PDHT_METADATA_ARTICLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pdht::metadata {

/// One element = value metadata pair.
struct MetadataPair {
  std::string element;
  std::string value;

  /// Canonical "element=value" rendering used for hashing.
  std::string Canonical() const;

  bool operator==(const MetadataPair&) const = default;
};

/// An article: identifier plus its metadata record.
struct Article {
  uint64_t id = 0;
  std::vector<MetadataPair> metadata;

  /// Returns the value for `element`, or empty string.
  std::string ValueOf(const std::string& element) const;
};

/// Deterministic synthetic article corpus generator: produces articles
/// whose metadata draws from realistic news-domain vocabularies (titles
/// with topic words, authors from a pool of agencies, dates, sizes,
/// categories, locations).  Substitute for a real news feed (see DESIGN.md
/// substitutions); what matters to the experiments is the key structure,
/// not the prose.
class ArticleCorpus {
 public:
  /// Generates `count` articles with ~`pairs_per_article` metadata pairs
  /// each, deterministically from `seed`.
  ArticleCorpus(uint64_t count, uint32_t pairs_per_article, uint64_t seed);

  const std::vector<Article>& articles() const { return articles_; }
  const Article& at(uint64_t i) const { return articles_[i]; }
  uint64_t size() const { return articles_.size(); }

  /// Replaces article `i` with a freshly generated one (same id, new
  /// metadata) -- the scenario's "each article is replaced every 24 hours".
  void ReplaceArticle(uint64_t i);

 private:
  Article Generate(uint64_t id);

  uint32_t pairs_per_article_;
  uint64_t seed_;
  uint64_t generation_ = 0;
  std::vector<Article> articles_;
};

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_ARTICLE_H_
