#include "metadata/trace.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace pdht::metadata {

void QueryTrace::Append(uint64_t round, uint64_t key) {
  assert(entries_.empty() || round >= entries_.back().round);
  entries_.push_back(TraceEntry{round, key});
}

QueryTrace QueryTrace::Synthesize(QueryWorkload& workload, uint64_t rounds,
                                  uint64_t num_peers, double f_qry) {
  QueryTrace trace;
  for (uint64_t r = 0; r < rounds; ++r) {
    uint64_t count = workload.SampleQueryCount(num_peers, f_qry);
    for (uint64_t q = 0; q < count; ++q) {
      trace.Append(r, workload.SampleKey());
    }
  }
  return trace;
}

bool QueryTrace::SaveCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "round,key\n";
  for (const auto& e : entries_) {
    f << e.round << "," << e.key << "\n";
  }
  return static_cast<bool>(f);
}

bool QueryTrace::LoadCsv(const std::string& path, QueryTrace* out) {
  std::ifstream f(path);
  if (!f) return false;
  out->entries_.clear();
  std::string line;
  bool first = true;
  while (std::getline(f, line)) {
    if (first) {
      first = false;
      if (line.rfind("round", 0) == 0) continue;  // header
    }
    if (line.empty()) continue;
    uint64_t round = 0;
    uint64_t key = 0;
    if (std::sscanf(line.c_str(), "%" SCNu64 ",%" SCNu64, &round, &key) !=
        2) {
      return false;
    }
    if (!out->entries_.empty() && round < out->entries_.back().round) {
      return false;  // replay requires non-decreasing rounds
    }
    out->entries_.push_back(TraceEntry{round, key});
  }
  return true;
}

TraceStats QueryTrace::Stats() const {
  TraceStats s;
  s.total_queries = entries_.size();
  if (entries_.empty()) return s;
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t max_round = 0;
  for (const auto& e : entries_) {
    ++counts[e.key];
    max_round = std::max(max_round, e.round);
  }
  s.distinct_keys = counts.size();
  s.rounds = max_round + 1;
  uint64_t top = 0;
  for (const auto& [key, c] : counts) top = std::max(top, c);
  s.head_share =
      static_cast<double>(top) / static_cast<double>(entries_.size());
  return s;
}

std::pair<size_t, size_t> QueryTrace::RoundRange(uint64_t round) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), round,
      [](const TraceEntry& e, uint64_t r) { return e.round < r; });
  auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), round,
      [](uint64_t r, const TraceEntry& e) { return r < e.round; });
  return {static_cast<size_t>(lo - entries_.begin()),
          static_cast<size_t>(hi - entries_.begin())};
}

}  // namespace pdht::metadata
