#include "metadata/predicate.h"

#include <algorithm>
#include <cctype>

namespace pdht::metadata {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Case-insensitive search for the standalone keyword " AND " starting at
/// `from`; returns npos when absent.
size_t FindAnd(const std::string& s, size_t from) {
  for (size_t i = from; i + 5 <= s.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(s[i])) &&
        std::toupper(static_cast<unsigned char>(s[i + 1])) == 'A' &&
        std::toupper(static_cast<unsigned char>(s[i + 2])) == 'N' &&
        std::toupper(static_cast<unsigned char>(s[i + 3])) == 'D' &&
        std::isspace(static_cast<unsigned char>(s[i + 4]))) {
      return i;
    }
  }
  return std::string::npos;
}

}  // namespace

bool ParsePredicate(const std::string& text, ParsedPredicate* out) {
  out->terms.clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t and_pos = FindAnd(text, pos);
    std::string term = and_pos == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, and_pos - pos);
    term = Trim(term);
    if (term.empty()) return false;
    size_t eq = term.find('=');
    if (eq == std::string::npos) return false;
    MetadataPair pair;
    pair.element = Trim(term.substr(0, eq));
    pair.value = Trim(term.substr(eq + 1));
    if (pair.element.empty() || pair.value.empty()) return false;
    out->terms.push_back(std::move(pair));
    if (and_pos == std::string::npos) break;
    pos = and_pos + 5;
  }
  return !out->terms.empty();
}

std::string CanonicalPredicate(const ParsedPredicate& parsed) {
  std::vector<MetadataPair> sorted = parsed.terms;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetadataPair& a, const MetadataPair& b) {
              if (a.element != b.element) return a.element < b.element;
              return a.value < b.value;
            });
  std::string out;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += " AND ";
    out += sorted[i].Canonical();
  }
  return out;
}

std::string NormalizePredicate(const std::string& text) {
  ParsedPredicate parsed;
  if (!ParsePredicate(text, &parsed)) return "";
  return CanonicalPredicate(parsed);
}

}  // namespace pdht::metadata
