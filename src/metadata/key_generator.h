// DHT key generation from article metadata [FeBi04].
//
// "In case we decide to index a specific metadata attribute we generate
// keys by hashing single or concatenated key-value pairs, such as key1 =
// hash(title = 'Weather Iraklion' AND date = '2004/03/14')" (Section 1).
// KeyGenerator derives exactly `keys_per_article` keys per article:
// one per single element-value pair plus conjunctive combinations of
// adjacent pairs, skipping pairs whose value consists only of stop words.

#ifndef PDHT_METADATA_KEY_GENERATOR_H_
#define PDHT_METADATA_KEY_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/article.h"

namespace pdht::metadata {

/// One generated index key: the hash plus the human-readable predicate it
/// came from (for debugging/examples).
struct IndexKey {
  uint64_t hash = 0;
  std::string predicate;  ///< e.g. "title=weather Iraklion AND date=..."

  bool operator==(const IndexKey& o) const { return hash == o.hash; }
};

class KeyGenerator {
 public:
  /// `keys_per_article`: the scenario uses 20 (2,000 articles -> 40,000
  /// keys).
  explicit KeyGenerator(uint32_t keys_per_article = 20);

  /// Derives the article's index keys: singles first, then pairwise
  /// conjunctions (element_i AND element_j in canonical order), truncated
  /// or cycled to exactly keys_per_article entries.  Values that contain
  /// only stop words are skipped (not worth indexing at all).
  std::vector<IndexKey> KeysFor(const Article& article) const;

  /// Hash of a single predicate string (exposed so queries can be formed
  /// against the same key space).
  static uint64_t HashPredicate(const std::string& predicate);

  /// Builds the canonical conjunctive predicate for two pairs.
  static std::string ConjunctivePredicate(const MetadataPair& a,
                                          const MetadataPair& b);

  uint32_t keys_per_article() const { return keys_per_article_; }

 private:
  uint32_t keys_per_article_;
};

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_KEY_GENERATOR_H_
