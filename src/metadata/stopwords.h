// Globally known stop-word set.
//
// "It is a standard approach in information retrieval to avoid indexing
// stop words, such as 'the', 'and', etc.  We assume that the set of such
// stop words is globally known to all peers in the system and are ignored"
// (Section 4).

#ifndef PDHT_METADATA_STOPWORDS_H_
#define PDHT_METADATA_STOPWORDS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdht::metadata {

/// Case-insensitive membership test against the built-in English stop-word
/// list.
bool IsStopWord(std::string_view word);

/// Splits `text` on whitespace/punctuation and returns the lower-cased
/// tokens that are not stop words.
std::vector<std::string> ContentWords(std::string_view text);

/// Number of built-in stop words (for tests).
size_t StopWordCount();

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_STOPWORDS_H_
