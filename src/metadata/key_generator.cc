#include "metadata/key_generator.h"

#include <cassert>

#include "metadata/stopwords.h"
#include "util/hash.h"

namespace pdht::metadata {

KeyGenerator::KeyGenerator(uint32_t keys_per_article)
    : keys_per_article_(keys_per_article) {
  assert(keys_per_article >= 1);
}

uint64_t KeyGenerator::HashPredicate(const std::string& predicate) {
  return Fnv1a64(predicate);
}

std::string KeyGenerator::ConjunctivePredicate(const MetadataPair& a,
                                               const MetadataPair& b) {
  // Canonical order by element name so "A AND B" == "B AND A".
  if (a.element <= b.element) {
    return a.Canonical() + " AND " + b.Canonical();
  }
  return b.Canonical() + " AND " + a.Canonical();
}

std::vector<IndexKey> KeyGenerator::KeysFor(const Article& article) const {
  std::vector<IndexKey> keys;
  keys.reserve(keys_per_article_);

  auto indexable = [](const MetadataPair& p) {
    // A value whose content words are all stop words carries no signal
    // ("stop words ... are ignored", Section 4).
    return !ContentWords(p.value).empty();
  };

  // Single-pair keys first, but cap them at half the budget: the paper's
  // motivating keys are conjunctive predicates (title AND date), which are
  // far more selective, so they get at least half the key slots.
  uint32_t singles_budget =
      keys_per_article_ > 1 ? keys_per_article_ / 2 : keys_per_article_;
  for (const auto& p : article.metadata) {
    if (keys.size() >= singles_budget) break;
    if (!indexable(p)) continue;
    std::string pred = p.Canonical();
    keys.push_back(IndexKey{HashPredicate(pred), pred});
  }
  // Conjunctions of pair i with pair j (i < j), most-selective-first order:
  // combinations involving earlier (title/author/date) pairs first.
  for (size_t i = 0;
       i < article.metadata.size() && keys.size() < keys_per_article_; ++i) {
    for (size_t j = i + 1;
         j < article.metadata.size() && keys.size() < keys_per_article_;
         ++j) {
      const auto& a = article.metadata[i];
      const auto& b = article.metadata[j];
      if (!indexable(a) || !indexable(b)) continue;
      std::string pred = ConjunctivePredicate(a, b);
      keys.push_back(IndexKey{HashPredicate(pred), pred});
    }
  }
  // If the article had too few pairs for the requested key count, pad with
  // article-scoped synthetic predicates (id-qualified) so the key space
  // size stays exact -- the scenario fixes keys = articles * 20.
  uint32_t pad = 0;
  while (keys.size() < keys_per_article_) {
    std::string pred = "article=" + std::to_string(article.id) +
                       " AND slot=" + std::to_string(pad++);
    keys.push_back(IndexKey{HashPredicate(pred), pred});
  }
  return keys;
}

}  // namespace pdht::metadata
