// Predicate parsing and canonicalization.
//
// Queries in the paper's news system are conjunctions of element = value
// terms ("element1 = value1 AND element2 = value2", Section 1).  Users
// write them in any order and with loose whitespace; the index key is the
// hash of the *canonical* form (terms sorted by element name, single
// spaces, "e=v AND e=v"), so parsing + canonicalization is what makes
// "date=... AND title=..." and "title=... AND date=..." the same key.

#ifndef PDHT_METADATA_PREDICATE_H_
#define PDHT_METADATA_PREDICATE_H_

#include <string>
#include <vector>

#include "metadata/article.h"

namespace pdht::metadata {

struct ParsedPredicate {
  std::vector<MetadataPair> terms;

  bool empty() const { return terms.empty(); }
};

/// Parses "elem=value" or "elem1=value1 AND elem2=value2 AND ...".
/// Whitespace around terms, '=' and the AND keyword is tolerated; the AND
/// keyword is case-insensitive.  Returns false on malformed input (empty
/// element, missing '=', empty predicate).  Values may contain '=' only
/// in their tail (the first '=' splits element from value).
bool ParsePredicate(const std::string& text, ParsedPredicate* out);

/// Canonical string form: terms sorted by element (ties by value), joined
/// with " AND ", each rendered "element=value".
std::string CanonicalPredicate(const ParsedPredicate& parsed);

/// Convenience: parse + canonicalize; returns empty string on parse error.
std::string NormalizePredicate(const std::string& text);

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_PREDICATE_H_
