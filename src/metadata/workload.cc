#include "metadata/workload.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace pdht::metadata {

QueryWorkload::QueryWorkload(uint64_t num_keys, double alpha, Rng rng)
    : num_keys_(num_keys),
      rng_(rng),
      sampler_(num_keys, alpha),
      rank_to_key_(num_keys),
      key_to_rank_(num_keys) {
  assert(num_keys >= 1);
  std::iota(rank_to_key_.begin(), rank_to_key_.end(), 0);
  rng_.Shuffle(rank_to_key_.data(), rank_to_key_.size());
  for (uint64_t r = 0; r < num_keys; ++r) {
    key_to_rank_[rank_to_key_[r]] = r + 1;
  }
}

uint64_t QueryWorkload::SampleKey() {
  uint64_t rank = sampler_.Sample(rng_);
  return rank_to_key_[rank - 1];
}

uint64_t QueryWorkload::SampleKey(Rng& rng) const {
  uint64_t rank = sampler_.Sample(rng);
  return rank_to_key_[rank - 1];
}

uint64_t QueryWorkload::SampleQueryCount(uint64_t num_peers, double f_qry) {
  // Expected queries per round = num_peers * f_qry.  Use a normal
  // approximation to Binomial(num_peers, f_qry) for large networks and the
  // exact integer + Bernoulli remainder for the mean when f_qry is fixed;
  // the approximation error is irrelevant at the aggregate level the paper
  // models.
  double mean = static_cast<double>(num_peers) * f_qry;
  if (mean <= 0.0) return 0;
  double variance = mean * (1.0 - std::min(f_qry, 1.0));
  if (variance <= 0.0) {
    uint64_t whole = static_cast<uint64_t>(mean);
    double frac = mean - static_cast<double>(whole);
    return whole + (rng_.Bernoulli(frac) ? 1 : 0);
  }
  // Box-Muller.
  double u1 = rng_.UniformDouble();
  double u2 = rng_.UniformDouble();
  while (u1 <= 0.0) u1 = rng_.UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * 3.14159265358979323846 * u2);
  double sample = mean + z * std::sqrt(variance);
  if (sample < 0.0) sample = 0.0;
  return static_cast<uint64_t>(std::llround(sample));
}

uint64_t QueryWorkload::RankOf(uint64_t key) const {
  assert(key < num_keys_);
  return key_to_rank_[key];
}

uint64_t QueryWorkload::KeyAtRank(uint64_t rank) const {
  assert(rank >= 1 && rank <= num_keys_);
  return rank_to_key_[rank - 1];
}

double QueryWorkload::ProbOf(uint64_t key) const {
  return sampler_.Pmf(RankOf(key));
}

void QueryWorkload::ShufflePopularity() {
  rng_.Shuffle(rank_to_key_.data(), rank_to_key_.size());
  for (uint64_t r = 0; r < num_keys_; ++r) {
    key_to_rank_[rank_to_key_[r]] = r + 1;
  }
}

void QueryWorkload::RotatePopularity(uint64_t offset) {
  offset %= num_keys_;
  if (offset == 0) return;
  std::vector<uint64_t> rotated(num_keys_);
  for (uint64_t r = 0; r < num_keys_; ++r) {
    rotated[r] = rank_to_key_[(r + offset) % num_keys_];
  }
  rank_to_key_ = std::move(rotated);
  for (uint64_t r = 0; r < num_keys_; ++r) {
    key_to_rank_[rank_to_key_[r]] = r + 1;
  }
}

}  // namespace pdht::metadata
