#include "metadata/article.h"

#include <array>
#include <cassert>

#include "util/hash.h"
#include "util/rng.h"

namespace pdht::metadata {

std::string MetadataPair::Canonical() const {
  return element + "=" + value;
}

std::string Article::ValueOf(const std::string& element) const {
  for (const auto& p : metadata) {
    if (p.element == element) return p.value;
  }
  return "";
}

namespace {

constexpr std::array<const char*, 16> kTopics = {
    "weather",  "election", "storm",   "market",  "festival", "earthquake",
    "transfer", "summit",   "protest", "harvest", "eclipse",  "regatta",
    "wildfire", "budget",   "derby",   "launch"};

constexpr std::array<const char*, 12> kPlaces = {
    "Iraklion", "Lausanne", "Geneva", "Zurich",  "Athens",  "Tokyo",
    "Berlin",   "Paris",    "Oslo",   "Madrid",  "Lisbon",  "Vienna"};

constexpr std::array<const char*, 10> kAgencies = {
    "Crete Weather Service", "Alpine News Agency", "Swiss Daily Wire",
    "Aegean Press",          "Metro Bulletin",     "Continental Report",
    "Harbor Gazette",        "Summit Times",       "Valley Observer",
    "Capital Dispatch"};

constexpr std::array<const char*, 8> kCategories = {
    "weather", "politics", "sports", "economy",
    "culture", "science",  "local",  "world"};

constexpr std::array<const char*, 6> kLanguages = {"en", "de", "fr",
                                                   "el", "es", "it"};

std::string MakeDate(Rng& rng) {
  // Dates within the paper's year.
  int month = static_cast<int>(rng.UniformInt(1, 12));
  int day = static_cast<int>(rng.UniformInt(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2004/%02d/%02d", month, day);
  return buf;
}

}  // namespace

ArticleCorpus::ArticleCorpus(uint64_t count, uint32_t pairs_per_article,
                             uint64_t seed)
    : pairs_per_article_(pairs_per_article), seed_(seed) {
  assert(pairs_per_article >= 4 &&
         "need at least title/author/date/size pairs");
  articles_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    articles_.push_back(Generate(i));
  }
}

Article ArticleCorpus::Generate(uint64_t id) {
  // Per-article deterministic stream so regeneration of article i does not
  // perturb other articles.
  Rng rng(HashCombine(seed_, HashCombine(id, generation_)));
  Article a;
  a.id = id;
  const std::string topic = kTopics[rng.UniformU64(kTopics.size())];
  const std::string place = kPlaces[rng.UniformU64(kPlaces.size())];
  a.metadata.push_back({"title", topic + " " + place});
  a.metadata.push_back(
      {"author", kAgencies[rng.UniformU64(kAgencies.size())]});
  a.metadata.push_back({"date", MakeDate(rng)});
  a.metadata.push_back(
      {"size", std::to_string(rng.UniformInt(500, 50000))});
  uint32_t extras = pairs_per_article_ > 4 ? pairs_per_article_ - 4 : 0;
  for (uint32_t e = 0; e < extras; ++e) {
    switch (e % 5) {
      case 0:
        a.metadata.push_back(
            {"category", kCategories[rng.UniformU64(kCategories.size())]});
        break;
      case 1:
        a.metadata.push_back(
            {"language", kLanguages[rng.UniformU64(kLanguages.size())]});
        break;
      case 2:
        a.metadata.push_back(
            {"keyword" + std::to_string(e / 5),
             std::string(kTopics[rng.UniformU64(kTopics.size())])});
        break;
      case 3:
        a.metadata.push_back(
            {"location" + std::to_string(e / 5),
             std::string(kPlaces[rng.UniformU64(kPlaces.size())])});
        break;
      default:
        a.metadata.push_back(
            {"rev" + std::to_string(e / 5),
             std::to_string(rng.UniformInt(1, 9))});
        break;
    }
  }
  return a;
}

void ArticleCorpus::ReplaceArticle(uint64_t i) {
  assert(i < articles_.size());
  ++generation_;
  articles_[i] = Generate(i);
}

}  // namespace pdht::metadata
