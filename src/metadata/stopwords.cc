#include "metadata/stopwords.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace pdht::metadata {

namespace {

// The classic short English stop-word list; sorted for binary search.
constexpr std::array<std::string_view, 48> kStopWords = {
    "a",    "about", "after", "all",  "an",   "and",  "any",  "are",
    "as",   "at",    "be",    "but",  "by",   "for",  "from", "had",
    "has",  "have",  "he",    "her",  "his",  "if",   "in",   "into",
    "is",   "it",    "its",   "no",   "not",  "of",   "on",   "or",
    "our",  "she",   "so",    "that", "the",  "their", "then", "there",
    "they", "this",  "to",    "was",  "we",   "were", "will", "with"};

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

bool IsStopWord(std::string_view word) {
  std::string lower = ToLower(word);
  return std::binary_search(kStopWords.begin(), kStopWords.end(),
                            std::string_view(lower));
}

std::vector<std::string> ContentWords(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      if (!IsStopWord(cur)) out.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur.push_back(static_cast<char>(std::tolower(
          static_cast<unsigned char>(ch))));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

size_t StopWordCount() { return kStopWords.size(); }

}  // namespace pdht::metadata
