// Query trace recording and replay.
//
// The paper's evaluation uses synthetic Zipf workloads; real deployments
// evaluate against recorded traces (the paper itself leans on the
// Gnutella trace studies [Srip01], [MaCa03]).  QueryTrace bridges the
// two: it can synthesize a trace from a QueryWorkload (so experiments are
// repeatable across systems and seeds), persist it as CSV, and replay it
// through PdhtSystem (SystemConfig::trace), giving every strategy an
// *identical* query sequence instead of merely an identical distribution.

#ifndef PDHT_METADATA_TRACE_H_
#define PDHT_METADATA_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/workload.h"

namespace pdht::metadata {

struct TraceEntry {
  uint64_t round = 0;  ///< round in which the query is issued.
  uint64_t key = 0;    ///< dense key id queried.

  bool operator==(const TraceEntry&) const = default;
};

struct TraceStats {
  uint64_t total_queries = 0;
  uint64_t distinct_keys = 0;
  uint64_t rounds = 0;          ///< 1 + max round (0 when empty).
  double head_share = 0.0;      ///< fraction of queries on the top-1 key.
};

class QueryTrace {
 public:
  /// Appends one query; rounds must be non-decreasing (replay is a single
  /// forward scan).
  void Append(uint64_t round, uint64_t key);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Draws a `rounds`-round trace from `workload` with the scenario's
  /// per-round query counts (numPeers * fQry expected per round).
  static QueryTrace Synthesize(QueryWorkload& workload, uint64_t rounds,
                               uint64_t num_peers, double f_qry);

  /// CSV persistence ("round,key" per line, header included).
  bool SaveCsv(const std::string& path) const;
  static bool LoadCsv(const std::string& path, QueryTrace* out);

  TraceStats Stats() const;

  /// Entries with .round == `round` as an index range [begin, end) into
  /// entries(); O(log n).
  std::pair<size_t, size_t> RoundRange(uint64_t round) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace pdht::metadata

#endif  // PDHT_METADATA_TRACE_H_
