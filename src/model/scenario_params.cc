#include "model/scenario_params.h"

#include <sstream>

#include "stats/table_writer.h"

namespace pdht::model {

std::vector<double> ScenarioParams::PaperQueryFrequencies() {
  return {1.0 / 30, 1.0 / 60, 1.0 / 120, 1.0 / 300,
          1.0 / 600, 1.0 / 1800, 1.0 / 3600, 1.0 / 7200};
}

ScenarioParams ScenarioParams::WithQueryFrequency(double f) const {
  ScenarioParams p = *this;
  p.f_qry = f;
  return p;
}

std::string ScenarioParams::Validate() const {
  if (num_peers == 0) return "num_peers must be positive";
  if (keys == 0) return "keys must be positive";
  if (stor == 0) return "stor must be positive";
  if (repl == 0) return "repl must be positive";
  if (repl > num_peers) return "repl cannot exceed num_peers";
  if (alpha < 0.0) return "alpha must be non-negative";
  if (f_qry <= 0.0) return "f_qry must be positive";
  if (f_upd < 0.0) return "f_upd must be non-negative";
  if (env < 0.0) return "env must be non-negative";
  if (dup < 1.0) return "dup must be >= 1 (each search sends >= 1 copy)";
  if (dup2 < 1.0) return "dup2 must be >= 1";
  if (key_space_arity < 2) return "key_space_arity must be >= 2";
  return "";
}

std::string ScenarioParams::ToTable() const {
  TableWriter t({"Description", "Param.", "Value"});
  auto num = [](double v) { return TableWriter::FormatDouble(v, 6); };
  t.AddRow({"Total number of peers", "numPeers", std::to_string(num_peers)});
  t.AddRow({"Number of unique keys", "keys", std::to_string(keys)});
  t.AddRow({"Storage capacity for indexing per peer", "stor",
            std::to_string(stor)});
  t.AddRow({"Replication factor", "repl", std::to_string(repl)});
  t.AddRow({"alpha of query Zipf distribution", "alpha", num(alpha)});
  t.AddRow({"Frequency of queries per peer per second", "fQry", num(f_qry)});
  t.AddRow({"Avg. update freq. per key", "fUpd", num(f_upd)});
  t.AddRow({"Route maintenance constant", "env", num(env)});
  t.AddRow({"Message duplication factor (unstructured)", "dup", num(dup)});
  t.AddRow({"Message duplication factor (replica net)", "dup2", num(dup2)});
  t.AddRow({"Key space arity (footnote 3)", "k",
            std::to_string(key_space_arity)});
  return t.ToText();
}

}  // namespace pdht::model
