// Parameter sweeps over the analytical model.
//
// Produces exactly the series plotted in the paper's Figs. 1-4 plus the
// keyTtl sensitivity study, as TableWriter tables that the bench binaries
// print and optionally dump to CSV.

#ifndef PDHT_MODEL_SWEEP_H_
#define PDHT_MODEL_SWEEP_H_

#include <vector>

#include "model/cost_model.h"
#include "model/scenario_params.h"
#include "model/selection_model.h"
#include "stats/table_writer.h"

namespace pdht::model {

/// One row per query frequency: the three strategy totals (Fig. 1).
struct Fig1Row {
  double f_qry;
  double index_all;
  double no_index;
  double partial;
};

/// One row per query frequency: ideal-partial savings (Fig. 2).
struct Fig2Row {
  double f_qry;
  double savings_vs_index_all;
  double savings_vs_no_index;
};

/// One row per query frequency: index size fraction and pIndxd (Fig. 3).
struct Fig3Row {
  double f_qry;
  double index_size_fraction;  // maxRank / keys
  double p_indxd;
  uint64_t max_rank;
};

/// One row per query frequency: selection-algorithm savings (Fig. 4).
struct Fig4Row {
  double f_qry;
  double savings_vs_index_all;
  double savings_vs_no_index;
  double p_indxd;
  double keys_in_index;
  double key_ttl;
};

/// One row per (f_qry, ttl_scale): Section 5.1.1 sensitivity.
struct TtlSensitivityRow {
  double f_qry;
  double ttl_scale;
  double key_ttl;
  double partial;
  double savings_vs_index_all;
  double savings_vs_no_index;
};

std::vector<Fig1Row> SweepFig1(const ScenarioParams& params,
                               const std::vector<double>& frequencies);
std::vector<Fig2Row> SweepFig2(const ScenarioParams& params,
                               const std::vector<double>& frequencies);
std::vector<Fig3Row> SweepFig3(const ScenarioParams& params,
                               const std::vector<double>& frequencies);
std::vector<Fig4Row> SweepFig4(const ScenarioParams& params,
                               const std::vector<double>& frequencies);
std::vector<TtlSensitivityRow> SweepTtlSensitivity(
    const ScenarioParams& params, const std::vector<double>& frequencies,
    const std::vector<double>& ttl_scales);

TableWriter Fig1Table(const std::vector<Fig1Row>& rows);
TableWriter Fig2Table(const std::vector<Fig2Row>& rows);
TableWriter Fig3Table(const std::vector<Fig3Row>& rows);
TableWriter Fig4Table(const std::vector<Fig4Row>& rows);
TableWriter TtlSensitivityTable(const std::vector<TtlSensitivityRow>& rows);

/// Renders "1/30" style labels for the paper's frequency axis.
std::string FrequencyLabel(double f_qry);

}  // namespace pdht::model

#endif  // PDHT_MODEL_SWEEP_H_
