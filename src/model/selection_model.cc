#include "model/selection_model.h"

#include <cassert>
#include <cmath>

namespace pdht::model {

namespace {

/// (1 - (1 - probT)^ttl) computed stably for tiny probT.
double ProbInIndex(double prob_t, double key_ttl) {
  if (prob_t <= 0.0) return 0.0;
  if (prob_t >= 1.0) return 1.0;
  return -std::expm1(key_ttl * std::log1p(-prob_t));
}

}  // namespace

SelectionModel::SelectionModel(const ScenarioParams& params)
    : params_(params), cost_model_(params) {}

double SelectionModel::IdealKeyTtl(double f_qry) const {
  uint64_t max_rank = cost_model_.SolveMaxRank(f_qry);
  double f_min = cost_model_.FMin(max_rank == 0 ? 1 : max_rank);
  if (!(f_min > 0.0) || std::isinf(f_min)) {
    // Degenerate: indexing never pays off; a 1-round TTL evicts instantly.
    return 1.0;
  }
  return 1.0 / f_min;
}

double SelectionModel::PIndxd(double f_qry, double key_ttl) const {
  const ZipfDistribution& zipf = cost_model_.zipf();
  double total_queries = f_qry * static_cast<double>(params_.num_peers);
  double acc = 0.0;
  for (uint64_t r = 1; r <= params_.keys; ++r) {
    double prob_t = zipf.ProbQueriedAtLeastOnce(r, total_queries);
    acc += zipf.Prob(r) * ProbInIndex(prob_t, key_ttl);
  }
  return acc;
}

double SelectionModel::ExpectedKeysInIndex(double f_qry,
                                           double key_ttl) const {
  const ZipfDistribution& zipf = cost_model_.zipf();
  double total_queries = f_qry * static_cast<double>(params_.num_peers);
  double acc = 0.0;
  for (uint64_t r = 1; r <= params_.keys; ++r) {
    double prob_t = zipf.ProbQueriedAtLeastOnce(r, total_queries);
    acc += ProbInIndex(prob_t, key_ttl);
  }
  return acc;
}

double SelectionModel::TotalPartialSelection(double f_qry) const {
  return TotalPartialSelection(f_qry, IdealKeyTtl(f_qry));
}

double SelectionModel::TotalPartialSelection(double f_qry,
                                             double key_ttl) const {
  return Evaluate(f_qry, key_ttl / IdealKeyTtl(f_qry)).partial;
}

SelectionBreakdown SelectionModel::Evaluate(double f_qry,
                                            double ttl_scale) const {
  assert(ttl_scale > 0.0);
  SelectionBreakdown out;
  out.key_ttl = IdealKeyTtl(f_qry) * ttl_scale;
  out.p_indxd = PIndxd(f_qry, out.key_ttl);
  out.keys_in_index = ExpectedKeysInIndex(f_qry, out.key_ttl);

  // The index must be big enough for the expected number of resident keys.
  uint64_t whole_keys =
      static_cast<uint64_t>(std::ceil(out.keys_in_index));
  out.num_active_peers = cost_model_.NumActivePeers(whole_keys);
  double c_s_indx = cost_model_.CostSearchIndex(out.num_active_peers);
  out.c_s_indx2 = c_s_indx + static_cast<double>(params_.repl) * params_.dup2;
  out.c_rtn = whole_keys == 0
                  ? 0.0
                  : cost_model_.CostRoutingMaintenance(whole_keys);

  double queries = f_qry * static_cast<double>(params_.num_peers);
  double c_s_unstr = cost_model_.CostSearchUnstructured();
  // Eq. 17.  Hit: one index search.  Miss: index search + broadcast +
  // re-insertion (another index search).
  out.partial = out.keys_in_index * out.c_rtn +
                out.p_indxd * queries * out.c_s_indx2 +
                (1.0 - out.p_indxd) * queries *
                    (out.c_s_indx2 + c_s_unstr + out.c_s_indx2);
  out.index_all = cost_model_.TotalIndexAll(f_qry);
  out.no_index = cost_model_.TotalNoIndex(f_qry);
  out.savings_vs_index_all =
      out.index_all > 0.0 ? 1.0 - out.partial / out.index_all : 0.0;
  out.savings_vs_no_index =
      out.no_index > 0.0 ? 1.0 - out.partial / out.no_index : 0.0;
  return out;
}

}  // namespace pdht::model
