// Query popularity distribution used by the analytical model.
//
// Wraps the Zipf pmf/cdf (Eq. 3) together with the per-round "queried at
// least once" probability (Eq. 4):
//
//   probT(rank) = 1 - (1 - prob(rank))^(numPeers * fQry)
//
// All 1-based ranks.  Tables are precomputed once per (keys, alpha) pair so
// cost-model sweeps over fQry reuse the pmf.

#ifndef PDHT_MODEL_ZIPF_DISTRIBUTION_H_
#define PDHT_MODEL_ZIPF_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

namespace pdht::model {

class ZipfDistribution {
 public:
  /// Precomputes pmf and cdf for ranks {1..keys}.  alpha >= 0.
  ZipfDistribution(uint64_t keys, double alpha);

  uint64_t keys() const { return keys_; }
  double alpha() const { return alpha_; }

  /// Eq. 3: probability that a random query targets the rank-th key.
  double Prob(uint64_t rank) const;

  /// Cumulative probability of ranks {1..rank} (the paper's pIndxd for an
  /// index holding the top `rank` keys, Eq. 5).
  double Cdf(uint64_t rank) const;

  /// Eq. 4: probability the rank-th key is queried at least once per round
  /// when `total_queries_per_round` = numPeers * fQry queries are issued.
  double ProbQueriedAtLeastOnce(uint64_t rank,
                                double total_queries_per_round) const;

  /// Largest rank r with ProbQueriedAtLeastOnce(r, q) >= threshold, or 0 if
  /// even rank 1 falls below the threshold.  probT is non-increasing in
  /// rank, so this is a binary search.
  uint64_t MaxRankWithProbTAtLeast(double threshold,
                                   double total_queries_per_round) const;

 private:
  uint64_t keys_;
  double alpha_;
  std::vector<double> pmf_;  // pmf_[r-1] = Prob(r)
  std::vector<double> cdf_;  // cdf_[r-1] = Cdf(r)
};

}  // namespace pdht::model

#endif  // PDHT_MODEL_ZIPF_DISTRIBUTION_H_
