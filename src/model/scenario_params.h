// Scenario parameters (paper Table 1).
//
// All analytical-model and simulation experiments are driven by a
// ScenarioParams value.  Defaults reproduce the paper's news-system
// scenario exactly:
//
//   Total number of peers                    numPeers         20,000
//   Number of unique keys                    keys             40,000
//   Storage capacity for indexing per peer   stor             100
//   Replication factor                       repl             50
//   alpha of query Zipf distribution         alpha            1.2   [Srip01]
//   Frequency of queries per peer per sec    fQry             1/30 .. 1/7200
//   Avg. update freq. per key                fUpd             1/(3600*24)
//   Route maintenance constant               env              1/14  [MaCa03]
//   Message duplication factors              dup, dup2        1.8   [LvCa02]
//
// One "round" is one second (paper footnote 1), so all frequencies are per
// second and all costs are messages per second.

#ifndef PDHT_MODEL_SCENARIO_PARAMS_H_
#define PDHT_MODEL_SCENARIO_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pdht::model {

struct ScenarioParams {
  /// Total number of peers in the system (structured + unstructured).
  uint64_t num_peers = 20000;
  /// Number of unique keys occurring in the network (40,000 = 2,000 news
  /// articles x 20 metadata keys each).
  uint64_t keys = 40000;
  /// Per-peer index storage capacity in key-value pairs.
  uint64_t stor = 100;
  /// Replication factor for both index entries and content.
  uint64_t repl = 50;
  /// Zipf exponent of the query popularity distribution.
  double alpha = 1.2;
  /// Average query frequency per peer per round [1/s].
  double f_qry = 1.0 / 30.0;
  /// Average update frequency per key per round [1/s] (one replacement per
  /// article per 24 h).
  double f_upd = 1.0 / (3600.0 * 24.0);
  /// Routing-table maintenance constant: probe messages per routing entry
  /// per peer per round.  env = 1/log2(17000) ~= 1/14 from the Pastry study
  /// [MaCa03].
  double env = 1.0 / 14.0;
  /// Message duplication factor for searches in the unstructured network.
  double dup = 1.8;
  /// Message duplication factor for flooding the replica subnetwork.
  double dup2 = 1.8;
  /// Arity of the structured key space (paper footnote 3: "the analysis
  /// can also be generalized for a k-ary key space").  k = 2 is the
  /// paper's binary space; larger k shortens lookups (log_k hops) but
  /// enlarges routing tables ((k-1)*log_k entries), shifting cSIndx down
  /// and cRtn up -- bench_ablation_arity sweeps the trade-off.
  uint32_t key_space_arity = 2;

  /// The eight query frequencies the paper sweeps in Figs. 1-4:
  /// 1/30, 1/60, 1/120, 1/300, 1/600, 1/1800, 1/3600, 1/7200.
  static std::vector<double> PaperQueryFrequencies();

  /// Returns a copy with f_qry replaced.
  ScenarioParams WithQueryFrequency(double f) const;

  /// Validates invariants (positive counts, alpha >= 0, ...); returns an
  /// empty string when valid, otherwise a description of the violation.
  std::string Validate() const;

  /// Renders Table 1 as an aligned text table.
  std::string ToTable() const;

  bool operator==(const ScenarioParams&) const = default;
};

}  // namespace pdht::model

#endif  // PDHT_MODEL_SCENARIO_PARAMS_H_
