// Analytical cost model (paper Sections 2-4).
//
// Implements the closed-form message-cost model:
//
//   cSUnstr = numPeers / repl * dup                                   (Eq. 6)
//   cSIndx  = 1/2 * log2(numActivePeers)                              (Eq. 7)
//   cRtn    = env * log2(numActivePeers) * numActivePeers / maxRank   (Eq. 8)
//   cUpd    = (cSIndx + repl * dup2) * fUpd                           (Eq. 9)
//   cIndKey = cRtn + cUpd                                             (Eq.10)
//
// and the index-worthiness criterion
//
//   fQry_k > cIndKey / (cSUnstr - cSIndx)     =: fMin                 (Eq. 2)
//
// Total-cost formulas for the three strategies (Section 4):
//
//   indexAll = keys*cIndKey + fQry*numPeers*cSIndx                    (Eq.11)
//   noIndex  = fQry*numPeers*cSUnstr                                  (Eq.12)
//   partial  = maxRank*cIndKey + pIndxd*fQry*numPeers*cSIndx
//            + (1-pIndxd)*fQry*numPeers*cSUnstr                       (Eq.13)
//
// Circularity note (documented as design decision #2 in DESIGN.md): fMin
// depends on cIndKey, which depends on numActivePeers = maxRank*repl/stor,
// which depends on maxRank -- the very quantity fMin determines.  Because
// probT(rank) is non-increasing in rank while fMin(rank) (with maxRank :=
// rank) is non-decreasing in rank, the self-consistency condition
// probT(r) >= fMin(r) defines a prefix of ranks, and the partial-index size
// is the largest r in it.  We solve it with a binary search; a property
// test confirms the returned value is a fixed point of the paper's
// iteration.

#ifndef PDHT_MODEL_COST_MODEL_H_
#define PDHT_MODEL_COST_MODEL_H_

#include <cstdint>
#include <memory>

#include "model/scenario_params.h"
#include "model/zipf_distribution.h"

namespace pdht::model {

/// Everything the model derives for one parameter setting.
struct CostBreakdown {
  // Primitive costs [msg] and [msg/s].
  double c_s_unstr = 0.0;      ///< Eq. 6, cost of one unstructured search.
  double c_s_indx = 0.0;       ///< Eq. 7, cost of one index search.
  double c_rtn = 0.0;          ///< Eq. 8, routing maintenance per key per s.
  double c_upd = 0.0;          ///< Eq. 9, update cost per key per s.
  double c_ind_key = 0.0;      ///< Eq. 10, total indexing cost per key per s.
  // Partial-index solution.
  double f_min = 0.0;          ///< Eq. 2 threshold at the fixed point.
  uint64_t max_rank = 0;       ///< number of keys worth indexing.
  uint64_t num_active_peers = 0;  ///< peers needed to store the index.
  double p_indxd = 0.0;        ///< Eq. 5, fraction of queries hitting index.
  // Strategy totals [msg/s].
  double index_all = 0.0;      ///< Eq. 11.
  double no_index = 0.0;       ///< Eq. 12.
  double partial = 0.0;        ///< Eq. 13 (ideal partial indexing).
  // Savings (Fig. 2).
  double savings_vs_index_all = 0.0;  ///< 1 - partial/indexAll.
  double savings_vs_no_index = 0.0;   ///< 1 - partial/noIndex.
};

/// Closed-form evaluator.  One instance precomputes the Zipf tables for a
/// (keys, alpha) pair; Evaluate() can then be called for any query
/// frequency cheaply.
class CostModel {
 public:
  explicit CostModel(const ScenarioParams& params);

  const ScenarioParams& params() const { return params_; }
  const ZipfDistribution& zipf() const { return *zipf_; }

  // --- Primitive cost terms -------------------------------------------

  /// Eq. 6: cSUnstr = numPeers/repl * dup.  Independent of index state.
  double CostSearchUnstructured() const;

  /// Number of peers needed to store an index of `maxRank` keys with the
  /// scenario's replication factor and per-peer capacity:
  /// ceil(maxRank*repl/stor), clamped to [1, numPeers].
  uint64_t NumActivePeers(uint64_t max_rank) const;

  /// Eq. 7: cSIndx = 1/2 * log2(numActivePeers).
  double CostSearchIndex(uint64_t num_active_peers) const;

  /// Eq. 8: cRtn = env * log2(nap) * nap / maxRank.  `max_rank` >= 1.
  double CostRoutingMaintenance(uint64_t max_rank) const;

  /// Eq. 9: cUpd = (cSIndx + repl*dup2) * fUpd.
  double CostUpdate(uint64_t num_active_peers) const;

  /// Eq. 10: cIndKey = cRtn + cUpd for an index of `max_rank` keys.
  double CostIndexKey(uint64_t max_rank) const;

  /// Eq. 2 threshold for an index of `max_rank` keys:
  /// fMin = cIndKey/(cSUnstr - cSIndx).  Returns +inf when the index search
  /// is not cheaper than the unstructured search (nothing worth indexing).
  double FMin(uint64_t max_rank) const;

  /// Eq. 1 predicate: is a key with query frequency `f_qry_k` worth keeping
  /// in an index currently holding `max_rank` keys?
  bool WorthIndexing(double f_qry_k, uint64_t max_rank) const;

  // --- Partial-index fixed point --------------------------------------

  /// Solves for the self-consistent index size: the largest rank r such
  /// that probT(r) >= fMin(r).  Returns 0 when indexing nothing is optimal.
  uint64_t SolveMaxRank(double f_qry) const;

  // --- Strategy totals --------------------------------------------------

  /// Eq. 11 at the scenario's full index size (maxRank = keys).
  double TotalIndexAll(double f_qry) const;

  /// Eq. 12.
  double TotalNoIndex(double f_qry) const;

  /// Eq. 13 using the solved maxRank.
  double TotalPartialIdeal(double f_qry) const;

  /// Full evaluation for the scenario's f_qry (or an explicit override).
  CostBreakdown Evaluate() const;
  CostBreakdown Evaluate(double f_qry) const;

 private:
  ScenarioParams params_;
  std::shared_ptr<const ZipfDistribution> zipf_;
};

}  // namespace pdht::model

#endif  // PDHT_MODEL_COST_MODEL_H_
