#include "model/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/bits.h"

namespace pdht::model {

CostModel::CostModel(const ScenarioParams& params)
    : params_(params),
      zipf_(std::make_shared<ZipfDistribution>(params.keys, params.alpha)) {
  assert(params.Validate().empty());
}

double CostModel::CostSearchUnstructured() const {
  return static_cast<double>(params_.num_peers) /
         static_cast<double>(params_.repl) * params_.dup;
}

uint64_t CostModel::NumActivePeers(uint64_t max_rank) const {
  if (max_rank == 0) return 0;
  // ceil(maxRank * repl / stor)
  uint64_t needed = (max_rank * params_.repl + params_.stor - 1) / params_.stor;
  needed = std::max<uint64_t>(needed, 1);
  return std::min(needed, params_.num_peers);
}

double CostModel::CostSearchIndex(uint64_t num_active_peers) const {
  if (num_active_peers <= 1) return 0.5;  // a single peer: one hop at most.
  // Eq. 7 for the binary space; footnote 3's k-ary generalization divides
  // the hop count by log2(k): half the expected log_k(nap) corrections.
  double log_k = Log2(static_cast<double>(params_.key_space_arity));
  return 0.5 * Log2(static_cast<double>(num_active_peers)) / log_k;
}

double CostModel::CostRoutingMaintenance(uint64_t max_rank) const {
  if (max_rank == 0) return 0.0;
  uint64_t nap = NumActivePeers(max_rank);
  if (nap <= 1) return 0.0;  // a lone peer has no routing entries to probe.
  double napd = static_cast<double>(nap);
  // Eq. 8 with a k-ary routing table: (k-1) entries per level over
  // log_k(nap) levels; k = 2 recovers the paper's log2(nap) table size.
  double k = static_cast<double>(params_.key_space_arity);
  double table = (k - 1.0) * Log2(napd) / Log2(k);
  return params_.env * table * napd / static_cast<double>(max_rank);
}

double CostModel::CostUpdate(uint64_t num_active_peers) const {
  return (CostSearchIndex(num_active_peers) +
          static_cast<double>(params_.repl) * params_.dup2) *
         params_.f_upd;
}

double CostModel::CostIndexKey(uint64_t max_rank) const {
  if (max_rank == 0) return 0.0;
  return CostRoutingMaintenance(max_rank) +
         CostUpdate(NumActivePeers(max_rank));
}

double CostModel::FMin(uint64_t max_rank) const {
  double c_s_unstr = CostSearchUnstructured();
  double c_s_indx = CostSearchIndex(NumActivePeers(max_rank));
  double margin = c_s_unstr - c_s_indx;
  if (margin <= 0.0) return std::numeric_limits<double>::infinity();
  return CostIndexKey(max_rank) / margin;
}

bool CostModel::WorthIndexing(double f_qry_k, uint64_t max_rank) const {
  // Eq. 1: fQry_k * (cSUnstr - cSIndx) - cIndKey > 0.
  double c_s_unstr = CostSearchUnstructured();
  double c_s_indx = CostSearchIndex(NumActivePeers(max_rank));
  return f_qry_k * (c_s_unstr - c_s_indx) - CostIndexKey(max_rank) > 0.0;
}

uint64_t CostModel::SolveMaxRank(double f_qry) const {
  const double total_queries =
      f_qry * static_cast<double>(params_.num_peers);
  // Self-consistency: g(r) = probT(r) - fMin(r) with maxRank := r.
  // probT is non-increasing in r and fMin non-decreasing (the log factors
  // in cRtn and cSIndx grow with the index), so g is non-increasing and the
  // answer is the largest r with g(r) >= 0.
  auto satisfied = [&](uint64_t r) {
    double prob_t = zipf_->ProbQueriedAtLeastOnce(r, total_queries);
    return prob_t >= FMin(r);
  };
  if (!satisfied(1)) return 0;
  uint64_t lo = 1;             // invariant: satisfied(lo)
  uint64_t hi = params_.keys + 1;  // invariant: !satisfied(hi) or out of range
  if (satisfied(params_.keys)) return params_.keys;
  while (hi - lo > 1) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (satisfied(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double CostModel::TotalIndexAll(double f_qry) const {
  double c_ind_key = CostIndexKey(params_.keys);
  double c_s_indx = CostSearchIndex(NumActivePeers(params_.keys));
  return static_cast<double>(params_.keys) * c_ind_key +
         f_qry * static_cast<double>(params_.num_peers) * c_s_indx;
}

double CostModel::TotalNoIndex(double f_qry) const {
  return f_qry * static_cast<double>(params_.num_peers) *
         CostSearchUnstructured();
}

double CostModel::TotalPartialIdeal(double f_qry) const {
  uint64_t max_rank = SolveMaxRank(f_qry);
  if (max_rank == 0) return TotalNoIndex(f_qry);
  double p_indxd = zipf_->Cdf(max_rank);
  double c_ind_key = CostIndexKey(max_rank);
  double c_s_indx = CostSearchIndex(NumActivePeers(max_rank));
  double c_s_unstr = CostSearchUnstructured();
  double queries = f_qry * static_cast<double>(params_.num_peers);
  return static_cast<double>(max_rank) * c_ind_key +
         p_indxd * queries * c_s_indx +
         (1.0 - p_indxd) * queries * c_s_unstr;
}

CostBreakdown CostModel::Evaluate() const { return Evaluate(params_.f_qry); }

CostBreakdown CostModel::Evaluate(double f_qry) const {
  CostBreakdown out;
  out.c_s_unstr = CostSearchUnstructured();
  out.max_rank = SolveMaxRank(f_qry);
  out.num_active_peers = NumActivePeers(out.max_rank);
  out.c_s_indx = CostSearchIndex(out.num_active_peers);
  out.c_rtn = CostRoutingMaintenance(out.max_rank);
  out.c_upd = CostUpdate(out.num_active_peers);
  out.c_ind_key = CostIndexKey(out.max_rank);
  out.f_min = FMin(out.max_rank);
  out.p_indxd = out.max_rank == 0 ? 0.0 : zipf_->Cdf(out.max_rank);
  out.index_all = TotalIndexAll(f_qry);
  out.no_index = TotalNoIndex(f_qry);
  out.partial = TotalPartialIdeal(f_qry);
  out.savings_vs_index_all =
      out.index_all > 0.0 ? 1.0 - out.partial / out.index_all : 0.0;
  out.savings_vs_no_index =
      out.no_index > 0.0 ? 1.0 - out.partial / out.no_index : 0.0;
  return out;
}

}  // namespace pdht::model
