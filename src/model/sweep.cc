#include "model/sweep.h"

#include <cmath>
#include <cstdio>

namespace pdht::model {

std::string FrequencyLabel(double f_qry) {
  // The paper's x axis labels frequencies as 1/period with integer periods.
  double period = 1.0 / f_qry;
  double rounded = std::round(period);
  char buf[32];
  if (std::abs(period - rounded) < 1e-9 * period) {
    std::snprintf(buf, sizeof(buf), "1/%lld",
                  static_cast<long long>(rounded));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", f_qry);
  }
  return buf;
}

std::vector<Fig1Row> SweepFig1(const ScenarioParams& params,
                               const std::vector<double>& frequencies) {
  CostModel model(params);
  std::vector<Fig1Row> rows;
  rows.reserve(frequencies.size());
  for (double f : frequencies) {
    CostBreakdown b = model.Evaluate(f);
    rows.push_back({f, b.index_all, b.no_index, b.partial});
  }
  return rows;
}

std::vector<Fig2Row> SweepFig2(const ScenarioParams& params,
                               const std::vector<double>& frequencies) {
  CostModel model(params);
  std::vector<Fig2Row> rows;
  rows.reserve(frequencies.size());
  for (double f : frequencies) {
    CostBreakdown b = model.Evaluate(f);
    rows.push_back({f, b.savings_vs_index_all, b.savings_vs_no_index});
  }
  return rows;
}

std::vector<Fig3Row> SweepFig3(const ScenarioParams& params,
                               const std::vector<double>& frequencies) {
  CostModel model(params);
  std::vector<Fig3Row> rows;
  rows.reserve(frequencies.size());
  for (double f : frequencies) {
    CostBreakdown b = model.Evaluate(f);
    rows.push_back({f,
                    static_cast<double>(b.max_rank) /
                        static_cast<double>(params.keys),
                    b.p_indxd, b.max_rank});
  }
  return rows;
}

std::vector<Fig4Row> SweepFig4(const ScenarioParams& params,
                               const std::vector<double>& frequencies) {
  SelectionModel model(params);
  std::vector<Fig4Row> rows;
  rows.reserve(frequencies.size());
  for (double f : frequencies) {
    SelectionBreakdown b = model.Evaluate(f);
    rows.push_back({f, b.savings_vs_index_all, b.savings_vs_no_index,
                    b.p_indxd, b.keys_in_index, b.key_ttl});
  }
  return rows;
}

std::vector<TtlSensitivityRow> SweepTtlSensitivity(
    const ScenarioParams& params, const std::vector<double>& frequencies,
    const std::vector<double>& ttl_scales) {
  SelectionModel model(params);
  std::vector<TtlSensitivityRow> rows;
  rows.reserve(frequencies.size() * ttl_scales.size());
  for (double f : frequencies) {
    for (double scale : ttl_scales) {
      SelectionBreakdown b = model.Evaluate(f, scale);
      rows.push_back({f, scale, b.key_ttl, b.partial,
                      b.savings_vs_index_all, b.savings_vs_no_index});
    }
  }
  return rows;
}

TableWriter Fig1Table(const std::vector<Fig1Row>& rows) {
  TableWriter t({"fQry [1/s]", "indexAll [msg/s]", "noIndex [msg/s]",
                 "partial [msg/s]"});
  for (const auto& r : rows) {
    t.AddRow({FrequencyLabel(r.f_qry),
              TableWriter::FormatDouble(r.index_all, 6),
              TableWriter::FormatDouble(r.no_index, 6),
              TableWriter::FormatDouble(r.partial, 6)});
  }
  return t;
}

TableWriter Fig2Table(const std::vector<Fig2Row>& rows) {
  TableWriter t({"fQry [1/s]", "savings vs indexAll", "savings vs noIndex"});
  for (const auto& r : rows) {
    t.AddRow({FrequencyLabel(r.f_qry),
              TableWriter::FormatDouble(r.savings_vs_index_all, 4),
              TableWriter::FormatDouble(r.savings_vs_no_index, 4)});
  }
  return t;
}

TableWriter Fig3Table(const std::vector<Fig3Row>& rows) {
  TableWriter t({"fQry [1/s]", "index size (maxRank/keys)", "pIndxd",
                 "maxRank"});
  for (const auto& r : rows) {
    t.AddRow({FrequencyLabel(r.f_qry),
              TableWriter::FormatDouble(r.index_size_fraction, 4),
              TableWriter::FormatDouble(r.p_indxd, 4),
              std::to_string(r.max_rank)});
  }
  return t;
}

TableWriter Fig4Table(const std::vector<Fig4Row>& rows) {
  TableWriter t({"fQry [1/s]", "savings vs indexAll", "savings vs noIndex",
                 "pIndxd", "keys in index", "keyTtl [rounds]"});
  for (const auto& r : rows) {
    t.AddRow({FrequencyLabel(r.f_qry),
              TableWriter::FormatDouble(r.savings_vs_index_all, 4),
              TableWriter::FormatDouble(r.savings_vs_no_index, 4),
              TableWriter::FormatDouble(r.p_indxd, 4),
              TableWriter::FormatDouble(r.keys_in_index, 6),
              TableWriter::FormatDouble(r.key_ttl, 6)});
  }
  return t;
}

TableWriter TtlSensitivityTable(const std::vector<TtlSensitivityRow>& rows) {
  TableWriter t({"fQry [1/s]", "ttl scale", "keyTtl [rounds]",
                 "partial [msg/s]", "savings vs indexAll",
                 "savings vs noIndex"});
  for (const auto& r : rows) {
    t.AddRow({FrequencyLabel(r.f_qry),
              TableWriter::FormatDouble(r.ttl_scale, 3),
              TableWriter::FormatDouble(r.key_ttl, 6),
              TableWriter::FormatDouble(r.partial, 6),
              TableWriter::FormatDouble(r.savings_vs_index_all, 4),
              TableWriter::FormatDouble(r.savings_vs_no_index, 4)});
  }
  return t;
}

}  // namespace pdht::model
