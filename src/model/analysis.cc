#include "model/analysis.h"

#include <cassert>

#include "model/cost_model.h"
#include "model/selection_model.h"

namespace pdht::model {

const char* CostCurveName(CostCurve c) {
  switch (c) {
    case CostCurve::kIndexAll:
      return "indexAll";
    case CostCurve::kNoIndex:
      return "noIndex";
    case CostCurve::kPartialIdeal:
      return "partialIdeal";
    case CostCurve::kPartialTtl:
      return "partialTtl";
  }
  return "?";
}

double EvaluateCurve(const ScenarioParams& params, CostCurve curve,
                     double f_qry) {
  switch (curve) {
    case CostCurve::kIndexAll:
      return CostModel(params).TotalIndexAll(f_qry);
    case CostCurve::kNoIndex:
      return CostModel(params).TotalNoIndex(f_qry);
    case CostCurve::kPartialIdeal:
      return CostModel(params).TotalPartialIdeal(f_qry);
    case CostCurve::kPartialTtl:
      return SelectionModel(params).TotalPartialSelection(f_qry);
  }
  return 0.0;
}

double FindCrossoverFrequency(const ScenarioParams& params, CostCurve a,
                              CostCurve b, double f_lo, double f_hi,
                              int iterations) {
  assert(f_lo > 0.0 && f_hi > f_lo);
  // Reuse the models across evaluations: constructing the Zipf table per
  // call would dominate.
  CostModel cost(params);
  SelectionModel sel(params);
  auto eval = [&](CostCurve c, double f) {
    switch (c) {
      case CostCurve::kIndexAll:
        return cost.TotalIndexAll(f);
      case CostCurve::kNoIndex:
        return cost.TotalNoIndex(f);
      case CostCurve::kPartialIdeal:
        return cost.TotalPartialIdeal(f);
      case CostCurve::kPartialTtl:
        return sel.TotalPartialSelection(f);
    }
    return 0.0;
  };
  auto diff = [&](double f) { return eval(a, f) - eval(b, f); };
  double d_lo = diff(f_lo);
  double d_hi = diff(f_hi);
  if (d_lo == 0.0) return f_lo;
  if (d_hi == 0.0) return f_hi;
  if ((d_lo > 0.0) == (d_hi > 0.0)) return 0.0;  // no sign change
  for (int i = 0; i < iterations; ++i) {
    double mid = 0.5 * (f_lo + f_hi);
    double d_mid = diff(mid);
    if (d_mid == 0.0) return mid;
    if ((d_mid > 0.0) == (d_lo > 0.0)) {
      f_lo = mid;
      d_lo = d_mid;
    } else {
      f_hi = mid;
    }
  }
  return 0.5 * (f_lo + f_hi);
}

Optimum OptimizeReplication(const ScenarioParams& params, CostCurve curve,
                            uint64_t repl_lo, uint64_t repl_hi,
                            uint64_t step) {
  assert(repl_lo >= 1 && repl_hi >= repl_lo && step >= 1);
  Optimum best;
  for (uint64_t r = repl_lo; r <= repl_hi; r += step) {
    ScenarioParams p = params;
    p.repl = r;
    if (!p.Validate().empty()) continue;
    double cost = EvaluateCurve(p, curve, p.f_qry);
    if (best.repl == 0 || cost < best.cost) {
      best.repl = r;
      best.cost = cost;
    }
  }
  return best;
}

}  // namespace pdht::model
