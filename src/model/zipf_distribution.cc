#include "model/zipf_distribution.h"

#include <cassert>
#include <cmath>

namespace pdht::model {

ZipfDistribution::ZipfDistribution(uint64_t keys, double alpha)
    : keys_(keys), alpha_(alpha), pmf_(keys), cdf_(keys) {
  assert(keys >= 1);
  double h = 0.0;
  for (uint64_t r = 1; r <= keys; ++r) {
    pmf_[r - 1] = std::pow(static_cast<double>(r), -alpha);
    h += pmf_[r - 1];
  }
  double acc = 0.0;
  for (uint64_t r = 1; r <= keys; ++r) {
    pmf_[r - 1] /= h;
    acc += pmf_[r - 1];
    cdf_[r - 1] = acc;
  }
  cdf_[keys - 1] = 1.0;
}

double ZipfDistribution::Prob(uint64_t rank) const {
  if (rank < 1 || rank > keys_) return 0.0;
  return pmf_[rank - 1];
}

double ZipfDistribution::Cdf(uint64_t rank) const {
  if (rank < 1) return 0.0;
  if (rank >= keys_) return 1.0;
  return cdf_[rank - 1];
}

double ZipfDistribution::ProbQueriedAtLeastOnce(
    uint64_t rank, double total_queries_per_round) const {
  double p = Prob(rank);
  if (p <= 0.0) return 0.0;
  // 1 - (1-p)^q computed stably via expm1/log1p: for tiny p the naive
  // form loses all precision.
  return -std::expm1(total_queries_per_round * std::log1p(-p));
}

uint64_t ZipfDistribution::MaxRankWithProbTAtLeast(
    double threshold, double total_queries_per_round) const {
  if (ProbQueriedAtLeastOnce(1, total_queries_per_round) < threshold) {
    return 0;
  }
  // Invariant: probT(lo) >= threshold; probT(hi) < threshold or hi == keys+1.
  uint64_t lo = 1;
  uint64_t hi = keys_ + 1;
  while (hi - lo > 1) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (ProbQueriedAtLeastOnce(mid, total_queries_per_round) >= threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pdht::model
