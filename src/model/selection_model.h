// Cost model of the decentralized TTL selection algorithm (paper Section 5).
//
// The realized algorithm differs from ideal partial indexing in four ways
// the paper enumerates: (I) keys worth indexing can time out before being
// re-queried, (II) keys not worth indexing occupy the index for keyTtl
// rounds after a miss-triggered insertion, (III) the index search must also
// flood the replica subnetwork (cSIndx2 = cSIndx + repl*dup2, Eq. 16)
// because purged keys leave replicas out of sync, and (IV) a peer cannot
// tell whether a key is indexed and therefore always searches the index
// first, broadcasting only on a miss and re-inserting the result.
//
// Closed forms:
//   pIndxd      = sum_r prob(r) * (1 - (1 - probT(r))^keyTtl)        (Eq.14)
//   keysInIndex = sum_r (1 - (1 - probT(r))^keyTtl)                  (Eq.15)
//   cSIndx2     = cSIndx + repl*dup2                                 (Eq.16)
//   partial     = keysInIndex*cRtn
//               + pIndxd     * fQry*numPeers * cSIndx2
//               + (1-pIndxd) * fQry*numPeers * (cSIndx2+cSUnstr+cSIndx2)
//                                                                    (Eq.17)
// Proactive updates (cUpd) disappear: a key's value is refreshed whenever a
// miss re-inserts it, so only routing maintenance (cRtn) remains in the
// per-key holding cost.

#ifndef PDHT_MODEL_SELECTION_MODEL_H_
#define PDHT_MODEL_SELECTION_MODEL_H_

#include <cstdint>

#include "model/cost_model.h"
#include "model/scenario_params.h"

namespace pdht::model {

/// Result of evaluating the selection-algorithm model at one setting.
struct SelectionBreakdown {
  double key_ttl = 0.0;          ///< expiration time used [rounds].
  double p_indxd = 0.0;          ///< Eq. 14.
  double keys_in_index = 0.0;    ///< Eq. 15 (expected, fractional).
  uint64_t num_active_peers = 0; ///< peers needed for keys_in_index keys.
  double c_s_indx2 = 0.0;        ///< Eq. 16.
  double c_rtn = 0.0;            ///< per-key routing maintenance.
  double partial = 0.0;          ///< Eq. 17 total [msg/s].
  double index_all = 0.0;        ///< Eq. 11 baseline.
  double no_index = 0.0;         ///< Eq. 12 baseline.
  double savings_vs_index_all = 0.0;
  double savings_vs_no_index = 0.0;
};

/// Evaluator for the TTL selection algorithm's expected cost.
class SelectionModel {
 public:
  explicit SelectionModel(const ScenarioParams& params);

  const CostModel& cost_model() const { return cost_model_; }

  /// The paper's choice of expiration time: keyTtl = 1/fMin, where fMin is
  /// taken at the ideal model's fixed point for this query frequency.
  double IdealKeyTtl(double f_qry) const;

  /// Eq. 14 for an arbitrary keyTtl.
  double PIndxd(double f_qry, double key_ttl) const;

  /// Eq. 15 for an arbitrary keyTtl.
  double ExpectedKeysInIndex(double f_qry, double key_ttl) const;

  /// Eq. 17 total cost with keyTtl = IdealKeyTtl(f_qry).
  double TotalPartialSelection(double f_qry) const;

  /// Eq. 17 total with an explicit keyTtl (for the +-50% sensitivity study
  /// of Section 5.1.1).
  double TotalPartialSelection(double f_qry, double key_ttl) const;

  /// Full evaluation; `ttl_scale` multiplies the ideal keyTtl (1.0 = the
  /// paper's choice, 0.5 / 1.5 = the estimation-error study).
  SelectionBreakdown Evaluate(double f_qry, double ttl_scale = 1.0) const;

 private:
  ScenarioParams params_;
  CostModel cost_model_;
};

}  // namespace pdht::model

#endif  // PDHT_MODEL_SELECTION_MODEL_H_
