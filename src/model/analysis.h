// Analysis utilities on top of the cost model.
//
// Fig. 1's qualitative story is about *where the curves cross*: below
// some query frequency, broadcasting everything beats maintaining a full
// index, and partial indexing interpolates.  CrossoverFinder locates those
// frequencies by bisection.  ReplOptimizer quantifies the replication
// tension (Eq. 6 cheapens broadcasts as repl grows; Eqs. 9/16 make replica
// floods linear in repl) by minimizing total cost over repl.  Both are
// deterministic pure functions of ScenarioParams.

#ifndef PDHT_MODEL_ANALYSIS_H_
#define PDHT_MODEL_ANALYSIS_H_

#include <cstdint>
#include <functional>

#include "model/scenario_params.h"

namespace pdht::model {

/// Which total-cost curve (Section 4) to evaluate.
enum class CostCurve : uint8_t {
  kIndexAll,      ///< Eq. 11
  kNoIndex,       ///< Eq. 12
  kPartialIdeal,  ///< Eq. 13
  kPartialTtl,    ///< Eq. 17
};

const char* CostCurveName(CostCurve c);

/// Evaluates one curve at query frequency `f_qry` for `params`.
double EvaluateCurve(const ScenarioParams& params, CostCurve curve,
                     double f_qry);

/// Finds a query frequency in [f_lo, f_hi] where curve `a` and curve `b`
/// cost the same, by bisection on the (assumed monotone) cost difference.
/// Returns 0 if the difference does not change sign on the interval.
double FindCrossoverFrequency(const ScenarioParams& params, CostCurve a,
                              CostCurve b, double f_lo, double f_hi,
                              int iterations = 60);

/// Result of a one-dimensional parameter optimization.
struct Optimum {
  uint64_t repl = 0;     ///< best replication factor found.
  double cost = 0.0;     ///< total cost at the optimum [msg/s].
};

/// Minimizes the chosen curve's total cost over repl in [repl_lo,
/// repl_hi] (exhaustive scan; the cost is not convex in general because
/// numActivePeers quantizes).  The paper defers replication choice to
/// [VaCh02]; this utility exposes the cost surface that choice navigates.
Optimum OptimizeReplication(const ScenarioParams& params, CostCurve curve,
                            uint64_t repl_lo, uint64_t repl_hi,
                            uint64_t step = 1);

}  // namespace pdht::model

#endif  // PDHT_MODEL_ANALYSIS_H_
