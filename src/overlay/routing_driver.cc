#include "overlay/routing_driver.h"

#include <algorithm>
#include <cassert>

#include "overlay/structured_overlay.h"

namespace pdht::overlay {

namespace {
thread_local uint32_t t_lookup_slot = 0;
}  // namespace

uint32_t CurrentLookupSlot() { return t_lookup_slot; }
void SetCurrentLookupSlot(uint32_t slot) { t_lookup_slot = slot; }

RoutingDriver::RoutingDriver(net::Network* network)
    : network_(network), slots_(1) {
  assert(network != nullptr);
}

void RoutingDriver::SetSlots(uint32_t n) {
  slots_.resize(n == 0 ? 1 : n);
}

void RoutingDriver::ReorderEqualProgressByRtt(Scratch& s, net::PeerId cur) {
  std::vector<RouteCandidate>& candidates = s.candidates;
  size_t i = 0;
  while (i < candidates.size()) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].progress == candidates[i].progress) {
      ++j;
    }
    if (j - i > 1) {
      // RTTs are materialized once per candidate (the oracle is a
      // hash-and-hypot evaluation, too costly for comparator calls); the
      // (rtt, emission index) key makes the order deterministic even
      // under exact RTT ties.
      s.rank.clear();
      for (size_t k = i; k < j; ++k) {
        s.rank.emplace_back(policy_.rtt(cur, candidates[k].peer),
                            static_cast<uint32_t>(k));
      }
      std::sort(s.rank.begin(), s.rank.end());
      s.reorder.clear();
      for (const auto& [rtt, k] : s.rank) {
        (void)rtt;
        s.reorder.push_back(candidates[k]);
      }
      std::copy(s.reorder.begin(), s.reorder.end(),
                candidates.begin() + static_cast<long>(i));
    }
    i = j;
  }
}

void RoutingDriver::SortByLatencyCost(Scratch& s, net::PeerId cur,
                                      double weight_ms) {
  std::vector<RouteCandidate>& candidates = s.candidates;
  s.rank.clear();
  for (size_t i = 0; i < candidates.size(); ++i) {
    // One-way link cost (the probe's serialized delay is one leg) plus
    // the expected serialized cost of the remaining path from there.
    const double score = 0.5 * policy_.rtt(cur, candidates[i].peer) +
                         weight_ms * candidates[i].progress;
    s.rank.emplace_back(score, static_cast<uint32_t>(i));
  }
  std::sort(s.rank.begin(), s.rank.end());
  s.reorder.clear();
  for (const auto& [score, i] : s.rank) {
    (void)score;
    s.reorder.push_back(candidates[i]);
  }
  candidates.swap(s.reorder);
}

LookupResult RoutingDriver::Route(StructuredOverlay& overlay,
                                  net::PeerId origin, uint64_t key) {
  assert(CurrentLookupSlot() < slots_.size());
  Scratch& scratch = slots_[CurrentLookupSlot()];
  std::vector<RouteCandidate>& candidates = scratch.candidates;
  LookupResult result;
  net::PeerId responsible = net::kInvalidPeer;
  if (!overlay.StartLookup(origin, key, &responsible)) {
    return result;  // empty overlay
  }
  result.responsible = responsible;

  const uint32_t hop_limit = overlay.LookupHopLimit();
  const uint32_t alpha = std::max<uint32_t>(1, overlay.LookupParallelism());
  // Blind sequential walks take the incremental primary path when the
  // backend offers one: candidates are produced (and paid for) only as
  // probes fail, exactly like the pre-driver monolithic walks.
  const bool incremental = overlay.has_incremental_primary() &&
                           !policy_.proximity && alpha == 1;

  // One probe: a real kDhtLookup on the wire, tagged with the hop index.
  auto probe = [&](net::PeerId from, net::PeerId to) {
    net::Message m;
    m.type = net::MessageType::kDhtLookup;
    m.from = from;
    m.to = to;
    m.key = key;
    m.tag = result.hops;
    ++result.messages;
    return network_->Send(m);  // true iff `to` was online at send time
  };

  enum class End { kDestination, kTerminalStep, kStandIn, kExhausted,
                   kHopLimit };
  End end = End::kHopLimit;
  RouteState state;
  state.origin = origin;
  state.cur = origin;

  while (true) {
    if (overlay.AtDestination(state.cur, key)) {
      end = End::kDestination;
      break;
    }
    if (result.hops >= hop_limit) {
      end = End::kHopLimit;
      break;
    }
    state.hops = result.hops;

    net::PeerId next = net::kInvalidPeer;
    bool terminal = false;
    if (incremental) {
      // Incremental primary phase: one candidate produced per failed
      // probe, nothing materialized.
      RouteCandidate cand;
      for (uint32_t k = 0; overlay.PrimaryHop(state, key, k, &cand); ++k) {
        if (probe(state.cur, cand.peer)) {
          next = cand.peer;
          terminal = cand.terminal;
          break;
        }
        ++result.failed_probes;
        if (policy_.timeout_costing) {
          network_->ChargeProbeTimeout(state.cur, cand.peer);
        }
      }
    } else {
      candidates.clear();
      overlay.NextHops(state, key, &candidates);
      if (policy_.proximity && candidates.size() > 1) {
        const double weight_ms = overlay.ProgressWeightMs();
        if (weight_ms > 0.0) {
          SortByLatencyCost(scratch, state.cur, weight_ms);
        } else {
          ReorderEqualProgressByRtt(scratch, state.cur);
        }
      }
      // Primary phase: probe in emission order, `alpha` at a time.  The
      // advance target is the first online candidate in order -- with
      // alpha > 1 the trailing probes of its batch are the wasted
      // parallel probes of an alpha-concurrent walk (charged, not
      // advanced to).
      for (size_t base = 0;
           base < candidates.size() && next == net::kInvalidPeer;
           base += alpha) {
        const size_t batch_end =
            std::min(candidates.size(), base + static_cast<size_t>(alpha));
        bool any_online = false;
        for (size_t i = base; i < batch_end; ++i) {
          const RouteCandidate& cand = candidates[i];
          if (probe(state.cur, cand.peer)) {
            any_online = true;
            if (next == net::kInvalidPeer) {
              next = cand.peer;
              terminal = cand.terminal;
            }
          } else {
            ++result.failed_probes;
          }
        }
        if (!any_online && policy_.timeout_costing) {
          // The batch's probes time out concurrently: one detection
          // delay before the walk tries the next batch.
          network_->ChargeProbeTimeout(state.cur, candidates[base].peer);
        }
      }
    }

    if (next == net::kInvalidPeer) {
      // Fallback phase: backend-ordered recovery scan, generated lazily
      // one candidate at a time (the scans are O(n) when materialized).
      RouteCandidate cand;
      for (uint32_t k = 0; overlay.FallbackHop(state, key, k, &cand); ++k) {
        if (cand.peer == state.cur) {
          // The walk's own peer is the best remaining candidate: routing
          // ends here without a message (the closest-online stand-in).
          end = End::kStandIn;
          break;
        }
        if (probe(state.cur, cand.peer)) {
          next = cand.peer;
          terminal = cand.terminal;
          break;
        }
        ++result.failed_probes;
        if (policy_.timeout_costing) {
          network_->ChargeProbeTimeout(state.cur, cand.peer);
        }
      }
      if (end == End::kStandIn) break;
      if (next == net::kInvalidPeer) {
        end = End::kExhausted;
        break;
      }
    }

    state.cur = next;
    ++result.hops;
    overlay.OnAdvance(state.cur);
    if (terminal) {
      end = End::kTerminalStep;
      break;
    }
  }

  result.terminus = state.cur;
  result.responsible_online = responsible != net::kInvalidPeer &&
                              network_->IsOnline(responsible);
  switch (end) {
    case End::kDestination:
    case End::kTerminalStep:
    case End::kStandIn:
      // The walk ended at the owner or its accepted stand-in; it serves
      // the lookup iff it is online (terminal steps and stand-ins were
      // just verified online, so this is a formality for them).
      result.success = network_->IsOnline(state.cur);
      break;
    case End::kExhausted:
      // Every candidate at some hop was offline: the routing layer could
      // not complete the walk.
      result.success = false;
      break;
    case End::kHopLimit:
      // Budget exhausted mid-walk.  Lenient backends (Chord, Kademlia)
      // accept wherever the walk stands as a stand-in; strict ones (CAN,
      // P-Grid) only succeed at the destination.
      result.success =
          overlay.LenientHopLimit() && network_->IsOnline(state.cur);
      break;
  }
  if (result.success && state.cur != origin) {
    net::Message resp;
    resp.type = net::MessageType::kDhtResponse;
    resp.from = state.cur;
    resp.to = origin;
    resp.key = key;
    network_->Send(resp);
    ++result.messages;
  }
  return result;
}

}  // namespace pdht::overlay
