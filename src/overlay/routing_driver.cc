#include "overlay/routing_driver.h"

#include <algorithm>
#include <cassert>

#include "overlay/structured_overlay.h"

namespace pdht::overlay {

namespace {
thread_local uint32_t t_lookup_slot = 0;
}  // namespace

uint32_t CurrentLookupSlot() { return t_lookup_slot; }
void SetCurrentLookupSlot(uint32_t slot) { t_lookup_slot = slot; }

RoutingDriver::RoutingDriver(net::Network* network)
    : network_(network), slots_(1) {
  assert(network != nullptr);
}

void RoutingDriver::SetSlots(uint32_t n) {
  slots_.resize(n == 0 ? 1 : n);
}

void RoutingDriver::ReorderEqualProgressByRtt(Scratch& s, net::PeerId cur) {
  std::vector<RouteCandidate>& candidates = s.candidates;
  size_t i = 0;
  while (i < candidates.size()) {
    size_t j = i + 1;
    while (j < candidates.size() &&
           candidates[j].progress == candidates[i].progress) {
      ++j;
    }
    if (j - i > 1) {
      // RTTs are materialized once per candidate (the oracle is a
      // hash-and-hypot evaluation, too costly for comparator calls); the
      // (rtt, emission index) key makes the order deterministic even
      // under exact RTT ties.
      s.rank.clear();
      for (size_t k = i; k < j; ++k) {
        s.rank.emplace_back(policy_.rtt(cur, candidates[k].peer),
                            static_cast<uint32_t>(k));
      }
      std::sort(s.rank.begin(), s.rank.end());
      s.reorder.clear();
      for (const auto& [rtt, k] : s.rank) {
        (void)rtt;
        s.reorder.push_back(candidates[k]);
      }
      std::copy(s.reorder.begin(), s.reorder.end(),
                candidates.begin() + static_cast<long>(i));
    }
    i = j;
  }
}

void RoutingDriver::SortByLatencyCost(Scratch& s, net::PeerId cur,
                                      double weight_ms) {
  std::vector<RouteCandidate>& candidates = s.candidates;
  s.rank.clear();
  for (size_t i = 0; i < candidates.size(); ++i) {
    // One-way link cost (the probe's serialized delay is one leg) plus
    // the expected serialized cost of the remaining path from there.
    const double score = 0.5 * policy_.rtt(cur, candidates[i].peer) +
                         weight_ms * candidates[i].progress;
    s.rank.emplace_back(score, static_cast<uint32_t>(i));
  }
  std::sort(s.rank.begin(), s.rank.end());
  s.reorder.clear();
  for (const auto& [score, i] : s.rank) {
    (void)score;
    s.reorder.push_back(candidates[i]);
  }
  candidates.swap(s.reorder);
}

LookupResult RoutingDriver::Route(StructuredOverlay& overlay,
                                  net::PeerId origin, uint64_t key) {
  assert(CurrentLookupSlot() < slots_.size());
  Scratch& scratch = slots_[CurrentLookupSlot()];
  std::vector<RouteCandidate>& candidates = scratch.candidates;
  LookupResult result;
  net::PeerId responsible = net::kInvalidPeer;
  if (!overlay.StartLookup(origin, key, &responsible)) {
    return result;  // empty overlay
  }
  result.responsible = responsible;

  const uint32_t hop_limit = overlay.LookupHopLimit();
  const uint32_t alpha = std::max<uint32_t>(1, overlay.LookupParallelism());
  const bool replica_mode =
      policy_.replica_route && policy_.replica_count > 0;
  // Blind sequential walks take the incremental primary path when the
  // backend offers one: candidates are produced (and paid for) only as
  // probes fail, exactly like the pre-driver monolithic walks.  Replica
  // failover needs the materialized list to spot terminal-bound hops, so
  // it opts out like the other policies.
  const bool incremental = overlay.has_incremental_primary() &&
                           !policy_.proximity && !replica_mode && alpha == 1;

  // One probe: a real kDhtLookup on the wire, tagged with the hop index.
  auto probe = [&](net::PeerId from, net::PeerId to) {
    net::Message m;
    m.type = net::MessageType::kDhtLookup;
    m.from = from;
    m.to = to;
    m.key = key;
    m.tag = result.hops;
    ++result.messages;
    return network_->Send(m);  // true iff `to` was online at send time
  };

  enum class End { kDestination, kTerminalStep, kStandIn, kExhausted,
                   kHopLimit };
  End end = End::kHopLimit;
  RouteState state;
  state.origin = origin;
  state.cur = origin;

  // One replica-failover pass (RoutingPolicy::replica_route): probe the
  // key's replica group cheapest-live-link-first, alpha at a time, and
  // hand back the first live replica as a terminal advance.  Dead
  // replicas are skipped -- each one a failover event ("net.failover" /
  // LookupResult::failovers) -- and a fully-dead batch charges ONE
  // shared detection timeout, exactly like the primary phase (the alpha
  // probes wait concurrently).  Sets *standin_out instead when the walk
  // already stands on a replica: routing ends here without a message.
  auto replica_phase = [&](net::PeerId* next_out, bool* terminal_out,
                           bool* standin_out) {
    std::vector<net::PeerId>& replicas = scratch.replicas;
    overlay.ResponsiblePeersInto(key, policy_.replica_count, &replicas);
    for (net::PeerId p : replicas) {
      if (p == state.cur) {
        *standin_out = true;
        return;
      }
    }
    std::vector<net::PeerId>& order = scratch.replica_order;
    order.assign(replicas.begin(), replicas.end());
    if (policy_.rtt && order.size() > 1) {
      // Cheapest link first; the (rtt, group index) key keeps exact-RTT
      // ties on the group order (responsible member first), which is
      // also the whole order when no oracle is installed.
      scratch.rank.clear();
      for (size_t i = 0; i < replicas.size(); ++i) {
        scratch.rank.emplace_back(policy_.rtt(state.cur, replicas[i]),
                                  static_cast<uint32_t>(i));
      }
      std::sort(scratch.rank.begin(), scratch.rank.end());
      for (size_t i = 0; i < scratch.rank.size(); ++i) {
        order[i] = replicas[scratch.rank[i].second];
      }
    }
    for (size_t base = 0;
         base < order.size() && *next_out == net::kInvalidPeer;
         base += alpha) {
      const size_t batch_end =
          std::min(order.size(), base + static_cast<size_t>(alpha));
      bool any_online = false;
      for (size_t i = base; i < batch_end; ++i) {
        if (probe(state.cur, order[i])) {
          any_online = true;
          if (*next_out == net::kInvalidPeer) *next_out = order[i];
        } else {
          ++result.failed_probes;
          ++result.failovers;
          network_->CountFailover();
        }
      }
      if (!any_online && policy_.timeout_costing) {
        network_->ChargeProbeTimeout(state.cur, order[base]);
      }
    }
    // A live replica serves the key by construction: the advance is
    // terminal (see the structured_overlay.h contract note).
    if (*next_out != net::kInvalidPeer) *terminal_out = true;
  };

  while (true) {
    if (overlay.AtDestination(state.cur, key)) {
      end = End::kDestination;
      break;
    }
    if (result.hops >= hop_limit) {
      end = End::kHopLimit;
      break;
    }
    state.hops = result.hops;

    net::PeerId next = net::kInvalidPeer;
    bool terminal = false;
    bool replicas_tried = false;
    bool replica_standin = false;
    if (incremental) {
      // Incremental primary phase: one candidate produced per failed
      // probe, nothing materialized.
      RouteCandidate cand;
      for (uint32_t k = 0; overlay.PrimaryHop(state, key, k, &cand); ++k) {
        if (probe(state.cur, cand.peer)) {
          next = cand.peer;
          terminal = cand.terminal;
          break;
        }
        ++result.failed_probes;
        if (policy_.timeout_costing) {
          network_->ChargeProbeTimeout(state.cur, cand.peer);
        }
      }
    } else {
      candidates.clear();
      overlay.NextHops(state, key, &candidates);
      if (policy_.proximity && candidates.size() > 1) {
        const double weight_ms = overlay.ProgressWeightMs();
        if (weight_ms > 0.0) {
          SortByLatencyCost(scratch, state.cur, weight_ms);
        } else {
          ReorderEqualProgressByRtt(scratch, state.cur);
        }
      }
      // Terminal-bound hop under replica failover: the walk is about to
      // end at candidates[0] (an explicitly terminal candidate, or the
      // responsible member itself); route to the cheapest live replica
      // of the key's group instead of gambling on that single peer.
      if (replica_mode && !candidates.empty() &&
          (candidates[0].terminal || candidates[0].peer == responsible)) {
        replicas_tried = true;
        replica_phase(&next, &terminal, &replica_standin);
        if (replica_standin) {
          end = End::kStandIn;
          break;
        }
        // All replicas dead: fall through to the normal candidate walk
        // (the fallback scans may still find an online stand-in).
      }
      // Primary phase: probe in emission order, `alpha` at a time.  The
      // advance target is the first online candidate in order -- with
      // alpha > 1 the trailing probes of its batch are the wasted
      // parallel probes of an alpha-concurrent walk (charged, not
      // advanced to).
      for (size_t base = 0;
           base < candidates.size() && next == net::kInvalidPeer;
           base += alpha) {
        const size_t batch_end =
            std::min(candidates.size(), base + static_cast<size_t>(alpha));
        bool any_online = false;
        for (size_t i = base; i < batch_end; ++i) {
          const RouteCandidate& cand = candidates[i];
          if (probe(state.cur, cand.peer)) {
            any_online = true;
            if (next == net::kInvalidPeer) {
              next = cand.peer;
              terminal = cand.terminal;
            }
          } else {
            ++result.failed_probes;
          }
        }
        if (!any_online && policy_.timeout_costing) {
          // The batch's probes time out concurrently: one detection
          // delay before the walk tries the next batch.
          network_->ChargeProbeTimeout(state.cur, candidates[base].peer);
        }
      }
    }

    if (next == net::kInvalidPeer) {
      // Fallback phase: backend-ordered recovery scan, generated lazily
      // one candidate at a time (the scans are O(n) when materialized).
      RouteCandidate cand;
      for (uint32_t k = 0; overlay.FallbackHop(state, key, k, &cand); ++k) {
        if (cand.peer == state.cur) {
          // The walk's own peer is the best remaining candidate: routing
          // ends here without a message (the closest-online stand-in).
          end = End::kStandIn;
          break;
        }
        if (probe(state.cur, cand.peer)) {
          next = cand.peer;
          terminal = cand.terminal;
          break;
        }
        ++result.failed_probes;
        if (policy_.timeout_costing) {
          network_->ChargeProbeTimeout(state.cur, cand.peer);
        }
      }
      if (end == End::kStandIn) break;
      if (next == net::kInvalidPeer && replica_mode && !replicas_tried) {
        // Exhaustion rescue: every candidate and fallback was dead, but
        // a live replica of the key's group can still serve the lookup.
        replica_phase(&next, &terminal, &replica_standin);
        if (replica_standin) {
          end = End::kStandIn;
          break;
        }
      }
      if (next == net::kInvalidPeer) {
        end = End::kExhausted;
        break;
      }
    }

    // Per-hop RTT trace: the link cost of the advance the walk is about
    // to take, keyed by hop index (first kMaxHopRtt hops).  Needs the
    // oracle; blind walks leave the trace empty.
    if (policy_.rtt && result.hop_rtt_n < LookupResult::kMaxHopRtt) {
      result.hop_rtt_ms[result.hop_rtt_n++] =
          static_cast<float>(policy_.rtt(state.cur, next));
    }
    state.cur = next;
    ++result.hops;
    overlay.OnAdvance(state.cur);
    if (terminal) {
      end = End::kTerminalStep;
      break;
    }
  }

  result.terminus = state.cur;
  result.responsible_online = responsible != net::kInvalidPeer &&
                              network_->IsOnline(responsible);
  switch (end) {
    case End::kDestination:
    case End::kTerminalStep:
    case End::kStandIn:
      // The walk ended at the owner or its accepted stand-in; it serves
      // the lookup iff it is online (terminal steps and stand-ins were
      // just verified online, so this is a formality for them).
      result.success = network_->IsOnline(state.cur);
      break;
    case End::kExhausted:
      // Every candidate at some hop was offline: the routing layer could
      // not complete the walk.
      result.success = false;
      break;
    case End::kHopLimit:
      // Budget exhausted mid-walk.  Lenient backends (Chord, Kademlia)
      // accept wherever the walk stands as a stand-in; strict ones (CAN,
      // P-Grid) only succeed at the destination.
      result.success =
          overlay.LenientHopLimit() && network_->IsOnline(state.cur);
      break;
  }
  if (result.success && state.cur != origin) {
    net::Message resp;
    resp.type = net::MessageType::kDhtResponse;
    resp.from = state.cur;
    resp.to = origin;
    resp.key = key;
    network_->Send(resp);
    ++result.messages;
  }
  return result;
}

}  // namespace pdht::overlay
