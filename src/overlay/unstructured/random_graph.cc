#include "overlay/unstructured/random_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace pdht::overlay {

RandomGraph::RandomGraph(uint32_t n, double avg_degree, Rng* rng)
    : adj_(n) {
  assert(n >= 1);
  assert(avg_degree >= 2.0 || n == 1);
  if (n == 1) return;
  // Random spanning tree: attach each node i >= 1 to a uniformly random
  // predecessor.  This both guarantees connectivity and yields the skewed
  // degree distribution typical of unstructured overlays.
  for (uint32_t i = 1; i < n; ++i) {
    uint32_t j = static_cast<uint32_t>(rng->UniformU64(i));
    AddEdge(i, j);
  }
  // Extra random edges up to the target edge count m = n*avg_degree/2.
  uint64_t target_edges =
      static_cast<uint64_t>(static_cast<double>(n) * avg_degree / 2.0);
  uint64_t attempts = 0;
  const uint64_t max_attempts = target_edges * 20 + 100;
  while (num_edges_ < target_edges && attempts < max_attempts) {
    ++attempts;
    uint32_t a = static_cast<uint32_t>(rng->UniformU64(n));
    uint32_t b = static_cast<uint32_t>(rng->UniformU64(n));
    if (a == b || HasEdge(a, b)) continue;
    AddEdge(a, b);
  }
}

void RandomGraph::AddEdge(net::PeerId a, net::PeerId b) {
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
}

double RandomGraph::AverageDegree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adj_.size());
}

bool RandomGraph::HasEdge(net::PeerId a, net::PeerId b) const {
  const auto& smaller =
      adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  net::PeerId other = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

bool RandomGraph::IsConnected() const {
  std::vector<bool> alive(adj_.size(), true);
  return IsConnectedAmong(alive);
}

bool RandomGraph::IsConnectedAmong(const std::vector<bool>& alive) const {
  uint32_t n = num_nodes();
  assert(alive.size() == n);
  uint32_t start = n;
  uint32_t alive_count = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (alive[i]) {
      ++alive_count;
      if (start == n) start = i;
    }
  }
  if (alive_count == 0) return true;
  std::vector<bool> seen(n, false);
  std::deque<uint32_t> frontier{start};
  seen[start] = true;
  uint32_t visited = 1;
  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    for (net::PeerId v : adj_[u]) {
      if (!alive[v] || seen[v]) continue;
      seen[v] = true;
      ++visited;
      frontier.push_back(v);
    }
  }
  return visited == alive_count;
}

uint32_t RandomGraph::Distance(net::PeerId a, net::PeerId b) const {
  if (a == b) return 0;
  std::vector<uint32_t> dist(adj_.size(), UINT32_MAX);
  std::deque<uint32_t> frontier{a};
  dist[a] = 0;
  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    for (net::PeerId v : adj_[u]) {
      if (dist[v] != UINT32_MAX) continue;
      dist[v] = dist[u] + 1;
      if (v == b) return dist[v];
      frontier.push_back(v);
    }
  }
  return UINT32_MAX;
}

}  // namespace pdht::overlay
