#include "overlay/unstructured/flooding.h"

#include <deque>

namespace pdht::overlay {

FloodSearch::FloodSearch(const RandomGraph* graph, net::Network* network,
                         ContentOracle oracle)
    : graph_(graph), network_(network), oracle_(std::move(oracle)) {}

FloodResult FloodSearch::Search(net::PeerId origin, uint64_t key,
                                uint32_t ttl_hops) {
  FloodResult result;
  uint64_t request_id = next_request_id_++;
  if (!network_->IsOnline(origin)) return result;

  // BFS wavefront.  `seen` marks peers that already processed this request
  // id; transmissions to seen peers are still sent (and counted) but not
  // re-forwarded, reproducing Gnutella's duplicate overhead.
  std::vector<bool> seen(graph_->num_nodes(), false);
  struct Hop {
    net::PeerId peer;
    uint32_t depth;
  };
  std::deque<Hop> frontier;
  seen[origin] = true;
  result.peers_reached = 1;
  if (oracle_(origin, key)) {
    result.found = true;
    result.found_at = origin;
    result.hops_to_hit = 0;
    return result;  // local hit: no wire traffic at all.
  }
  frontier.push_back({origin, 0});

  while (!frontier.empty()) {
    Hop h = frontier.front();
    frontier.pop_front();
    if (h.depth >= ttl_hops) continue;
    for (net::PeerId nbr : graph_->Neighbors(h.peer)) {
      net::Message m;
      m.type = net::MessageType::kFloodQuery;
      m.from = h.peer;
      m.to = nbr;
      m.key = key;
      m.tag = request_id;
      bool delivered = network_->Send(m);
      ++result.messages;
      if (!delivered || seen[nbr]) continue;
      seen[nbr] = true;
      ++result.peers_reached;
      if (oracle_(nbr, key)) {
        if (!result.found) {
          result.found = true;
          result.found_at = nbr;
          result.hops_to_hit = h.depth + 1;
          // Response travels back to the originator: one message in the
          // model (responses are routed on the reverse path but the paper
          // counts the query traffic; we count a single response msg).
          net::Message resp;
          resp.type = net::MessageType::kQueryResponse;
          resp.from = nbr;
          resp.to = origin;
          resp.key = key;
          resp.tag = request_id;
          network_->Send(resp);
        }
        // Keep flooding: Gnutella queries are not cancelled mid-flight;
        // the remaining wavefront cost is genuine.
      }
      frontier.push_back({nbr, h.depth + 1});
    }
  }
  return result;
}

}  // namespace pdht::overlay
